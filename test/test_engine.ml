(* Engine mechanics, tested against a tiny deterministic protocol so
   the assertions are independent of any real agreement algorithm.

   The toy protocol: on init, queue "hello" to every processor; on
   receiving "ping", queue "pong" back to the sender; on receiving
   "decide", write the input bit to the output.  Resets clear the
   received log. *)

type toy_state = {
  id : int;
  n : int;
  input : bool;
  output : bool option;
  resets : int;
  received : (int * string) list;
  outbox : (int * string) list;
}

let toy : (toy_state, string) Dsim.Protocol.t =
  {
    Dsim.Protocol.name = "toy";
    init =
      (fun ~n ~t:_ ~id ~input ->
        {
          id;
          n;
          input;
          output = None;
          resets = 0;
          received = [];
          outbox = List.init n (fun dst -> (dst, "hello"));
        });
    outgoing =
      (fun s ->
        ( { s with outbox = [] },
          List.map (fun (dst, m) -> Dsim.Step.Unicast (dst, m)) s.outbox ));
    on_deliver =
      (fun s ~src message _rng ->
        let s = { s with received = (src, message) :: s.received } in
        match message with
        | "ping" -> { s with outbox = (src, "pong") :: s.outbox }
        | "decide" -> { s with output = Some s.input }
        | _ -> s);
    on_reset = (fun s -> { s with received = []; outbox = []; resets = s.resets + 1 });
    output = (fun s -> s.output);
    observe =
      (fun s ->
        Dsim.Obs.make ~id:s.id ~round:1 ~estimate:(Some s.input) ~output:s.output
          ~input:s.input ~resets:s.resets ~phase:0);
    message_bit = (fun _ -> None);
    message_round = (fun _ -> None);
    message_origin = (fun _ -> None);
    rewrite_bit = (fun _ _ -> None);
    state_core =
      (fun s ->
        Printf.sprintf "%d:%b:%s:%d:[%s]" s.id s.input
          (match s.output with None -> "_" | Some b -> string_of_bool b)
          s.resets
          (String.concat ";"
             (List.map (fun (src, m) -> Printf.sprintf "%d-%s" src m) s.received)));
    props = Dsim.Protocol.default_props;
    pp_message = (fun ppf m -> Format.pp_print_string ppf m);
    pp_state = (fun ppf s -> Format.pp_print_int ppf s.id);
  }

let make ?(n = 3) ?(t = 1) ?(inputs = [| true; false; true |]) ?(seed = 1)
    ?(track_deliveries = true) () =
  Dsim.Engine.init ~protocol:toy ~n ~fault_bound:t ~inputs ~seed
    ~track_deliveries ()

let test_init () =
  let config = make () in
  Alcotest.(check int) "n" 3 (Dsim.Engine.n config);
  Alcotest.(check int) "t" 1 (Dsim.Engine.fault_bound config);
  Alcotest.(check int) "mailbox empty" 0 (Dsim.Mailbox.size (Dsim.Engine.mailbox config));
  Alcotest.(check int) "no steps yet" 0 (Dsim.Engine.step_index config);
  Alcotest.(check bool) "nobody decided" false (Dsim.Engine.some_decided config)

let test_init_validation () =
  Alcotest.check_raises "inputs length" (Invalid_argument "Engine.init: |inputs| <> n")
    (fun () -> ignore (Dsim.Engine.init ~protocol:toy ~n:3 ~fault_bound:1 ~inputs:[| true |] ~seed:1 ()));
  Alcotest.check_raises "bad t" (Invalid_argument "Engine.init: fault bound out of range")
    (fun () ->
      ignore
        (Dsim.Engine.init ~protocol:toy ~n:2 ~fault_bound:2 ~inputs:[| true; false |]
           ~seed:1 ()))

let test_out_of_range_recipient_rejected () =
  let bad = { toy with Dsim.Protocol.init = (fun ~n ~t:_ ~id ~input ->
    {
      id;
      n;
      input;
      output = None;
      resets = 0;
      received = [];
      outbox = [ (99, "hello") ];
    }) }
  in
  let config =
    Dsim.Engine.init ~protocol:bad ~n:3 ~fault_bound:1 ~inputs:[| true; false; true |]
      ~seed:1 ()
  in
  Alcotest.check_raises "bad recipient"
    (Invalid_argument "Engine: protocol sent out of range") (fun () ->
      Dsim.Engine.apply config (Dsim.Step.Send 0))

let test_send_flushes_once () =
  let config = make () in
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  Alcotest.(check int) "3 hellos" 3 (Dsim.Mailbox.size (Dsim.Engine.mailbox config));
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  Alcotest.(check int) "second send is a no-op" 3
    (Dsim.Mailbox.size (Dsim.Engine.mailbox config))

let test_deliver () =
  let config = make () in
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  let id =
    match Dsim.Mailbox.pending_for (Dsim.Engine.mailbox config) ~dst:1 with
    | e :: _ -> e.Dsim.Envelope.id
    | [] -> Alcotest.fail "expected a pending message"
  in
  Dsim.Engine.apply config (Dsim.Step.Deliver id);
  Alcotest.(check int) "mailbox shrank" 2 (Dsim.Mailbox.size (Dsim.Engine.mailbox config));
  let core = (Dsim.Engine.state_cores config).(1) in
  Alcotest.(check bool) "state recorded delivery" true
    (String.length core > 0
    &&
    let contains s sub =
      let n = String.length sub and h = String.length s in
      let rec scan i = i + n <= h && (String.sub s i n = sub || scan (i + 1)) in
      scan 0
    in
    contains core "0-hello")

let test_deliver_unknown_raises () =
  let config = make () in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Engine: deliver of unknown message #42") (fun () ->
      Dsim.Engine.apply config (Dsim.Step.Deliver 42))

let test_crash_semantics () =
  let config = make () in
  Dsim.Engine.apply config (Dsim.Step.Crash 1);
  Alcotest.(check bool) "crashed" true (Dsim.Engine.crashed config 1);
  Alcotest.(check int) "count" 1 (Dsim.Engine.crashed_count config);
  (* Crashed processors do not send. *)
  Dsim.Engine.apply config (Dsim.Step.Send 1);
  Alcotest.(check int) "no messages from crashed" 0
    (Dsim.Mailbox.size (Dsim.Engine.mailbox config));
  (* Deliveries to crashed processors are dropped silently. *)
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  let to_crashed =
    match Dsim.Mailbox.pending_for (Dsim.Engine.mailbox config) ~dst:1 with
    | e :: _ -> e.Dsim.Envelope.id
    | [] -> Alcotest.fail "expected pending"
  in
  Dsim.Engine.apply config (Dsim.Step.Deliver to_crashed);
  Alcotest.(check int) "dropped, not delivered" 1
    (Dsim.Trace.dropped (Dsim.Engine.trace config))

let test_reset_semantics () =
  let config = make () in
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  Dsim.Engine.deliver_all_pending config ~dst:2;
  Dsim.Engine.apply config (Dsim.Step.Reset 2);
  Alcotest.(check int) "reset counter" 1 (Dsim.Engine.reset_count config 2);
  Alcotest.(check int) "trace resets" 1 (Dsim.Trace.resets (Dsim.Engine.trace config));
  Alcotest.(check (list string)) "recent deliveries cleared" []
    (Dsim.Engine.recent_deliveries config 2)

let test_corrupt () =
  let config = make () in
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  let id =
    match Dsim.Mailbox.pending_ids (Dsim.Engine.mailbox config) with
    | id :: _ -> id
    | [] -> Alcotest.fail "expected pending"
  in
  Dsim.Engine.apply config (Dsim.Step.Corrupt (id, "forged"));
  (match Dsim.Mailbox.find (Dsim.Engine.mailbox config) id with
  | Some e -> Alcotest.(check string) "payload rewritten" "forged" e.Dsim.Envelope.payload
  | None -> Alcotest.fail "message vanished");
  Alcotest.check_raises "corrupt unknown"
    (Invalid_argument "Engine: corrupt of unknown message #777") (fun () ->
      Dsim.Engine.apply config (Dsim.Step.Corrupt (777, "x")))

let test_causal_depth () =
  let config = make () in
  (* Flush p0 and p2; turn p2's message to p1 into a ping; deliver both
     to p1 (depth 1); p1's pong then has depth 2. *)
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  Dsim.Engine.apply config (Dsim.Step.Send 2);
  let ping_id =
    match
      List.filter
        (fun e -> e.Dsim.Envelope.src = 2)
        (Dsim.Mailbox.pending_for (Dsim.Engine.mailbox config) ~dst:1)
    with
    | e :: _ -> e.Dsim.Envelope.id
    | [] -> Alcotest.fail "expected pending from p2"
  in
  Dsim.Engine.apply config (Dsim.Step.Corrupt (ping_id, "ping"));
  Dsim.Engine.deliver_all_pending config ~dst:1;
  Alcotest.(check int) "receive depth 1" 1 (Dsim.Engine.receive_depth config 1);
  Dsim.Engine.apply config (Dsim.Step.Send 1);
  let pong =
    match
      List.filter
        (fun e -> e.Dsim.Envelope.payload = "pong")
        (Dsim.Mailbox.pending_for (Dsim.Engine.mailbox config) ~dst:2)
    with
    | [ e ] -> e
    | _ -> Alcotest.fail "expected exactly the pong"
  in
  Alcotest.(check int) "pong depth = 2" 2 pong.Dsim.Envelope.depth;
  Dsim.Engine.apply config (Dsim.Step.Deliver pong.Dsim.Envelope.id);
  Alcotest.(check int) "chain depth propagates" 2 (Dsim.Engine.max_chain_depth config)

let test_copy_isolation () =
  let config = make () in
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  let fork = Dsim.Engine.copy config in
  Dsim.Engine.deliver_all_pending fork ~dst:1;
  Dsim.Engine.apply fork (Dsim.Step.Reset 2);
  Alcotest.(check int) "original mailbox intact" 3
    (Dsim.Mailbox.size (Dsim.Engine.mailbox config));
  Alcotest.(check int) "original resets intact" 0 (Dsim.Engine.reset_count config 2);
  Alcotest.(check bool) "fingerprints diverged" true
    (Dsim.Engine.fingerprint config <> Dsim.Engine.fingerprint fork)

let test_determinism () =
  let run seed =
    let config =
      Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n:7
        ~fault_bound:1
        ~inputs:(Array.init 7 (fun i -> i mod 2 = 0))
        ~seed ()
    in
    ignore
      (Dsim.Runner.run_windows config
         ~strategy:(Adversary.Split_vote.windowed ())
         ~max_windows:300 ~stop:`First_decision);
    Dsim.Engine.fingerprint config
  in
  Alcotest.(check string) "same seed, same execution" (run 11) (run 11);
  Alcotest.(check bool) "different seed, different execution" true (run 11 <> run 12)

let test_reseed_changes_coins () =
  let base =
    Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n:7 ~fault_bound:1
      ~inputs:(Array.init 7 (fun i -> i mod 2 = 0))
      ~seed:5 ()
  in
  let run config =
    ignore
      (Dsim.Runner.run_windows config
         ~strategy:(Adversary.Split_vote.windowed ())
         ~max_windows:50 ~stop:`Never);
    Dsim.Engine.fingerprint config
  in
  let replay = run (Dsim.Engine.copy base) in
  let replay2 = run (Dsim.Engine.copy base) in
  Alcotest.(check string) "copies replay identical coins" replay replay2;
  let fork = Dsim.Engine.copy base in
  Dsim.Engine.reseed fork (Prng.Stream.root 999);
  Alcotest.(check bool) "reseeded fork diverges" true (run fork <> replay)

let test_apply_window () =
  let config = make ~n:3 ~t:1 () in
  let window = Dsim.Window.uniform ~n:3 ~silenced:[ 0 ] ~resets:[ 2 ] () in
  Dsim.Engine.apply_window config window;
  Alcotest.(check int) "window counted" 1 (Dsim.Engine.window_index config);
  (* Everyone sent 3 hellos; each processor receives from {1,2} only;
     p0's messages are dropped at window end. *)
  Alcotest.(check int) "sent" 9 (Dsim.Trace.sent (Dsim.Engine.trace config));
  Alcotest.(check int) "delivered 2 senders x 3 dsts" 6
    (Dsim.Trace.delivered (Dsim.Engine.trace config));
  Alcotest.(check int) "silenced sender dropped" 3
    (Dsim.Trace.dropped (Dsim.Engine.trace config));
  Alcotest.(check int) "reset applied" 1 (Dsim.Engine.reset_count config 2);
  Alcotest.(check int) "mailbox drained" 0 (Dsim.Mailbox.size (Dsim.Engine.mailbox config))

let test_apply_window_keep_undelivered () =
  let config = make ~n:3 ~t:1 () in
  let window = Dsim.Window.uniform ~n:3 ~silenced:[ 0 ] () in
  Dsim.Engine.apply_window config ~drop_undelivered:false window;
  (* p0's 3 messages stay in the buffer instead of being dropped. *)
  Alcotest.(check int) "undelivered retained" 3
    (Dsim.Mailbox.size (Dsim.Engine.mailbox config));
  Alcotest.(check int) "nothing dropped" 0 (Dsim.Trace.dropped (Dsim.Engine.trace config))

let test_window_delivery_order () =
  (* Within a window, each destination receives in ascending sender
     order — "some fixed order" made concrete and deterministic. *)
  let config = make ~n:3 ~t:0 () in
  Dsim.Engine.apply_window config (Dsim.Window.uniform ~n:3 ());
  let core = (Dsim.Engine.state_cores config).(1) in
  (* The toy state_core lists receptions most-recent-first, so sender 2
     must appear before sender 0 in the rendering. *)
  let index_of sub s =
    let n = String.length sub and h = String.length s in
    let rec scan i = if i + n > h then -1 else if String.sub s i n = sub then i else scan (i + 1) in
    scan 0
  in
  let pos0 = index_of "0-hello" core and pos2 = index_of "2-hello" core in
  Alcotest.(check bool) "both delivered" true (pos0 >= 0 && pos2 >= 0);
  Alcotest.(check bool) "ascending sender order" true (pos2 < pos0)

let test_decision_recorded () =
  let config = make () in
  Dsim.Engine.apply config (Dsim.Step.Send 0);
  let id =
    match Dsim.Mailbox.pending_for (Dsim.Engine.mailbox config) ~dst:1 with
    | e :: _ -> e.Dsim.Envelope.id
    | [] -> Alcotest.fail "expected pending"
  in
  Dsim.Engine.apply config (Dsim.Step.Corrupt (id, "decide"));
  Dsim.Engine.apply config (Dsim.Step.Deliver id);
  Alcotest.(check bool) "some decided" true (Dsim.Engine.some_decided config);
  Alcotest.(check (list (pair int bool))) "p1 decided its input" [ (1, false) ]
    (Dsim.Engine.decided_values config);
  match Dsim.Trace.first_decision (Dsim.Engine.trace config) with
  | Some (pid, value, _, _, _) ->
      Alcotest.(check int) "pid" 1 pid;
      Alcotest.(check bool) "value" false value
  | None -> Alcotest.fail "decision not traced"

let test_recent_deliveries_lifecycle () =
  let config = make () in
  (* Flush every initial outbox, then turn p2's message to p1 into a
     ping while it is still buffered. *)
  List.iter (fun p -> Dsim.Engine.apply config (Dsim.Step.Send p)) [ 0; 1; 2 ];
  let from_p2 =
    match
      List.filter
        (fun e -> e.Dsim.Envelope.src = 2)
        (Dsim.Mailbox.pending_for (Dsim.Engine.mailbox config) ~dst:1)
    with
    | e :: _ -> e.Dsim.Envelope.id
    | [] -> Alcotest.fail "expected pending from p2"
  in
  Dsim.Engine.apply config (Dsim.Step.Corrupt (from_p2, "ping"));
  let from_p0 =
    match
      List.filter
        (fun e -> e.Dsim.Envelope.src = 0)
        (Dsim.Mailbox.pending_for (Dsim.Engine.mailbox config) ~dst:1)
    with
    | e :: _ -> e.Dsim.Envelope.id
    | [] -> Alcotest.fail "expected pending from p0"
  in
  Dsim.Engine.apply config (Dsim.Step.Deliver from_p0);
  Alcotest.(check int) "one recent delivery" 1
    (List.length (Dsim.Engine.recent_deliveries config 1));
  (* A send that emits nothing must NOT clear the log... *)
  Dsim.Engine.apply config (Dsim.Step.Send 1);
  Alcotest.(check int) "empty send preserves log" 1
    (List.length (Dsim.Engine.recent_deliveries config 1));
  (* ...but a message-emitting send does.  The ping queues a pong. *)
  Dsim.Engine.apply config (Dsim.Step.Deliver from_p2);
  Alcotest.(check int) "two recent now" 2
    (List.length (Dsim.Engine.recent_deliveries config 1));
  Dsim.Engine.apply config (Dsim.Step.Send 1);
  Alcotest.(check (list string)) "emitting send clears log" []
    (Dsim.Engine.recent_deliveries config 1)

let suite =
  [
    Alcotest.test_case "init" `Quick test_init;
    Alcotest.test_case "init validation" `Quick test_init_validation;
    Alcotest.test_case "out-of-range recipient rejected" `Quick
      test_out_of_range_recipient_rejected;
    Alcotest.test_case "send flushes once" `Quick test_send_flushes_once;
    Alcotest.test_case "deliver" `Quick test_deliver;
    Alcotest.test_case "deliver unknown raises" `Quick test_deliver_unknown_raises;
    Alcotest.test_case "crash semantics" `Quick test_crash_semantics;
    Alcotest.test_case "reset semantics" `Quick test_reset_semantics;
    Alcotest.test_case "corrupt" `Quick test_corrupt;
    Alcotest.test_case "causal depth" `Quick test_causal_depth;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "reseed changes coins" `Quick test_reseed_changes_coins;
    Alcotest.test_case "apply window" `Quick test_apply_window;
    Alcotest.test_case "apply window keep undelivered" `Quick
      test_apply_window_keep_undelivered;
    Alcotest.test_case "window delivery order" `Quick test_window_delivery_order;
    Alcotest.test_case "decision recorded" `Quick test_decision_recorded;
    Alcotest.test_case "recent deliveries lifecycle" `Quick test_recent_deliveries_lifecycle;
  ]
