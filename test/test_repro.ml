(* Integration tests of the reproduction harness: the cheap experiments
   run end-to-end at quick scale and their invariant columns hold. *)

let rows table = Stats.Table.row_count table

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_e6_constants_table () =
  let table = Agreement.Repro.e6_theory_constants ~scale:`Quick in
  Alcotest.(check bool) "has rows" true (rows table > 0);
  let rendered = Stats.Table.to_string table in
  (* Inequality (3) must hold in every row: no "no" cells. *)
  Alcotest.(check bool) "no violations" false (contains rendered "| no ")

let test_e5b_zk_table () =
  let table = Agreement.Repro.e5b_zk_sets ~scale:`Quick in
  Alcotest.(check bool) "has rows" true (rows table >= 7);
  let rendered = Stats.Table.to_string table in
  Alcotest.(check bool) "all probes pass" false (contains rendered "| no ")

let test_e2_fit_is_exponential () =
  let _table, fit = Agreement.Repro.e2_exponential_variant ~scale:`Quick () in
  (* The slope is bits per processor; the paper's effect is a genuine
     exponential, anything clearly positive and well-fitted passes. *)
  Alcotest.(check bool) "positive slope" true (fit.Stats.Regression.slope > 0.3);
  Alcotest.(check bool) "good fit" true (fit.Stats.Regression.r_squared > 0.8)

let test_render_markdown () =
  let table = Agreement.Repro.e6_theory_constants ~scale:`Quick in
  let md = Agreement.Repro.render_markdown [ ("E6", table) ] in
  Alcotest.(check bool) "has header" true (contains md "### E6");
  Alcotest.(check bool) "has code fence" true (contains md "```")

let suite =
  [
    Alcotest.test_case "E6 constants table" `Quick test_e6_constants_table;
    Alcotest.test_case "E5b zk table" `Quick test_e5b_zk_table;
    Alcotest.test_case "E2 fit is exponential" `Slow test_e2_fit_is_exponential;
    Alcotest.test_case "render markdown" `Quick test_render_markdown;
  ]
