(* White-box tests of Ben-Or: n = 7, t = 2, so each phase waits for
   n - t = 5 messages; proposals need a > n/2 = 3.5 report majority;
   decisions need t + 1 = 3 agreeing proposals. *)

let protocol = Protocols.Ben_or.protocol ()

let rng () = Prng.Stream.root 7

let init ?(input = true) () = protocol.Dsim.Protocol.init ~n:7 ~t:2 ~id:0 ~input

let deliver state ~src m = protocol.Dsim.Protocol.on_deliver state ~src m (rng ())

let report round value = Protocols.Ben_or.Report { round; value }
let propose round value = Protocols.Ben_or.Propose { round; value }

let feed state messages =
  List.fold_left (fun s (src, m) -> deliver s ~src m) state messages

(* Drain the outbox and expand lazy broadcasts into the explicit
   (destination, message) pairs the engine would enqueue. *)
let drain state =
  let state, sends = protocol.Dsim.Protocol.outgoing state in
  (state, Dsim.Step.expand ~n:7 sends)

let test_init () =
  let state = init () in
  Alcotest.(check int) "round 1" 1 (Protocols.Ben_or.round_of_state state);
  Alcotest.(check bool) "report phase" true
    (Protocols.Ben_or.phase_of_state state = `Report);
  let _, messages = drain state in
  Alcotest.(check int) "broadcasts reports" 7 (List.length messages);
  List.iter
    (fun (_, m) ->
      match m with
      | Protocols.Ben_or.Report { round; value } ->
          Alcotest.(check int) "round" 1 round;
          Alcotest.(check bool) "value" true value
      | Protocols.Ben_or.Propose _ -> Alcotest.fail "unexpected proposal")
    messages

let test_majority_report_proposes_value () =
  let state = init () in
  let state =
    feed state
      [
        (1, report 1 true); (2, report 1 true); (3, report 1 true);
        (4, report 1 true); (5, report 1 false);
      ]
  in
  Alcotest.(check bool) "now propose phase" true
    (Protocols.Ben_or.phase_of_state state = `Propose);
  let _, messages = drain state in
  let proposals =
    List.filter_map
      (fun (_, m) ->
        match m with Protocols.Ben_or.Propose { value; _ } -> Some value | _ -> None)
      messages
  in
  Alcotest.(check int) "proposed to all" 7 (List.length proposals);
  List.iter
    (fun v -> Alcotest.(check bool) "proposes Some true" true (v = Some true))
    proposals

let test_split_reports_propose_question () =
  let state, _ = drain (init ()) in
  let state =
    feed state
      [
        (1, report 1 true); (2, report 1 true); (3, report 1 true);
        (4, report 1 false); (5, report 1 false);
      ]
  in
  (* 3 of 5 is not > n/2 = 3.5 of all n. *)
  let _, messages = drain state in
  List.iter
    (fun (_, m) ->
      match m with
      | Protocols.Ben_or.Propose { value; _ } ->
          Alcotest.(check bool) "proposes ?" true (value = None)
      | Protocols.Ben_or.Report _ -> Alcotest.fail "unexpected report")
    messages

let to_propose_phase state =
  feed state
    [
      (1, report 1 true); (2, report 1 true); (3, report 1 true);
      (4, report 1 false); (5, report 1 false);
    ]

let test_decides_on_t_plus_1_proposals () =
  let state = to_propose_phase (init ()) in
  let state =
    feed state
      [
        (1, propose 1 (Some false)); (2, propose 1 (Some false));
        (3, propose 1 (Some false)); (4, propose 1 None); (5, propose 1 None);
      ]
  in
  Alcotest.(check bool) "decided 0" true
    (protocol.Dsim.Protocol.output state = Some false);
  Alcotest.(check int) "advanced to round 2" 2 (Protocols.Ben_or.round_of_state state);
  Alcotest.(check bool) "adopted decided value" false
    (Protocols.Ben_or.estimate_of_state state)

let test_adopts_on_single_proposal () =
  let state = to_propose_phase (init ()) in
  let state =
    feed state
      [
        (1, propose 1 (Some false)); (2, propose 1 None); (3, propose 1 None);
        (4, propose 1 None); (5, propose 1 None);
      ]
  in
  Alcotest.(check bool) "no decision on 1 proposal" true
    (protocol.Dsim.Protocol.output state = None);
  Alcotest.(check bool) "adopted the proposal" false
    (Protocols.Ben_or.estimate_of_state state)

let test_coin_on_all_question () =
  let outcomes = ref [] in
  for seed = 1 to 30 do
    let r = Prng.Stream.root seed in
    let state = protocol.Dsim.Protocol.init ~n:7 ~t:2 ~id:0 ~input:true in
    let state =
      List.fold_left
        (fun s (src, m) -> protocol.Dsim.Protocol.on_deliver s ~src m r)
        state
        [
          (1, report 1 true); (2, report 1 true); (3, report 1 true);
          (4, report 1 false); (5, report 1 false);
          (1, propose 1 None); (2, propose 1 None); (3, propose 1 None);
          (4, propose 1 None); (5, propose 1 None);
        ]
    in
    outcomes := Protocols.Ben_or.estimate_of_state state :: !outcomes
  done;
  Alcotest.(check bool) "both coin values occur" true
    (List.mem true !outcomes && List.mem false !outcomes)

let test_future_round_buffered () =
  let state = init () in
  let state = feed state [ (1, report 2 true) ] in
  Alcotest.(check int) "still round 1" 1 (Protocols.Ben_or.round_of_state state);
  (* Complete round 1 (all-true reports then all-true proposals). *)
  let state =
    feed state
      [
        (1, report 1 true); (2, report 1 true); (3, report 1 true);
        (4, report 1 true); (5, report 1 true);
        (1, propose 1 (Some true)); (2, propose 1 (Some true));
        (3, propose 1 (Some true)); (4, propose 1 (Some true));
        (5, propose 1 (Some true));
      ]
  in
  Alcotest.(check int) "round 2" 2 (Protocols.Ben_or.round_of_state state);
  Alcotest.(check bool) "decided" true (protocol.Dsim.Protocol.output state = Some true)

let test_duplicates_ignored () =
  let state = init () in
  let state =
    feed state
      [ (1, report 1 true); (1, report 1 true); (1, report 1 false); (2, report 1 true) ]
  in
  Alcotest.(check bool) "still in report phase (2 distinct senders)" true
    (Protocols.Ben_or.phase_of_state state = `Report)

let test_reset_restarts () =
  let state = to_propose_phase (init ()) in
  let state = protocol.Dsim.Protocol.on_reset state in
  Alcotest.(check int) "round restarts" 1 (Protocols.Ben_or.round_of_state state);
  Alcotest.(check bool) "report phase" true
    (Protocols.Ben_or.phase_of_state state = `Report);
  let obs = protocol.Dsim.Protocol.observe state in
  Alcotest.(check int) "reset counted" 1 obs.Dsim.Obs.resets

let test_message_introspection () =
  Alcotest.(check bool) "report bit" true
    (protocol.Dsim.Protocol.message_bit (report 1 true) = Some true);
  Alcotest.(check bool) "question has no bit" true
    (protocol.Dsim.Protocol.message_bit (propose 1 None) = None);
  Alcotest.(check bool) "proposal bit" true
    (protocol.Dsim.Protocol.message_bit (propose 1 (Some false)) = Some false);
  (match protocol.Dsim.Protocol.rewrite_bit (propose 2 None) true with
  | Some (Protocols.Ben_or.Propose { round; value }) ->
      Alcotest.(check int) "round kept" 2 round;
      Alcotest.(check bool) "bit forged" true (value = Some true)
  | _ -> Alcotest.fail "expected rewritten proposal")

let test_validity_unanimous () =
  (* All processors with input 0 decide 0 in round 1 under fair
     delivery (validity, Definition 2). *)
  let n = 7 in
  let config =
    Dsim.Engine.init ~protocol ~n ~fault_bound:2 ~inputs:(Array.make n false) ~seed:3 ()
  in
  let outcome =
    Dsim.Runner.run_steps config
      ~strategy:(Adversary.Benign.lockstep ())
      ~max_steps:10_000 ~stop:`All_decided
  in
  Alcotest.(check int) "all decided" n (List.length outcome.Dsim.Runner.decided);
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "decided 0" false v)
    outcome.Dsim.Runner.decided

let suite =
  [
    Alcotest.test_case "init" `Quick test_init;
    Alcotest.test_case "majority report proposes value" `Quick
      test_majority_report_proposes_value;
    Alcotest.test_case "split reports propose ?" `Quick
      test_split_reports_propose_question;
    Alcotest.test_case "decides on t+1 proposals" `Quick test_decides_on_t_plus_1_proposals;
    Alcotest.test_case "adopts on single proposal" `Quick test_adopts_on_single_proposal;
    Alcotest.test_case "coin on all-?" `Quick test_coin_on_all_question;
    Alcotest.test_case "future round buffered" `Quick test_future_round_buffered;
    Alcotest.test_case "duplicates ignored" `Quick test_duplicates_ignored;
    Alcotest.test_case "reset restarts" `Quick test_reset_restarts;
    Alcotest.test_case "message introspection" `Quick test_message_introspection;
    Alcotest.test_case "validity unanimous" `Quick test_validity_unanimous;
  ]
