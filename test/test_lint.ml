(* The determinism lint pass, both layers: the static AST linter
   (positive and negative fixtures per rule, scoping, suppression) and
   the runtime trace invariant checker (clean real executions, plus
   hand-built traces violating each invariant). *)

open Lintkit

(* ------------------------------------------------------------------ *)
(* Layer 1: static linter.                                             *)

let diags ?hash_allowlist ?domain_allowlist ~path source =
  match Static_lint.lint_source ?hash_allowlist ?domain_allowlist ~path source with
  | Ok ds -> ds
  | Error message -> Alcotest.failf "unexpected parse error: %s" message

let rules_of ds = List.map (fun d -> Rules.id d.Static_lint.rule) ds

let check_rules what expected ds =
  Alcotest.(check (list string)) what expected (rules_of ds)

let test_r1_ambient_randomness () =
  let src = "let roll () = Random.int 6\nlet now () = Sys.time ()" in
  check_rules "flagged in lib" [ "R1"; "R1" ] (diags ~path:"lib/dsim/foo.ml" src);
  check_rules "gettimeofday flagged" [ "R1" ]
    (diags ~path:"lib/stats/foo.ml" "let t () = Unix.gettimeofday ()");
  check_rules "bin may use ambient randomness" []
    (diags ~path:"bin/foo.ml" src);
  check_rules "examples may too" [] (diags ~path:"examples/foo.ml" src)

let test_r1_position () =
  let src = "let a = 1\nlet roll () = Random.bool ()" in
  match diags ~path:"lib/prng/foo.ml" src with
  | [ d ] ->
      Alcotest.(check int) "line" 2 d.Static_lint.line;
      Alcotest.(check string) "path echoed" "lib/prng/foo.ml" d.Static_lint.path
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_r2_hashtbl_hash () =
  let src = "let h name = Hashtbl.hash name" in
  check_rules "flagged in lib" [ "R2" ] (diags ~path:"lib/prng/stream.ml" src);
  check_rules "flagged in bin too (R2 is global)" [ "R2" ]
    (diags ~path:"bin/foo.ml" src);
  check_rules "allowlist waives" []
    (diags ~hash_allowlist:[ "lib/prng/" ] ~path:"lib/prng/stream.ml" src);
  check_rules "seeded variant flagged" [ "R2" ]
    (diags ~path:"lib/dsim/foo.ml" "let h x = Hashtbl.seeded_hash 7 x")

let test_r3_polymorphic_compare () =
  let field_cmp = "let sort l = List.sort (fun a b -> compare a.round b.round) l" in
  check_rules "compare on fields flagged in lib/dsim" [ "R3" ]
    (diags ~path:"lib/dsim/foo.ml" field_cmp);
  check_rules "and in lib/adversary" [ "R3" ]
    (diags ~path:"lib/adversary/foo.ml" field_cmp);
  check_rules "not in lib/stats (out of R3 scope)" []
    (diags ~path:"lib/stats/foo.ml" field_cmp);
  check_rules "equality against Some payload flagged" [ "R3" ]
    (diags ~path:"lib/protocols/foo.ml" "let f x = x = Some true");
  check_rules "equality against None is fine" []
    (diags ~path:"lib/protocols/foo.ml" "let f x = x = None");
  check_rules "record literal equality flagged" [ "R3" ]
    (diags ~path:"lib/dsim/foo.ml" "let f x = x = { id = 1 }");
  check_rules "compare on plain ints is fine" []
    (diags ~path:"lib/dsim/foo.ml" "let f a b = compare a b");
  check_rules "named comparators are fine" []
    (diags ~path:"lib/dsim/foo.ml"
       "let sort l = List.sort (fun a b -> Int.compare a.round b.round) l")

let test_r4_float_equality () =
  let src = "let zero x = x = 0.0" in
  check_rules "float-literal = flagged in lib/stats" [ "R4" ]
    (diags ~path:"lib/stats/foo.ml" src);
  check_rules "and in lib/lowerbound" [ "R4" ]
    (diags ~path:"lib/lowerbound/foo.ml" "let f x = x <> 1.5");
  check_rules "out of scope in lib/dsim" [] (diags ~path:"lib/dsim/foo.ml" src);
  check_rules "Float.equal is fine" []
    (diags ~path:"lib/stats/foo.ml" "let zero x = Float.equal x 0.0")

let test_r5_printing () =
  let src = "let shout () = print_endline \"hi\"" in
  check_rules "printing flagged in lib" [ "R5" ]
    (diags ~path:"lib/dsim/foo.ml" src);
  check_rules "Printf.printf flagged" [ "R5" ]
    (diags ~path:"lib/stats/foo.ml" "let f n = Printf.printf \"%d\" n");
  check_rules "examples may print" [] (diags ~path:"examples/foo.ml" src);
  check_rules "bin may print" [] (diags ~path:"bin/foo.ml" src);
  check_rules "formatter-directed output is fine" []
    (diags ~path:"lib/dsim/foo.ml"
       "let pp ppf n = Format.fprintf ppf \"%d\" n")

(* The R5 gaps closed by this PR: the std_formatter print helpers and
   fprintf aimed at a literal ambient channel. *)
let test_r5_ambient_channels () =
  check_rules "Format.print_string flagged" [ "R5" ]
    (diags ~path:"lib/dsim/foo.ml"
       "let f s = Format.print_string s");
  check_rules "Format.print_newline flagged" [ "R5" ]
    (diags ~path:"lib/stats/foo.ml" "let f () = Format.print_newline ()");
  check_rules "Printf.fprintf stdout flagged" [ "R5" ]
    (diags ~path:"lib/dsim/foo.ml"
       "let f n = Printf.fprintf stdout \"%d\" n");
  check_rules "Printf.fprintf stderr flagged" [ "R5" ]
    (diags ~path:"lib/dsim/foo.ml"
       "let f n = Printf.fprintf stderr \"%d\" n");
  check_rules "Format.fprintf std_formatter flagged" [ "R5" ]
    (diags ~path:"lib/dsim/foo.ml"
       "let f n = Format.fprintf Format.std_formatter \"%d\" n");
  check_rules "Stdlib-qualified spelling flagged" [ "R5" ]
    (diags ~path:"lib/dsim/foo.ml"
       "let f n = Stdlib.Printf.fprintf Stdlib.stdout \"%d\" n");
  check_rules "fprintf to a parameter channel is fine" []
    (diags ~path:"lib/dsim/foo.ml"
       "let f oc n = Printf.fprintf oc \"%d\" n");
  check_rules "fprintf to a parameter formatter is fine" []
    (diags ~path:"lib/dsim/foo.ml"
       "let pp ppf n = Format.fprintf ppf \"%d\" n");
  check_rules "bin may aim at stdout" []
    (diags ~path:"bin/foo.ml" "let f n = Printf.fprintf stdout \"%d\" n")

let test_find_substring () =
  let find = Static_lint.find_substring in
  Alcotest.(check (option int)) "basic" (Some 2) (find "ababc" "abc" 0);
  Alcotest.(check (option int)) "at start" (Some 0) (find "abc" "abc" 0);
  Alcotest.(check (option int)) "from skips the first hit" (Some 1)
    (find "aaa" "aa" 1);
  Alcotest.(check (option int)) "overlapping" (Some 0) (find "aaa" "aa" 0);
  Alcotest.(check (option int)) "periodic needle" (Some 2)
    (find "abababc" "ababc" 0);
  Alcotest.(check (option int)) "missing" None (find "abcdef" "xyz" 0);
  Alcotest.(check (option int)) "needle longer than haystack" None
    (find "ab" "abc" 0);
  Alcotest.(check (option int)) "empty needle at from" (Some 3)
    (find "abc" "" 3);
  Alcotest.(check (option int)) "empty needle past end" None
    (find "abc" "" 4);
  Alcotest.(check (option int)) "negative from clamps" (Some 0)
    (find "abc" "a" (-2));
  Alcotest.(check (option int)) "at end" (Some 3) (find "xyzab" "ab" 0)

(* KMP against the obvious quadratic reference on random inputs. *)
let naive_find haystack needle from =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i > hl - nl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  go (Int.max from 0)

let qcheck_find_substring =
  let ab_string n =
    QCheck.(string_gen_of_size (Gen.int_bound n) (Gen.oneofl [ 'a'; 'b' ]))
  in
  QCheck.Test.make ~count:500 ~name:"find_substring matches naive search"
    QCheck.(triple (ab_string 40) (ab_string 4) (int_bound 45))
    (fun (haystack, needle, from) ->
      Static_lint.find_substring haystack needle from
      = naive_find haystack needle from)

(* ------------------------------------------------------------------ *)
(* Suppression parser round-trip (qcheck).                             *)

let rule_subset_gen =
  QCheck.Gen.(
    let* n = int_range 1 (List.length Rules.all) in
    let* shuffled = shuffle_l Rules.all in
    return (List.filteri (fun i _ -> i < n) shuffled))

let sep_gen = QCheck.Gen.oneofl [ ", "; ","; " "; " , " ]

let suppression_line_gen =
  QCheck.Gen.(
    let* rules = rule_subset_gen in
    let* sep = sep_gen in
    let* trailer = oneofl [ ""; " let x = 1"; " R1 R2" ] in
    let spec = String.concat sep (List.map Rules.id rules) in
    return (rules, Printf.sprintf "(* lint: allow %s *)%s" spec trailer))

let qcheck_suppression_roundtrip =
  QCheck.Test.make ~count:300 ~name:"suppression spec round-trips"
    (QCheck.make suppression_line_gen
       ~print:(fun (_, line) -> line))
    (fun (rules, line) ->
      match Static_lint.parse_suppression_line line with
      | Some (Static_lint.Only parsed) -> parsed = rules
      | Some Static_lint.All | None -> false)

let test_suppression_parser_edges () =
  let parse = Static_lint.parse_suppression_line in
  (match parse "(* lint: allow all *)" with
  | Some Static_lint.All -> ()
  | _ -> Alcotest.fail "allow all");
  (match parse "(* lint: allow ALL, R3 *)" with
  | Some Static_lint.All -> ()
  | _ -> Alcotest.fail "all wins case-insensitively");
  (* Rule ids after the comment terminator must not count. *)
  (match parse "(* lint: allow R3 *) r7_subs R10" with
  | Some (Static_lint.Only [ Rules.R3 ]) -> ()
  | _ -> Alcotest.fail "ids after *) must be ignored");
  (match parse "let x = 1 (* no marker here *)" with
  | None -> ()
  | Some _ -> Alcotest.fail "unmarked line");
  (* Unknown ids alone do not create a suppression. *)
  (match parse "(* lint: allow R42 *)" with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown ids rejected");
  (* Mixed known and unknown keeps the known ones. *)
  (match parse "(* lint: allow R42, R9 *)" with
  | Some (Static_lint.Only [ Rules.R9 ]) -> ()
  | _ -> Alcotest.fail "known ids survive unknown neighbours")

let test_r6_multicore_primitives () =
  let src = "let go f = Domain.join (Domain.spawn f)" in
  check_rules "Domain flagged in lib" [ "R6"; "R6" ]
    (diags ~path:"lib/dsim/foo.ml" src);
  check_rules "flagged in bin too (R6 is global)" [ "R6"; "R6" ]
    (diags ~path:"bin/foo.ml" src);
  check_rules "Atomic flagged" [ "R6" ]
    (diags ~path:"lib/core/foo.ml" "let c = Atomic.make 0");
  check_rules "Mutex flagged" [ "R6" ]
    (diags ~path:"lib/stats/foo.ml" "let m = Mutex.create ()");
  check_rules "allowlist waives the sweep engine" []
    (diags
       ~domain_allowlist:[ "lib/core/par_sweep" ]
       ~path:"lib/core/par_sweep.ml" src);
  check_rules "allowlist is path-specific" [ "R6"; "R6" ]
    (diags
       ~domain_allowlist:[ "lib/core/par_sweep" ]
       ~path:"lib/core/ensemble.ml" src);
  (* A module merely named like a primitive must not trip the prefix
     match. *)
  check_rules "Domainlike module is fine" []
    (diags ~path:"lib/dsim/foo.ml" "let x = Domains.f 1")

let test_suppression () =
  check_rules "same-line suppression" []
    (diags ~path:"lib/dsim/foo.ml"
       "let f x = x = Some true (* lint: allow R3 *)");
  check_rules "previous-line suppression" []
    (diags ~path:"lib/dsim/foo.ml"
       "(* lint: allow R3 *)\nlet f x = x = Some true");
  check_rules "allow all" []
    (diags ~path:"lib/dsim/foo.ml"
       "(* lint: allow all *)\nlet f () = Random.bool ()");
  check_rules "wrong rule does not suppress" [ "R3" ]
    (diags ~path:"lib/dsim/foo.ml"
       "let f x = x = Some true (* lint: allow R1 *)");
  check_rules "suppression does not leak two lines down" [ "R1" ]
    (diags ~path:"lib/dsim/foo.ml"
       "(* lint: allow R1 *)\nlet a = 1\nlet f () = Random.bool ()")

let test_parse_error () =
  match Static_lint.lint_source ~path:"lib/dsim/bad.ml" "let let let" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_scopes () =
  let scope path = Rules.scope_of_path path in
  Alcotest.(check bool) "R1 applies under lib" true
    (Rules.applies Rules.R1 (scope "lib/dsim/engine.ml"));
  Alcotest.(check bool) "R1 not under examples" false
    (Rules.applies Rules.R1 (scope "examples/quickstart.ml"));
  Alcotest.(check bool) "absolute prefixes ignored" true
    (Rules.applies Rules.R3 (scope "/root/repo/lib/adversary/crash.ml"));
  Alcotest.(check bool) "R4 only in stats/lowerbound" false
    (Rules.applies Rules.R4 (scope "lib/dsim/engine.ml"));
  Alcotest.(check bool) "R2 everywhere" true
    (Rules.applies Rules.R2 (scope "bench/foo.ml"))

let test_rule_ids () =
  List.iter
    (fun r ->
      match Rules.of_id (Rules.id r) with
      | Some r' -> Alcotest.(check string) "roundtrip" (Rules.id r) (Rules.id r')
      | None -> Alcotest.fail "of_id failed on own id")
    Rules.all;
  Alcotest.(check bool) "case-insensitive" true (Rules.of_id "r3" = Some Rules.R3);
  Alcotest.(check bool) "unknown rejected" true (Rules.of_id "R42" = None)

(* The repo itself must be clean: the same invocation the @lint alias
   runs, as a tier-1 test. *)
let test_repo_is_clean () =
  (* dune runs tests from _build/default/test; walk upwards to the
     first directory that looks like the project root (dune copies the
     sources into _build/default, so that level already qualifies). *)
  let looks_like_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
  in
  let rec find dir depth =
    if looks_like_root dir then Some dir
    else if depth = 0 then None
    else find (Filename.concat dir Filename.parent_dir_name) (depth - 1)
  in
  match find Filename.current_dir_name 5 with
  | None -> Alcotest.fail "could not locate the project root"
  | Some root ->
      let report = Driver.scan ~root () in
      Alcotest.(check int) "no violations" 0
        (List.length report.Driver.diagnostics);
      Alcotest.(check (list string)) "no errors" [] report.Driver.errors;
      Alcotest.(check bool) "scanned a plausible number of files" true
        (report.Driver.files_scanned > 40)

(* ------------------------------------------------------------------ *)
(* Layer 2: trace linter.                                              *)

let config ?(n = 2) ?(t = 1) ?(windowed = false) ?(fifo = true) ?quorum () =
  { Trace_lint.n; t; windowed; fifo; decision_quorum = quorum }

let invariants vs = List.map (fun v -> Trace_lint.invariant_id v.Trace_lint.invariant) vs

let sent ~src ~dst ~msg_id ~depth = Dsim.Trace.Sent { src; dst; msg_id; depth }

let delivered ~src ~dst ~msg_id ~depth =
  Dsim.Trace.Delivered { src; dst; msg_id; depth }

let test_trace_fifo_violation () =
  (* Two messages on the 0 -> 1 channel delivered out of id order. *)
  let events =
    [
      sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      sent ~src:0 ~dst:1 ~msg_id:2 ~depth:1;
      delivered ~src:0 ~dst:1 ~msg_id:2 ~depth:1;
      delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
    ]
  in
  Alcotest.(check (list string)) "fifo flagged" [ "fifo" ]
    (invariants (Trace_lint.check (config ()) events));
  Alcotest.(check (list string)) "waived when fifo is off" []
    (invariants (Trace_lint.check (config ~fifo:false ()) events));
  (* Distinct channels may interleave freely. *)
  let interleaved =
    [
      sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      sent ~src:1 ~dst:0 ~msg_id:2 ~depth:1;
      delivered ~src:1 ~dst:0 ~msg_id:2 ~depth:1;
      delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
    ]
  in
  Alcotest.(check (list string)) "cross-channel order is free" []
    (invariants (Trace_lint.check (config ()) interleaved))

let test_trace_depth_violation () =
  (* First send must have depth 1 (nothing delivered yet). *)
  Alcotest.(check (list string)) "inflated depth flagged" [ "depth" ]
    (invariants
       (Trace_lint.check (config ()) [ sent ~src:0 ~dst:1 ~msg_id:1 ~depth:3 ]));
  (* Depth grows by exactly one over the maximum delivered depth. *)
  let chained =
    [
      sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      sent ~src:1 ~dst:0 ~msg_id:2 ~depth:2;
    ]
  in
  Alcotest.(check (list string)) "exact chain accepted" []
    (invariants (Trace_lint.check (config ()) chained));
  let stale =
    [
      sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      sent ~src:1 ~dst:0 ~msg_id:2 ~depth:1;
    ]
  in
  Alcotest.(check (list string)) "stale depth flagged" [ "depth" ]
    (invariants (Trace_lint.check (config ()) stale))

let test_trace_provenance () =
  Alcotest.(check (list string)) "unsent delivery flagged" [ "provenance" ]
    (invariants
       (Trace_lint.check (config ())
          [ delivered ~src:0 ~dst:1 ~msg_id:9 ~depth:1 ]));
  let double =
    [
      sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
    ]
  in
  (* The duplicate delivery is both a provenance and a FIFO violation. *)
  Alcotest.(check bool) "double delivery flagged" true
    (List.mem "provenance"
       (invariants (Trace_lint.check (config ()) double)));
  let mismatched =
    [
      sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      delivered ~src:1 ~dst:0 ~msg_id:1 ~depth:1;
    ]
  in
  Alcotest.(check (list string)) "endpoint rewrite flagged" [ "provenance" ]
    (invariants (Trace_lint.check (config ()) mismatched))

let test_trace_window_discipline () =
  let cfg = config ~n:3 ~t:1 ~windowed:true () in
  let resets_over_budget =
    [
      Dsim.Trace.Reset_done { pid = 0 };
      Dsim.Trace.Reset_done { pid = 1 };
      Dsim.Trace.Window_closed { index = 1 };
    ]
  in
  Alcotest.(check (list string)) "t+1 resets in one window flagged" [ "window" ]
    (invariants (Trace_lint.check cfg resets_over_budget));
  let across_windows =
    [
      sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      Dsim.Trace.Window_closed { index = 1 };
      delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
    ]
  in
  Alcotest.(check (list string)) "stale delivery flagged" [ "window" ]
    (invariants (Trace_lint.check cfg across_windows));
  let in_window =
    [
      sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
      Dsim.Trace.Reset_done { pid = 0 };
      Dsim.Trace.Window_closed { index = 1 };
    ]
  in
  Alcotest.(check (list string)) "legal window accepted" []
    (invariants (Trace_lint.check cfg in_window))

(* Window_closed indices must arrive 1, 2, 3, ...: a skipped, repeated
   or out-of-order index means the engine's window counter and the
   trace disagree. *)
let test_trace_window_indices () =
  let cfg = config ~n:3 ~t:1 ~windowed:true () in
  Alcotest.(check (list string)) "skipped index flagged" [ "window" ]
    (invariants
       (Trace_lint.check cfg [ Dsim.Trace.Window_closed { index = 2 } ]));
  Alcotest.(check (list string)) "repeated index flagged" [ "window" ]
    (invariants
       (Trace_lint.check cfg
          [
            Dsim.Trace.Window_closed { index = 1 };
            Dsim.Trace.Window_closed { index = 1 };
          ]));
  Alcotest.(check (list string)) "sequential indices accepted" []
    (invariants
       (Trace_lint.check cfg
          [
            Dsim.Trace.Window_closed { index = 1 };
            Dsim.Trace.Window_closed { index = 2 };
            Dsim.Trace.Window_closed { index = 3 };
          ]));
  (* A message that skips a whole window is just as stale as one
     crossing a single boundary. *)
  Alcotest.(check (list string)) "delivery two windows late flagged"
    [ "window" ]
    (invariants
       (Trace_lint.check cfg
          [
            sent ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
            Dsim.Trace.Window_closed { index = 1 };
            Dsim.Trace.Window_closed { index = 2 };
            delivered ~src:0 ~dst:1 ~msg_id:1 ~depth:1;
          ]))

let test_trace_quorum () =
  let cfg = config ~n:3 ~t:1 ~quorum:2 () in
  let premature =
    [ Dsim.Trace.Decided { pid = 0; value = true; step = 1; window = 0; chain_depth = 0 } ]
  in
  Alcotest.(check (list string)) "decision without a quorum flagged" [ "quorum" ]
    (invariants (Trace_lint.check cfg premature));
  let conflict =
    [
      sent ~src:1 ~dst:0 ~msg_id:1 ~depth:1;
      sent ~src:2 ~dst:0 ~msg_id:2 ~depth:1;
      sent ~src:1 ~dst:2 ~msg_id:3 ~depth:1;
      sent ~src:0 ~dst:2 ~msg_id:4 ~depth:1;
      delivered ~src:1 ~dst:0 ~msg_id:1 ~depth:1;
      delivered ~src:2 ~dst:0 ~msg_id:2 ~depth:1;
      delivered ~src:1 ~dst:2 ~msg_id:3 ~depth:1;
      delivered ~src:0 ~dst:2 ~msg_id:4 ~depth:1;
      Dsim.Trace.Decided { pid = 0; value = true; step = 5; window = 0; chain_depth = 1 };
      Dsim.Trace.Decided { pid = 2; value = false; step = 6; window = 0; chain_depth = 1 };
    ]
  in
  Alcotest.(check (list string)) "opposite decisions flagged" [ "quorum" ]
    (invariants (Trace_lint.check cfg conflict))

let test_audit_real_windowed_run () =
  let n = 13 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let config =
    Dsim.Engine.init
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~n ~fault_bound:t ~inputs ~seed:11 ~record_events:true ()
  in
  ignore
    (Dsim.Runner.run_windows config
       ~strategy:(Adversary.Split_vote.windowed_with_resets ())
       ~max_windows:50_000 ~stop:`All_decided);
  Alcotest.(check (list string)) "real execution audits clean" []
    (invariants (Trace_lint.audit ~decision_quorum:(n - (2 * t)) config))

let test_audit_real_stepwise_run () =
  let n = 7 and t = 3 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let config =
    Dsim.Engine.init
      ~protocol:(Protocols.Ben_or.protocol ())
      ~n ~fault_bound:t ~inputs ~seed:4 ~record_events:true ()
  in
  ignore
    (Dsim.Runner.run_steps config
       ~strategy:(Adversary.Crash.before_decision ())
       ~max_steps:200_000 ~stop:`First_decision);
  Alcotest.(check (list string)) "crash execution audits clean" []
    (invariants (Trace_lint.audit ~decision_quorum:(n - t) config))

let test_audit_without_events () =
  let n = 7 and t = 1 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let config =
    Dsim.Engine.init
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~n ~fault_bound:t ~inputs ~seed:2 ()
  in
  ignore
    (Dsim.Runner.run_windows config
       ~strategy:(Adversary.Benign.windowed ())
       ~max_windows:10_000 ~stop:`All_decided);
  Alcotest.(check (list string)) "nothing to audit, no violations" []
    (invariants (Trace_lint.audit config))

let test_ensemble_lint_wiring () =
  let n = 13 and t = 2 in
  let spec =
    {
      Agreement.Ensemble.n;
      t;
      inputs = Agreement.Ensemble.split_inputs ~n;
      max_windows = 50_000;
      max_steps = 0;
      stop = `All_decided;
    }
  in
  let result =
    Agreement.Ensemble.run_windowed ~lint:true ~lint_quorum:(n - (2 * t))
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Reset_storm.rotating ())
      ~spec ~seeds:[ 1; 2; 3 ] ()
  in
  Alcotest.(check int) "three audited runs" 3 result.Agreement.Ensemble.runs;
  Alcotest.(check int) "no violations" 0 result.Agreement.Ensemble.lint_violations

let suite =
  [
    Alcotest.test_case "R1 ambient randomness" `Quick test_r1_ambient_randomness;
    Alcotest.test_case "R1 position" `Quick test_r1_position;
    Alcotest.test_case "R2 Hashtbl.hash" `Quick test_r2_hashtbl_hash;
    Alcotest.test_case "R3 polymorphic compare" `Quick test_r3_polymorphic_compare;
    Alcotest.test_case "R4 float equality" `Quick test_r4_float_equality;
    Alcotest.test_case "R5 printing" `Quick test_r5_printing;
    Alcotest.test_case "R5 ambient channels" `Quick test_r5_ambient_channels;
    Alcotest.test_case "find_substring" `Quick test_find_substring;
    QCheck_alcotest.to_alcotest qcheck_find_substring;
    QCheck_alcotest.to_alcotest qcheck_suppression_roundtrip;
    Alcotest.test_case "suppression parser edges" `Quick
      test_suppression_parser_edges;
    Alcotest.test_case "R6 multicore primitives" `Quick test_r6_multicore_primitives;
    Alcotest.test_case "suppression comments" `Quick test_suppression;
    Alcotest.test_case "parse errors reported" `Quick test_parse_error;
    Alcotest.test_case "rule scoping" `Quick test_scopes;
    Alcotest.test_case "rule ids" `Quick test_rule_ids;
    Alcotest.test_case "repo is lint-clean" `Quick test_repo_is_clean;
    Alcotest.test_case "trace: fifo" `Quick test_trace_fifo_violation;
    Alcotest.test_case "trace: causal depth" `Quick test_trace_depth_violation;
    Alcotest.test_case "trace: provenance" `Quick test_trace_provenance;
    Alcotest.test_case "trace: window discipline" `Quick test_trace_window_discipline;
    Alcotest.test_case "trace: window indices" `Quick test_trace_window_indices;
    Alcotest.test_case "trace: quorum" `Quick test_trace_quorum;
    Alcotest.test_case "audit: windowed run" `Quick test_audit_real_windowed_run;
    Alcotest.test_case "audit: stepwise run" `Quick test_audit_real_stepwise_run;
    Alcotest.test_case "audit: no events" `Quick test_audit_without_events;
    Alcotest.test_case "ensemble wiring" `Quick test_ensemble_lint_wiring;
  ]
