(* The agreement umbrella library: correctness verdicts and ensemble
   sweeps. *)

let outcome_with ~decided ~conflict =
  {
    Dsim.Runner.reason = Dsim.Runner.Stopped;
    steps = 10;
    windows = 2;
    decided;
    first_decision = None;
    conflict;
    total_resets = 0;
    total_crashes = 0;
    messages_sent = 0;
    messages_delivered = 0;
    max_chain_depth = 1;
  }

let test_verdict_agreement () =
  let inputs = [| true; false; true |] in
  let good =
    Agreement.Correctness.of_outcome ~inputs
      (outcome_with ~decided:[ (0, true); (1, true) ] ~conflict:false)
  in
  Alcotest.(check bool) "agreement" true good.Agreement.Correctness.agreement;
  Alcotest.(check bool) "validity" true good.Agreement.Correctness.validity;
  Alcotest.(check bool) "value" true (good.Agreement.Correctness.value = Some true);
  Alcotest.(check bool) "ok" true (Agreement.Correctness.ok good);
  let bad =
    Agreement.Correctness.of_outcome ~inputs
      (outcome_with ~decided:[ (0, true); (1, false) ] ~conflict:true)
  in
  Alcotest.(check bool) "conflict detected" false bad.Agreement.Correctness.agreement;
  Alcotest.(check bool) "not ok" false (Agreement.Correctness.ok bad)

let test_verdict_validity () =
  (* Deciding 1 when every input is 0 violates validity. *)
  let inputs = [| false; false; false |] in
  let invalid =
    Agreement.Correctness.of_outcome ~inputs
      (outcome_with ~decided:[ (0, true) ] ~conflict:false)
  in
  Alcotest.(check bool) "agreement still holds" true
    invalid.Agreement.Correctness.agreement;
  Alcotest.(check bool) "validity violated" false invalid.Agreement.Correctness.validity

let test_verdict_undecided () =
  let v =
    Agreement.Correctness.of_outcome ~inputs:[| true |]
      (outcome_with ~decided:[] ~conflict:false)
  in
  Alcotest.(check int) "none decided" 0 v.Agreement.Correctness.decided;
  Alcotest.(check bool) "vacuously ok" true (Agreement.Correctness.ok v);
  Alcotest.(check bool) "no value" true (v.Agreement.Correctness.value = None)

let test_inputs_generators () =
  let split = Agreement.Ensemble.split_inputs ~n:6 0 in
  let ones = Array.fold_left (fun a b -> if b then a + 1 else a) 0 split in
  Alcotest.(check int) "balanced" 3 ones;
  let rotated = Agreement.Ensemble.split_inputs ~n:6 1 in
  Alcotest.(check bool) "rotation changes leader" true (split.(0) <> rotated.(0));
  let constant = Agreement.Ensemble.constant_inputs ~n:4 true 0 in
  Alcotest.(check bool) "constant" true (Array.for_all (fun b -> b) constant)

let spec ~n ~t =
  {
    Agreement.Ensemble.n;
    t;
    inputs = Agreement.Ensemble.split_inputs ~n;
    max_windows = 50_000;
    max_steps = 200_000;
    stop = `All_decided;
  }

let test_windowed_sweep () =
  let result =
    Agreement.Ensemble.run_windowed ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Benign.windowed ())
      ~spec:(spec ~n:13 ~t:2)
      ~seeds:(List.init 10 (fun i -> i))
      ()
  in
  Alcotest.(check int) "10 runs" 10 result.Agreement.Ensemble.runs;
  Alcotest.(check bool) "all agree" true
    (Agreement.Ensemble.agreement_rate result = 1.0);
  Alcotest.(check bool) "all valid" true (Agreement.Ensemble.validity_rate result = 1.0);
  Alcotest.(check bool) "all terminate" true
    (Agreement.Ensemble.termination_rate result = 1.0);
  Alcotest.(check int) "decisions partition" 10
    (result.Agreement.Ensemble.decisions_zero + result.Agreement.Ensemble.decisions_one);
  Alcotest.(check int) "windows histogram populated" 10
    (Stats.Histogram.count result.Agreement.Ensemble.window_histogram)

let test_stepwise_sweep () =
  let result =
    Agreement.Ensemble.run_stepwise ~protocol:(Protocols.Ben_or.protocol ())
      ~strategy:(fun seed -> Adversary.Benign.random_fair ~seed ~drop_probability:0.2 ())
      ~spec:(spec ~n:7 ~t:2)
      ~seeds:(List.init 6 (fun i -> i))
      ()
  in
  Alcotest.(check int) "6 runs" 6 result.Agreement.Ensemble.runs;
  Alcotest.(check bool) "all agree" true (Agreement.Ensemble.agreement_rate result = 1.0);
  Alcotest.(check bool) "chain depth recorded" true
    (Stats.Summary.count result.Agreement.Ensemble.chain_depth > 0)

let test_histogram_fresh_per_sweep () =
  (* Regression: results must not share the mutable histogram. *)
  let run () =
    Agreement.Ensemble.run_windowed ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Benign.windowed ())
      ~spec:(spec ~n:13 ~t:2)
      ~seeds:[ 1; 2; 3 ]
      ()
  in
  let a = run () in
  let b = run () in
  Alcotest.(check int) "first sweep histogram" 3
    (Stats.Histogram.count a.Agreement.Ensemble.window_histogram);
  Alcotest.(check int) "second sweep histogram not contaminated" 3
    (Stats.Histogram.count b.Agreement.Ensemble.window_histogram)

let test_budget_exhaustion_counts () =
  (* A tiny window budget means no termination, but also no failures. *)
  let tight = { (spec ~n:13 ~t:2) with Agreement.Ensemble.max_windows = 1 } in
  let result =
    Agreement.Ensemble.run_windowed ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Split_vote.windowed ())
      ~spec:tight
      ~seeds:[ 1; 2; 3 ]
      ()
  in
  Alcotest.(check bool) "nothing terminated" true
    (result.Agreement.Ensemble.terminated = 0);
  Alcotest.(check bool) "agreement unaffected" true
    (Agreement.Ensemble.agreement_rate result = 1.0)

let suite =
  [
    Alcotest.test_case "verdict agreement" `Quick test_verdict_agreement;
    Alcotest.test_case "verdict validity" `Quick test_verdict_validity;
    Alcotest.test_case "verdict undecided" `Quick test_verdict_undecided;
    Alcotest.test_case "inputs generators" `Quick test_inputs_generators;
    Alcotest.test_case "windowed sweep" `Quick test_windowed_sweep;
    Alcotest.test_case "stepwise sweep" `Quick test_stepwise_sweep;
    Alcotest.test_case "histogram fresh per sweep" `Quick test_histogram_fresh_per_sweep;
    Alcotest.test_case "budget exhaustion counts" `Quick test_budget_exhaustion_counts;
  ]
