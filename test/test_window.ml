(* Tests for acceptable windows (Definition 1). *)

let test_uniform_fault_free () =
  let w = Dsim.Window.uniform ~n:5 () in
  Alcotest.(check bool) "fault free" true (Dsim.Window.is_fault_free w ~n:5);
  Alcotest.(check (list int)) "full receive set" [ 0; 1; 2; 3; 4 ]
    (Dsim.Window.receive_set w 0);
  (match Dsim.Window.validate ~n:5 ~t:1 w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m)

let test_uniform_silenced () =
  let w = Dsim.Window.uniform ~n:5 ~silenced:[ 2 ] () in
  Alcotest.(check (list int)) "excludes silenced" [ 0; 1; 3; 4 ]
    (Dsim.Window.receive_set w 3);
  Alcotest.(check bool) "not fault free" false (Dsim.Window.is_fault_free w ~n:5)

let test_validate_receive_too_small () =
  let w = Dsim.Window.uniform ~n:6 ~silenced:[ 0; 1; 2 ] () in
  (match Dsim.Window.validate ~n:6 ~t:2 w with
  | Ok () -> Alcotest.fail "should reject |S_i| < n - t"
  | Error _ -> ());
  match Dsim.Window.validate ~n:6 ~t:3 w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_validate_too_many_resets () =
  let w = Dsim.Window.uniform ~n:6 ~resets:[ 0; 1; 2 ] () in
  (match Dsim.Window.validate ~n:6 ~t:2 w with
  | Ok () -> Alcotest.fail "should reject |R| > t"
  | Error _ -> ());
  match Dsim.Window.validate ~n:6 ~t:3 w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_validate_out_of_range () =
  let w = Dsim.Window.make ~receive_sets:(Array.make 4 [ 0; 1; 2; 9 ]) ~resets:[] in
  (match Dsim.Window.validate ~n:4 ~t:1 w with
  | Ok () -> Alcotest.fail "should reject pid out of range"
  | Error _ -> ());
  let w = Dsim.Window.make ~receive_sets:(Array.make 4 [ 0; 1; 2 ]) ~resets:[ -1 ] in
  match Dsim.Window.validate ~n:4 ~t:1 w with
  | Ok () -> Alcotest.fail "should reject negative reset pid"
  | Error _ -> ()

let test_validate_wrong_arity () =
  let w = Dsim.Window.make ~receive_sets:(Array.make 3 [ 0; 1; 2 ]) ~resets:[] in
  match Dsim.Window.validate ~n:4 ~t:1 w with
  | Ok () -> Alcotest.fail "should reject wrong receive-set count"
  | Error _ -> ()

let test_normalization () =
  let w = Dsim.Window.make ~receive_sets:[| [ 2; 0; 2; 1 ] |] ~resets:[ 0; 0 ] in
  Alcotest.(check (list int)) "sorted dedup" [ 0; 1; 2 ] (Dsim.Window.receive_set w 0);
  Alcotest.(check (list int)) "resets dedup" [ 0 ] (Dsim.Window.resets w)

let test_hybrid () =
  let w =
    Dsim.Window.hybrid ~n:6 ~j:3 ~s0:[ 0; 1; 2; 3 ] ~s1:[ 2; 3; 4; 5 ] ~r0:[ 0 ]
      ~r1:[ 5 ]
  in
  Alcotest.(check (list int)) "low coords use s0" [ 0; 1; 2; 3 ]
    (Dsim.Window.receive_set w 0);
  Alcotest.(check (list int)) "high coords use s1" [ 2; 3; 4; 5 ]
    (Dsim.Window.receive_set w 4);
  Alcotest.(check (list int)) "mixed resets" [ 0; 5 ] (Dsim.Window.resets w)

let test_hybrid_endpoints () =
  let s0 = [ 0; 1; 2 ] and s1 = [ 1; 2; 3 ] in
  let w0 = Dsim.Window.hybrid ~n:4 ~j:0 ~s0 ~s1 ~r0:[ 0 ] ~r1:[ 3 ] in
  Alcotest.(check (list int)) "j=0 all s1" s1 (Dsim.Window.receive_set w0 0);
  Alcotest.(check (list int)) "j=0 resets from r1" [ 3 ] (Dsim.Window.resets w0);
  let wn = Dsim.Window.hybrid ~n:4 ~j:4 ~s0 ~s1 ~r0:[ 0 ] ~r1:[ 3 ] in
  Alcotest.(check (list int)) "j=n all s0" s0 (Dsim.Window.receive_set wn 3);
  Alcotest.(check (list int)) "j=n resets from r0" [ 0 ] (Dsim.Window.resets wn)

let test_printers () =
  let w = Dsim.Window.uniform ~n:3 ~silenced:[ 0 ] ~resets:[ 1 ] () in
  Alcotest.(check bool) "window printer" true
    (String.length (Format.asprintf "%a" Dsim.Window.pp w) > 0);
  let pp_payload ppf s = Format.pp_print_string ppf s in
  List.iter
    (fun (step, expected) ->
      Alcotest.(check string) "step printer" expected
        (Format.asprintf "%a" (Dsim.Step.pp pp_payload) step))
    [
      (Dsim.Step.Send 2, "send(p2)");
      (Dsim.Step.Deliver 5, "deliver(#5)");
      (Dsim.Step.Drop 5, "drop(#5)");
      (Dsim.Step.Reset 1, "reset(p1)");
      (Dsim.Step.Crash 0, "crash(p0)");
      (Dsim.Step.Corrupt (3, "evil"), "corrupt(#3, evil)");
    ]

(* Masks are the ground truth and lists a projected view; round-trip
   through [of_masks] must reproduce the view exactly, and a window
   rebuilt from the projected lists must agree on every observable. *)
let prop_of_masks_roundtrip =
  QCheck.Test.make ~count:200 ~name:"of_masks round-trips through to_lists"
    QCheck.small_int (fun seed ->
      let rng = Prng.Stream.root (seed + 4177) in
      let n = 1 + Prng.Stream.int_below rng 12 in
      let sets =
        Array.init n (fun _ ->
            List.filter (fun _ -> Prng.Stream.bool rng)
              (List.init n (fun i -> i)))
      in
      let resets =
        List.filter (fun _ -> Prng.Stream.bernoulli rng 0.2)
          (List.init n (fun i -> i))
      in
      (* [of_masks] takes ownership of the array, so hand it copies. *)
      let masks =
        Array.map (fun s -> Dsim.Bitset.of_list ~capacity:n s) sets
      in
      let w = Dsim.Window.of_masks ~resets (Array.map Dsim.Bitset.copy masks) in
      let pool = List.init (n + 4) (fun i -> i - 2) in
      let slots = List.init n (fun i -> i) in
      let view_ok =
        List.for_all
          (fun i ->
            Dsim.Window.receive_set w i = Dsim.Bitset.to_list masks.(i)
            && Dsim.Window.receive_set_size w i = List.length sets.(i)
            && List.for_all
                 (fun src ->
                   Dsim.Window.allows w ~dst:i ~src = List.mem src sets.(i))
                 pool)
          slots
      in
      let rebuilt =
        Dsim.Window.make ~receive_sets:(Dsim.Window.to_lists w) ~resets
      in
      view_ok
      && Dsim.Window.resets w = Dsim.Window.resets rebuilt
      && List.for_all
           (fun i ->
             Dsim.Window.receive_set w i = Dsim.Window.receive_set rebuilt i)
           slots
      && Dsim.Window.is_fault_free w ~n = Dsim.Window.is_fault_free rebuilt ~n)

(* Pids straddling the 0x10000 mask clamp: below it they live in the
   shared mask, at or above it in the extra tail — sizes, membership,
   projection and validation must not notice the seam. *)
let test_clamp_edge () =
  let clamp = 0x10000 in
  let n = clamp + 4 in
  let w = Dsim.Window.uniform ~n ~silenced:[ clamp - 1; clamp + 1 ] () in
  Alcotest.(check int) "size spans the clamp" (n - 2)
    (Dsim.Window.receive_set_size w 0);
  List.iter
    (fun (src, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "allows src=%d" src)
        expect
        (Dsim.Window.allows w ~dst:0 ~src))
    [
      (clamp - 2, true);
      (clamp - 1, false);
      (clamp, true);
      (clamp + 1, false);
      (clamp + 3, true);
      (n, false);
    ];
  Alcotest.(check int) "projection spans the clamp" (n - 2)
    (List.length (Dsim.Window.receive_set w 0));
  (match Dsim.Window.validate ~n ~t:2 w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* A pid past the clamp that is also past n must still be rejected —
     the offender sits in the extra tail, out of the popcount's sight.
     Small arity keeps [make] cheap. *)
  let bad =
    Dsim.Window.make
      ~receive_sets:(Array.make 4 [ 0; 1; 2; clamp + 9 ])
      ~resets:[]
  in
  match Dsim.Window.validate ~n:4 ~t:0 bad with
  | Ok () -> Alcotest.fail "should reject pid past the clamp"
  | Error m ->
      Alcotest.(check string) "names the offending pid"
        (Printf.sprintf "S_0 contains out-of-range pid %d (n = 4)" (clamp + 9))
        m

let suite =
  [
    Alcotest.test_case "printers" `Quick test_printers;
    Alcotest.test_case "uniform fault free" `Quick test_uniform_fault_free;
    Alcotest.test_case "uniform silenced" `Quick test_uniform_silenced;
    Alcotest.test_case "validate small receive set" `Quick test_validate_receive_too_small;
    Alcotest.test_case "validate too many resets" `Quick test_validate_too_many_resets;
    Alcotest.test_case "validate out of range" `Quick test_validate_out_of_range;
    Alcotest.test_case "validate wrong arity" `Quick test_validate_wrong_arity;
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "hybrid" `Quick test_hybrid;
    Alcotest.test_case "hybrid endpoints" `Quick test_hybrid_endpoints;
    Alcotest.test_case "clamp edge" `Quick test_clamp_edge;
    QCheck_alcotest.to_alcotest prop_of_masks_roundtrip;
  ]
