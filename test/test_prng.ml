(* Tests for the SplitMix64 generator and derived streams: determinism,
   uniformity sanity, independence of derived streams, and exactness of
   the bounded-integer sampler. *)

let test_determinism () =
  let a = Prng.Stream.root 42 and b = Prng.Stream.root 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream, same draws" (Prng.Stream.bits a) (Prng.Stream.bits b)
  done

let test_distinct_seeds () =
  let a = Prng.Stream.root 1 and b = Prng.Stream.root 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Stream.bits a = Prng.Stream.bits b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_copy_replays () =
  let a = Prng.Stream.root 7 in
  ignore (Prng.Stream.bits a);
  let b = Prng.Stream.copy a in
  let draws_a = List.init 20 (fun _ -> Prng.Stream.bits a) in
  let draws_b = List.init 20 (fun _ -> Prng.Stream.bits b) in
  Alcotest.(check (list int)) "copy replays the future" draws_a draws_b

let test_derive_stable () =
  let root = Prng.Stream.root 3 in
  let c1 = Prng.Stream.derive root 5 and c2 = Prng.Stream.derive root 5 in
  Alcotest.(check int) "same index, same child" (Prng.Stream.bits c1) (Prng.Stream.bits c2);
  let c3 = Prng.Stream.derive root 6 in
  let d3 = Prng.Stream.bits c3 and d1 = Prng.Stream.bits c1 in
  Alcotest.(check bool) "different index, different child" true (d3 <> d1)

let test_derive_does_not_consume () =
  let a = Prng.Stream.root 11 and b = Prng.Stream.root 11 in
  ignore (Prng.Stream.derive a 0);
  Alcotest.(check int) "derive leaves parent untouched" (Prng.Stream.bits a)
    (Prng.Stream.bits b)

let test_derive_name () =
  let root = Prng.Stream.root 3 in
  let a = Prng.Stream.derive_name root "adversary" in
  let a' = Prng.Stream.derive_name root "adversary" in
  let b = Prng.Stream.derive_name root "processor" in
  Alcotest.(check int) "same name, same child" (Prng.Stream.bits a) (Prng.Stream.bits a');
  Alcotest.(check bool) "different names diverge" true
    (Prng.Stream.bits b <> Prng.Stream.bits a')

(* Pinned values: derive_name's name hash is a hand-rolled FNV-1a, so
   these draws must be identical on every platform and OCaml version.
   A change here means seed-reproducibility was silently broken. *)
let test_derive_name_pinned () =
  let draw name =
    Prng.Stream.bits (Prng.Stream.derive_name (Prng.Stream.root 3) name)
  in
  Alcotest.(check int) "pinned draw (adversary)" 76252243 (draw "adversary");
  Alcotest.(check int) "pinned draw (processor)" 688075149 (draw "processor");
  Alcotest.(check int) "pinned draw (empty name)" 97103796 (draw "")

let test_bool_balance () =
  let s = Prng.Stream.root 100 in
  let trues = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Prng.Stream.bool s then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int trials in
  Alcotest.(check bool) "bool is roughly fair" true (frac > 0.47 && frac < 0.53)

let test_int_below_range () =
  let s = Prng.Stream.root 5 in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let v = Prng.Stream.int_below s bound in
      Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
    done
  done

let test_int_below_uniform () =
  let s = Prng.Stream.root 9 in
  let counts = Array.make 7 0 in
  let trials = 70_000 in
  for _ = 1 to trials do
    let v = Prng.Stream.int_below s 7 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int trials in
      Alcotest.(check bool) "each value near 1/7" true (frac > 0.13 && frac < 0.155))
    counts

let test_int_below_large_bound () =
  let s = Prng.Stream.root 13 in
  let bound = 0x40000001 in
  for _ = 1 to 100 do
    let v = Prng.Stream.int_below s bound in
    Alcotest.(check bool) "large bound in range" true (v >= 0 && v < bound)
  done

let test_int_below_invalid () =
  let s = Prng.Stream.root 1 in
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Splitmix.int_below: bound must be positive") (fun () ->
      ignore (Prng.Stream.int_below s 0))

let test_float_range () =
  let s = Prng.Stream.root 21 in
  for _ = 1 to 1000 do
    let f = Prng.Stream.float s in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_float_mean () =
  let s = Prng.Stream.root 22 in
  let sum = ref 0.0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    sum := !sum +. Prng.Stream.float s
  done;
  let mean = !sum /. float_of_int trials in
  Alcotest.(check bool) "float mean near 0.5" true (mean > 0.48 && mean < 0.52)

let test_bernoulli_extremes () =
  let s = Prng.Stream.root 2 in
  Alcotest.(check bool) "p=0 never fires" false (Prng.Stream.bernoulli s 0.0);
  Alcotest.(check bool) "p=1 always fires" true (Prng.Stream.bernoulli s 1.0)

let test_bernoulli_rate () =
  let s = Prng.Stream.root 33 in
  let hits = ref 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    if Prng.Stream.bernoulli s 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "bernoulli(0.3) rate" true (frac > 0.28 && frac < 0.32)

let test_shuffle_permutation () =
  let s = Prng.Stream.root 4 in
  let a = Array.init 30 (fun i -> i) in
  Prng.Stream.shuffle s a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 30 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let s = Prng.Stream.root 8 in
  for _ = 1 to 50 do
    let sample = Prng.Stream.sample_without_replacement s 5 12 in
    Alcotest.(check int) "sample size" 5 (List.length sample);
    Alcotest.(check int) "sample distinct" 5 (List.length (List.sort_uniq compare sample));
    List.iter
      (fun v -> Alcotest.(check bool) "sample in range" true (v >= 0 && v < 12))
      sample
  done

let test_sample_full () =
  let s = Prng.Stream.root 8 in
  let sample = Prng.Stream.sample_without_replacement s 6 6 in
  Alcotest.(check (list int)) "k = n returns everything" [ 0; 1; 2; 3; 4; 5 ] sample

let test_sample_invalid () =
  let s = Prng.Stream.root 8 in
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Stream.sample_without_replacement") (fun () ->
      ignore (Prng.Stream.sample_without_replacement s 7 6))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "distinct seeds diverge" `Quick test_distinct_seeds;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "derive is stable" `Quick test_derive_stable;
    Alcotest.test_case "derive does not consume" `Quick test_derive_does_not_consume;
    Alcotest.test_case "derive by name" `Quick test_derive_name;
    Alcotest.test_case "derive by name, pinned values" `Quick
      test_derive_name_pinned;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "int_below range" `Quick test_int_below_range;
    Alcotest.test_case "int_below uniform" `Quick test_int_below_uniform;
    Alcotest.test_case "int_below large bound" `Quick test_int_below_large_bound;
    Alcotest.test_case "int_below invalid" `Quick test_int_below_invalid;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample full" `Quick test_sample_full;
    Alcotest.test_case "sample invalid" `Quick test_sample_invalid;
  ]
