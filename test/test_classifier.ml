(* The dynamic Definitions 15/16 classifier. *)

let check protocol ~n ~t =
  Protocols.Classifier.check protocol ~n ~t ~seeds:[ 1; 2; 3 ] ~windows_per_run:15

let test_lewko_consistent () =
  let report = check (Protocols.Lewko_variant.protocol ()) ~n:13 ~t:2 in
  Alcotest.(check bool) "declared forgetful" true
    report.Protocols.Classifier.declared_forgetful;
  (match report.Protocols.Classifier.forgetful with
  | Protocols.Classifier.No_counterexample trials ->
      Alcotest.(check bool) "performed checks" true (trials > 100)
  | Protocols.Classifier.Counterexample w -> Alcotest.fail ("false positive: " ^ w));
  (match report.Protocols.Classifier.fully_communicative with
  | Protocols.Classifier.No_counterexample _ -> ()
  | Protocols.Classifier.Counterexample w -> Alcotest.fail ("false positive: " ^ w));
  Alcotest.(check bool) "consistent" true (Protocols.Classifier.consistent report)

let test_ben_or_consistent () =
  let report = check (Protocols.Ben_or.protocol ()) ~n:9 ~t:2 in
  (match report.Protocols.Classifier.forgetful with
  | Protocols.Classifier.No_counterexample _ -> ()
  | Protocols.Classifier.Counterexample w ->
      Alcotest.fail ("ben-or is forgetful; classifier claimed: " ^ w));
  Alcotest.(check bool) "consistent" true (Protocols.Classifier.consistent report)

let test_bracha_consistent () =
  let report = check (Protocols.Bracha.protocol ()) ~n:7 ~t:2 in
  Alcotest.(check bool) "declared not forgetful" false
    report.Protocols.Classifier.declared_forgetful;
  (* Whatever the dynamic evidence, a declared-false property can never
     be inconsistent. *)
  Alcotest.(check bool) "consistent" true (Protocols.Classifier.consistent report)

(* A deliberately memoryful protocol: its message text is constant
   ("ping"), but its *recipient set* depends on the total number of
   messages it has EVER received (broadcast on even lifetimes, a single
   message to processor 0 on odd ones) — data from before its last
   sending event.  The classifier must find two states with equal
   forgetful-cores (same input, estimate and recent deliveries) about
   to send different things. *)
type memoryful_state = {
  id : int;
  n : int;
  input : bool;
  lifetime_received : int;
  outbox : (int * string) list;
}

let memoryful : (memoryful_state, string) Dsim.Protocol.t =
  {
    Dsim.Protocol.name = "memoryful-toy";
    init =
      (fun ~n ~t:_ ~id ~input ->
        {
          id;
          n;
          input;
          lifetime_received = 0;
          outbox = List.init n (fun dst -> (dst, "ping"));
        });
    outgoing =
      (fun s ->
        ( { s with outbox = [] },
          List.map (fun (dst, m) -> Dsim.Step.Unicast (dst, m)) s.outbox ));
    on_deliver =
      (fun s ~src:_ _message _rng ->
        let lifetime_received = s.lifetime_received + 1 in
        let outbox =
          if lifetime_received mod 2 = 0 then
            List.init s.n (fun dst -> (dst, "ping"))
          else [ (0, "ping") ]
        in
        { s with lifetime_received; outbox });
    on_reset = (fun s -> { s with lifetime_received = 0; outbox = [] });
    output = (fun _ -> None);
    observe =
      (fun s ->
        Dsim.Obs.make ~id:s.id ~round:1 ~estimate:(Some s.input) ~output:None
          ~input:s.input ~resets:0 ~phase:0);
    message_bit = (fun _ -> None);
    message_round = (fun _ -> None);
    message_origin = (fun _ -> None);
    rewrite_bit = (fun _ _ -> None);
    state_core = (fun s -> Printf.sprintf "%d:%d" s.id s.lifetime_received);
    props = Dsim.Protocol.default_props;
    pp_message = (fun ppf m -> Format.pp_print_string ppf m);
    pp_state = (fun ppf s -> Format.pp_print_int ppf s.id);
  }

let test_memoryful_detected () =
  let report =
    Protocols.Classifier.check memoryful ~n:5 ~t:1 ~seeds:[ 1; 2 ] ~windows_per_run:8
  in
  (match report.Protocols.Classifier.forgetful with
  | Protocols.Classifier.Counterexample _ -> ()
  | Protocols.Classifier.No_counterexample _ ->
      Alcotest.fail "classifier missed the lifetime counter");
  (* Declared not-forgetful (default props), so still consistent. *)
  Alcotest.(check bool) "consistent" true (Protocols.Classifier.consistent report)

let test_consistency_logic () =
  let base =
    {
      Protocols.Classifier.protocol_name = "x";
      declared_forgetful = true;
      declared_fully_communicative = true;
      forgetful = Protocols.Classifier.No_counterexample 10;
      fully_communicative = Protocols.Classifier.No_counterexample 10;
    }
  in
  Alcotest.(check bool) "clean report" true (Protocols.Classifier.consistent base);
  Alcotest.(check bool) "declared-true + counterexample = inconsistent" false
    (Protocols.Classifier.consistent
       { base with Protocols.Classifier.forgetful = Protocols.Classifier.Counterexample "w" });
  Alcotest.(check bool) "declared-false + counterexample = fine" true
    (Protocols.Classifier.consistent
       {
         base with
         Protocols.Classifier.declared_forgetful = false;
         forgetful = Protocols.Classifier.Counterexample "w";
       })

let suite =
  [
    Alcotest.test_case "lewko consistent" `Quick test_lewko_consistent;
    Alcotest.test_case "ben-or consistent" `Quick test_ben_or_consistent;
    Alcotest.test_case "bracha consistent" `Quick test_bracha_consistent;
    Alcotest.test_case "memoryful protocol detected" `Quick test_memoryful_detected;
    Alcotest.test_case "consistency logic" `Quick test_consistency_logic;
  ]
