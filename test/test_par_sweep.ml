(* The parallel sweep engine's determinism contract, tested three ways:
   differentially (jobs ∈ {1, 2, 3, 7} against the sequential path on
   real ensembles), algebraically (qcheck: the merges Par_sweep reduces
   with are commutative/associative with identity), and on the edge
   cases where an off-by-one in chunking or worker count would hide
   (empty seed lists, zero budgets, sweeps where nothing terminates). *)

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Shared fixtures.                                                    *)

let windowed_spec ?(n = 9) ?(max_windows = 30_000) ?(stop = `First_decision) ()
    =
  {
    Agreement.Ensemble.n;
    t = 1;
    inputs = Agreement.Ensemble.split_inputs ~n;
    max_windows;
    max_steps = 0;
    stop;
  }

let stepwise_spec ?(n = 7) ?(max_steps = 100_000) () =
  {
    Agreement.Ensemble.n;
    t = 2;
    inputs = Agreement.Ensemble.split_inputs ~n;
    max_windows = 0;
    max_steps;
    stop = `First_decision;
  }

let seeds count = List.init count (fun i -> i + 1)

let check_equal_result what expected actual =
  Alcotest.(check bool) what true (Agreement.Ensemble.equal_result expected actual)

(* Every jobs value must reproduce the sequential result bit for bit,
   and repeating a jobs value must reproduce itself (no hidden state
   across sweeps). *)
let check_all_jobs ~what run =
  let sequential = run ~jobs:1 in
  List.iter
    (fun jobs ->
      check_equal_result
        (Printf.sprintf "%s: jobs=%d equals sequential" what jobs)
        sequential (run ~jobs))
    [ 1; 2; 3; 7 ];
  check_equal_result
    (Printf.sprintf "%s: repeat run at jobs=3 is stable" what)
    (run ~jobs:3) (run ~jobs:3)

(* ------------------------------------------------------------------ *)
(* Differential determinism on real ensembles.                         *)

let test_windowed_benign () =
  check_all_jobs ~what:"lewko/benign" (fun ~jobs ->
      Agreement.Ensemble.run_windowed ~jobs
        ~protocol:(Protocols.Lewko_variant.protocol ())
        ~strategy:(fun _ -> Adversary.Benign.windowed ())
        ~spec:(windowed_spec ~stop:`All_decided ())
        ~seeds:(seeds 24) ())

let test_windowed_balancing () =
  check_all_jobs ~what:"lewko/balancing" (fun ~jobs ->
      Agreement.Ensemble.run_windowed ~jobs
        ~protocol:(Protocols.Lewko_variant.protocol ())
        ~strategy:(fun _ -> Adversary.Split_vote.windowed ())
        ~spec:(windowed_spec ())
        ~seeds:(seeds 24) ())

let test_stepwise_split_vote () =
  check_all_jobs ~what:"ben-or/balancing" (fun ~jobs ->
      Agreement.Ensemble.run_stepwise ~jobs
        ~protocol:(Protocols.Ben_or.protocol ())
        ~strategy:(fun _ -> Adversary.Split_vote.stepwise ())
        ~spec:(stepwise_spec ())
        ~seeds:(seeds 12) ())

(* The trace auditor must survive parallel runs: per-seed violation
   counts are summed like every other field. *)
let test_lint_under_parallelism () =
  let n = 9 in
  let run ~jobs =
    Agreement.Ensemble.run_windowed ~jobs ~lint:true ~lint_quorum:(n - 2)
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Split_vote.windowed_with_resets ())
      ~spec:(windowed_spec ~n ~stop:`All_decided ())
      ~seeds:(seeds 8) ()
  in
  check_all_jobs ~what:"lint" run;
  Alcotest.(check int) "clean executions stay clean in parallel" 0
    (run ~jobs:4).Agreement.Ensemble.lint_violations

(* ------------------------------------------------------------------ *)
(* Edge cases.                                                         *)

let test_zero_seeds () =
  let run ~jobs =
    Agreement.Ensemble.run_windowed ~jobs
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Benign.windowed ())
      ~spec:(windowed_spec ()) ~seeds:[] ()
  in
  check_all_jobs ~what:"zero seeds" run;
  let result = run ~jobs:4 in
  Alcotest.(check int) "no runs" 0 result.Agreement.Ensemble.runs;
  Alcotest.(check int) "no terminations" 0 result.Agreement.Ensemble.terminated;
  Alcotest.(check int) "empty histogram" 0
    (Stats.Histogram.count result.Agreement.Ensemble.window_histogram)

let test_zero_window_budget () =
  let run ~jobs =
    Agreement.Ensemble.run_windowed ~jobs
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Benign.windowed ())
      ~spec:(windowed_spec ~max_windows:0 ())
      ~seeds:(seeds 10) ()
  in
  check_all_jobs ~what:"max_windows=0" run;
  let result = run ~jobs:4 in
  Alcotest.(check int) "all runs counted" 10 result.Agreement.Ensemble.runs;
  Alcotest.(check int) "none terminated" 0 result.Agreement.Ensemble.terminated

(* Ten steps cannot carry a quorum of deliveries, so no run can decide:
   every run exhausts its budget, and the all-failures path must still
   aggregate identically in parallel. *)
let test_all_runs_fail_termination () =
  let run ~jobs =
    Agreement.Ensemble.run_stepwise ~jobs
      ~protocol:(Protocols.Ben_or.protocol ())
      ~strategy:(fun _ -> Adversary.Split_vote.stepwise ())
      ~spec:(stepwise_spec ~max_steps:10 ())
      ~seeds:(seeds 10) ()
  in
  check_all_jobs ~what:"no termination" run;
  let result = run ~jobs:4 in
  Alcotest.(check int) "no run terminates" 0 result.Agreement.Ensemble.terminated;
  Alcotest.(check int) "summaries stay empty" 0
    (Stats.Summary.count result.Agreement.Ensemble.windows)

let test_more_jobs_than_seeds () =
  let run ~jobs =
    Agreement.Ensemble.run_windowed ~jobs
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Benign.windowed ())
      ~spec:(windowed_spec ~stop:`All_decided ())
      ~seeds:(seeds 3) ()
  in
  check_equal_result "jobs=64 over 3 seeds equals sequential" (run ~jobs:1)
    (run ~jobs:64)

let test_map_reduce_exceptions () =
  let items = Array.init 20 (fun i -> i) in
  let f i = if i = 13 then failwith "boom" else i in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "first exception re-raised at jobs=%d" jobs)
        (Failure "boom")
        (fun () ->
          ignore (Agreement.Par_sweep.map_reduce ~jobs ~merge:( + ) ~init:0 ~f items)))
    [ 1; 4 ]

let test_chunk () =
  Alcotest.(check (list (list int)))
    "uneven tail" [ [ 1; 2; 3 ]; [ 4; 5 ] ]
    (Agreement.Par_sweep.chunk ~size:3 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int))) "empty list" []
    (Agreement.Par_sweep.chunk ~size:4 []);
  Alcotest.check_raises "zero size rejected"
    (Invalid_argument "Par_sweep.chunk: size must be positive") (fun () ->
      ignore (Agreement.Par_sweep.chunk ~size:0 [ 1 ]))

(* ------------------------------------------------------------------ *)
(* Histogram.merge pinned values.                                      *)

let histogram_of ?bucket_width values =
  let h = Stats.Histogram.create ?bucket_width () in
  List.iter (Stats.Histogram.add h) values;
  h

let test_histogram_merge_pinned () =
  let a = histogram_of [ 1; 2; 2; 5 ] in
  let b = histogram_of [ 2; 7 ] in
  let merged = Stats.Histogram.merge a b in
  Alcotest.(check (list (pair int int)))
    "bucket-wise sums" [ (1, 1); (2, 3); (5, 1); (7, 1) ]
    (Stats.Histogram.buckets merged);
  Alcotest.(check int) "total count" 6 (Stats.Histogram.count merged);
  (* Operands must be untouched. *)
  Alcotest.(check (list (pair int int)))
    "left operand unchanged" [ (1, 1); (2, 2); (5, 1) ]
    (Stats.Histogram.buckets a);
  Alcotest.(check (list (pair int int)))
    "right operand unchanged" [ (2, 1); (7, 1) ]
    (Stats.Histogram.buckets b);
  (* Widths: an empty operand adopts the other side's width... *)
  let wide = histogram_of ~bucket_width:5 [ 3; 7 ] in
  let adopted = Stats.Histogram.merge (Stats.Histogram.empty ()) wide in
  Alcotest.(check int) "width adopted" 5 (Stats.Histogram.bucket_width adopted);
  Alcotest.(check (list (pair int int)))
    "wide buckets kept" [ (0, 1); (5, 1) ]
    (Stats.Histogram.buckets adopted);
  (* ... but two non-empty widths must agree. *)
  Alcotest.check_raises "width mismatch rejected"
    (Invalid_argument "Histogram.merge: bucket_width mismatch") (fun () ->
      ignore (Stats.Histogram.merge a wide))

(* ------------------------------------------------------------------ *)
(* QCheck: the merge algebra Par_sweep relies on.                      *)

let exact_of = Stats.Summary.Exact.of_int_list
let exact_equal = Stats.Summary.Exact.equal

let obs_gen = QCheck.(list (int_bound 10_000))
let obs3_gen = QCheck.(triple obs_gen obs_gen obs_gen)

let prop_exact_commutative =
  QCheck.Test.make ~count:300 ~name:"Exact.merge is commutative"
    QCheck.(pair obs_gen obs_gen)
    (fun (xs, ys) ->
      let a = exact_of xs and b = exact_of ys in
      exact_equal
        (Stats.Summary.Exact.merge a b)
        (Stats.Summary.Exact.merge b a))

let prop_exact_associative =
  QCheck.Test.make ~count:300 ~name:"Exact.merge is associative" obs3_gen
    (fun (xs, ys, zs) ->
      let a = exact_of xs and b = exact_of ys and c = exact_of zs in
      exact_equal
        (Stats.Summary.Exact.merge (Stats.Summary.Exact.merge a b) c)
        (Stats.Summary.Exact.merge a (Stats.Summary.Exact.merge b c)))

let prop_exact_identity =
  QCheck.Test.make ~count:300 ~name:"Exact.empty is a two-sided identity"
    obs_gen (fun xs ->
      let a = exact_of xs in
      exact_equal a (Stats.Summary.Exact.merge Stats.Summary.Exact.empty a)
      && exact_equal a (Stats.Summary.Exact.merge a Stats.Summary.Exact.empty))

let prop_exact_merge_is_fold =
  QCheck.Test.make ~count:300 ~name:"Exact.merge of a split equals the full fold"
    QCheck.(pair obs_gen obs_gen)
    (fun (xs, ys) ->
      exact_equal
        (exact_of (xs @ ys))
        (Stats.Summary.Exact.merge (exact_of xs) (exact_of ys)))

let prop_histogram_commutative =
  QCheck.Test.make ~count:200 ~name:"Histogram.merge is commutative"
    QCheck.(pair obs_gen obs_gen)
    (fun (xs, ys) ->
      let a = histogram_of xs and b = histogram_of ys in
      Stats.Histogram.equal (Stats.Histogram.merge a b)
        (Stats.Histogram.merge b a))

let prop_histogram_associative =
  QCheck.Test.make ~count:200 ~name:"Histogram.merge is associative" obs3_gen
    (fun (xs, ys, zs) ->
      let a = histogram_of xs and b = histogram_of ys and c = histogram_of zs in
      Stats.Histogram.equal
        (Stats.Histogram.merge (Stats.Histogram.merge a b) c)
        (Stats.Histogram.merge a (Stats.Histogram.merge b c)))

let prop_histogram_identity =
  QCheck.Test.make ~count:200 ~name:"Histogram.empty is a two-sided identity"
    obs_gen (fun xs ->
      let a = histogram_of xs in
      Stats.Histogram.equal a (Stats.Histogram.merge (Stats.Histogram.empty ()) a)
      && Stats.Histogram.equal a
           (Stats.Histogram.merge a (Stats.Histogram.empty ())))

(* The float summary merge is only approximately associative — which is
   exactly why the sweep engine reduces with Exact, not with it.  Checked
   here up to tolerance so a regression in either direction (a broken
   merge, or an accidental dependence on exact float associativity)
   surfaces. *)
let summary_close a b =
  let close x y =
    (Float.is_nan x && Float.is_nan y) || Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs x)
  in
  Stats.Summary.count a = Stats.Summary.count b
  && close (Stats.Summary.mean a) (Stats.Summary.mean b)
  && close (Stats.Summary.variance a) (Stats.Summary.variance b)
  && close (Stats.Summary.total a) (Stats.Summary.total b)

let float_obs_gen = QCheck.(list (float_bound_exclusive 1000.0))

let prop_summary_commutative =
  QCheck.Test.make ~count:200 ~name:"Summary.merge is commutative (approx)"
    QCheck.(pair float_obs_gen float_obs_gen)
    (fun (xs, ys) ->
      let a = Stats.Summary.of_list xs and b = Stats.Summary.of_list ys in
      summary_close (Stats.Summary.merge a b) (Stats.Summary.merge b a))

let prop_summary_associative =
  QCheck.Test.make ~count:200 ~name:"Summary.merge is associative (approx)"
    QCheck.(triple float_obs_gen float_obs_gen float_obs_gen)
    (fun (xs, ys, zs) ->
      let a = Stats.Summary.of_list xs
      and b = Stats.Summary.of_list ys
      and c = Stats.Summary.of_list zs in
      summary_close
        (Stats.Summary.merge (Stats.Summary.merge a b) c)
        (Stats.Summary.merge a (Stats.Summary.merge b c)))

let prop_summary_identity =
  QCheck.Test.make ~count:200 ~name:"Summary.empty is a two-sided identity"
    float_obs_gen (fun xs ->
      let a = Stats.Summary.of_list xs in
      Stats.Summary.equal a (Stats.Summary.merge Stats.Summary.empty a)
      && Stats.Summary.equal a (Stats.Summary.merge a Stats.Summary.empty))

(* Any chunking of a seed list, swept chunk by chunk and merged, equals
   the unchunked sweep — the property that makes Par_sweep's scheduling
   invisible. *)
let prop_partial_chunking_invariant =
  let sweep seeds =
    Agreement.Ensemble.partial_windowed
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Split_vote.windowed ())
      ~spec:(windowed_spec ~n:7 ~max_windows:5_000 ())
      ~seeds ()
  in
  QCheck.Test.make ~count:12 ~name:"chunked Partial.merge equals unchunked sweep"
    QCheck.(pair (int_range 1 10) (list_of_size (Gen.int_range 0 12) (int_bound 1_000)))
    (fun (size, seeds) ->
      let whole = sweep seeds in
      let chunked =
        List.fold_left
          (fun acc chunk -> Agreement.Ensemble.Partial.merge acc (sweep chunk))
          (Agreement.Ensemble.Partial.empty ())
          (Agreement.Par_sweep.chunk ~size seeds)
      in
      Agreement.Ensemble.Partial.equal whole chunked
      && Agreement.Ensemble.Partial.runs whole = List.length seeds)

(* ------------------------------------------------------------------ *)
(* Sequential fast path: no domain may be spawned when parallelism
   cannot help.  The spawn tally is cumulative, so each check takes a
   before/after delta.                                                 *)

let spawn_delta f =
  let before = Agreement.Par_sweep.spawned_domains () in
  let result = f () in
  (result, Agreement.Par_sweep.spawned_domains () - before)

let items = Array.init 100 (fun i -> i)

let sum ?jobs () =
  Agreement.Par_sweep.map_reduce ?jobs ~merge:( + ) ~init:0 ~f:(fun x -> x * x) items

let expected_sum = Array.fold_left (fun acc x -> acc + (x * x)) 0 items

let test_no_spawn_at_jobs_one () =
  let result, spawned = spawn_delta (fun () -> sum ~jobs:1 ()) in
  Alcotest.(check int) "result" expected_sum result;
  Alcotest.(check int) "no domain spawned" 0 spawned;
  let result, spawned = spawn_delta (fun () -> sum ()) in
  Alcotest.(check int) "default jobs result" expected_sum result;
  Alcotest.(check int) "default jobs spawns nothing" 0 spawned

let test_single_core_fast_path () =
  (* On a single-core host every jobs value must collapse to the
     sequential path; on a multicore host jobs > 1 is expected to
     spawn.  Either way the result is byte-identical. *)
  let result, spawned = spawn_delta (fun () -> sum ~jobs:4 ()) in
  Alcotest.(check int) "result identical" expected_sum result;
  if Domain.recommended_domain_count () = 1 then
    Alcotest.(check int) "single core: jobs=4 spawns nothing" 0 spawned
  else
    Alcotest.(check bool) "multicore: jobs=4 uses domains" true (spawned > 0)

let suite =
  [
    Alcotest.test_case "windowed benign: jobs-invariant" `Quick test_windowed_benign;
    Alcotest.test_case "windowed balancing: jobs-invariant" `Quick
      test_windowed_balancing;
    Alcotest.test_case "stepwise balancing: jobs-invariant" `Quick
      test_stepwise_split_vote;
    Alcotest.test_case "trace lint parallelizes" `Quick test_lint_under_parallelism;
    Alcotest.test_case "edge: zero seeds" `Quick test_zero_seeds;
    Alcotest.test_case "edge: zero window budget" `Quick test_zero_window_budget;
    Alcotest.test_case "edge: nothing terminates" `Quick
      test_all_runs_fail_termination;
    Alcotest.test_case "edge: more jobs than seeds" `Quick test_more_jobs_than_seeds;
    Alcotest.test_case "map_reduce re-raises" `Quick test_map_reduce_exceptions;
    Alcotest.test_case "fast path: jobs=1 never spawns" `Quick
      test_no_spawn_at_jobs_one;
    Alcotest.test_case "fast path: single-core collapse" `Quick
      test_single_core_fast_path;
    Alcotest.test_case "chunk shapes" `Quick test_chunk;
    Alcotest.test_case "histogram merge: pinned values" `Quick
      test_histogram_merge_pinned;
    to_alcotest prop_exact_commutative;
    to_alcotest prop_exact_associative;
    to_alcotest prop_exact_identity;
    to_alcotest prop_exact_merge_is_fold;
    to_alcotest prop_histogram_commutative;
    to_alcotest prop_histogram_associative;
    to_alcotest prop_histogram_identity;
    to_alcotest prop_summary_commutative;
    to_alcotest prop_summary_associative;
    to_alcotest prop_summary_identity;
    to_alcotest prop_partial_chunking_invariant;
  ]
