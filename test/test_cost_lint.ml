(* Layer 3 of the determinism lint: the cmt-based cost & allocation
   analyzer (R11-R14).  Fixtures are self-contained sources typechecked
   in memory, each rule pinned by a flagged/clean twin; qcheck laws
   over the {!Costs} lattice; per-function summaries; the baseline
   renderer's sort/dedup contract; and a run over the real tree that
   must come back clean modulo the checked-in baseline. *)

open Lintkit

let to_alcotest = QCheck_alcotest.to_alcotest

let cfg ?(roots = [ "Fx.hot" ]) ?(overrides = []) () =
  { Cost_lint.default_config with hot_roots = roots; overrides }

let cost_diags ?config ~path source =
  let config =
    match config with Some c -> c | None -> cfg ()
  in
  match Cost_lint.check_source ~config ~path source with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "fixture failed to typecheck: %s" e

let rules_of ds = List.map (fun d -> Rules.id d.Static_lint.rule) ds

let check_rules what expected ds =
  Alcotest.(check (list string)) what expected (rules_of ds)

let contains haystack needle =
  Option.is_some (Static_lint.find_substring haystack needle 0)

let messages ds = String.concat "\n" (List.map (fun d -> d.Static_lint.message) ds)

(* ------------------------------------------------------------------ *)
(* R11: super-constant per-call cost in the hot set.                   *)

let test_r11_linear_prim () =
  let ds = cost_diags ~path:"lib/protocols/fx.ml" "let hot xs = List.length xs" in
  check_rules "List.length in a hot root flagged" [ "R11" ] ds;
  Alcotest.(check bool)
    "message names the hot path" true
    (contains (messages ds) "hot path Fx.hot")

let test_r11_clean_twins () =
  check_rules "pattern matching costs nothing" []
    (cost_diags ~path:"lib/protocols/fx.ml"
       "let hot = function [] -> 0 | _ :: _ -> 1");
  (* O(log n) persistent-map access is the tolerated threshold. *)
  check_rules "map lookup tolerated at O(log n)" []
    (cost_diags ~path:"lib/protocols/fx.ml"
       "module Int_map = Map.Make (Int)\n\
        let hot m = Int_map.find_opt 3 m");
  check_rules "cold functions are not reported" []
    (cost_diags ~path:"lib/protocols/fx.ml" "let cold xs = List.length xs")

let test_r11_data_dependent_loop () =
  check_rules "data-dependent for loop flagged" [ "R11" ]
    (cost_diags ~path:"lib/protocols/fx.ml"
       "let hot n = let s = ref 0 in for i = 1 to n do s := !s + i done; !s");
  check_rules "constant-bound loop is fine" []
    (cost_diags ~path:"lib/protocols/fx.ml"
       "let hot () = let s = ref 0 in for i = 1 to 8 do s := !s + i done; !s")

(* Findings land at the introducing site, with the discovery chain from
   the hot root in the message — that is what makes inline suppression
   local and baseline entries position-free. *)
let test_r11_via_chain () =
  let ds =
    cost_diags ~path:"lib/protocols/fx.ml"
      "let helper xs = List.length xs\nlet hot xs = helper xs"
  in
  check_rules "cost inside a callee still flagged" [ "R11" ] ds;
  Alcotest.(check bool)
    "chain walks root -> callee" true
    (contains (messages ds) "Fx.hot -> Fx.helper")

(* ------------------------------------------------------------------ *)
(* R12: allocation that scales with the event.                         *)

let test_r12_materializer () =
  let ds =
    cost_diags ~path:"lib/protocols/fx.ml"
      "let hot xs = List.map (fun x -> x + 1) xs"
  in
  check_rules "List.map materializes" [ "R12" ] ds;
  Alcotest.(check bool)
    "message says allocation scales with the event" true
    (contains (messages ds) "allocation scales with the event")

let test_r12_alloc_under_iteration () =
  (* A tuple built once per element is per-element garbage; the iterator
     itself additionally costs O(n) (R11). *)
  check_rules "tuple inside a data-dependent iteration" [ "R11"; "R12" ]
    (cost_diags ~path:"lib/protocols/fx.ml"
       "let hot xs = List.iter (fun x -> ignore (x, x)) xs")

let test_r12_clean_twins () =
  check_rules "per-event constant allocation is fine" []
    (cost_diags ~path:"lib/protocols/fx.ml" "let hot x = (x, x)");
  check_rules "amortized growth (Hashtbl.replace) exempt" []
    (cost_diags ~path:"lib/protocols/fx.ml"
       "let hot tbl x = Hashtbl.replace tbl x x");
  check_rules "map add's O(log n) path copy exempt" []
    (cost_diags ~path:"lib/protocols/fx.ml"
       "module Int_map = Map.Make (Int)\n\
        let hot m x = Int_map.add x x m")

(* ------------------------------------------------------------------ *)
(* R13: quorum/receive-set re-scans in Protocol.t transition code.     *)

let protocol_prelude =
  "module Int_map = Map.Make (Int)\n\
   module Protocol = struct\n\
  \  type t = { on_deliver : bool Int_map.t -> int }\n\
   end\n"

let test_r13_rescan () =
  let ds =
    cost_diags
      ~config:(cfg ~roots:[] ())
      ~path:"lib/protocols/fx.ml"
      (protocol_prelude
      ^ "let handle tallies = Int_map.fold (fun _ v acc -> if v then acc + 1 else acc) tallies 0\n\
         let _p = { Protocol.on_deliver = handle }")
  in
  check_rules "fold over a delivered map flagged" [ "R13" ] ds;
  Alcotest.(check bool)
    "seeded from the Protocol.t field" true
    (contains (messages ds) "Fx.Protocol.on_deliver -> Fx.handle");
  Alcotest.(check bool)
    "message prescribes the incremental-counter fix" true
    (contains (messages ds) "incremental")

let test_r13_clean_twin () =
  check_rules "incremental lookup in a transition is fine" []
    (cost_diags
       ~config:(cfg ~roots:[] ())
       ~path:"lib/protocols/fx.ml"
       (protocol_prelude
       ^ "let handle tallies = match Int_map.find_opt 0 tallies with Some true -> 1 | _ -> 0\n\
          let _p = { Protocol.on_deliver = handle }"))

(* The same scan outside transition code is an R11/R12 matter, not a
   quorum re-scan: R13 is about Protocol.t reachability. *)
let test_r13_needs_transition_seed () =
  let ds =
    cost_diags ~path:"lib/protocols/fx.ml"
      "module Int_map = Map.Make (Int)\n\
       let hot tallies = Int_map.fold (fun _ v acc -> if v then acc + 1 else acc) tallies 0"
  in
  Alcotest.(check bool) "no R13 outside transitions" true
    (not (List.mem "R13" (rules_of ds)))

(* ------------------------------------------------------------------ *)
(* R14: eager uniform fan-out.                                         *)

let test_r14_fanout () =
  let ds =
    cost_diags ~path:"lib/protocols/fx.ml"
      "let hot n msg = List.init n (fun dst -> (dst, msg))"
  in
  Alcotest.(check bool) "envelope fan-out flagged R14" true
    (List.mem "R14" (rules_of ds))

let test_r14_clean_twins () =
  check_rules "constant-width fan-out is fine" []
    (cost_diags ~path:"lib/protocols/fx.ml"
       "let hot msg = List.init 4 (fun dst -> (dst, msg))");
  (* Non-envelope List.init is a plain materializer (R12), not fan-out. *)
  let ds =
    cost_diags ~path:"lib/protocols/fx.ml"
      "let hot n = List.init n (fun dst -> dst)"
  in
  Alcotest.(check bool) "no tuple body, no R14" true
    (not (List.mem "R14" (rules_of ds)));
  Alcotest.(check bool) "still a size-dependent allocation" true
    (List.mem "R12" (rules_of ds))

(* ------------------------------------------------------------------ *)
(* Suppressions and overrides.                                         *)

let test_suppression () =
  check_rules "allow comment on the preceding line" []
    (cost_diags ~path:"lib/protocols/fx.ml"
       "let hot xs =\n  (* lint: allow R11 *)\n  List.length xs");
  check_rules "allow for a different rule does not apply" [ "R11" ]
    (cost_diags ~path:"lib/protocols/fx.ml"
       "let hot xs =\n  (* lint: allow R12 *)\n  List.length xs")

let test_overrides () =
  let src = "let helper xs = List.length xs\nlet hot xs = helper xs" in
  (* Declared O(1): the body is centrally justified, callers pay Const. *)
  check_rules "Const override exempts body and call" []
    (cost_diags
       ~config:(cfg ~overrides:[ ("Fx.helper", Costs.Const) ] ())
       ~path:"lib/protocols/fx.ml" src);
  (* Declared O(n): the body stays exempt but every hot call site pays. *)
  let ds =
    cost_diags
      ~config:(cfg ~overrides:[ ("Fx.helper", Costs.Linear) ] ())
      ~path:"lib/protocols/fx.ml" src
  in
  check_rules "Linear override flags the call site" [ "R11" ] ds;
  Alcotest.(check bool) "message cites the declaration" true
    (contains (messages ds) "declared O(n)")

(* ------------------------------------------------------------------ *)
(* Per-function summaries: the fixpoint the rules are judged against.  *)

let summary_of source id =
  let path = "lib/protocols/fx.ml" in
  match Typed_lint.typecheck_source ~path source with
  | Error e -> Alcotest.failf "fixture failed to typecheck: %s" e
  | Ok structure -> (
      let unit_info =
        { Cmt_loader.modname = "Fx"; path; structure; source = Some source }
      in
      match List.assoc_opt id (Cost_lint.summarize [ unit_info ]) with
      | Some c -> c
      | None -> Alcotest.failf "no summary for %s" id)

let cost = Alcotest.testable Costs.pp Costs.equal

let test_summaries () =
  Alcotest.check cost "constant body" Costs.Const
    (summary_of "let c () = 42" "Fx.c");
  Alcotest.check cost "linear primitive" Costs.Linear
    (summary_of "let lin xs = List.length xs" "Fx.lin");
  Alcotest.check cost "map access is logarithmic" Costs.Log
    (summary_of
       "module Int_map = Map.Make (Int)\nlet get m = Int_map.find_opt 3 m"
       "Fx.get");
  Alcotest.check cost "recursion counts as one data-dependent loop"
    Costs.Linear
    (summary_of "let rec len = function [] -> 0 | _ :: t -> 1 + len t" "Fx.len");
  Alcotest.check cost "nested iteration multiplies" Costs.Quadratic
    (summary_of
       "let quad xss = List.iter (fun xs -> List.iter (fun x -> ignore x) xs) xss"
       "Fx.quad")

(* ------------------------------------------------------------------ *)
(* Costs lattice laws (qcheck).                                        *)

let arb_cost =
  QCheck.make ~print:Costs.to_string (QCheck.Gen.oneofl Costs.all)

let law name count law =
  QCheck.Test.make ~count ~name law

let qcheck_laws =
  [
    law "join commutative" 200
      QCheck.(pair arb_cost arb_cost)
      (fun (a, b) -> Costs.equal (Costs.join a b) (Costs.join b a));
    law "join associative" 200
      QCheck.(triple arb_cost arb_cost arb_cost)
      (fun (a, b, c) ->
        Costs.equal
          (Costs.join (Costs.join a b) c)
          (Costs.join a (Costs.join b c)));
    law "join idempotent" 100 arb_cost (fun a ->
        Costs.equal (Costs.join a a) a);
    law "Const is join identity" 100 arb_cost (fun a ->
        Costs.equal (Costs.join Costs.bottom a) a);
    law "Unknown absorbs join" 100 arb_cost (fun a ->
        Costs.equal (Costs.join Costs.top a) Costs.top);
    law "leq agrees with join" 200
      QCheck.(pair arb_cost arb_cost)
      (fun (a, b) -> Costs.leq a b = Costs.equal (Costs.join a b) b);
    law "nest commutative" 200
      QCheck.(pair arb_cost arb_cost)
      (fun (a, b) -> Costs.equal (Costs.nest a b) (Costs.nest b a));
    law "Const is nest identity" 100 arb_cost (fun a ->
        Costs.equal (Costs.nest Costs.Const a) a);
    law "nest dominates join" 200
      QCheck.(pair arb_cost arb_cost)
      (fun (a, b) -> Costs.leq (Costs.join a b) (Costs.nest a b));
    (* Monotonicity in each argument is what makes the summary fixpoint
       converge: widening an input can only widen the product. *)
    law "nest monotone" 200
      QCheck.(triple arb_cost arb_cost arb_cost)
      (fun (a, b, c) ->
        (not (Costs.leq a b))
        || Costs.leq (Costs.nest a c) (Costs.nest b c));
  ]

(* [nest] is deliberately NOT associative: it rounds products that
   leave the five-point lattice up to Unknown, and where the rounding
   happens depends on grouping.  Pin the counterexample so nobody
   "fixes" it into a law. *)
let test_nest_not_associative () =
  Alcotest.check cost "(Log*Log)*Linear rounds late" Costs.Quadratic
    (Costs.nest (Costs.nest Costs.Log Costs.Log) Costs.Linear);
  Alcotest.check cost "Log*(Log*Linear) rounds early" Costs.Unknown
    (Costs.nest Costs.Log (Costs.nest Costs.Log Costs.Linear))

let test_nest_depth () =
  Alcotest.check cost "depth 0 is identity" Costs.Log
    (Costs.nest_depth 0 Costs.Log);
  Alcotest.check cost "one loop over a constant body" Costs.Linear
    (Costs.nest_depth 1 Costs.Const);
  Alcotest.check cost "two loops over a constant body" Costs.Quadratic
    (Costs.nest_depth 2 Costs.Const);
  Alcotest.check cost "one loop over a linear body" Costs.Quadratic
    (Costs.nest_depth 1 Costs.Linear)

(* ------------------------------------------------------------------ *)
(* Baseline rendering: sorted and deduplicated.                        *)

let rule_exn id =
  match Rules.of_id id with
  | Some r -> r
  | None -> Alcotest.failf "unknown rule %s" id

let diag ~rule ~path ~line ~message =
  { Static_lint.rule; path; line; col = 0; message }

let test_baseline_render_stable () =
  let r11 = rule_exn "R11" and r12 = rule_exn "R12" in
  let report =
    {
      Driver.diagnostics =
        [
          diag ~rule:r12 ~path:"lib/b.ml" ~line:9 ~message:"beta";
          diag ~rule:r11 ~path:"lib/b.ml" ~line:3 ~message:"alpha";
          (* Same finding at two positions: one baseline entry. *)
          diag ~rule:r11 ~path:"lib/a.ml" ~line:40 ~message:"alpha";
          diag ~rule:r11 ~path:"lib/a.ml" ~line:7 ~message:"alpha";
        ];
      errors = [];
      files_scanned = 2;
    }
  in
  let rendered = Format.asprintf "%a" Driver.render_baseline report in
  Alcotest.(check string)
    "sorted by (rule, path, message), duplicates collapsed"
    ("# lint baseline: RULE<TAB>PATH<TAB>MESSAGE, one accepted finding per line.\n\
      # Keep a justification comment above every entry.\n\
      R11\tlib/a.ml\talpha\nR11\tlib/b.ml\talpha\nR12\tlib/b.ml\tbeta\n")
    rendered

(* ------------------------------------------------------------------ *)
(* The real tree: clean modulo the checked-in baseline.                *)

let find_root () =
  let rec up dir n =
    if n = 0 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else up (Filename.dirname dir) (n - 1)
  in
  up (Sys.getcwd ()) 5

let test_repo_is_cost_clean () =
  match find_root () with
  | None -> ()
  | Some root ->
      let report = Driver.scan_cost ~root () in
      Alcotest.(check (list string)) "cmt load errors" [] report.errors;
      let baseline =
        match
          Driver.read_baseline
            (Filename.concat root (Filename.concat "lint" "cost-baseline.tsv"))
        with
        | Ok b -> b
        | Error e -> Alcotest.failf "baseline unreadable: %s" e
      in
      let report, _waived = Driver.apply_baseline baseline report in
      Alcotest.(check int)
        "hot-path findings beyond the baseline" 0
        (List.length report.diagnostics)

let suite =
  [
    Alcotest.test_case "r11 linear prim" `Quick test_r11_linear_prim;
    Alcotest.test_case "r11 clean twins" `Quick test_r11_clean_twins;
    Alcotest.test_case "r11 data-dependent loop" `Quick
      test_r11_data_dependent_loop;
    Alcotest.test_case "r11 via chain" `Quick test_r11_via_chain;
    Alcotest.test_case "r12 materializer" `Quick test_r12_materializer;
    Alcotest.test_case "r12 alloc under iteration" `Quick
      test_r12_alloc_under_iteration;
    Alcotest.test_case "r12 clean twins" `Quick test_r12_clean_twins;
    Alcotest.test_case "r13 rescan" `Quick test_r13_rescan;
    Alcotest.test_case "r13 clean twin" `Quick test_r13_clean_twin;
    Alcotest.test_case "r13 needs transition seed" `Quick
      test_r13_needs_transition_seed;
    Alcotest.test_case "r14 fanout" `Quick test_r14_fanout;
    Alcotest.test_case "r14 clean twins" `Quick test_r14_clean_twins;
    Alcotest.test_case "suppression" `Quick test_suppression;
    Alcotest.test_case "overrides" `Quick test_overrides;
    Alcotest.test_case "summaries" `Quick test_summaries;
    Alcotest.test_case "nest not associative" `Quick
      test_nest_not_associative;
    Alcotest.test_case "nest_depth" `Quick test_nest_depth;
    Alcotest.test_case "baseline render stable" `Quick
      test_baseline_render_stable;
    Alcotest.test_case "repo cost-clean mod baseline" `Quick
      test_repo_is_cost_clean;
  ]
  @ List.map to_alcotest qcheck_laws
