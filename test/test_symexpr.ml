(* The exact integer decision procedure behind the quorum lint layer
   (R16-R18).  Two kinds of evidence: hand-picked obligations whose
   truth we know from the paper's arithmetic (including the floor
   boundary cases that a rational relaxation would get wrong), and a
   qcheck differential proving [solve] agrees with brute force on
   box-bounded random systems. *)

open Lintkit

let e_n = Symexpr.n_
let e_t = Symexpr.t_
let k = Symexpr.int_

(* t >= 0, n >= 1 ambient; plus the per-family byzantine bound. *)
let region_ambient = [ e_t; Symexpr.ge e_n (k 1) ]

let region_frac denom =
  (* t <= (n - 1) / denom *)
  Symexpr.ge (Symexpr.div (Symexpr.sub e_n (k 1)) denom) e_t :: region_ambient

let check_verdict name expected got =
  let show = function
    | Symexpr.Holds -> "Holds"
    | Symexpr.Fails { n; t } -> Printf.sprintf "Fails(n=%d,t=%d)" n t
    | Symexpr.Unknown why -> "Unknown: " ^ why
  in
  match (expected, got) with
  | `Holds, Symexpr.Holds -> ()
  | `Fails, Symexpr.Fails { n; t } ->
      (* The witness must actually violate the goal — re-checked by the
         caller; here just accept. *)
      ignore (n, t)
  | _ ->
      Alcotest.failf "%s: expected %s, got %s" name
        (match expected with `Holds -> "Holds" | `Fails -> "Fails _")
        (show got)

let test_floor_semantics () =
  (* Bracha/RBC echo quorum fits inside the honest set only because
     the division floors: ((n + t) / 2) + 1 <= n - t over t <= (n-1)/3.
     Over the rationals the boundary n = 3t + 1 would fail. *)
  let echo = Symexpr.add (Symexpr.div (Symexpr.add e_n e_t) 2) (k 1) in
  let goal = Symexpr.ge (Symexpr.sub e_n e_t) echo in
  check_verdict "echo quorum reachable" `Holds
    (Symexpr.implies ~region:(region_frac 3) goal);
  (* Tighten the region by one: t <= (n - 1) / 2 admits n = 2t + 1,
     where n - t = t + 1 < ((n + t) / 2) + 1 for t >= 1. *)
  let v = Symexpr.implies ~region:(region_frac 2) goal in
  check_verdict "echo quorum too large at t < n/2" `Fails v;
  match v with
  | Symexpr.Fails { n; t } ->
      Alcotest.(check bool)
        "witness violates goal" true
        (Symexpr.eval ~n ~t goal < 0);
      Alcotest.(check bool)
        "witness inside region" true
        (List.for_all (fun c -> Symexpr.eval ~n ~t c >= 0) (region_frac 2))
  | _ -> assert false

let test_intersection_bounds () =
  (* Two quorums of size q intersect in >= 2q - n pids; asking for a
     t+1 intersection of (n - t)-quorums is exactly n >= 3t + 1. *)
  let q = Symexpr.sub e_n e_t in
  let intersection = Symexpr.sub (Symexpr.scale 2 q) e_n in
  let goal = Symexpr.ge intersection (Symexpr.add e_t (k 1)) in
  check_verdict "n-t quorums intersect above t at t<n/3" `Holds
    (Symexpr.implies ~region:(region_frac 3) goal);
  check_verdict "but not at t<n/2" `Fails
    (Symexpr.implies ~region:(region_frac 2) goal)

let test_mutant_arithmetic () =
  (* The ben-or!quorum-1 mutant: decide_at = 1 is satisfiable by the
     faulty pids alone as soon as t >= 1. *)
  let region = Symexpr.ge e_t (k 1) :: region_frac 5 in
  (match Symexpr.solve (Symexpr.le (k 1) e_t :: region) with
  | Some (n, t) ->
      Alcotest.(check bool) "mutant witness in region" true
        (t >= 1 && 1 <= t && List.for_all (fun c -> Symexpr.eval ~n ~t c >= 0) region)
  | None -> Alcotest.fail "decide_at = 1 should be fault-satisfiable");
  (* The sound default decide_at = t + 1 is not. *)
  match Symexpr.solve (Symexpr.le (Symexpr.add e_t (k 1)) e_t :: region) with
  | Some _ -> Alcotest.fail "t + 1 <= t should be infeasible"
  | None -> ()

let test_max_min_and_theorem4 () =
  (* max(1, t) <= t is feasible exactly when t >= 1 (the bracha mutant
     hook), and max(1, t) >= t + 1 fails in any region with t >= 1. *)
  let hook = Symexpr.max_ (k 1) e_t in
  let region = region_frac 3 in
  check_verdict "max(1,t) not above t+1" `Fails
    (Symexpr.implies ~region (Symexpr.ge hook (Symexpr.add e_t (k 1))));
  check_verdict "max(1,t) >= 1 everywhere" `Holds
    (Symexpr.implies ~region (Symexpr.ge hook (k 1)));
  (* Theorem 4 thresholds at the region edge: with T1 = T2 = n - 2t,
     T3 = n - 3t, the six validity conditions hold for t <= (n-1)/6 and
     2*T3 > n fails once t is allowed up to (n-1)/5. *)
  let t1 = Symexpr.sub e_n (Symexpr.scale 2 e_t) in
  let t3 = Symexpr.sub e_n (Symexpr.scale 3 e_t) in
  let double_t3 = Symexpr.scale 2 t3 in
  check_verdict "2*T3 > n inside t <= (n-1)/6" `Holds
    (Symexpr.implies ~region:(region_frac 6) (Symexpr.gt double_t3 e_n));
  check_verdict "2*T3 > n breaks at t <= (n-1)/5" `Fails
    (Symexpr.implies ~region:(region_frac 5) (Symexpr.gt double_t3 e_n));
  check_verdict "T2 >= T3 + t" `Holds
    (Symexpr.implies ~region:(region_frac 6)
       (Symexpr.ge t1 (Symexpr.add t3 e_t)))

(* ------------------------------------------------------------------ *)
(* Differential: solve vs brute force on box-bounded random systems.   *)

let gen_expr =
  let open QCheck.Gen in
  let base =
    oneof
      [ return Symexpr.n_;
        return Symexpr.t_;
        map Symexpr.int_ (int_range (-8) 8) ]
  in
  fix
    (fun self depth ->
      if depth = 0 then base
      else
        frequency
          [ (2, base);
            (2, map2 Symexpr.add (self (depth - 1)) (self (depth - 1)));
            (2, map2 Symexpr.sub (self (depth - 1)) (self (depth - 1)));
            (1,
             map2 Symexpr.scale (int_range (-3) 3) (self (depth - 1)));
            (1,
             map2
               (fun e d -> Symexpr.div e d)
               (self (depth - 1))
               (oneofl [ 2; 3; 5; 6 ]));
            (1, map2 Symexpr.max_ (self (depth - 1)) (self (depth - 1)));
            (1, map2 Symexpr.min_ (self (depth - 1)) (self (depth - 1)))
          ])
    3

let gen_system =
  QCheck.Gen.(list_size (int_range 1 4) gen_expr)

let arb_system =
  QCheck.make ~print:(fun sys ->
      String.concat " /\\ "
        (List.map (fun e -> Symexpr.to_string e ^ " >= 0") sys))
    gen_system

let box lo hi =
  (* lo <= n <= hi, lo <= t <= hi as symbolic constraints. *)
  [ Symexpr.ge Symexpr.n_ (Symexpr.int_ lo);
    Symexpr.le Symexpr.n_ (Symexpr.int_ hi);
    Symexpr.ge Symexpr.t_ (Symexpr.int_ lo);
    Symexpr.le Symexpr.t_ (Symexpr.int_ hi) ]

let brute_feasible sys lo hi =
  let sat = ref false in
  for n = lo to hi do
    for t = lo to hi do
      if
        (not !sat)
        && List.for_all (fun c -> Symexpr.eval ~n ~t c >= 0) sys
      then sat := true
    done
  done;
  !sat

let diff_feasible =
  QCheck.Test.make ~count:100 ~name:"solve agrees with brute force on a box"
    arb_system (fun sys ->
      let lo = -3 and hi = 60 in
      let bounded = box lo hi @ sys in
      match Symexpr.solve bounded with
      | exception Symexpr.Undecidable _ -> QCheck.assume_fail ()
      | None -> not (brute_feasible sys lo hi)
      | Some (n, t) ->
          (* The returned witness must satisfy the bounded system. *)
          n >= lo && n <= hi && t >= lo && t <= hi
          && List.for_all (fun c -> Symexpr.eval ~n ~t c >= 0) sys
          && brute_feasible sys lo hi)

let diff_implies =
  QCheck.Test.make ~count:100
    ~name:"implies agrees with pointwise truth on a box"
    (QCheck.pair arb_system arb_system)
    (fun (region_extra, goals) ->
      let goal =
        match goals with [] -> Symexpr.int_ 0 | g :: _ -> g
      in
      let lo = 0 and hi = 40 in
      let region = box lo hi @ region_extra in
      let pointwise_holds = ref true in
      for n = lo to hi do
        for t = lo to hi do
          if
            List.for_all (fun c -> Symexpr.eval ~n ~t c >= 0) region_extra
            && Symexpr.eval ~n ~t goal < 0
          then pointwise_holds := false
        done
      done;
      match Symexpr.implies ~region goal with
      | exception Symexpr.Undecidable _ -> QCheck.assume_fail ()
      | Symexpr.Unknown _ -> QCheck.assume_fail ()
      | Symexpr.Holds -> !pointwise_holds
      | Symexpr.Fails { n; t } ->
          (not !pointwise_holds)
          && Symexpr.eval ~n ~t goal < 0
          && List.for_all (fun c -> Symexpr.eval ~n ~t c >= 0) region)

let suite =
  [
    Alcotest.test_case "floor semantics at the quorum boundary" `Quick
      test_floor_semantics;
    Alcotest.test_case "quorum intersection bounds" `Quick
      test_intersection_bounds;
    Alcotest.test_case "mutant vs sound threshold arithmetic" `Quick
      test_mutant_arithmetic;
    Alcotest.test_case "max/min splits and Theorem 4 boundary" `Quick
      test_max_min_and_theorem4;
    QCheck_alcotest.to_alcotest diff_feasible;
    QCheck_alcotest.to_alcotest diff_implies;
  ]
