(* Theorem 4's threshold calculus. *)

let ok = function Ok () -> true | Error _ -> false

let test_default_satisfies_constraints () =
  List.iter
    (fun (n, t) ->
      let th = Protocols.Thresholds.default ~n ~t in
      Alcotest.(check bool)
        (Printf.sprintf "valid for n=%d t=%d" n t)
        true
        (ok (Protocols.Thresholds.validate ~n ~t th)))
    [ (7, 1); (13, 2); (19, 3); (100, 16); (1000, 166) ]

let test_default_values () =
  let th = Protocols.Thresholds.default ~n:13 ~t:2 in
  Alcotest.(check int) "T1 = n - 2t" 9 th.Protocols.Thresholds.t1;
  Alcotest.(check int) "T2 = T1" 9 th.Protocols.Thresholds.t2;
  Alcotest.(check int) "T3 = n - 3t" 7 th.Protocols.Thresholds.t3

let test_infeasible_raises () =
  (* t >= n/6 has no valid thresholds. *)
  List.iter
    (fun (n, t) ->
      let raised =
        try
          ignore (Protocols.Thresholds.default ~n ~t);
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool) (Printf.sprintf "infeasible n=%d t=%d" n t) true raised)
    [ (6, 1); (12, 2); (10, 2) ]

let test_feasible_boundary () =
  (* Feasible exactly when 6t < n. *)
  Alcotest.(check bool) "n=7 t=1" true (Protocols.Thresholds.feasible ~n:7 ~t:1);
  Alcotest.(check bool) "n=6 t=1" false (Protocols.Thresholds.feasible ~n:6 ~t:1);
  Alcotest.(check bool) "n=13 t=2" true (Protocols.Thresholds.feasible ~n:13 ~t:2);
  Alcotest.(check bool) "n=12 t=2" false (Protocols.Thresholds.feasible ~n:12 ~t:2)

let test_max_fault_bound () =
  Alcotest.(check int) "n=7" 1 (Protocols.Thresholds.max_fault_bound ~n:7);
  Alcotest.(check int) "n=12" 1 (Protocols.Thresholds.max_fault_bound ~n:12);
  Alcotest.(check int) "n=13" 2 (Protocols.Thresholds.max_fault_bound ~n:13);
  Alcotest.(check int) "n=100" 16 (Protocols.Thresholds.max_fault_bound ~n:100);
  (* The returned bound is always feasible, and t+1 never is. *)
  List.iter
    (fun n ->
      let t = Protocols.Thresholds.max_fault_bound ~n in
      if t > 0 then
        Alcotest.(check bool) "max is feasible" true (Protocols.Thresholds.feasible ~n ~t);
      Alcotest.(check bool) "max+1 is not" false
        (Protocols.Thresholds.feasible ~n ~t:(t + 1)))
    [ 7; 13; 25; 50; 101 ]

let test_validate_each_constraint () =
  let n = 13 and t = 2 in
  let base = Protocols.Thresholds.default ~n ~t in
  let check_error thresholds =
    match Protocols.Thresholds.validate ~n ~t thresholds with
    | Ok () -> Alcotest.fail "expected a constraint violation"
    | Error _ -> ()
  in
  check_error { base with Protocols.Thresholds.t1 = n - (2 * t) + 1 } (* T1 too big *);
  check_error { base with Protocols.Thresholds.t2 = base.Protocols.Thresholds.t1 + 1 };
  check_error { base with Protocols.Thresholds.t3 = base.Protocols.Thresholds.t2 - t + 1 };
  check_error { Protocols.Thresholds.t1 = 9; t2 = 8; t3 = 6 } (* 2*T3 = 12 < 13 = n *)

let test_relaxed () =
  let n = 25 and t = 2 in
  let th = Protocols.Thresholds.relaxed ~n ~t in
  Alcotest.(check bool) "valid" true (ok (Protocols.Thresholds.validate ~n ~t th));
  Alcotest.(check int) "T2 = T3 + t" (th.Protocols.Thresholds.t3 + t)
    th.Protocols.Thresholds.t2;
  let default = Protocols.Thresholds.default ~n ~t in
  Alcotest.(check bool) "relaxed T2 below default T2" true
    (th.Protocols.Thresholds.t2 <= default.Protocols.Thresholds.t2)

let test_error_taxonomy () =
  (* The typed [Protocol_error] taxonomy renders the exact messages the
     constructors raise; these strings are API, pinned here. *)
  Alcotest.check_raises "default infeasible message"
    (Invalid_argument "Thresholds.default: infeasible for n=6 t=1 (need 2*T3 > n)")
    (fun () -> ignore (Protocols.Thresholds.default ~n:6 ~t:1));
  Alcotest.check_raises "relaxed infeasible message"
    (Invalid_argument "Thresholds.relaxed: infeasible for n=6 t=1 (need T1 >= T2)")
    (fun () -> ignore (Protocols.Thresholds.relaxed ~n:6 ~t:1));
  Alcotest.(check string) "origin variant renders who only"
    "Rbc_once.protocol: origin out of range"
    (Protocols.Protocol_error.to_string
       (Origin_out_of_range { who = "Rbc_once.protocol"; origin = 9; n = 4 }));
  Alcotest.(check string) "arity variant renders who only"
    "Committee.run: |inputs| <> n"
    (Protocols.Protocol_error.to_string
       (Input_arity_mismatch { who = "Committee.run"; expected = 5; got = 3 }));
  Alcotest.(check string) "infeasible variant carries n, t, reason"
    "Lewko_variant.init: infeasible for n=7 t=1 (need 2*T3 > n)"
    (Protocols.Protocol_error.to_string
       (Infeasible_thresholds
          { who = "Lewko_variant.init"; n = 7; t = 1; reason = "need 2*T3 > n" }))

let test_rbc_origin_out_of_range () =
  let p = Protocols.Rbc_once.protocol ~origin:5 () in
  Alcotest.check_raises "origin >= n rejected"
    (Invalid_argument "Rbc_once.protocol: origin out of range") (fun () ->
      ignore (p.Dsim.Protocol.init ~n:4 ~t:1 ~id:0 ~input:true))

let suite =
  [
    Alcotest.test_case "default satisfies constraints" `Quick
      test_default_satisfies_constraints;
    Alcotest.test_case "default values" `Quick test_default_values;
    Alcotest.test_case "infeasible raises" `Quick test_infeasible_raises;
    Alcotest.test_case "feasible boundary" `Quick test_feasible_boundary;
    Alcotest.test_case "max fault bound" `Quick test_max_fault_bound;
    Alcotest.test_case "validate each constraint" `Quick test_validate_each_constraint;
    Alcotest.test_case "relaxed" `Quick test_relaxed;
    Alcotest.test_case "error taxonomy messages" `Quick test_error_taxonomy;
    Alcotest.test_case "rbc origin out of range" `Quick
      test_rbc_origin_out_of_range;
  ]
