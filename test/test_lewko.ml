(* White-box tests of the Section 3 variant algorithm, driving the
   protocol record directly (no engine): n = 7, t = 1, so T1 = T2 = 5
   and T3 = 4. *)

let protocol = Protocols.Lewko_variant.protocol ()

let rng () = Prng.Stream.root 77

let init ?(input = true) ?(id = 0) () =
  protocol.Dsim.Protocol.init ~n:7 ~t:1 ~id ~input

let deliver state ~src message = protocol.Dsim.Protocol.on_deliver state ~src message (rng ())

let vote round value = { Protocols.Lewko_variant.round; value }

let feed state votes =
  List.fold_left (fun s (src, round, value) -> deliver s ~src (vote round value)) state votes

(* Drain the outbox and expand lazy broadcasts into the explicit
   (destination, message) pairs the engine would enqueue. *)
let drain state =
  let state, sends = protocol.Dsim.Protocol.outgoing state in
  (state, Dsim.Step.expand ~n:7 sends)

let test_init_broadcasts () =
  let state = init () in
  let _, messages = drain state in
  Alcotest.(check int) "sends to all 7" 7 (List.length messages);
  List.iter
    (fun (_, m) ->
      Alcotest.(check int) "round 1" 1 m.Protocols.Lewko_variant.round;
      Alcotest.(check bool) "carries input" true m.Protocols.Lewko_variant.value)
    messages;
  Alcotest.(check int) "round 1" 1 (Protocols.Lewko_variant.round_of_state state)

let test_outgoing_idempotent () =
  let state = init () in
  let state, first = drain state in
  let _, second = drain state in
  Alcotest.(check int) "first flush" 7 (List.length first);
  Alcotest.(check int) "second flush empty" 0 (List.length second)

let test_waits_for_t1 () =
  let state = init () in
  let state = feed state [ (1, 1, true); (2, 1, true); (3, 1, true); (4, 1, true) ] in
  Alcotest.(check int) "still round 1 after 4 votes" 1
    (Protocols.Lewko_variant.round_of_state state);
  Alcotest.(check int) "pending count" 4
    (Protocols.Lewko_variant.pending_votes state ~round:1)

let test_decides_at_t2 () =
  let state, _ = drain (init ()) in
  let state =
    feed state
      [ (1, 1, true); (2, 1, true); (3, 1, true); (4, 1, true); (5, 1, true) ]
  in
  Alcotest.(check bool) "decided 1" true (protocol.Dsim.Protocol.output state = Some true);
  Alcotest.(check int) "advanced to round 2" 2
    (Protocols.Lewko_variant.round_of_state state);
  (* The round-2 vote is queued. *)
  let _, messages = drain state in
  Alcotest.(check int) "round-2 broadcast" 7 (List.length messages);
  List.iter
    (fun (_, m) -> Alcotest.(check int) "round 2" 2 m.Protocols.Lewko_variant.round)
    messages

let test_adopts_at_t3_without_deciding () =
  let state = init ~input:false () in
  (* 4 ones + 1 zero: T3 = 4 reached for 1, T2 = 5 not. *)
  let state =
    feed state
      [ (1, 1, true); (2, 1, true); (3, 1, true); (4, 1, true); (5, 1, false) ]
  in
  Alcotest.(check bool) "no decision" true (protocol.Dsim.Protocol.output state = None);
  Alcotest.(check bool) "adopted majority deterministically" true
    (Protocols.Lewko_variant.estimate_of_state state = Some true)

let test_coin_on_balance () =
  (* 3/2 split is below T3 on both sides: the estimate must come from
     the coin — over many rngs both values must occur. *)
  let outcomes = ref [] in
  for seed = 1 to 30 do
    let state = protocol.Dsim.Protocol.init ~n:7 ~t:1 ~id:0 ~input:true in
    let r = Prng.Stream.root seed in
    let state =
      List.fold_left
        (fun s (src, v) ->
          protocol.Dsim.Protocol.on_deliver s ~src (vote 1 v) r)
        state
        [ (1, true); (2, true); (3, true); (4, false); (5, false) ]
    in
    match Protocols.Lewko_variant.estimate_of_state state with
    | Some v -> outcomes := v :: !outcomes
    | None -> Alcotest.fail "expected an estimate"
  done;
  Alcotest.(check bool) "both coin values occur" true
    (List.mem true !outcomes && List.mem false !outcomes)

let test_duplicate_votes_ignored () =
  let state = init () in
  let state =
    feed state [ (1, 1, true); (1, 1, true); (1, 1, false); (2, 1, true) ]
  in
  Alcotest.(check int) "two distinct senders" 2
    (Protocols.Lewko_variant.pending_votes state ~round:1)

let test_old_round_votes_ignored () =
  let state = init () in
  let state =
    feed state
      [ (1, 1, true); (2, 1, true); (3, 1, true); (4, 1, true); (5, 1, true) ]
  in
  (* Now in round 2; a late round-1 vote must not count anywhere. *)
  let state = feed state [ (6, 1, false) ] in
  Alcotest.(check int) "round unchanged" 2 (Protocols.Lewko_variant.round_of_state state);
  Alcotest.(check int) "no round-1 tally kept" 0
    (Protocols.Lewko_variant.pending_votes state ~round:1)

let test_future_round_votes_buffered () =
  let state = init () in
  (* Four round-2 votes arrive early; then round 1 completes; then the
     fifth round-2 vote fires round 2 immediately. *)
  let state =
    feed state [ (1, 2, true); (2, 2, true); (3, 2, true); (4, 2, true) ]
  in
  Alcotest.(check int) "buffered" 4 (Protocols.Lewko_variant.pending_votes state ~round:2);
  let state =
    feed state
      [ (1, 1, true); (2, 1, true); (3, 1, true); (4, 1, true); (5, 1, true) ]
  in
  Alcotest.(check int) "round 2 now" 2 (Protocols.Lewko_variant.round_of_state state);
  let state = feed state [ (5, 2, true) ] in
  Alcotest.(check int) "round 3 after 5th future vote" 3
    (Protocols.Lewko_variant.round_of_state state)

let test_reset_and_recovery () =
  let state = init () in
  let state = protocol.Dsim.Protocol.on_reset state in
  Alcotest.(check int) "recovering round" (-1)
    (Protocols.Lewko_variant.round_of_state state);
  Alcotest.(check bool) "no estimate while recovering" true
    (Protocols.Lewko_variant.estimate_of_state state = None);
  let obs = protocol.Dsim.Protocol.observe state in
  Alcotest.(check int) "reset counter" 1 obs.Dsim.Obs.resets;
  (* A recovering processor sends nothing. *)
  let _, messages = drain state in
  Alcotest.(check int) "silent while recovering" 0 (List.length messages);
  (* Five round-5 votes with 4+ agreeing: adopt round 5, run step 3,
     resume at round 6. *)
  let state =
    feed state
      [ (1, 5, true); (2, 5, true); (3, 5, true); (4, 5, true); (5, 5, false) ]
  in
  Alcotest.(check int) "recovered to round 6" 6
    (Protocols.Lewko_variant.round_of_state state);
  Alcotest.(check bool) "estimate adopted" true
    (Protocols.Lewko_variant.estimate_of_state state = Some true);
  let _, messages = drain state in
  Alcotest.(check int) "resumes broadcasting" 7 (List.length messages)

let test_reset_preserves_output_and_input () =
  let state = init ~input:false () in
  let state =
    feed state
      [ (1, 1, false); (2, 1, false); (3, 1, false); (4, 1, false); (5, 1, false) ]
  in
  Alcotest.(check bool) "decided 0" true (protocol.Dsim.Protocol.output state = Some false);
  let state = protocol.Dsim.Protocol.on_reset state in
  Alcotest.(check bool) "output survives reset" true
    (protocol.Dsim.Protocol.output state = Some false);
  let obs = protocol.Dsim.Protocol.observe state in
  Alcotest.(check bool) "input survives reset" false obs.Dsim.Obs.input

let test_recovery_can_decide () =
  (* A recovering processor that sees T2 agreeing votes writes its
     output during recovery (step 3 includes the decision rule). *)
  let state = protocol.Dsim.Protocol.on_reset (init ()) in
  let state =
    feed state
      [ (1, 4, false); (2, 4, false); (3, 4, false); (4, 4, false); (5, 4, false) ]
  in
  Alcotest.(check bool) "decided during recovery" true
    (protocol.Dsim.Protocol.output state = Some false)

let test_message_introspection () =
  let m = vote 3 true in
  Alcotest.(check bool) "bit" true (protocol.Dsim.Protocol.message_bit m = Some true);
  Alcotest.(check bool) "round" true (protocol.Dsim.Protocol.message_round m = Some 3);
  (match protocol.Dsim.Protocol.rewrite_bit m false with
  | Some m' ->
      Alcotest.(check bool) "rewritten bit" true
        (protocol.Dsim.Protocol.message_bit m' = Some false);
      Alcotest.(check bool) "round preserved" true
        (protocol.Dsim.Protocol.message_round m' = Some 3)
  | None -> Alcotest.fail "expected rewrite");
  Alcotest.(check bool) "origin is sender" true
    (protocol.Dsim.Protocol.message_origin m = None)

let test_state_core_distinguishes () =
  let a = init ~input:true () and b = init ~input:false () in
  Alcotest.(check bool) "different inputs, different cores" true
    (protocol.Dsim.Protocol.state_core a <> protocol.Dsim.Protocol.state_core b);
  let a' = feed a [ (1, 1, true) ] in
  Alcotest.(check bool) "delivery changes core" true
    (protocol.Dsim.Protocol.state_core a <> protocol.Dsim.Protocol.state_core a')

let test_custom_thresholds_validated () =
  let bad = { Protocols.Thresholds.t1 = 7; t2 = 7; t3 = 7 } in
  let p = Protocols.Lewko_variant.protocol ~thresholds:bad () in
  Alcotest.check_raises "invalid thresholds rejected at init"
    (Invalid_argument
       "Lewko_variant.init: infeasible for n=7 t=1 (need n - 2t >= T1)")
    (fun () -> ignore (p.Dsim.Protocol.init ~n:7 ~t:1 ~id:0 ~input:true))

let suite =
  [
    Alcotest.test_case "init broadcasts" `Quick test_init_broadcasts;
    Alcotest.test_case "outgoing idempotent" `Quick test_outgoing_idempotent;
    Alcotest.test_case "waits for T1" `Quick test_waits_for_t1;
    Alcotest.test_case "decides at T2" `Quick test_decides_at_t2;
    Alcotest.test_case "adopts at T3 without deciding" `Quick
      test_adopts_at_t3_without_deciding;
    Alcotest.test_case "coin on balance" `Quick test_coin_on_balance;
    Alcotest.test_case "duplicate votes ignored" `Quick test_duplicate_votes_ignored;
    Alcotest.test_case "old round votes ignored" `Quick test_old_round_votes_ignored;
    Alcotest.test_case "future round votes buffered" `Quick
      test_future_round_votes_buffered;
    Alcotest.test_case "reset and recovery" `Quick test_reset_and_recovery;
    Alcotest.test_case "reset preserves output/input" `Quick
      test_reset_preserves_output_and_input;
    Alcotest.test_case "recovery can decide" `Quick test_recovery_can_decide;
    Alcotest.test_case "message introspection" `Quick test_message_introspection;
    Alcotest.test_case "state core distinguishes" `Quick test_state_core_distinguishes;
    Alcotest.test_case "custom thresholds validated" `Quick
      test_custom_thresholds_validated;
  ]
