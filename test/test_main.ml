let () =
  Alcotest.run "agreement-repro"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("mailbox", Test_mailbox.suite);
      ("window", Test_window.suite);
      ("engine", Test_engine.suite);
      ("kernel-diff", Test_kernel_diff.suite);
      ("runner", Test_runner.suite);
      ("trace", Test_trace.suite);
      ("thresholds", Test_thresholds.suite);
      ("tally", Test_tally.suite);
      ("lewko", Test_lewko.suite);
      ("ben-or", Test_ben_or.suite);
      ("rbc", Test_rbc.suite);
      ("bracha", Test_bracha.suite);
      ("committee", Test_committee.suite);
      ("classifier", Test_classifier.suite);
      ("adversary", Test_adversary.suite);
      ("hamming", Test_hamming.suite);
      ("product", Test_product.suite);
      ("talagrand", Test_talagrand.suite);
      ("interpolation", Test_interpolation.suite);
      ("theory", Test_theory.suite);
      ("zk-sets", Test_zk.suite);
      ("proof-adversary", Test_proof_adversary.suite);
      ("core", Test_core.suite);
      ("properties", Test_properties.suite);
      ("repro", Test_repro.suite);
      ("lint", Test_lint.suite);
      ("typed-lint", Test_typed_lint.suite);
      ("par-sweep", Test_par_sweep.suite);
      ("syncsim", Test_syncsim.suite);
      ("shmem", Test_shmem.suite);
      ("sm-consensus", Test_sm_consensus.suite);
      ("smoke", Test_smoke.suite);
    ]
