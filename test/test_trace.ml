(* Trace recording, counters and printers. *)

let test_counters () =
  let t = Dsim.Trace.create ~record_events:false () in
  Dsim.Trace.record t (Dsim.Trace.Sent { src = 0; dst = 1; msg_id = 0; depth = 1 });
  Dsim.Trace.record t (Dsim.Trace.Delivered { src = 0; dst = 1; msg_id = 0; depth = 1 });
  Dsim.Trace.record t (Dsim.Trace.Dropped { msg_id = 9 });
  Dsim.Trace.record t (Dsim.Trace.Reset_done { pid = 2 });
  Dsim.Trace.record t (Dsim.Trace.Crashed { pid = 3 });
  Dsim.Trace.record t (Dsim.Trace.Window_closed { index = 1 });
  Alcotest.(check int) "sent" 1 (Dsim.Trace.sent t);
  Alcotest.(check int) "delivered" 1 (Dsim.Trace.delivered t);
  Alcotest.(check int) "dropped" 1 (Dsim.Trace.dropped t);
  Alcotest.(check int) "resets" 1 (Dsim.Trace.resets t);
  Alcotest.(check int) "crashes" 1 (Dsim.Trace.crashes t);
  Alcotest.(check int) "windows" 1 (Dsim.Trace.windows_closed t);
  Alcotest.(check (list string)) "events not recorded" []
    (List.map (Format.asprintf "%a" Dsim.Trace.pp_event) (Dsim.Trace.events t))

let test_event_recording () =
  let t = Dsim.Trace.create ~record_events:true () in
  Dsim.Trace.record t (Dsim.Trace.Sent { src = 0; dst = 1; msg_id = 0; depth = 1 });
  Dsim.Trace.record t (Dsim.Trace.Dropped { msg_id = 0 });
  let events = Dsim.Trace.events t in
  Alcotest.(check int) "two events" 2 (List.length events);
  (* Chronological order. *)
  match events with
  | [ Dsim.Trace.Sent _; Dsim.Trace.Dropped _ ] -> ()
  | _ -> Alcotest.fail "events out of order"

let test_decisions_always_recorded () =
  let t = Dsim.Trace.create ~record_events:false () in
  Dsim.Trace.record t
    (Dsim.Trace.Decided { pid = 4; value = true; step = 10; window = 2; chain_depth = 3 });
  Dsim.Trace.record t
    (Dsim.Trace.Decided { pid = 5; value = true; step = 12; window = 2; chain_depth = 3 });
  Alcotest.(check int) "both decisions kept" 2 (List.length (Dsim.Trace.decisions t));
  match Dsim.Trace.first_decision t with
  | Some (pid, value, step, window, chain) ->
      Alcotest.(check int) "first pid" 4 pid;
      Alcotest.(check bool) "value" true value;
      Alcotest.(check int) "step" 10 step;
      Alcotest.(check int) "window" 2 window;
      Alcotest.(check int) "chain" 3 chain
  | None -> Alcotest.fail "expected first decision"

let test_copy_independent () =
  let t = Dsim.Trace.create ~record_events:true () in
  Dsim.Trace.record t (Dsim.Trace.Dropped { msg_id = 1 });
  let c = Dsim.Trace.copy t in
  Dsim.Trace.record c (Dsim.Trace.Dropped { msg_id = 2 });
  Alcotest.(check int) "original unaffected" 1 (Dsim.Trace.dropped t);
  Alcotest.(check int) "copy advanced" 2 (Dsim.Trace.dropped c)

let test_printers_do_not_crash () =
  let printed =
    List.map
      (Format.asprintf "%a" Dsim.Trace.pp_event)
      [
        Dsim.Trace.Sent { src = 0; dst = 1; msg_id = 2; depth = 3 };
        Dsim.Trace.Delivered { src = 0; dst = 1; msg_id = 2; depth = 3 };
        Dsim.Trace.Dropped { msg_id = 2 };
        Dsim.Trace.Reset_done { pid = 1 };
        Dsim.Trace.Crashed { pid = 1 };
        Dsim.Trace.Decided { pid = 1; value = false; step = 4; window = 1; chain_depth = 2 };
        Dsim.Trace.Window_closed { index = 7 };
      ]
  in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty rendering" true (String.length s > 0))
    printed;
  let obs =
    Dsim.Obs.make ~id:3 ~round:2 ~estimate:(Some true) ~output:None ~input:false
      ~resets:1 ~phase:0
  in
  Alcotest.(check bool) "obs printer" true
    (String.length (Format.asprintf "%a" Dsim.Obs.pp obs) > 0)

let test_json_write_file () =
  let t = Dsim.Trace.create ~record_events:true () in
  Dsim.Trace.record t (Dsim.Trace.Reset_done { pid = 0 });
  let path = Filename.temp_file "trace" ".jsonl" in
  Dsim.Trace_export.write_file ~path t;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file starts with the summary" true
    (String.length first > 10 && String.sub first 0 16 = {|{"type":"summary|})

let test_random_fair_never_drops () =
  (* The random-fair scheduler only delays: by the end of a completed
     run, everything sent was delivered (no Drop steps). *)
  let config =
    Dsim.Engine.init ~protocol:(Protocols.Ben_or.protocol ()) ~n:5 ~fault_bound:1
      ~inputs:(Array.make 5 true) ~seed:3 ()
  in
  let outcome =
    Dsim.Runner.run_steps config
      ~strategy:(Adversary.Benign.random_fair ~seed:8 ~drop_probability:0.5 ())
      ~max_steps:100_000 ~stop:`All_decided
  in
  Alcotest.(check bool) "decided" true (outcome.Dsim.Runner.decided <> []);
  Alcotest.(check int) "nothing dropped" 0
    (Dsim.Trace.dropped (Dsim.Engine.trace config))

let test_json_export () =
  let t = Dsim.Trace.create ~record_events:true () in
  Dsim.Trace.record t (Dsim.Trace.Sent { src = 0; dst = 1; msg_id = 2; depth = 3 });
  Dsim.Trace.record t
    (Dsim.Trace.Decided { pid = 1; value = true; step = 4; window = 1; chain_depth = 2 });
  let jsonl = Dsim.Trace_export.to_jsonl t in
  let lines = String.split_on_char '\n' jsonl |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "summary + 2 events" 3 (List.length lines);
  Alcotest.(check string) "summary line"
    {|{"type":"summary","sent":1,"delivered":0,"dropped":0,"resets":0,"crashes":0,"windows":0,"decisions":[{"pid":1,"value":1,"step":4,"window":1,"chain_depth":2}]}|}
    (List.hd lines);
  Alcotest.(check string) "sent event"
    {|{"type":"sent","src":0,"dst":1,"msg_id":2,"depth":3}|}
    (List.nth lines 1);
  Alcotest.(check string) "decided event"
    {|{"type":"decided","pid":1,"value":1,"step":4,"window":1,"chain_depth":2}|}
    (List.nth lines 2)

let test_json_event_shapes () =
  List.iter
    (fun (event, expected) ->
      Alcotest.(check string) "event json" expected (Dsim.Trace_export.event_to_json event))
    [
      (Dsim.Trace.Dropped { msg_id = 7 }, {|{"type":"dropped","msg_id":7}|});
      (Dsim.Trace.Reset_done { pid = 3 }, {|{"type":"reset","pid":3}|});
      (Dsim.Trace.Crashed { pid = 4 }, {|{"type":"crashed","pid":4}|});
      (Dsim.Trace.Window_closed { index = 9 }, {|{"type":"window_closed","index":9}|});
    ]

let ev_drop i = Dsim.Trace.Dropped { msg_id = i }

let test_ring_retention () =
  let t = Dsim.Trace.create ~sink:(Dsim.Trace.Ring 3) ~record_events:true () in
  for i = 1 to 7 do
    Dsim.Trace.record t (ev_drop i)
  done;
  Alcotest.(check (list int)) "last k, chronological" [ 5; 6; 7 ]
    (List.filter_map
       (function Dsim.Trace.Dropped { msg_id } -> Some msg_id | _ -> None)
       (Dsim.Trace.events t));
  Alcotest.(check int) "counter sees all" 7 (Dsim.Trace.dropped t);
  (* Retention does not touch the digest: a Memory trace fed the same
     sequence fingerprints identically. *)
  let m = Dsim.Trace.create ~record_events:true () in
  for i = 1 to 7 do
    Dsim.Trace.record m (ev_drop i)
  done;
  Alcotest.(check string) "fingerprint ignores eviction"
    (Dsim.Trace.events_fingerprint m)
    (Dsim.Trace.events_fingerprint t);
  let z = Dsim.Trace.create ~sink:(Dsim.Trace.Ring 0) ~record_events:true () in
  Dsim.Trace.record z (ev_drop 1);
  Alcotest.(check int) "zero-capacity ring retains nothing" 0
    (List.length (Dsim.Trace.events z))

let test_chunk_flush () =
  let flushed = ref [] in
  let t =
    Dsim.Trace.create
      ~sink:(Dsim.Trace.chunks ~chunk_bytes:32 (fun s -> flushed := s :: !flushed))
      ~record_events:true ()
  in
  (* Each rendered line is ~14 bytes; nothing leaves before the 32-byte
     threshold, everything leaves by the final flush. *)
  Dsim.Trace.record t (ev_drop 1);
  Alcotest.(check int) "below threshold: nothing emitted" 0
    (List.length !flushed);
  for i = 2 to 5 do
    Dsim.Trace.record t (ev_drop i)
  done;
  Alcotest.(check bool) "threshold crossed: chunks emitted" true
    (List.length !flushed > 0);
  Dsim.Trace.flush t;
  let text = String.concat "" (List.rev !flushed) in
  let expected =
    String.concat ""
      (List.map
         (fun i -> Format.asprintf "%a\n" Dsim.Trace.pp_event (ev_drop i))
         [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check string) "stream reassembles the event text" expected text;
  Alcotest.(check (list string)) "streamed events list is empty" []
    (List.map (Format.asprintf "%a" Dsim.Trace.pp_event) (Dsim.Trace.events t));
  Dsim.Trace.flush t;
  Alcotest.(check string) "flush is idempotent" expected
    (String.concat "" (List.rev !flushed))

let test_sink_fingerprints_agree () =
  let buf = Buffer.create 64 in
  let sinks =
    [
      Dsim.Trace.Memory;
      Dsim.Trace.Ring 2;
      Dsim.Trace.to_buffer ~chunk_bytes:16 buf;
    ]
  in
  let digests =
    List.map
      (fun sink ->
        let t = Dsim.Trace.create ~sink ~record_events:true () in
        List.iter (Dsim.Trace.record t)
          [
            Dsim.Trace.Sent { src = 0; dst = 1; msg_id = 0; depth = 1 };
            ev_drop 0;
            Dsim.Trace.Reset_done { pid = 2 };
          ];
        Dsim.Trace.flush t;
        Dsim.Trace.events_fingerprint t)
      sinks
  in
  match digests with
  | [ a; b; c ] ->
      Alcotest.(check string) "memory = ring" a b;
      Alcotest.(check string) "memory = chunks" a c
  | _ -> assert false

let test_stream_copy_shares_consumer () =
  let flushed = ref [] in
  let t =
    Dsim.Trace.create
      ~sink:(Dsim.Trace.chunks ~chunk_bytes:1024 (fun s -> flushed := s :: !flushed))
      ~record_events:true ()
  in
  Dsim.Trace.record t (ev_drop 1);
  let c = Dsim.Trace.copy t in
  Dsim.Trace.record c (ev_drop 2);
  (* Scratch buffers are independent: the copy's extra event does not
     appear in the original's pending text. *)
  Dsim.Trace.flush t;
  let original_text = String.concat "" (List.rev !flushed) in
  Alcotest.(check string) "copy's event absent from original scratch"
    (Format.asprintf "%a\n" Dsim.Trace.pp_event (ev_drop 1))
    original_text;
  flushed := [];
  Dsim.Trace.flush c;
  (* The copy drains through the same downstream consumer. *)
  Alcotest.(check bool) "copy shares the consumer" true
    (String.length (String.concat "" !flushed) > 0)

let test_sink_invalid_args () =
  (match Dsim.Trace.chunks ~chunk_bytes:0 (fun _ -> ()) with
  | _ -> Alcotest.fail "chunk_bytes = 0 should raise"
  | exception Invalid_argument _ -> ());
  (match Dsim.Trace.create ~sink:(Dsim.Trace.Ring (-1)) ~record_events:true () with
  | _ -> Alcotest.fail "negative ring capacity should raise"
  | exception Invalid_argument _ -> ());
  let counting = Dsim.Trace.create ~record_events:false () in
  (match Dsim.Trace.record_windows_closed counting ~count:(-1) with
  | () -> Alcotest.fail "negative count should raise"
  | exception Invalid_argument _ -> ());
  Dsim.Trace.record_windows_closed counting ~count:4;
  Alcotest.(check int) "bulk accounting lands" 4
    (Dsim.Trace.windows_closed counting);
  let recording = Dsim.Trace.create ~record_events:true () in
  match Dsim.Trace.record_windows_closed recording ~count:1 with
  | () -> Alcotest.fail "bulk accounting must refuse when events are on"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "json export" `Quick test_json_export;
    Alcotest.test_case "json event shapes" `Quick test_json_event_shapes;
    Alcotest.test_case "json write file" `Quick test_json_write_file;
    Alcotest.test_case "event recording" `Quick test_event_recording;
    Alcotest.test_case "decisions always recorded" `Quick test_decisions_always_recorded;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "printers do not crash" `Quick test_printers_do_not_crash;
    Alcotest.test_case "random-fair never drops" `Quick test_random_fair_never_drops;
    Alcotest.test_case "ring retention" `Quick test_ring_retention;
    Alcotest.test_case "chunk flush" `Quick test_chunk_flush;
    Alcotest.test_case "sink fingerprints agree" `Quick test_sink_fingerprints_agree;
    Alcotest.test_case "stream copy shares consumer" `Quick test_stream_copy_shares_consumer;
    Alcotest.test_case "sink invalid args" `Quick test_sink_invalid_args;
  ]
