(* Differential validation of the dsim kernel hot-path rewrite.

   The mailbox (slot array + per-destination intrusive queues) and
   window (bitset masks + cached sizes) replaced persistent-map / list
   implementations; [Engine.apply_window] now walks the per-dst queues
   directly.  This module keeps the old semantics alive as [Reference]
   implementations and drives both sides with random operation
   sequences, windows, resets and corrupt/drop steps — they must agree
   observation for observation.  A second layer pins MD5 fingerprints,
   step counts and sweep outputs captured from the pre-rewrite kernel,
   proving executions are byte-identical to seed at [-j 1] and [-j 2]. *)

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Reference mailbox: the pre-rewrite Int_map implementation.          *)

module Ref_mailbox = struct
  module Int_map = Map.Make (Int)

  type 'm t = { mutable by_id : 'm Dsim.Envelope.t Int_map.t }

  let create () = { by_id = Int_map.empty }
  let copy t = { by_id = t.by_id }

  let add t envelope =
    if Int_map.mem envelope.Dsim.Envelope.id t.by_id then
      invalid_arg "Mailbox.add: duplicate message id";
    t.by_id <- Int_map.add envelope.Dsim.Envelope.id envelope t.by_id

  let take t id =
    match Int_map.find_opt id t.by_id with
    | None -> None
    | Some envelope ->
        t.by_id <- Int_map.remove id t.by_id;
        Some envelope

  let find t id = Int_map.find_opt id t.by_id

  let replace_payload t id payload =
    match Int_map.find_opt id t.by_id with
    | None -> false
    | Some envelope ->
        t.by_id <- Int_map.add id { envelope with Dsim.Envelope.payload } t.by_id;
        true

  let size t = Int_map.cardinal t.by_id
  let is_empty t = Int_map.is_empty t.by_id
  let pending t = List.map snd (Int_map.bindings t.by_id)
  let pending_for t ~dst = List.filter (fun e -> e.Dsim.Envelope.dst = dst) (pending t)
  let pending_from t ~src = List.filter (fun e -> e.Dsim.Envelope.src = src) (pending t)
  let pending_ids t = List.map fst (Int_map.bindings t.by_id)

  let filter_ids t f =
    Int_map.fold (fun id e acc -> if f e then id :: acc else acc) t.by_id []
    |> List.rev
end

let envelope ~id ~src ~dst ~payload =
  {
    Dsim.Envelope.id;
    src;
    dst;
    payload;
    depth = (id mod 5) + 1;
    sent_at_step = id;
    sent_in_window = id / 4;
  }

(* Every observable accessor, on both sides. *)
let mailbox_obs_equal (m : int Dsim.Mailbox.t) (r : int Ref_mailbox.t) =
  let iter_for_collect dst =
    let acc = ref [] in
    Dsim.Mailbox.iter_for m ~dst (fun e -> acc := e :: !acc);
    List.rev !acc
  in
  Dsim.Mailbox.size m = Ref_mailbox.size r
  && Dsim.Mailbox.is_empty m = Ref_mailbox.is_empty r
  && Dsim.Mailbox.pending m = Ref_mailbox.pending r
  && Dsim.Mailbox.pending_ids m = Ref_mailbox.pending_ids r
  && Dsim.Mailbox.filter_ids m (fun e -> e.Dsim.Envelope.id mod 3 = 0)
     = Ref_mailbox.filter_ids r (fun e -> e.Dsim.Envelope.id mod 3 = 0)
  && List.for_all
       (fun dst ->
         Dsim.Mailbox.pending_for m ~dst = Ref_mailbox.pending_for r ~dst
         && iter_for_collect dst = Ref_mailbox.pending_for r ~dst)
       [ -1; 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  && List.for_all
       (fun src -> Dsim.Mailbox.pending_from m ~src = Ref_mailbox.pending_from r ~src)
       [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let prop_mailbox_differential =
  QCheck.Test.make ~count:60 ~name:"mailbox matches Int_map reference"
    QCheck.small_int (fun seed ->
      let rng = Prng.Stream.root (seed + 101) in
      let m : int Dsim.Mailbox.t = Dsim.Mailbox.create () in
      let r : int Ref_mailbox.t = Ref_mailbox.create () in
      let ok = ref true in
      let check b = if not b then ok := false in
      for op = 1 to 300 do
        (match Prng.Stream.int_below rng 10 with
        | 0 | 1 | 2 | 3 | 4 ->
            (* add, sometimes of a duplicate id, sometimes dst = -1 *)
            let id = Prng.Stream.int_below rng 64 in
            let src = Prng.Stream.int_below rng 8 in
            let dst = Prng.Stream.int_below rng 11 - 1 in
            let e = envelope ~id ~src ~dst ~payload:(id * 17) in
            let added_m =
              try
                Dsim.Mailbox.add m e;
                true
              with Invalid_argument _ -> false
            in
            let added_r =
              try
                Ref_mailbox.add r e;
                true
              with Invalid_argument _ -> false
            in
            check (added_m = added_r)
        | 5 | 6 ->
            let id = Prng.Stream.int_below rng 64 in
            check (Dsim.Mailbox.take m id = Ref_mailbox.take r id)
        | 7 ->
            let id = Prng.Stream.int_below rng 64 in
            check (Dsim.Mailbox.find m id = Ref_mailbox.find r id);
            check
              (Dsim.Mailbox.mem m id
              = Option.is_some (Ref_mailbox.find r id))
        | 8 ->
            let id = Prng.Stream.int_below rng 64 in
            let payload = Prng.Stream.int_below rng 1000 in
            check
              (Dsim.Mailbox.replace_payload m id payload
              = Ref_mailbox.replace_payload r id payload)
        | _ -> check (mailbox_obs_equal m r));
        if op mod 25 = 0 then check (mailbox_obs_equal m r)
      done;
      check (mailbox_obs_equal m r);
      (* copies are deep: draining the copy leaves the original alone *)
      let mc = Dsim.Mailbox.copy m and rc = Ref_mailbox.copy r in
      check (mailbox_obs_equal mc rc);
      List.iter
        (fun id ->
          check (Dsim.Mailbox.take mc id = Ref_mailbox.take rc id))
        (Ref_mailbox.pending_ids rc);
      check (Dsim.Mailbox.is_empty mc);
      check (mailbox_obs_equal m r);
      !ok)

(* Broadcast envelopes against the same reference: one [add_broadcast]
   must be observation-equivalent to the n eager adds it replaces, under
   random takes, finds, corrupt-splits ([replace_payload] on a broadcast
   member) and range sweeps. *)
let prop_broadcast_mailbox_differential =
  QCheck.Test.make ~count:60 ~name:"lazy broadcast matches n eager adds"
    QCheck.small_int (fun seed ->
      let rng = Prng.Stream.root (seed + 409) in
      let m : int Dsim.Mailbox.t = Dsim.Mailbox.create () in
      let r : int Ref_mailbox.t = Ref_mailbox.create () in
      let next_id = ref 0 in
      let ok = ref true in
      let check b = if not b then ok := false in
      let meta first =
        ((first mod 5) + 1, first, first / 4)  (* depth, step, window *)
      in
      for op = 1 to 200 do
        (match Prng.Stream.int_below rng 10 with
        | 0 | 1 | 2 ->
            (* a broadcast: ids [first, first + count), dst = id - first *)
            let count = 1 + Prng.Stream.int_below rng 9 in
            let src = Prng.Stream.int_below rng 8 in
            let first = !next_id in
            next_id := first + count;
            let depth, sent_at_step, sent_in_window = meta first in
            Dsim.Mailbox.add_broadcast m ~first ~count ~src ~payload:(first * 17)
              ~depth ~sent_at_step ~sent_in_window;
            for dst = 0 to count - 1 do
              Ref_mailbox.add r
                {
                  Dsim.Envelope.id = first + dst;
                  src;
                  dst;
                  payload = first * 17;
                  depth;
                  sent_at_step;
                  sent_in_window;
                }
            done
        | 3 | 4 ->
            (* an interleaved unicast keeps both stores mixed *)
            let id = !next_id in
            incr next_id;
            let src = Prng.Stream.int_below rng 8 in
            let dst = Prng.Stream.int_below rng 10 in
            let depth, sent_at_step, sent_in_window = meta id in
            Dsim.Mailbox.add_unicast m ~id ~src ~dst ~payload:(id * 17) ~depth
              ~sent_at_step ~sent_in_window;
            Ref_mailbox.add r
              {
                Dsim.Envelope.id;
                src;
                dst;
                payload = id * 17;
                depth;
                sent_at_step;
                sent_in_window;
              }
        | 5 | 6 ->
            let id = Prng.Stream.int_below rng (!next_id + 4) in
            check (Dsim.Mailbox.take m id = Ref_mailbox.take r id)
        | 7 ->
            let id = Prng.Stream.int_below rng (!next_id + 4) in
            check (Dsim.Mailbox.find m id = Ref_mailbox.find r id);
            check
              (Dsim.Mailbox.mem m id = Option.is_some (Ref_mailbox.find r id))
        | 8 ->
            (* corrupt-split: on a broadcast member this carves the id
               out of the shared envelope into the arena *)
            let id = Prng.Stream.int_below rng (!next_id + 4) in
            let payload = Prng.Stream.int_below rng 1000 in
            check
              (Dsim.Mailbox.replace_payload m id payload
              = Ref_mailbox.replace_payload r id payload)
        | _ ->
            (* the engine's drop sweep: ascending ids over a range *)
            let from = Prng.Stream.int_below rng (!next_id + 1) in
            let til = from + Prng.Stream.int_below rng 24 in
            let swept = ref [] in
            Dsim.Mailbox.iter_ids_in_range m ~from ~til (fun id ->
                swept := id :: !swept);
            check
              (List.rev !swept
              = List.filter
                  (fun id -> id >= from && id < til)
                  (Ref_mailbox.pending_ids r)));
        if op mod 25 = 0 then check (mailbox_obs_equal m r)
      done;
      check (mailbox_obs_equal m r);
      (* deep copy: draining the copy (broadcasts included) leaves the
         original alone *)
      let mc = Dsim.Mailbox.copy m and rc = Ref_mailbox.copy r in
      check (mailbox_obs_equal mc rc);
      List.iter
        (fun id -> check (Dsim.Mailbox.take mc id = Ref_mailbox.take rc id))
        (Ref_mailbox.pending_ids rc);
      check (Dsim.Mailbox.is_empty mc);
      check (mailbox_obs_equal m r);
      !ok)

(* The engine's delivery pattern: taking the visited envelope while the
   per-dst iteration runs must still visit every envelope once. *)
let test_iter_for_take_during_iteration () =
  let m : int Dsim.Mailbox.t = Dsim.Mailbox.create () in
  List.iter
    (fun id ->
      Dsim.Mailbox.add m
        (envelope ~id ~src:(id mod 3) ~dst:(id mod 2) ~payload:id))
    [ 9; 3; 0; 4; 7; 12; 1 ];
  let visited = ref [] in
  Dsim.Mailbox.iter_for m ~dst:1 (fun e ->
      visited := e.Dsim.Envelope.id :: !visited;
      match Dsim.Mailbox.take m e.Dsim.Envelope.id with
      | Some _ -> ()
      | None -> Alcotest.fail "visited envelope vanished");
  Alcotest.(check (list int)) "all dst-1 envelopes, ascending" [ 1; 3; 7; 9 ]
    (List.rev !visited);
  Alcotest.(check (list int)) "dst-0 untouched" [ 0; 4; 12 ]
    (Dsim.Mailbox.pending_ids m)

(* ------------------------------------------------------------------ *)
(* Reference window semantics: the pre-rewrite list implementation.    *)

let ref_validate ~n ~t (w : Dsim.Window.t) =
  let in_range p = p >= 0 && p < n in
  let first_out_of_range ps = List.find_opt (fun p -> not (in_range p)) ps in
  let check_set i s =
    match first_out_of_range s with
    | Some p ->
        Error (Printf.sprintf "S_%d contains out-of-range pid %d (n = %d)" i p n)
    | None ->
    if List.length s < n - t then
      Error
        (Printf.sprintf "S_%d has %d senders; need >= n - t = %d" i
           (List.length s) (n - t))
    else Ok ()
  in
  if Array.length (Dsim.Window.to_lists w) <> n then
    Error
      (Printf.sprintf "window has %d receive sets; need %d"
         (Array.length (Dsim.Window.to_lists w))
         n)
  else if List.length (Dsim.Window.resets w) > t then
    Error
      (Printf.sprintf "window resets %d processors; at most t = %d allowed"
         (List.length (Dsim.Window.resets w))
         t)
  else
    match first_out_of_range (Dsim.Window.resets w) with
    | Some p ->
        Error
          (Printf.sprintf "reset set contains out-of-range pid %d (n = %d)" p n)
    | None ->
    let rec check i =
      if i >= n then Ok ()
      else
        match check_set i (Dsim.Window.to_lists w).(i) with
        | Error _ as e -> e
        | Ok () -> check (i + 1)
    in
    check 0

let ref_is_fault_free (w : Dsim.Window.t) ~n =
  List.length (Dsim.Window.resets w) = 0
  && Array.for_all (fun s -> List.length s = n) (Dsim.Window.to_lists w)

let validation_agrees a b =
  match (a, b) with
  | Ok (), Ok () -> true
  | Error x, Error y -> String.equal x y
  | Ok (), Error _ | Error _, Ok () -> false

let prop_window_differential =
  QCheck.Test.make ~count:300 ~name:"window ops match list reference"
    QCheck.small_int (fun seed ->
      let rng = Prng.Stream.root (seed + 977) in
      let n = 1 + Prng.Stream.int_below rng 9 in
      let t = Prng.Stream.int_below rng n in
      (* arity sometimes off by one, sets drawn from a pool that spills
         outside [0, n) on both sides, resets likewise *)
      let arity = max 1 (n - 1 + Prng.Stream.int_below rng 3) in
      let pool = List.init (n + 5) (fun i -> i - 2) in
      let receive_sets =
        Array.init arity (fun _ ->
            List.filter (fun _ -> Prng.Stream.bool rng) pool)
      in
      let resets =
        List.filter (fun _ -> Prng.Stream.bernoulli rng 0.25) pool
      in
      let w = Dsim.Window.make ~receive_sets ~resets in
      validation_agrees (ref_validate ~n ~t w) (Dsim.Window.validate ~n ~t w)
      && ref_is_fault_free w ~n = Dsim.Window.is_fault_free w ~n
      && List.for_all
           (fun dst ->
             let set = Dsim.Window.receive_set w dst in
             (* negative pids can sit in an (invalid) stored set but can
                never be senders: [allows] answers [false], exactly as
                the old delivery loop's flag array did *)
             List.for_all
               (fun src ->
                 Dsim.Window.allows w ~dst ~src
                 = (src >= 0 && List.mem src set))
               pool)
           (List.init arity (fun i -> i)))

let prop_bitset_reference =
  QCheck.Test.make ~count:300 ~name:"bitset matches list reference"
    QCheck.(pair (int_bound 80) (list_of_size Gen.(0 -- 40) (int_bound 100)))
    (fun (capacity, raw) ->
      let b = Dsim.Bitset.of_list ~capacity raw in
      let members =
        List.sort_uniq Int.compare
          (List.filter (fun i -> i >= 0 && i < capacity) raw)
      in
      Dsim.Bitset.to_list b = members
      && Dsim.Bitset.cardinal b = List.length members
      && List.for_all
           (fun i -> Dsim.Bitset.mem b i = List.mem i members)
           (List.init (capacity + 4) (fun i -> i - 2))
      && List.for_all
           (fun limit ->
             Dsim.Bitset.cardinal_below b limit
             = List.length (List.filter (fun i -> i < limit) members))
           (List.init (capacity + 2) (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Reference window application: the old list/map delivery algorithm,
   expressed through the public engine API (fresh ids recovered from
   the trace's send counter, which equals the engine's id source).     *)

let reference_apply_window config ?(drop_undelivered = true) window =
  let n = Dsim.Engine.n config in
  let trace = Dsim.Engine.trace config in
  let mailbox = Dsim.Engine.mailbox config in
  let fresh_from = Dsim.Trace.sent trace in
  for p = 0 to n - 1 do
    Dsim.Engine.apply config (Dsim.Step.Send p)
  done;
  let fresh_to = Dsim.Trace.sent trace in
  let is_fresh e =
    e.Dsim.Envelope.id >= fresh_from && e.Dsim.Envelope.id < fresh_to
  in
  let allowed =
    Array.init n (fun dst ->
        let flags = Array.make n false in
        List.iter
          (fun s -> if s >= 0 && s < n then flags.(s) <- true)
          (Dsim.Window.receive_set window dst);
        flags)
  in
  let per_dst = Array.make n [] in
  List.iter
    (fun e ->
      if is_fresh e then
        per_dst.(e.Dsim.Envelope.dst) <- e :: per_dst.(e.Dsim.Envelope.dst))
    (Dsim.Mailbox.pending mailbox);
  for dst = 0 to n - 1 do
    List.iter
      (fun e ->
        if allowed.(dst).(e.Dsim.Envelope.src) then
          Dsim.Engine.apply config (Dsim.Step.Deliver e.Dsim.Envelope.id))
      (List.rev per_dst.(dst))
  done;
  if drop_undelivered then
    List.iter
      (fun id -> Dsim.Engine.apply config (Dsim.Step.Drop id))
      (Dsim.Mailbox.filter_ids mailbox is_fresh);
  List.iter
    (fun p -> Dsim.Engine.apply config (Dsim.Step.Reset p))
    (Dsim.Window.resets window)

(* Everything observable except the window counter (the reference path
   cannot close windows through the public API, so [sent_in_window] and
   [window_index] are exempt). *)
let configs_agree fast slow =
  let strip e =
    ( e.Dsim.Envelope.id,
      e.Dsim.Envelope.src,
      e.Dsim.Envelope.dst,
      e.Dsim.Envelope.payload,
      e.Dsim.Envelope.depth,
      e.Dsim.Envelope.sent_at_step )
  in
  let pending c = List.map strip (Dsim.Mailbox.pending (Dsim.Engine.mailbox c)) in
  let counters c =
    let tr = Dsim.Engine.trace c in
    ( Dsim.Trace.sent tr,
      Dsim.Trace.delivered tr,
      Dsim.Trace.dropped tr,
      Dsim.Trace.resets tr,
      Dsim.Engine.step_index c )
  in
  String.equal (Dsim.Engine.fingerprint fast) (Dsim.Engine.fingerprint slow)
  && pending fast = pending slow
  && counters fast = counters slow

let prop_apply_window_differential =
  QCheck.Test.make ~count:60
    ~name:"apply_window matches reference list/map semantics over random \
           windows/resets/corrupt/drop" QCheck.small_int (fun seed ->
      let n = 7 and t = 2 in
      let protocol = Protocols.Ben_or.protocol () in
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let fast = Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed () in
      let slow = Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed () in
      let rng = Prng.Stream.root ((seed * 7919) + 13) in
      let pool = List.init (n + 3) (fun i -> i - 1) in
      let ok = ref true in
      for _w = 1 to 6 do
        let receive_sets =
          Array.init n (fun _ -> List.filter (fun _ -> Prng.Stream.bool rng) pool)
        in
        let resets =
          List.filter (fun _ -> Prng.Stream.bernoulli rng 0.2) [ 0; 1; 2 ]
        in
        let window = Dsim.Window.make ~receive_sets ~resets in
        let drop_undelivered = Prng.Stream.bool rng in
        Dsim.Engine.apply_window fast ~drop_undelivered window;
        reference_apply_window slow ~drop_undelivered window;
        (* poke a surviving stale message on both sides *)
        (match Dsim.Mailbox.pending_ids (Dsim.Engine.mailbox fast) with
        | [] -> ()
        | ids ->
            let id = List.nth ids (Prng.Stream.int_below rng (List.length ids)) in
            if Prng.Stream.bool rng then begin
              let payload =
                Protocols.Ben_or.Report
                  { round = 0; value = Prng.Stream.bool rng }
              in
              Dsim.Engine.apply fast (Dsim.Step.Corrupt (id, payload));
              Dsim.Engine.apply slow (Dsim.Step.Corrupt (id, payload))
            end
            else begin
              Dsim.Engine.apply fast (Dsim.Step.Drop id);
              Dsim.Engine.apply slow (Dsim.Step.Drop id)
            end);
        if not (configs_agree fast slow) then ok := false
      done;
      !ok)

(* The lazy-broadcast contract itself: a protocol whose [outgoing] is
   wrapped to eagerly expand every [Step.Broadcast] into n [Step.Unicast]
   values must produce a bit-identical execution — same id assignment
   (id = first + dst), same trace counters, same surviving envelopes —
   under random windows, resets, corruption and drops. *)
let eager_protocol protocol ~n =
  {
    protocol with
    Dsim.Protocol.outgoing =
      (fun s ->
        let s, sends = protocol.Dsim.Protocol.outgoing s in
        ( s,
          List.map
            (fun (dst, m) -> Dsim.Step.Unicast (dst, m))
            (Dsim.Step.expand ~n sends) ));
  }

let prop_lazy_vs_eager_broadcast =
  QCheck.Test.make ~count:40
    ~name:"lazy broadcast engine matches eagerly-expanded protocol"
    QCheck.small_int (fun seed ->
      let n = 7 and t = 2 in
      let protocol = Protocols.Ben_or.protocol () in
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let lazy_ = Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed () in
      let eager =
        Dsim.Engine.init
          ~protocol:(eager_protocol protocol ~n)
          ~n ~fault_bound:t ~inputs ~seed ()
      in
      let rng = Prng.Stream.root ((seed * 6007) + 29) in
      let pool = List.init (n + 3) (fun i -> i - 1) in
      let ok = ref true in
      for _w = 1 to 6 do
        let receive_sets =
          Array.init n (fun _ -> List.filter (fun _ -> Prng.Stream.bool rng) pool)
        in
        let resets =
          List.filter (fun _ -> Prng.Stream.bernoulli rng 0.2) [ 0; 1; 2 ]
        in
        let window = Dsim.Window.make ~receive_sets ~resets in
        let drop_undelivered = Prng.Stream.bool rng in
        Dsim.Engine.apply_window lazy_ ~drop_undelivered window;
        Dsim.Engine.apply_window eager ~drop_undelivered window;
        (* poke a surviving stale message on both sides: corruption
           splits a lazy broadcast member off its shared envelope *)
        (match Dsim.Mailbox.pending_ids (Dsim.Engine.mailbox lazy_) with
        | [] -> ()
        | ids ->
            let id = List.nth ids (Prng.Stream.int_below rng (List.length ids)) in
            if Prng.Stream.bool rng then begin
              let payload =
                Protocols.Ben_or.Report { round = 0; value = Prng.Stream.bool rng }
              in
              Dsim.Engine.apply lazy_ (Dsim.Step.Corrupt (id, payload));
              Dsim.Engine.apply eager (Dsim.Step.Corrupt (id, payload))
            end
            else begin
              Dsim.Engine.apply lazy_ (Dsim.Step.Drop id);
              Dsim.Engine.apply eager (Dsim.Step.Drop id)
            end);
        if not (configs_agree lazy_ eager) then ok := false
      done;
      !ok)

(* The batched applier: [apply_windows] fuses runs of consecutive
   uniform windows with physically-equal (or Bitset.equal) masks and no
   resets into one mailbox sweep with bulk trace accounting.  Against a
   mixed schedule — repeated shared windows, equal-but-distinct
   windows, silenced/reset/per-processor windows forcing mid-run
   fallback — it must match window-at-a-time application step for
   step. *)
let prop_batched_vs_unbatched =
  QCheck.Test.make ~count:50
    ~name:"apply_windows (fused uniform runs) matches window-at-a-time \
           application"
    QCheck.small_int (fun seed ->
      let n = 7 and t = 2 in
      let protocol = Protocols.Ben_or.protocol () in
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let batched = Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed () in
      let plain = Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed () in
      let rng = Prng.Stream.root ((seed * 4513) + 7) in
      let all_but i = List.filter (fun p -> p <> i) (List.init n (fun p -> p)) in
      let pool =
        [|
          Dsim.Window.uniform ~n ();
          (* equal mask, different object: exercises the Bitset.equal
             extension of a fused run *)
          Dsim.Window.uniform ~n ();
          Dsim.Window.uniform ~n ~silenced:[ 0 ] ();
          Dsim.Window.uniform ~n ~resets:[ 1 ] ();
          Dsim.Window.make ~receive_sets:(Array.init n all_but) ~resets:[];
        |]
      in
      let windows =
        List.init
          (3 + Prng.Stream.int_below rng 8)
          (fun _ -> pool.(Prng.Stream.int_below rng (Array.length pool)))
      in
      let drop_undelivered = Prng.Stream.bool rng in
      Dsim.Engine.apply_windows batched ~drop_undelivered windows;
      List.iter
        (fun w -> Dsim.Engine.apply_window plain ~drop_undelivered w)
        windows;
      configs_agree batched plain
      && Dsim.Engine.window_index batched = Dsim.Engine.window_index plain
      && Dsim.Trace.windows_closed (Dsim.Engine.trace batched)
         = Dsim.Trace.windows_closed (Dsim.Engine.trace plain))

(* The trace-sink contract: for one schedule, the incremental
   fingerprint is identical across the in-memory, ring and chunk-
   streamed stores, and the streamed text is byte-for-byte the
   rendering of the in-memory event list. *)
let prop_streamed_sink_fingerprint =
  QCheck.Test.make ~count:30
    ~name:"ring/streamed trace sinks keep the in-memory events fingerprint"
    QCheck.small_int (fun seed ->
      let n = 7 and t = 2 in
      let protocol = Protocols.Ben_or.protocol () in
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let init sink =
        Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed
          ~record_events:true ?sink ()
      in
      let mem = init None in
      let ring = init (Some (Dsim.Trace.Ring 16)) in
      let buf = Buffer.create 256 in
      let stream = init (Some (Dsim.Trace.to_buffer ~chunk_bytes:128 buf)) in
      let rng = Prng.Stream.root ((seed * 9173) + 3) in
      let pool = List.init (n + 1) (fun i -> i - 1) in
      let ok = ref true in
      for _w = 1 to 5 do
        let receive_sets =
          Array.init n (fun _ -> List.filter (fun _ -> Prng.Stream.bool rng) pool)
        in
        let resets =
          List.filter (fun _ -> Prng.Stream.bernoulli rng 0.2) [ 0; 1 ]
        in
        let window = Dsim.Window.make ~receive_sets ~resets in
        Dsim.Engine.apply_window mem window;
        Dsim.Engine.apply_window ring window;
        Dsim.Engine.apply_window stream window;
        let fp c = Dsim.Trace.events_fingerprint (Dsim.Engine.trace c) in
        if not (String.equal (fp mem) (fp ring) && String.equal (fp mem) (fp stream))
        then ok := false
      done;
      Dsim.Trace.flush (Dsim.Engine.trace stream);
      let rendered =
        String.concat ""
          (List.map
             (fun ev -> Format.asprintf "%a\n" Dsim.Trace.pp_event ev)
             (Dsim.Trace.events (Dsim.Engine.trace mem)))
      in
      !ok && String.equal rendered (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* The recent-deliveries gate: off by default, free of side effects.   *)

let test_delivery_tracking_gate () =
  let protocol = Protocols.Ben_or.protocol () in
  let run ~track_deliveries =
    let config =
      Dsim.Engine.init ~protocol ~n:5 ~fault_bound:1
        ~inputs:[| true; false; true; false; true |] ~seed:3 ~track_deliveries
        ()
    in
    for _ = 1 to 3 do
      Dsim.Engine.apply_window config (Dsim.Window.uniform ~n:5 ())
    done;
    config
  in
  let off = run ~track_deliveries:false in
  let on = run ~track_deliveries:true in
  Alcotest.(check bool) "gate off by default" false
    (Dsim.Engine.deliveries_tracked off);
  Alcotest.(check bool) "gate on when asked" true
    (Dsim.Engine.deliveries_tracked on);
  for p = 0 to 4 do
    Alcotest.(check (list string))
      (Printf.sprintf "untracked log empty for p%d" p)
      []
      (Dsim.Engine.recent_deliveries off p)
  done;
  Alcotest.(check bool) "tracked log non-empty" true
    (List.exists
       (fun p -> not (List.is_empty (Dsim.Engine.recent_deliveries on p)))
       [ 0; 1; 2; 3; 4 ]);
  Alcotest.(check string) "tracking does not perturb the execution"
    (Dsim.Engine.fingerprint off) (Dsim.Engine.fingerprint on)

(* ------------------------------------------------------------------ *)
(* Pinned executions: fingerprint digests, step and window counts
   captured from the pre-rewrite kernel (commit 5dba038).  Any drift
   here means the rewrite changed semantics, not just speed.           *)

let split_inputs ~n seed = Array.init n (fun i -> (i + seed) mod 2 = 0)

let windowed_pin ?record_events ?sink ~protocol ~n ~t ~seed ~max_windows strategy
    =
  let config =
    Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs:(split_inputs ~n seed)
      ~seed ?record_events ?sink ()
  in
  let outcome =
    Dsim.Runner.run_windows config ~strategy ~max_windows ~stop:`First_decision
  in
  ( outcome.Dsim.Runner.steps,
    outcome.Dsim.Runner.windows,
    Digest.to_hex (Digest.string (Dsim.Engine.fingerprint config)),
    Dsim.Engine.fingerprint config )

let stepwise_pin ~protocol ~n ~t ~seed ~max_steps strategy =
  let config =
    Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs:(split_inputs ~n seed)
      ~seed ()
  in
  let outcome =
    Dsim.Runner.run_steps config ~strategy ~max_steps ~stop:`First_decision
  in
  ( outcome.Dsim.Runner.steps,
    Digest.to_hex (Digest.string (Dsim.Engine.fingerprint config)) )

let check_pin name (exp_steps, exp_windows, exp_md5) (steps, windows, md5, _fp) =
  Alcotest.(check int) (name ^ " steps") exp_steps steps;
  Alcotest.(check int) (name ^ " windows") exp_windows windows;
  Alcotest.(check string) (name ^ " fingerprint md5") exp_md5 md5

let test_pinned_lewko_split_vote () =
  let run seed =
    windowed_pin
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~n:9 ~t:1 ~seed ~max_windows:2000
      (Adversary.Split_vote.windowed ())
  in
  let ((_, _, _, fp1) as r1) = run 1 in
  check_pin "lewko seed=1" (450, 5, "0ff7b8555219fa9e9e1dbcd93ba6ca5b") r1;
  Alcotest.(check string) "lewko seed=1 raw fingerprint"
    "lv:0:N:0:6:0:0:0::9|lv:1:N:0:6:0:1:0::9|lv:2:N:0:6:0:0:0::9|lv:3:N:0:6:0:1:0::9|lv:4:N:0:6:0:0:0::9|lv:5:N:0:6:0:1:0::9|lv:6:N:0:6:0:0:0::9|lv:7:N:0:6:0:1:0::9|lv:8:N:0:6:0:0:0::9"
    fp1;
  check_pin "lewko seed=2" (1980, 22, "9b928a6b26ce634a2950ac670f22d883") (run 2);
  check_pin "lewko seed=3" (720, 8, "b1e335793b1f6e7ae163e0dc4b955a2b") (run 3)

(* The pinned lewko execution again, but audited through the streamed
   trace sink: recording every event into a chunk-flushed buffer must
   not perturb the execution (same step/window counts, same engine
   fingerprint), and the streamed text must carry the run (non-empty,
   one line per recorded event). *)
let test_pinned_streamed_sink () =
  let buf = Buffer.create 4096 in
  let ((_, _, _, _) as r) =
    windowed_pin ~record_events:true
      ~sink:(Dsim.Trace.to_buffer ~chunk_bytes:512 buf)
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~n:9 ~t:1 ~seed:1 ~max_windows:2000
      (Adversary.Split_vote.windowed ())
  in
  check_pin "lewko seed=1 via streamed sink"
    (450, 5, "0ff7b8555219fa9e9e1dbcd93ba6ca5b")
    r;
  (* The final partial chunk is still in scratch until flushed; the
     earlier chunks must already have streamed out. *)
  Alcotest.(check bool) "chunked flush streamed event text" true
    (Buffer.length buf > 0);
  Alcotest.(check bool) "streamed lines are pp_event renderings" true
    (String.length (Buffer.contents buf) > 0
    && String.split_on_char '\n' (Buffer.contents buf)
       |> List.for_all (fun line ->
              String.equal line ""
              || List.exists
                   (fun prefix -> String.starts_with ~prefix line)
                   [ "sent #"; "delivered #"; "dropped #"; "reset p";
                     "crashed p"; "decided p"; "window " ]))

let test_pinned_benor_reset_storm () =
  let run seed =
    windowed_pin
      ~protocol:(Protocols.Ben_or.protocol ())
      ~n:7 ~t:2 ~seed ~max_windows:2000
      (Adversary.Reset_storm.rotating ())
  in
  check_pin "benor storm seed=1" (60070, 2000, "fc1ddecdcdcbf7b996161e1fba1bcdbe") (run 1);
  check_pin "benor storm seed=2" (60070, 2000, "b1d9ff888b1a89f423401cb0b23fb3dc") (run 2)

let test_pinned_stepwise () =
  let benor seed =
    stepwise_pin
      ~protocol:(Protocols.Ben_or.protocol ())
      ~n:7 ~t:2 ~seed ~max_steps:5000
      (Adversary.Split_vote.stepwise ())
  in
  Alcotest.(check (pair int string))
    "benor stepwise seed=1"
    (462, "5a87d645a4a6ee4f7b2fe7019069c4d5")
    (benor 1);
  Alcotest.(check (pair int string))
    "benor stepwise seed=2"
    (2604, "f7491ac1587b2302dc6f5a097b19aa7e")
    (benor 2);
  Alcotest.(check (pair int string))
    "bracha echo-chamber seed=1"
    (3851, "55bf63ad6ed76894278a25645780df68")
    (stepwise_pin
       ~protocol:(Protocols.Bracha.protocol ())
       ~n:7 ~t:2 ~seed:1 ~max_steps:5000
       (Adversary.Echo_chamber.stepwise ()))

(* The E2-style ensemble sweep, pinned and compared across job counts:
   "byte-identical to seed at -j 1 and -j 2", rendered and structural. *)
let test_pinned_sweep_j1_j2 () =
  let spec =
    {
      Agreement.Ensemble.n = 9;
      t = 1;
      inputs = Agreement.Ensemble.split_inputs ~n:9;
      max_windows = 2_000;
      max_steps = 0;
      stop = `First_decision;
    }
  in
  let seeds = List.init 16 (fun i -> i + 1) in
  let sweep ~jobs =
    Agreement.Ensemble.run_windowed ~jobs
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Split_vote.windowed ())
      ~spec ~seeds ()
  in
  let expected =
    String.concat "\n"
      [
        "runs: 16";
        "terminated: 16";
        "agreement rate: 1.000";
        "validity rate: 1.000";
        "decisions: 5 zero / 11 one";
        "windows: n=16 mean=15.44 sd=9.373 min=2 max=35";
        "steps: n=16 mean=1389 sd=843.6 min=180 max=3150";
        "chain depth: n=16 mean=15.44 sd=9.373 min=2 max=35";
        "total resets: n=16 mean=0 sd=0 min=0 max=0";
        "lint violations: 0";
      ]
  in
  let r1 = sweep ~jobs:1 and r2 = sweep ~jobs:2 in
  Alcotest.(check string) "sweep -j1 matches pre-rewrite pin" expected
    (Format.asprintf "%a" Agreement.Ensemble.pp_result r1);
  Alcotest.(check string) "sweep -j2 matches pre-rewrite pin" expected
    (Format.asprintf "%a" Agreement.Ensemble.pp_result r2);
  Alcotest.(check bool) "sweep -j1 = -j2 structurally" true
    (Agreement.Ensemble.equal_result r1 r2)

let suite =
  List.map to_alcotest
    [
      prop_mailbox_differential;
      prop_broadcast_mailbox_differential;
      prop_window_differential;
      prop_bitset_reference;
      prop_apply_window_differential;
      prop_lazy_vs_eager_broadcast;
      prop_batched_vs_unbatched;
      prop_streamed_sink_fingerprint;
    ]
  @ [
      Alcotest.test_case "pinned: lewko via streamed trace sink" `Quick
        test_pinned_streamed_sink;
      Alcotest.test_case "iter_for allows taking the visited envelope" `Quick
        test_iter_for_take_during_iteration;
      Alcotest.test_case "recent-deliveries gate" `Quick
        test_delivery_tracking_gate;
      Alcotest.test_case "pinned: lewko vs split-vote" `Quick
        test_pinned_lewko_split_vote;
      Alcotest.test_case "pinned: ben-or vs reset storm" `Slow
        test_pinned_benor_reset_storm;
      Alcotest.test_case "pinned: stepwise adversaries" `Quick
        test_pinned_stepwise;
      Alcotest.test_case "pinned: ensemble sweep -j1/-j2" `Slow
        test_pinned_sweep_j1_j2;
    ]
