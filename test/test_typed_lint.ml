(* Layer 2 of the determinism lint: the cmt-based typed analyzer.
   Fixtures are self-contained sources typechecked in memory (they
   declare their own Stream/Protocol modules and message types), plus a
   run over the real tree's cmts, SARIF shape checks and the baseline
   round-trip. *)

open Lintkit

let typed_diags ?config ~path source =
  match Typed_lint.check_source ?config ~path source with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "fixture failed to typecheck: %s" e

let rules_of ds = List.map (fun d -> Rules.id d.Static_lint.rule) ds

let check_rules what expected ds =
  Alcotest.(check (list string)) what expected (rules_of ds)

let contains haystack needle =
  Option.is_some (Static_lint.find_substring haystack needle 0)

(* ------------------------------------------------------------------ *)
(* R7: polymorphic compare / hash at non-immediate types.              *)

let test_r7_non_immediate () =
  check_rules "list equality flagged" [ "R7" ]
    (typed_diags ~path:"lib/dsim/fx.ml"
       "let f (a : int list) b = a = b");
  check_rules "tuple compare flagged" [ "R7" ]
    (typed_diags ~path:"lib/protocols/fx.ml"
       "let sort (xs : (int * bool) list) = List.sort compare xs");
  check_rules "string <> flagged" [ "R7" ]
    (typed_diags ~path:"lib/adversary/fx.ml"
       "let ne (a : string) b = a <> b");
  check_rules "Hashtbl.hash always flagged" [ "R7" ]
    (typed_diags ~path:"lib/dsim/fx.ml" "let h (x : int) = Hashtbl.hash x")

let test_r7_immediate_clean () =
  check_rules "int compare is fine" []
    (typed_diags ~path:"lib/dsim/fx.ml" "let c (a : int) b = compare a b");
  check_rules "bool equality is fine" []
    (typed_diags ~path:"lib/dsim/fx.ml" "let e (a : bool) b = a = b");
  check_rules "char equality is fine" []
    (typed_diags ~path:"lib/dsim/fx.ml" "let e (a : char) b = a <> b");
  check_rules "named comparators are fine" []
    (typed_diags ~path:"lib/dsim/fx.ml"
       "let s (xs : string list) = List.sort String.compare xs")

(* The typed view catches what syntax cannot: the operator hidden
   behind a let-binding (still the polymorphic [=], still dangerous). *)
let test_r7_aliased_operator () =
  check_rules "aliased = flagged" [ "R7" ]
    (typed_diags ~path:"lib/dsim/fx.ml"
       "let eq = ( = )\nlet test (a : int list) b = eq a b");
  (* The syntactic R3 can only see literal [compare]/[=] applications;
     this alias is invisible to it. *)
  (match Static_lint.lint_source ~path:"lib/dsim/fx.ml"
           "let eq = ( = )\nlet test (a : int list) b = eq a b"
   with
  | Ok ds -> check_rules "invisible to the syntactic layer" [] ds
  | Error e -> Alcotest.failf "parse error: %s" e)

let test_r7_scope () =
  let src = "let z (x : float) = x = 0.0" in
  check_rules "lib/stats out of default R7 scope" []
    (typed_diags ~path:"lib/stats/fx.ml" src);
  let config =
    { Typed_lint.default_config with
      r7_subs = "stats" :: "lowerbound" :: Typed_lint.default_config.r7_subs }
  in
  check_rules "widened scope covers stats" [ "R7" ]
    (typed_diags ~config ~path:"lib/stats/fx.ml" src)

(* Every hazard class the syntactic R3/R4 fixtures pin is also caught
   by R7 when the instantiation is genuinely non-immediate (R7 is the
   more precise rule: it additionally *accepts* compare on ints, which
   R3 must flag blindly). *)
let test_r7_subsumes_syntactic_fixtures () =
  check_rules "R3 fixture: compare on non-immediate fields" [ "R7" ]
    (typed_diags ~path:"lib/dsim/fx.ml"
       "type r = { round : int list }\n\
        let sort l = List.sort (fun a b -> compare a.round b.round) l");
  check_rules "R3 fixture: equality against Some payload" [ "R7" ]
    (typed_diags ~path:"lib/protocols/fx.ml"
       "let f (x : bool option) = x = Some true");
  check_rules "R3 fixture: record literal equality" [ "R7" ]
    (typed_diags ~path:"lib/dsim/fx.ml"
       "type r = { id : int }\nlet f (x : r) = x = { id = 1 }");
  let r4_config =
    { Typed_lint.default_config with
      r7_subs = "stats" :: "lowerbound" :: Typed_lint.default_config.r7_subs }
  in
  check_rules "R4 fixture: float-literal equality" [ "R7" ]
    (typed_diags ~config:r4_config ~path:"lib/stats/fx.ml"
       "let zero (x : float) = x = 0.0");
  check_rules "R4 fixture: float <>" [ "R7" ]
    (typed_diags ~config:r4_config ~path:"lib/lowerbound/fx.ml"
       "let f (x : float) = x <> 1.5");
  check_rules "R4 negative: Float.equal stays fine" []
    (typed_diags ~config:r4_config ~path:"lib/stats/fx.ml"
       "let zero (x : float) = Float.equal x 0.0")

(* ------------------------------------------------------------------ *)
(* R8: protocol transition purity.                                     *)

let protocol_prelude =
  "module Protocol = struct\n\
  \  type t = { name : string; init : int -> int; pp_message : int -> unit }\n\
   end\n"

let test_r8_effectful_transition () =
  check_rules "direct print in a transition" [ "R8" ]
    (typed_diags ~path:"lib/protocols/fx.ml"
       (protocol_prelude
      ^ "let noisy n = print_int n; n\n\
         let p = { Protocol.name = \"fx\"; init = noisy; pp_message = ignore }"));
  let interproc =
    protocol_prelude
    ^ "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
       let remember x = Hashtbl.replace table x x; x\n\
       let transition s = remember s\n\
       let p = { Protocol.name = \"fx\"; init = transition; pp_message = ignore }"
  in
  (match typed_diags ~path:"lib/protocols/fx.ml" interproc with
  | [ d ] ->
      Alcotest.(check string) "rule" "R8" (Rules.id d.Static_lint.rule);
      Alcotest.(check bool) "mutation named" true
        (contains d.Static_lint.message "Hashtbl.replace");
      Alcotest.(check bool) "call chain reported" true
        (contains d.Static_lint.message "via Fx.transition -> Fx.remember");
      Alcotest.(check bool) "protocol named" true
        (contains d.Static_lint.message "\"fx\"")
  | ds -> Alcotest.failf "expected 1 diagnostic, got [%s]"
            (String.concat "; " (rules_of ds)));
  check_rules "failwith in a transition" [ "R8" ]
    (typed_diags ~path:"lib/protocols/fx.ml"
       (protocol_prelude
      ^ "let bad n = if n < 0 then failwith \"neg\" else n\n\
         let p = { Protocol.name = \"fx\"; init = bad; pp_message = ignore }"))

let test_r8_clean () =
  check_rules "locally-allocated mutation is pure" []
    (typed_diags ~path:"lib/protocols/fx.ml"
       (protocol_prelude
      ^ "let count n =\n\
        \  let t = Hashtbl.create 8 in\n\
        \  for i = 0 to n do Hashtbl.replace t i i done;\n\
        \  Hashtbl.length t\n\
         let p = { Protocol.name = \"fx\"; init = count; pp_message = ignore }"));
  check_rules "allowlisted raises are guard rails, not effects" []
    (typed_diags ~path:"lib/protocols/fx.ml"
       (protocol_prelude
      ^ "let guarded n = if n < 0 then invalid_arg \"neg\" else (assert (n >= 0); n)\n\
         let p = { Protocol.name = \"fx\"; init = guarded; pp_message = ignore }"));
  check_rules "pretty-printer fields are exempt" []
    (typed_diags ~path:"lib/protocols/fx.ml"
       (protocol_prelude
      ^ "let show n = print_int n\n\
         let p = { Protocol.name = \"fx\"; init = (fun n -> n); pp_message = show }"))

(* ------------------------------------------------------------------ *)
(* R9: stream role linearity.                                          *)

let stream_prelude =
  "module Stream = struct\n\
  \  type t = T\n\
  \  let derive t _i = ignore t; T\n\
  \  let copy t = ignore t; T\n\
  \  let bits t = ignore t; 7\n\
   end\n"

let test_r9_both_roles () =
  check_rules "derive + draw on one stream" [ "R9" ]
    (typed_diags ~path:"lib/dsim/fx.ml"
       (stream_prelude ^ "let bad rng = Stream.derive rng (Stream.bits rng)"));
  check_rules "alias does not hide the draw" [ "R9" ]
    (typed_diags ~path:"lib/dsim/fx.ml"
       (stream_prelude
      ^ "let bad rng =\n\
        \  let r2 = rng in\n\
        \  Stream.derive rng (Stream.bits r2)"))

let test_r9_clean () =
  check_rules "explicit draw fork is the sanctioned idiom" []
    (typed_diags ~path:"lib/dsim/fx.ml"
       (stream_prelude
      ^ "let good rng =\n\
        \  let draw = Stream.copy rng in\n\
        \  Stream.derive rng (Stream.bits draw)"));
  check_rules "derive-only fan-out is fine" []
    (typed_diags ~path:"lib/dsim/fx.ml"
       (stream_prelude
      ^ "let fan rng = (Stream.derive rng 0, Stream.derive rng 1)"));
  check_rules "R9 does not apply inside lib/prng" []
    (typed_diags ~path:"lib/prng/fx.ml"
       (stream_prelude ^ "let bad rng = Stream.derive rng (Stream.bits rng)"))

(* ------------------------------------------------------------------ *)
(* R10: no catch-all over message types.                               *)

let test_r10_catch_all () =
  check_rules "wildcard in a message match" [ "R10" ]
    (typed_diags ~path:"lib/protocols/fx.ml"
       "type message = Ping of int | Pong of int\n\
        let handle (m : message) = match m with Ping n -> n | _ -> 0");
  check_rules "function-sugar dispatch too" [ "R10" ]
    (typed_diags ~path:"lib/protocols/fx.ml"
       "type vote = Val of bool | Dec of bool\n\
        let bit = function Val b -> b | _ -> false");
  check_rules "suffixed type names count" [ "R10" ]
    (typed_diags ~path:"lib/adversary/fx.ml"
       "type coin_msg = Flip | Reveal of bool\n\
        let f (m : coin_msg) = match m with Flip -> 0 | _ -> 1")

let test_r10_clean () =
  check_rules "exhaustive match is the fix" []
    (typed_diags ~path:"lib/protocols/fx.ml"
       "type message = Ping of int | Pong of int\n\
        let handle (m : message) = match m with Ping n -> n | Pong n -> n");
  check_rules "catch-all over non-message types is fine" []
    (typed_diags ~path:"lib/protocols/fx.ml"
       "let f (o : bool option) = match o with Some true -> 1 | _ -> 0");
  check_rules "guarded wildcards are deliberate filters" []
    (typed_diags ~path:"lib/protocols/fx.ml"
       "type message = Ping of int | Pong of int\n\
        let f (m : message) even =\n\
        \  match m with Ping n -> n | m when even (match m with Ping k | Pong k -> k) -> 1 | Pong _ -> 2")

(* ------------------------------------------------------------------ *)
(* Shared machinery: suppressions, the real tree, SARIF, baselines.    *)

let test_typed_suppression () =
  check_rules "same-line suppression" []
    (typed_diags ~path:"lib/dsim/fx.ml"
       "let f (a : int list) b = a = b (* lint: allow R7 *)");
  check_rules "previous-line suppression" []
    (typed_diags ~path:"lib/dsim/fx.ml"
       "(* lint: allow R7 *)\nlet f (a : int list) b = a = b");
  check_rules "wrong rule does not suppress" [ "R7" ]
    (typed_diags ~path:"lib/dsim/fx.ml"
       "let f (a : int list) b = a = b (* lint: allow R3 *)")

let find_root () =
  let looks_like_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
  in
  let rec find dir depth =
    if looks_like_root dir then Some dir
    else if depth = 0 then None
    else find (Filename.concat dir Filename.parent_dir_name) (depth - 1)
  in
  find Filename.current_dir_name 5

(* The repo's own typed layer must be clean: the same invocation the
   @lint-typed alias runs, as a tier-1 test. *)
let test_repo_is_typed_clean () =
  match find_root () with
  | None -> Alcotest.fail "could not locate the project root"
  | Some root ->
      let report = Driver.scan_typed ~root () in
      List.iter
        (fun d ->
          Printf.eprintf "unexpected: %s:%d [%s] %s\n" d.Static_lint.path
            d.Static_lint.line (Rules.id d.Static_lint.rule)
            d.Static_lint.message)
        report.Driver.diagnostics;
      Alcotest.(check int) "no violations" 0
        (List.length report.Driver.diagnostics);
      Alcotest.(check (list string)) "no errors" [] report.Driver.errors;
      Alcotest.(check bool) "loaded a plausible number of units" true
        (report.Driver.files_scanned > 30)

let test_unbuilt_tree_errors () =
  let report = Driver.scan_typed ~root:"/nonexistent-root" () in
  Alcotest.(check int) "no units" 0 report.Driver.files_scanned;
  match report.Driver.errors with
  | [ e ] ->
      Alcotest.(check bool) "tells the user to build" true
        (contains e "dune build")
  | es -> Alcotest.failf "expected 1 error, got %d" (List.length es)

let sample_report =
  {
    Driver.diagnostics =
      [
        {
          Static_lint.path = "lib/dsim/engine.ml";
          line = 3;
          col = 4;
          rule = Rules.R7;
          message = "polymorphic `=` at type `bool \"option\"`";
        };
      ];
    errors = [ "boom \"quoted\"" ];
    files_scanned = 1;
  }

let test_sarif_shape () =
  let sarif = Format.asprintf "%a" Driver.render_sarif sample_report in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" fragment) true
        (contains sarif fragment))
    [
      {|"$schema":"https://json.schemastore.org/sarif-2.1.0.json"|};
      {|"version":"2.1.0"|};
      {|"name":"dsim-lint"|};
      {|"id":"R1"|};
      {|"id":"R10"|};
      {|"ruleId":"R7"|};
      {|"uri":"lib/dsim/engine.ml"|};
      {|"startLine":3|};
      {|"startColumn":5|};
      (* 0-based col 4 -> 1-based 5 *)
      {|"executionSuccessful":false|};
      {|boom \"quoted\"|};
      {|bool \"option\"|};
    ];
  (* And a clean report claims success with no results. *)
  let clean =
    Format.asprintf "%a" Driver.render_sarif
      { Driver.diagnostics = []; errors = []; files_scanned = 70 }
  in
  Alcotest.(check bool) "clean run succeeds" true
    (contains clean {|"executionSuccessful":true|});
  Alcotest.(check bool) "no results" true (contains clean {|"results":[]|})

let test_baseline_round_trip () =
  let file = Filename.temp_file "lint_baseline" ".tsv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let rendered = Format.asprintf "%a" Driver.render_baseline sample_report in
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc rendered);
      match Driver.read_baseline file with
      | Error e -> Alcotest.failf "read_baseline: %s" e
      | Ok entries ->
          Alcotest.(check int) "one entry" 1 (List.length entries);
          let filtered, waived = Driver.apply_baseline entries sample_report in
          Alcotest.(check int) "finding waived" 1 waived;
          Alcotest.(check int) "report emptied" 0
            (List.length filtered.Driver.diagnostics);
          (* A different finding is not waived. *)
          let other =
            { sample_report with
              Driver.diagnostics =
                [
                  { Static_lint.path = "lib/dsim/other.ml"; line = 1; col = 0;
                    rule = Rules.R7; message = "different" };
                ] }
          in
          let kept, waived = Driver.apply_baseline entries other in
          Alcotest.(check int) "nothing waived" 0 waived;
          Alcotest.(check int) "finding kept" 1
            (List.length kept.Driver.diagnostics))

let test_baseline_malformed () =
  let file = Filename.temp_file "lint_baseline" ".tsv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc "# comment is fine\nR7 no tabs here\n");
      match Driver.read_baseline file with
      | Error e ->
          Alcotest.(check bool) "names the line" true (contains e ":2:")
      | Ok _ -> Alcotest.fail "expected a malformed-line error")

let suite =
  [
    Alcotest.test_case "r7 non-immediate" `Quick test_r7_non_immediate;
    Alcotest.test_case "r7 immediate clean" `Quick test_r7_immediate_clean;
    Alcotest.test_case "r7 aliased operator" `Quick test_r7_aliased_operator;
    Alcotest.test_case "r7 scope" `Quick test_r7_scope;
    Alcotest.test_case "r7 subsumes syntactic fixtures" `Quick
      test_r7_subsumes_syntactic_fixtures;
    Alcotest.test_case "r8 effectful transitions" `Quick
      test_r8_effectful_transition;
    Alcotest.test_case "r8 clean" `Quick test_r8_clean;
    Alcotest.test_case "r9 both roles" `Quick test_r9_both_roles;
    Alcotest.test_case "r9 clean" `Quick test_r9_clean;
    Alcotest.test_case "r10 catch-all" `Quick test_r10_catch_all;
    Alcotest.test_case "r10 clean" `Quick test_r10_clean;
    Alcotest.test_case "typed suppression" `Quick test_typed_suppression;
    Alcotest.test_case "repo is typed-clean" `Quick test_repo_is_typed_clean;
    Alcotest.test_case "unbuilt tree errors" `Quick test_unbuilt_tree_errors;
    Alcotest.test_case "sarif shape" `Quick test_sarif_shape;
    Alcotest.test_case "baseline round trip" `Quick test_baseline_round_trip;
    Alcotest.test_case "baseline malformed" `Quick test_baseline_malformed;
  ]
