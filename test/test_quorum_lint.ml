(* Layer 5 of the determinism lint: the symbolic quorum-safety
   analyzer (R15-R18).  Fixture twins per rule (flagged / clean)
   typechecked in memory; agreement of the symbolic region with
   [Thresholds.feasible] at the t = n/6 boundary; a run over the real
   tree that must flag exactly the three !quorum registry mutants (each
   by R16, R17 and R18) and nothing else; the extraction view of every
   family's thresholds; and the static/dynamic cross-check — each
   statically flagged mutant replays its pinned mcheck counterexample
   to a real agreement violation, and the sound protocol survives the
   identical schedule. *)

open Lintkit

let rules_of ds = List.map (fun d -> Rules.id d.Static_lint.rule) ds

let check_rules what expected ds =
  Alcotest.(check (list string)) what expected (rules_of ds)

let quorum_diags ~path source =
  match Quorum_lint.check_source ~path source with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "fixture failed to typecheck: %s" e

let messages ds = String.concat "\n" (List.map (fun d -> d.Static_lint.message) ds)

let contains haystack needle =
  Option.is_some (Static_lint.find_substring haystack needle 0)

(* ------------------------------------------------------------------ *)
(* R15: hot recursion under R11's per-site radar.                      *)

let r15_fixture ~suppressed =
  Printf.sprintf
    {|module Protocol = struct
  type t = { on_deliver : int list -> int }
end

%slet rec drain = function [] -> 0 | _ :: rest -> 1 + drain rest
let _p = { Protocol.on_deliver = drain }
|}
    (if suppressed then "(* lint: allow R15 *)\n" else "")

let test_r15_hot_recursion () =
  let ds =
    quorum_diags ~path:"lib/protocols/fx.ml" (r15_fixture ~suppressed:false)
  in
  check_rules "hot recursion with O(1) sites flagged" [ "R15" ] ds;
  Alcotest.(check bool)
    "message explains the R11 blind spot" true
    (contains (messages ds) "R11 stays silent")

let test_r15_clean_twins () =
  check_rules "inline suppression honoured" []
    (quorum_diags ~path:"lib/protocols/fx.ml" (r15_fixture ~suppressed:true));
  (* The same recursion off the hot path is not a finding. *)
  check_rules "cold recursion is fine" []
    (quorum_diags ~path:"lib/protocols/fx.ml"
       "let rec drain = function [] -> 0 | _ :: rest -> 1 + drain rest\n\
        let _use = drain");
  (* A hot recursive function whose body already exceeds the threshold
     is R11's finding, not R15's. *)
  let ds =
    quorum_diags ~path:"lib/protocols/fx.ml"
      "module Protocol = struct\n\
      \  type t = { on_deliver : int list -> int }\n\
       end\n\n\
       let rec drain xs =\n\
      \  match xs with [] -> 0 | _ :: rest -> List.length xs + drain rest\n\
       let _p = { Protocol.on_deliver = drain }"
  in
  Alcotest.(check bool)
    "no R15 when a site already exceeds the threshold" true
    (not (List.mem "R15" (rules_of ds)))

(* ------------------------------------------------------------------ *)
(* R16/R17 fixtures: a minimal Ben-Or-shaped module (the path makes
   bare [protocol] applications Ben-Or construction sites), one sound
   and one with the decide quorum lowered to 1.                        *)

let ben_or_fixture ?(default = "t + 1") ~site () =
  Printf.sprintf
    {|type state = { n : int; fault_bound : int; decide_at : int }
type props = { byzantine_resilience : int -> int }
type t = { init : n:int -> t:int -> state; props : props }

let wait_quorum state = state.n - state.fault_bound

let fresh ?decide_at ~n ~t () =
  {
    n;
    fault_bound = t;
    decide_at = (match decide_at with None -> %s | Some d -> d);
  }

let finish_propose_phase state tally =
  ignore (wait_quorum state);
  if tally >= state.decide_at then Some true else None

let protocol ?decide_quorum () =
  {
    init =
      (fun ~n ~t ->
        let decide_at = Option.map (fun f -> f ~n ~t) decide_quorum in
        fresh ?decide_at ~n ~t ());
    props = { byzantine_resilience = (fun n -> (n - 1) / 5) };
  }

%s
|}
    default site

let test_r16_r17_mutant_site () =
  let ds =
    quorum_diags ~path:"lib/protocols/ben_or.ml"
      (ben_or_fixture
         ~site:"let _mutant = protocol ~decide_quorum:(fun ~n:_ ~t:_ -> 1) ()"
         ())
  in
  check_rules "decide quorum of 1 breaks intersection and the decide gate"
    [ "R16"; "R17" ] ds;
  Alcotest.(check bool)
    "R16 names the failed obligation" true
    (contains (messages ds) "decide quorum above the fault bound");
  Alcotest.(check bool)
    "R17 exhibits a fault-set witness" true
    (contains (messages ds) "met by the fault set alone")

let test_r16_r17_sound_twins () =
  check_rules "sound site is clean" []
    (quorum_diags ~path:"lib/protocols/ben_or.ml"
       (ben_or_fixture ~site:"let _sound = protocol ()" ()));
  check_rules "strengthened hook is clean" []
    (quorum_diags ~path:"lib/protocols/ben_or.ml"
       (ben_or_fixture
          ~site:
            "let _strong = protocol ~decide_quorum:(fun ~n:_ ~t -> (2 * t) + 1) ()"
          ()))

let test_r16_bad_default () =
  (* Lowering the *default* (no construction site needed) is also a
     finding: the family's synthetic default check catches it. *)
  let ds =
    quorum_diags ~path:"lib/protocols/ben_or.ml"
      (ben_or_fixture ~default:"t" ~site:"let _sound = protocol ()" ())
  in
  Alcotest.(check bool) "default of t fails decide >= t+1" true
    (List.mem "R16" (rules_of ds))

(* ------------------------------------------------------------------ *)
(* Region agreement with Theorem 4's calculus at t = n/6 +- 1.         *)

let lewko_region =
  (* max_fault_bound's (n - 1) / 6 >= t, plus the ambient bounds. *)
  Symexpr.[ ge (div (sub n_ (int_ 1)) 6) t_; t_; ge n_ (int_ 1) ]

let admits region ~n ~t =
  List.for_all (fun c -> Symexpr.eval ~n ~t c >= 0) region

let test_region_matches_feasible () =
  (* At every n, the symbolic Theorem 4 region admits (n, t) exactly
     when [Thresholds.feasible] accepts it — probed at the boundary
     t = max_fault_bound(n) and one to either side. *)
  for n = 7 to 80 do
    let tb = Protocols.Thresholds.max_fault_bound ~n in
    List.iter
      (fun t ->
        if t >= 0 then
          Alcotest.(check bool)
            (Printf.sprintf "n=%d t=%d" n t)
            (Protocols.Thresholds.feasible ~n ~t)
            (admits lewko_region ~n ~t))
      [ tb - 1; tb; tb + 1 ]
  done

let test_region_verdicts () =
  (* The decision procedure agrees with the calculus on the same
     region: 2*T3 > n holds over 6t < n, and weakening the region to
     t <= n/6 produces a witness the calculus also rejects. *)
  let t3 = Symexpr.(sub n_ (scale 3 t_)) in
  let goal = Symexpr.(gt (scale 2 t3) n_) in
  (match Symexpr.implies ~region:lewko_region goal with
  | Symexpr.Holds -> ()
  | _ -> Alcotest.fail "2*T3 > n must hold for 6t < n");
  let weak = Symexpr.[ ge (div n_ 6) t_; t_; ge n_ (int_ 1) ] in
  match Symexpr.implies ~region:weak goal with
  | Symexpr.Fails { n; t } ->
      Alcotest.(check bool) "witness infeasible for the calculus" false
        (Protocols.Thresholds.feasible ~n ~t)
  | _ -> Alcotest.fail "t <= n/6 admits the 2*T3 = n degeneracy"

(* ------------------------------------------------------------------ *)
(* The real tree: exactly the three !quorum mutants, each R16+R17+R18. *)

let find_root () =
  let rec up dir n =
    if n = 0 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else up (Filename.dirname dir) (n - 1)
  in
  up (Sys.getcwd ()) 5

let real_units =
  lazy
    (match find_root () with
    | None -> None
    | Some root ->
        let load = Cmt_loader.load ~dirs:[ "lib" ] ~root () in
        if load.Cmt_loader.load_errors <> [] then
          Alcotest.failf "cmt load errors: %s"
            (String.concat "; " load.Cmt_loader.load_errors);
        Some load.Cmt_loader.units)

let mutants = [ "ben-or!quorum-1"; "bracha!quorum-t"; "rbc!quorum-t" ]

let test_real_tree_mutants_flagged () =
  match Lazy.force real_units with
  | None -> ()
  | Some units ->
      let ds = Quorum_lint.analyze_units units in
      List.iter
        (fun d ->
          Alcotest.(check string)
            "every finding lands in the mutant registry" "lib/mcheck/model.ml"
            d.Static_lint.path)
        ds;
      List.iter
        (fun mutant ->
          let flagged =
            List.filter (fun d -> contains d.Static_lint.message (mutant ^ ":")) ds
            |> rules_of |> List.sort_uniq compare
          in
          Alcotest.(check (list string))
            (mutant ^ " flagged by all three rules")
            [ "R16"; "R17"; "R18" ] flagged)
        mutants;
      Alcotest.(check int) "three mutants x three rules, nothing else" 9
        (List.length ds)

let test_real_tree_sound_families_clean () =
  match Lazy.force real_units with
  | None -> ()
  | Some units ->
      let ds = Quorum_lint.analyze_units units in
      List.iter
        (fun sound ->
          Alcotest.(check bool) (sound ^ " has no findings") false
            (List.exists
               (fun d -> contains d.Static_lint.message sound)
               ds))
        [ "ben-or:"; "bracha:"; "rbc:"; "lewko:" ]

let test_real_tree_extractions () =
  match Lazy.force real_units with
  | None -> ()
  | Some units ->
      let extractions = Quorum_lint.extractions units in
      let family key =
        match
          List.find_opt (fun e -> e.Quorum_lint.e_family = key) extractions
        with
        | Some e -> e
        | None -> Alcotest.failf "family %s not extracted" key
      in
      let affine fam key =
        match List.assoc_opt key fam.Quorum_lint.e_defaults with
        | Some (Ok e) -> (
            match Symexpr.as_affine e with
            | Some a -> a
            | None -> Alcotest.failf "%s not affine" key)
        | Some (Error why) -> Alcotest.failf "%s: %s" key why
        | None -> Alcotest.failf "no default for %s" key
      in
      (* Ben-Or: decide_at = t + 1, wait_quorum = n - t. *)
      Alcotest.(check (triple int int int))
        "ben-or decide_at" (0, 1, 1)
        (affine (family "ben-or") "decide_at");
      Alcotest.(check (triple int int int))
        "ben-or wait_quorum" (1, -1, 0)
        (affine (family "ben-or") "wait_quorum");
      (* RBC accept quorum: 2t + 1. *)
      Alcotest.(check (triple int int int))
        "rbc accept quorum" (0, 2, 1)
        (affine (family "rbc") "rbc_accept_quorum");
      (* Lewko: Theorem 4's T3 = n - 3t, over the 6t < n region that
         must agree with [Thresholds.feasible] at the boundary. *)
      Alcotest.(check (triple int int int))
        "lewko t3" (1, -3, 0)
        (affine (family "lewko") "t3");
      let lewko = family "lewko" in
      for n = 7 to 40 do
        let tb = Protocols.Thresholds.max_fault_bound ~n in
        List.iter
          (fun t ->
            if t >= 0 then
              Alcotest.(check bool)
                (Printf.sprintf "lewko region n=%d t=%d" n t)
                (Protocols.Thresholds.feasible ~n ~t)
                (admits lewko.Quorum_lint.e_region ~n ~t))
          [ tb; tb + 1 ]
      done

(* ------------------------------------------------------------------ *)
(* Static/dynamic cross-check: each statically flagged mutant replays
   its pinned mcheck counterexample to a real violation; sound Bracha
   survives the identical schedule.                                    *)

let replay name ~inputs ~schedule f =
  match Mcheck.Model.find name with
  | None -> Alcotest.failf "model %s not registered" name
  | Some m ->
      let opts =
        let o = Mcheck.Model.options m ~n:3 ~t:1 in
        { o with Mcheck.Explore.corrupt = 1 }
      in
      f (Mcheck.Model.replay m opts ~inputs schedule)

let test_static_verdicts_match_dynamic () =
  (match Lazy.force real_units with
  | None -> ()
  | Some units ->
      let ds = Quorum_lint.analyze_units units in
      List.iter
        (fun mutant ->
          Alcotest.(check bool) (mutant ^ " statically flagged") true
            (List.exists
               (fun d -> contains d.Static_lint.message (mutant ^ ":"))
               ds))
        mutants);
  (* ben-or!quorum-1: schedule 0;2 on all-zero inputs decides 1. *)
  replay "ben-or!quorum-1" ~inputs:[| false; false; false |]
    ~schedule:[| 0; 2 |] (fun report ->
      Alcotest.(check bool) "ben-or mutant decides invalid value" true
        (List.exists (fun (_, d) -> d) report.Mcheck.Explore.final_decisions));
  (* rbc!quorum-t: three benign windows plus a rewrite conflict. *)
  replay "rbc!quorum-t" ~inputs:[| false; false; false |]
    ~schedule:[| 0; 0; 2 |] (fun report ->
      Alcotest.(check bool) "rbc mutant conflicts" true
        report.Mcheck.Explore.conflict);
  (* bracha!quorum-t: the 9-window constant equivocation replay. *)
  let schedule = Array.make 9 3 in
  let inputs = [| false; true; false |] in
  replay "bracha!quorum-t" ~inputs ~schedule (fun report ->
      Alcotest.(check bool) "bracha mutant conflicts" true
        report.Mcheck.Explore.conflict);
  replay "bracha" ~inputs ~schedule (fun report ->
      Alcotest.(check bool) "sound bracha survives" false
        report.Mcheck.Explore.conflict)

let suite =
  [
    Alcotest.test_case "R15 hot recursion flagged" `Quick test_r15_hot_recursion;
    Alcotest.test_case "R15 clean twins" `Quick test_r15_clean_twins;
    Alcotest.test_case "R16/R17 mutant site" `Quick test_r16_r17_mutant_site;
    Alcotest.test_case "R16/R17 sound twins" `Quick test_r16_r17_sound_twins;
    Alcotest.test_case "R16 bad default" `Quick test_r16_bad_default;
    Alcotest.test_case "region matches Thresholds.feasible" `Quick
      test_region_matches_feasible;
    Alcotest.test_case "region verdicts vs calculus" `Quick test_region_verdicts;
    Alcotest.test_case "real tree: mutants flagged" `Quick
      test_real_tree_mutants_flagged;
    Alcotest.test_case "real tree: sound families clean" `Quick
      test_real_tree_sound_families_clean;
    Alcotest.test_case "real tree: extraction view" `Quick
      test_real_tree_extractions;
    Alcotest.test_case "static verdicts match pinned dynamic replays" `Quick
      test_static_verdicts_match_dynamic;
  ]
