(* The bounded exhaustive model checker: menu correctness, brute-force
   differentials, symmetry-reduction soundness, mutant falsification
   (with pinned minimal counterexamples), replay determinism, and the
   pid-naming Window.validate diagnostics. *)

let to_alcotest = QCheck_alcotest.to_alcotest

module Menu = Mcheck.Menu
module Explore = Mcheck.Explore
module Model = Mcheck.Model

let model name = Option.get (Model.find name)

let opts_of name ~n ~t f =
  let m = model name in
  (m, f (Model.options m ~n ~t))

let schedule_key s = String.concat ";" (List.map string_of_int (Array.to_list s))

let sorted_keys schedules =
  List.sort String.compare (List.map schedule_key schedules)

(* --- menu construction --- *)

let test_menu_sizes () =
  let check ~family ~corrupt expected =
    let menu = Menu.build ~n:3 ~t:1 ~family ~corrupt in
    Alcotest.(check int)
      (Printf.sprintf "menu size (%s, corrupt=%d)"
         (match family with `Uniform -> "uniform" | `Full -> "full")
         corrupt)
      expected (Menu.size menu);
    Alcotest.(check bool) "all windows acceptable" true (Menu.validate_all menu)
  in
  (* Uniform: 4 silenced sets (popcount <= 1) x 4 reset sets; full: 4
     receive masks per processor (popcount >= 2) ^ 3 x 4 reset sets.
     One corrupt source multiplies by 1 + 2^3 tamper choices. *)
  check ~family:`Uniform ~corrupt:0 16;
  check ~family:`Full ~corrupt:0 256;
  check ~family:`Uniform ~corrupt:1 144;
  check ~family:`Full ~corrupt:1 2304

let all_perms_3 =
  [ [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |];
    [| 2; 0; 1 |]; [| 2; 1; 0 |] ]

let choice_signature (c : Menu.choice) =
  Printf.sprintf "%s|%s|%s"
    (String.concat ","
       (List.map string_of_int (Array.to_list c.Menu.recv_masks)))
    (String.concat "," (List.map string_of_int c.Menu.resets))
    (match c.Menu.tamper with
    | None -> "-"
    | Some { Menu.src; mask } -> Printf.sprintf "%d/%d" src mask)

(* Soundness precondition of the symmetry reduction: the image of the
   menu under any pid permutation (that fixes the corrupt prefix) is the
   menu itself. *)
let test_menu_permutation_closure () =
  List.iter
    (fun family ->
      let menu = Menu.build ~n:3 ~t:1 ~family ~corrupt:1 in
      let signatures =
        Array.to_list (Array.map choice_signature menu.Menu.choices)
        |> List.sort String.compare
      in
      List.iter
        (fun pi ->
          if pi.(0) = 0 (* corrupt source set {0} must be preserved *) then
            let image =
              Array.to_list menu.Menu.choices
              |> List.map (fun c ->
                     choice_signature (Menu.permute_choice ~n:3 pi c))
              |> List.sort String.compare
            in
            Alcotest.(check (list string))
              "permuted menu equals menu" signatures image)
        all_perms_3)
    [ `Uniform; `Full ]

(* --- brute-force differential (satellite): with deduplication off the
   explorer enumerates exactly the naive schedule tree --- *)

let naive_tree ~menu_size ~depth =
  let rec layer d acc =
    if d > depth then acc
    else
      let rec seqs d =
        if d = 0 then [ [] ]
        else
          List.concat_map
            (fun rest -> List.init menu_size (fun c -> c :: rest))
            (seqs (d - 1))
      in
      layer (d + 1) (List.rev_append (List.map Array.of_list (seqs d)) acc)
  in
  layer 0 []

let test_brute_force_differential () =
  List.iter
    (fun (family, depth, menu_size) ->
      let m, opts =
        opts_of "rbc" ~n:3 ~t:1 (fun o ->
            {
              o with
              Explore.depth;
              family;
              (* asymmetric inputs: trivial symmetry group, so the tree
                 is the plain menu tree *)
              inputs = Explore.Vector [| true; false; false |];
              symmetry = false;
              dedup = false;
              collect = true;
              max_states = None;
            })
      in
      let r = Model.run m opts in
      let expected = naive_tree ~menu_size ~depth in
      Alcotest.(check int)
        "node count" (List.length expected)
        (List.length r.Explore.schedules);
      Alcotest.(check (list string))
        "schedule set equals naive enumeration" (sorted_keys expected)
        (sorted_keys r.Explore.schedules))
    [ (`Uniform, 3, 16); (`Full, 2, 256) ]

(* Every acceptable schedule lands on a canonical state the deduplicated
   symmetric exploration has seen (exhaustiveness of the pruned search). *)
let prop_sampled_schedule_contained =
  let m, opts =
    opts_of "rbc" ~n:3 ~t:1 (fun o ->
        {
          o with
          Explore.depth = 3;
          inputs = Explore.Unanimous false;
          collect = true;
        })
  in
  let r = Model.run m opts in
  let canonical = List.sort_uniq String.compare r.Explore.canonical in
  let menu_size = r.Explore.menu_size in
  QCheck.Test.make ~count:60
    ~name:"random acceptable schedule reaches an explored canonical state"
    QCheck.(list_of_size (Gen.int_range 0 3) (int_bound (menu_size - 1)))
    (fun schedule ->
      let key =
        Model.schedule_state m opts ~inputs:(Array.make 3 false)
          (Array.of_list schedule)
      in
      List.exists (String.equal key) canonical)

(* --- symmetry reduction (satellite) --- *)

let run_ben_or ~symmetry ~inputs ~depth ~collect =
  let m, opts =
    opts_of "ben-or" ~n:3 ~t:1 (fun o ->
        { o with Explore.depth; inputs; symmetry; collect })
  in
  Model.run m opts

let test_symmetry_same_canonical_states () =
  (* Single symmetric root (|G| = 6): with symmetry on the dedup key is
     the canonical form, with it off the raw key — either way the set of
     canonical states swept must be identical, or pruning lost states. *)
  let on =
    run_ben_or ~symmetry:true ~inputs:(Explore.Unanimous true) ~depth:2
      ~collect:true
  in
  let off =
    run_ben_or ~symmetry:false ~inputs:(Explore.Unanimous true) ~depth:2
      ~collect:true
  in
  Alcotest.(check (list string))
    "canonical state sets agree" on.Explore.canonical off.Explore.canonical;
  Alcotest.(check int)
    "both verdicts clean" on.Explore.violations_total
    off.Explore.violations_total

let test_symmetry_same_verdict_on_mutant () =
  let run symmetry =
    let m, opts =
      opts_of "rbc!quorum-t" ~n:3 ~t:1 (fun o ->
          { o with Explore.depth = 3; corrupt = 1; symmetry })
    in
    Model.run m opts
  in
  let on = run true and off = run false in
  Alcotest.(check bool) "both falsify" true
    (on.Explore.violations_total > 0 && off.Explore.violations_total > 0);
  match (on.Explore.violations, off.Explore.violations) with
  | von :: _, voff :: _ ->
      Alcotest.(check int)
        "same minimal depth" von.Explore.vdepth voff.Explore.vdepth
  | _ -> Alcotest.fail "missing violations"

let prop_symmetry_shrinks =
  QCheck.Test.make ~count:4 ~name:"symmetric roots shrink by more than 1x"
    QCheck.bool
    (fun b ->
      let on =
        run_ben_or ~symmetry:true ~inputs:(Explore.Unanimous b) ~depth:3
          ~collect:false
      in
      let off =
        run_ben_or ~symmetry:false ~inputs:(Explore.Unanimous b) ~depth:3
          ~collect:false
      in
      on.Explore.total_states < off.Explore.total_states
      && on.Explore.total_symmetry_hits > 0)

(* --- mutant falsification with pinned minimal schedules (satellite) --- *)

let test_ben_or_mutant_minimal () =
  let m, opts =
    opts_of "ben-or!quorum-1" ~n:3 ~t:1 (fun o ->
        { o with Explore.depth = 2; corrupt = 1 })
  in
  let r = Model.run m opts in
  Alcotest.(check bool) "falsified" true (r.Explore.violations_total > 0);
  match r.Explore.violations with
  | [] -> Alcotest.fail "no violation"
  | v :: _ ->
      (* A single corrupted proposal flips processor 0 in window 2. *)
      Alcotest.(check int) "minimal depth" 2 v.Explore.vdepth;
      Alcotest.(check string) "minimal schedule" "0;2"
        (schedule_key v.Explore.schedule);
      Alcotest.(check string) "root inputs" "000"
        (Explore.inputs_string v.Explore.root_inputs);
      (* The minimal schedule replays deterministically to the invalid
         decision: someone outputs 1 with every non-corrupt input 0. *)
      let report =
        Model.replay m opts ~inputs:v.Explore.root_inputs v.Explore.schedule
      in
      Alcotest.(check bool) "replay reproduces the invalid decision" true
        (List.exists (fun (_, d) -> d) report.Explore.final_decisions)

let test_rbc_mutant_minimal () =
  let m, opts =
    opts_of "rbc!quorum-t" ~n:3 ~t:1 (fun o ->
        { o with Explore.depth = 3; corrupt = 1 })
  in
  let r = Model.run m opts in
  match r.Explore.violations with
  | [] -> Alcotest.fail "no violation"
  | v :: _ ->
      (* init -> echo -> ready: the broken thresholds accept the split
         payload after exactly three benign windows plus one rewrite. *)
      Alcotest.(check int) "minimal depth" 3 v.Explore.vdepth;
      Alcotest.(check string) "minimal schedule" "0;0;2"
        (schedule_key v.Explore.schedule);
      let report =
        Model.replay m opts ~inputs:v.Explore.root_inputs v.Explore.schedule
      in
      Alcotest.(check bool) "replay conflicts" true report.Explore.conflict

(* The Bracha all-quorums-at-t mutant needs 9 windows (3 phases x 3 RBC
   hops), past the exhaustive horizon; its pinned counterexample is the
   constant equivocation schedule, re-validated by deterministic
   replay.  The sound protocol survives the identical schedule. *)
let test_bracha_mutant_replay () =
  let schedule = Array.make 9 3 in
  let inputs = [| false; true; false |] in
  let run name =
    let m, opts = opts_of name ~n:3 ~t:1 (fun o -> { o with Explore.corrupt = 1 }) in
    Model.replay m opts ~inputs schedule
  in
  let mutant = run "bracha!quorum-t" in
  Alcotest.(check bool) "mutant conflicts" true mutant.Explore.conflict;
  let sound = run "bracha" in
  Alcotest.(check bool) "sound bracha survives equivocation" false
    sound.Explore.conflict;
  Alcotest.(check (list string)) "sound bracha audits clean" []
    sound.Explore.audit_violations

(* --- exhaustive clean runs (the tentpole's positive claims) --- *)

let test_sound_models_clean () =
  List.iter
    (fun (name, t, depth) ->
      let m, opts =
        opts_of name ~n:3 ~t (fun o -> { o with Explore.depth })
      in
      let r = Model.run m opts in
      Alcotest.(check int)
        (name ^ " explores clean")
        0 r.Explore.violations_total;
      Alcotest.(check bool) (name ^ " within budget") false r.Explore.bounded)
    [ ("bracha", 1, 3); ("ben-or", 1, 3); ("rbc", 1, 3); ("lewko", 0, 5) ]

(* The checker's windows now go straight from int masks to the bitset
   ground truth ([Menu.window_of_masks] / [Window.of_masks]) with no
   intermediate pid lists.  Pinning the depth-4 bracha sweep to the
   counts in docs/MODELCHECK.md proves the enumeration — menu order,
   window identity, symmetry orbits — came through the representation
   change untouched. *)
let test_enumeration_pinned_d4 () =
  let m, opts = opts_of "bracha" ~n:3 ~t:1 (fun o -> { o with Explore.depth = 4 }) in
  let r = Model.run m opts in
  Alcotest.(check int) "states" 17_845 r.Explore.total_states;
  Alcotest.(check int) "candidates" 40_224 r.Explore.total_candidates;
  Alcotest.(check int) "symmetry-collapsed" 27_045 r.Explore.total_symmetry_hits;
  Alcotest.(check int) "clean" 0 r.Explore.violations_total

(* --- determinism across jobs --- *)

let test_jobs_bit_identical () =
  let run ~jobs ~sharder =
    let m, opts =
      opts_of "rbc!quorum-t" ~n:3 ~t:1 (fun o ->
          {
            o with
            Explore.depth = 3;
            corrupt = 1;
            collect = true;
            jobs;
            sharder;
          })
    in
    Model.run m opts
  in
  let sequential = run ~jobs:1 ~sharder:Explore.sequential_sharder in
  let parallel = run ~jobs:2 ~sharder:Agreement.Mcheck_bridge.sharder in
  Alcotest.(check int) "states" sequential.Explore.total_states
    parallel.Explore.total_states;
  Alcotest.(check int) "violations" sequential.Explore.violations_total
    parallel.Explore.violations_total;
  Alcotest.(check (list string))
    "canonical states" sequential.Explore.canonical parallel.Explore.canonical;
  Alcotest.(check (list string))
    "minimal schedules"
    (List.map (fun v -> schedule_key v.Explore.schedule) sequential.Explore.violations)
    (List.map (fun v -> schedule_key v.Explore.schedule) parallel.Explore.violations)

(* --- engine hooks the checker relies on --- *)

let test_shared_reseed_fingerprints () =
  let protocol = Protocols.Ben_or.protocol () in
  let mk () =
    let e =
      Dsim.Engine.init ~protocol ~n:3 ~fault_bound:1
        ~inputs:[| true; false; true |] ~seed:7 ()
    in
    Dsim.Engine.reseed_shared e (Prng.Stream.root 7);
    e
  in
  let a = mk () and b = mk () in
  Alcotest.(check string) "identical configurations"
    (Dsim.Engine.config_fingerprint a)
    (Dsim.Engine.config_fingerprint b);
  Dsim.Engine.apply_window a (Dsim.Window.uniform ~n:3 ());
  Alcotest.(check bool) "fingerprint moves with the configuration" false
    (String.equal
       (Dsim.Engine.config_fingerprint a)
       (Dsim.Engine.config_fingerprint b))

(* --- Window.validate names the offender (satellite fix) --- *)

let test_validate_messages () =
  let full3 = [ 0; 1; 2 ] in
  (match
     Dsim.Window.validate ~n:3 ~t:1
       (Dsim.Window.make ~receive_sets:[| full3; full3 |] ~resets:[])
   with
  | Error msg ->
      Alcotest.(check string) "arity message" "window has 2 receive sets; need 3"
        msg
  | Ok () -> Alcotest.fail "expected arity error");
  (match
     Dsim.Window.validate ~n:3 ~t:1
       (Dsim.Window.make ~receive_sets:[| full3; full3; full3 |] ~resets:[ 0; 1 ])
   with
  | Error msg ->
      Alcotest.(check string) "reset-budget message"
        "window resets 2 processors; at most t = 1 allowed" msg
  | Ok () -> Alcotest.fail "expected reset-budget error");
  (match
     Dsim.Window.validate ~n:3 ~t:1
       (Dsim.Window.make ~receive_sets:[| [ 1 ]; full3; full3 |] ~resets:[])
   with
  | Error msg ->
      Alcotest.(check string) "size message" "S_0 has 1 senders; need >= n - t = 2"
        msg
  | Ok () -> Alcotest.fail "expected size error");
  let w_bad_set =
    Dsim.Window.make
      ~receive_sets:[| [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 2; 5 ] |]
      ~resets:[]
  in
  (match Dsim.Window.validate ~n:3 ~t:1 w_bad_set with
  | Error msg ->
      Alcotest.(check string) "receive-set message"
        "S_2 contains out-of-range pid 5 (n = 3)" msg
  | Ok () -> Alcotest.fail "expected receive-set error");
  let w_bad_reset =
    Dsim.Window.make
      ~receive_sets:[| [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ] |]
      ~resets:[ 3 ]
  in
  (match Dsim.Window.validate ~n:3 ~t:1 w_bad_reset with
  | Error msg ->
      Alcotest.(check string) "reset message"
        "reset set contains out-of-range pid 3 (n = 3)" msg
  | Ok () -> Alcotest.fail "expected reset error");
  let w_negative =
    Dsim.Window.make
      ~receive_sets:[| [ -1; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ] |]
      ~resets:[]
  in
  match Dsim.Window.validate ~n:3 ~t:1 w_negative with
  | Error msg ->
      Alcotest.(check string) "negative pid named"
        "S_0 contains out-of-range pid -1 (n = 3)" msg
  | Ok () -> Alcotest.fail "expected negative-pid error"

let suite =
  [
    Alcotest.test_case "menu sizes and acceptability" `Quick test_menu_sizes;
    Alcotest.test_case "menu closed under pid permutation" `Quick
      test_menu_permutation_closure;
    Alcotest.test_case "dedup-off equals naive enumeration" `Slow
      test_brute_force_differential;
    to_alcotest prop_sampled_schedule_contained;
    Alcotest.test_case "symmetry on/off: same canonical states" `Quick
      test_symmetry_same_canonical_states;
    Alcotest.test_case "symmetry on/off: same mutant verdict" `Quick
      test_symmetry_same_verdict_on_mutant;
    to_alcotest prop_symmetry_shrinks;
    Alcotest.test_case "ben-or!quorum-1 minimal counterexample" `Quick
      test_ben_or_mutant_minimal;
    Alcotest.test_case "rbc!quorum-t minimal counterexample" `Quick
      test_rbc_mutant_minimal;
    Alcotest.test_case "bracha!quorum-t pinned replay" `Quick
      test_bracha_mutant_replay;
    Alcotest.test_case "sound models explore clean" `Quick
      test_sound_models_clean;
    Alcotest.test_case "enumeration pinned at bracha n3t1 d4" `Slow
      test_enumeration_pinned_d4;
    Alcotest.test_case "results bit-identical across jobs" `Quick
      test_jobs_bit_identical;
    Alcotest.test_case "shared reseed makes configurations comparable" `Quick
      test_shared_reseed_fingerprints;
    Alcotest.test_case "Window.validate names the offending pid" `Quick
      test_validate_messages;
  ]
