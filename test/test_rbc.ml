(* Reliable broadcast state machine: n = 7, t = 2, so the echo quorum
   is floor((7+2)/2) + 1 = 5, ready amplification needs t + 1 = 3, and
   acceptance needs 2t + 1 = 5 matching readies. *)

module Rbc = Protocols.Reliable_broadcast

let create ?(self = 0) () = Rbc.create ~n:7 ~t:2 ~self ~equal:String.equal ()

(* Expand lazy broadcast envelopes into the explicit (destination,
   message) pairs the engine would enqueue (n = 7 throughout). *)
let expand sends = Dsim.Step.expand ~n:7 sends

let kind = function
  | Rbc.Initial _ -> `Initial
  | Rbc.Echo _ -> `Echo
  | Rbc.Ready _ -> `Ready

let count_kind k messages =
  List.length (List.filter (fun (_, m) -> kind m = k) messages)

let test_broadcast_sends_initial () =
  let state = create () in
  let _, sends = Rbc.broadcast state ~tag:1 "v" in
  let sends = expand sends in
  Alcotest.(check int) "initial to all" 7 (List.length sends);
  Alcotest.(check int) "all initial" 7 (count_kind `Initial sends)

let test_broadcast_once_per_tag () =
  let state = create () in
  let state, _ = Rbc.broadcast state ~tag:1 "v" in
  let _, again = Rbc.broadcast state ~tag:1 "w" in
  Alcotest.(check int) "re-broadcast ignored" 0 (List.length again)

let test_initial_echoes () =
  let state = create () in
  let _, sends, accepted =
    Rbc.receive state ~src:3 (Rbc.Initial { tag = 5; payload = "v" })
  in
  let sends = expand sends in
  Alcotest.(check int) "echo to all" 7 (count_kind `Echo sends);
  Alcotest.(check (list (pair int string))) "nothing accepted yet" [] accepted;
  (* The echo names the true origin. *)
  List.iter
    (fun (_, m) ->
      match m with
      | Rbc.Echo { origin; tag; payload } ->
          Alcotest.(check int) "origin" 3 origin;
          Alcotest.(check int) "tag" 5 tag;
          Alcotest.(check string) "payload" "v" payload
      | _ -> ())
    sends

let test_duplicate_initial_ignored () =
  let state = create () in
  let state, _, _ = Rbc.receive state ~src:3 (Rbc.Initial { tag = 5; payload = "v" }) in
  let _, sends, _ = Rbc.receive state ~src:3 (Rbc.Initial { tag = 5; payload = "w" }) in
  Alcotest.(check int) "second initial silent" 0 (List.length sends)

let test_echo_quorum_triggers_ready () =
  let state = ref (create ()) in
  let total_readies = ref 0 in
  for src = 1 to 5 do
    let s, sends, _ =
      Rbc.receive !state ~src (Rbc.Echo { origin = 6; tag = 2; payload = "v" })
    in
    state := s;
    total_readies := !total_readies + count_kind `Ready (expand sends);
    if src < 5 then
      Alcotest.(check int)
        (Printf.sprintf "no ready at %d echoes" src)
        0 !total_readies
  done;
  Alcotest.(check int) "ready fired at 5 echoes" 7 !total_readies

let test_mismatched_echoes_do_not_quorum () =
  let state = ref (create ()) in
  let readies = ref 0 in
  (* 4 echoes for "v", 3 for "w": neither reaches the quorum of 5. *)
  List.iteri
    (fun i payload ->
      let s, sends, _ =
        Rbc.receive !state ~src:(i mod 7)
          (Rbc.Echo { origin = 6; tag = 2; payload })
      in
      state := s;
      readies := !readies + count_kind `Ready (expand sends))
    [ "v"; "w"; "v"; "w"; "v"; "w"; "v" ];
  Alcotest.(check int) "no ready from split echoes" 0 !readies

let test_ready_amplification () =
  (* t + 1 = 3 matching readies trigger our own ready even without an
     echo quorum. *)
  let state = ref (create ()) in
  let readies = ref 0 in
  for src = 1 to 3 do
    let s, sends, _ =
      Rbc.receive !state ~src (Rbc.Ready { origin = 6; tag = 2; payload = "v" })
    in
    state := s;
    readies := !readies + count_kind `Ready (expand sends)
  done;
  Alcotest.(check int) "amplified at t+1" 7 !readies

let test_acceptance_at_2t_plus_1 () =
  let state = ref (create ()) in
  let accepted_total = ref [] in
  for src = 1 to 5 do
    let s, _, accepted =
      Rbc.receive !state ~src (Rbc.Ready { origin = 6; tag = 2; payload = "v" })
    in
    state := s;
    accepted_total := !accepted_total @ accepted;
    if src < 5 then
      Alcotest.(check int) "not yet accepted" 0 (List.length !accepted_total)
  done;
  Alcotest.(check (list (pair int string))) "accepted once" [ (6, "v") ] !accepted_total;
  Alcotest.(check int) "accepted_count" 1 (Rbc.accepted_count !state ~tag:2);
  (* A 6th ready must not re-accept. *)
  let _, _, accepted =
    Rbc.receive !state ~src:6 (Rbc.Ready { origin = 6; tag = 2; payload = "v" })
  in
  Alcotest.(check int) "no double acceptance" 0 (List.length accepted)

let test_accepted_by_tag () =
  let state = ref (create ()) in
  let push origin tag =
    for src = 1 to 5 do
      let s, _, _ =
        Rbc.receive !state ~src (Rbc.Ready { origin; tag; payload = "v" })
      in
      state := s
    done
  in
  push 1 10;
  push 2 10;
  push 3 11;
  Alcotest.(check (list (pair int string))) "tag 10 accepts sorted"
    [ (1, "v"); (2, "v") ]
    (Rbc.accepted !state ~tag:10);
  Alcotest.(check int) "tag 11" 1 (Rbc.accepted_count !state ~tag:11);
  Alcotest.(check int) "tag 12 empty" 0 (Rbc.accepted_count !state ~tag:12)

let test_equivocation_safety () =
  (* An origin sends "v" to some and "w" to others (via corrupted
     initials).  Whatever happens, no processor can collect two
     accepted payloads for the same (origin, tag); here we check the
     quorum arithmetic directly: with n = 7, t = 2, echo quorums for
     two different payloads would need 10 > 7 echo senders. *)
  let state = ref (create ()) in
  let ready_payloads = ref [] in
  List.iteri
    (fun i payload ->
      let s, sends, _ =
        Rbc.receive !state ~src:i (Rbc.Echo { origin = 6; tag = 0; payload })
      in
      state := s;
      List.iter
        (fun (_, m) ->
          match m with
          | Rbc.Ready { payload; _ } -> ready_payloads := payload :: !ready_payloads
          | _ -> ())
        (expand sends))
    [ "v"; "v"; "v"; "w"; "w"; "v"; "v" ];
  (* "v" got 5 echoes -> one ready burst, all for "v". *)
  Alcotest.(check bool) "readies only for v" true
    (List.for_all (fun p -> p = "v") !ready_payloads);
  Alcotest.(check bool) "some ready fired" true (!ready_payloads <> [])

(* Full-network simulation of one RBC instance where the origin
   equivocates: payload "v" claimed to some processors, "w" to others.
   Under any delivery order, correct processors must never accept
   different payloads (agreement), and if anyone accepts, everyone does
   once all traffic is flushed (totality). *)
let simulate_equivocation ?(split = 3) ~seed () =
  let n = 7 and t = 2 in
  let states = Array.init n (fun self -> Rbc.create ~n ~t ~self ~equal:String.equal ()) in
  let rng = Prng.Stream.root seed in
  (* The corrupt origin (processor 6) sends Initial("v") to the first
     [split] processors and Initial("w") to the rest; everything else
     is honest. *)
  let queue = ref [] in
  for dst = 0 to 5 do
    let payload = if dst < split then "v" else "w" in
    queue := (6, dst, Rbc.Initial { tag = 1; payload }) :: !queue
  done;
  let accepted = Array.make n [] in
  let rec drain () =
    match !queue with
    | [] -> ()
    | _ ->
        (* Deliver a uniformly random pending message. *)
        let arr = Array.of_list !queue in
        let i = Prng.Stream.int_below rng (Array.length arr) in
        let src, dst, message = arr.(i) in
        queue := List.filteri (fun j _ -> j <> i) (Array.to_list arr);
        let state, sends, now = Rbc.receive states.(dst) ~src message in
        states.(dst) <- state;
        accepted.(dst) <- accepted.(dst) @ now;
        List.iter (fun (to_, m) -> queue := (dst, to_, m) :: !queue) (expand sends);
        drain ()
  in
  drain ();
  accepted

let test_equivocation_agreement_property () =
  let saw_global_acceptance = ref false in
  List.iter
    (fun split ->
      for seed = 1 to 12 do
        let accepted = simulate_equivocation ~split ~seed () in
        let payloads =
          Array.to_list accepted |> List.concat |> List.map snd
          |> List.sort_uniq compare
        in
        Alcotest.(check bool)
          (Printf.sprintf "at most one payload accepted (split %d, seed %d)" split seed)
          true
          (List.length payloads <= 1);
        (* Totality: with all traffic flushed, acceptance is all-or-none. *)
        let acceptors =
          Array.to_list accepted |> List.filter (fun l -> l <> []) |> List.length
        in
        Alcotest.(check bool)
          (Printf.sprintf "all-or-none acceptance (split %d, seed %d)" split seed)
          true
          (acceptors = 0 || acceptors = 7);
        if acceptors = 7 then saw_global_acceptance := true
      done)
    [ 0; 3; 5; 6 ];
  (* A near-unanimous origin (split 5 or 6) must actually go through —
     the property is not vacuously all-none. *)
  Alcotest.(check bool) "acceptance occurs for consistent-enough origins" true
    !saw_global_acceptance

let test_fingerprint_changes () =
  let a = create () in
  let b, _, _ = Rbc.receive a ~src:1 (Rbc.Echo { origin = 2; tag = 0; payload = "v" }) in
  Alcotest.(check bool) "fingerprint reflects state" true
    (Rbc.fingerprint (fun s -> s) a <> Rbc.fingerprint (fun s -> s) b)

let suite =
  [
    Alcotest.test_case "broadcast sends initial" `Quick test_broadcast_sends_initial;
    Alcotest.test_case "broadcast once per tag" `Quick test_broadcast_once_per_tag;
    Alcotest.test_case "initial echoes" `Quick test_initial_echoes;
    Alcotest.test_case "duplicate initial ignored" `Quick test_duplicate_initial_ignored;
    Alcotest.test_case "echo quorum triggers ready" `Quick test_echo_quorum_triggers_ready;
    Alcotest.test_case "mismatched echoes no quorum" `Quick
      test_mismatched_echoes_do_not_quorum;
    Alcotest.test_case "ready amplification" `Quick test_ready_amplification;
    Alcotest.test_case "acceptance at 2t+1" `Quick test_acceptance_at_2t_plus_1;
    Alcotest.test_case "accepted by tag" `Quick test_accepted_by_tag;
    Alcotest.test_case "equivocation safety" `Quick test_equivocation_safety;
    Alcotest.test_case "equivocation agreement + totality" `Quick
      test_equivocation_agreement_property;
    Alcotest.test_case "fingerprint changes" `Quick test_fingerprint_changes;
  ]
