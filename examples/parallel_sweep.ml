(* Parallel sweeps: run the same seed ensemble sequentially and on the
   recommended number of domains, check the results are bit-identical,
   and report the wall-clock ratio.

     dune exec examples/parallel_sweep.exe

   The determinism contract (docs/PARALLELISM.md) is what makes the -j
   flags on experiments.exe and agreement_cli.exe safe: jobs changes
   only elapsed time, never a single output bit. *)

let n = 9
let seed_count = 48

let spec =
  {
    Agreement.Ensemble.n;
    t = 1;
    inputs = Agreement.Ensemble.split_inputs ~n;
    max_windows = 30_000;
    max_steps = 0;
    stop = `First_decision;
  }

let sweep ~jobs =
  Agreement.Ensemble.run_windowed ~jobs
    ~protocol:(Protocols.Lewko_variant.protocol ())
    ~strategy:(fun _seed -> Adversary.Split_vote.windowed ())
    ~spec
    ~seeds:(List.init seed_count (fun i -> i + 1))
    ()

let timed f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let () =
  let jobs = Agreement.Par_sweep.default_jobs () in
  Format.printf "sweeping %d seeds (n = %d, balancing adversary)@." seed_count n;
  let sequential, seq_time = timed (fun () -> sweep ~jobs:1) in
  let parallel, par_time = timed (fun () -> sweep ~jobs) in
  Format.printf "sequential: %.3fs@." seq_time;
  Format.printf "jobs = %d:  %.3fs (%.2fx)@." jobs par_time
    (seq_time /. par_time);
  Format.printf "bit-identical: %b@."
    (Agreement.Ensemble.equal_result sequential parallel);
  Format.printf "@[<v>%a@]@." Agreement.Ensemble.pp_result parallel;
  if not (Agreement.Ensemble.equal_result sequential parallel) then exit 1
