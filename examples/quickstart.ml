(* Quickstart: run the paper's variant algorithm (Section 3) on 13
   processors with split inputs, first under a benign scheduler, then
   against the strongly adaptive balancing adversary, and print what
   happened.

     dune exec examples/quickstart.exe
*)

let run ?(lint = true) ~name ~strategy () =
  let n = 13 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let config =
    Dsim.Engine.init
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~n ~fault_bound:t ~inputs ~seed:42 ~record_events:lint ()
  in
  let outcome =
    Dsim.Runner.run_windows config ~strategy ~max_windows:100_000 ~stop:`All_decided
  in
  let verdict = Agreement.Correctness.of_outcome ~inputs outcome in
  Format.printf "@[<v>%s:@,  %a@,  %a@,@]" name Dsim.Runner.pp_outcome outcome
    Agreement.Correctness.pp verdict;
  if lint then
    (* Audit the recorded trace: FIFO channels, causal depths, message
       provenance, window discipline, and the T1 = n - 2t decision
       quorum must all hold. *)
    match Lintkit.Trace_lint.audit ~decision_quorum:(n - (2 * t)) config with
    | [] -> Format.printf "  trace lint: clean@."
    | violations ->
        List.iter
          (fun v -> Format.printf "  trace lint: %a@." Lintkit.Trace_lint.pp_violation v)
          violations

let () =
  Format.printf "Variant algorithm, n = 13, t = 2, split inputs.@.@.";
  run ~name:"benign scheduler" ~strategy:(Adversary.Benign.windowed ()) ();
  run ~name:"balancing adversary" ~strategy:(Adversary.Split_vote.windowed ()) ();
  run ~name:"balancing + resets"
    ~strategy:(Adversary.Split_vote.windowed_with_resets ())
    ();
  Format.printf
    "Note how the adversary multiplies the number of acceptable windows@,\
     needed before anyone decides — Section 3's exponential-time effect@,\
     in miniature (see experiment E2 for the scaling in n).@."
