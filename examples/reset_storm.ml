(* Reset storm: the strongly adaptive adversary resets t processors at
   the end of *every* acceptable window, so the cumulative number of
   failures vastly exceeds t — and the variant algorithm still reaches
   a correct decision (Theorem 4 / experiment E7).

     dune exec examples/reset_storm.exe
*)

let () =
  let n = 13 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let config =
    Dsim.Engine.init
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~n ~fault_bound:t ~inputs ~seed:7 ~record_events:true ()
  in
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(Adversary.Reset_storm.random ~seed:99 ())
      ~max_windows:10_000 ~stop:`All_decided
  in
  Format.printf "@[<v>Reset storm, n = %d, t = %d (resets per window = t):@,  %a@,@]" n t
    Dsim.Runner.pp_outcome outcome;
  Format.printf "Total resetting failures absorbed: %d (= %.1f x t)@."
    outcome.Dsim.Runner.total_resets
    (float_of_int outcome.Dsim.Runner.total_resets /. float_of_int t);
  (* Show the per-processor reset counts and decisions. *)
  Format.printf "@[<v>Per-processor outcome:@,";
  for p = 0 to n - 1 do
    Format.printf "  %a@," Dsim.Obs.pp (Dsim.Engine.observe config p)
  done;
  Format.printf "@]";
  (* Replay the last few recorded events to show a reset + recovery. *)
  let events = Dsim.Trace.events (Dsim.Engine.trace config) in
  let resets =
    List.filter (function Dsim.Trace.Reset_done _ -> true | _ -> false) events
  in
  Format.printf "Recorded %d reset events; decisions despite them:@." (List.length resets);
  List.iter
    (fun event ->
      match event with
      | Dsim.Trace.Decided _ -> Format.printf "  %a@." Dsim.Trace.pp_event event
      | _ -> ())
    events;
  (* Audit the full trace: even under the storm, FIFO channels, causal
     depths, provenance, the t-resets-per-window cap and the T1 decision
     quorum must hold. *)
  (match Lintkit.Trace_lint.audit ~decision_quorum:(n - (2 * t)) config with
  | [] -> Format.printf "Trace lint: clean.@."
  | violations ->
      List.iter
        (fun v -> Format.printf "Trace lint: %a@." Lintkit.Trace_lint.pp_violation v)
        violations);
  (* The contrast: Ben-Or has no re-join procedure (a reset processor
     just restarts from its input), and the same storm livelocks it. *)
  let contrast =
    Dsim.Engine.init ~protocol:(Protocols.Ben_or.protocol ()) ~n ~fault_bound:t
      ~inputs ~seed:7 ~record_events:true ()
  in
  let outcome =
    Dsim.Runner.run_windows contrast
      ~strategy:(Adversary.Reset_storm.random ~seed:99 ())
      ~max_windows:2_000 ~stop:`All_decided
  in
  (match Lintkit.Trace_lint.audit ~decision_quorum:(n - t) contrast with
  | [] -> ()
  | violations ->
      List.iter
        (fun v -> Format.printf "Trace lint (ben-or): %a@." Lintkit.Trace_lint.pp_violation v)
        violations);
  Format.printf
    "@.Contrast — Ben-Or (restart-on-reset, no re-join) under the same storm:@.  %a@.\
     The baselines livelock under reset storms; the variant's recovery@.\
     procedure (Section 3, 'handling resets') is what makes the model@.\
     survivable.  Experiment E14 quantifies this.@."
    Dsim.Runner.pp_outcome outcome
