(* Why randomization?  The FLP impossibility (Fischer, Lynch, Paterson
   — the paper's starting point) says no deterministic asynchronous
   agreement protocol can always terminate once a single failure is
   possible.  This example makes the phenomenon concrete inside the
   acceptable-window model: derandomize the variant algorithm by
   pinning its step-3 fallback coin to a constant, and the split-brain
   adversary — which tailors each processor's receive set, showing the
   1-holders just enough 1-votes to keep them deterministic and the
   0-holders a balanced view that routes them to their (pinned) coin —
   freezes the configuration forever.  The genuinely randomized variant
   under the very same adversary terminates in every run (Theorem 4).

     dune exec examples/flp_determinism.exe
*)

let run ?(lint = true) ~name ~coin ~seeds ~max_windows () =
  let n = 13 and t = 2 in
  (* 1-inputs at the low ids: the layout under which the freeze is
     exact (the tally counts the first T1 senders in id order). *)
  let inputs = Array.init n (fun i -> i < 7) in
  let decided = ref 0 and windows = ref Stats.Summary.empty in
  let conflicts = ref 0 and lint_failures = ref 0 in
  List.iter
    (fun seed ->
      let config =
        Dsim.Engine.init
          ~protocol:(Protocols.Lewko_variant.protocol ?coin ())
          ~n ~fault_bound:t ~inputs ~seed ~record_events:lint ()
      in
      let outcome =
        Dsim.Runner.run_windows config
          ~strategy:(Adversary.Split_brain.windowed ())
          ~max_windows ~stop:`First_decision
      in
      if lint then
        lint_failures :=
          !lint_failures
          + List.length
              (Lintkit.Trace_lint.audit ~decision_quorum:(n - (2 * t)) config);
      if outcome.Dsim.Runner.conflict then incr conflicts;
      if outcome.Dsim.Runner.decided <> [] then begin
        incr decided;
        windows := Stats.Summary.add_int !windows outcome.Dsim.Runner.windows
      end)
    seeds;
  Format.printf "  %-22s decided %d/%d runs%s%s%s@." name !decided (List.length seeds)
    (if !decided > 0 then
       Printf.sprintf " (mean %.0f windows)" (Stats.Summary.mean !windows)
     else " — stuck at the window budget every time")
    (if !conflicts > 0 then "  [CONFLICT!]" else "")
    (if not lint then ""
     else if !lint_failures = 0 then "  [trace lint: clean]"
     else Printf.sprintf "  [trace lint: %d violations]" !lint_failures)

let () =
  let seeds = List.init 10 (fun i -> i + 1) in
  Format.printf
    "Variant algorithm, n = 13, t = 2, inputs 1111111000000,@.split-brain adversary, budget 20000 windows per run:@.@.";
  run ~name:"fair coin (Theorem 4)" ~coin:None ~seeds ~max_windows:20_000 ();
  (* The full-budget frozen runs would record ~7M events each; lint the
     freeze on a short-budget run below instead. *)
  run ~lint:false ~name:"coin pinned to 0" ~coin:(Some (fun _ -> false)) ~seeds ~max_windows:20_000 ();
  run ~name:"coin pinned to 1" ~coin:(Some (fun _ -> true)) ~seeds ~max_windows:20_000 ();
  run ~name:"pinned 0, 2k (audited)" ~coin:(Some (fun _ -> false)) ~seeds:[ 1 ]
    ~max_windows:2_000 ();
  Format.printf
    "@.With the pinned coin the adversary freezes a 7-ones/6-zeros split:@.\
     the 1-holders keep re-adopting 1 deterministically (they see exactly@.\
     T3 = 7 one-votes), the 0-holders fall to their constant \"coin\" and@.\
     stay 0, and no window ever changes the census — FLP non-termination@.\
     realized by a strongly adaptive schedule.  The fair coin breaks the@.\
     freeze with probability ~2^-6 per window and always terminates.@."
