(* A guided tour of the lower-bound machinery (Section 4):

   1. Talagrand's inequality (Lemma 9) on a concrete product space;
   2. the hybrid interpolation (Lemma 14) and its crossing index;
   3. the Z^k sets on real configurations of the variant algorithm:
      Z^0 separation (Lemma 11) and Z^1 membership of initial
      configurations — including the interpolation over inputs that
      Theorem 5's proof uses to find a "hard" input assignment;
   4. the theorem's constants: how many windows the adversary survives.

     dune exec examples/lower_bound_tour.exe
*)

let section title = Format.printf "@.== %s ==@." title

let () =
  section "1. Talagrand (Lemma 9)";
  let n = 16 in
  let space = Lowerbound.Product.uniform_bits ~n in
  let set = Lowerbound.Talagrand.Weight_ge 11 in
  List.iter
    (fun d ->
      let c = Lowerbound.Talagrand.check space set ~d in
      Format.printf
        "  n=%d A={weight>=11} d=%d: P(A)=%.4f P(B(A,d))=%.4f lhs=%.5f <= bound=%.4f : %b@."
        n d c.Lowerbound.Talagrand.p_a c.Lowerbound.Talagrand.p_expansion
        c.Lowerbound.Talagrand.lhs c.Lowerbound.Talagrand.bound
        c.Lowerbound.Talagrand.holds)
    [ 2; 4; 6 ];

  section "2. Interpolation (Lemma 14)";
  let n = 48 in
  let k0 = (n / 2) - (n / 6) and k1 = (n / 2) + (n / 6) in
  let result =
    Lowerbound.Interpolation.sweep ~samples:20_000
      ~pi0:(Lowerbound.Product.bernoulli (Array.make n 0.2))
      ~pi_n:(Lowerbound.Product.bernoulli (Array.make n 0.8))
      ~z0:(Lowerbound.Talagrand.Weight_le k0)
      ~z1:(Lowerbound.Talagrand.Weight_ge k1)
      ~t:(k1 - k0 - 1) ()
  in
  Format.printf "  n=%d: eta=%.3f j*=%d P[Z0]=%.4f P[Z1]=%.4f both <= eta: %b@." n
    result.Lowerbound.Interpolation.eta result.Lowerbound.Interpolation.j_star
    result.Lowerbound.Interpolation.p_z0_at_star
    result.Lowerbound.Interpolation.p_z1_at_star
    result.Lowerbound.Interpolation.conclusion_holds;

  section "3. Z^k sets on real configurations";
  let protocol = Protocols.Lewko_variant.protocol () in
  let n = 7 and t = 1 in
  let sep = Lowerbound.Zk_sets.estimate_z0_separation ~protocol ~n ~t ~runs:40 ~seed:3 in
  Format.printf "  Z^0_0 vs Z^0_1 sampled separation: min distance %d > t = %d : %b@."
    sep.Lowerbound.Zk_sets.min_distance t sep.Lowerbound.Zk_sets.holds;
  let tau = Stats.Tail.tau ~n ~t in
  let rng = Prng.Stream.root 9 in
  let member inputs value =
    let config = Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed:4 () in
    Lowerbound.Zk_sets.member config ~k:1 ~value ~samples:10 ~tau ~rng
  in
  (* Theorem 5's input interpolation: flip inputs one at a time from
     all-zero to all-one; report each configuration's Z^1 memberships.
     The proof guarantees some intermediate assignment is outside both. *)
  Format.printf "  input interpolation (k = 1, tau = %.3f):@." tau;
  let found = ref None in
  for ones = 0 to n do
    let inputs = Array.init n (fun i -> i < ones) in
    let m0 = member inputs false and m1 = member inputs true in
    Format.printf "    inputs with %d ones: in Z^1_0 = %-5b in Z^1_1 = %-5b%s@." ones m0
      m1
      (if (not m0) && not m1 then "   <- outside both: hard input" else "");
    if (not m0) && (not m1) && !found = None then found := Some ones
  done;
  (match !found with
  | Some ones ->
      Format.printf
        "  => the adversary starts from the %d-ones assignment and extends@.     the execution window by window (Lemma 14).@."
        ones
  | None -> Format.printf "  => no hard input found at this sampling resolution.@.");

  section "4. The proof adversary, executed";
  (* The Theorem 5 adversary at miniature scale: estimate the maximal
     union-free level k, then play the canonical window minimizing the
     estimated chance of entering Z^{k-1}_0 ∪ Z^{k-1}_1. *)
  let n = 7 and t = 1 in
  let lint_failures = ref 0 in
  let survived ?(lint = true) coin_runs strategy =
    let total = ref 0 in
    List.iter
      (fun seed ->
        let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
        let config =
          Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed
            ~record_events:lint ()
        in
        let outcome =
          Dsim.Runner.run_windows config ~strategy:(strategy seed) ~max_windows:2_000
            ~stop:`First_decision
        in
        if lint then
          lint_failures :=
            !lint_failures
            + List.length
                (Lintkit.Trace_lint.audit ~decision_quorum:(n - (2 * t)) config);
        total := !total + outcome.Dsim.Runner.windows)
      coin_runs;
    float_of_int !total /. float_of_int (List.length coin_runs)
  in
  let seeds = List.init 8 (fun i -> i + 1) in
  Format.printf "  mean windows survived (n=%d, t=%d, split inputs):@." n t;
  Format.printf "    benign scheduler : %.1f@."
    (survived seeds (fun _ -> Adversary.Benign.windowed ()));
  Format.printf "    balancing        : %.1f@."
    (survived seeds (fun _ -> Adversary.Split_vote.windowed ()));
  Format.printf "    proof adversary  : %.1f   (Z^k-probing, k_max = 1)@."
    (survived seeds (fun seed ->
         Lowerbound.Proof_adversary.windowed ~k_max:1 ~samples:4 ~seed ()));
  Format.printf "  trace lint over all runs above: %s@."
    (if !lint_failures = 0 then "clean"
     else Printf.sprintf "%d violations" !lint_failures);

  section "5. Theorem 5 constants";
  List.iter
    (fun c ->
      let k = Lowerbound.Theory.derive ~c in
      Format.printf
        "  c=%.4f: alpha=%.2e, E(n) exceeds 1 beyond n ~ %.0f; at n=4096: log2 E = %.1f, success prob >= %.3f@."
        c k.Lowerbound.Theory.alpha
        (Lowerbound.Theory.crossover_n k)
        (Lowerbound.Theory.log_windows k ~n:4096 /. log 2.0)
        (Lowerbound.Theory.success_probability_lower_bound k ~n:4096))
    [ 1.0 /. 6.0; 1.0 /. 12.0 ]
