(* Byzantine corruption vs reliable broadcast: run Ben-Or (no message
   validation) and Bracha (reliable broadcast) against an equivocating
   Byzantine adversary that rewrites the corrupt set's votes to tell
   every recipient what it already believes.

   Ben-Or's bare votes are vulnerable: with t = (n-1)/5 corrupt
   processors the adversary can stall or even (beyond its resilience)
   split decisions.  Bracha's echo/ready quorums neutralize the
   equivocation — the corrupt votes are forced to be consistent.

     dune exec examples/byzantine_split.exe
*)

let run_protocol ?(lint = true) name protocol ~n ~t ~corrupt ~flavour ~seed =
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let config =
    Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed
      ~record_events:lint ()
  in
  let outcome =
    Dsim.Runner.run_steps config
      ~strategy:(Adversary.Byzantine.lockstep ~corrupt ~flavour ())
      ~max_steps:300_000 ~stop:`All_decided
  in
  let verdict = Agreement.Correctness.of_outcome ~inputs outcome in
  Format.printf "@[<v>%s (corrupt = {%s}, %s):@,  %a@,  %a@,@]" name
    (String.concat "," (List.map string_of_int corrupt))
    (match flavour with
    | Adversary.Byzantine.Flip -> "flip"
    | Adversary.Byzantine.Equivocate -> "equivocate"
    | Adversary.Byzantine.Silent -> "silent")
    Dsim.Runner.pp_outcome outcome Agreement.Correctness.pp verdict;
  if lint then
    (* Corruption rewrites payloads in flight, never endpoints or causal
       depths, so even these traces must audit clean.  Deciders heard a
       full n - t quorum of distinct senders. *)
    match Lintkit.Trace_lint.audit ~decision_quorum:(n - t) config with
    | [] -> Format.printf "  trace lint: clean@."
    | violations ->
        List.iter
          (fun v -> Format.printf "  trace lint: %a@." Lintkit.Trace_lint.pp_violation v)
          violations

let () =
  let n = 7 in
  Format.printf "Byzantine adversary vs Ben-Or (bare votes) and Bracha (RBC), n = %d.@.@." n;
  List.iter
    (fun flavour ->
      run_protocol "ben-or" (Protocols.Ben_or.protocol ()) ~n ~t:1 ~corrupt:[ 0 ]
        ~flavour ~seed:3;
      run_protocol "bracha" (Protocols.Bracha.protocol ()) ~n ~t:2 ~corrupt:[ 0; 1 ]
        ~flavour ~seed:3;
      run_protocol "bracha-validated"
        (Protocols.Bracha.protocol ~validated:true ())
        ~n ~t:2 ~corrupt:[ 0; 1 ] ~flavour ~seed:3)
    [ Adversary.Byzantine.Silent; Adversary.Byzantine.Flip; Adversary.Byzantine.Equivocate ];
  Format.printf
    "Safety (agreement/validity) holds throughout for Bracha: reliable@,\
     broadcast prevents equivocation from splitting decisions.  Liveness@,\
     is where the layers show: at the resilience boundary t = (n-1)/3@,\
     the vote-flipping adversary stalls plain Bracha (budget exhausted@,\
     above), while the validation filter — which quarantines votes not@,\
     justified by the validator's own prior-phase view — restores prompt@,\
     decisions.  That is precisely the role Bracha's validation plays.@,\
     The strongly adaptive adversary of the paper notably LACKS this@,\
     corruption power: it can erase memories (resets) but cannot make a@,\
     processor lie about its coins — the two adversaries are incomparable@,\
     (Section 2).@."
