lib/prng/stream.mli:
