lib/prng/splitmix.mli:
