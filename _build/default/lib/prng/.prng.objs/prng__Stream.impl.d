lib/prng/stream.ml: Array Hashtbl Int64 List Splitmix
