(** A structural reproduction of the fast-but-imperfect committee
    algorithm of Kapron, Kempe, King, Saia and Sanwalani (SODA 2008),
    the contrast the paper's introduction draws against.

    The real algorithm iteratively divides the processors into small
    committees that run a slow election protocol to select random
    subsets continuing into new committees; a single final committee
    runs Bracha's algorithm and informs everyone.  It is polylog-round
    and tolerates [t < (1/3 - eps) n] *non-adaptive* Byzantine failures,
    but has a non-zero probability of an invalid result (the final
    committee may be mostly faulty), and an *adaptive* adversary defeats
    it outright by corrupting the final committee once it is known.

    We reproduce the committee tree and its failure probability at the
    structural level: elections inside a committee with fewer than one
    third corrupt members select uniformly; elections in a corrupted
    committee are biased by the adversary toward corrupt members.  The
    final committee genuinely runs our {!Bracha} implementation on the
    simulation engine.  Per-level election cost is charged as a fixed
    number of rounds (the election sub-protocol itself is out of scope —
    recorded as a substitution in DESIGN.md). *)

type params = {
  committee_size : int;  (** Target committee size (≈ polylog n). *)
  election_rounds : int;  (** Rounds charged per tree level. *)
  adaptive_attack : bool;
      (** Let the adversary corrupt the final committee after it is
          determined — the attack the paper says breaks this approach. *)
  seed : int;
}

val default_params : n:int -> seed:int -> params
(** [committee_size = max 4 (2 * ceil (log2 n))], 3 election rounds,
    no adaptive attack. *)

type report = {
  levels : int;  (** Depth of the committee tree. *)
  rounds : int;  (** Total rounds charged, including the final run. *)
  final_committee : int list;
  final_bad_fraction : float;
  decision : bool option;  (** [None]: the final run failed to decide. *)
  valid : bool;  (** Decision equals some processor's input. *)
  hijacked : bool;
      (** The adversary controlled the final committee and dictated the
          result. *)
}

val run : params -> n:int -> corrupt:int list -> inputs:bool array -> report
(** Simulate one execution.  [corrupt] is the non-adaptive Byzantine
    set, fixed before the protocol starts. *)
