(** Vote counting with per-sender deduplication.

    Every round-based protocol in this library waits for a threshold of
    messages "from distinct processors"; a tally records at most one
    vote per sender, ignoring later duplicates (the dedicated-channel
    model means a correct processor sends each round's vote once, but
    adversarial re-delivery must not double count). *)

type t

val empty : t

val add : t -> src:int -> bool -> t
(** Record [src]'s vote; a second vote from the same sender is ignored. *)

val count : t -> int
(** Number of distinct senders recorded. *)

val count_value : t -> bool -> int
(** Votes for a specific bit. *)

val majority_value : t -> bool option
(** The bit with strictly more votes than its complement, if any. *)

val best_value : t -> (bool * int) option
(** The bit with the most votes and its count (ties broken toward
    [false] for determinism); [None] when empty. *)

val has_src : t -> int -> bool
val srcs : t -> int list
val fingerprint : t -> string
(** Canonical string, for state serialization. *)
