(** The threshold calculus of Theorem 4.

    The paper's variant algorithm is parameterized by three thresholds
    [T1 >= T2 >= T3].  Theorem 4 proves measure-one correctness and
    termination against the strongly adaptive adversary when

    - [n - 2t >= T1 >= T2 >= T3 + t]  (progress through windows), and
    - [2 * T3 > n]                    (no conflicting deterministic sets),

    which also forces [2 * T2 > n] (no conflicting decisions) and
    [2 * T3 > T1] (step 3 of the algorithm is well defined).  These are
    simultaneously satisfiable exactly when [t < n / 6]. *)

type t = {
  t1 : int;  (** Messages to wait for each round. *)
  t2 : int;  (** Matching votes required to decide. *)
  t3 : int;  (** Matching votes required to adopt deterministically. *)
}

val default : n:int -> t:int -> t
(** Theorem 4's instantiation: [T1 = T2 = n - 2t], [T3 = n - 3t].
    Raises [Invalid_argument] when no valid thresholds exist
    (i.e. when [t >= n / 6] or parameters are out of range). *)

val validate : n:int -> t:int -> t -> (unit, string) result
(** Check the full constraint system above. *)

val feasible : n:int -> t:int -> bool
(** Whether any valid threshold triple exists for these parameters. *)

val max_fault_bound : n:int -> int
(** The largest [t] for which thresholds exist: the biggest [t] with
    [6 * t < n] (and [t >= 0]). *)

val relaxed : n:int -> t:int -> t
(** The loosest valid triple: [T3 = n/2 + 1] (a bare majority) and
    [T2 = T3 + t], which the paper notes improves running time when [t]
    is small (decisions need a weaker super-majority).  Raises like
    {!default} when no valid triple exists. *)

val pp : Format.formatter -> t -> unit
