lib/protocols/tally.ml: Int List Map Printf String
