lib/protocols/committee.ml: Array Bracha Dsim List Prng Queue
