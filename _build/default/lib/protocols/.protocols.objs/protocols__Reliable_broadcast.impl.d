lib/protocols/reliable_broadcast.ml: Int List Map Option Printf String
