lib/protocols/reliable_broadcast.mli:
