lib/protocols/tally.mli:
