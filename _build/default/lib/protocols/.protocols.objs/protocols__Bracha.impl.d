lib/protocols/bracha.ml: Dsim Format Int List Map Option Printf Prng Reliable_broadcast String
