lib/protocols/thresholds.ml: Format Printf
