lib/protocols/ben_or.mli: Dsim
