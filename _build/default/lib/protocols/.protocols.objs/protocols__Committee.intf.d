lib/protocols/committee.mli:
