lib/protocols/classifier.mli: Dsim Format
