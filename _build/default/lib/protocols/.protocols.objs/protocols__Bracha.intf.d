lib/protocols/bracha.mli: Dsim Reliable_broadcast
