lib/protocols/ben_or.ml: Dsim Format Int List Map Option Printf Prng String Tally
