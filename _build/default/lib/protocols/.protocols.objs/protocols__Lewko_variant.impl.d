lib/protocols/lewko_variant.ml: Dsim Format Int List Map Option Printf Prng String Tally Thresholds
