lib/protocols/classifier.ml: Array Dsim Format Hashtbl List Printf String
