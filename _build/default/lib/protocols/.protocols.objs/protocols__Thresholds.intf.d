lib/protocols/thresholds.mli: Format
