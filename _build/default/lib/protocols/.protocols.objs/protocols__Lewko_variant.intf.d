lib/protocols/lewko_variant.mli: Dsim Prng Thresholds
