(** Dynamic classification of algorithms against Definitions 15 and 16.

    Theorem 17's lower bound applies to algorithms that are *forgetful*
    (messages depend only on the input bit plus messages and randomness
    received since the previous sending event) and *fully communicative*
    (receiving the latest messages from [n - t] processors triggers a
    send to all [n]).  These are semantic properties; a dynamic analysis
    can falsify them but not prove them, so verdicts are
    "no counterexample found" versus a concrete counterexample.

    Method:
    - {e fully communicative}: run windowed executions (full delivery,
      then silencing [t]); after every window in which a processor
      received at least [n - t] fresh messages, check that its next
      sending step emits messages to all [n] processors.
    - {e forgetful}: collect, across many randomized executions, pairs
      (observable core, messages emitted at the next sending step).
      The observable core — round, phase, estimate, input — is what a
      forgetful round-based algorithm's sends may depend on; two equal
      cores emitting different message sets witness hidden long-term
      memory.  (The witness is sound for the protocols in this library,
      whose per-send randomness is only the step-3 coin already folded
      into the estimate.) *)

type verdict =
  | No_counterexample of int  (** Trials performed without a violation. *)
  | Counterexample of string  (** Human-readable witness. *)

type report = {
  protocol_name : string;
  declared_forgetful : bool;
  declared_fully_communicative : bool;
  forgetful : verdict;
  fully_communicative : verdict;
}

val check :
  ('s, 'm) Dsim.Protocol.t ->
  n:int ->
  t:int ->
  seeds:int list ->
  windows_per_run:int ->
  report

val consistent : report -> bool
(** Declared properties are not contradicted by the dynamic evidence:
    a declared-true property found a counterexample means [false];
    everything else is consistent. *)

val pp_report : Format.formatter -> report -> unit
