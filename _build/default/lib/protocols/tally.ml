module Int_map = Map.Make (Int)

type t = { votes : bool Int_map.t; zeros : int; ones : int }

let empty = { votes = Int_map.empty; zeros = 0; ones = 0 }

let add t ~src value =
  if Int_map.mem src t.votes then t
  else
    {
      votes = Int_map.add src value t.votes;
      zeros = (t.zeros + if value then 0 else 1);
      ones = (t.ones + if value then 1 else 0);
    }

let count t = t.zeros + t.ones
let count_value t value = if value then t.ones else t.zeros

let majority_value t =
  if t.ones > t.zeros then Some true else if t.zeros > t.ones then Some false else None

let best_value t =
  if count t = 0 then None
  else if t.ones > t.zeros then Some (true, t.ones)
  else Some (false, t.zeros)

let has_src t src = Int_map.mem src t.votes
let srcs t = List.map fst (Int_map.bindings t.votes)

let fingerprint t =
  Int_map.bindings t.votes
  |> List.map (fun (src, v) -> Printf.sprintf "%d:%d" src (if v then 1 else 0))
  |> String.concat ","
