(** The paper's Section 3 algorithm: a Ben-Or/Bracha-style randomized
    agreement protocol that tolerates the strongly adaptive (resetting)
    adversary for [t < n/6].

    Per round [r], a processor broadcasts [(r, x)] and waits for [T1]
    round-[r] votes.  If [T2] of them agree on [v] it writes [v] to its
    output bit; if [T3] agree on [v] it adopts [x := v]; otherwise it
    adopts a fresh random bit.  Then it advances to round [r + 1].

    A reset processor (detectable, per the model) refrains from sending;
    it waits until it has seen [T1] votes sharing a common round [r],
    adopts that round, runs the same step-3 rule on those votes, and
    resumes normal operation at round [r + 1].

    Theorem 4: with [n - 2t >= T1 >= T2 >= T3 + t] and [2*T3 > n] this
    achieves measure-one correctness and termination against every
    strongly adaptive adversary — at exponential cost in the worst case
    (Section 3's closing remark, reproduced by experiment E2). *)

type message = { round : int; value : bool }

type state

val protocol :
  ?thresholds:Thresholds.t ->
  ?coin:(Prng.Stream.t -> bool) ->
  unit ->
  (state, message) Dsim.Protocol.t
(** Thresholds default to [Thresholds.default] for the engine's
    [(n, t)]; raises at [init] time when the triple is infeasible or
    fails validation.

    [coin] replaces the step-3 fallback coin; the default is a fair
    local coin.  Passing a constant function derandomizes the algorithm
    — the resulting deterministic protocol is exactly what the FLP
    impossibility (and the paper's introduction) says cannot always
    terminate: the balancing adversary keeps it undecided forever
    (see [examples/flp_determinism.ml]). *)

(* Exposed for white-box tests. *)

val round_of_state : state -> int
(** Current round; [-1] while recovering from a reset. *)

val estimate_of_state : state -> bool option
val pending_votes : state -> round:int -> int
(** Distinct votes collected so far for the given round. *)
