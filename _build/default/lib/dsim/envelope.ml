type 'm t = {
  id : int;
  src : int;
  dst : int;
  payload : 'm;
  depth : int;
  sent_at_step : int;
  sent_in_window : int;
}

let pp pp_payload ppf e =
  Format.fprintf ppf "#%d %d->%d depth=%d {%a}" e.id e.src e.dst e.depth pp_payload
    e.payload
