type stop_condition = [ `First_decision | `All_decided | `Never ]

type halt_reason =
  | Stopped
  | Adversary_halted
  | Budget_exhausted
  | Invalid_window of string

type outcome = {
  reason : halt_reason;
  steps : int;
  windows : int;
  decided : (int * bool) list;
  first_decision : (int * bool * int * int * int) option;
  conflict : bool;
  total_resets : int;
  total_crashes : int;
  messages_sent : int;
  messages_delivered : int;
  max_chain_depth : int;
}

let outcome_of_config config ~reason =
  let trace = Engine.trace config in
  {
    reason;
    steps = Engine.step_index config;
    windows = Engine.window_index config;
    decided = Engine.decided_values config;
    first_decision = Trace.first_decision trace;
    conflict = Engine.decision_conflict config;
    total_resets = Trace.resets trace;
    total_crashes = Trace.crashes trace;
    messages_sent = Trace.sent trace;
    messages_delivered = Trace.delivered trace;
    max_chain_depth = Engine.max_chain_depth config;
  }

let stop_satisfied config = function
  | `First_decision -> Engine.some_decided config
  | `All_decided -> Engine.all_decided config
  | `Never -> false

let run_windows config ~strategy ~max_windows ~stop =
  let n = Engine.n config and t = Engine.fault_bound config in
  let rec loop remaining =
    if stop_satisfied config stop then outcome_of_config config ~reason:Stopped
    else if remaining <= 0 then outcome_of_config config ~reason:Budget_exhausted
    else
      match strategy config with
      | None -> outcome_of_config config ~reason:Adversary_halted
      | Some window -> (
          match Window.validate ~n ~t window with
          | Error message -> outcome_of_config config ~reason:(Invalid_window message)
          | Ok () ->
              Engine.apply_window config window;
              loop (remaining - 1))
  in
  loop max_windows

let run_steps config ~strategy ~max_steps ~stop =
  let rec loop remaining =
    if stop_satisfied config stop then outcome_of_config config ~reason:Stopped
    else if remaining <= 0 then outcome_of_config config ~reason:Budget_exhausted
    else
      match strategy config with
      | None -> outcome_of_config config ~reason:Adversary_halted
      | Some step ->
          Engine.apply config step;
          loop (remaining - 1)
  in
  loop max_steps

let pp_reason ppf = function
  | Stopped -> Format.pp_print_string ppf "stopped"
  | Adversary_halted -> Format.pp_print_string ppf "adversary-halted"
  | Budget_exhausted -> Format.pp_print_string ppf "budget-exhausted"
  | Invalid_window m -> Format.fprintf ppf "invalid-window(%s)" m

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>reason=%a steps=%d windows=%d decided=%d conflict=%b resets=%d sent=%d \
     delivered=%d chain=%d@]"
    pp_reason o.reason o.steps o.windows (List.length o.decided) o.conflict
    o.total_resets o.messages_sent o.messages_delivered o.max_chain_depth
