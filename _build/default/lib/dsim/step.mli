(** The fine-grained steps of Section 2's execution model.

    An execution is a sequence of these, chosen by the adversary.  The
    three step kinds of the strongly adaptive model (sending, receiving,
    resetting) are joined by the crash and corruption steps needed for
    the classical models of Section 5 and the Byzantine baseline. *)

type 'm t =
  | Send of int
      (** Processor places its complete outgoing response in the buffer.
          A second consecutive [Send] with no intervening delivery or
          reset is a no-op, as the model requires. *)
  | Deliver of int  (** Deliver the buffered message with this id. *)
  | Drop of int
      (** Remove a buffered message without delivering it.  Legal for
          the resetting adversary (messages of reset processors) and for
          the crash adversary (messages to crashed processors). *)
  | Reset of int  (** Erase a processor's memory (resetting failure). *)
  | Crash of int  (** Permanently stop a processor (crash failure). *)
  | Corrupt of int * 'm
      (** Byzantine corruption: rewrite buffered message [id] in place. *)

val pp : (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
