(** Execution loops: drive a configuration with an adversary until a
    stopping condition.

    Two disciplines, matching the paper's two settings:
    - {!run_windows}: the strongly adaptive model, where the adversary
      supplies one acceptable window at a time (Definition 1);
    - {!run_steps}: the classical free-running asynchronous model used
      for the crash and Byzantine baselines, where the adversary
      supplies one fine-grained step at a time. *)

type stop_condition =
  [ `First_decision  (** Stop when any processor writes its output. *)
  | `All_decided  (** Stop when every live processor has decided. *)
  | `Never  (** Run until the adversary halts or the budget runs out. *) ]

type halt_reason =
  | Stopped  (** The stop condition fired. *)
  | Adversary_halted  (** The strategy returned [None]. *)
  | Budget_exhausted  (** [max_windows] / [max_steps] reached. *)
  | Invalid_window of string  (** The strategy broke Definition 1. *)

type outcome = {
  reason : halt_reason;
  steps : int;
  windows : int;
  decided : (int * bool) list;  (** All written outputs at halt. *)
  first_decision : (int * bool * int * int * int) option;
      (** [(pid, value, step, window, chain_depth)]. *)
  conflict : bool;  (** Two opposite outputs exist: correctness broken. *)
  total_resets : int;
  total_crashes : int;
  messages_sent : int;
  messages_delivered : int;
  max_chain_depth : int;
}

val run_windows :
  ('s, 'm) Engine.t ->
  strategy:(('s, 'm) Engine.t -> Window.t option) ->
  max_windows:int ->
  stop:stop_condition ->
  outcome
(** Repeatedly asks the strategy for the next acceptable window and
    applies it.  Every window is validated against Definition 1; an
    invalid window aborts the run with [Invalid_window]. *)

val run_steps :
  ('s, 'm) Engine.t ->
  strategy:(('s, 'm) Engine.t -> 'm Step.t option) ->
  max_steps:int ->
  stop:stop_condition ->
  outcome
(** Free-running variant for the crash / Byzantine models. *)

val outcome_of_config : ('s, 'm) Engine.t -> reason:halt_reason -> outcome
(** Snapshot an outcome from the current configuration. *)

val pp_outcome : Format.formatter -> outcome -> unit
