(** Acceptable windows (Definition 1).

    An acceptable window is: all [n] processors take sending steps; then
    each processor [i] receives the messages just sent to it by the
    senders in a set [S_i] with [|S_i| >= n - t]; finally at most [t]
    resetting steps occur.  The strongly adaptive adversary is exactly
    the class of adversaries whose infinite executions decompose into
    adjacent disjoint acceptable windows. *)

type t = {
  receive_sets : int list array;
      (** [receive_sets.(i)] is [S_i]: the senders whose fresh messages
          processor [i] receives this window.  Sorted, duplicate-free. *)
  resets : int list;  (** The set [R] of processors reset at window end. *)
}

val make : receive_sets:int list array -> resets:int list -> t
(** Normalizes (sorts, dedups) but does not validate. *)

val uniform : n:int -> ?silenced:int list -> ?resets:int list -> unit -> t
(** The window the paper's proofs use: every processor receives from the
    same set [S = [n] \ silenced], then [resets] are applied.  With no
    arguments it is the fault-free fair window. *)

val hybrid : n:int -> j:int -> s0:int list -> s1:int list -> r0:int list -> r1:int list -> t
(** Lemma 14's interpolation: processors [0..j-1] use receive set [s0]
    and [j..n-1] use [s1]; the reset set is
    [r0 ∩ {0..j-1} ∪ r1 ∩ {j..t'-1}]-style mixing, here realized as
    [r0 ∩ [0,j) ∪ r1 ∩ [j,n)]. *)

val validate : n:int -> t:int -> t -> (unit, string) result
(** Checks Definition 1: every [S_i] within range with
    [|S_i| >= n - t], and [|R| <= t]. *)

val receive_set : t -> int -> int list
val is_fault_free : t -> n:int -> bool
val pp : Format.formatter -> t -> unit
