(** Machine-readable export of executions.

    One JSON object per line (JSON Lines), so traces stream into
    jq/pandas/duckdb without a parser dependency on our side.  Only
    events recorded by the trace are exported — construct the engine
    with [~record_events:true] to get the full event log; the summary
    line is always available. *)

val event_to_json : Trace.event -> string
(** A single-line JSON object with a ["type"] discriminator. *)

val summary_to_json : Trace.t -> string
(** One JSON object with the counters and the decision list. *)

val to_jsonl : Trace.t -> string
(** The summary line followed by every recorded event, newline
    separated (ends with a newline). *)

val write_file : path:string -> Trace.t -> unit
