(** A message in flight: payload plus routing and causal metadata. *)

type 'm t = {
  id : int;  (** Unique, monotonically increasing per execution. *)
  src : int;
  dst : int;
  payload : 'm;
  depth : int;
      (** Causal (message-chain) depth: 1 + the maximum depth among the
          messages the sender had received before sending this one.
          This realizes Section 5's running-time measure. *)
  sent_at_step : int;  (** Engine step index at which the send occurred. *)
  sent_in_window : int;  (** Window index at send time; [-1] outside windows. *)
}

val pp : (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
