lib/dsim/trace_export.ml: Buffer List Printf String Trace
