lib/dsim/step.mli: Format
