lib/dsim/runner.mli: Engine Format Step Window
