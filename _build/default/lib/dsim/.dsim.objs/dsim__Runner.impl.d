lib/dsim/runner.ml: Engine Format List Trace Window
