lib/dsim/envelope.ml: Format
