lib/dsim/window.mli: Format
