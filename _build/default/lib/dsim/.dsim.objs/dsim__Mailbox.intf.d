lib/dsim/mailbox.mli: Envelope
