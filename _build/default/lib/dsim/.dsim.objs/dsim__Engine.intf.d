lib/dsim/engine.mli: Mailbox Obs Prng Protocol Step Trace Window
