lib/dsim/trace_export.mli: Trace
