lib/dsim/mailbox.ml: Envelope Int List Map
