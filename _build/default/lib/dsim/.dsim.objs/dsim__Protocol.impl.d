lib/dsim/protocol.ml: Format Obs Prng
