lib/dsim/obs.ml: Format Option
