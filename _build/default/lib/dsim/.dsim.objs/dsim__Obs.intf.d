lib/dsim/obs.mli: Format
