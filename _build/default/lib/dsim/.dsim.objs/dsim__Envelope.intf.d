lib/dsim/envelope.mli: Format
