lib/dsim/protocol.mli: Format Obs Prng
