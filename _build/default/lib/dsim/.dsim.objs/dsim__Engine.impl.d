lib/dsim/engine.ml: Array Envelope Format List Mailbox Printf Prng Protocol Step String Trace Window
