lib/dsim/step.ml: Format
