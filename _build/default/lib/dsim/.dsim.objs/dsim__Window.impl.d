lib/dsim/window.ml: Array Format List Printf
