type 'm t =
  | Send of int
  | Deliver of int
  | Drop of int
  | Reset of int
  | Crash of int
  | Corrupt of int * 'm

let pp pp_payload ppf = function
  | Send p -> Format.fprintf ppf "send(p%d)" p
  | Deliver id -> Format.fprintf ppf "deliver(#%d)" id
  | Drop id -> Format.fprintf ppf "drop(#%d)" id
  | Reset p -> Format.fprintf ppf "reset(p%d)" p
  | Crash p -> Format.fprintf ppf "crash(p%d)" p
  | Corrupt (id, m) -> Format.fprintf ppf "corrupt(#%d, %a)" id pp_payload m
