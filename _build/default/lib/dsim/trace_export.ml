let event_to_json = function
  | Trace.Sent { src; dst; msg_id; depth } ->
      Printf.sprintf {|{"type":"sent","src":%d,"dst":%d,"msg_id":%d,"depth":%d}|} src
        dst msg_id depth
  | Trace.Delivered { src; dst; msg_id; depth } ->
      Printf.sprintf {|{"type":"delivered","src":%d,"dst":%d,"msg_id":%d,"depth":%d}|}
        src dst msg_id depth
  | Trace.Dropped { msg_id } -> Printf.sprintf {|{"type":"dropped","msg_id":%d}|} msg_id
  | Trace.Reset_done { pid } -> Printf.sprintf {|{"type":"reset","pid":%d}|} pid
  | Trace.Crashed { pid } -> Printf.sprintf {|{"type":"crashed","pid":%d}|} pid
  | Trace.Decided { pid; value; step; window; chain_depth } ->
      Printf.sprintf
        {|{"type":"decided","pid":%d,"value":%d,"step":%d,"window":%d,"chain_depth":%d}|}
        pid
        (if value then 1 else 0)
        step window chain_depth
  | Trace.Window_closed { index } ->
      Printf.sprintf {|{"type":"window_closed","index":%d}|} index

let summary_to_json trace =
  let decisions =
    Trace.decisions trace
    |> List.map (fun (pid, value, step, window, chain) ->
           Printf.sprintf {|{"pid":%d,"value":%d,"step":%d,"window":%d,"chain_depth":%d}|}
             pid
             (if value then 1 else 0)
             step window chain)
    |> String.concat ","
  in
  Printf.sprintf
    {|{"type":"summary","sent":%d,"delivered":%d,"dropped":%d,"resets":%d,"crashes":%d,"windows":%d,"decisions":[%s]}|}
    (Trace.sent trace) (Trace.delivered trace) (Trace.dropped trace)
    (Trace.resets trace) (Trace.crashes trace)
    (Trace.windows_closed trace)
    decisions

let to_jsonl trace =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (summary_to_json trace);
  Buffer.add_char buffer '\n';
  List.iter
    (fun event ->
      Buffer.add_string buffer (event_to_json event);
      Buffer.add_char buffer '\n')
    (Trace.events trace);
  Buffer.contents buffer

let write_file ~path trace =
  let oc = open_out path in
  output_string oc (to_jsonl trace);
  close_out oc
