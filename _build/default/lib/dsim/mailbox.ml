module Int_map = Map.Make (Int)

type 'm t = { mutable by_id : 'm Envelope.t Int_map.t }

let create () = { by_id = Int_map.empty }

let copy t = { by_id = t.by_id }

let add t envelope =
  if Int_map.mem envelope.Envelope.id t.by_id then
    invalid_arg "Mailbox.add: duplicate message id";
  t.by_id <- Int_map.add envelope.Envelope.id envelope t.by_id

let take t id =
  match Int_map.find_opt id t.by_id with
  | None -> None
  | Some envelope ->
      t.by_id <- Int_map.remove id t.by_id;
      Some envelope

let find t id = Int_map.find_opt id t.by_id

let replace_payload t id payload =
  match Int_map.find_opt id t.by_id with
  | None -> false
  | Some envelope ->
      t.by_id <- Int_map.add id { envelope with Envelope.payload } t.by_id;
      true

let size t = Int_map.cardinal t.by_id
let is_empty t = Int_map.is_empty t.by_id

let pending t = List.map snd (Int_map.bindings t.by_id)

let pending_for t ~dst = List.filter (fun e -> e.Envelope.dst = dst) (pending t)
let pending_from t ~src = List.filter (fun e -> e.Envelope.src = src) (pending t)
let pending_ids t = List.map fst (Int_map.bindings t.by_id)

let filter_ids t f =
  Int_map.fold (fun id e acc -> if f e then id :: acc else acc) t.by_id []
  |> List.rev
