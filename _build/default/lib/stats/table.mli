(** Plain-text table rendering for experiment reports.

    Every experiment in the harness produces one of these; the bench and
    CLI print them, and EXPERIMENTS.md embeds their output. *)

type t

type cell = S of string | I of int | F of float | Pct of float | B of bool

val create : title:string -> columns:string list -> t
val add_row : t -> cell list -> unit
(** Rows must have as many cells as there are columns. *)

val row_count : t -> int
val to_string : t -> string

val to_csv : t -> string
(** RFC-4180-ish CSV: header row then data rows; cells containing
    commas, quotes or newlines are quoted.  Percentages are emitted as
    fractions, booleans as [true]/[false]. *)

val pp : Format.formatter -> t -> unit

val cell_to_string : cell -> string
