type t = {
  count : int;
  mean : float;
  m2 : float; (* sum of squared deviations from the running mean *)
  min_v : float;
  max_v : float;
  total : float;
}

let empty =
  { count = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; total = 0.0 }

let add t x =
  let count = t.count + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int count) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  {
    count;
    mean;
    m2;
    min_v = Float.min t.min_v x;
    max_v = Float.max t.max_v x;
    total = t.total +. x;
  }

let add_int t n = add t (float_of_int n)

let of_list xs = List.fold_left add empty xs
let of_int_list xs = List.fold_left add_int empty xs

let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.count = 0 then nan else t.min_v
let max_value t = if t.count = 0 then nan else t.max_v
let total t = t.total

let std_error t =
  if t.count < 2 then nan else stddev t /. sqrt (float_of_int t.count)

let ci95_half_width t = 1.96 *. std_error t

(* Chan et al. parallel-merge formulas. *)
let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    let count = a.count + b.count in
    let fa = float_of_int a.count and fb = float_of_int b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int count) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int count) in
    {
      count;
      mean;
      m2;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      total = a.total +. b.total;
    }

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.count (mean t)
      (stddev t) t.min_v t.max_v
