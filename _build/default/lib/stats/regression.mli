(** Least-squares fits used to report scaling exponents.

    E2/E3 fit [log2 E[windows]] against [n] to exhibit the exponential
    running time; E9 fits rounds against [log n] to exhibit polylog
    behaviour of the committee algorithm. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination. *)
  n_points : int;
}

val linear : (float * float) list -> fit
(** Ordinary least squares on [(x, y)] pairs; requires at least two
    points with distinct [x]. *)

val log2_linear : (float * float) list -> fit
(** Fit [log2 y = slope * x + intercept]; drops non-positive [y].
    For exponential data [y ~ 2^(a n)], [slope] recovers [a]. *)

val loglog : (float * float) list -> fit
(** Fit [log2 y = slope * log2 x + intercept]; drops non-positive
    coordinates.  For polynomial data the slope recovers the degree. *)

val pp_fit : Format.formatter -> fit -> unit
