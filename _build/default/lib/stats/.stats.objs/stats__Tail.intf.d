lib/stats/tail.mli:
