lib/stats/tail.ml: Array Float
