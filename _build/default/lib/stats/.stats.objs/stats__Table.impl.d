lib/stats/table.ml: Buffer Float Format List Printf String
