lib/stats/regression.ml: Format List
