(** Streaming univariate summary statistics (Welford's algorithm).

    Used by the experiment harness to aggregate per-seed measurements
    (windows to decision, chain length, error indicators) without
    retaining the raw samples. *)

type t
(** Accumulated summary; immutable, add returns a new value. *)

val empty : t

val add : t -> float -> t
(** Fold in one observation. *)

val add_int : t -> int -> t

val of_list : float list -> t
val of_int_list : int list -> t

val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] when fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val total : t -> float

val std_error : t -> float
(** Standard error of the mean. *)

val ci95_half_width : t -> float
(** Half width of a normal-approximation 95% confidence interval for the
    mean ([1.96 * std_error]). *)

val merge : t -> t -> t
(** Combine two summaries as if all observations were folded into one. *)

val pp : Format.formatter -> t -> unit
