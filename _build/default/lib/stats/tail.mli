(** Exact and asymptotic tail bounds for sums of independent bits.

    The paper's running-time analysis reduces to the probability that
    [n] independent fair coins deviate far from the mean (Section 3's
    exponential-time remark) and to Talagrand's product-measure bound
    (Lemma 9).  This module supplies exact binomial tails (for the
    small-[n] experiments), Chernoff/Hoeffding bounds, and the paper's
    own threshold expressions. *)

val log_choose : int -> int -> float
(** [log_choose n k] = natural log of the binomial coefficient C(n, k).
    Computed via [lgamma]-style summation; exact enough for n <= 10^6. *)

val binomial_tail_ge : int -> float -> int -> float
(** [binomial_tail_ge n p k] = P[Bin(n, p) >= k], summed exactly in
    log-space.  Monotone and in [0, 1]. *)

val binomial_pmf : int -> float -> int -> float
(** P[Bin(n, p) = k]. *)

val hoeffding_upper : int -> float -> float
(** [hoeffding_upper n eps] = exp(-2 n eps^2), a bound on
    P[mean deviation >= eps] for n independent bits. *)

val talagrand_bound : n:int -> d:float -> float
(** Lemma 9's right-hand side: [exp (-. d^2 /. (4 n))]. *)

val eta : n:int -> t:int -> float
(** The paper's [eta := exp (-(t-1)^2 / 8n)] from Lemma 14. *)

val tau : n:int -> t:int -> float
(** The paper's threshold [tau := exp (-t^2 / 8n)] from Lemma 13. *)

val majority_success_probability : n:int -> threshold:int -> float
(** Probability that [n] fresh fair coins produce at least [threshold]
    equal values of a *specific* bit — the per-round chance that the
    variant algorithm escapes the balancing adversary with bit 1, say.
    Equals [binomial_tail_ge n 0.5 threshold]. *)

val all_agree_probability : int -> float
(** [2^(1-n)]: probability all [n] fresh coins agree (either way) —
    the termination driver in Theorem 4's proof. *)
