(* log Gamma via Lanczos approximation; accurate to ~1e-13 for x > 0. *)
let log_gamma x =
  let coefficients =
    [|
      76.18009172947146; -86.50532032941677; 24.01409824083091; -1.231739572450155;
      0.1208650973866179e-2; -0.5395239384953e-5;
    |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let series = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      series := !series +. (c /. !y))
    coefficients;
  -.tmp +. log (2.5066282746310005 *. !series /. x)

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else if k = 0 || k = n then 0.0
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

let binomial_pmf n p k =
  if k < 0 || k > n then 0.0
  else if p <= 0.0 then if k = 0 then 1.0 else 0.0
  else if p >= 1.0 then if k = n then 1.0 else 0.0
  else
    exp
      (log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log (1.0 -. p)))

let binomial_tail_ge n p k =
  if k <= 0 then 1.0
  else if k > n then 0.0
  else begin
    (* Sum the PMF from k to n; summing from the smallest terms first
       keeps the floating-point error down. *)
    let acc = ref 0.0 in
    for i = n downto k do
      acc := !acc +. binomial_pmf n p i
    done;
    Float.min 1.0 !acc
  end

let hoeffding_upper n eps = exp (-2.0 *. float_of_int n *. eps *. eps)

let talagrand_bound ~n ~d = exp (-.(d *. d) /. (4.0 *. float_of_int n))

let eta ~n ~t =
  let tf = float_of_int (t - 1) in
  exp (-.(tf *. tf) /. (8.0 *. float_of_int n))

let tau ~n ~t =
  let tf = float_of_int t in
  exp (-.(tf *. tf) /. (8.0 *. float_of_int n))

let majority_success_probability ~n ~threshold = binomial_tail_ge n 0.5 threshold

let all_agree_probability n =
  if n <= 0 then 1.0 else 2.0 ** float_of_int (1 - n)
