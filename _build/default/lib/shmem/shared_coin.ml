type scheduler = Round_robin | Random of int | Stalling

type result = {
  outputs : bool option array;
  agreed : bool;
  total_steps : int;
  steps_per_processor : float;
  max_abs_sum : int;
}

(* Per-processor program counter: either about to flip-and-write, or
   mid-collect with an index and a running partial sum.  Collects are
   amortized — one every [collect_every] flips — which is what brings
   the total work down to O(n^2) (collecting after every flip would
   cost O(n^3); cf. Bracha-Rachman / Attiya-Censor). *)
type phase =
  | Flip
  | Collect of { next : int; partial : int }

type pstate = {
  mutable phase : phase;
  mutable net : int;  (* this processor's net contribution *)
  mutable flips_since_collect : int;
  mutable output : bool option;
}

let run ?collect_every ~n ~threshold_factor ~seed ~scheduler ~max_steps () =
  if n <= 0 then invalid_arg "Shared_coin.run: n must be positive";
  let collect_every = Option.value ~default:(max 1 (n / 4)) collect_every in
  let registers = Registers.create ~n in
  let root = Prng.Stream.root seed in
  let rngs = Array.init n (fun i -> Prng.Stream.derive root i) in
  let scheduler_rng = Prng.Stream.derive root (n + 1) in
  let threshold =
    max 1 (int_of_float (ceil (threshold_factor *. float_of_int n)))
  in
  let procs =
    Array.init n (fun _ ->
        { phase = Flip; net = 0; flips_since_collect = 0; output = None })
  in
  let unfinished () =
    Array.to_list procs
    |> List.mapi (fun p s -> (p, s))
    |> List.filter_map (fun (p, s) -> if s.output = None then Some p else None)
  in
  let max_abs = ref 0 in
  (* One atomic step of processor p. *)
  let step p =
    let s = procs.(p) in
    match s.phase with
    | Flip ->
        let delta = if Prng.Stream.bool rngs.(p) then 1 else -1 in
        s.net <- s.net + delta;
        Registers.write registers ~writer:p s.net;
        max_abs := max !max_abs (abs (Registers.sum registers));
        s.flips_since_collect <- s.flips_since_collect + 1;
        if s.flips_since_collect >= collect_every then begin
          s.flips_since_collect <- 0;
          s.phase <- Collect { next = 0; partial = 0 }
        end
    | Collect { next; partial } ->
        let partial = partial + Registers.read registers ~reader:p ~owner:next in
        if next + 1 < n then s.phase <- Collect { next = next + 1; partial }
        else begin
          s.phase <- Flip;
          if abs partial >= threshold then s.output <- Some (partial > 0)
        end
  in
  let pick_round_robin =
    let cursor = ref 0 in
    fun candidates ->
      let k = List.length candidates in
      let choice = List.nth candidates (!cursor mod k) in
      incr cursor;
      choice
  in
  let pick candidates =
    match scheduler with
    | Round_robin -> pick_round_robin candidates
    | Random _ ->
        List.nth candidates (Prng.Stream.int_below scheduler_rng (List.length candidates))
    | Stalling ->
        (* Prefer a collector that is far from finishing; otherwise any
           flipper (their coin is unknown, so stalling them is the only
           lever: keep the race slow and collects stale). *)
        let score p =
          match procs.(p).phase with
          | Collect { next; _ } -> next (* earlier in collect = slower to finish *)
          | Flip -> n
        in
        List.fold_left
          (fun best p -> if score p < score best then p else best)
          (List.hd candidates) candidates
  in
  let rec loop () =
    if Registers.operations registers >= max_steps then ()
    else
      match unfinished () with
      | [] -> ()
      | candidates ->
          step (pick candidates);
          loop ()
  in
  loop ();
  let outputs = Array.map (fun s -> s.output) procs in
  let finishing = Array.to_list outputs |> List.filter_map (fun o -> o) in
  let agreed =
    match finishing with
    | [] -> true
    | first :: rest -> List.for_all (fun v -> v = first) rest
  in
  let total_steps = Registers.operations registers in
  {
    outputs;
    agreed;
    total_steps;
    steps_per_processor = float_of_int total_steps /. float_of_int n;
    max_abs_sum = !max_abs;
  }
