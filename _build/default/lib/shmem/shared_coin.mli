(** The counter-race weak shared coin (Aspnes–Herlihy style) over
    single-writer registers, against an adversarial scheduler.

    Each processor alternates between (a) flipping a local coin and
    adding ±1 to its own register, and (b) collecting — reading all [n]
    registers one step at a time; when a collect shows total net votes
    [|sum| >= threshold_factor * n], the processor outputs the sign.

    With [threshold_factor] a constant [K], the random walk needs
    [Theta((Kn)^2)] flips to escape [±Kn], spread over [n] processors
    with [n]-step collects: total step complexity [Theta(n^2)] per
    unit of [K^2] — the shape Attiya and Censor prove tight [5].  The
    coin is *weak*: all processors agree on the output with constant
    probability bounded away from 1/2 regardless of scheduling, because
    once one processor sees [|sum| >= Kn] no later collect can see the
    opposite threshold until the walk crosses [2Kn] more steps...
    which the adversary can only cause by scheduling [Omega(Kn)] more
    flips, each a fair coin.

    The scheduler decides which processor takes the next atomic step,
    with full information (it can inspect the registers for free). *)

type scheduler =
  | Round_robin
  | Random of int  (** Uniform among unfinished processors (seed). *)
  | Stalling
      (** Full-information attack: prefer to schedule processors whose
          pending write pushes the race back toward zero, and among
          collectors the ones farthest from finishing, dragging the
          race out. *)

type result = {
  outputs : bool option array;  (** Per processor; [None] = never finished. *)
  agreed : bool;  (** All finishing processors output the same sign. *)
  total_steps : int;  (** Counted register operations. *)
  steps_per_processor : float;
  max_abs_sum : int;  (** How far the race wandered. *)
}

val run :
  ?collect_every:int ->
  n:int ->
  threshold_factor:float ->
  seed:int ->
  scheduler:scheduler ->
  max_steps:int ->
  unit ->
  result
(** Runs until every processor has output or [max_steps] counted
    operations elapse.  [collect_every] (default [n/4]) is the number
    of flips between collects — the amortization that makes total work
    [O(n^2)] rather than [O(n^3)]. *)
