(** Single-writer multi-reader atomic registers with operation
    accounting.

    The substrate for the shared-memory results the paper's related
    work discusses (Aspnes [3]; Attiya and Censor [5] prove tight
    total-step bounds for randomized consensus here).  Each processor
    owns one integer register; reads and writes are atomic and counted
    per processor, since step complexity *is* the measured quantity. *)

type t

val create : n:int -> t

val read : t -> reader:int -> owner:int -> int
(** Atomic read of [owner]'s register; counted against [reader]. *)

val write : t -> writer:int -> int -> unit
(** Atomic write of the writer's own register; counted.  Writing
    another processor's register raises (single-writer). *)

val peek : t -> int -> int
(** Uncounted read for adversaries and test oracles (the adversary has
    full information for free). *)

val sum : t -> int
(** Uncounted sum of all registers. *)

val operations : t -> int
(** Total counted operations across processors. *)

val operations_of : t -> int -> int

val copy : t -> t
