lib/shmem/shared_coin.ml: Array List Option Prng Registers
