lib/shmem/sm_consensus.ml: Array Hashtbl List Prng Registers Shared_coin
