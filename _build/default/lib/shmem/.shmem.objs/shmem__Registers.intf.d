lib/shmem/registers.mli:
