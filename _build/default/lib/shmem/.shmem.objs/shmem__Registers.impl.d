lib/shmem/registers.ml: Array
