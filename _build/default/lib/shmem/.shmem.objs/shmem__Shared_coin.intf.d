lib/shmem/shared_coin.mli:
