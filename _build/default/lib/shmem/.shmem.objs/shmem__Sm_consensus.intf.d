lib/shmem/sm_consensus.mli: Shared_coin
