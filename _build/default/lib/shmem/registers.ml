type t = {
  values : int array;
  op_counts : int array;
}

let create ~n =
  if n <= 0 then invalid_arg "Registers.create: n must be positive";
  { values = Array.make n 0; op_counts = Array.make n 0 }

let count t p = t.op_counts.(p) <- t.op_counts.(p) + 1

let read t ~reader ~owner =
  count t reader;
  t.values.(owner)

let write t ~writer value =
  count t writer;
  t.values.(writer) <- value

let peek t owner = t.values.(owner)

let sum t = Array.fold_left ( + ) 0 t.values

let operations t = Array.fold_left ( + ) 0 t.op_counts

let operations_of t p = t.op_counts.(p)

let copy t = { values = Array.copy t.values; op_counts = Array.copy t.op_counts }
