(** Wait-free randomized consensus from single-writer registers and the
    counter-race shared coin — the Aspnes–Herlihy round structure over
    the substrate of [3, 5].

    Each processor repeatedly: publishes its (round, preference) in its
    register; collects everyone's; catches up to the maximum round it
    saw (adopting that round's preference); and then

    - decides [v] if every processor it saw at rounds [>= r - 1]
      preferred [v] (the classic two-round agreement window);
    - advances to round [r + 1] keeping [v] if round-[r] entries all
      agree on [v];
    - otherwise flips the round-[r] shared coin (one counter-race
      instance per round, shared by all processors) and advances.

    Against an adversarial scheduler the coin agreement probability is
    a constant, so the expected number of rounds is constant and the
    expected total work is dominated by the coins' [Theta(n^2)].

    Every register operation — the consensus registers and every coin's
    — is counted; {!result} reports the totals. *)

type scheduler = Shared_coin.scheduler

type result = {
  outputs : bool option array;
  agreed : bool;  (** All deciders decided the same value. *)
  valid : bool;  (** The decision equals some processor's input. *)
  rounds : int;  (** Highest round reached by any processor. *)
  total_steps : int;  (** Register operations, consensus + coins. *)
  coin_rounds : int;  (** Rounds whose shared coin was actually run. *)
}

val run :
  n:int ->
  inputs:bool array ->
  seed:int ->
  scheduler:scheduler ->
  max_steps:int ->
  unit ->
  result
