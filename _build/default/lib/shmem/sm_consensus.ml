type scheduler = Shared_coin.scheduler

type result = {
  outputs : bool option array;
  agreed : bool;
  valid : bool;
  rounds : int;
  total_steps : int;
  coin_rounds : int;
}

(* Register encoding: 0 = nothing published; positive = active at
   (round, preference) as round * 2 + bit; negative = decided with
   preference (-1 = decided 0, -2 = decided 1).  A decided processor's
   register must keep satisfying everyone's agreement window forever,
   hence the dedicated marker. *)
type entry = Active of int * bool | Decided_entry of bool

let encode ~round ~pref = (round * 2) + if pref then 1 else 0
let encode_decided pref = if pref then -2 else -1

let decode value =
  if value = 0 then None
  else if value < 0 then Some (Decided_entry (value = -2))
  else Some (Active (value / 2, value land 1 = 1))

(* One shared-coin instance (per consensus round): the counter-race of
   {!Shared_coin}, stepped one register operation at a time by whichever
   processor the scheduler runs. *)
type coin_phase = Coin_flip | Coin_collect of { next : int; partial : int }

type coin = {
  registers : Registers.t;
  phase : coin_phase array;
  net : int array;
  flips : int array;
  output : bool option array;
}

let make_coin ~n =
  {
    registers = Registers.create ~n;
    phase = Array.make n Coin_flip;
    net = Array.make n 0;
    flips = Array.make n 0;
    output = Array.make n None;
  }

(* One step of processor p in the coin; returns its output once known. *)
let coin_step coin ~n ~p ~rng =
  let collect_every = max 1 (n / 4) in
  let threshold = n in
  match coin.output.(p) with
  | Some _ as out -> out
  | None -> (
      match coin.phase.(p) with
      | Coin_flip ->
          let delta = if Prng.Stream.bool rng then 1 else -1 in
          coin.net.(p) <- coin.net.(p) + delta;
          Registers.write coin.registers ~writer:p coin.net.(p);
          coin.flips.(p) <- coin.flips.(p) + 1;
          if coin.flips.(p) >= collect_every then begin
            coin.flips.(p) <- 0;
            coin.phase.(p) <- Coin_collect { next = 0; partial = 0 }
          end;
          None
      | Coin_collect { next; partial } ->
          let partial = partial + Registers.read coin.registers ~reader:p ~owner:next in
          if next + 1 < n then begin
            coin.phase.(p) <- Coin_collect { next = next + 1; partial };
            None
          end
          else begin
            coin.phase.(p) <- Coin_flip;
            if abs partial >= threshold then coin.output.(p) <- Some (partial > 0);
            coin.output.(p)
          end)

type phase =
  | Publish
  | Collect of { next : int; seen : entry option array }
  | Coin  (* running the round's shared coin *)
  | Announce  (* write the decided marker, then stop *)
  | Done

type pstate = {
  mutable phase : phase;
  mutable round : int;
  mutable pref : bool;
  mutable output : bool option;
}

let run ~n ~inputs ~seed ~scheduler ~max_steps () =
  if Array.length inputs <> n then invalid_arg "Sm_consensus.run: |inputs| <> n";
  let registers = Registers.create ~n in
  let root = Prng.Stream.root seed in
  let rngs = Array.init n (fun i -> Prng.Stream.derive root i) in
  let scheduler_rng = Prng.Stream.derive root (n + 1) in
  let coins : (int, coin) Hashtbl.t = Hashtbl.create 8 in
  let coin_for round =
    match Hashtbl.find_opt coins round with
    | Some c -> c
    | None ->
        let c = make_coin ~n in
        Hashtbl.add coins round c;
        c
  in
  let procs =
    Array.init n (fun p ->
        { phase = Publish; round = 1; pref = inputs.(p); output = None })
  in
  let max_round = ref 1 in
  (* Local evaluation of a completed collect; free (no register ops). *)
  let evaluate p (seen : entry option array) =
    let s = procs.(p) in
    let decide v =
      s.output <- Some v;
      s.pref <- v;
      max_round := max !max_round s.round;
      s.phase <- Announce
    in
    let entries = Array.to_list seen |> List.filter_map (fun x -> x) in
    let decided_prefs =
      List.filter_map (function Decided_entry v -> Some v | Active _ -> None) entries
    in
    match decided_prefs with
    | v :: _ ->
        (* Decide by adoption: someone already decided, and the first
           decider's agreement window guarantees uniqueness. *)
        decide v
    | [] -> (
        let active =
          List.filter_map (function Active (r, v) -> Some (r, v) | Decided_entry _ -> None) entries
        in
        let maxr = List.fold_left (fun acc (r, _) -> max acc r) s.round active in
        if s.round < maxr then begin
          (* Catch up, adopting a maximal-round preference. *)
          let _, pref = List.find (fun (r, _) -> r = maxr) active in
          s.round <- maxr;
          s.pref <- pref;
          s.phase <- Publish
        end
        else begin
          let current = List.filter (fun (r, _) -> r = s.round) active in
          let all_same l =
            match l with
            | [] -> None
            | (_, v) :: rest ->
                if List.for_all (fun (_, w) -> w = v) rest then Some v else None
          in
          (* Deciding requires seeing EVERY processor inside the
             two-round agreement window with the same preference — a
             processor racing ahead alone must not decide off its own
             register. *)
          let decision =
            if
              List.length active = n
              && List.for_all (fun (r, _) -> r >= s.round - 1) active
            then all_same active
            else None
          in
          match decision with
          | Some v -> decide v
          | None -> (
              match all_same current with
              | Some v ->
                  s.pref <- v;
                  s.round <- s.round + 1;
                  max_round := max !max_round s.round;
                  s.phase <- Publish
              | None -> s.phase <- Coin)
        end)
  in
  let step p =
    let s = procs.(p) in
    match s.phase with
    | Done -> ()
    | Announce ->
        Registers.write registers ~writer:p (encode_decided s.pref);
        s.phase <- Done
    | Publish ->
        Registers.write registers ~writer:p (encode ~round:s.round ~pref:s.pref);
        s.phase <- Collect { next = 0; seen = Array.make n None }
    | Collect { next; seen } ->
        seen.(next) <- decode (Registers.read registers ~reader:p ~owner:next);
        if next + 1 < n then s.phase <- Collect { next = next + 1; seen }
        else evaluate p seen
    | Coin -> (
        match coin_step (coin_for s.round) ~n ~p ~rng:rngs.(p) with
        | None -> ()
        | Some v ->
            s.pref <- v;
            s.round <- s.round + 1;
            max_round := max !max_round s.round;
            s.phase <- Publish)
  in
  let total_ops () =
    Registers.operations registers
    + Hashtbl.fold (fun _ c acc -> acc + Registers.operations c.registers) coins 0
  in
  let unfinished () =
    Array.to_list procs
    |> List.mapi (fun p s -> (p, s))
    |> List.filter_map (fun (p, s) -> if s.phase <> Done then Some p else None)
  in
  let pick_round_robin =
    let cursor = ref 0 in
    fun candidates ->
      let k = List.length candidates in
      let choice = List.nth candidates (!cursor mod k) in
      incr cursor;
      choice
  in
  let pick candidates =
    match scheduler with
    | Shared_coin.Round_robin -> pick_round_robin candidates
    | Shared_coin.Random _ ->
        List.nth candidates (Prng.Stream.int_below scheduler_rng (List.length candidates))
    | Shared_coin.Stalling ->
        (* Prefer the processor farthest behind in rounds: keeps
           stragglers publishing stale preferences. *)
        List.fold_left
          (fun best p -> if procs.(p).round < procs.(best).round then p else best)
          (List.hd candidates) candidates
  in
  let rec loop () =
    if total_ops () >= max_steps then ()
    else
      match unfinished () with
      | [] -> ()
      | candidates ->
          step (pick candidates);
          loop ()
  in
  loop ();
  let outputs = Array.map (fun s -> s.output) procs in
  let decisions = Array.to_list outputs |> List.filter_map (fun o -> o) in
  let agreed =
    match decisions with
    | [] -> true
    | first :: rest -> List.for_all (fun v -> v = first) rest
  in
  let valid =
    List.for_all (fun v -> Array.exists (fun input -> input = v) inputs) decisions
  in
  {
    outputs;
    agreed;
    valid;
    rounds = !max_round;
    total_steps = total_ops ();
    coin_rounds = Hashtbl.length coins;
  }
