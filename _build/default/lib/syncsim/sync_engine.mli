(** A synchronous round-based execution engine with an adaptive,
    full-information crash adversary.

    This substrate reproduces the setting of Bar-Joseph and Ben-Or
    ("A tight lower bound for randomized synchronous consensus",
    PODC 1998) — the paper's reference [6], whose coin-flipping-game
    analysis via product-measure concentration parallels the paper's
    own use of Talagrand's inequality.  The model:

    - computation proceeds in rounds; every live processor broadcasts
      one message per round;
    - the adversary sees all internal states *and the round's messages
      before deciding on failures* (full information, adaptive);
    - it may crash up to [t] processors over the whole execution, and a
      processor crashed in round [r] may have its round-[r] message
      delivered to an arbitrary subset of the recipients (mid-broadcast
      interception).

    Protocols are records of pure functions, as in {!Dsim.Protocol}. *)

type ('s, 'm) protocol = {
  name : string;
  init : n:int -> t:int -> id:int -> input:bool -> 's;
  round_message : 's -> 'm;
      (** The broadcast for the coming round (deterministic). *)
  on_round : 's -> (int * 'm) list -> Prng.Stream.t -> 's;
      (** Process the round's received messages, sender-ascending; the
          only randomized transition. *)
  output : 's -> bool option;
  estimate : 's -> bool;
}

(** What the adversary sees and decides each round. *)
type 'm intervention = {
  crash : int list;  (** Processors to crash this round (within budget). *)
  partial_delivery : (int * int list) list;
      (** For each crashed processor, the recipients that still receive
          its final message; unlisted crashed processors reach nobody. *)
}

type ('s, 'm) view = {
  round : int;
  states : 's array;
  alive : bool array;
  messages : (int * 'm) list;  (** This round's (sender, message) pairs. *)
  budget_left : int;
}

type ('s, 'm) adversary = ('s, 'm) view -> 'm intervention

val no_faults : ('s, 'm) adversary

type outcome = {
  rounds : int;
  decided : (int * bool) list;
  conflict : bool;
  crashes_used : int;
  terminated : bool;  (** Every live processor decided within budget. *)
}

val run :
  protocol:('s, 'm) protocol ->
  n:int ->
  t:int ->
  inputs:bool array ->
  seed:int ->
  adversary:('s, 'm) adversary ->
  max_rounds:int ->
  outcome
(** Interventions beyond the remaining budget raise
    [Invalid_argument] (the adversary is ours, so this is a bug). *)
