lib/syncsim/sync_engine.mli: Prng
