lib/syncsim/sync_adversary.ml: List Sync_engine
