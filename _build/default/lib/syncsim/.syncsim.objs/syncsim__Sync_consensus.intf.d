lib/syncsim/sync_consensus.mli: Sync_engine
