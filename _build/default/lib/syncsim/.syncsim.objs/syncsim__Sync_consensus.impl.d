lib/syncsim/sync_consensus.ml: List Prng Sync_engine
