lib/syncsim/sync_adversary.mli: Sync_consensus Sync_engine
