lib/syncsim/sync_engine.ml: Array List Option Prng
