type ('s, 'm) protocol = {
  name : string;
  init : n:int -> t:int -> id:int -> input:bool -> 's;
  round_message : 's -> 'm;
  on_round : 's -> (int * 'm) list -> Prng.Stream.t -> 's;
  output : 's -> bool option;
  estimate : 's -> bool;
}

type 'm intervention = {
  crash : int list;
  partial_delivery : (int * int list) list;
}

type ('s, 'm) view = {
  round : int;
  states : 's array;
  alive : bool array;
  messages : (int * 'm) list;
  budget_left : int;
}

type ('s, 'm) adversary = ('s, 'm) view -> 'm intervention

let no_faults _view = { crash = []; partial_delivery = [] }

type outcome = {
  rounds : int;
  decided : (int * bool) list;
  conflict : bool;
  crashes_used : int;
  terminated : bool;
}

let run ~protocol ~n ~t ~inputs ~seed ~adversary ~max_rounds =
  if Array.length inputs <> n then invalid_arg "Sync_engine.run: |inputs| <> n";
  let root = Prng.Stream.root seed in
  let rngs = Array.init n (fun i -> Prng.Stream.derive root i) in
  let states =
    Array.init n (fun i -> protocol.init ~n ~t ~id:i ~input:inputs.(i))
  in
  let alive = Array.make n true in
  let crashes_used = ref 0 in
  let all_live_decided () =
    let undecided = ref false in
    Array.iteri
      (fun p s -> if alive.(p) && protocol.output s = None then undecided := true)
      states;
    not !undecided
  in
  let round = ref 0 in
  while (not (all_live_decided ())) && !round < max_rounds do
    incr round;
    (* Every live processor broadcasts. *)
    let messages =
      Array.to_list states
      |> List.mapi (fun p s -> (p, s))
      |> List.filter_map (fun (p, s) ->
             if alive.(p) then Some (p, protocol.round_message s) else None)
    in
    (* Full-information adversary intervenes, seeing the messages. *)
    let view =
      {
        round = !round;
        states = Array.copy states;
        alive = Array.copy alive;
        messages;
        budget_left = t - !crashes_used;
      }
    in
    let intervention = adversary view in
    let crash = List.sort_uniq compare intervention.crash in
    let crash = List.filter (fun p -> p >= 0 && p < n && alive.(p)) crash in
    if List.length crash > t - !crashes_used then
      invalid_arg "Sync_engine.run: adversary exceeded its crash budget";
    List.iter (fun p -> alive.(p) <- false) crash;
    crashes_used := !crashes_used + List.length crash;
    (* Delivery: live senders reach everyone; a just-crashed sender
       reaches exactly the recipients the adversary listed. *)
    let reach_of sender =
      if not (List.mem sender crash) then `All
      else
        match List.assoc_opt sender intervention.partial_delivery with
        | Some recipients -> `Some recipients
        | None -> `None
    in
    let deliveries_for dst =
      List.filter
        (fun (sender, _) ->
          match reach_of sender with
          | `All -> true
          | `Some recipients -> List.mem dst recipients
          | `None -> false)
        messages
    in
    Array.iteri
      (fun p s ->
        if alive.(p) then states.(p) <- protocol.on_round s (deliveries_for p) rngs.(p))
      states
  done;
  let decided =
    Array.to_list states
    |> List.mapi (fun p s -> (p, protocol.output s))
    |> List.filter_map (fun (p, o) -> Option.map (fun v -> (p, v)) o)
  in
  let values = List.map snd decided in
  {
    rounds = !round;
    decided;
    conflict = List.mem true values && List.mem false values;
    crashes_used = !crashes_used;
    terminated = all_live_decided ();
  }
