let census messages =
  let ones = List.filter_map (fun (p, v) -> if v then Some p else None) messages in
  let zeros = List.filter_map (fun (p, v) -> if not v then Some p else None) messages in
  (zeros, ones)

let balancing () =
  fun view ->
    let zeros, ones = census view.Sync_engine.messages in
    let majority_side, deviation =
      if List.length ones >= List.length zeros then
        (ones, List.length ones - List.length zeros)
      else (zeros, List.length zeros - List.length ones)
    in
    if deviation = 0 || deviation > view.Sync_engine.budget_left then
      { Sync_engine.crash = []; partial_delivery = [] }
    else
      {
        Sync_engine.crash = List.filteri (fun i _ -> i < deviation) majority_side;
        partial_delivery = [];
      }

let crash_early () =
  fun view ->
    if view.Sync_engine.round = 1 then
      let victims =
        List.filteri
          (fun i _ -> i < view.Sync_engine.budget_left)
          (List.map fst view.Sync_engine.messages)
      in
      { Sync_engine.crash = victims; partial_delivery = [] }
    else { Sync_engine.crash = []; partial_delivery = [] }

let partial_split () =
  fun view ->
    let zeros, ones = census view.Sync_engine.messages in
    let majority_side =
      if List.length ones >= List.length zeros then ones else zeros
    in
    match majority_side with
    | victim :: rest when view.Sync_engine.budget_left > 0 ->
        (* The victim's final vote reaches only its own side, skewing
           those recipients' margins relative to everyone else's. *)
        { Sync_engine.crash = [ victim ]; partial_delivery = [ (victim, rest) ] }
    | _ -> { Sync_engine.crash = []; partial_delivery = [] }
