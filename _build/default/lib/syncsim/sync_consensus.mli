(** A simple synchronous randomized consensus protocol, in the style
    analyzed by Bar-Joseph and Ben-Or [6]: per round every processor
    broadcasts its preference; on margin [> 2t] it decides, on any
    non-zero margin it adopts the majority, and on an exact tie it
    flips a local coin.

    Safety sketch (crash failures, [t < n/3]): two recipients' views of
    one round differ only in the messages of processors crashed that
    round, so their margins differ by at most [2t]; a decision margin
    [> 2t] therefore forces every live processor to at least adopt the
    same value, making the next round unanimous among the [>= n - t]
    live processors, whose margin [n - t > 2t] re-decides the value.

    Against this protocol the full-information adaptive adversary's
    only winning move is to keep every round an exact tie, which costs
    it the round's binomial deviation [Theta(sqrt n)] in crash budget —
    the coin-flipping game behind [6]'s [t / sqrt(n log n)] bound,
    reproduced by experiment E11. *)

type state

val protocol : (state, bool) Sync_engine.protocol

val round_of_state : state -> int
