type state = {
  id : int;
  n : int;
  fault_bound : int;
  input : bool;
  output : bool option;
  x : bool;
  round : int;
}

let init ~n ~t ~id ~input =
  { id; n; fault_bound = t; input; output = None; x = input; round = 0 }

let round_message state = state.x

let on_round state received rng =
  let ones = List.length (List.filter snd received) in
  let zeros = List.length received - ones in
  let margin = abs (ones - zeros) in
  let majority = ones > zeros in
  let x = if margin = 0 then Prng.Stream.bool rng else majority in
  let output =
    match state.output with
    | Some _ as existing -> existing
    | None -> if margin > 2 * state.fault_bound then Some majority else None
  in
  { state with x; output; round = state.round + 1 }

let output state = state.output

let protocol =
  {
    Sync_engine.name = "sync-margin-consensus";
    init;
    round_message;
    on_round;
    output;
    estimate = (fun state -> state.x);
  }

let round_of_state state = state.round
