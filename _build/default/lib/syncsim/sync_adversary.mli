(** Adaptive crash adversaries for the synchronous engine. *)

val balancing : unit -> (Sync_consensus.state, bool) Sync_engine.adversary
(** The coin-killing adversary of the Bar-Joseph–Ben-Or game: each
    round, after seeing every broadcast, crash exactly enough majority
    voters (suppressing their messages entirely) to force an exact tie
    — as long as the budget allows.  Once the round's deviation exceeds
    the remaining budget it gives up and stops intervening. *)

val crash_early : unit -> ('s, 'm) Sync_engine.adversary
(** Spend the whole budget in round 1 on the lowest-id processors:
    a naive baseline that barely slows the protocol. *)

val partial_split : unit -> (Sync_consensus.state, bool) Sync_engine.adversary
(** Demonstrates mid-broadcast interception: each round it crashes one
    majority voter but delivers its last message to exactly the other
    majority holders, maximizing the divergence between recipients'
    views.  Stops when the budget is exhausted. *)
