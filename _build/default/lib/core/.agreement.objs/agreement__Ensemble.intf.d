lib/core/ensemble.mli: Adversary Dsim Stats
