lib/core/correctness.mli: Dsim Format
