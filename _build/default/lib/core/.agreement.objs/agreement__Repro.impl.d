lib/core/repro.ml: Adversary Array Dsim Ensemble Lazy List Lowerbound Printf Prng Protocols Shmem Stats String Syncsim
