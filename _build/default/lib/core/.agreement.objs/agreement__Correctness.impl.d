lib/core/correctness.ml: Array Dsim Format List
