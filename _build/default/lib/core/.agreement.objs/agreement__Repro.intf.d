lib/core/repro.mli: Stats
