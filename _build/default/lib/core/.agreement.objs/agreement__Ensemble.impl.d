lib/core/ensemble.ml: Array Correctness Dsim List Stats
