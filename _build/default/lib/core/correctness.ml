type verdict = {
  agreement : bool;
  validity : bool;
  decided : int;
  value : bool option;
}

let of_outcome ~inputs (outcome : Dsim.Runner.outcome) =
  let values = List.map snd outcome.Dsim.Runner.decided in
  let agreement = not (List.mem true values && List.mem false values) in
  let validity =
    List.for_all (fun v -> Array.exists (fun input -> input = v) inputs) values
  in
  let value = match values with [] -> None | v :: _ -> if agreement then Some v else None in
  { agreement; validity; decided = List.length values; value }

let ok v = v.agreement && v.validity

let pp ppf v =
  Format.fprintf ppf "agreement=%b validity=%b decided=%d value=%s" v.agreement
    v.validity v.decided
    (match v.value with None -> "-" | Some true -> "1" | Some false -> "0")
