(** Checkers for the paper's correctness notions (Definition 2).

    Measure-one correctness demands that every reachable configuration
    contains only agreeing or ⊥ outputs, and that a non-⊥ output equals
    some processor's input.  A simulation cannot quantify over all
    reachable configurations, but it can check every configuration an
    execution actually visits; the engine records decisions as they
    happen, so checking the final outcome suffices (outputs are
    write-once). *)

type verdict = {
  agreement : bool;  (** No two opposite outputs were ever written. *)
  validity : bool;  (** Every written output equals some input. *)
  decided : int;  (** Number of processors with a written output. *)
  value : bool option;  (** The common decision value, when one exists. *)
}

val of_outcome : inputs:bool array -> Dsim.Runner.outcome -> verdict

val ok : verdict -> bool
(** Agreement and validity both hold. *)

val pp : Format.formatter -> verdict -> unit
