(** Monte-Carlo lookahead: an executable approximation of the Theorem 5
    proof adversary.

    The proof's adversary inspects the configuration, determines the
    largest [k] with [sigma ∉ Z^k_0 ∪ Z^k_1], and picks the acceptable
    window that Lemma 14 guarantees avoids [Z^{k-1}_0 ∪ Z^{k-1}_1] with
    high probability.  Exact membership in [Z^k_b] quantifies over all
    windows and is not computable in general; this strategy replaces it
    with its operational meaning: for every candidate window, fork the
    configuration, re-randomize the coins (the adversary knows
    everything *except* coins not yet flipped), play the window followed
    by [horizon] windows of balancing continuation, and estimate the
    probability that a decision is reached.  It then plays the candidate
    with the lowest estimated decision probability.

    Cost per window is [candidates * samples * horizon] simulated
    windows — usable for small [n] only, which is what experiment runs
    use it for. *)

val windowed :
  samples:int ->
  horizon:int ->
  seed:int ->
  ?candidates:(('s, 'm) Dsim.Engine.t -> Dsim.Window.t list) ->
  unit ->
  ('s, 'm) Strategy.windowed
(** Default candidates: the [n] uniform windows silencing each
    contiguous block of [t] processors, the fault-free window, and for
    each block additionally the variant resetting that block — mirroring
    the proof's canonical [R, S, ..., S] window shapes. *)

val default_candidates : ('s, 'm) Dsim.Engine.t -> Dsim.Window.t list
