(** The split-brain adversary: per-recipient receive sets that freeze a
    population split of the variant algorithm.

    The balancing adversary ({!Split_vote}) shows everyone the same
    trimmed view; against a *derandomized* variant (step-3 coin pinned
    to a constant) that actually causes instant convergence — identical
    views plus a deterministic fallback agree everywhere.  The stronger
    schedule tailors [S_i] per recipient:

    - a recipient currently estimating [b], when the census allows it,
      is shown at least [T3] but at most [T2 - 1] votes for [b] (so it
      re-adopts [b] deterministically without being able to decide) and
      fewer than [T3] votes for [not b];
    - a recipient whose estimate cannot be sustained is shown a
      balanced view and falls through to its coin.

    Against the deterministic variant with a pinned coin this freezes
    the split *forever* — the FLP non-termination phenomenon inside the
    acceptable-window model (see [examples/flp_determinism.ml]).
    Against the honest randomized variant the frozen side still holds,
    but the coin side drifts, and Theorem 4's termination eventually
    wins.  Requires the default Theorem 4 thresholds to compute its
    targets. *)

val windowed : unit -> ('s, 'm) Strategy.windowed
