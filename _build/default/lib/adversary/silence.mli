(** Silencing adversaries: never deliver from a (fixed or rotating) set
    of up to [t] senders.

    This is the schedule used in the proofs of Lemmas 11 and 13: "the
    adversary can continue such an execution by always delivering the
    messages from the last [n - t] processors".  Against a correct
    algorithm it must still terminate (the silenced processors simply
    look crashed). *)

val fixed : silenced:int list -> ('s, 'm) Strategy.windowed
(** Every window excludes exactly the given senders (at most [t] of
    them) from every receive set; no resets. *)

val rotating : period:int -> count:int -> ('s, 'm) Strategy.windowed
(** Every [period] windows, shift the silenced block of [count]
    processors by [count] (mod n): models transient partitions. *)

val first_t : ('s, 'm) Strategy.windowed
(** The proofs' canonical choice: silence processors [{0, ..., t-1}],
    i.e. always deliver from [S = {t, ..., n-1}] ("the last n - t
    processors"). *)

val last_t : ('s, 'm) Strategy.windowed
(** Mirror image: silence [{n-t, ..., n-1}].  Note that with ascending
    delivery order and threshold-triggered protocols this schedule is
    observationally identical to the benign one (the first [T1]
    messages coincide) — a useful control. *)
