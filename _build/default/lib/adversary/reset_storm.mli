(** Resetting adversaries for the strongly adaptive model.

    Every window ends with up to [t] resetting steps; over a long
    execution the total number of failures vastly exceeds [t], which is
    precisely the failure pattern the strongly adaptive model licenses
    and Theorem 4's algorithm survives (experiment E7). *)

val rotating : unit -> ('s, 'm) Strategy.windowed
(** Reset a sliding block of [t] processors, advancing by [t] each
    window, with full delivery otherwise. *)

val random : seed:int -> unit -> ('s, 'm) Strategy.windowed
(** Reset [t] processors chosen uniformly at random each window. *)

val target_undecided : unit -> ('s, 'm) Strategy.windowed
(** Reset the [t] undecided processors with the highest rounds — a
    spiteful strategy that erases the most progress.  Decided
    processors are pointless to reset (the output bit survives). *)

val with_silence : seed:int -> unit -> ('s, 'm) Strategy.windowed
(** Combine random resets with random silencing of [t] other senders:
    the strongest generic stress the window model allows. *)
