(** The echo-chamber adversary: view splitting by per-destination
    deferral.

    The symmetric balancing adversary ({!Split_vote.stepwise}) shows
    every processor the same near-balanced multiset.  Against protocols
    that adopt a majority with a deterministic tie-break (Bracha's
    phase 1), identical views cause immediate convergence — so the
    stronger schedule is *asymmetric*: show each processor a slim
    majority for the estimate it already holds, keeping the population
    split, while never letting anyone see the [> n/2] super-majority
    that creates decision candidates.

    Mechanics: per destination holding estimate [b], the votes of all
    [b]-holders pass through, plus just enough opposite origins to
    reach the [n - t] wait quorum; every other message carrying the
    opposite vote is deferred — by *origin*, so relayed copies (echoes
    and readies in reliable broadcast) are deferred wherever they
    travel.  Deferred messages are delivered once the destination has
    advanced past their round (every message is eventually delivered,
    as the crash model requires), and a stall breaker flushes all
    pending messages after [patience] cycles without round/phase
    progress, preserving termination. *)

val stepwise : ?patience:int -> unit -> ('s, 'm) Strategy.stepwise
(** [patience] defaults to 8 cycles. *)
