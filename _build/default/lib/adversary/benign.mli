(** Fault-free, fair scheduling — the control adversary.

    Against it, randomized agreement should decide almost immediately;
    the exponential behaviour of E2/E3 is an adversarial phenomenon, and
    this strategy is the ablation that shows it. *)

val windowed : unit -> ('s, 'm) Strategy.windowed
(** Every window delivers everything to everyone and resets nobody. *)

val lockstep : unit -> ('s, 'm) Strategy.stepwise
(** Free-running equivalent: repeat (send for every live processor,
    then deliver every pending message in id order). *)

val random_fair : seed:int -> drop_probability:float -> unit -> ('s, 'm) Strategy.stepwise
(** Randomized fair-ish scheduler: each cycle sends for everyone, then
    delivers each pending message independently with probability
    [1 - drop_probability] now, deferring the rest to later cycles.
    Messages are never dropped, only delayed; used by property tests to
    explore interleavings. *)
