(** Crash adversaries for the classical asynchronous model (Section 5).

    Up to [t] processors are stopped permanently; scheduling is
    otherwise lockstep-fair.  The timing of the crashes is the
    adversarial knob. *)

val at_start : crash:int list -> ('s, 'm) Strategy.stepwise
(** Crash the given processors before anything else happens, then
    schedule fairly.  With [crash = []] this degenerates to
    {!Benign.lockstep}. *)

val staggered : every:int -> ('s, 'm) Strategy.stepwise
(** Crash processor [0] after [every] delivery cycles, processor [1]
    after [2 * every], ... until [t] processors are down.  Crashing
    mid-execution maximizes the information the victims took with
    them. *)

val before_decision : unit -> ('s, 'm) Strategy.stepwise
(** Spiteful: watch for processors whose estimates have converged and
    crash the most-advanced undecided processors first (up to [t]),
    then keep scheduling fairly.  A correct protocol must still
    terminate. *)
