lib/adversary/crash.ml: Array Dsim List Queue
