lib/adversary/silence.mli: Strategy
