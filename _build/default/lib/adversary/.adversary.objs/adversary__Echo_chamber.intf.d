lib/adversary/echo_chamber.mli: Strategy
