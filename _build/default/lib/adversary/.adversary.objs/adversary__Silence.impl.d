lib/adversary/silence.ml: Dsim List
