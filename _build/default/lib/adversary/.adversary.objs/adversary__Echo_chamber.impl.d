lib/adversary/echo_chamber.ml: Array Dsim List Queue
