lib/adversary/byzantine.mli: Strategy
