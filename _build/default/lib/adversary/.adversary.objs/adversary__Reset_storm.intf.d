lib/adversary/reset_storm.mli: Strategy
