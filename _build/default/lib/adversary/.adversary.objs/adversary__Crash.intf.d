lib/adversary/crash.mli: Strategy
