lib/adversary/lookahead.ml: Dsim List Prng Split_vote
