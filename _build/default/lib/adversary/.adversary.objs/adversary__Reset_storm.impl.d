lib/adversary/reset_storm.ml: Array Dsim List Prng
