lib/adversary/benign.ml: Dsim List Prng Queue
