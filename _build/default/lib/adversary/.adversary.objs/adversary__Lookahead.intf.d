lib/adversary/lookahead.mli: Dsim Strategy
