lib/adversary/strategy.mli: Dsim
