lib/adversary/split_brain.mli: Strategy
