lib/adversary/benign.mli: Strategy
