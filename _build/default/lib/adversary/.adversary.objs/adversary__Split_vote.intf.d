lib/adversary/split_vote.mli: Protocols Strategy
