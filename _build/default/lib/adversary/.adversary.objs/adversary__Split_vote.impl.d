lib/adversary/split_vote.ml: Dsim List Protocols Queue Strategy
