lib/adversary/split_brain.ml: Array Dsim List Protocols
