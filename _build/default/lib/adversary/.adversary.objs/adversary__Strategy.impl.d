lib/adversary/strategy.ml: Array Dsim List
