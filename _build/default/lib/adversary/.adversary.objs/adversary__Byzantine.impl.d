lib/adversary/byzantine.ml: Dsim List Queue
