(** Byzantine message-corrupting adversaries.

    The classical Byzantine adversary corrupts the messages of up to [t]
    processors (Section 2 notes that changing a non-empty message to ∅
    and lying about coins are permissible corruptions).  Our adversary
    rewrites the votes carried by the corrupt set's pending messages via
    the protocol's [rewrite_bit] hook before they are delivered.

    The paper's strongly adaptive adversary notably *lacks* this power
    ("it lacks the power to have corrupted processors lie about their
    local random bits") — benchmarking Bracha with and without RBC under
    this adversary is the ablation showing what the power buys. *)

type flavour =
  | Flip  (** Invert every corrupt vote: crude noise. *)
  | Equivocate
      (** Tell each recipient what it already believes, reinforcing the
          split — the classic attack on unvalidated vote protocols. *)
  | Silent  (** Drop the corrupt set's messages: Byzantine-as-crash. *)

val lockstep : corrupt:int list -> flavour:flavour -> unit -> ('s, 'm) Strategy.stepwise
(** Lockstep-fair scheduling in which, each cycle, the pending messages
    from [corrupt] (at most [t] processors) are corrupted per
    [flavour] and everything is then delivered.  Messages whose payload
    has no rewritable vote pass through unchanged. *)
