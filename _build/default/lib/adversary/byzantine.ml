type flavour = Flip | Equivocate | Silent

let lockstep ~corrupt ~flavour () =
  let queue = Queue.create () in
  let plan config =
    let n = Dsim.Engine.n config in
    let t = Dsim.Engine.fault_bound config in
    if List.length corrupt > t then invalid_arg "Byzantine.lockstep: more than t corrupt";
    let protocol = Dsim.Engine.protocol config in
    let live p = not (Dsim.Engine.crashed config p) in
    let sends =
      List.filter_map
        (fun p -> if live p then Some (Dsim.Step.Send p) else None)
        (List.init n (fun i -> i))
    in
    let mailbox = Dsim.Engine.mailbox config in
    let corruptions =
      Dsim.Mailbox.pending mailbox
      |> List.filter (fun e -> List.mem e.Dsim.Envelope.src corrupt)
      |> List.filter_map (fun e ->
             let payload = e.Dsim.Envelope.payload in
             match flavour with
             | Silent -> Some (Dsim.Step.Drop e.Dsim.Envelope.id)
             | Flip -> (
                 match protocol.Dsim.Protocol.message_bit payload with
                 | None -> None
                 | Some bit -> (
                     match protocol.Dsim.Protocol.rewrite_bit payload (not bit) with
                     | None -> None
                     | Some payload' -> Some (Dsim.Step.Corrupt (e.Dsim.Envelope.id, payload'))))
             | Equivocate -> (
                 let dst_obs = Dsim.Engine.observe config e.Dsim.Envelope.dst in
                 match dst_obs.Dsim.Obs.estimate with
                 | None -> None
                 | Some belief -> (
                     match protocol.Dsim.Protocol.rewrite_bit payload belief with
                     | None -> None
                     | Some payload' -> Some (Dsim.Step.Corrupt (e.Dsim.Envelope.id, payload')))))
    in
    let delivers =
      (* Recompute after corruption steps execute: ids are stable, only
         payloads change, so planning deliveries now is sound.  Dropped
         ids must be excluded. *)
      let dropped =
        List.filter_map
          (function Dsim.Step.Drop id -> Some id | _ -> None)
          corruptions
      in
      Dsim.Mailbox.pending_ids mailbox
      |> List.filter (fun id -> not (List.mem id dropped))
      |> List.map (fun id -> Dsim.Step.Deliver id)
    in
    sends @ corruptions @ delivers
  in
  fun config ->
    if Queue.is_empty queue then List.iter (fun s -> Queue.add s queue) (plan config);
    if Queue.is_empty queue then None else Some (Queue.pop queue)
