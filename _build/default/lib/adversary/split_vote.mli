(** The balancing ("split-vote") adversary.

    This is the strategy behind Section 3's closing remark: when the
    inputs are split, the adversary silences up to [t] holders of the
    majority estimate each window, "showing every processor an
    approximate split between 0 and 1 messages", so that (unless a
    chance super-majority arises) every processor falls through to its
    random coin in step 3.  Each window then succeeds in forcing
    progress only with probability roughly [2^{-n}] — the exponential
    running time measured by experiments E2/E3.

    The strategy gives up (delivers everything) once the vote census is
    so lopsided that silencing [t] majority holders can no longer
    prevent a deterministic adoption — at that point the algorithm is
    about to decide regardless. *)

val windowed : unit -> ('s, 'm) Strategy.windowed
(** Balancing via uniform receive sets: every processor receives from
    the same [S] = everyone minus up to [t] majority holders. *)

val windowed_with_resets : unit -> ('s, 'm) Strategy.windowed
(** Balancing plus resets: additionally resets up to [t] of the
    *remaining* majority holders at window end, erasing their adopted
    estimates (they re-join with fresh randomness).  Strictly nastier
    than {!windowed} in the strongly adaptive model. *)

val stepwise : unit -> ('s, 'm) Strategy.stepwise
(** Free-running balancing for the crash model (used against Ben-Or and
    Bracha in E3/E8).  Lockstep cycles: send for everyone, then deliver
    to each processor all fresh messages except those from up to [t]
    senders whose messages carry the over-represented vote for that
    processor's current wait.  Excluded messages are delayed forever
    (dropped), which at most [t] crash failures can always explain. *)

val escape_threshold : n:int -> t:int -> thresholds:Protocols.Thresholds.t -> int
(** The census majority size at which balancing fails against the
    variant algorithm: [T3 + t] (silencing [t] still leaves [T3]
    agreeing votes visible to everybody). *)
