(** Monte-Carlo exploration of the proof's progress sets [Z^k_b]
    (Definitions 10 and 12).

    [Z^0_b] is the set of reachable configurations where some processor
    has output [b].  [Z^k_b] contains the reachable configurations from
    which *every* admissible window choice [(R, S, ..., S)] leads into
    [Z^{k-1}_b] with probability [> tau].

    Exact membership quantifies over all [(R, S)] pairs and over the
    randomness of the protocol; we approximate both: the window choices
    range over a canonical family (no faults; each contiguous block of
    [t] silenced; each block reset; both), and the landing probability
    is estimated by sampling with fresh coins.  Because the canonical
    family is a subset of all admissible choices, the approximation
    *over*-estimates membership — so a configuration reported outside
    [Z^k_0 ∪ Z^k_1] really is outside (up to sampling error), which is
    the direction the adversary's argument needs.

    Tractable only for small [n], [k] and sample counts; experiment E5b
    uses [n = 7..13], [k <= 2]. *)

val canonical_choices : n:int -> t:int -> (int list * int list) list
(** [(resets, silenced)] pairs: fault-free, silence-block-0,
    reset-block-0, silence+reset of block 0, and the same for the block
    starting at [t] — six shapes echoing the proofs' canonical
    [R = {1..t}, S = {t+1..n}]. *)

val in_z0 : ('s, 'm) Dsim.Engine.t -> value:bool -> bool
(** Membership in [Z^0_value]: some processor has output [value]. *)

val member :
  ('s, 'm) Dsim.Engine.t ->
  k:int ->
  value:bool ->
  samples:int ->
  tau:float ->
  rng:Prng.Stream.t ->
  bool
(** Estimated membership in [Z^k_value] under the canonical choices.
    The configuration is not mutated (all work happens on copies). *)

type separation = {
  pairs_checked : int;
  min_distance : int;  (** Minimum Hamming distance seen across sets. *)
  bound : int;  (** The fault bound [t]; Lemma 13 asserts distance > t. *)
  holds : bool;
}

val estimate_z0_separation :
  protocol:('s, 'm) Dsim.Protocol.t ->
  n:int ->
  t:int ->
  runs:int ->
  seed:int ->
  separation
(** Sample reachable decided configurations by running the protocol
    under randomized window adversaries from split inputs, bucket them
    by decision value, and report the smallest observed cross-bucket
    Hamming distance — an empirical check of Lemma 11 (sampling can
    only overestimate the true minimum, so [holds = true] is evidence,
    not proof; [holds = false] would be a refutation). *)

val estimate_zk_separation :
  protocol:('s, 'm) Dsim.Protocol.t ->
  n:int ->
  t:int ->
  k:int ->
  runs:int ->
  samples:int ->
  seed:int ->
  separation
(** The same check at level [k] (Lemma 13): sample reachable
    configurations by running randomized window prefixes from unanimous
    inputs of both values (which keeps both [Z^k] buckets populated),
    classify each configuration's [Z^k_0]/[Z^k_1] membership by
    Monte-Carlo {!member}, and report the smallest cross-bucket
    distance.  Configurations landing in neither or both buckets are
    discarded. *)
