let generic_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Hamming.distance: length mismatch";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

let distance = generic_distance
let distance_int = generic_distance

let distance_to_set x set =
  match set with
  | [] -> invalid_arg "Hamming.distance_to_set: empty set"
  | first :: rest ->
      List.fold_left (fun acc a -> min acc (distance x a)) (distance x first) rest

let distance_between_sets a b =
  match a with
  | [] -> invalid_arg "Hamming.distance_between_sets: empty set"
  | _ -> List.fold_left (fun acc x -> min acc (distance_to_set x b)) max_int a

let within ~d x set = distance_to_set x set <= d

let config_distance c1 c2 =
  distance (Dsim.Engine.state_cores c1) (Dsim.Engine.state_cores c2)
