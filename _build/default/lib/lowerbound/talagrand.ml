type set_desc =
  | Ball of { center : int array; radius : int }
  | Weight_ge of int
  | Weight_le of int
  | Near of { points : int array list; slack : int }

let explicit points = Near { points; slack = 0 }

let weight x = Array.fold_left (fun acc v -> if v >= 1 then acc + 1 else acc) 0 x

let min_distance points x =
  match points with
  | [] -> invalid_arg "Talagrand: empty point list"
  | first :: rest ->
      List.fold_left
        (fun acc p -> min acc (Hamming.distance_int x p))
        (Hamming.distance_int x first) rest

let mem desc x =
  match desc with
  | Ball { center; radius } -> Hamming.distance_int x center <= radius
  | Weight_ge k -> weight x >= k
  | Weight_le k -> weight x <= k
  | Near { points; slack } -> min_distance points x <= slack

let expand desc d =
  if d < 0 then invalid_arg "Talagrand.expand: negative d";
  match desc with
  | Ball b -> Ball { b with radius = b.radius + d }
  | Weight_ge k -> Weight_ge (max 0 (k - d))
  | Weight_le k -> Weight_le (k + d)
  | Near n -> Near { n with slack = n.slack + d }

let set_distance a b =
  match (a, b) with
  | Weight_ge k, Weight_le k' | Weight_le k', Weight_ge k ->
      Some (max 0 (k - k'))
  | Near { points = pa; slack = sa }, Near { points = pb; slack = sb } ->
      let raw =
        List.fold_left
          (fun acc x -> min acc (min_distance pb x))
          max_int pa
      in
      Some (max 0 (raw - sa - sb))
  | _, _ -> None

type check = {
  p_a : float;
  p_expansion : float;
  lhs : float;
  bound : float;
  holds : bool;
}

let check ?(samples = 100_000) ?(seed = 0) space desc ~d =
  let n = Product.dims space in
  let expansion = expand desc d in
  let exact = Product.total_outcomes space <= float_of_int (1 lsl 22) in
  let p predicate =
    if exact then Product.prob_exact space predicate
    else Product.prob_mc space ~samples ~seed predicate
  in
  let p_a = p (mem desc) in
  let p_expansion = p (mem expansion) in
  let lhs = p_a *. (1.0 -. p_expansion) in
  let bound = Stats.Tail.talagrand_bound ~n ~d:(float_of_int d) in
  let tolerance = if exact then 1e-12 else 3.0 /. sqrt (float_of_int samples) in
  { p_a; p_expansion; lhs; bound; holds = lhs <= bound +. tolerance }
