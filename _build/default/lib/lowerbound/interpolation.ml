type point = { j : int; p_z0 : float; p_z1 : float }

type result = {
  curve : point list;
  j_star : int;
  eta : float;
  p_z0_at_star : float;
  p_z1_at_star : float;
  conclusion_holds : bool;
}

let sweep ?(samples = 50_000) ?(seed = 0) ~pi0 ~pi_n ~z0 ~z1 ~t () =
  let n = Product.dims pi0 in
  if Product.dims pi_n <> n then invalid_arg "Interpolation.sweep: dimension mismatch";
  let eta = Stats.Tail.eta ~n ~t in
  let mass space desc =
    Product.prob ~samples ~seed space (Talagrand.mem desc)
  in
  let curve =
    List.init (n + 1) (fun j ->
        let hybrid = Product.hybrid pi_n pi0 ~j in
        { j; p_z0 = mass hybrid z0; p_z1 = mass hybrid z1 })
  in
  let j_star =
    match List.find_opt (fun p -> p.p_z0 <= eta) curve with
    | Some p -> p.j
    | None -> n (* j = n satisfies the condition by construction *)
  in
  let at_star = List.nth curve j_star in
  let exact = Product.total_outcomes pi0 <= float_of_int (1 lsl 22) in
  let tolerance = if exact then 1e-12 else 3.0 /. sqrt (float_of_int samples) in
  {
    curve;
    j_star;
    eta;
    p_z0_at_star = at_star.p_z0;
    p_z1_at_star = at_star.p_z1;
    conclusion_holds =
      at_star.p_z0 <= eta +. tolerance && at_star.p_z1 <= eta +. tolerance;
  }
