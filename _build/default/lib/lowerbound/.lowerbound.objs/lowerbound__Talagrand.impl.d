lib/lowerbound/talagrand.ml: Array Hamming List Product Stats
