lib/lowerbound/zk_sets.mli: Dsim Prng
