lib/lowerbound/hamming.ml: Array Dsim List
