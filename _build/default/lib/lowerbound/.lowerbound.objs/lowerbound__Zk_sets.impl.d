lib/lowerbound/zk_sets.ml: Array Dsim Hamming List Prng Stats
