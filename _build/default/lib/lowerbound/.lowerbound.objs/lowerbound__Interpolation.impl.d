lib/lowerbound/interpolation.ml: List Product Stats Talagrand
