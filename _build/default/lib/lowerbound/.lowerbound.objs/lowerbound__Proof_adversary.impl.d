lib/lowerbound/proof_adversary.ml: Dsim List Prng Stats Zk_sets
