lib/lowerbound/product.mli: Prng
