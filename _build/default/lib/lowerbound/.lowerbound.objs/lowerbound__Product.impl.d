lib/lowerbound/product.ml: Array Float Prng
