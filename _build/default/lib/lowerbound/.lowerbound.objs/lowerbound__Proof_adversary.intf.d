lib/lowerbound/proof_adversary.mli: Dsim Prng
