lib/lowerbound/hamming.mli: Dsim
