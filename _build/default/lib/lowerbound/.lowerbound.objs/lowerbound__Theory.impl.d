lib/lowerbound/theory.ml: Float
