lib/lowerbound/talagrand.mli: Product
