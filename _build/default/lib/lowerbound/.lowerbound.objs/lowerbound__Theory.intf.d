lib/lowerbound/theory.mli:
