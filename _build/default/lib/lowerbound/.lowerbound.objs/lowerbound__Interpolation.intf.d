lib/lowerbound/interpolation.mli: Product Talagrand
