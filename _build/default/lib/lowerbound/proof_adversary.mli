(** The Theorem 5 proof adversary, made executable.

    The proof's adversary, confronted with a configuration [sigma],
    determines the maximal [k <= E] with [sigma ∉ Z^k_0 ∪ Z^k_1] and
    applies the acceptable window guaranteed by Lemma 14 to reach a
    configuration outside [Z^{k-1}_0 ∪ Z^{k-1}_1] with high
    probability.

    This module replaces the two non-computable ingredients with their
    Monte-Carlo counterparts from {!Zk_sets}:

    - membership in [Z^k_b] is estimated over the canonical window
      family with sampled coins;
    - the Lemma 14 window is chosen by scoring every canonical window
      by its estimated probability of landing in
      [Z^{k-1}_0 ∪ Z^{k-1}_1] and playing the minimizer — the
      interpolation argument guarantees a good one exists among the
      hybrids; we search the family directly.

    Exponential in [k_max], so usable for small [n] and [k_max <= 2] —
    which is exactly how [examples/lower_bound_tour.exe] and the tests
    exercise it.  For experiments at scale, {!Adversary.Lookahead} is
    the cheaper decision-probability proxy. *)

val level :
  ('s, 'm) Dsim.Engine.t ->
  k_max:int ->
  samples:int ->
  rng:Prng.Stream.t ->
  int
(** The maximal [k <= k_max] with the configuration estimated outside
    [Z^k_0 ∪ Z^k_1]; [-1] when it is already inside some union at
    [k = 0] (i.e. decided both ways — impossible for correct
    algorithms — or inside both balls at every level). *)

val windowed :
  k_max:int ->
  samples:int ->
  seed:int ->
  unit ->
  ('s, 'm) Dsim.Engine.t -> Dsim.Window.t option
(** The strategy: estimate the level, then play the canonical window
    minimizing the estimated probability of entering
    [Z^{level-1}_0 ∪ Z^{level-1}_1].  At level [<= 0] it falls back to
    the fault-free window (the game is lost; Theorem 5 only promises
    the adversary survives while outside the unions). *)
