(** The interpolation argument of Lemma 14, executed numerically.

    Setting: a configuration outside [Z^k_0 ∪ Z^k_1] admits one window
    whose induced product distribution [pi_0] puts mass [<= tau] on
    [Z^{k-1}_1], and another inducing [pi_n] with mass [<= tau] on
    [Z^{k-1}_0].  Hybridizing one coordinate at a time yields some
    [pi_{j*}] putting mass [<= eta] on *both* sets, where
    [eta = exp (-(t-1)^2 / 8n)] — provided the two sets are Hamming
    separated by more than [t] (Lemma 13).

    This module takes the two endpoint distributions and the two set
    descriptors, sweeps the hybrids, locates [j*], and checks the
    lemma's conclusion — the content of experiment E5. *)

type point = { j : int; p_z0 : float; p_z1 : float }

type result = {
  curve : point list;  (** Masses under every hybrid [pi_j], j = 0..n. *)
  j_star : int;  (** Minimal [j] with [P_{pi_j}(Z0) <= eta]. *)
  eta : float;
  p_z0_at_star : float;
  p_z1_at_star : float;
  conclusion_holds : bool;
      (** Both masses at [j*] are [<= eta] (with Monte-Carlo slack). *)
}

val sweep :
  ?samples:int ->
  ?seed:int ->
  pi0:Product.t ->
  pi_n:Product.t ->
  z0:Talagrand.set_desc ->
  z1:Talagrand.set_desc ->
  t:int ->
  unit ->
  result
(** Requires the two distributions to share dimensions; [t] is the
    fault bound defining [eta].  The hybrid [pi_j] takes coordinates
    [< j] from [pi_n] and the rest from [pi0], matching the paper's
    indexing (so [pi_0 = pi0] and [pi_dims = pi_n]). *)
