type constants = { c : float; alpha : float; log_c_const : float }

(* (cn - 1)^2 / 8n *)
let decay_exponent ~c ~n =
  let cn1 = (c *. n) -. 1.0 in
  cn1 *. cn1 /. (8.0 *. n)

(* ln of the RHS/LHS gap of (3) at a given n, for C = 1:
   g(n) = ln(1/4) + (cn-1)^2/8n - alpha n.
   The largest valid C has ln C = min over n >= 1 of g(n). *)
let gap ~c ~alpha n = log 0.25 +. decay_exponent ~c ~n -. (alpha *. n)

let derive ~c =
  if c <= 0.0 || c >= 1.0 then invalid_arg "Theory.derive: need 0 < c < 1";
  let alpha = c *. c /. 9.0 in
  (* g(n) = ln(1/4) + c^2 n / 8 - c/4 + 1/(8n) - alpha n; the n terms
     have positive net slope (c^2/8 - c^2/9 > 0) and 1/(8n) decays, so
     g is eventually increasing.  Scan integers far enough to bracket
     the minimum: the derivative is positive once
     (c^2/72) > 1/(8 n^2), i.e. n > 3/c. *)
  let horizon = max 10 (int_of_float (10.0 /. c)) in
  let minimum = ref infinity in
  for n = 1 to horizon do
    minimum := Float.min !minimum (gap ~c ~alpha (float_of_int n))
  done;
  { c; alpha; log_c_const = !minimum }

let log_windows k ~n = k.log_c_const +. (k.alpha *. float_of_int n)
let windows k ~n = exp (log_windows k ~n)

let exponent_inequality_holds k ~n =
  log_windows k ~n <= log 0.25 +. decay_exponent ~c:k.c ~n:(float_of_int n) +. 1e-9

let log_failure_term k ~n =
  log 2.0 +. log_windows k ~n -. decay_exponent ~c:k.c ~n:(float_of_int n)

let success_probability_lower_bound k ~n =
  Float.max 0.0 (1.0 -. exp (log_failure_term k ~n))

let crossover_n k = -.k.log_c_const /. k.alpha
