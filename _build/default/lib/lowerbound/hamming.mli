(** Hamming geometry on configurations and on abstract product spaces.

    The lower bound works in the joint state space [Sigma^n] with the
    Hamming distance: the number of processors whose local states
    differ (Definitions 6-8).  Configurations are compared through their
    canonical per-processor cores ([Engine.state_cores]). *)

val distance : string array -> string array -> int
(** Coordinates differing between two equal-length configurations.
    Raises [Invalid_argument] on length mismatch. *)

val distance_int : int array -> int array -> int
(** Same, on integer-coordinate points of an abstract product space. *)

val distance_to_set : string array -> string array list -> int
(** [Delta(x, A)]: minimum distance from the point to the set; the set
    must be non-empty. *)

val distance_between_sets : string array list -> string array list -> int
(** [Delta(A, B)]: minimum over pairs; both non-empty. *)

val within : d:int -> string array -> string array list -> bool
(** Membership in [B(A, d)]. *)

val config_distance : ('s, 'm) Dsim.Engine.t -> ('s, 'm) Dsim.Engine.t -> int
(** Hamming distance between two engine configurations (their state
    cores; message buffers are not part of the paper's [Sigma^n]). *)
