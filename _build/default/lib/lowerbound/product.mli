(** Explicit finite product probability spaces
    [Omega = Omega_1 x ... x Omega_n].

    Talagrand's inequality (Lemma 9) and the interpolation argument
    (Lemma 14) are statements about arbitrary product measures; this
    module realizes them concretely so the experiments can check the
    inequalities numerically — exactly by enumeration when the space is
    small, by Monte Carlo otherwise. *)

type t

val create : float array array -> t
(** [create pmfs]: coordinate [i] takes value [v] with probability
    [pmfs.(i).(v)].  Each row must be a non-empty probability vector
    (non-negative, summing to 1 within 1e-9; it is renormalized). *)

val dims : t -> int
val support : t -> int -> int
(** Number of outcomes of one coordinate. *)

val uniform_bits : n:int -> t
(** [n] fair coins — the distribution behind step 3 of the variant
    algorithm. *)

val bernoulli : float array -> t
(** Independent bits with per-coordinate success probabilities. *)

val hybrid : t -> t -> j:int -> t
(** Lemma 14's interpolation: coordinates [< j] from the first
    distribution, the rest from the second.  Dimensions must match. *)

val coordinate_pmf : t -> int -> float array

val sample : t -> Prng.Stream.t -> int array

val total_outcomes : t -> float
(** Product of supports (as a float, to detect blow-up). *)

val prob_exact : t -> (int array -> bool) -> float
(** Exact probability of a predicate by full enumeration.  Raises
    [Invalid_argument] when the space exceeds 2^22 outcomes. *)

val prob_mc : t -> samples:int -> seed:int -> (int array -> bool) -> float
(** Monte-Carlo estimate. *)

val prob : ?samples:int -> ?seed:int -> t -> (int array -> bool) -> float
(** Exact when feasible, Monte Carlo (default 100_000 samples) else. *)
