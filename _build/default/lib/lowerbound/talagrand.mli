(** Numerical verification of the Talagrand consequence (Lemma 9):

    [P(A) * (1 - P(B(A, d))) <= exp (-d^2 / 4n)]

    for any [A] in a product space and any [d >= 0].

    Checking the inequality needs membership tests for both [A] and its
    Hamming expansion [B(A, d)].  For arbitrary predicate sets the
    expansion is intractable, so sets are given by descriptors whose
    expansion is closed-form (balls, weight halfspaces, neighbourhoods
    of explicit point lists). *)

type set_desc =
  | Ball of { center : int array; radius : int }
      (** [{x : Delta(x, center) <= radius}]; expansion grows radius. *)
  | Weight_ge of int
      (** [{x : #{i : x_i >= 1} >= k}] (binary spaces); expansion
          lowers the threshold — the "strong majority" decision sets of
          the variant algorithm have exactly this shape. *)
  | Weight_le of int
  | Near of { points : int array list; slack : int }
      (** [{x : min distance to the list <= slack}]; [slack = 0] is the
          explicit set itself. *)

val explicit : int array list -> set_desc
(** [Near] with zero slack. *)

val mem : set_desc -> int array -> bool

val expand : set_desc -> int -> set_desc
(** [expand a d] describes [B(a, d)]. *)

val set_distance : set_desc -> set_desc -> int option
(** Exact [Delta(A, B)] for the descriptor pairs where it is closed
    form: [Weight_ge k] vs [Weight_le k'] ([k - k'] when positive) and
    [Near]/[Near]; [None] otherwise. *)

type check = {
  p_a : float;  (** [P(A)]. *)
  p_expansion : float;  (** [P(B(A, d))]. *)
  lhs : float;  (** [P(A) * (1 - P(B(A, d)))]. *)
  bound : float;  (** [exp (-d^2 / 4n)]. *)
  holds : bool;  (** [lhs <= bound + slack] with Monte-Carlo slack. *)
}

val check :
  ?samples:int -> ?seed:int -> Product.t -> set_desc -> d:int -> check
(** Evaluate both sides of Lemma 9 on a concrete product measure.
    Exact when the space is enumerable, Monte Carlo otherwise (the
    [holds] verdict then allows a [3/sqrt samples] tolerance). *)
