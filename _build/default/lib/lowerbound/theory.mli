(** The closed-form constants of Theorem 5 (and Theorem 17, which uses
    the same ones).

    With [t = c n], the paper sets [alpha := c^2 / 9] and picks [C]
    small enough that

      [C e^{alpha n} <= (1/4) e^{(cn - 1)^2 / 8n}]   for all [n >= 1]  (3)

    and defines [E := C e^{alpha n}], the window count the adversary
    survives.  The success probability of the proof's adversary is then
    at least [1 - 2 E e^{-(cn-1)^2 / 8n} >= 1/2].

    [E] is astronomically small for small [n] and astronomically large
    for large [n]; everything here is computed in log-space. *)

type constants = {
  c : float;  (** Fault fraction, [t = c n]. *)
  alpha : float;  (** [c^2 / 9]. *)
  log_c_const : float;  (** [ln C] for the largest valid [C]. *)
}

val derive : c:float -> constants
(** Computes the largest [C] satisfying (3); requires [0 < c < 1]. *)

val log_windows : constants -> n:int -> float
(** [ln E(n) = ln C + alpha * n]: natural log of the guaranteed window
    count. *)

val windows : constants -> n:int -> float
(** [E(n)], possibly [0.] by underflow or [infinity] by overflow; use
    {!log_windows} for reporting. *)

val exponent_inequality_holds : constants -> n:int -> bool
(** Check (3) at a specific [n]. *)

val log_failure_term : constants -> n:int -> float
(** [ln (2 E e^{-(cn-1)^2/8n})]: log of the adversary's failure
    probability bound; [<= ln (1/2)] whenever (3) holds. *)

val success_probability_lower_bound : constants -> n:int -> float
(** [max 0 (1 - 2 E e^{-(cn-1)^2/8n})]; [>= 1/2] whenever (3) holds. *)

val crossover_n : constants -> float
(** The [n] at which [E(n) = 1]: below it the bound is vacuous, above
    it the guaranteed running time grows as [e^{alpha n}]. *)
