(* Adversary strategies: every windowed strategy must emit Definition-1
   windows, and the balancing strategies must actually balance. *)

let make_config ?(n = 13) ?(t = 2) ?(seed = 1) ?inputs () =
  let inputs = Option.value ~default:(Array.init n (fun i -> i mod 2 = 0)) inputs in
  Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n ~fault_bound:t
    ~inputs ~seed ()

let check_strategy_windows name strategy =
  let config = make_config () in
  for i = 1 to 20 do
    match strategy config with
    | None -> Alcotest.fail (name ^ ": halted unexpectedly")
    | Some window -> (
        match Dsim.Window.validate ~n:13 ~t:2 window with
        | Ok () -> Dsim.Engine.apply_window config window
        | Error m ->
            Alcotest.fail (Printf.sprintf "%s: invalid window at %d: %s" name i m))
  done

let test_all_windowed_strategies_valid () =
  check_strategy_windows "benign" (Adversary.Benign.windowed ());
  check_strategy_windows "silence-first" Adversary.Silence.first_t;
  check_strategy_windows "silence-last" Adversary.Silence.last_t;
  check_strategy_windows "silence-fixed" (Adversary.Silence.fixed ~silenced:[ 3; 7 ]);
  check_strategy_windows "silence-rotating" (Adversary.Silence.rotating ~period:2 ~count:2);
  check_strategy_windows "reset-rotating" (Adversary.Reset_storm.rotating ());
  check_strategy_windows "reset-random" (Adversary.Reset_storm.random ~seed:5 ());
  check_strategy_windows "reset-targeted" (Adversary.Reset_storm.target_undecided ());
  check_strategy_windows "reset+silence" (Adversary.Reset_storm.with_silence ~seed:6 ());
  check_strategy_windows "balancing" (Adversary.Split_vote.windowed ());
  check_strategy_windows "balance+reset" (Adversary.Split_vote.windowed_with_resets ());
  check_strategy_windows "split-brain" (Adversary.Split_brain.windowed ())

let test_rotating_invalid_period () =
  let raised =
    try
      let (_ : ('a, 'b) Adversary.Strategy.windowed) =
        Adversary.Silence.rotating ~period:0 ~count:1
      in
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "period 0 rejected" true raised

let test_census () =
  let inputs = Array.init 12 (fun i -> i < 6) in
  let config = make_config ~n:12 ~t:1 ~inputs () in
  let zeros, ones, silent = Adversary.Strategy.vote_census config in
  Alcotest.(check int) "zeros" 6 zeros;
  Alcotest.(check int) "ones" 6 ones;
  Alcotest.(check int) "silent" 0 silent;
  (* Reset someone: they become silent (recovering). *)
  Dsim.Engine.apply config (Dsim.Step.Reset 0);
  let zeros, ones, silent = Adversary.Strategy.vote_census config in
  Alcotest.(check int) "zeros after reset" 6 zeros;
  Alcotest.(check int) "ones after reset" 5 ones;
  Alcotest.(check int) "silent after reset" 1 silent

let test_majority_holders () =
  (* 7 ones (ids 0,2,3,5,6,8,10) vs 5 zeros. *)
  let inputs = [| true; false; true; true; false; true; true; false; true; false; true; false |] in
  let config = make_config ~n:12 ~t:1 ~inputs () in
  Alcotest.(check (list int)) "two lowest majority holders" [ 0; 2 ]
    (Adversary.Strategy.majority_holders config ~limit:2);
  Alcotest.(check (list int)) "all seven" [ 0; 2; 3; 5; 6; 8; 10 ]
    (Adversary.Strategy.majority_holders config ~limit:100)

let test_limit_windows () =
  let strategy = Adversary.Strategy.limit_windows 3 (Adversary.Benign.windowed ()) in
  let config = make_config () in
  let count = ref 0 in
  let rec drain () =
    match strategy config with
    | Some _ ->
        incr count;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "exactly 3 windows" 3 !count

let test_switch_after () =
  let first _config = Some (Dsim.Window.uniform ~n:13 ~silenced:[ 0; 1 ] ()) in
  let second _config = Some (Dsim.Window.uniform ~n:13 ()) in
  let strategy = Adversary.Strategy.switch_after 2 first second in
  let config = make_config () in
  let silenced_count window = 13 - List.length (Dsim.Window.receive_set window 0) in
  (match strategy config with
  | Some w -> Alcotest.(check int) "first strategy silences" 2 (silenced_count w)
  | None -> Alcotest.fail "halted");
  ignore (strategy config);
  match strategy config with
  | Some w -> Alcotest.(check int) "second strategy after k" 0 (silenced_count w)
  | None -> Alcotest.fail "halted"

let test_balancing_silences_majority () =
  (* 8 ones vs 5 zeros with t = 2: the balancer must silence 2 one-
     holders, never zero-holders. *)
  let inputs = Array.init 13 (fun i -> i < 8) in
  let config = make_config ~inputs () in
  match (Adversary.Split_vote.windowed ()) config with
  | None -> Alcotest.fail "halted"
  | Some window ->
      let receive = Dsim.Window.receive_set window 0 in
      let silenced = List.filter (fun p -> not (List.mem p receive)) (List.init 13 Fun.id) in
      Alcotest.(check int) "silences t" 2 (List.length silenced);
      List.iter
        (fun p -> Alcotest.(check bool) "silenced holds majority" true inputs.(p))
        silenced

let test_balancing_escape_threshold () =
  let thresholds = Protocols.Thresholds.default ~n:13 ~t:2 in
  Alcotest.(check int) "T3 + t" 9
    (Adversary.Split_vote.escape_threshold ~n:13 ~t:2 ~thresholds)

let test_crash_budget_respected () =
  let config = make_config ~n:13 ~t:2 () in
  let strategy = Adversary.Crash.before_decision () in
  for _ = 1 to 2000 do
    match strategy config with
    | Some step -> Dsim.Engine.apply config step
    | None -> ()
  done;
  Alcotest.(check bool) "at most t crashes" true (Dsim.Engine.crashed_count config <= 2)

let test_crash_at_start_rejects_excess () =
  let config = make_config ~n:13 ~t:2 () in
  let strategy = Adversary.Crash.at_start ~crash:[ 0; 1; 2 ] in
  let raised =
    try
      ignore (strategy config);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "more than t rejected" true raised

let test_lookahead_default_candidates () =
  let config = make_config ~n:7 ~t:1 () in
  let candidates = Adversary.Lookahead.default_candidates config in
  (* Fault-free + n silencers + n resetters. *)
  Alcotest.(check int) "candidate count" 15 (List.length candidates);
  List.iter
    (fun w ->
      match Dsim.Window.validate ~n:7 ~t:1 w with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    candidates

let test_byzantine_silent_drops_only_corrupt () =
  let config =
    Dsim.Engine.init ~protocol:(Protocols.Ben_or.protocol ()) ~n:5 ~fault_bound:1
      ~inputs:(Array.make 5 true) ~seed:2 ~record_events:true ()
  in
  let strategy =
    Adversary.Byzantine.lockstep ~corrupt:[ 0 ] ~flavour:Adversary.Byzantine.Silent ()
  in
  for _ = 1 to 2 * ((2 * 5) + 25 + 5) do
    match strategy config with
    | Some step -> Dsim.Engine.apply config step
    | None -> ()
  done;
  let trace = Dsim.Engine.trace config in
  (* Nothing from p0 is ever delivered; everyone else's messages are. *)
  let delivered_from_p0 =
    List.exists
      (function Dsim.Trace.Delivered { src = 0; _ } -> true | _ -> false)
      (Dsim.Trace.events trace)
  in
  Alcotest.(check bool) "p0 never delivered" false delivered_from_p0;
  Alcotest.(check bool) "p0's sends were dropped" true (Dsim.Trace.dropped trace >= 5);
  Alcotest.(check bool) "others delivered" true (Dsim.Trace.delivered trace >= 20)

let test_lookahead_produces_valid_windows () =
  let config = make_config ~n:7 ~t:1 () in
  let strategy = Adversary.Lookahead.windowed ~samples:3 ~horizon:2 ~seed:3 () in
  match strategy config with
  | None -> Alcotest.fail "halted"
  | Some window -> (
      match Dsim.Window.validate ~n:7 ~t:1 window with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

let test_lookahead_custom_candidates () =
  let config = make_config ~n:7 ~t:1 () in
  let only = Dsim.Window.uniform ~n:7 ~silenced:[ 3 ] () in
  let strategy =
    Adversary.Lookahead.windowed ~samples:2 ~horizon:1 ~seed:1
      ~candidates:(fun _ -> [ only ]) ()
  in
  (match strategy config with
  | Some w -> Alcotest.(check bool) "the only candidate wins" true (w = only)
  | None -> Alcotest.fail "halted");
  let empty = Adversary.Lookahead.windowed ~samples:2 ~horizon:1 ~seed:1
      ~candidates:(fun _ -> []) () in
  Alcotest.(check bool) "no candidates halts" true (empty config = None)

let test_lookahead_does_not_mutate () =
  let config = make_config ~n:7 ~t:1 () in
  let before = Dsim.Engine.fingerprint config in
  let strategy = Adversary.Lookahead.windowed ~samples:3 ~horizon:2 ~seed:3 () in
  ignore (strategy config);
  Alcotest.(check string) "configuration untouched by lookahead" before
    (Dsim.Engine.fingerprint config)

let test_split_brain_freezes_deterministic () =
  (* The FLP demonstration as a regression test: pinned coin + the
     split-brain schedule never decides; the fair coin always does. *)
  let n = 13 and t = 2 in
  let inputs = Array.init n (fun i -> i < 7) in
  let run coin seed =
    let config =
      Dsim.Engine.init
        ~protocol:(Protocols.Lewko_variant.protocol ?coin ())
        ~n ~fault_bound:t ~inputs ~seed ()
    in
    Dsim.Runner.run_windows config
      ~strategy:(Adversary.Split_brain.windowed ())
      ~max_windows:3_000 ~stop:`First_decision
  in
  for seed = 1 to 3 do
    let frozen = run (Some (fun _ -> false)) seed in
    Alcotest.(check bool) "deterministic variant frozen" true
      (frozen.Dsim.Runner.decided = []);
    Alcotest.(check bool) "no conflict while frozen" false frozen.Dsim.Runner.conflict;
    let random = run None seed in
    Alcotest.(check bool) "randomized variant decides" true
      (random.Dsim.Runner.decided <> [])
  done

let test_stepwise_strategies_progress () =
  (* Each stepwise strategy must drive Ben-Or to a decision on
     unanimous inputs (liveness sanity). *)
  let check name strategy =
    let config =
      Dsim.Engine.init ~protocol:(Protocols.Ben_or.protocol ()) ~n:7 ~fault_bound:2
        ~inputs:(Array.make 7 true) ~seed:2 ()
    in
    let outcome =
      Dsim.Runner.run_steps config ~strategy ~max_steps:200_000 ~stop:`First_decision
    in
    Alcotest.(check bool) (name ^ " reaches a decision") true
      (outcome.Dsim.Runner.decided <> [])
  in
  check "lockstep" (Adversary.Benign.lockstep ());
  check "random-fair" (Adversary.Benign.random_fair ~seed:4 ~drop_probability:0.4 ());
  check "balancing" (Adversary.Split_vote.stepwise ());
  check "echo-chamber" (Adversary.Echo_chamber.stepwise ());
  check "crash-late" (Adversary.Crash.before_decision ());
  check "staggered" (Adversary.Crash.staggered ~every:3)

let suite =
  [
    Alcotest.test_case "windowed strategies valid" `Quick test_all_windowed_strategies_valid;
    Alcotest.test_case "rotating invalid period" `Quick test_rotating_invalid_period;
    Alcotest.test_case "census" `Quick test_census;
    Alcotest.test_case "majority holders" `Quick test_majority_holders;
    Alcotest.test_case "limit windows" `Quick test_limit_windows;
    Alcotest.test_case "switch after" `Quick test_switch_after;
    Alcotest.test_case "balancing silences majority" `Quick test_balancing_silences_majority;
    Alcotest.test_case "balancing escape threshold" `Quick test_balancing_escape_threshold;
    Alcotest.test_case "crash budget respected" `Quick test_crash_budget_respected;
    Alcotest.test_case "crash at start rejects excess" `Quick
      test_crash_at_start_rejects_excess;
    Alcotest.test_case "lookahead default candidates" `Quick
      test_lookahead_default_candidates;
    Alcotest.test_case "byzantine silent drops only corrupt" `Quick
      test_byzantine_silent_drops_only_corrupt;
    Alcotest.test_case "lookahead valid windows" `Quick test_lookahead_produces_valid_windows;
    Alcotest.test_case "lookahead custom candidates" `Quick test_lookahead_custom_candidates;
    Alcotest.test_case "lookahead does not mutate" `Quick test_lookahead_does_not_mutate;
    Alcotest.test_case "stepwise strategies progress" `Quick test_stepwise_strategies_progress;
    Alcotest.test_case "split-brain freezes deterministic variant" `Quick
      test_split_brain_freezes_deterministic;
  ]
