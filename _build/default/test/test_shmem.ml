(* Shared-memory registers and the counter-race coin (references
   [3, 5]). *)

let test_registers_basics () =
  let r = Shmem.Registers.create ~n:3 in
  Shmem.Registers.write r ~writer:0 5;
  Shmem.Registers.write r ~writer:1 (-2);
  Alcotest.(check int) "read own" 5 (Shmem.Registers.read r ~reader:0 ~owner:0);
  Alcotest.(check int) "read other" (-2) (Shmem.Registers.read r ~reader:0 ~owner:1);
  Alcotest.(check int) "sum" 3 (Shmem.Registers.sum r);
  (* 2 writes + 2 reads counted; peek/sum are free. *)
  Alcotest.(check int) "operations" 4 (Shmem.Registers.operations r);
  Alcotest.(check int) "per-processor ops" 3 (Shmem.Registers.operations_of r 0);
  Alcotest.(check int) "peek free" 5 (Shmem.Registers.peek r 0);
  Alcotest.(check int) "still 4 ops" 4 (Shmem.Registers.operations r)

let test_registers_copy () =
  let r = Shmem.Registers.create ~n:2 in
  Shmem.Registers.write r ~writer:0 1;
  let c = Shmem.Registers.copy r in
  Shmem.Registers.write c ~writer:0 9;
  Alcotest.(check int) "original unchanged" 1 (Shmem.Registers.peek r 0);
  Alcotest.(check int) "copy changed" 9 (Shmem.Registers.peek c 0)

let run_coin ?(n = 8) ?(seed = 1) ?(scheduler = Shmem.Shared_coin.Round_robin) () =
  Shmem.Shared_coin.run ~n ~threshold_factor:1.0 ~seed ~scheduler
    ~max_steps:(5_000 * n * n) ()

let test_coin_completes () =
  let result = run_coin () in
  Array.iter
    (fun o -> Alcotest.(check bool) "everyone outputs" true (o <> None))
    result.Shmem.Shared_coin.outputs;
  Alcotest.(check bool) "agreement under round robin" true
    result.Shmem.Shared_coin.agreed

let test_coin_threshold_reached () =
  let result = run_coin () in
  Alcotest.(check bool) "race reached the threshold" true
    (result.Shmem.Shared_coin.max_abs_sum >= 8)

let test_coin_both_outcomes_occur () =
  let heads = ref 0 and tails = ref 0 in
  for seed = 1 to 30 do
    let result = run_coin ~seed () in
    match result.Shmem.Shared_coin.outputs.(0) with
    | Some true -> incr heads
    | Some false -> incr tails
    | None -> Alcotest.fail "processor 0 did not finish"
  done;
  Alcotest.(check bool) "coin is two-sided" true (!heads > 0 && !tails > 0)

let test_coin_schedulers_terminate () =
  List.iter
    (fun scheduler ->
      let result = run_coin ~scheduler () in
      Alcotest.(check bool) "finished within budget" true
        (Array.for_all (fun o -> o <> None) result.Shmem.Shared_coin.outputs))
    [ Shmem.Shared_coin.Round_robin; Shmem.Shared_coin.Random 3; Shmem.Shared_coin.Stalling ]

let test_coin_step_complexity_quadratic () =
  (* steps/n^2 must not blow up with n (the amortized-collect shape). *)
  let ratio n =
    let s = ref Stats.Summary.empty in
    for seed = 1 to 10 do
      let r = run_coin ~n ~seed () in
      s := Stats.Summary.add_int !s r.Shmem.Shared_coin.total_steps
    done;
    Stats.Summary.mean !s /. float_of_int (n * n)
  in
  let r8 = ratio 8 and r32 = ratio 32 in
  Alcotest.(check bool) "quadratic-ish scaling" true (r32 < r8 *. 4.0)

let test_coin_agreement_rate_under_attack () =
  (* A weak shared coin: adversarial scheduling may break agreement
     sometimes, but not usually. *)
  let agreed = ref 0 in
  for seed = 1 to 30 do
    let r = run_coin ~scheduler:Shmem.Shared_coin.Stalling ~seed () in
    if r.Shmem.Shared_coin.agreed then incr agreed
  done;
  Alcotest.(check bool) "agreement mostly survives stalling" true (!agreed >= 20)

let test_coin_determinism () =
  let a = run_coin ~seed:5 () and b = run_coin ~seed:5 () in
  Alcotest.(check bool) "same seed same race" true
    (a.Shmem.Shared_coin.total_steps = b.Shmem.Shared_coin.total_steps
    && a.Shmem.Shared_coin.outputs = b.Shmem.Shared_coin.outputs)

let suite =
  [
    Alcotest.test_case "registers basics" `Quick test_registers_basics;
    Alcotest.test_case "registers copy" `Quick test_registers_copy;
    Alcotest.test_case "coin completes" `Quick test_coin_completes;
    Alcotest.test_case "coin threshold reached" `Quick test_coin_threshold_reached;
    Alcotest.test_case "coin both outcomes occur" `Quick test_coin_both_outcomes_occur;
    Alcotest.test_case "coin schedulers terminate" `Quick test_coin_schedulers_terminate;
    Alcotest.test_case "coin step complexity" `Quick test_coin_step_complexity_quadratic;
    Alcotest.test_case "coin agreement under attack" `Quick
      test_coin_agreement_rate_under_attack;
    Alcotest.test_case "coin determinism" `Quick test_coin_determinism;
  ]
