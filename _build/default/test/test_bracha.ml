(* Bracha's protocol: integration-level behaviour on the engine plus
   the tag arithmetic and message introspection. *)

let protocol = Protocols.Bracha.protocol ()

let test_tag_arithmetic () =
  Alcotest.(check int) "round 1 phase 1" 5 (Protocols.Bracha.tag_of ~round:1 ~phase:1);
  Alcotest.(check int) "round 3 phase 2" 14 (Protocols.Bracha.tag_of ~round:3 ~phase:2);
  (* Tags are strictly increasing along (round, phase). *)
  let tags =
    List.concat_map
      (fun round -> List.map (fun phase -> Protocols.Bracha.tag_of ~round ~phase) [ 1; 2; 3 ])
      [ 1; 2; 3 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing tags)

let test_message_introspection () =
  let m =
    Protocols.Reliable_broadcast.Echo
      { origin = 4; tag = Protocols.Bracha.tag_of ~round:2 ~phase:3;
        payload = Protocols.Bracha.Dec true }
  in
  Alcotest.(check bool) "bit of Dec" true (protocol.Dsim.Protocol.message_bit m = Some true);
  Alcotest.(check bool) "round decoded" true
    (protocol.Dsim.Protocol.message_round m = Some 2);
  Alcotest.(check bool) "origin is the relayed vote's owner" true
    (protocol.Dsim.Protocol.message_origin m = Some 4);
  match protocol.Dsim.Protocol.rewrite_bit m false with
  | Some (Protocols.Reliable_broadcast.Echo { payload = Protocols.Bracha.Dec false; _ }) -> ()
  | _ -> Alcotest.fail "rewrite must preserve the Dec constructor"

let run ~n ~t ~inputs ~seed ~strategy ~max_steps ~stop =
  let config = Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed () in
  (Dsim.Runner.run_steps config ~strategy ~max_steps ~stop, config)

let test_unanimous_first_round () =
  let n = 7 in
  let outcome, config =
    run ~n ~t:2 ~inputs:(Array.make n true) ~seed:1
      ~strategy:(Adversary.Benign.lockstep ()) ~max_steps:100_000 ~stop:`All_decided
  in
  Alcotest.(check int) "all decide" n (List.length outcome.Dsim.Runner.decided);
  List.iter (fun (_, v) -> Alcotest.(check bool) "value 1" true v) outcome.Dsim.Runner.decided;
  (* Decision happens within the first round (observe round <= 2). *)
  let first_decider =
    match outcome.Dsim.Runner.first_decision with
    | Some (pid, _, _, _, _) -> pid
    | None -> Alcotest.fail "no decision"
  in
  Alcotest.(check bool) "decided early" true
    ((Dsim.Engine.observe config first_decider).Dsim.Obs.round <= 2)

let test_validity_zero () =
  let n = 7 in
  let outcome, _ =
    run ~n ~t:2 ~inputs:(Array.make n false) ~seed:2
      ~strategy:(Adversary.Benign.lockstep ()) ~max_steps:100_000 ~stop:`All_decided
  in
  List.iter (fun (_, v) -> Alcotest.(check bool) "value 0" false v) outcome.Dsim.Runner.decided

let test_agreement_under_echo_chamber () =
  for seed = 1 to 5 do
    let n = 7 in
    let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
    let outcome, _ =
      run ~n ~t:2 ~inputs ~seed
        ~strategy:(Adversary.Echo_chamber.stepwise ())
        ~max_steps:500_000 ~stop:`All_decided
    in
    Alcotest.(check bool) "no conflict" false outcome.Dsim.Runner.conflict;
    let verdict = Agreement.Correctness.of_outcome ~inputs outcome in
    Alcotest.(check bool) "validity" true verdict.Agreement.Correctness.validity
  done

let test_agreement_under_byzantine_flip () =
  (* Safety must survive vote flipping within t < n/3 (liveness may
     suffer; we only require no conflicting decisions). *)
  for seed = 1 to 5 do
    let n = 7 in
    let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
    let outcome, _ =
      run ~n ~t:2 ~inputs ~seed
        ~strategy:
          (Adversary.Byzantine.lockstep ~corrupt:[ 0; 1 ] ~flavour:Adversary.Byzantine.Flip
             ())
        ~max_steps:150_000 ~stop:`All_decided
    in
    Alcotest.(check bool) "no conflict under flip" false outcome.Dsim.Runner.conflict
  done

(* --- validation filter --- *)

let vprotocol = Protocols.Bracha.protocol ~validated:true ()

let accept_vote state ~origin ~tag ~payload ~rng =
  (* Drive an RBC acceptance by delivering 2t+1 = 5 matching readies. *)
  let deliver s src =
    vprotocol.Dsim.Protocol.on_deliver s ~src
      (Protocols.Reliable_broadcast.Ready { origin; tag; payload })
      rng
  in
  List.fold_left deliver state [ 1; 2; 3; 4; 5 ]

let test_validated_quarantines_forged_dec () =
  let rng = Prng.Stream.root 5 in
  let state = vprotocol.Dsim.Protocol.init ~n:7 ~t:2 ~id:0 ~input:true in
  (* A Dec vote for round 1 phase 3 with no admitted phase-2 votes at
     all cannot be justified: it must sit in quarantine. *)
  let tag3 = Protocols.Bracha.tag_of ~round:1 ~phase:3 in
  let state =
    accept_vote state ~origin:6 ~tag:tag3 ~payload:(Protocols.Bracha.Dec false) ~rng
  in
  Alcotest.(check int) "forged Dec quarantined" 1
    (Protocols.Bracha.quarantined_count state);
  (* Justification is a chain: phase-2 votes need phase-1 support
     themselves.  Admit 3 phase-1 votes for false... *)
  let tag1 = Protocols.Bracha.tag_of ~round:1 ~phase:1 in
  let state =
    List.fold_left
      (fun s origin ->
        accept_vote s ~origin ~tag:tag1 ~payload:(Protocols.Bracha.Val false) ~rng)
      state [ 1; 2; 3 ]
  in
  Alcotest.(check int) "Dec still unjustified" 1
    (Protocols.Bracha.quarantined_count state);
  (* ...then 4 = floor(7/2)+1 phase-2 votes for false, which releases
     the decision candidate transitively. *)
  let tag2 = Protocols.Bracha.tag_of ~round:1 ~phase:2 in
  let state =
    List.fold_left
      (fun s origin ->
        accept_vote s ~origin ~tag:tag2 ~payload:(Protocols.Bracha.Val false) ~rng)
      state [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "justified Dec released" 0
    (Protocols.Bracha.quarantined_count state)

let test_validated_phase2_needs_phase1_support () =
  let rng = Prng.Stream.root 6 in
  let state = vprotocol.Dsim.Protocol.init ~n:7 ~t:2 ~id:0 ~input:true in
  let tag2 = Protocols.Bracha.tag_of ~round:1 ~phase:2 in
  (* Phase-2 Val without any phase-1 support: quarantined. *)
  let state =
    accept_vote state ~origin:6 ~tag:tag2 ~payload:(Protocols.Bracha.Val true) ~rng
  in
  Alcotest.(check int) "unsupported phase-2 vote held" 1
    (Protocols.Bracha.quarantined_count state);
  (* Admit 3 = floor((n-t)/2)+1 phase-1 votes for true: released. *)
  let tag1 = Protocols.Bracha.tag_of ~round:1 ~phase:1 in
  let state =
    List.fold_left
      (fun s origin ->
        accept_vote s ~origin ~tag:tag1 ~payload:(Protocols.Bracha.Val true) ~rng)
      state [ 1; 2; 3 ]
  in
  Alcotest.(check int) "released once supported" 0
    (Protocols.Bracha.quarantined_count state)

let test_validated_liveness () =
  (* The validated protocol still terminates under fair scheduling and
     under the Byzantine flip adversary's stress, without conflicts. *)
  let n = 7 in
  let run_v ~inputs ~seed ~strategy ~max_steps =
    let config =
      Dsim.Engine.init ~protocol:vprotocol ~n ~fault_bound:2 ~inputs ~seed ()
    in
    Dsim.Runner.run_steps config ~strategy ~max_steps ~stop:`All_decided
  in
  let outcome =
    run_v ~inputs:(Array.make n true) ~seed:3
      ~strategy:(Adversary.Benign.lockstep ()) ~max_steps:200_000
  in
  Alcotest.(check int) "validated unanimous decides" n
    (List.length outcome.Dsim.Runner.decided);
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let outcome =
    run_v ~inputs ~seed:4
      ~strategy:
        (Adversary.Byzantine.lockstep ~corrupt:[ 0 ] ~flavour:Adversary.Byzantine.Flip ())
      ~max_steps:300_000
  in
  Alcotest.(check bool) "no conflict with validation under flip" false
    outcome.Dsim.Runner.conflict

let test_validation_restores_liveness_under_flip () =
  (* At boundary resilience (n = 7, t = 2) the vote-flipping adversary
     stalls plain Bracha for a very long time, but the validation
     filter quarantines the corrupt votes' influence and decisions
     return.  Fixed seeds keep this deterministic. *)
  let n = 7 in
  let budget = 300_000 in
  let run protocol seed =
    let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
    let config = Dsim.Engine.init ~protocol ~n ~fault_bound:2 ~inputs ~seed () in
    Dsim.Runner.run_steps config
      ~strategy:
        (Adversary.Byzantine.lockstep ~corrupt:[ 0; 1 ] ~flavour:Adversary.Byzantine.Flip
           ())
      ~max_steps:budget ~stop:`All_decided
  in
  for seed = 1 to 3 do
    let plain = run (Protocols.Bracha.protocol ()) seed in
    let validated = run (Protocols.Bracha.protocol ~validated:true ()) seed in
    Alcotest.(check bool)
      (Printf.sprintf "plain stalls (seed %d)" seed)
      true
      (plain.Dsim.Runner.reason = Dsim.Runner.Budget_exhausted);
    Alcotest.(check bool)
      (Printf.sprintf "validated decides (seed %d)" seed)
      true
      (validated.Dsim.Runner.reason = Dsim.Runner.Stopped);
    Alcotest.(check bool) "validated no conflict" false validated.Dsim.Runner.conflict
  done

let test_crash_tolerance () =
  let n = 7 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let outcome, _ =
    run ~n ~t:2 ~inputs ~seed:4
      ~strategy:(Adversary.Crash.at_start ~crash:[ 5; 6 ])
      ~max_steps:500_000 ~stop:`All_decided
  in
  Alcotest.(check bool) "terminates with 2 crashes" true
    (outcome.Dsim.Runner.reason = Dsim.Runner.Stopped);
  Alcotest.(check int) "5 live deciders" 5 (List.length outcome.Dsim.Runner.decided);
  Alcotest.(check bool) "no conflict" false outcome.Dsim.Runner.conflict

let suite =
  [
    Alcotest.test_case "tag arithmetic" `Quick test_tag_arithmetic;
    Alcotest.test_case "message introspection" `Quick test_message_introspection;
    Alcotest.test_case "unanimous first round" `Quick test_unanimous_first_round;
    Alcotest.test_case "validity zero" `Quick test_validity_zero;
    Alcotest.test_case "agreement under echo chamber" `Quick
      test_agreement_under_echo_chamber;
    Alcotest.test_case "agreement under byzantine flip" `Quick
      test_agreement_under_byzantine_flip;
    Alcotest.test_case "validated quarantines forged Dec" `Quick
      test_validated_quarantines_forged_dec;
    Alcotest.test_case "validated phase-2 needs phase-1 support" `Quick
      test_validated_phase2_needs_phase1_support;
    Alcotest.test_case "validated liveness" `Quick test_validated_liveness;
    Alcotest.test_case "validation restores liveness under flip" `Quick
      test_validation_restores_liveness_under_flip;
    Alcotest.test_case "crash tolerance" `Quick test_crash_tolerance;
  ]
