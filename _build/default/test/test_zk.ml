(* Z^k set probes (Definitions 10/12) on the variant algorithm. *)

let protocol = Protocols.Lewko_variant.protocol ()

let config inputs =
  Dsim.Engine.init ~protocol ~n:7 ~fault_bound:1 ~inputs ~seed:11 ()

let test_canonical_choices_valid () =
  let n = 13 and t = 2 in
  List.iter
    (fun (resets, silenced) ->
      let w = Dsim.Window.uniform ~n ~silenced ~resets () in
      match Dsim.Window.validate ~n ~t w with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    (Lowerbound.Zk_sets.canonical_choices ~n ~t)

let test_canonical_choices_zero_t () =
  Alcotest.(check int) "only the fault-free choice" 1
    (List.length (Lowerbound.Zk_sets.canonical_choices ~n:5 ~t:0))

let test_in_z0 () =
  let c = config (Array.make 7 false) in
  Alcotest.(check bool) "fresh config outside Z0" false
    (Lowerbound.Zk_sets.in_z0 c ~value:false);
  (* Run to a decision. *)
  ignore
    (Dsim.Runner.run_windows c
       ~strategy:(Adversary.Benign.windowed ())
       ~max_windows:10 ~stop:`All_decided);
  Alcotest.(check bool) "decided-0 config in Z^0_0" true
    (Lowerbound.Zk_sets.in_z0 c ~value:false);
  Alcotest.(check bool) "not in Z^0_1" false (Lowerbound.Zk_sets.in_z0 c ~value:true)

let test_member_k0_is_z0 () =
  let c = config (Array.make 7 true) in
  let rng = Prng.Stream.root 1 in
  Alcotest.(check bool) "k=0 delegates to Z0" false
    (Lowerbound.Zk_sets.member c ~k:0 ~value:true ~samples:1 ~tau:0.5 ~rng)

let test_member_unanimous () =
  let rng = Prng.Stream.root 2 in
  let tau = Stats.Tail.tau ~n:7 ~t:1 in
  let all_zero = config (Array.make 7 false) in
  Alcotest.(check bool) "all-zero in Z^1_0" true
    (Lowerbound.Zk_sets.member all_zero ~k:1 ~value:false ~samples:6 ~tau ~rng);
  Alcotest.(check bool) "all-zero not in Z^1_1" false
    (Lowerbound.Zk_sets.member all_zero ~k:1 ~value:true ~samples:6 ~tau ~rng)

let test_member_does_not_mutate () =
  let c = config (Array.make 7 false) in
  let before = Dsim.Engine.fingerprint c in
  let rng = Prng.Stream.root 3 in
  ignore (Lowerbound.Zk_sets.member c ~k:1 ~value:false ~samples:4 ~tau:0.9 ~rng);
  Alcotest.(check string) "config untouched" before (Dsim.Engine.fingerprint c)

let test_separation () =
  let sep =
    Lowerbound.Zk_sets.estimate_z0_separation ~protocol ~n:7 ~t:1 ~runs:40 ~seed:5
  in
  Alcotest.(check bool) "found both decision values" true
    (sep.Lowerbound.Zk_sets.pairs_checked > 0);
  Alcotest.(check bool) "Lemma 11 separation" true sep.Lowerbound.Zk_sets.holds;
  Alcotest.(check bool) "distance exceeds t" true
    (sep.Lowerbound.Zk_sets.min_distance > 1)

let test_zk_separation () =
  let sep =
    Lowerbound.Zk_sets.estimate_zk_separation ~protocol ~n:7 ~t:1 ~k:1 ~runs:12
      ~samples:5 ~seed:4
  in
  Alcotest.(check bool) "both Z^1 buckets sampled" true
    (sep.Lowerbound.Zk_sets.pairs_checked > 0);
  Alcotest.(check bool) "Lemma 13 separation at k=1" true
    sep.Lowerbound.Zk_sets.holds

let suite =
  [
    Alcotest.test_case "zk separation (k=1)" `Quick test_zk_separation;
    Alcotest.test_case "canonical choices valid" `Quick test_canonical_choices_valid;
    Alcotest.test_case "canonical choices t=0" `Quick test_canonical_choices_zero_t;
    Alcotest.test_case "in_z0" `Quick test_in_z0;
    Alcotest.test_case "member k=0 is Z0" `Quick test_member_k0_is_z0;
    Alcotest.test_case "member unanimous" `Quick test_member_unanimous;
    Alcotest.test_case "member does not mutate" `Quick test_member_does_not_mutate;
    Alcotest.test_case "separation" `Quick test_separation;
  ]
