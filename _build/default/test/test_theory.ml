(* Theorem 5's constants. *)

let test_alpha () =
  let k = Lowerbound.Theory.derive ~c:(1.0 /. 6.0) in
  Alcotest.(check bool) "alpha = c^2/9" true
    (Float.abs (k.Lowerbound.Theory.alpha -. (1.0 /. 324.0)) < 1e-12)

let test_derive_validation () =
  let raised c = try ignore (Lowerbound.Theory.derive ~c); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "c = 0 rejected" true (raised 0.0);
  Alcotest.(check bool) "c = 1 rejected" true (raised 1.0);
  Alcotest.(check bool) "negative rejected" true (raised (-0.5))

let test_inequality_3_holds_everywhere () =
  (* The defining property of C: (3) holds for all n >= 1. *)
  List.iter
    (fun c ->
      let k = Lowerbound.Theory.derive ~c in
      for n = 1 to 2000 do
        Alcotest.(check bool)
          (Printf.sprintf "(3) at c=%.3f n=%d" c n)
          true
          (Lowerbound.Theory.exponent_inequality_holds k ~n)
      done)
    [ 1.0 /. 6.0; 1.0 /. 12.0; 0.3 ]

let test_c_is_largest () =
  (* C is tight: scaling it up by e^0.01 must violate (3) somewhere. *)
  let k = Lowerbound.Theory.derive ~c:(1.0 /. 6.0) in
  let bumped = { k with Lowerbound.Theory.log_c_const = k.Lowerbound.Theory.log_c_const +. 0.01 } in
  let violated = ref false in
  for n = 1 to 2000 do
    if not (Lowerbound.Theory.exponent_inequality_holds bumped ~n) then violated := true
  done;
  Alcotest.(check bool) "larger C breaks (3)" true !violated

let test_windows_grow_exponentially () =
  let k = Lowerbound.Theory.derive ~c:(1.0 /. 6.0) in
  let l1 = Lowerbound.Theory.log_windows k ~n:1000 in
  let l2 = Lowerbound.Theory.log_windows k ~n:2000 in
  Alcotest.(check bool) "log-linear growth" true
    (Float.abs (l2 -. l1 -. (k.Lowerbound.Theory.alpha *. 1000.0)) < 1e-9);
  Alcotest.(check bool) "eventually enormous" true
    (Lowerbound.Theory.log_windows k ~n:100_000 > 100.0)

let test_success_probability () =
  let k = Lowerbound.Theory.derive ~c:(1.0 /. 6.0) in
  List.iter
    (fun n ->
      let p = Lowerbound.Theory.success_probability_lower_bound k ~n in
      Alcotest.(check bool)
        (Printf.sprintf "success >= 1/2 at n=%d" n)
        true (p >= 0.5 -. 1e-9);
      Alcotest.(check bool) "at most 1" true (p <= 1.0))
    [ 10; 100; 1000; 10000 ]

let test_crossover () =
  let k = Lowerbound.Theory.derive ~c:(1.0 /. 6.0) in
  let x = Lowerbound.Theory.crossover_n k in
  (* E(n) < 1 below the crossover, > 1 above. *)
  let below = int_of_float (x *. 0.9) and above = int_of_float (x *. 1.1) in
  Alcotest.(check bool) "below crossover E < 1" true
    (Lowerbound.Theory.log_windows k ~n:below < 0.0);
  Alcotest.(check bool) "above crossover E > 1" true
    (Lowerbound.Theory.log_windows k ~n:above > 0.0)

let test_windows_no_exception_at_extremes () =
  let k = Lowerbound.Theory.derive ~c:(1.0 /. 6.0) in
  (* exp overflow/underflow degrade gracefully to infinity/0. *)
  Alcotest.(check bool) "huge n overflows to infinity" true
    (Lowerbound.Theory.windows k ~n:10_000_000 = infinity);
  Alcotest.(check bool) "tiny n underflows toward 0" true
    (Lowerbound.Theory.windows k ~n:1 < 1.0)

let test_smaller_c_weaker_bound () =
  (* A weaker adversary (smaller c) yields a smaller exponent. *)
  let strong = Lowerbound.Theory.derive ~c:(1.0 /. 6.0) in
  let weak = Lowerbound.Theory.derive ~c:(1.0 /. 24.0) in
  Alcotest.(check bool) "alpha ordering" true
    (weak.Lowerbound.Theory.alpha < strong.Lowerbound.Theory.alpha);
  Alcotest.(check bool) "window ordering at n=10^5" true
    (Lowerbound.Theory.log_windows weak ~n:100_000
    < Lowerbound.Theory.log_windows strong ~n:100_000)

let suite =
  [
    Alcotest.test_case "alpha" `Quick test_alpha;
    Alcotest.test_case "derive validation" `Quick test_derive_validation;
    Alcotest.test_case "(3) holds everywhere" `Quick test_inequality_3_holds_everywhere;
    Alcotest.test_case "C is largest" `Quick test_c_is_largest;
    Alcotest.test_case "windows grow exponentially" `Quick test_windows_grow_exponentially;
    Alcotest.test_case "success probability" `Quick test_success_probability;
    Alcotest.test_case "crossover" `Quick test_crossover;
    Alcotest.test_case "windows at extremes" `Quick test_windows_no_exception_at_extremes;
    Alcotest.test_case "smaller c weaker bound" `Quick test_smaller_c_weaker_bound;
  ]
