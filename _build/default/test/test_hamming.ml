(* Hamming geometry. *)

let test_distance () =
  Alcotest.(check int) "identical" 0
    (Lowerbound.Hamming.distance [| "a"; "b" |] [| "a"; "b" |]);
  Alcotest.(check int) "one diff" 1
    (Lowerbound.Hamming.distance [| "a"; "b" |] [| "a"; "c" |]);
  Alcotest.(check int) "all diff" 2
    (Lowerbound.Hamming.distance [| "a"; "b" |] [| "x"; "y" |])

let test_distance_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Hamming.distance: length mismatch") (fun () ->
      ignore (Lowerbound.Hamming.distance [| "a" |] [| "a"; "b" |]))

let test_distance_int () =
  Alcotest.(check int) "ints" 2
    (Lowerbound.Hamming.distance_int [| 1; 2; 3 |] [| 1; 0; 0 |])

let test_distance_to_set () =
  let set = [ [| "a"; "b"; "c" |]; [| "x"; "b"; "c" |] ] in
  Alcotest.(check int) "closest point wins" 1
    (Lowerbound.Hamming.distance_to_set [| "x"; "b"; "z" |] set);
  Alcotest.(check int) "member has distance 0" 0
    (Lowerbound.Hamming.distance_to_set [| "a"; "b"; "c" |] set)

let test_distance_to_empty_set () =
  Alcotest.check_raises "empty set"
    (Invalid_argument "Hamming.distance_to_set: empty set") (fun () ->
      ignore (Lowerbound.Hamming.distance_to_set [| "a" |] []))

let test_distance_between_sets () =
  let a = [ [| "0"; "0" |]; [| "0"; "1" |] ] in
  let b = [ [| "1"; "1" |] ] in
  Alcotest.(check int) "min over pairs" 1 (Lowerbound.Hamming.distance_between_sets a b)

let test_within () =
  let set = [ [| "a"; "b" |] ] in
  Alcotest.(check bool) "within 1" true (Lowerbound.Hamming.within ~d:1 [| "a"; "x" |] set);
  Alcotest.(check bool) "not within 0" false
    (Lowerbound.Hamming.within ~d:0 [| "a"; "x" |] set)

let test_config_distance () =
  let protocol = Protocols.Lewko_variant.protocol () in
  let make inputs =
    Dsim.Engine.init ~protocol ~n:7 ~fault_bound:1 ~inputs ~seed:1 ()
  in
  let a = make (Array.make 7 false) in
  let b = make (Array.make 7 false) in
  Alcotest.(check int) "identical initial configs" 0
    (Lowerbound.Hamming.config_distance a b);
  let c = make (Array.init 7 (fun i -> i = 0)) in
  Alcotest.(check int) "one input flipped = distance 1" 1
    (Lowerbound.Hamming.config_distance a c)

let suite =
  [
    Alcotest.test_case "distance" `Quick test_distance;
    Alcotest.test_case "distance mismatch" `Quick test_distance_mismatch;
    Alcotest.test_case "distance int" `Quick test_distance_int;
    Alcotest.test_case "distance to set" `Quick test_distance_to_set;
    Alcotest.test_case "distance to empty set" `Quick test_distance_to_empty_set;
    Alcotest.test_case "distance between sets" `Quick test_distance_between_sets;
    Alcotest.test_case "within" `Quick test_within;
    Alcotest.test_case "config distance" `Quick test_config_distance;
  ]
