(* End-to-end smoke tests: the variant algorithm under simple window
   adversaries.  Deeper per-module suites live in their own files. *)

let run_variant ~n ~t ~inputs ~seed ~strategy ~max_windows =
  let protocol = Protocols.Lewko_variant.protocol () in
  let config =
    Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed ()
  in
  Dsim.Runner.run_windows config ~strategy ~max_windows ~stop:`All_decided

let test_unanimous_zero () =
  let n = 12 in
  let outcome =
    run_variant ~n ~t:1 ~inputs:(Array.make n false) ~seed:1
      ~strategy:(Adversary.Benign.windowed ()) ~max_windows:10
  in
  Alcotest.(check int) "all decide" n (List.length outcome.Dsim.Runner.decided);
  (* Unanimous inputs decide within the very first acceptable window:
     everyone's first T1 votes already show T2 agreement. *)
  Alcotest.(check int) "first window" 1 outcome.Dsim.Runner.windows;
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "decision is 0" false v)
    outcome.Dsim.Runner.decided

let test_unanimous_one () =
  let n = 12 in
  let outcome =
    run_variant ~n ~t:1 ~inputs:(Array.make n true) ~seed:2
      ~strategy:(Adversary.Benign.windowed ()) ~max_windows:10
  in
  Alcotest.(check int) "all decide" n (List.length outcome.Dsim.Runner.decided);
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "decision is 1" true v)
    outcome.Dsim.Runner.decided

let test_split_inputs_terminate_benign () =
  let n = 12 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let outcome =
    run_variant ~n ~t:1 ~inputs ~seed:3 ~strategy:(Adversary.Benign.windowed ())
      ~max_windows:200
  in
  Alcotest.(check bool) "terminates" true (outcome.Dsim.Runner.decided <> []);
  Alcotest.(check bool) "no conflict" false outcome.Dsim.Runner.conflict

let test_reset_storm_correct () =
  let n = 13 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let outcome =
    run_variant ~n ~t ~inputs ~seed:4
      ~strategy:(Adversary.Reset_storm.random ~seed:99 ())
      ~max_windows:2000
  in
  Alcotest.(check bool) "no conflict under resets" false outcome.Dsim.Runner.conflict;
  Alcotest.(check bool) "some processor decided" true (outcome.Dsim.Runner.decided <> [])

let run_steps protocol ~n ~t ~inputs ~seed ~strategy ~max_steps =
  let config = Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed () in
  Dsim.Runner.run_steps config ~strategy ~max_steps ~stop:`All_decided

let test_ben_or_unanimous () =
  let n = 9 in
  let outcome =
    run_steps (Protocols.Ben_or.protocol ()) ~n ~t:2 ~inputs:(Array.make n true)
      ~seed:5 ~strategy:(Adversary.Benign.lockstep ()) ~max_steps:20_000
  in
  Alcotest.(check int) "all decide" n (List.length outcome.Dsim.Runner.decided);
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "decision is 1" true v)
    outcome.Dsim.Runner.decided

let test_ben_or_split () =
  let n = 9 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let outcome =
    run_steps (Protocols.Ben_or.protocol ()) ~n ~t:2 ~inputs ~seed:6
      ~strategy:(Adversary.Benign.lockstep ()) ~max_steps:200_000
  in
  Alcotest.(check bool) "terminates" true (outcome.Dsim.Runner.decided <> []);
  Alcotest.(check bool) "no conflict" false outcome.Dsim.Runner.conflict

let test_bracha_unanimous () =
  let n = 7 in
  let outcome =
    run_steps (Protocols.Bracha.protocol ()) ~n ~t:2 ~inputs:(Array.make n false)
      ~seed:7 ~strategy:(Adversary.Benign.lockstep ()) ~max_steps:100_000
  in
  Alcotest.(check int) "all decide" n (List.length outcome.Dsim.Runner.decided);
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "decision is 0" false v)
    outcome.Dsim.Runner.decided

let test_bracha_split () =
  let n = 7 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let outcome =
    run_steps (Protocols.Bracha.protocol ()) ~n ~t:2 ~inputs ~seed:8
      ~strategy:(Adversary.Benign.lockstep ()) ~max_steps:400_000
  in
  Alcotest.(check bool) "terminates" true (outcome.Dsim.Runner.decided <> []);
  Alcotest.(check bool) "no conflict" false outcome.Dsim.Runner.conflict

let test_disciplines_agree () =
  (* The windowed benign schedule and the free-running lockstep deliver
     the same messages in the same per-recipient order, so for the
     variant protocol the two disciplines must produce identical
     decisions round for round, given the same seed. *)
  for seed = 1 to 5 do
    let n = 9 in
    let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
    let windowed =
      let config =
        Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n
          ~fault_bound:1 ~inputs ~seed ()
      in
      let outcome =
        Dsim.Runner.run_windows config
          ~strategy:(Adversary.Benign.windowed ())
          ~max_windows:5_000 ~stop:`All_decided
      in
      (List.sort compare outcome.Dsim.Runner.decided, Dsim.Engine.window_index config)
    in
    let stepwise =
      let config =
        Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n
          ~fault_bound:1 ~inputs ~seed ()
      in
      let outcome =
        Dsim.Runner.run_steps config
          ~strategy:(Adversary.Benign.lockstep ())
          ~max_steps:5_000_000 ~stop:`All_decided
      in
      List.sort compare outcome.Dsim.Runner.decided
    in
    Alcotest.(check (list (pair int bool))) "same decisions" (fst windowed) stepwise
  done

let suite =
  [
    Alcotest.test_case "unanimous zero decides zero" `Quick test_unanimous_zero;
    Alcotest.test_case "window and lockstep disciplines agree" `Quick
      test_disciplines_agree;
    Alcotest.test_case "unanimous one decides one" `Quick test_unanimous_one;
    Alcotest.test_case "split inputs terminate (benign)" `Quick
      test_split_inputs_terminate_benign;
    Alcotest.test_case "reset storm stays correct" `Quick test_reset_storm_correct;
    Alcotest.test_case "ben-or unanimous" `Quick test_ben_or_unanimous;
    Alcotest.test_case "ben-or split terminates" `Quick test_ben_or_split;
    Alcotest.test_case "bracha unanimous" `Quick test_bracha_unanimous;
    Alcotest.test_case "bracha split terminates" `Quick test_bracha_split;
  ]
