(* Tests for the statistics substrate: summaries, histograms,
   regression fits, tail bounds and table rendering. *)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_summary_basic () =
  let s = Stats.Summary.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check bool) "mean" true (close (Stats.Summary.mean s) 2.5);
  Alcotest.(check bool) "variance" true
    (close (Stats.Summary.variance s) (5.0 /. 3.0));
  Alcotest.(check bool) "min" true (close (Stats.Summary.min_value s) 1.0);
  Alcotest.(check bool) "max" true (close (Stats.Summary.max_value s) 4.0);
  Alcotest.(check bool) "total" true (close (Stats.Summary.total s) 10.0)

let test_summary_empty () =
  let s = Stats.Summary.empty in
  Alcotest.(check int) "count" 0 (Stats.Summary.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Summary.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Stats.Summary.variance s))

let test_summary_single () =
  let s = Stats.Summary.of_list [ 5.0 ] in
  Alcotest.(check bool) "mean" true (close (Stats.Summary.mean s) 5.0);
  Alcotest.(check bool) "variance nan with one sample" true
    (Float.is_nan (Stats.Summary.variance s))

let test_summary_merge () =
  let a = Stats.Summary.of_list [ 1.0; 2.0; 3.0 ] in
  let b = Stats.Summary.of_list [ 10.0; 20.0 ] in
  let merged = Stats.Summary.merge a b in
  let direct = Stats.Summary.of_list [ 1.0; 2.0; 3.0; 10.0; 20.0 ] in
  Alcotest.(check int) "count" (Stats.Summary.count direct) (Stats.Summary.count merged);
  Alcotest.(check bool) "mean" true
    (close (Stats.Summary.mean merged) (Stats.Summary.mean direct));
  Alcotest.(check bool) "variance" true
    (close ~eps:1e-9 (Stats.Summary.variance merged) (Stats.Summary.variance direct))

let test_summary_merge_empty () =
  let a = Stats.Summary.of_list [ 1.0; 2.0 ] in
  let m1 = Stats.Summary.merge a Stats.Summary.empty in
  let m2 = Stats.Summary.merge Stats.Summary.empty a in
  Alcotest.(check bool) "merge right empty" true
    (close (Stats.Summary.mean m1) (Stats.Summary.mean a));
  Alcotest.(check bool) "merge left empty" true
    (close (Stats.Summary.mean m2) (Stats.Summary.mean a))

let test_summary_ci () =
  (* 100 identical observations: zero variance, zero CI width. *)
  let s = Stats.Summary.of_list (List.init 100 (fun _ -> 5.0)) in
  Alcotest.(check bool) "zero ci" true (close (Stats.Summary.ci95_half_width s) 0.0);
  (* Known case: sd = 1 over 100 samples -> half width 0.196. *)
  let alternating = List.init 100 (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  let s = Stats.Summary.of_list alternating in
  Alcotest.(check bool) "ci from sd/sqrt(n)" true
    (Float.abs (Stats.Summary.ci95_half_width s -. (1.96 *. Stats.Summary.stddev s /. 10.0))
    < 1e-9)

let test_histogram_density () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 1; 1; 2; 5; 5; 5 ];
  Alcotest.(check int) "count" 6 (Stats.Histogram.count h);
  let density = Stats.Histogram.density h in
  Alcotest.(check int) "buckets" 3 (List.length density);
  let frac_of k = List.assoc k density in
  Alcotest.(check bool) "bucket 1" true (close (frac_of 1) (2.0 /. 6.0));
  Alcotest.(check bool) "bucket 5" true (close (frac_of 5) (3.0 /. 6.0))

let test_histogram_survival () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 1; 2; 3; 4 ];
  let survival = Stats.Histogram.survival h in
  Alcotest.(check int) "points" 4 (List.length survival);
  (* Survival is non-increasing and ends at zero. *)
  let probs = List.map snd survival in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing" true (non_increasing probs);
  Alcotest.(check bool) "ends at 0" true (close (List.nth probs 3) 0.0);
  Alcotest.(check bool) "first is 3/4" true (close (List.hd probs) 0.75)

let test_histogram_quantile () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) (List.init 100 (fun i -> i));
  Alcotest.(check int) "median" 49 (Stats.Histogram.quantile h 0.5);
  Alcotest.(check int) "p90" 89 (Stats.Histogram.quantile h 0.9);
  Alcotest.(check int) "min" 0 (Stats.Histogram.quantile h 0.0)

let test_histogram_bucket_width () =
  let h = Stats.Histogram.create ~bucket_width:10 () in
  List.iter (Stats.Histogram.add h) [ 3; 7; 12; 25 ];
  Alcotest.(check int) "three buckets" 3 (Stats.Histogram.bucket_count h)

let test_histogram_negative () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Histogram.add: negative observation") (fun () ->
      Stats.Histogram.add h (-1))

let test_regression_exact_line () =
  let fit = Stats.Regression.linear [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check bool) "slope 2" true (close fit.Stats.Regression.slope 2.0);
  Alcotest.(check bool) "intercept 1" true (close fit.Stats.Regression.intercept 1.0);
  Alcotest.(check bool) "r2 = 1" true (close fit.Stats.Regression.r_squared 1.0)

let test_regression_log2 () =
  (* y = 2^(0.5 x + 1) *)
  let points = List.map (fun x -> (x, 2.0 ** ((0.5 *. x) +. 1.0))) [ 1.0; 2.0; 3.0; 4.0 ] in
  let fit = Stats.Regression.log2_linear points in
  Alcotest.(check bool) "slope 0.5" true (close ~eps:1e-6 fit.Stats.Regression.slope 0.5);
  Alcotest.(check bool) "intercept 1" true
    (close ~eps:1e-6 fit.Stats.Regression.intercept 1.0)

let test_regression_loglog () =
  (* y = x^3 *)
  let points = List.map (fun x -> (x, x ** 3.0)) [ 1.0; 2.0; 4.0; 8.0 ] in
  let fit = Stats.Regression.loglog points in
  Alcotest.(check bool) "degree 3" true (close ~eps:1e-6 fit.Stats.Regression.slope 3.0)

let test_regression_degenerate () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.linear: need at least two points") (fun () ->
      ignore (Stats.Regression.linear [ (1.0, 1.0) ]));
  Alcotest.check_raises "vertical"
    (Invalid_argument "Regression.linear: all x values identical") (fun () ->
      ignore (Stats.Regression.linear [ (1.0, 1.0); (1.0, 2.0) ]))

let test_tail_binomial_pmf_sums () =
  let n = 12 in
  let total = ref 0.0 in
  for k = 0 to n do
    total := !total +. Stats.Tail.binomial_pmf n 0.3 k
  done;
  Alcotest.(check bool) "pmf sums to 1" true (close ~eps:1e-9 !total 1.0)

let test_tail_binomial_symmetry () =
  (* For p = 1/2, P[X >= k] = P[X <= n-k]. *)
  let n = 10 in
  let upper = Stats.Tail.binomial_tail_ge n 0.5 7 in
  let lower = 1.0 -. Stats.Tail.binomial_tail_ge n 0.5 4 in
  Alcotest.(check bool) "symmetry" true (close ~eps:1e-9 upper lower)

let test_tail_binomial_exact_value () =
  (* P[Bin(4, 1/2) >= 3] = (4 + 1)/16. *)
  Alcotest.(check bool) "exact" true
    (close ~eps:1e-12 (Stats.Tail.binomial_tail_ge 4 0.5 3) (5.0 /. 16.0))

let test_tail_edges () =
  Alcotest.(check bool) "k <= 0 is 1" true (close (Stats.Tail.binomial_tail_ge 5 0.5 0) 1.0);
  Alcotest.(check bool) "k > n is 0" true (close (Stats.Tail.binomial_tail_ge 5 0.5 6) 0.0);
  Alcotest.(check bool) "p = 0" true (close (Stats.Tail.binomial_tail_ge 5 0.0 1) 0.0);
  Alcotest.(check bool) "p = 1" true (close (Stats.Tail.binomial_tail_ge 5 1.0 5) 1.0)

let test_tail_hoeffding_dominates () =
  (* The Hoeffding bound must upper-bound the exact tail deviation. *)
  let n = 40 in
  List.iter
    (fun eps ->
      let k = int_of_float (ceil ((0.5 +. eps) *. float_of_int n)) in
      let exact = Stats.Tail.binomial_tail_ge n 0.5 k in
      Alcotest.(check bool) "hoeffding >= exact" true
        (Stats.Tail.hoeffding_upper n eps +. 1e-12 >= exact))
    [ 0.1; 0.2; 0.3 ]

let test_tail_paper_quantities () =
  let n = 64 and t = 8 in
  Alcotest.(check bool) "tau in (0,1)" true
    (Stats.Tail.tau ~n ~t > 0.0 && Stats.Tail.tau ~n ~t < 1.0);
  Alcotest.(check bool) "eta > tau (weaker exponent)" true
    (Stats.Tail.eta ~n ~t > Stats.Tail.tau ~n ~t);
  Alcotest.(check bool) "all-agree = 2^(1-n)" true
    (close (Stats.Tail.all_agree_probability 5) (1.0 /. 16.0));
  Alcotest.(check bool) "talagrand bound at d=0 is 1" true
    (close (Stats.Tail.talagrand_bound ~n ~d:0.0) 1.0)

let test_log_choose () =
  let close_log a b = Float.abs (a -. b) < 1e-9 in
  Alcotest.(check bool) "C(5,2) = 10" true
    (close_log (Stats.Tail.log_choose 5 2) (log 10.0));
  Alcotest.(check bool) "C(n,0) = 1" true (close_log (Stats.Tail.log_choose 9 0) 0.0);
  Alcotest.(check bool) "out of range" true
    (Stats.Tail.log_choose 5 6 = neg_infinity)

let test_table_render () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Stats.Table.add_row t [ Stats.Table.I 1; Stats.Table.S "x" ];
  Stats.Table.add_row t [ Stats.Table.Pct 0.5; Stats.Table.B true ];
  Alcotest.(check int) "rows" 2 (Stats.Table.row_count t);
  let rendered = Stats.Table.to_string t in
  Alcotest.(check bool) "has title" true
    (String.length rendered > 0
    && String.sub rendered 0 7 = "## demo");
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "contains 50.0%" true (contains rendered "50.0%");
  Alcotest.(check bool) "contains yes" true (contains rendered "yes")

let test_table_csv () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Stats.Table.add_row t [ Stats.Table.S "plain"; Stats.Table.F 1.5 ];
  Stats.Table.add_row t [ Stats.Table.S "a,b \"quoted\""; Stats.Table.Pct 0.25 ];
  Stats.Table.add_row t [ Stats.Table.S "nan"; Stats.Table.F nan ];
  let csv = Stats.Table.to_csv t in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "header" "name,value" (List.hd lines);
  Alcotest.(check string) "plain row" "plain,1.5" (List.nth lines 1);
  Alcotest.(check string) "escaped row" "\"a,b \"\"quoted\"\"\",0.25" (List.nth lines 2);
  Alcotest.(check string) "nan empty" "nan," (List.nth lines 3)

let test_table_arity () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Stats.Table.add_row t [ Stats.Table.I 1 ])

let suite =
  [
    Alcotest.test_case "summary basic" `Quick test_summary_basic;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary single" `Quick test_summary_single;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    Alcotest.test_case "summary merge empty" `Quick test_summary_merge_empty;
    Alcotest.test_case "summary ci" `Quick test_summary_ci;
    Alcotest.test_case "histogram density" `Quick test_histogram_density;
    Alcotest.test_case "histogram survival" `Quick test_histogram_survival;
    Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "histogram bucket width" `Quick test_histogram_bucket_width;
    Alcotest.test_case "histogram negative" `Quick test_histogram_negative;
    Alcotest.test_case "regression exact line" `Quick test_regression_exact_line;
    Alcotest.test_case "regression log2" `Quick test_regression_log2;
    Alcotest.test_case "regression loglog" `Quick test_regression_loglog;
    Alcotest.test_case "regression degenerate" `Quick test_regression_degenerate;
    Alcotest.test_case "binomial pmf sums" `Quick test_tail_binomial_pmf_sums;
    Alcotest.test_case "binomial symmetry" `Quick test_tail_binomial_symmetry;
    Alcotest.test_case "binomial exact value" `Quick test_tail_binomial_exact_value;
    Alcotest.test_case "tail edges" `Quick test_tail_edges;
    Alcotest.test_case "hoeffding dominates" `Quick test_tail_hoeffding_dominates;
    Alcotest.test_case "paper quantities" `Quick test_tail_paper_quantities;
    Alcotest.test_case "log choose" `Quick test_log_choose;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table csv" `Quick test_table_csv;
    Alcotest.test_case "table arity" `Quick test_table_arity;
  ]
