(* Committee algorithm (structural Kapron et al.). *)

let run ?(n = 64) ?(corrupt = []) ?(adaptive = false) ?(seed = 1) ?inputs () =
  let inputs = Option.value ~default:(Array.init n (fun i -> i mod 2 = 0)) inputs in
  let params =
    { (Protocols.Committee.default_params ~n ~seed) with
      Protocols.Committee.adaptive_attack = adaptive }
  in
  Protocols.Committee.run params ~n ~corrupt ~inputs

let test_honest_run_decides_validly () =
  let report = run () in
  Alcotest.(check bool) "not hijacked" false report.Protocols.Committee.hijacked;
  Alcotest.(check bool) "valid" true report.Protocols.Committee.valid;
  Alcotest.(check bool) "decided" true (report.Protocols.Committee.decision <> None);
  Alcotest.(check bool) "final committee small" true
    (List.length report.Protocols.Committee.final_committee
    <= (Protocols.Committee.default_params ~n:64 ~seed:1).Protocols.Committee.committee_size)

let test_unanimous_validity () =
  let report = run ~inputs:(Array.make 64 true) () in
  Alcotest.(check bool) "decides the unanimous value" true
    (report.Protocols.Committee.decision = Some true)

let test_levels_grow_with_n () =
  let levels n = (run ~n ()).Protocols.Committee.levels in
  Alcotest.(check bool) "more processors, more levels" true (levels 512 > levels 64);
  (* Polylog: going from 64 to 4096 (64x) adds only a few levels. *)
  Alcotest.(check bool) "sub-linear level growth" true (levels 4096 <= levels 64 + 6)

let test_adaptive_attack_always_hijacks () =
  for seed = 1 to 5 do
    let report = run ~adaptive:true ~seed () in
    Alcotest.(check bool) "hijacked" true report.Protocols.Committee.hijacked
  done

let test_adaptive_attack_invalid_on_unanimous () =
  let report = run ~adaptive:true ~inputs:(Array.make 64 true) () in
  Alcotest.(check bool) "hijacked" true report.Protocols.Committee.hijacked;
  Alcotest.(check bool) "invalid output" false report.Protocols.Committee.valid

let test_heavy_corruption_hijacks_often () =
  let hijacks = ref 0 in
  for seed = 1 to 20 do
    let rng = Prng.Stream.root seed in
    let corrupt = Prng.Stream.sample_without_replacement rng 21 64 in
    let report = run ~corrupt ~seed () in
    if report.Protocols.Committee.hijacked then incr hijacks
  done;
  Alcotest.(check bool) "1/3 corruption hijacks most runs" true (!hijacks >= 10)

let test_light_corruption_mostly_honest () =
  let hijacks = ref 0 in
  for seed = 1 to 20 do
    let rng = Prng.Stream.root seed in
    let corrupt = Prng.Stream.sample_without_replacement rng 3 64 in
    let report = run ~corrupt ~seed () in
    if report.Protocols.Committee.hijacked then incr hijacks
  done;
  Alcotest.(check bool) "5% corruption rarely hijacks" true (!hijacks <= 4)

let test_determinism () =
  let a = run ~seed:9 () and b = run ~seed:9 () in
  Alcotest.(check bool) "same seed, same report" true (a = b)

let test_input_validation () =
  Alcotest.check_raises "inputs arity" (Invalid_argument "Committee.run: |inputs| <> n")
    (fun () ->
      ignore
        (Protocols.Committee.run
           (Protocols.Committee.default_params ~n:8 ~seed:1)
           ~n:8 ~corrupt:[] ~inputs:[| true |]))

let suite =
  [
    Alcotest.test_case "honest run decides validly" `Quick test_honest_run_decides_validly;
    Alcotest.test_case "unanimous validity" `Quick test_unanimous_validity;
    Alcotest.test_case "levels grow with n" `Quick test_levels_grow_with_n;
    Alcotest.test_case "adaptive attack hijacks" `Quick test_adaptive_attack_always_hijacks;
    Alcotest.test_case "adaptive attack invalid on unanimous" `Quick
      test_adaptive_attack_invalid_on_unanimous;
    Alcotest.test_case "heavy corruption hijacks" `Quick test_heavy_corruption_hijacks_often;
    Alcotest.test_case "light corruption mostly honest" `Quick
      test_light_corruption_mostly_honest;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "input validation" `Quick test_input_validation;
  ]
