(* Vote tallies with sender deduplication. *)

let test_empty () =
  Alcotest.(check int) "count" 0 (Protocols.Tally.count Protocols.Tally.empty);
  Alcotest.(check bool) "no majority" true
    (Protocols.Tally.majority_value Protocols.Tally.empty = None);
  Alcotest.(check bool) "no best" true
    (Protocols.Tally.best_value Protocols.Tally.empty = None)

let test_counting () =
  let t = Protocols.Tally.add Protocols.Tally.empty ~src:0 true in
  let t = Protocols.Tally.add t ~src:1 true in
  let t = Protocols.Tally.add t ~src:2 false in
  Alcotest.(check int) "count" 3 (Protocols.Tally.count t);
  Alcotest.(check int) "ones" 2 (Protocols.Tally.count_value t true);
  Alcotest.(check int) "zeros" 1 (Protocols.Tally.count_value t false);
  Alcotest.(check bool) "majority true" true
    (Protocols.Tally.majority_value t = Some true);
  Alcotest.(check bool) "best (true, 2)" true
    (Protocols.Tally.best_value t = Some (true, 2))

let test_dedup () =
  let t = Protocols.Tally.add Protocols.Tally.empty ~src:0 true in
  let t = Protocols.Tally.add t ~src:0 false in
  Alcotest.(check int) "duplicate ignored" 1 (Protocols.Tally.count t);
  Alcotest.(check int) "first vote kept" 1 (Protocols.Tally.count_value t true);
  Alcotest.(check bool) "has src" true (Protocols.Tally.has_src t 0);
  Alcotest.(check bool) "lacks other src" false (Protocols.Tally.has_src t 1)

let test_tie () =
  let t = Protocols.Tally.add Protocols.Tally.empty ~src:0 true in
  let t = Protocols.Tally.add t ~src:1 false in
  Alcotest.(check bool) "tie has no majority" true
    (Protocols.Tally.majority_value t = None);
  Alcotest.(check bool) "tie best breaks to false" true
    (Protocols.Tally.best_value t = Some (false, 1))

let test_srcs_and_fingerprint () =
  let t = Protocols.Tally.add Protocols.Tally.empty ~src:5 true in
  let t = Protocols.Tally.add t ~src:1 false in
  Alcotest.(check (list int)) "srcs sorted" [ 1; 5 ] (Protocols.Tally.srcs t);
  Alcotest.(check string) "fingerprint" "1:0,5:1" (Protocols.Tally.fingerprint t)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "counting" `Quick test_counting;
    Alcotest.test_case "dedup" `Quick test_dedup;
    Alcotest.test_case "tie" `Quick test_tie;
    Alcotest.test_case "srcs and fingerprint" `Quick test_srcs_and_fingerprint;
  ]
