(* Tests for the message buffer. *)

let envelope ?(src = 0) ?(dst = 1) ?(depth = 1) id =
  {
    Dsim.Envelope.id;
    src;
    dst;
    payload = Printf.sprintf "m%d" id;
    depth;
    sent_at_step = 0;
    sent_in_window = 0;
  }

let test_add_take () =
  let mb = Dsim.Mailbox.create () in
  Dsim.Mailbox.add mb (envelope 1);
  Dsim.Mailbox.add mb (envelope 2);
  Alcotest.(check int) "size" 2 (Dsim.Mailbox.size mb);
  (match Dsim.Mailbox.take mb 1 with
  | Some e -> Alcotest.(check string) "payload" "m1" e.Dsim.Envelope.payload
  | None -> Alcotest.fail "expected envelope 1");
  Alcotest.(check int) "size after take" 1 (Dsim.Mailbox.size mb);
  Alcotest.(check bool) "take again is None" true (Dsim.Mailbox.take mb 1 = None)

let test_duplicate_id () =
  let mb = Dsim.Mailbox.create () in
  Dsim.Mailbox.add mb (envelope 1);
  Alcotest.check_raises "duplicate" (Invalid_argument "Mailbox.add: duplicate message id")
    (fun () -> Dsim.Mailbox.add mb (envelope 1))

let test_pending_order () =
  let mb = Dsim.Mailbox.create () in
  List.iter (fun id -> Dsim.Mailbox.add mb (envelope id)) [ 5; 1; 3 ];
  let ids = Dsim.Mailbox.pending_ids mb in
  Alcotest.(check (list int)) "ascending ids" [ 1; 3; 5 ] ids

let test_pending_filters () =
  let mb = Dsim.Mailbox.create () in
  Dsim.Mailbox.add mb (envelope ~src:0 ~dst:1 1);
  Dsim.Mailbox.add mb (envelope ~src:0 ~dst:2 2);
  Dsim.Mailbox.add mb (envelope ~src:3 ~dst:1 3);
  Alcotest.(check int) "for dst 1" 2 (List.length (Dsim.Mailbox.pending_for mb ~dst:1));
  Alcotest.(check int) "from src 0" 2 (List.length (Dsim.Mailbox.pending_from mb ~src:0));
  let big = Dsim.Mailbox.filter_ids mb (fun e -> e.Dsim.Envelope.id > 1) in
  Alcotest.(check (list int)) "filter ids" [ 2; 3 ] big

let test_replace_payload () =
  let mb = Dsim.Mailbox.create () in
  Dsim.Mailbox.add mb (envelope 1);
  Alcotest.(check bool) "replace hits" true (Dsim.Mailbox.replace_payload mb 1 "corrupted");
  (match Dsim.Mailbox.find mb 1 with
  | Some e -> Alcotest.(check string) "rewritten" "corrupted" e.Dsim.Envelope.payload
  | None -> Alcotest.fail "expected envelope");
  Alcotest.(check bool) "replace misses" false (Dsim.Mailbox.replace_payload mb 9 "x")

let test_copy_isolation () =
  let mb = Dsim.Mailbox.create () in
  Dsim.Mailbox.add mb (envelope 1);
  let copy = Dsim.Mailbox.copy mb in
  ignore (Dsim.Mailbox.take copy 1);
  Alcotest.(check int) "original untouched" 1 (Dsim.Mailbox.size mb);
  Alcotest.(check int) "copy drained" 0 (Dsim.Mailbox.size copy);
  Dsim.Mailbox.add copy (envelope 2);
  Alcotest.(check bool) "original lacks new" true (Dsim.Mailbox.find mb 2 = None)

let test_empty () =
  let mb = Dsim.Mailbox.create () in
  Alcotest.(check bool) "is_empty" true (Dsim.Mailbox.is_empty mb);
  Alcotest.(check (list int)) "no pending" [] (Dsim.Mailbox.pending_ids mb)

let suite =
  [
    Alcotest.test_case "add/take" `Quick test_add_take;
    Alcotest.test_case "duplicate id" `Quick test_duplicate_id;
    Alcotest.test_case "pending order" `Quick test_pending_order;
    Alcotest.test_case "pending filters" `Quick test_pending_filters;
    Alcotest.test_case "replace payload" `Quick test_replace_payload;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "empty" `Quick test_empty;
  ]
