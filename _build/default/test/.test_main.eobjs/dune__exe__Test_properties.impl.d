test/test_properties.ml: Adversary Agreement Array Dsim Float Gen List Lowerbound Prng Protocols QCheck QCheck_alcotest Shmem Stats Syncsim
