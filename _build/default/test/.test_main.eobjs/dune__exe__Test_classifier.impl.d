test/test_classifier.ml: Alcotest Dsim Format List Printf Protocols
