test/test_zk.ml: Adversary Alcotest Array Dsim List Lowerbound Prng Protocols Stats
