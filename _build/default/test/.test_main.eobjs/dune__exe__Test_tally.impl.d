test/test_tally.ml: Alcotest Protocols
