test/test_proof_adversary.ml: Agreement Alcotest Array Dsim Lowerbound Prng Protocols
