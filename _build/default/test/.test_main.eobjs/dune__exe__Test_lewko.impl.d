test/test_lewko.ml: Alcotest Dsim List Prng Protocols
