test/test_trace.ml: Adversary Alcotest Array Dsim Filename Format List Protocols String Sys
