test/test_engine.ml: Adversary Alcotest Array Dsim Format List Printf Prng Protocols String
