test/test_committee.ml: Alcotest Array List Option Prng Protocols
