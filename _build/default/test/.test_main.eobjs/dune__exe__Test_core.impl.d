test/test_core.ml: Adversary Agreement Alcotest Array Dsim List Protocols Stats
