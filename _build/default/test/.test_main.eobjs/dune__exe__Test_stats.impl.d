test/test_stats.ml: Alcotest Float List Stats String
