test/test_thresholds.ml: Alcotest List Printf Protocols
