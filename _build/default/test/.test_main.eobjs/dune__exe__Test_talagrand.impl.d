test/test_talagrand.ml: Alcotest Array Float List Lowerbound Printf
