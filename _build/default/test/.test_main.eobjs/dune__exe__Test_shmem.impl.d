test/test_shmem.ml: Alcotest Array List Shmem Stats
