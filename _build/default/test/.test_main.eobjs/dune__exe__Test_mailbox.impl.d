test/test_mailbox.ml: Alcotest Dsim List Printf
