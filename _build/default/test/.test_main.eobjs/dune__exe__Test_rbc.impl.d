test/test_rbc.ml: Alcotest Array List Printf Prng Protocols
