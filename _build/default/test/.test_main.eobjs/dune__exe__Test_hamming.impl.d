test/test_hamming.ml: Alcotest Array Dsim Lowerbound Protocols
