test/test_adversary.ml: Adversary Alcotest Array Dsim Fun List Option Printf Protocols
