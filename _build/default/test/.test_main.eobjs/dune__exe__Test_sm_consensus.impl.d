test/test_sm_consensus.ml: Alcotest Array List Option Shmem
