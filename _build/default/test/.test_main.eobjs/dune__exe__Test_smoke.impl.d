test/test_smoke.ml: Adversary Alcotest Array Dsim List Protocols
