test/test_syncsim.ml: Alcotest Array List Option Stats Syncsim
