test/test_theory.ml: Alcotest Float List Lowerbound Printf
