test/test_product.ml: Alcotest Array Float Lowerbound Prng
