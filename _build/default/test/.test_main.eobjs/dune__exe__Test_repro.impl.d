test/test_repro.ml: Agreement Alcotest Stats String
