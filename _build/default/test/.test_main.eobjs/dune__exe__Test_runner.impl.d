test/test_runner.ml: Adversary Alcotest Array Dsim List Option Protocols
