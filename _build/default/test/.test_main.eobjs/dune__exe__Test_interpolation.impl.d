test/test_interpolation.ml: Alcotest Array List Lowerbound
