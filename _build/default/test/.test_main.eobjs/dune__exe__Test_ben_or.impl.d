test/test_ben_or.ml: Adversary Alcotest Array Dsim List Prng Protocols
