test/test_window.ml: Alcotest Array Dsim Format List String
