test/test_bracha.ml: Adversary Agreement Alcotest Array Dsim List Printf Prng Protocols
