(* Lemma 14's hybrid interpolation. *)

let sweep ?(n = 16) () =
  let k0 = (n / 2) - (n / 4) and k1 = (n / 2) + (n / 4) in
  Lowerbound.Interpolation.sweep
    ~pi0:(Lowerbound.Product.bernoulli (Array.make n 0.15))
    ~pi_n:(Lowerbound.Product.bernoulli (Array.make n 0.85))
    ~z0:(Lowerbound.Talagrand.Weight_le k0)
    ~z1:(Lowerbound.Talagrand.Weight_ge k1)
    ~t:(k1 - k0 - 1) ()

let test_curve_shape () =
  let r = sweep () in
  Alcotest.(check int) "n+1 points" 17 (List.length r.Lowerbound.Interpolation.curve);
  (* P[Z0] decreases along j (more coordinates become 1-biased);
     P[Z1] increases. *)
  let z0s = List.map (fun p -> p.Lowerbound.Interpolation.p_z0) r.Lowerbound.Interpolation.curve in
  let z1s = List.map (fun p -> p.Lowerbound.Interpolation.p_z1) r.Lowerbound.Interpolation.curve in
  let rec monotone cmp = function
    | a :: (b :: _ as rest) -> cmp a b && monotone cmp rest
    | _ -> true
  in
  Alcotest.(check bool) "P[Z0] non-increasing" true
    (monotone (fun a b -> a +. 1e-9 >= b) z0s);
  Alcotest.(check bool) "P[Z1] non-decreasing" true
    (monotone (fun a b -> a <= b +. 1e-9) z1s)

let test_endpoints () =
  let r = sweep () in
  let first = List.hd r.Lowerbound.Interpolation.curve in
  let last = List.nth r.Lowerbound.Interpolation.curve 16 in
  (* pi_0 = pi0 is 0-biased: heavy on Z0, light on Z1; pi_n opposite. *)
  Alcotest.(check bool) "pi0 heavy on Z0" true (first.Lowerbound.Interpolation.p_z0 > 0.5);
  Alcotest.(check bool) "pi0 light on Z1" true (first.Lowerbound.Interpolation.p_z1 < 0.05);
  Alcotest.(check bool) "pi_n light on Z0" true (last.Lowerbound.Interpolation.p_z0 < 0.05);
  Alcotest.(check bool) "pi_n heavy on Z1" true (last.Lowerbound.Interpolation.p_z1 > 0.5)

let test_conclusion () =
  let r = sweep () in
  Alcotest.(check bool) "j* in range" true
    (r.Lowerbound.Interpolation.j_star >= 0 && r.Lowerbound.Interpolation.j_star <= 16);
  Alcotest.(check bool) "lemma conclusion holds" true
    r.Lowerbound.Interpolation.conclusion_holds;
  (* j* is minimal: the previous hybrid (if any) exceeds eta on Z0. *)
  if r.Lowerbound.Interpolation.j_star > 0 then begin
    let prev =
      List.nth r.Lowerbound.Interpolation.curve (r.Lowerbound.Interpolation.j_star - 1)
    in
    Alcotest.(check bool) "minimality of j*" true
      (prev.Lowerbound.Interpolation.p_z0 > r.Lowerbound.Interpolation.eta)
  end

let test_dimension_mismatch () =
  let raised =
    try
      ignore
        (Lowerbound.Interpolation.sweep
           ~pi0:(Lowerbound.Product.uniform_bits ~n:4)
           ~pi_n:(Lowerbound.Product.uniform_bits ~n:5)
           ~z0:(Lowerbound.Talagrand.Weight_le 1)
           ~z1:(Lowerbound.Talagrand.Weight_ge 3)
           ~t:1 ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "mismatch rejected" true raised

let suite =
  [
    Alcotest.test_case "curve shape" `Quick test_curve_shape;
    Alcotest.test_case "endpoints" `Quick test_endpoints;
    Alcotest.test_case "conclusion" `Quick test_conclusion;
    Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
  ]
