(* Tests for acceptable windows (Definition 1). *)

let test_uniform_fault_free () =
  let w = Dsim.Window.uniform ~n:5 () in
  Alcotest.(check bool) "fault free" true (Dsim.Window.is_fault_free w ~n:5);
  Alcotest.(check (list int)) "full receive set" [ 0; 1; 2; 3; 4 ]
    (Dsim.Window.receive_set w 0);
  (match Dsim.Window.validate ~n:5 ~t:1 w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m)

let test_uniform_silenced () =
  let w = Dsim.Window.uniform ~n:5 ~silenced:[ 2 ] () in
  Alcotest.(check (list int)) "excludes silenced" [ 0; 1; 3; 4 ]
    (Dsim.Window.receive_set w 3);
  Alcotest.(check bool) "not fault free" false (Dsim.Window.is_fault_free w ~n:5)

let test_validate_receive_too_small () =
  let w = Dsim.Window.uniform ~n:6 ~silenced:[ 0; 1; 2 ] () in
  (match Dsim.Window.validate ~n:6 ~t:2 w with
  | Ok () -> Alcotest.fail "should reject |S_i| < n - t"
  | Error _ -> ());
  match Dsim.Window.validate ~n:6 ~t:3 w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_validate_too_many_resets () =
  let w = Dsim.Window.uniform ~n:6 ~resets:[ 0; 1; 2 ] () in
  (match Dsim.Window.validate ~n:6 ~t:2 w with
  | Ok () -> Alcotest.fail "should reject |R| > t"
  | Error _ -> ());
  match Dsim.Window.validate ~n:6 ~t:3 w with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_validate_out_of_range () =
  let w = Dsim.Window.make ~receive_sets:(Array.make 4 [ 0; 1; 2; 9 ]) ~resets:[] in
  (match Dsim.Window.validate ~n:4 ~t:1 w with
  | Ok () -> Alcotest.fail "should reject pid out of range"
  | Error _ -> ());
  let w = Dsim.Window.make ~receive_sets:(Array.make 4 [ 0; 1; 2 ]) ~resets:[ -1 ] in
  match Dsim.Window.validate ~n:4 ~t:1 w with
  | Ok () -> Alcotest.fail "should reject negative reset pid"
  | Error _ -> ()

let test_validate_wrong_arity () =
  let w = Dsim.Window.make ~receive_sets:(Array.make 3 [ 0; 1; 2 ]) ~resets:[] in
  match Dsim.Window.validate ~n:4 ~t:1 w with
  | Ok () -> Alcotest.fail "should reject wrong receive-set count"
  | Error _ -> ()

let test_normalization () =
  let w = Dsim.Window.make ~receive_sets:[| [ 2; 0; 2; 1 ] |] ~resets:[ 0; 0 ] in
  Alcotest.(check (list int)) "sorted dedup" [ 0; 1; 2 ] (Dsim.Window.receive_set w 0);
  Alcotest.(check (list int)) "resets dedup" [ 0 ] w.Dsim.Window.resets

let test_hybrid () =
  let w =
    Dsim.Window.hybrid ~n:6 ~j:3 ~s0:[ 0; 1; 2; 3 ] ~s1:[ 2; 3; 4; 5 ] ~r0:[ 0 ]
      ~r1:[ 5 ]
  in
  Alcotest.(check (list int)) "low coords use s0" [ 0; 1; 2; 3 ]
    (Dsim.Window.receive_set w 0);
  Alcotest.(check (list int)) "high coords use s1" [ 2; 3; 4; 5 ]
    (Dsim.Window.receive_set w 4);
  Alcotest.(check (list int)) "mixed resets" [ 0; 5 ] w.Dsim.Window.resets

let test_hybrid_endpoints () =
  let s0 = [ 0; 1; 2 ] and s1 = [ 1; 2; 3 ] in
  let w0 = Dsim.Window.hybrid ~n:4 ~j:0 ~s0 ~s1 ~r0:[ 0 ] ~r1:[ 3 ] in
  Alcotest.(check (list int)) "j=0 all s1" s1 (Dsim.Window.receive_set w0 0);
  Alcotest.(check (list int)) "j=0 resets from r1" [ 3 ] w0.Dsim.Window.resets;
  let wn = Dsim.Window.hybrid ~n:4 ~j:4 ~s0 ~s1 ~r0:[ 0 ] ~r1:[ 3 ] in
  Alcotest.(check (list int)) "j=n all s0" s0 (Dsim.Window.receive_set wn 3);
  Alcotest.(check (list int)) "j=n resets from r0" [ 0 ] wn.Dsim.Window.resets

let test_printers () =
  let w = Dsim.Window.uniform ~n:3 ~silenced:[ 0 ] ~resets:[ 1 ] () in
  Alcotest.(check bool) "window printer" true
    (String.length (Format.asprintf "%a" Dsim.Window.pp w) > 0);
  let pp_payload ppf s = Format.pp_print_string ppf s in
  List.iter
    (fun (step, expected) ->
      Alcotest.(check string) "step printer" expected
        (Format.asprintf "%a" (Dsim.Step.pp pp_payload) step))
    [
      (Dsim.Step.Send 2, "send(p2)");
      (Dsim.Step.Deliver 5, "deliver(#5)");
      (Dsim.Step.Drop 5, "drop(#5)");
      (Dsim.Step.Reset 1, "reset(p1)");
      (Dsim.Step.Crash 0, "crash(p0)");
      (Dsim.Step.Corrupt (3, "evil"), "corrupt(#3, evil)");
    ]

let suite =
  [
    Alcotest.test_case "printers" `Quick test_printers;
    Alcotest.test_case "uniform fault free" `Quick test_uniform_fault_free;
    Alcotest.test_case "uniform silenced" `Quick test_uniform_silenced;
    Alcotest.test_case "validate small receive set" `Quick test_validate_receive_too_small;
    Alcotest.test_case "validate too many resets" `Quick test_validate_too_many_resets;
    Alcotest.test_case "validate out of range" `Quick test_validate_out_of_range;
    Alcotest.test_case "validate wrong arity" `Quick test_validate_wrong_arity;
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "hybrid" `Quick test_hybrid;
    Alcotest.test_case "hybrid endpoints" `Quick test_hybrid_endpoints;
  ]
