(* Execution loops: stop conditions, budgets, halting, and rejection of
   invalid windows. *)

let protocol = Protocols.Lewko_variant.protocol ()

let make ?(n = 7) ?(t = 1) ?(seed = 1) ?inputs () =
  let inputs = Option.value ~default:(Array.init n (fun i -> i mod 2 = 0)) inputs in
  Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed ()

let test_stop_first_decision () =
  let config = make ~inputs:(Array.make 7 true) () in
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(Adversary.Benign.windowed ())
      ~max_windows:100 ~stop:`First_decision
  in
  Alcotest.(check bool) "stopped" true (outcome.Dsim.Runner.reason = Dsim.Runner.Stopped);
  Alcotest.(check bool) "at least one decided" true (outcome.Dsim.Runner.decided <> [])

let test_stop_all_decided () =
  let config = make ~inputs:(Array.make 7 true) () in
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(Adversary.Benign.windowed ())
      ~max_windows:100 ~stop:`All_decided
  in
  Alcotest.(check int) "everyone decided" 7 (List.length outcome.Dsim.Runner.decided)

let test_budget_exhausted () =
  let config = make () in
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(fun cfg -> Some (Dsim.Window.uniform ~n:(Dsim.Engine.n cfg) ()))
      ~max_windows:3 ~stop:`Never
  in
  Alcotest.(check bool) "budget exhausted" true
    (outcome.Dsim.Runner.reason = Dsim.Runner.Budget_exhausted);
  Alcotest.(check int) "exactly 3 windows" 3 outcome.Dsim.Runner.windows

let test_adversary_halt () =
  let config = make () in
  let outcome =
    Dsim.Runner.run_windows config ~strategy:(fun _ -> None) ~max_windows:10 ~stop:`Never
  in
  Alcotest.(check bool) "halted" true
    (outcome.Dsim.Runner.reason = Dsim.Runner.Adversary_halted);
  Alcotest.(check int) "no windows" 0 outcome.Dsim.Runner.windows

let test_invalid_window_rejected () =
  let config = make ~n:7 ~t:1 () in
  (* A window silencing 2 > t senders violates Definition 1. *)
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(fun _ -> Some (Dsim.Window.uniform ~n:7 ~silenced:[ 0; 1 ] ()))
      ~max_windows:10 ~stop:`Never
  in
  (match outcome.Dsim.Runner.reason with
  | Dsim.Runner.Invalid_window _ -> ()
  | _ -> Alcotest.fail "expected Invalid_window");
  Alcotest.(check int) "nothing executed" 0 outcome.Dsim.Runner.windows

let test_too_many_resets_rejected () =
  let config = make ~n:7 ~t:1 () in
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(fun _ -> Some (Dsim.Window.uniform ~n:7 ~resets:[ 0; 1 ] ()))
      ~max_windows:10 ~stop:`Never
  in
  match outcome.Dsim.Runner.reason with
  | Dsim.Runner.Invalid_window _ -> ()
  | _ -> Alcotest.fail "expected Invalid_window"

let test_run_steps_budget () =
  let config = make () in
  let outcome =
    Dsim.Runner.run_steps config
      ~strategy:(Adversary.Benign.lockstep ())
      ~max_steps:5 ~stop:`Never
  in
  Alcotest.(check bool) "budget" true
    (outcome.Dsim.Runner.reason = Dsim.Runner.Budget_exhausted);
  Alcotest.(check int) "exactly 5 steps" 5 outcome.Dsim.Runner.steps

let test_outcome_snapshot_consistency () =
  let config = make ~inputs:(Array.make 7 false) () in
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(Adversary.Benign.windowed ())
      ~max_windows:50 ~stop:`All_decided
  in
  (* The outcome must agree with the configuration it snapshots. *)
  Alcotest.(check int) "windows match" (Dsim.Engine.window_index config)
    outcome.Dsim.Runner.windows;
  Alcotest.(check int) "steps match" (Dsim.Engine.step_index config)
    outcome.Dsim.Runner.steps;
  Alcotest.(check bool) "decided match" true
    (outcome.Dsim.Runner.decided = Dsim.Engine.decided_values config);
  (* Message accounting: everything sent was delivered or dropped. *)
  let trace = Dsim.Engine.trace config in
  Alcotest.(check int) "sent = delivered + dropped + pending"
    (Dsim.Trace.sent trace)
    (Dsim.Trace.delivered trace + Dsim.Trace.dropped trace
    + Dsim.Mailbox.size (Dsim.Engine.mailbox config))

let test_first_decision_metadata () =
  let config = make ~inputs:(Array.make 7 true) () in
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(Adversary.Benign.windowed ())
      ~max_windows:100 ~stop:`All_decided
  in
  match outcome.Dsim.Runner.first_decision with
  | Some (pid, value, step, window, chain) ->
      Alcotest.(check bool) "pid in range" true (pid >= 0 && pid < 7);
      Alcotest.(check bool) "value is the unanimous input" true value;
      Alcotest.(check bool) "step positive" true (step > 0);
      Alcotest.(check bool) "window sane" true (window >= 0 && window <= outcome.Dsim.Runner.windows);
      Alcotest.(check bool) "chain depth positive" true (chain >= 1)
  | None -> Alcotest.fail "expected first decision"

let suite =
  [
    Alcotest.test_case "stop first decision" `Quick test_stop_first_decision;
    Alcotest.test_case "stop all decided" `Quick test_stop_all_decided;
    Alcotest.test_case "budget exhausted" `Quick test_budget_exhausted;
    Alcotest.test_case "adversary halt" `Quick test_adversary_halt;
    Alcotest.test_case "invalid window rejected" `Quick test_invalid_window_rejected;
    Alcotest.test_case "too many resets rejected" `Quick test_too_many_resets_rejected;
    Alcotest.test_case "run_steps budget" `Quick test_run_steps_budget;
    Alcotest.test_case "outcome snapshot consistency" `Quick
      test_outcome_snapshot_consistency;
    Alcotest.test_case "first decision metadata" `Quick test_first_decision_metadata;
  ]
