(* Talagrand machinery: set descriptors, expansion, and the Lemma 9
   check. *)

module T = Lowerbound.Talagrand

let test_mem () =
  Alcotest.(check bool) "weight_ge" true (T.mem (T.Weight_ge 2) [| 1; 1; 0 |]);
  Alcotest.(check bool) "weight_ge fails" false (T.mem (T.Weight_ge 3) [| 1; 1; 0 |]);
  Alcotest.(check bool) "weight_le" true (T.mem (T.Weight_le 1) [| 0; 1; 0 |]);
  Alcotest.(check bool) "ball" true
    (T.mem (T.Ball { center = [| 0; 0; 0 |]; radius = 1 }) [| 0; 1; 0 |]);
  Alcotest.(check bool) "ball fails" false
    (T.mem (T.Ball { center = [| 0; 0; 0 |]; radius = 1 }) [| 1; 1; 0 |]);
  Alcotest.(check bool) "explicit member" true
    (T.mem (T.explicit [ [| 1; 2 |] ]) [| 1; 2 |]);
  Alcotest.(check bool) "explicit near" true
    (T.mem (T.Near { points = [ [| 1; 2 |] ]; slack = 1 }) [| 1; 3 |])

let test_expand () =
  (* B(A, d) must contain exactly the points within d of A. *)
  let a = T.Weight_ge 5 in
  (match T.expand a 2 with
  | T.Weight_ge 3 -> ()
  | _ -> Alcotest.fail "weight expansion");
  (match T.expand (T.Weight_ge 1) 3 with
  | T.Weight_ge 0 -> ()
  | _ -> Alcotest.fail "weight expansion clamps at 0");
  (match T.expand (T.Ball { center = [| 0 |]; radius = 1 }) 2 with
  | T.Ball { radius = 3; _ } -> ()
  | _ -> Alcotest.fail "ball expansion");
  match T.expand (T.explicit [ [| 0; 0 |] ]) 1 with
  | T.Near { slack = 1; _ } -> ()
  | _ -> Alcotest.fail "near expansion"

let test_expansion_semantics () =
  (* For every point x and descriptor A: x in B(A, d) iff there is a
     point a in A with distance <= d.  Check exhaustively on n = 6
     binary strings for a weight set. *)
  let n = 6 in
  let a = T.Weight_ge 4 in
  let expansion = T.expand a 2 in
  let points =
    List.init (1 lsl n) (fun bits -> Array.init n (fun i -> (bits lsr i) land 1))
  in
  let members = List.filter (T.mem a) points in
  List.iter
    (fun x ->
      let brute =
        List.exists (fun m -> Lowerbound.Hamming.distance_int x m <= 2) members
      in
      Alcotest.(check bool) "expansion matches brute force" brute (T.mem expansion x))
    points

let test_set_distance () =
  Alcotest.(check (option int)) "weight sets" (Some 3)
    (T.set_distance (T.Weight_ge 7) (T.Weight_le 4));
  Alcotest.(check (option int)) "overlapping weight sets" (Some 0)
    (T.set_distance (T.Weight_ge 3) (T.Weight_le 4));
  Alcotest.(check (option int)) "explicit sets" (Some 2)
    (T.set_distance (T.explicit [ [| 0; 0; 0 |] ]) (T.explicit [ [| 1; 1; 0 |] ]));
  Alcotest.(check (option int)) "near slack subtracts" (Some 1)
    (T.set_distance
       (T.Near { points = [ [| 0; 0; 0 |] ]; slack = 1 })
       (T.explicit [ [| 1; 1; 0 |] ]));
  Alcotest.(check (option int)) "unsupported pair" None
    (T.set_distance (T.Weight_ge 3) (T.Ball { center = [| 0 |]; radius = 1 }))

let test_check_exact_holds () =
  let space = Lowerbound.Product.uniform_bits ~n:12 in
  List.iter
    (fun k ->
      List.iter
        (fun d ->
          let c = T.check space (T.Weight_ge k) ~d in
          Alcotest.(check bool)
            (Printf.sprintf "lemma holds k=%d d=%d" k d)
            true c.T.holds)
        [ 1; 3; 6 ])
    [ 7; 9; 11 ]

let test_check_biased_space () =
  (* Lemma 9 is for arbitrary product measures, not just uniform. *)
  let space = Lowerbound.Product.bernoulli (Array.init 10 (fun i -> 0.1 +. (0.08 *. float_of_int i))) in
  List.iter
    (fun d ->
      let c = T.check space (T.Weight_ge 6) ~d in
      Alcotest.(check bool) "holds on biased space" true c.T.holds)
    [ 2; 4 ]

let test_check_values () =
  (* d = 0: B(A, 0) = A, so lhs = P(A)(1 - P(A)) <= 1/4 <= bound = 1. *)
  let space = Lowerbound.Product.uniform_bits ~n:8 in
  let c = T.check space (T.Weight_ge 5) ~d:0 in
  Alcotest.(check bool) "expansion at 0 is the set" true
    (Float.abs (c.T.p_a -. c.T.p_expansion) < 1e-12);
  Alcotest.(check bool) "bound at 0 is 1" true (Float.abs (c.T.bound -. 1.0) < 1e-12)

let test_check_mc () =
  let space = Lowerbound.Product.uniform_bits ~n:48 in
  let c = T.check ~samples:20_000 ~seed:5 space (T.Weight_ge 30) ~d:12 in
  Alcotest.(check bool) "mc check holds" true c.T.holds;
  Alcotest.(check bool) "probabilities are probabilities" true
    (c.T.p_a >= 0.0 && c.T.p_a <= 1.0 && c.T.p_expansion >= 0.0 && c.T.p_expansion <= 1.0)

let suite =
  [
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "expand" `Quick test_expand;
    Alcotest.test_case "expansion semantics" `Quick test_expansion_semantics;
    Alcotest.test_case "set distance" `Quick test_set_distance;
    Alcotest.test_case "check exact holds" `Quick test_check_exact_holds;
    Alcotest.test_case "check biased space" `Quick test_check_biased_space;
    Alcotest.test_case "check values" `Quick test_check_values;
    Alcotest.test_case "check mc" `Quick test_check_mc;
  ]
