(* The synchronous engine, margin consensus, and the coin-killing
   adversary (the Bar-Joseph–Ben-Or setting, reference [6]). *)

let run ?(n = 16) ?(t = 4) ?(seed = 1) ?inputs ?(adversary = Syncsim.Sync_engine.no_faults)
    ?(max_rounds = 10_000) () =
  let inputs = Option.value ~default:(Array.init n (fun i -> i mod 2 = 0)) inputs in
  Syncsim.Sync_engine.run ~protocol:Syncsim.Sync_consensus.protocol ~n ~t ~inputs ~seed
    ~adversary ~max_rounds

let test_unanimous_one_round () =
  let outcome = run ~inputs:(Array.make 16 true) () in
  Alcotest.(check int) "one round" 1 outcome.Syncsim.Sync_engine.rounds;
  Alcotest.(check int) "all decide" 16 (List.length outcome.Syncsim.Sync_engine.decided);
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "unanimous value" true v)
    outcome.Syncsim.Sync_engine.decided

let test_split_terminates_fault_free () =
  for seed = 1 to 10 do
    let outcome = run ~seed () in
    Alcotest.(check bool) "terminates" true outcome.Syncsim.Sync_engine.terminated;
    Alcotest.(check bool) "no conflict" false outcome.Syncsim.Sync_engine.conflict
  done

let test_validity_zero () =
  let outcome = run ~inputs:(Array.make 16 false) () in
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "decides 0" false v)
    outcome.Syncsim.Sync_engine.decided

let test_crash_early_tolerated () =
  for seed = 1 to 10 do
    let outcome = run ~seed ~adversary:(Syncsim.Sync_adversary.crash_early ()) () in
    Alcotest.(check bool) "terminates" true outcome.Syncsim.Sync_engine.terminated;
    Alcotest.(check bool) "no conflict" false outcome.Syncsim.Sync_engine.conflict;
    Alcotest.(check int) "budget fully spent" 4 outcome.Syncsim.Sync_engine.crashes_used
  done

let test_coin_killing_slows_but_safe () =
  let benign = ref Stats.Summary.empty and killed = ref Stats.Summary.empty in
  for seed = 1 to 20 do
    let a = run ~n:32 ~t:8 ~seed () in
    let b = run ~n:32 ~t:8 ~seed ~adversary:(Syncsim.Sync_adversary.balancing ()) () in
    benign := Stats.Summary.add_int !benign a.Syncsim.Sync_engine.rounds;
    killed := Stats.Summary.add_int !killed b.Syncsim.Sync_engine.rounds;
    Alcotest.(check bool) "safe under killing" false b.Syncsim.Sync_engine.conflict;
    Alcotest.(check bool) "still terminates" true b.Syncsim.Sync_engine.terminated;
    Alcotest.(check bool) "budget respected" true
      (b.Syncsim.Sync_engine.crashes_used <= 8)
  done;
  Alcotest.(check bool) "killing costs rounds" true
    (Stats.Summary.mean !killed > Stats.Summary.mean !benign)

let test_partial_split_safe () =
  for seed = 1 to 10 do
    let outcome =
      run ~seed ~adversary:(Syncsim.Sync_adversary.partial_split ()) ()
    in
    Alcotest.(check bool) "no conflict under partial delivery" false
      outcome.Syncsim.Sync_engine.conflict;
    Alcotest.(check bool) "terminates" true outcome.Syncsim.Sync_engine.terminated
  done

let test_budget_enforced () =
  let greedy _view =
    { Syncsim.Sync_engine.crash = [ 0; 1; 2; 3; 4; 5 ]; partial_delivery = [] }
  in
  let raised =
    try
      ignore (run ~t:4 ~adversary:greedy ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "over-budget intervention rejected" true raised

let test_determinism () =
  let a = run ~seed:9 () and b = run ~seed:9 () in
  Alcotest.(check bool) "same seed same outcome" true (a = b)

let suite =
  [
    Alcotest.test_case "unanimous one round" `Quick test_unanimous_one_round;
    Alcotest.test_case "split terminates fault-free" `Quick
      test_split_terminates_fault_free;
    Alcotest.test_case "validity zero" `Quick test_validity_zero;
    Alcotest.test_case "crash early tolerated" `Quick test_crash_early_tolerated;
    Alcotest.test_case "coin killing slows but safe" `Quick
      test_coin_killing_slows_but_safe;
    Alcotest.test_case "partial split safe" `Quick test_partial_split_safe;
    Alcotest.test_case "budget enforced" `Quick test_budget_enforced;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
