(* Property-based tests (qcheck) on the library's core invariants. *)

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- randomness --- *)

let prop_int_below_in_range =
  QCheck.Test.make ~count:200 ~name:"int_below stays in range"
    QCheck.(pair (int_bound 1_000_000) small_int)
    (fun (bound, seed) ->
      let bound = bound + 1 in
      let s = Prng.Stream.root seed in
      let v = Prng.Stream.int_below s bound in
      v >= 0 && v < bound)

let prop_sample_without_replacement =
  QCheck.Test.make ~count:100 ~name:"sampling yields k distinct in-range values"
    QCheck.(pair (int_bound 20) small_int)
    (fun (n, seed) ->
      let n = n + 1 in
      let s = Prng.Stream.root seed in
      let k = Prng.Stream.int_below s (n + 1) in
      let sample = Prng.Stream.sample_without_replacement s k n in
      List.length sample = k
      && List.length (List.sort_uniq compare sample) = k
      && List.for_all (fun v -> v >= 0 && v < n) sample)

(* --- statistics --- *)

let prop_summary_merge =
  QCheck.Test.make ~count:100 ~name:"summary merge equals combined fold"
    QCheck.(pair (list (float_bound_exclusive 1000.0)) (list (float_bound_exclusive 1000.0)))
    (fun (xs, ys) ->
      let merged =
        Stats.Summary.merge (Stats.Summary.of_list xs) (Stats.Summary.of_list ys)
      in
      let direct = Stats.Summary.of_list (xs @ ys) in
      Stats.Summary.count merged = Stats.Summary.count direct
      && (Stats.Summary.count direct = 0
         || Float.abs (Stats.Summary.mean merged -. Stats.Summary.mean direct) < 1e-6)
      && (Stats.Summary.count direct < 2
         || Float.abs (Stats.Summary.variance merged -. Stats.Summary.variance direct)
            < 1e-4))

let prop_histogram_survival_monotone =
  QCheck.Test.make ~count:100 ~name:"survival is non-increasing and ends at 0"
    QCheck.(list_of_size (Gen.int_range 1 50) (int_bound 100))
    (fun xs ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) xs;
      let survival = List.map snd (Stats.Histogram.survival h) in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a +. 1e-12 >= b && non_increasing rest
        | _ -> true
      in
      non_increasing survival
      && Float.abs (List.nth survival (List.length survival - 1)) < 1e-12)

let prop_binomial_tail_monotone =
  QCheck.Test.make ~count:50 ~name:"binomial tail decreases in k"
    QCheck.(int_bound 30)
    (fun n ->
      let n = n + 2 in
      let rec check k =
        k > n
        || Stats.Tail.binomial_tail_ge n 0.5 k
           +. 1e-12
           >= Stats.Tail.binomial_tail_ge n 0.5 (k + 1)
           && check (k + 1)
      in
      check 0)

(* --- Hamming geometry --- *)

let point_gen = QCheck.(array_of_size (Gen.return 12) (int_bound 3))

let prop_hamming_metric =
  QCheck.Test.make ~count:200 ~name:"hamming is a metric"
    QCheck.(triple point_gen point_gen point_gen)
    (fun (x, y, z) ->
      let d = Lowerbound.Hamming.distance_int in
      d x y = d y x
      && d x x = 0
      && d x z <= d x y + d y z
      && (d x y > 0 || x = y))

(* --- product measures & Talagrand --- *)

let prop_product_complement =
  QCheck.Test.make ~count:50 ~name:"P(A) + P(complement A) = 1"
    QCheck.(pair (int_bound 9) (int_bound 1000))
    (fun (k, denom) ->
      let n = 8 in
      let p = 0.1 +. (0.8 *. (float_of_int denom /. 1000.0)) in
      let space = Lowerbound.Product.bernoulli (Array.make n p) in
      let predicate x = Array.fold_left ( + ) 0 x >= k in
      let a = Lowerbound.Product.prob_exact space predicate in
      let b = Lowerbound.Product.prob_exact space (fun x -> not (predicate x)) in
      Float.abs (a +. b -. 1.0) < 1e-9)

let prop_talagrand_holds =
  QCheck.Test.make ~count:60 ~name:"Lemma 9 holds on random weight sets"
    QCheck.(triple (int_bound 10) (int_bound 8) (int_bound 1000))
    (fun (k, d, denom) ->
      let n = 10 in
      let p = 0.2 +. (0.6 *. (float_of_int denom /. 1000.0)) in
      let space = Lowerbound.Product.bernoulli (Array.make n p) in
      let check = Lowerbound.Talagrand.check space (Lowerbound.Talagrand.Weight_ge k) ~d in
      check.Lowerbound.Talagrand.holds)

let prop_talagrand_ball_holds =
  QCheck.Test.make ~count:40 ~name:"Lemma 9 holds on random balls"
    QCheck.(triple (int_bound 9) (int_bound 5) (int_bound 7))
    (fun (center_weight, radius, d) ->
      let n = 10 in
      let center = Array.init n (fun i -> if i < center_weight then 1 else 0) in
      let space = Lowerbound.Product.uniform_bits ~n in
      let check =
        Lowerbound.Talagrand.check space
          (Lowerbound.Talagrand.Ball { center; radius })
          ~d
      in
      check.Lowerbound.Talagrand.holds)

let prop_interpolation_conclusion =
  QCheck.Test.make ~count:30 ~name:"Lemma 14 conclusion on random biased endpoints"
    QCheck.(pair (int_bound 400) (int_bound 2))
    (fun (bias_m, gap_idx) ->
      let n = 12 in
      let p = 0.05 +. (0.35 *. (float_of_int bias_m /. 400.0)) in
      let gap = List.nth [ 2; 4; 6 ] gap_idx in
      let k0 = (n / 2) - (gap / 2) and k1 = (n / 2) + (gap / 2) in
      let t = max 1 (k1 - k0 - 1) in
      let r =
        Lowerbound.Interpolation.sweep
          ~pi0:(Lowerbound.Product.bernoulli (Array.make n p))
          ~pi_n:(Lowerbound.Product.bernoulli (Array.make n (1.0 -. p)))
          ~z0:(Lowerbound.Talagrand.Weight_le k0)
          ~z1:(Lowerbound.Talagrand.Weight_ge k1)
          ~t ()
      in
      r.Lowerbound.Interpolation.conclusion_holds)

let prop_committee_hijack_implies_dilution =
  QCheck.Test.make ~count:25 ~name:"committee: hijack implies >= 1/3 corrupt final committee"
    QCheck.(pair (int_bound 20) small_int)
    (fun (corrupt_count, seed) ->
      let n = 64 in
      let rng = Prng.Stream.root (seed + 1) in
      let corrupt = Prng.Stream.sample_without_replacement rng corrupt_count n in
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let report =
        Protocols.Committee.run
          (Protocols.Committee.default_params ~n ~seed)
          ~n ~corrupt ~inputs
      in
      (not report.Protocols.Committee.hijacked)
      || report.Protocols.Committee.final_bad_fraction >= 1.0 /. 3.0)

(* --- thresholds --- *)

let prop_thresholds_default_valid =
  QCheck.Test.make ~count:200 ~name:"default thresholds valid iff 6t < n"
    QCheck.(pair (int_range 1 300) (int_bound 40))
    (fun (n, t) ->
      let feasible = Protocols.Thresholds.feasible ~n ~t in
      let expected = t >= 0 && 6 * t < n && t < n in
      (* feasible must track the paper's regime (up to t = 0 edge). *)
      if t = 0 then true else feasible = expected)

let prop_thresholds_relaxed_valid =
  QCheck.Test.make ~count:150 ~name:"relaxed thresholds validate whenever defaults do"
    QCheck.(pair (int_range 7 300) (int_range 1 40))
    (fun (n, t) ->
      (not (Protocols.Thresholds.feasible ~n ~t))
      ||
      let relaxed = Protocols.Thresholds.relaxed ~n ~t in
      match Protocols.Thresholds.validate ~n ~t relaxed with
      | Ok () -> true
      | Error _ -> false)

(* --- windows --- *)

let prop_uniform_windows_validate =
  QCheck.Test.make ~count:200 ~name:"uniform windows with <= t silenced validate"
    QCheck.(triple (int_range 4 30) (int_bound 5) small_int)
    (fun (n, t, seed) ->
      let t = min t (n - 1) in
      let rng = Prng.Stream.root seed in
      let silenced = Prng.Stream.sample_without_replacement rng t n in
      let resets = Prng.Stream.sample_without_replacement rng t n in
      let w = Dsim.Window.uniform ~n ~silenced ~resets () in
      match Dsim.Window.validate ~n ~t w with Ok () -> true | Error _ -> false)

(* --- end-to-end safety: the paper's Definition 2 as a property --- *)

let windowed_adversaries :
    (string * (int -> (Protocols.Lewko_variant.state, Protocols.Lewko_variant.message) Adversary.Strategy.windowed))
    list =
  [
    ("benign", fun _ -> Adversary.Benign.windowed ());
    ("silence", fun _ -> Adversary.Silence.first_t);
    ("reset-random", fun seed -> Adversary.Reset_storm.random ~seed ());
    ("balancing", fun _ -> Adversary.Split_vote.windowed ());
    ("balance+reset", fun _ -> Adversary.Split_vote.windowed_with_resets ());
    ("split-brain", fun _ -> Adversary.Split_brain.windowed ());
  ]

let prop_variant_safety =
  QCheck.Test.make ~count:60
    ~name:"variant: no conflicting or invalid decisions under any tested adversary"
    QCheck.(triple (int_bound 2) (int_bound 4) small_int)
    (fun (size_idx, adversary_idx, seed) ->
      let n = List.nth [ 7; 13; 19 ] size_idx in
      let t = Protocols.Thresholds.max_fault_bound ~n in
      let name, strategy =
        List.nth windowed_adversaries (adversary_idx mod List.length windowed_adversaries)
      in
      ignore name;
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let config =
        Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n
          ~fault_bound:t ~inputs ~seed ()
      in
      let outcome =
        Dsim.Runner.run_windows config ~strategy:(strategy seed) ~max_windows:3_000
          ~stop:`All_decided
      in
      let verdict = Agreement.Correctness.of_outcome ~inputs outcome in
      Agreement.Correctness.ok verdict)

let prop_variant_unanimous_decides_input =
  QCheck.Test.make ~count:40 ~name:"variant: unanimous inputs decide that input fast"
    QCheck.(pair bool small_int)
    (fun (value, seed) ->
      let n = 13 in
      let config =
        Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n
          ~fault_bound:2 ~inputs:(Array.make n value) ~seed ()
      in
      let outcome =
        Dsim.Runner.run_windows config
          ~strategy:(Adversary.Reset_storm.random ~seed ())
          ~max_windows:50 ~stop:`All_decided
      in
      outcome.Dsim.Runner.decided <> []
      && List.for_all (fun (_, v) -> v = value) outcome.Dsim.Runner.decided)

let prop_ben_or_safety =
  QCheck.Test.make ~count:30 ~name:"ben-or: safety under random fair scheduling"
    QCheck.(pair (int_bound 1000) small_int)
    (fun (drop, seed) ->
      let n = 7 and t = 2 in
      let drop_probability = 0.6 *. (float_of_int drop /. 1000.0) in
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let config =
        Dsim.Engine.init ~protocol:(Protocols.Ben_or.protocol ()) ~n ~fault_bound:t
          ~inputs ~seed ()
      in
      let outcome =
        Dsim.Runner.run_steps config
          ~strategy:(Adversary.Benign.random_fair ~seed ~drop_probability ())
          ~max_steps:300_000 ~stop:`All_decided
      in
      let verdict = Agreement.Correctness.of_outcome ~inputs outcome in
      Agreement.Correctness.ok verdict)

let prop_window_conservation =
  QCheck.Test.make ~count:40
    ~name:"windowed executions conserve messages (sent = delivered + dropped)"
    QCheck.(pair (int_bound 4) small_int)
    (fun (adversary_idx, seed) ->
      let n = 13 in
      let t = Protocols.Thresholds.max_fault_bound ~n in
      let _, strategy =
        List.nth windowed_adversaries (adversary_idx mod List.length windowed_adversaries)
      in
      let config =
        Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n
          ~fault_bound:t
          ~inputs:(Array.init n (fun i -> (i + seed) mod 2 = 0))
          ~seed ()
      in
      ignore
        (Dsim.Runner.run_windows config ~strategy:(strategy seed) ~max_windows:40
           ~stop:`Never);
      let trace = Dsim.Engine.trace config in
      Dsim.Trace.sent trace
      = Dsim.Trace.delivered trace + Dsim.Trace.dropped trace
        + Dsim.Mailbox.size (Dsim.Engine.mailbox config))

let prop_sync_consensus_safety =
  QCheck.Test.make ~count:40 ~name:"sync consensus: safety under the coin killer"
    QCheck.(pair (int_bound 2) small_int)
    (fun (size_idx, seed) ->
      let n = List.nth [ 8; 16; 32 ] size_idx in
      let t = n / 4 in
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let outcome =
        Syncsim.Sync_engine.run ~protocol:Syncsim.Sync_consensus.protocol ~n ~t ~inputs
          ~seed
          ~adversary:(Syncsim.Sync_adversary.balancing ())
          ~max_rounds:50_000
      in
      (not outcome.Syncsim.Sync_engine.conflict)
      && outcome.Syncsim.Sync_engine.terminated
      && outcome.Syncsim.Sync_engine.crashes_used <= t)

let prop_shared_coin_outputs =
  QCheck.Test.make ~count:25 ~name:"shared coin: everyone outputs, race bounded"
    QCheck.(pair (int_bound 2) small_int)
    (fun (sched_idx, seed) ->
      let scheduler =
        List.nth
          [ Shmem.Shared_coin.Round_robin; Shmem.Shared_coin.Random seed;
            Shmem.Shared_coin.Stalling ]
          sched_idx
      in
      let n = 8 in
      let r =
        Shmem.Shared_coin.run ~n ~threshold_factor:1.0 ~seed ~scheduler
          ~max_steps:(10_000 * n * n) ()
      in
      Array.for_all (fun o -> o <> None) r.Shmem.Shared_coin.outputs
      && r.Shmem.Shared_coin.max_abs_sum >= n)

let prop_engine_determinism =
  QCheck.Test.make ~count:20 ~name:"executions are deterministic functions of the seed"
    QCheck.small_int
    (fun seed ->
      let run () =
        let config =
          Dsim.Engine.init ~protocol:(Protocols.Lewko_variant.protocol ()) ~n:9
            ~fault_bound:1
            ~inputs:(Array.init 9 (fun i -> i mod 2 = 0))
            ~seed ()
        in
        ignore
          (Dsim.Runner.run_windows config
             ~strategy:(Adversary.Split_vote.windowed ())
             ~max_windows:200 ~stop:`First_decision);
        Dsim.Engine.fingerprint config
      in
      run () = run ())

let suite =
  List.map to_alcotest
    [
      prop_int_below_in_range;
      prop_sample_without_replacement;
      prop_summary_merge;
      prop_histogram_survival_monotone;
      prop_binomial_tail_monotone;
      prop_hamming_metric;
      prop_product_complement;
      prop_talagrand_holds;
      prop_talagrand_ball_holds;
      prop_thresholds_default_valid;
      prop_thresholds_relaxed_valid;
      prop_interpolation_conclusion;
      prop_committee_hijack_implies_dilution;
      prop_uniform_windows_validate;
      prop_variant_safety;
      prop_variant_unanimous_decides_input;
      prop_ben_or_safety;
      prop_window_conservation;
      prop_sync_consensus_safety;
      prop_shared_coin_outputs;
      prop_engine_determinism;
    ]
