(* The executable Theorem 5 proof adversary (Monte-Carlo Z^k probing +
   window selection).  Small n only. *)

let protocol = Protocols.Lewko_variant.protocol ()

let config inputs = Dsim.Engine.init ~protocol ~n:7 ~fault_bound:1 ~inputs ~seed:3 ()

let test_level_of_unanimous () =
  (* All-zero inputs sit inside Z^1_0, hence inside the union at k=1;
     they are outside the union at k=0 (nobody has decided yet), so the
     maximal union-free level is 0. *)
  let rng = Prng.Stream.root 1 in
  let c = config (Array.make 7 false) in
  Alcotest.(check int) "unanimous level" 0
    (Lowerbound.Proof_adversary.level c ~k_max:1 ~samples:6 ~rng)

let test_level_of_split () =
  (* Split inputs are outside both Z^1 sets: level = k_max. *)
  let rng = Prng.Stream.root 2 in
  let c = config (Array.init 7 (fun i -> i mod 2 = 0)) in
  Alcotest.(check int) "split level" 1
    (Lowerbound.Proof_adversary.level c ~k_max:1 ~samples:6 ~rng)

let test_windowed_produces_valid_windows () =
  let strategy = Lowerbound.Proof_adversary.windowed ~k_max:1 ~samples:4 ~seed:5 () in
  let c = config (Array.init 7 (fun i -> i mod 2 = 0)) in
  for _ = 1 to 3 do
    match strategy c with
    | None -> Alcotest.fail "halted"
    | Some w -> (
        match Dsim.Window.validate ~n:7 ~t:1 w with
        | Ok () -> Dsim.Engine.apply_window c w
        | Error m -> Alcotest.fail m)
  done

let test_safety_under_proof_adversary () =
  (* Whatever the adversary plays, Theorem 4 still holds. *)
  for seed = 1 to 3 do
    let inputs = Array.init 7 (fun i -> (i + seed) mod 2 = 0) in
    let c = Dsim.Engine.init ~protocol ~n:7 ~fault_bound:1 ~inputs ~seed () in
    let outcome =
      Dsim.Runner.run_windows c
        ~strategy:(Lowerbound.Proof_adversary.windowed ~k_max:1 ~samples:4 ~seed ())
        ~max_windows:60 ~stop:`All_decided
    in
    Alcotest.(check bool) "no conflict" false outcome.Dsim.Runner.conflict;
    let verdict = Agreement.Correctness.of_outcome ~inputs outcome in
    Alcotest.(check bool) "validity" true verdict.Agreement.Correctness.validity
  done

let suite =
  [
    Alcotest.test_case "level of unanimous" `Quick test_level_of_unanimous;
    Alcotest.test_case "level of split" `Quick test_level_of_split;
    Alcotest.test_case "windowed produces valid windows" `Quick
      test_windowed_produces_valid_windows;
    Alcotest.test_case "safety under proof adversary" `Quick
      test_safety_under_proof_adversary;
  ]
