(* Product probability spaces. *)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_create_validation () =
  let bad_sum () = ignore (Lowerbound.Product.create [| [| 0.5; 0.6 |] |]) in
  let negative () = ignore (Lowerbound.Product.create [| [| 1.2; -0.2 |] |]) in
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad sum" true (raised bad_sum);
  Alcotest.(check bool) "negative" true (raised negative);
  Alcotest.(check bool) "empty rows" true
    (raised (fun () -> ignore (Lowerbound.Product.create [||])))

let test_dims_support () =
  let p = Lowerbound.Product.create [| [| 0.5; 0.5 |]; [| 0.2; 0.3; 0.5 |] |] in
  Alcotest.(check int) "dims" 2 (Lowerbound.Product.dims p);
  Alcotest.(check int) "support 0" 2 (Lowerbound.Product.support p 0);
  Alcotest.(check int) "support 1" 3 (Lowerbound.Product.support p 1);
  Alcotest.(check bool) "total outcomes" true
    (close (Lowerbound.Product.total_outcomes p) 6.0)

let test_prob_exact () =
  let p = Lowerbound.Product.uniform_bits ~n:4 in
  Alcotest.(check bool) "P[everything] = 1" true
    (close (Lowerbound.Product.prob_exact p (fun _ -> true)) 1.0);
  Alcotest.(check bool) "P[nothing] = 0" true
    (close (Lowerbound.Product.prob_exact p (fun _ -> false)) 0.0);
  (* P[first coordinate = 1] = 1/2. *)
  Alcotest.(check bool) "coordinate marginal" true
    (close (Lowerbound.Product.prob_exact p (fun x -> x.(0) = 1)) 0.5);
  (* P[weight = 2 of 4] = 6/16. *)
  let weight x = Array.fold_left ( + ) 0 x in
  Alcotest.(check bool) "weight pmf" true
    (close (Lowerbound.Product.prob_exact p (fun x -> weight x = 2)) (6.0 /. 16.0))

let test_prob_exact_biased () =
  let p = Lowerbound.Product.bernoulli [| 0.1; 0.9 |] in
  Alcotest.(check bool) "P[(1,1)] = 0.09" true
    (close (Lowerbound.Product.prob_exact p (fun x -> x.(0) = 1 && x.(1) = 1)) 0.09)

let test_complement () =
  let p = Lowerbound.Product.uniform_bits ~n:6 in
  let predicate x = Array.fold_left ( + ) 0 x >= 4 in
  let a = Lowerbound.Product.prob_exact p predicate in
  let b = Lowerbound.Product.prob_exact p (fun x -> not (predicate x)) in
  Alcotest.(check bool) "P[A] + P[not A] = 1" true (close (a +. b) 1.0)

let test_mc_close_to_exact () =
  let p = Lowerbound.Product.uniform_bits ~n:10 in
  let predicate x = Array.fold_left ( + ) 0 x >= 6 in
  let exact = Lowerbound.Product.prob_exact p predicate in
  let mc = Lowerbound.Product.prob_mc p ~samples:40_000 ~seed:1 predicate in
  Alcotest.(check bool) "MC within 2%" true (Float.abs (exact -. mc) < 0.02)

let test_hybrid () =
  let a = Lowerbound.Product.bernoulli [| 0.0; 0.0; 0.0; 0.0 |] in
  let b = Lowerbound.Product.bernoulli [| 1.0; 1.0; 1.0; 1.0 |] in
  let h = Lowerbound.Product.hybrid a b ~j:2 in
  (* Coordinates < 2 from a (always 0), >= 2 from b (always 1). *)
  Alcotest.(check bool) "hybrid deterministic" true
    (close (Lowerbound.Product.prob_exact h (fun x -> x.(0) = 0 && x.(1) = 0 && x.(2) = 1 && x.(3) = 1)) 1.0);
  let h0 = Lowerbound.Product.hybrid a b ~j:0 in
  Alcotest.(check bool) "j=0 is second distribution" true
    (close (Lowerbound.Product.prob_exact h0 (fun x -> Array.for_all (fun v -> v = 1) x)) 1.0)

let test_hybrid_validation () =
  let a = Lowerbound.Product.uniform_bits ~n:3 in
  let b = Lowerbound.Product.uniform_bits ~n:4 in
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "dim mismatch" true
    (raised (fun () -> ignore (Lowerbound.Product.hybrid a b ~j:1)));
  Alcotest.(check bool) "j out of range" true
    (raised (fun () -> ignore (Lowerbound.Product.hybrid a a ~j:4)))

let test_sample_distribution () =
  let p = Lowerbound.Product.bernoulli [| 0.8 |] in
  let rng = Prng.Stream.root 3 in
  let ones = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if (Lowerbound.Product.sample p rng).(0) = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int trials in
  Alcotest.(check bool) "sampling matches pmf" true (frac > 0.78 && frac < 0.82)

let test_coordinate_pmf_is_copy () =
  let p = Lowerbound.Product.bernoulli [| 0.3; 0.7 |] in
  let row = Lowerbound.Product.coordinate_pmf p 0 in
  row.(0) <- 99.0;
  let again = Lowerbound.Product.coordinate_pmf p 0 in
  Alcotest.(check bool) "internal pmf unharmed" true (close again.(0) 0.7)

let test_prob_exact_too_large () =
  let p = Lowerbound.Product.uniform_bits ~n:40 in
  Alcotest.check_raises "too large" (Invalid_argument "Product.prob_exact: space too large")
    (fun () -> ignore (Lowerbound.Product.prob_exact p (fun _ -> true)))

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "dims and support" `Quick test_dims_support;
    Alcotest.test_case "prob exact" `Quick test_prob_exact;
    Alcotest.test_case "prob exact biased" `Quick test_prob_exact_biased;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "mc close to exact" `Quick test_mc_close_to_exact;
    Alcotest.test_case "hybrid" `Quick test_hybrid;
    Alcotest.test_case "hybrid validation" `Quick test_hybrid_validation;
    Alcotest.test_case "sample distribution" `Quick test_sample_distribution;
    Alcotest.test_case "coordinate pmf is copy" `Quick test_coordinate_pmf_is_copy;
    Alcotest.test_case "prob exact too large" `Quick test_prob_exact_too_large;
  ]
