(* Shared-memory consensus (Aspnes-Herlihy structure over the
   counter-race coin). *)

let run ?(n = 8) ?(seed = 1) ?(scheduler = Shmem.Shared_coin.Round_robin) ?inputs () =
  let inputs = Option.value ~default:(Array.init n (fun i -> i mod 2 = 0)) inputs in
  Shmem.Sm_consensus.run ~n ~inputs ~seed ~scheduler ~max_steps:(50_000 * n * n) ()

let test_unanimous_no_coin () =
  let r = run ~inputs:(Array.make 8 true) () in
  Array.iter
    (fun o -> Alcotest.(check bool) "decides unanimous input" true (o = Some true))
    r.Shmem.Sm_consensus.outputs;
  Alcotest.(check int) "no coin needed" 0 r.Shmem.Sm_consensus.coin_rounds;
  Alcotest.(check bool) "valid" true r.Shmem.Sm_consensus.valid

let test_split_terminates_and_agrees () =
  for seed = 1 to 15 do
    let r = run ~seed () in
    Array.iter
      (fun o -> Alcotest.(check bool) "everyone decides" true (o <> None))
      r.Shmem.Sm_consensus.outputs;
    Alcotest.(check bool) "agreement" true r.Shmem.Sm_consensus.agreed;
    Alcotest.(check bool) "validity" true r.Shmem.Sm_consensus.valid
  done

let test_agreement_under_schedulers () =
  List.iter
    (fun scheduler ->
      for seed = 1 to 10 do
        let r = run ~seed ~scheduler () in
        Alcotest.(check bool) "agreement" true r.Shmem.Sm_consensus.agreed;
        Alcotest.(check bool) "validity" true r.Shmem.Sm_consensus.valid;
        Alcotest.(check bool) "termination" true
          (Array.for_all (fun o -> o <> None) r.Shmem.Sm_consensus.outputs)
      done)
    [ Shmem.Shared_coin.Random 3; Shmem.Shared_coin.Stalling ]

let test_both_outcomes_reachable () =
  let zeros = ref 0 and ones = ref 0 in
  for seed = 1 to 30 do
    let r = run ~seed () in
    match r.Shmem.Sm_consensus.outputs.(0) with
    | Some true -> incr ones
    | Some false -> incr zeros
    | None -> Alcotest.fail "undecided"
  done;
  Alcotest.(check bool) "both values occur" true (!zeros > 0 && !ones > 0)

let test_rounds_stay_small () =
  (* Constant expected rounds: even adversarial scheduling should not
     push the round count anywhere near the step budget. *)
  let worst = ref 0 in
  for seed = 1 to 10 do
    let r = run ~seed ~scheduler:Shmem.Shared_coin.Stalling () in
    worst := max !worst r.Shmem.Sm_consensus.rounds
  done;
  Alcotest.(check bool) "rounds bounded" true (!worst < 30)

let test_determinism () =
  let a = run ~seed:4 () and b = run ~seed:4 () in
  Alcotest.(check bool) "same seed same run" true (a = b)

let suite =
  [
    Alcotest.test_case "unanimous no coin" `Quick test_unanimous_no_coin;
    Alcotest.test_case "split terminates and agrees" `Quick test_split_terminates_and_agrees;
    Alcotest.test_case "agreement under schedulers" `Quick test_agreement_under_schedulers;
    Alcotest.test_case "both outcomes reachable" `Quick test_both_outcomes_reachable;
    Alcotest.test_case "rounds stay small" `Quick test_rounds_stay_small;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
