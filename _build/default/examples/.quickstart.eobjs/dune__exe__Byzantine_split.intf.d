examples/byzantine_split.mli:
