examples/reset_storm.ml: Adversary Array Dsim Format List Protocols
