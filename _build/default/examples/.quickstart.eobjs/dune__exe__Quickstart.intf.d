examples/quickstart.mli:
