examples/lower_bound_tour.ml: Adversary Array Dsim Format List Lowerbound Prng Protocols Stats
