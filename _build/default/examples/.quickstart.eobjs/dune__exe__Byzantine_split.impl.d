examples/byzantine_split.ml: Adversary Agreement Array Dsim Format List Protocols String
