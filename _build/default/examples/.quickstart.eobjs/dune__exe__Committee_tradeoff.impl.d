examples/committee_tradeoff.ml: Array Format List Prng Protocols Stats
