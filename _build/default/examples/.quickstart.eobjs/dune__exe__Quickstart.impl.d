examples/quickstart.ml: Adversary Agreement Array Dsim Format Protocols
