examples/flp_determinism.ml: Adversary Array Dsim Format List Printf Protocols Stats
