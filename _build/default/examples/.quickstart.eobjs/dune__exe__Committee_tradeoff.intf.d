examples/committee_tradeoff.mli:
