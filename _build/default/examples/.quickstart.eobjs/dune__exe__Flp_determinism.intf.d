examples/flp_determinism.mli:
