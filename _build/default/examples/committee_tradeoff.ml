(* The speed-vs-perfection trade-off (Section 1): the committee
   algorithm of Kapron et al. decides in polylog rounds, but accepts a
   non-zero probability of a hijacked (possibly invalid) result, and an
   adaptive adversary defeats it outright.  The paper's point: against
   the strongly adaptive adversary, algorithms with measure-one
   correctness and termination *must* be exponentially slow (Theorem 5)
   — the committee algorithm escapes that fate only by giving up
   perfection and adaptivity.

     dune exec examples/committee_tradeoff.exe
*)

let trial ~n ~fraction ~adaptive ~seed =
  let rng = Prng.Stream.root seed in
  let corrupt_count = int_of_float (fraction *. float_of_int n) in
  let corrupt = Prng.Stream.sample_without_replacement rng corrupt_count n in
  let inputs = Array.make n (seed mod 2 = 0) in
  let params =
    { (Protocols.Committee.default_params ~n ~seed) with adaptive_attack = adaptive }
  in
  Protocols.Committee.run params ~n ~corrupt ~inputs

let sweep ~n ~fraction ~adaptive ~trials =
  let hijacked = ref 0 and invalid = ref 0 and rounds = ref Stats.Summary.empty in
  for seed = 1 to trials do
    let report = trial ~n ~fraction ~adaptive ~seed in
    if report.Protocols.Committee.hijacked then incr hijacked;
    if not report.Protocols.Committee.valid then incr invalid;
    rounds := Stats.Summary.add_int !rounds report.Protocols.Committee.rounds
  done;
  Format.printf
    "  n=%4d corrupt=%2.0f%% adaptive=%-5b -> rounds %.1f, hijacked %2d/%d, invalid %2d/%d@."
    n (100.0 *. fraction) adaptive (Stats.Summary.mean !rounds) !hijacked trials
    !invalid trials

let () =
  Format.printf "Committee algorithm (structural Kapron et al.), unanimous inputs:@.";
  List.iter
    (fun n ->
      sweep ~n ~fraction:0.0 ~adaptive:false ~trials:30;
      sweep ~n ~fraction:0.15 ~adaptive:false ~trials:30;
      sweep ~n ~fraction:0.25 ~adaptive:false ~trials:30;
      sweep ~n ~fraction:0.1 ~adaptive:true ~trials:30)
    [ 64; 256 ];
  Format.printf
    "@.Rounds grow ~ log n (committee-tree depth) — far below the@.\
     exponential bound of Theorem 5 — but a corrupted final committee@.\
     dictates the output, and the adaptive attack succeeds always.@."
