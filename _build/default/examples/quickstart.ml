(* Quickstart: run the paper's variant algorithm (Section 3) on 13
   processors with split inputs, first under a benign scheduler, then
   against the strongly adaptive balancing adversary, and print what
   happened.

     dune exec examples/quickstart.exe
*)

let run ~name ~strategy =
  let n = 13 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let config =
    Dsim.Engine.init
      ~protocol:(Protocols.Lewko_variant.protocol ())
      ~n ~fault_bound:t ~inputs ~seed:42 ()
  in
  let outcome =
    Dsim.Runner.run_windows config ~strategy ~max_windows:100_000 ~stop:`All_decided
  in
  let verdict = Agreement.Correctness.of_outcome ~inputs outcome in
  Format.printf "@[<v>%s:@,  %a@,  %a@,@]" name Dsim.Runner.pp_outcome outcome
    Agreement.Correctness.pp verdict

let () =
  Format.printf "Variant algorithm, n = 13, t = 2, split inputs.@.@.";
  run ~name:"benign scheduler" ~strategy:(Adversary.Benign.windowed ());
  run ~name:"balancing adversary" ~strategy:(Adversary.Split_vote.windowed ());
  run ~name:"balancing + resets" ~strategy:(Adversary.Split_vote.windowed_with_resets ());
  Format.printf
    "Note how the adversary multiplies the number of acceptable windows@,\
     needed before anyone decides — Section 3's exponential-time effect@,\
     in miniature (see experiment E2 for the scaling in n).@."
