(* The asymptotic cost lattice of the R11-R14 analyzer.

   Five points ordered by how badly a hot-path operation scales with
   the system size n:

     Const < Log < Linear < Quadratic < Unknown

   [join] is the least upper bound (sequential composition: the cost of
   doing A then B).  [nest] bounds running the inner computation once
   per step of an outer iteration; products that leave the lattice
   (anything super-quadratic) land on [Unknown], which doubles as "no
   static bound".  Rounding is always upward, so the analyzer
   over-approximates and never certifies a hazard as cheap. *)

type t = Const | Log | Linear | Quadratic | Unknown

let all = [ Const; Log; Linear; Quadratic; Unknown ]

let rank = function
  | Const -> 0
  | Log -> 1
  | Linear -> 2
  | Quadratic -> 3
  | Unknown -> 4

let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b
let leq a b = rank a <= rank b

let bottom = Const
let top = Unknown

let join a b = if rank a >= rank b then a else b

(* [nest outer inner]: the inner cost paid once per iteration of a
   structure whose size has the outer cost.  Commutative and monotone
   in both arguments (test/test_cost_lint.ml checks the laws); not
   associative, because products are rounded up to the nearest lattice
   point (log*log -> n, n*log -> n^2) before composing further. *)
let nest a b =
  match (a, b) with
  | Const, x | x, Const -> x
  | Unknown, _ | _, Unknown -> Unknown
  | Log, Log -> Linear (* log^2 n <= n *)
  | Quadratic, _ | _, Quadratic -> Unknown (* super-quadratic *)
  | Log, Linear | Linear, Log -> Quadratic (* n log n <= n^2 *)
  | Linear, Linear -> Quadratic

(* [nest_depth d c]: c paid under d nested data-dependent iterations. *)
let rec nest_depth depth c =
  if depth <= 0 then c else nest_depth (depth - 1) (nest Linear c)

let to_string = function
  | Const -> "O(1)"
  | Log -> "O(log n)"
  | Linear -> "O(n)"
  | Quadratic -> "O(n^2)"
  | Unknown -> "unknown (unbounded or unanalyzable)"

let pp ppf t = Format.pp_print_string ppf (to_string t)
