(* Layer 5: the symbolic quorum-safety analyzer (R15-R18).

   The cost layer (R11-R14) asks "how much does a transition cost"; this
   layer asks "is the threshold arithmetic sound for every (n, t) the
   protocol claims to tolerate".  It walks the typed trees, reduces
   every quorum-threshold definition — the protocol's own defaults and
   any [?decide_quorum]-style hook passed at a construction site — to a
   symbolic affine form over [n] and [t] ({!Symexpr}), and discharges
   per-family obligations (quorum intersection above the fault bound,
   decide thresholds out of the adversary's unilateral reach, registry
   resilience claims matching the arithmetic) with the exact integer
   decision procedure.  A failed obligation comes with a concrete
   witness point (n, t) inside the declared resilience region.

   R15 is the cost layer's documented blind spot — recursion whose
   per-iteration body is cheap but whose summary exceeds the hot-path
   threshold — and is computed by {!Cost_lint.recursion_findings}; it
   reports here so `--quorum` is the one place the fifth layer lives.

   Extraction is a small symbolic evaluator over the typed tree, not a
   parser of naming conventions: optional-argument defaults are read
   through the elaborated [match ... with None -> default | Some d -> d]
   the compiler inserts, [Thresholds.default]'s validation match is
   resolved by the all-but-one-branch-raises rule, local helper
   closures (e.g. [Reliable_broadcast.create]'s [dflt]) are
   beta-reduced, and guard conditions that compare symbolic quantities
   are decided by {!Symexpr.implies} under the family's resilience
   region.  Anything outside the fragment evaluates to an unknown,
   which is reported rather than silently trusted when it reaches a
   threshold position. *)

(* ------------------------------------------------------------------ *)
(* Symbolic values.                                                    *)

type value =
  | VSym of Symexpr.t
  | VBool of bool
  | VTest of Symexpr.t  (* truth value of [expr >= 0] *)
  | VString of string
  | VConstruct of string * value list
  | VTuple of value list
  | VRecord of (string * value) list
  | VClosure of closure
  | VUnknown

and closure = {
  cl_env : env;
  cl_globals : (string, Typedtree.expression) Hashtbl.t;
      (* the defining module's top-levels, so the body's free
         identifiers resolve there, not in the caller's module *)
  cl_body : Typedtree.expression;
}

and env = (string * value) list

exception Raises
(* The evaluated expression raises on every path: [invalid_arg],
   [failwith], [raise], [assert false], or a match with no case. *)

let vnone = VConstruct ("None", [])
let vunit = VConstruct ("()", [])

type st = {
  fuel : int ref;  (* shared across module switches *)
  region : Symexpr.t list;  (* ambient assumptions for guard pruning *)
  globals : (string, Typedtree.expression) Hashtbl.t;
      (* current module's top-level bindings, for beta-reduction *)
  mods : (string, (string, Typedtree.expression) Hashtbl.t) Hashtbl.t;
      (* every loaded module's top-levels, for cross-module calls *)
  bindings : (string, value) Hashtbl.t;
      (* side table: every let-binding evaluated along the way *)
}

let raising_names =
  [ "invalid_arg"; "failwith"; "raise"; "raise_notrace"; "raise_error" ]

let holds st goal =
  match Symexpr.implies ~region:st.region goal with
  | Symexpr.Holds -> Some true
  | Symexpr.Fails _ -> None
  | Symexpr.Unknown _ -> None
  | exception Symexpr.Undecidable _ -> None

(* Decide a test under the ambient region: [Some true] when the
   comparison holds everywhere, [Some false] when its negation does. *)
let decide_test st s =
  match holds st s with
  | Some true -> Some true
  | _ -> (
      (* not (s >= 0)  <=>  s <= -1  <=>  -1 - s >= 0 *)
      match holds st (Symexpr.sub (Symexpr.int_ (-1)) s) with
      | Some true -> Some false
      | _ -> None)

let rec pattern_vars (p : Typedtree.value Typedtree.general_pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> [ Ident.name id ]
  | Tpat_alias (p', id, _) -> Ident.name id :: pattern_vars p'
  | Tpat_tuple ps | Tpat_construct (_, _, ps, _) | Tpat_array ps ->
      List.concat_map pattern_vars ps
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p') -> pattern_vars p') fields
  | Tpat_or (a, b, _) -> pattern_vars a @ pattern_vars b
  | Tpat_variant (_, Some p', _) -> pattern_vars p'
  | Tpat_lazy p' -> pattern_vars p'
  | Tpat_any | Tpat_constant _ | Tpat_variant (_, None, _) -> []

type match_result = Match of env | NoMatch | Ambiguous

let rec match_value v (p : Typedtree.value Typedtree.general_pattern) =
  match p.pat_desc with
  | Tpat_any -> Match []
  | Tpat_var (id, _) -> Match [ (Ident.name id, v) ]
  | Tpat_alias (p', id, _) -> (
      match match_value v p' with
      | Match bs -> Match ((Ident.name id, v) :: bs)
      | r -> r)
  | Tpat_constant (Asttypes.Const_int k) -> (
      match v with
      | VSym s -> (
          match Symexpr.as_affine s with
          | Some (0, 0, c) -> if c = k then Match [] else NoMatch
          | _ -> Ambiguous)
      | _ -> Ambiguous)
  | Tpat_constant _ -> Ambiguous
  | Tpat_construct (_, cstr, argps, _) -> (
      let name = cstr.Types.cstr_name in
      match (v, name) with
      | VBool b, "true" -> if b then Match [] else NoMatch
      | VBool b, "false" -> if b then NoMatch else Match []
      | VConstruct (n, argvs), _ ->
          if String.equal n name then
            if List.length argvs = List.length argps then
              match_all (List.combine argvs argps)
            else Ambiguous
          else NoMatch
      | _ -> Ambiguous)
  | Tpat_tuple ps -> (
      match v with
      | VTuple vs when List.length vs = List.length ps ->
          match_all (List.combine vs ps)
      | _ ->
          (* Unknown tuple: bind every variable as unknown. *)
          Match (List.map (fun nm -> (nm, VUnknown)) (pattern_vars p)))
  | Tpat_record (fields, _) -> (
      match v with
      | VRecord fs ->
          match_all
            (List.map
               (fun ((_, (lbl : Types.label_description), p') :
                      Longident.t Location.loc
                      * Types.label_description
                      * Typedtree.value Typedtree.general_pattern) ->
                 ( (match List.assoc_opt lbl.Types.lbl_name fs with
                   | Some fv -> fv
                   | None -> VUnknown),
                   p' ))
               fields)
      | _ -> Match (List.map (fun nm -> (nm, VUnknown)) (pattern_vars p)))
  | Tpat_or (a, b, _) -> (
      match match_value v a with NoMatch -> match_value v b | r -> r)
  | Tpat_lazy _ | Tpat_variant _ | Tpat_array _ -> Ambiguous

and match_all = function
  | [] -> Match []
  | (v, p) :: rest -> (
      match match_value v p with
      | NoMatch -> NoMatch
      | Ambiguous -> Ambiguous
      | Match bs -> (
          match match_all rest with
          | Match bs' -> Match (bs @ bs')
          | r -> r))

(* ------------------------------------------------------------------ *)
(* The evaluator.                                                      *)

let record_binding st name v =
  (* First symbolic value wins; later shadowing cannot overwrite it. *)
  match Hashtbl.find_opt st.bindings name with
  | Some (VSym _) -> ()
  | Some _ | None -> Hashtbl.replace st.bindings name v

let rec eval st env (e : Typedtree.expression) : value =
  decr st.fuel;
  if !(st.fuel) <= 0 then VUnknown
  else
    match e.exp_desc with
    | Texp_constant (Asttypes.Const_int k) -> VSym (Symexpr.int_ k)
    | Texp_constant (Asttypes.Const_string (s, _, _)) -> VString s
    | Texp_constant _ -> VUnknown
    | Texp_ident (Path.Pident id, _, _) -> (
        let name = Ident.name id in
        match List.assoc_opt name env with
        | Some v -> v
        | None -> (
            if List.mem name raising_names then raise Raises
            else
              match Hashtbl.find_opt st.globals name with
              | Some ({ exp_desc = Texp_function _; _ } as fn) ->
                  VClosure { cl_env = []; cl_globals = st.globals; cl_body = fn }
              | Some expr -> eval st [] expr
              | None -> VUnknown))
    | Texp_ident (p, _, _) -> (
        match List.rev (Callgraph.path_components p) with
        | last :: _ when List.mem last raising_names -> raise Raises
        | last :: modname :: _ -> (
            (* Cross-module reference: resolve in that module's
               top-levels when it is loaded. *)
            match Hashtbl.find_opt st.mods modname with
            | None -> VUnknown
            | Some globals -> (
                match Hashtbl.find_opt globals last with
                | Some ({ exp_desc = Texp_function _; _ } as fn) ->
                    VClosure { cl_env = []; cl_globals = globals; cl_body = fn }
                | Some expr -> eval { st with globals } [] expr
                | None -> VUnknown))
        | _ -> VUnknown)
    | Texp_function _ ->
        VClosure { cl_env = env; cl_globals = st.globals; cl_body = e }
    | Texp_apply (f, args) -> eval_apply st env f args
    | Texp_let (_, vbs, body) ->
        let env =
          List.fold_left
            (fun acc (vb : Typedtree.value_binding) ->
              let v = try eval st acc vb.vb_expr with Raises -> raise Raises in
              match match_value v vb.vb_pat with
              | Match bs ->
                  List.iter (fun (nm, bv) -> record_binding st nm bv) bs;
                  bs @ acc
              | NoMatch | Ambiguous ->
                  let bs =
                    List.map
                      (fun nm -> (nm, VUnknown))
                      (pattern_vars vb.vb_pat)
                  in
                  List.iter (fun (nm, bv) -> record_binding st nm bv) bs;
                  bs @ acc)
            env vbs
        in
        eval st env body
    | Texp_match (scrut, cases, _) ->
        let v = try eval st env scrut with Raises -> raise Raises in
        let value_cases =
          List.filter_map
            (fun (c : Typedtree.computation Typedtree.case) ->
              match Typedtree.split_pattern c.c_lhs with
              | Some p, _ -> Some (p, c.c_guard, c.c_rhs)
              | None, _ -> None)
            cases
        in
        eval_cases st env v value_cases
    | Texp_ifthenelse (c, then_, else_) -> (
        let cv = try eval st env c with Raises -> raise Raises in
        let else_value st =
          match else_ with Some e' -> eval st env e' | None -> vunit
        in
        match cv with
        | VBool true -> eval st env then_
        | VBool false -> else_value st
        | VTest s -> (
            match decide_test st s with
            | Some true -> eval st env then_
            | Some false -> else_value st
            | None -> explore2 st (fun st -> eval st env then_) else_value)
        | _ -> explore2 st (fun st -> eval st env then_) else_value)
    | Texp_construct (_, cstr, args) -> (
        match cstr.Types.cstr_name with
        | "true" -> VBool true
        | "false" -> VBool false
        | name -> VConstruct (name, List.map (eval st env) args))
    | Texp_tuple es -> VTuple (List.map (eval st env) es)
    | Texp_record { fields; extended_expression; _ } ->
        let base =
          match extended_expression with
          | Some b -> (
              match eval st env b with VRecord fs -> Some fs | _ -> None)
          | None -> None
        in
        VRecord
          (Array.to_list fields
          |> List.map (fun ((lbl : Types.label_description), def) ->
                 let name = lbl.Types.lbl_name in
                 match def with
                 | Typedtree.Overridden (_, ex) -> (name, eval st env ex)
                 | Typedtree.Kept _ -> (
                     match base with
                     | Some fs ->
                         (name, Option.value ~default:VUnknown
                                  (List.assoc_opt name fs))
                     | None -> (name, VUnknown))))
    | Texp_field (b, _, lbl) -> (
        let name = lbl.Types.lbl_name in
        match eval st env b with
        | VRecord fs -> Option.value ~default:VUnknown (List.assoc_opt name fs)
        | _ -> (
            (* Ambient protocol-state fields: any record we cannot see
               is assumed to carry the instance parameters under their
               conventional names. *)
            match name with
            | "n" -> VSym Symexpr.n_
            | "t" | "fault_bound" -> VSym Symexpr.t_
            | _ -> VUnknown))
    | Texp_sequence (a, b) ->
        (try ignore (eval st env a) with Raises -> raise Raises);
        eval st env b
    | Texp_assert ({ exp_desc = Texp_construct (_, c, _); _ }, _)
      when c.Types.cstr_name = "false" ->
        raise Raises
    | Texp_assert _ -> vunit
    | Texp_open (_, body) -> eval st env body
    | Texp_try (body, _) -> ( try eval st env body with Raises -> VUnknown)
    | _ -> VUnknown

(* Both branches of an undecidable conditional are explored so their
   let-bindings land in the side table; the result is kept only when
   the branches agree on a symbolic value. *)
and explore2 st f g =
  let a = try Some (f st) with Raises -> None in
  let b = try Some (g st) with Raises -> None in
  match (a, b) with
  | Some v, None | None, Some v -> v
  | None, None -> raise Raises
  | Some (VSym x), Some (VSym y) when x = y -> VSym x
  | Some _, Some _ -> VUnknown

and eval_cases st env v cases =
  let rec pick = function
    | [] -> `NoCase
    | (p, guard, rhs) :: rest -> (
        match match_value v p with
        | NoMatch -> pick rest
        | Match bs when guard = None -> `Picked (bs, rhs)
        | Match _ | Ambiguous -> `Ambiguous)
  in
  match pick cases with
  | `Picked (bs, rhs) ->
      List.iter (fun (nm, bv) -> record_binding st nm bv) bs;
      eval st (bs @ env) rhs
  | `NoCase -> raise Raises
  | `Ambiguous -> (
      (* All-but-one-branch-raises: if every case but one raises on
         every path, the survivor is the value (pattern variables bound
         as unknowns).  [Thresholds.default]'s validation match reduces
         this way: the [Error] arm ends in [invalid_arg]. *)
      let survivors =
        List.filter_map
          (fun (p, _guard, rhs) ->
            let bs = List.map (fun nm -> (nm, VUnknown)) (pattern_vars p) in
            List.iter (fun (nm, bv) -> record_binding st nm bv) bs;
            match eval st (bs @ env) rhs with
            | v -> Some v
            | exception Raises -> None)
          cases
      in
      match survivors with [ v ] -> v | [] -> raise Raises | _ -> VUnknown)

and eval_apply st env f args =
  let argv = List.filter_map (fun (_, a) -> a) args in
  let arith2 op =
    match List.map (eval st env) argv with
    | [ VSym a; VSym b ] -> op a b
    | _ -> VUnknown
  in
  let name =
    match f.Typedtree.exp_desc with
    | Texp_ident (p, _, _) -> Callgraph.stdlib_name p
    | _ -> ""
  in
  match name with
  | "+" -> arith2 (fun a b -> VSym (Symexpr.add a b))
  | "-" -> arith2 (fun a b -> VSym (Symexpr.sub a b))
  | "*" ->
      arith2 (fun a b ->
          match (Symexpr.as_affine a, Symexpr.as_affine b) with
          | Some (0, 0, k), _ -> VSym (Symexpr.scale k b)
          | _, Some (0, 0, k) -> VSym (Symexpr.scale k a)
          | _ -> VUnknown)
  | "/" ->
      arith2 (fun a b ->
          match Symexpr.as_affine b with
          | Some (0, 0, k) when k > 0 -> VSym (Symexpr.div a k)
          | _ -> VUnknown)
  | "max" -> arith2 (fun a b -> VSym (Symexpr.max_ a b))
  | "min" -> arith2 (fun a b -> VSym (Symexpr.min_ a b))
  | ">=" -> arith2 (fun a b -> VTest (Symexpr.ge a b))
  | ">" -> arith2 (fun a b -> VTest (Symexpr.gt a b))
  | "<=" -> arith2 (fun a b -> VTest (Symexpr.le a b))
  | "<" -> arith2 (fun a b -> VTest (Symexpr.lt a b))
  | "not" -> (
      match List.map (eval st env) argv with
      | [ VBool b ] -> VBool (not b)
      | [ VTest s ] -> VTest (Symexpr.sub (Symexpr.int_ (-1)) s)
      | _ -> VUnknown)
  | "&&" | "||" -> (
      let conj = String.equal name "&&" in
      match List.map (eval st env) argv with
      | [ VBool a; VBool b ] -> VBool (if conj then a && b else a || b)
      | [ VBool true; v ] | [ v; VBool true ] -> if conj then v else VBool true
      | [ VBool false; v ] | [ v; VBool false ] ->
          if conj then VBool false else v
      | _ -> VUnknown)
  | _ -> (
      match eval st env f with
      | VClosure cl ->
          let vs = List.map (eval st env) argv in
          apply st cl vs
      | _ ->
          (* Unknown callee: still force the arguments, so a raising
             argument (e.g. [invalid_arg (Printf.sprintf ...)]) is
             seen. *)
          List.iter (fun a -> ignore (eval st env a)) argv;
          VUnknown)

and apply st cl vs =
  let st = { st with globals = cl.cl_globals } in
  match vs with
  | [] -> VClosure cl
  | v :: rest -> (
      match cl.cl_body.exp_desc with
      | Texp_function { cases; _ } -> (
          let value_cases =
            List.map
              (fun (c : Typedtree.value Typedtree.case) ->
                (c.c_lhs, c.c_guard, c.c_rhs))
              cases
          in
          match eval_cases st cl.cl_env v value_cases with
          | VClosure cl' -> apply st cl' rest
          | result -> if rest = [] then result else VUnknown)
      | _ -> (
          match eval st cl.cl_env cl.cl_body with
          | VClosure cl' -> apply st cl' vs
          | _ -> VUnknown))

(* Feed a function's parameters by name: labelled/optional parameters
   by label, positional ones by their pattern variable.  Unlisted
   optional parameters default to [None] (so `?(x = d)` elaborations
   take their declared default), anything else to unknown. *)
let saturate st expr ~args =
  let rec go v =
    match v with
    | VClosure cl -> (
        let st = { st with globals = cl.cl_globals } in
        match cl.cl_body.exp_desc with
        | Texp_function { arg_label; cases; _ } ->
            let pname =
              match arg_label with
              | Asttypes.Labelled s | Asttypes.Optional s -> Some s
              | Asttypes.Nolabel -> (
                  match cases with
                  | [ { c_lhs = { pat_desc = Tpat_var (id, _); _ }; _ } ] ->
                      Some (Ident.name id)
                  | [ { c_lhs = { pat_desc = Tpat_alias (_, id, _); _ }; _ } ]
                    ->
                      Some (Ident.name id)
                  | _ -> None)
            in
            let argv =
              match pname with
              | Some nm when List.mem_assoc nm args -> List.assoc nm args
              | _ -> (
                  match arg_label with
                  | Asttypes.Optional _ -> vnone
                  | _ -> VUnknown)
            in
            let value_cases =
              List.map
                (fun (c : Typedtree.value Typedtree.case) ->
                  (c.c_lhs, c.c_guard, c.c_rhs))
                cases
            in
            go (eval_cases st cl.cl_env argv value_cases)
        | _ -> eval st cl.cl_env cl.cl_body)
    | other -> other
  in
  go (VClosure { cl_env = []; cl_globals = st.globals; cl_body = expr })

(* ------------------------------------------------------------------ *)
(* Extraction loci.                                                    *)

(* Where a threshold's default definition lives: a top-level function
   of a protocol module, evaluated with the given arguments, and then
   either the whole result, a field of the resulting record, or a
   let-binding recorded along the way. *)
type target = Whole | Field of string | Binding of string

type locus = {
  lc_module : string;
  lc_fun : string;
  lc_args : (string * value) list;
  lc_target : target;
}

let sym_n = VSym Symexpr.n_
let sym_t = VSym Symexpr.t_

(* Per-module table of top-level bindings (the evaluator's beta
   environment), built once per analysis. *)
let module_globals units =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let globals = Hashtbl.create 32 in
      List.iter
        (fun (item : Typedtree.structure_item) ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (id, _) ->
                      Hashtbl.replace globals (Ident.name id) vb.vb_expr
                  | _ -> ())
                vbs
          | _ -> ())
        u.structure.str_items;
      Hashtbl.replace table u.modname globals)
    units;
  table

let fresh_st ~region ~mods globals =
  { fuel = ref 50_000; region; globals; mods; bindings = Hashtbl.create 32 }

let run_locus ~region mods locus =
  match Hashtbl.find_opt mods locus.lc_module with
  | None -> Error (Printf.sprintf "module %s not loaded" locus.lc_module)
  | Some globals -> (
      match Hashtbl.find_opt globals locus.lc_fun with
      | None ->
          Error
            (Printf.sprintf "no binding %s.%s" locus.lc_module locus.lc_fun)
      | Some expr -> (
          let st = fresh_st ~region ~mods globals in
          match saturate st expr ~args:locus.lc_args with
          | v -> (
              let resolve = function
                | VSym s -> Ok s
                | _ ->
                    Error
                      (Printf.sprintf
                         "%s.%s did not reduce to an affine threshold"
                         locus.lc_module locus.lc_fun)
              in
              match locus.lc_target with
              | Whole -> resolve v
              | Field f -> (
                  match v with
                  | VRecord fs -> (
                      match List.assoc_opt f fs with
                      | Some fv -> resolve fv
                      | None ->
                          Error
                            (Printf.sprintf "%s.%s has no field %s"
                               locus.lc_module locus.lc_fun f))
                  | _ ->
                      Error
                        (Printf.sprintf "%s.%s did not reduce to a record"
                           locus.lc_module locus.lc_fun))
              | Binding b -> (
                  match Hashtbl.find_opt st.bindings b with
                  | Some bv -> resolve bv
                  | None ->
                      Error
                        (Printf.sprintf "no binding %s inside %s.%s" b
                           locus.lc_module locus.lc_fun)))
          | exception Raises ->
              Error
                (Printf.sprintf "%s.%s raises under the declared region"
                   locus.lc_module locus.lc_fun)))

(* ------------------------------------------------------------------ *)
(* Family specifications.                                              *)

type obligation = {
  o_rule : Rules.t;  (* R16 here; R18 re-checks over the registry region *)
  o_label : string;  (* human name, e.g. "quorum intersection" *)
  o_goal : Symexpr.t;  (* must be >= 0 over the region *)
}

type decide_spec = {
  d_module : string;
  d_fun : string;  (* the function whose Some-construction decides *)
  d_gates : string list;  (* identifiers that count as quorum gates *)
}

type family = {
  f_key : string;  (* registry name of the sound instance *)
  f_module : string;  (* module whose [protocol] constructs instances *)
  f_requires : string list;  (* modules the extraction loci need *)
  f_region_of : (string, (string, Typedtree.expression) Hashtbl.t) Hashtbl.t ->
                (Symexpr.t list, string) result;
  f_thresholds : (string * string option * locus) list;
      (* key, construction-site hook label, default locus *)
  f_obligations : (string * Symexpr.t) list -> obligation list;
  f_fault_decides : string list;  (* keys R17's arithmetic mode checks *)
  f_decides : decide_spec list;  (* R17's structural loci *)
  f_like : string option;  (* registry helper carrying the R18 claim *)
}

let ambient = [ Symexpr.t_; Symexpr.ge Symexpr.n_ (Symexpr.int_ 1) ]

let region_to_string region =
  String.concat " && "
    (List.filter_map
       (fun c ->
         (* Skip the ambient t >= 0, n >= 1 noise in messages. *)
         if c = List.nth ambient 0 || c = List.nth ambient 1 then None
         else Some (Symexpr.to_string c ^ " >= 0"))
       region)

(* The declared resilience region, read off the protocol's own
   [props.byzantine_resilience] field (the bound the registry and the
   docs advertise), with the ambient t >= 0, n >= 1. *)
let region_from_props modname mods =
  match Hashtbl.find_opt mods modname with
  | None -> Error (Printf.sprintf "module %s not loaded" modname)
  | Some globals -> (
      match Hashtbl.find_opt globals "protocol" with
      | None -> Error (Printf.sprintf "no %s.protocol" modname)
      | Some expr -> (
          let st = fresh_st ~region:ambient ~mods globals in
          match saturate st expr ~args:[] with
          | VRecord fs -> (
              match List.assoc_opt "props" fs with
              | Some (VRecord props) -> (
                  match List.assoc_opt "byzantine_resilience" props with
                  | Some (VClosure _ as cl) -> (
                      match
                        (match cl with
                        | VClosure c -> apply st c [ sym_n ]
                        | _ -> VUnknown)
                      with
                      | VSym bound ->
                          Ok (Symexpr.ge bound Symexpr.t_ :: ambient)
                      | _ ->
                          Error
                            (Printf.sprintf
                               "%s.protocol byzantine_resilience is not affine"
                               modname))
                  | _ ->
                      Error
                        (Printf.sprintf
                           "%s.protocol has no byzantine_resilience" modname))
              | _ -> Error (Printf.sprintf "%s.protocol has no props" modname))
          | _ ->
              Error
                (Printf.sprintf "%s.protocol did not reduce to a record"
                   modname)
          | exception Raises ->
              Error (Printf.sprintf "%s.protocol raises" modname)))

(* Lewko's protocol declares byzantine_resilience = 0 (the paper's
   adversary silences and resets, it does not corrupt); its resilience
   region is the Theorem 4 regime, read off
   [Thresholds.max_fault_bound]. *)
let region_from_max_fault_bound mods =
  let locus =
    {
      lc_module = "Thresholds";
      lc_fun = "max_fault_bound";
      lc_args = [ ("n", sym_n) ];
      lc_target = Whole;
    }
  in
  match run_locus ~region:ambient mods locus with
  | Ok bound -> Ok (Symexpr.ge bound Symexpr.t_ :: ambient)
  | Error _ as e -> e

let t1 = Symexpr.add Symexpr.t_ (Symexpr.int_ 1)
let need key thresholds f =
  match List.assoc_opt key thresholds with Some e -> f e | None -> []

let rbc_obligations prefix thresholds =
  let intersect_key = prefix ^ "echo_quorum" in
  need intersect_key thresholds (fun echo ->
      [
        {
          o_rule = Rules.R16;
          o_label = "echo-quorum intersection above the fault bound";
          o_goal =
            Symexpr.ge
              (Symexpr.sub (Symexpr.scale 2 echo) Symexpr.n_)
              t1;
        };
        {
          o_rule = Rules.R16;
          o_label = "echo quorum reachable by the honest set";
          o_goal = Symexpr.ge (Symexpr.sub Symexpr.n_ Symexpr.t_) echo;
        };
      ])
  @ need (prefix ^ "ready_resend") thresholds (fun ready ->
        [
          {
            o_rule = Rules.R16;
            o_label = "ready amplification out of the adversary's reach";
            o_goal = Symexpr.ge ready t1;
          };
        ])
  @ need (prefix ^ "accept_quorum") thresholds (fun accept ->
        [
          {
            o_rule = Rules.R16;
            o_label = "accept quorum above 2t";
            o_goal =
              Symexpr.ge accept
                (Symexpr.add (Symexpr.scale 2 Symexpr.t_) (Symexpr.int_ 1));
          };
          {
            o_rule = Rules.R16;
            o_label = "accept quorum reachable by the honest set";
            o_goal = Symexpr.ge (Symexpr.sub Symexpr.n_ Symexpr.t_) accept;
          };
        ])

let families : family list =
  let rbc_locus field =
    {
      lc_module = "Reliable_broadcast";
      lc_fun = "create";
      lc_args = [ ("n", sym_n); ("t", sym_t) ];
      lc_target = Field field;
    }
  in
  [
    {
      f_key = "ben-or";
      f_module = "Ben_or";
      f_requires = [ "Ben_or" ];
      f_region_of = region_from_props "Ben_or";
      f_thresholds =
        [
          ( "decide_at",
            Some "decide_quorum",
            {
              lc_module = "Ben_or";
              lc_fun = "fresh";
              lc_args = [ ("n", sym_n); ("t", sym_t) ];
              lc_target = Field "decide_at";
            } );
          ( "wait_quorum",
            None,
            {
              lc_module = "Ben_or";
              lc_fun = "wait_quorum";
              lc_args = [];
              lc_target = Whole;
            } );
        ];
      f_obligations =
        (fun thresholds ->
          need "decide_at" thresholds (fun decide ->
              [
                {
                  o_rule = Rules.R16;
                  o_label = "decide quorum above the fault bound";
                  o_goal = Symexpr.ge decide t1;
                };
              ])
          @ need "wait_quorum" thresholds (fun wait ->
                [
                  {
                    o_rule = Rules.R16;
                    o_label = "wait-quorum intersection above the fault bound";
                    o_goal =
                      Symexpr.ge
                        (Symexpr.sub (Symexpr.scale 2 wait) Symexpr.n_)
                        t1;
                  };
                  {
                    o_rule = Rules.R16;
                    o_label = "wait quorum reachable by the honest set";
                    o_goal =
                      Symexpr.ge (Symexpr.sub Symexpr.n_ Symexpr.t_) wait;
                  };
                ]));
      f_fault_decides = [ "decide_at" ];
      f_decides =
        [
          {
            d_module = "Ben_or";
            d_fun = "finish_propose_phase";
            d_gates = [ "decide_at" ];
          };
        ];
      f_like = Some "ben_or_like";
    };
    {
      f_key = "bracha";
      f_module = "Bracha";
      f_requires = [ "Bracha"; "Reliable_broadcast" ];
      f_region_of = region_from_props "Bracha";
      f_thresholds =
        [
          ( "decide_at",
            Some "decide_quorum",
            {
              lc_module = "Bracha";
              lc_fun = "init_with";
              lc_args = [ ("n", sym_n); ("t", sym_t) ];
              lc_target = Field "decide_at";
            } );
          ( "adopt_at",
            None,
            {
              lc_module = "Bracha";
              lc_fun = "finish_phase";
              lc_args = [];
              lc_target = Binding "adopt_at";
            } );
          ( "quorum",
            None,
            {
              lc_module = "Bracha";
              lc_fun = "quorum";
              lc_args = [];
              lc_target = Whole;
            } );
          ("rbc_echo_quorum", Some "rbc_echo_quorum", rbc_locus "echo_quorum");
          ( "rbc_ready_resend",
            Some "rbc_ready_resend",
            rbc_locus "ready_resend" );
          ( "rbc_accept_quorum",
            Some "rbc_accept_quorum",
            rbc_locus "accept_quorum" );
        ];
      f_obligations =
        (fun thresholds ->
          need "decide_at" thresholds (fun decide ->
              [
                {
                  o_rule = Rules.R16;
                  o_label = "decide quorum above 2t";
                  o_goal =
                    Symexpr.ge decide
                      (Symexpr.add (Symexpr.scale 2 Symexpr.t_)
                         (Symexpr.int_ 1));
                };
                {
                  o_rule = Rules.R16;
                  o_label = "decide quorum reachable by the honest set";
                  o_goal =
                    Symexpr.ge (Symexpr.sub Symexpr.n_ Symexpr.t_) decide;
                };
              ])
          @ need "adopt_at" thresholds (fun adopt ->
                [
                  {
                    o_rule = Rules.R16;
                    o_label = "adopt threshold above the fault bound";
                    o_goal = Symexpr.ge adopt t1;
                  };
                ])
          @ need "quorum" thresholds (fun wait ->
                [
                  {
                    o_rule = Rules.R16;
                    o_label = "phase-quorum intersection above the fault bound";
                    o_goal =
                      Symexpr.ge
                        (Symexpr.sub (Symexpr.scale 2 wait) Symexpr.n_)
                        t1;
                  };
                ])
          @ rbc_obligations "rbc_" thresholds);
      f_fault_decides = [ "decide_at"; "rbc_accept_quorum" ];
      f_decides =
        [
          {
            d_module = "Bracha";
            d_fun = "finish_phase";
            d_gates = [ "decide_at" ];
          };
          {
            d_module = "Reliable_broadcast";
            d_fun = "evaluate";
            d_gates = [ "accept_quorum" ];
          };
        ];
      f_like = Some "bracha_like";
    };
    {
      f_key = "rbc";
      f_module = "Rbc_once";
      f_requires = [ "Rbc_once"; "Reliable_broadcast" ];
      f_region_of = region_from_props "Rbc_once";
      f_thresholds =
        [
          ("rbc_echo_quorum", Some "rbc_echo_quorum", rbc_locus "echo_quorum");
          ( "rbc_ready_resend",
            Some "rbc_ready_resend",
            rbc_locus "ready_resend" );
          ( "rbc_accept_quorum",
            Some "rbc_accept_quorum",
            rbc_locus "accept_quorum" );
        ];
      f_obligations = rbc_obligations "rbc_";
      f_fault_decides = [ "rbc_accept_quorum" ];
      f_decides =
        [
          {
            d_module = "Reliable_broadcast";
            d_fun = "evaluate";
            d_gates = [ "accept_quorum" ];
          };
        ];
      f_like = Some "rbc_like";
    };
    {
      f_key = "lewko";
      f_module = "Lewko_variant";
      f_requires = [ "Lewko_variant"; "Thresholds" ];
      f_region_of = region_from_max_fault_bound;
      f_thresholds =
        [
          ( "t1",
            None,
            {
              lc_module = "Thresholds";
              lc_fun = "default";
              lc_args = [ ("n", sym_n); ("t", sym_t) ];
              lc_target = Field "t1";
            } );
          ( "t2",
            None,
            {
              lc_module = "Thresholds";
              lc_fun = "default";
              lc_args = [ ("n", sym_n); ("t", sym_t) ];
              lc_target = Field "t2";
            } );
          ( "t3",
            None,
            {
              lc_module = "Thresholds";
              lc_fun = "default";
              lc_args = [ ("n", sym_n); ("t", sym_t) ];
              lc_target = Field "t3";
            } );
        ];
      f_obligations =
        (fun thresholds ->
          match
            ( List.assoc_opt "t1" thresholds,
              List.assoc_opt "t2" thresholds,
              List.assoc_opt "t3" thresholds )
          with
          | Some e1, Some e2, Some e3 ->
              [
                {
                  o_rule = Rules.R16;
                  o_label = "T1 collectable: n - 2t >= T1";
                  o_goal =
                    Symexpr.ge
                      (Symexpr.sub Symexpr.n_ (Symexpr.scale 2 Symexpr.t_))
                      e1;
                };
                {
                  o_rule = Rules.R16;
                  o_label = "T1 >= T2";
                  o_goal = Symexpr.ge e1 e2;
                };
                {
                  o_rule = Rules.R16;
                  o_label = "T2 >= T3 + t";
                  o_goal = Symexpr.ge e2 (Symexpr.add e3 Symexpr.t_);
                };
                {
                  o_rule = Rules.R16;
                  o_label = "2*T3 > n (adoption quorums intersect)";
                  o_goal = Symexpr.gt (Symexpr.scale 2 e3) Symexpr.n_;
                };
                {
                  o_rule = Rules.R16;
                  o_label = "2*T3 > T1";
                  o_goal = Symexpr.gt (Symexpr.scale 2 e3) e1;
                };
                {
                  o_rule = Rules.R16;
                  o_label = "T3 positive";
                  o_goal = Symexpr.ge e3 (Symexpr.int_ 1);
                };
                {
                  o_rule = Rules.R16;
                  o_label = "T1 reachable by the honest set";
                  o_goal = Symexpr.ge (Symexpr.sub Symexpr.n_ Symexpr.t_) e1;
                };
                {
                  o_rule = Rules.R16;
                  o_label = "decision threshold above the fault bound";
                  o_goal = Symexpr.ge e2 t1;
                };
              ]
          | _ -> []);
      f_fault_decides = [ "t2" ];
      f_decides =
        [
          {
            d_module = "Lewko_variant";
            d_fun = "process_round";
            d_gates = [ "t2" ];
          };
        ];
      f_like = None;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Construction sites.                                                 *)

type hook_state =
  | Hooked of Symexpr.t
  | Hooked_record of (string * Symexpr.t) list
  | Vetted
      (* instance-specific value produced by a validating smart
         constructor (Thresholds.default/relaxed raise on infeasible
         triples), so feasibility is enforced at construction time *)
  | Opaque of string
  | Defaulted

type site = {
  s_name : string;  (* protocol instance name, e.g. "ben-or!quorum-1" *)
  s_loc : Location.t;
  s_path : string;
  s_hooks : (string * hook_state) list;
}

let find_fn units modname name =
  List.find_map
    (fun (u : Cmt_loader.unit_info) ->
      if not (String.equal u.modname modname) then None
      else
        List.find_map
          (fun (item : Typedtree.structure_item) ->
            match item.str_desc with
            | Tstr_value (_, vbs) ->
                List.find_map
                  (fun (vb : Typedtree.value_binding) ->
                    match vb.vb_pat.pat_desc with
                    | Tpat_var (id, _) when String.equal (Ident.name id) name
                      ->
                        Some (vb.vb_expr, vb.vb_loc, u.path)
                    | _ -> None)
                  vbs
            | _ -> None)
          u.structure.str_items)
    units

(* Reduce one hook argument ([?decide_quorum:(fun ~n ~t -> ...)],
   elaborated by the typechecker to [Some (fun ...)]) to its symbolic
   threshold. *)
let validating_constructor (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match List.rev (Callgraph.path_components p) with
      | ("default" | "relaxed") :: "Thresholds" :: _ -> true
      | _ -> false)
  | _ -> false

let hook_value st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_construct (_, c, []) when c.Types.cstr_name = "None" -> Defaulted
  | Texp_construct (_, c, [ lam ]) when c.Types.cstr_name = "Some" -> (
      if validating_constructor lam then Vetted
      else
        match
        saturate st lam
          ~args:[ ("n", VSym Symexpr.n_); ("t", VSym Symexpr.t_) ]
      with
      | VSym s -> Hooked s
      | VRecord fs ->
          let syms =
            List.filter_map
              (fun (k, v) -> match v with VSym s -> Some (k, s) | _ -> None)
              fs
          in
          if syms = [] then Opaque "hook reduces to an opaque record"
          else Hooked_record syms
      | _ -> Opaque "hook does not reduce to affine form"
      | exception Raises -> Opaque "hook raises")
  | _ -> Opaque "hook is not a literal option"

let scan_sites mods units =
  let sites = ref [] in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let globals =
        Option.value ~default:(Hashtbl.create 1)
          (Hashtbl.find_opt mods u.modname)
      in
      let expr self (e : Typedtree.expression) =
        (match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            let family =
              match List.rev (Callgraph.path_components p) with
              | [ "protocol" ] ->
                  List.find_opt
                    (fun f -> String.equal f.f_module u.modname)
                    families
              | "protocol" :: m :: _ ->
                  List.find_opt (fun f -> String.equal f.f_module m) families
              | _ -> None
            in
            match family with
            | None -> ()
            | Some f ->
                let st = fresh_st ~region:ambient ~mods globals in
                let name = ref f.f_key in
                let hooks = ref [] in
                List.iter
                  (fun ((lbl : Asttypes.arg_label), arg) ->
                    match (lbl, arg) with
                    | Asttypes.Optional "name", Some a -> (
                        match (eval st [] a : value) with
                        | VConstruct ("Some", [ VString s ]) -> name := s
                        | _ -> ())
                    | Asttypes.Optional l, Some a
                      when List.exists
                             (fun (_, hook, _) -> hook = Some l)
                             f.f_thresholds
                           || String.equal l "thresholds" ->
                        hooks := (l, hook_value st a) :: !hooks
                    | _ -> ())
                  args;
                sites :=
                  ( f.f_key,
                    {
                      s_name = !name;
                      s_loc = e.exp_loc;
                      s_path = u.path;
                      s_hooks = List.rev !hooks;
                    } )
                  :: !sites)
        | _ -> ());
        Tast_iterator.default_iterator.expr self e
      in
      let iterator = { Tast_iterator.default_iterator with expr } in
      iterator.structure iterator u.structure)
    units;
  List.rev !sites

(* ------------------------------------------------------------------ *)
(* R17, structural mode: every decide function must construct its
   [Some _] under a >=/> comparison that mentions the quorum gate.     *)

let mentions_gate gates (e : Typedtree.expression) =
  let found = ref false in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) when List.mem (Ident.name id) gates ->
        found := true
    | Texp_field (_, _, lbl) when List.mem lbl.Types.lbl_name gates ->
        found := true
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let iterator = { Tast_iterator.default_iterator with expr } in
  iterator.expr iterator e;
  !found

let gate_comparison gates (cond : Typedtree.expression) =
  let found = ref false in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        let name = Callgraph.stdlib_name p in
        if
          (String.equal name ">=" || String.equal name ">")
          && List.exists
               (fun (_, a) ->
                 match a with Some a -> mentions_gate gates a | None -> false)
               args
        then found := true
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let iterator = { Tast_iterator.default_iterator with expr } in
  iterator.expr iterator cond;
  !found

let structural_gated ~gates (body : Typedtree.expression) =
  let has_some = ref false in
  let gated_some = ref false in
  let gated = ref false in
  let expr self (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ifthenelse (c, then_, else_) ->
        let saved = !gated in
        self.Tast_iterator.expr self c;
        if gate_comparison gates c then gated := true;
        self.Tast_iterator.expr self then_;
        Option.iter (self.Tast_iterator.expr self) else_;
        gated := saved
    | Texp_construct (_, cstr, _) when cstr.Types.cstr_name = "Some" ->
        has_some := true;
        if !gated then gated_some := true;
        Tast_iterator.default_iterator.expr self e
    | _ -> Tast_iterator.default_iterator.expr self e
  in
  let iterator = { Tast_iterator.default_iterator with expr } in
  iterator.expr iterator body;
  (!has_some, !gated_some)

(* ------------------------------------------------------------------ *)
(* R18: the registry's resilience claim.  The mcheck registry helpers
   ([ben_or_like], ...) declare each protocol's tolerated Byzantine
   bound through [resilience_notes ~byz:(fun n -> ...)]; the claim
   region is where that bound admits the fault count. *)

let registry_region mods units family =
  match family.f_like with
  | None -> None
  | Some helper -> (
      let found =
        List.find_map
          (fun (u : Cmt_loader.unit_info) ->
          match find_fn units u.modname helper with
          | Some (expr, _, _) -> Some (u.modname, expr)
          | None -> None)
          units
      in
      match found with
      | None -> None
      | Some (modname, helper_expr) ->
          let globals =
            Option.value ~default:(Hashtbl.create 1)
              (Hashtbl.find_opt mods modname)
          in
          let byz = ref None in
          let expr self (e : Typedtree.expression) =
            (match e.exp_desc with
            | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
              when (match List.rev (Callgraph.path_components p) with
                   | "resilience_notes" :: _ -> true
                   | _ -> false) ->
                List.iter
                  (fun ((lbl : Asttypes.arg_label), arg) ->
                    match (lbl, arg) with
                    | Asttypes.Labelled "byz", Some lam -> (
                        let st = fresh_st ~region:ambient ~mods globals in
                        match
                          saturate st lam ~args:[ ("n", VSym Symexpr.n_) ]
                        with
                        | VSym bound -> byz := Some bound
                        | _ | (exception Raises) -> ())
                    | _ -> ())
                  args
            | _ -> ());
            Tast_iterator.default_iterator.expr self e
          in
          let iterator = { Tast_iterator.default_iterator with expr } in
          iterator.expr iterator helper_expr;
          Option.map
            (fun bound -> Symexpr.ge bound Symexpr.t_ :: ambient)
            !byz)

(* ------------------------------------------------------------------ *)
(* Obligation discharge.                                               *)

let resolve_threshold site defaults (key, hook_label, _locus) =
  let default () =
    match List.assoc_opt key defaults with
    | Some (Ok s) -> `Sym s
    | Some (Error why) -> `Err why
    | None -> `Err (Printf.sprintf "no default locus for %s" key)
  in
  let from_record l =
    match List.assoc_opt l site.s_hooks with
    | Some (Hooked_record fs) -> (
        match List.assoc_opt key fs with
        | Some s -> (
            (* A record of bare constants is an instance-specific
               triple (built for one concrete n, t the analyzer cannot
               see); region-wide obligations do not apply to it, and
               the validating constructor already checked it. *)
            match Symexpr.as_affine s with
            | Some (0, 0, _) -> `Skip
            | _ -> `Sym s)
        | None -> `Opaque (Printf.sprintf "%s record lacks field %s" l key))
    | Some Vetted -> `Skip
    | Some (Opaque why) -> `Opaque why
    | Some (Hooked _) -> `Opaque (Printf.sprintf "%s hook is not a record" l)
    | Some Defaulted | None -> default ()
  in
  match hook_label with
  | Some l -> (
      match List.assoc_opt l site.s_hooks with
      | Some (Hooked s) -> `Sym s
      | Some Vetted -> `Skip
      | Some (Opaque why) -> `Opaque why
      | Some (Hooked_record _) ->
          `Opaque (Printf.sprintf "%s hook is record-valued" l)
      | Some Defaulted | None -> default ())
  | None -> from_record "thresholds"

let discharge ~region obligations ~on_fail ~on_unknown =
  List.iter
    (fun o ->
      match Symexpr.implies ~region o.o_goal with
      | Symexpr.Holds -> ()
      | Symexpr.Fails { n; t } -> on_fail o n t
      | Symexpr.Unknown why -> on_unknown o why
      | exception Symexpr.Undecidable why -> on_unknown o why)
    obligations

(* A decide threshold the fault set can satisfy alone: a point of the
   region with t >= 1 and threshold <= t. *)
let fault_witness ~region threshold =
  match
    Symexpr.solve
      (Symexpr.ge Symexpr.t_ (Symexpr.int_ 1)
      :: Symexpr.ge Symexpr.t_ threshold
      :: region)
  with
  | Some (n, t) -> Some (n, t)
  | None -> None
  | exception Symexpr.Undecidable _ -> None

let analyze_family ~report mods units sites family =
  if List.for_all (fun m -> Hashtbl.mem mods m) family.f_requires then
    let fallback =
      match find_fn units family.f_module "protocol" with
      | Some (_, loc, path) -> Some (loc, path)
      | None -> None
    in
    match family.f_region_of mods with
    | Error why -> (
        match fallback with
        | Some (loc, path) ->
            report ~path ~loc Rules.R16
              (Printf.sprintf
                 "%s: could not establish the resilience region (%s)"
                 family.f_key why)
        | None -> ())
    | Ok region ->
        let defaults =
          List.map
            (fun (key, _, locus) -> (key, run_locus ~region mods locus))
            family.f_thresholds
        in
        let family_sites =
          match
            List.filter_map
              (fun (k, s) ->
                if String.equal k family.f_key then Some s else None)
              sites
          with
          | [] -> (
              (* No construction site in the tree: still prove the
                 defaults, anchored at the protocol definition. *)
              match fallback with
              | Some (loc, path) ->
                  [
                    {
                      s_name = family.f_key;
                      s_loc = loc;
                      s_path = path;
                      s_hooks = [];
                    };
                  ]
              | None -> [])
          | ss -> ss
        in
        let reg_region = registry_region mods units family in
        List.iter
          (fun site ->
            let report_site rule msg =
              report ~path:site.s_path ~loc:site.s_loc rule msg
            in
            let thresholds =
              List.filter_map
                (fun ((key, _, _) as spec) ->
                  match resolve_threshold site defaults spec with
                  | `Sym s -> Some (key, s)
                  | `Skip -> None
                  | `Err why ->
                      report_site Rules.R16
                        (Printf.sprintf
                           "%s: threshold %s could not be extracted (%s)"
                           site.s_name key why);
                      None
                  | `Opaque why ->
                      report_site Rules.R16
                        (Printf.sprintf
                           "%s: threshold %s at this construction site is \
                            not analyzable (%s)"
                           site.s_name key why);
                      None)
                family.f_thresholds
            in
            let obligations = family.f_obligations thresholds in
            discharge ~region obligations
              ~on_fail:(fun o n t ->
                report_site o.o_rule
                  (Printf.sprintf
                     "%s: obligation \"%s\" fails at n=%d, t=%d inside the \
                      declared region [%s]"
                     site.s_name o.o_label n t (region_to_string region)))
              ~on_unknown:(fun o why ->
                report_site o.o_rule
                  (Printf.sprintf "%s: obligation \"%s\" is undecidable (%s)"
                     site.s_name o.o_label why));
            List.iter
              (fun key ->
                match List.assoc_opt key thresholds with
                | None -> ()
                | Some threshold -> (
                    match fault_witness ~region threshold with
                    | None -> ()
                    | Some (n, t) ->
                        report_site Rules.R17
                          (Printf.sprintf
                             "%s: decide threshold %s = %s can be met by \
                              the fault set alone (e.g. n=%d, t=%d)"
                             site.s_name key
                             (Symexpr.to_string threshold)
                             n t)))
              family.f_fault_decides;
            match reg_region with
            | None -> ()
            | Some rr ->
                discharge ~region:rr obligations
                  ~on_fail:(fun o n t ->
                    report_site Rules.R18
                      (Printf.sprintf
                         "%s: the registry resilience claim [%s] admits \
                          n=%d, t=%d where obligation \"%s\" fails"
                         site.s_name (region_to_string rr) n t o.o_label))
                  ~on_unknown:(fun o why ->
                    report_site Rules.R18
                      (Printf.sprintf
                         "%s: obligation \"%s\" is undecidable over the \
                          registry resilience claim (%s)"
                         site.s_name o.o_label why));
                List.iter
                  (fun key ->
                    match List.assoc_opt key thresholds with
                    | None -> ()
                    | Some threshold -> (
                        match fault_witness ~region:rr threshold with
                        | None -> ()
                        | Some (n, t) ->
                            report_site Rules.R18
                              (Printf.sprintf
                                 "%s: the registry resilience claim [%s] \
                                  admits n=%d, t=%d where decide threshold \
                                  %s is met by the fault set alone"
                                 site.s_name (region_to_string rr) n t key)))
                  family.f_fault_decides)
          family_sites;
        List.iter
          (fun d ->
            match find_fn units d.d_module d.d_fun with
            | None -> ()
            | Some (expr, loc, path) ->
                let has_some, gated_some =
                  structural_gated ~gates:d.d_gates expr
                in
                if has_some && not gated_some then
                  report ~path ~loc Rules.R17
                    (Printf.sprintf
                       "%s.%s decides (constructs Some _) without a \
                        dominating >= comparison against its quorum gate \
                        (%s)"
                       d.d_module d.d_fun
                       (String.concat ", " d.d_gates)))
          family.f_decides

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

type config = { cost : Cost_lint.config }

let default_config = { cost = Cost_lint.default_config }

let analyze_units ?(config = default_config) units =
  let mods = module_globals units in
  let sites = scan_sites mods units in
  let suppressions = Hashtbl.create 16 in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      match u.source with
      | Some src ->
          Hashtbl.replace suppressions u.path
            (Static_lint.suppressions_of_source src)
      | None -> ())
    units;
  let out = ref [] in
  let report ~path ~loc rule message =
    if Rules.applies rule (Rules.scope_of_path path) then begin
      let start = loc.Location.loc_start in
      let line = start.Lexing.pos_lnum in
      let col = start.Lexing.pos_cnum - start.Lexing.pos_bol in
      let silenced =
        match Hashtbl.find_opt suppressions path with
        | Some table -> Static_lint.suppressed table ~line rule
        | None -> false
      in
      if not silenced then
        out := { Static_lint.path; line; col; rule; message } :: !out
    end
  in
  List.iter (analyze_family ~report mods units sites) families;
  let r15 = Cost_lint.recursion_findings ~config:config.cost units in
  List.sort_uniq Static_lint.compare_diagnostic (r15 @ !out)

let analyze ?config (load : Cmt_loader.load) =
  analyze_units ?config load.units

let modname_of_path path =
  Filename.basename path |> Filename.remove_extension |> String.capitalize_ascii

let check_source ?config ~path source =
  match Typed_lint.typecheck_source ~path source with
  | Error e -> Error e
  | Ok structure ->
      Ok
        (analyze_units ?config
           [
             {
               Cmt_loader.modname = modname_of_path path;
               path;
               structure;
               source = Some source;
             };
           ])

(* ------------------------------------------------------------------ *)
(* Test-facing view of what the evaluator extracted.                   *)

type extraction = {
  e_family : string;
  e_region : Symexpr.t list;
  e_defaults : (string * (Symexpr.t, string) result) list;
}

let extractions units =
  let mods = module_globals units in
  List.filter_map
    (fun f ->
      if not (List.for_all (fun m -> Hashtbl.mem mods m) f.f_requires) then
        None
      else
        match f.f_region_of mods with
        | Error _ -> None
        | Ok region ->
            Some
              {
                e_family = f.f_key;
                e_region = region;
                e_defaults =
                  List.map
                    (fun (key, _, locus) ->
                      (key, run_locus ~region mods locus))
                    f.f_thresholds;
              })
    families

