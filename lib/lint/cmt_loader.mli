(** Typed-tree loading for the cmt-based lint layer.

    Dune compiles every module with [-bin-annot] (its default), leaving
    a [*.cmt] — the full typed tree — next to each object file under
    [_build/default/<dir>/.<lib>.objs/byte/].  This module locates and
    unmarshals them, normalizes dune's [Lib__Module] name mangling and
    build-tree paths back to root-relative source paths, and pairs each
    typed tree with its source text so the shared
    [(* lint: allow Rn *)] suppressions keep working in the typed
    layer.

    The build-before-lint contract: cmts only exist after [dune build],
    so the typed linter reports a load error (exit code 2 in the CLI)
    on an unbuilt tree rather than silently passing. *)

type unit_info = {
  modname : string;  (** normalized, e.g. ["Engine"] for [Dsim__Engine] *)
  path : string;  (** root-relative source path, e.g. ["lib/dsim/engine.ml"] *)
  structure : Typedtree.structure;
  source : string option;  (** source text when found (for suppressions) *)
}

type load = {
  units : unit_info list;  (** sorted by [path] *)
  load_errors : string list;
}

val normalize_modname : string -> string
(** ["Dsim__Engine"] -> ["Engine"]; names without dune's ["__"] mangle
    are returned unchanged. *)

val normalize_source_path : string -> string option
(** Keep the path from the first recognized top-level directory
    ([lib], [bin], ...); [None] when none occurs. *)

val find_cmt_files : ?dirs:string list -> root:string -> unit -> string list
(** All [*.cmt] files under [root/_build/default/<dir>] (preferred when
    present) or [root/<dir>], for each of [dirs] (default [["lib"]]). *)

val load : ?dirs:string list -> root:string -> unit -> load
(** Read every located cmt that holds an implementation.  Interfaces
    and packed units are skipped; unreadable files become entries in
    [load_errors]. *)
