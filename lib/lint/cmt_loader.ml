type unit_info = {
  modname : string;
  path : string;
  structure : Typedtree.structure;
  source : string option;
}

type load = {
  units : unit_info list;
  load_errors : string list;
}

(* "Dsim__Engine" -> "Engine"; dune's module mangling for wrapped
   libraries puts the library name before a double underscore. *)
let normalize_modname name =
  match Static_lint.find_substring name "__" 0 with
  | None -> name
  | Some _ ->
      let n = String.length name in
      let rec last_sep i best =
        if i + 2 > n then best
        else
          match Static_lint.find_substring name "__" i with
          | Some at -> last_sep (at + 2) (Some at)
          | None -> best
      in
      (match last_sep 0 None with
      | Some at when at + 2 < n -> String.sub name (at + 2) (n - at - 2)
      | _ -> name)

(* Root-relative source path: keep from the first recognized top-level
   directory, so "/builds/x/_build/default/lib/dsim/engine.ml" and
   "lib/dsim/engine.ml" normalize identically. *)
let normalize_source_path p =
  let parts =
    String.split_on_char '/' p |> List.filter (fun s -> s <> "" && s <> ".")
  in
  let rec from_top = function
    | [] -> None
    | ("lib" | "bin" | "bench" | "examples" | "test") :: _ as rest ->
        Some (String.concat "/" rest)
    | _ :: rest -> from_top rest
  in
  from_top parts

let is_cmt name =
  String.length name > 4 && String.sub name (String.length name - 4) 4 = ".cmt"

(* Collect every *.cmt below [dir] (the .objs directories dune hides
   under dot-names are exactly what we are after, so dotfiles are NOT
   skipped here, unlike the source walker). *)
let rec walk_cmts dir acc =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else begin
    let entries = Sys.readdir dir in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let full = Filename.concat dir entry in
        if Sys.is_directory full then walk_cmts full acc
        else if is_cmt entry then full :: acc
        else acc)
      acc entries
  end

let find_cmt_files ?(dirs = [ "lib" ]) ~root () =
  (* Prefer the dune build tree when we are invoked from the source
     root; when already inside _build/default the .objs dirs sit right
     next to the sources. *)
  let bases =
    let in_build = Filename.concat (Filename.concat root "_build") "default" in
    if Sys.file_exists in_build && Sys.is_directory in_build then [ in_build ]
    else [ root ]
  in
  List.concat_map
    (fun base ->
      List.concat_map
        (fun dir -> List.rev (walk_cmts (Filename.concat base dir) []))
        dirs)
    bases

let read_source ~root path =
  let candidates =
    [ Filename.concat root path;
      Filename.concat (Filename.concat (Filename.concat root "_build") "default") path ]
  in
  List.find_map
    (fun file ->
      if Sys.file_exists file then
        match In_channel.with_open_bin file In_channel.input_all with
        | source -> Some source
        | exception Sys_error _ -> None
      else None)
    candidates

let load_cmt ~root file =
  match Cmt_format.read_cmt file with
  | exception exn ->
      Error (Printf.sprintf "%s: unreadable cmt: %s" file (Printexc.to_string exn))
  | infos -> (
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure ->
          let path =
            match infos.Cmt_format.cmt_sourcefile with
            | Some src -> (
                match normalize_source_path src with
                | Some p -> p
                | None -> src)
            | None -> Filename.basename file
          in
          Ok
            (Some
               {
                 modname = normalize_modname infos.Cmt_format.cmt_modname;
                 path;
                 structure;
                 source = read_source ~root path;
               })
      | _ -> Ok None (* interfaces, packs: nothing to analyze *))

let load ?dirs ~root () =
  let files = find_cmt_files ?dirs ~root () in
  let units, errors =
    List.fold_left
      (fun (units, errors) file ->
        match load_cmt ~root file with
        | Ok (Some u) -> (u :: units, errors)
        | Ok None -> (units, errors)
        | Error e -> (units, e :: errors))
      ([], []) files
  in
  (* Dune's library wrapper modules (pure module aliases named after the
     library) carry no value bindings worth analyzing but would collide
     with submodule names; drop any unit whose normalized name collides
     with another unit coming from a dot-directory higher up.  Sorting
     by path keeps the result deterministic. *)
  let units =
    List.sort (fun a b -> String.compare a.path b.path) units
  in
  { units; load_errors = List.rev errors }
