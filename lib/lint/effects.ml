type kind =
  | Mutation of string
  | Io of string
  | Raise of string

type finding = { kind : kind; loc : Location.t; via : string list }

let kind_id = function
  | Mutation d -> "mutation: " ^ d
  | Io d -> "io: " ^ d
  | Raise d -> "raise: " ^ d

let pp_kind ppf k = Format.pp_print_string ppf (kind_id k)

let default_exempt_modules = [ "Stream"; "Splitmix" ]

(* ------------------------------------------------------------------ *)
(* Primitive tables.  Names are Stdlib-stripped ("Hashtbl.replace",
   ":=").  The mutator table carries the index of the argument being
   mutated, so mutation of function-local allocations can be excused. *)

let mutators =
  [
    (":=", 0); ("incr", 0); ("decr", 0);
    ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
    ("Array.blit", 2); ("Array.sort", 1); ("Array.fast_sort", 1);
    ("Array.stable_sort", 1);
    ("Bytes.set", 0); ("Bytes.unsafe_set", 0); ("Bytes.fill", 0);
    ("Bytes.blit", 2); ("Bytes.blit_string", 2);
    ("Hashtbl.add", 0); ("Hashtbl.replace", 0); ("Hashtbl.remove", 0);
    ("Hashtbl.clear", 0); ("Hashtbl.reset", 0);
    ("Hashtbl.filter_map_inplace", 1);
    ("Queue.add", 1); ("Queue.push", 1); ("Queue.pop", 0); ("Queue.take", 0);
    ("Queue.clear", 0); ("Queue.transfer", 0);
    ("Stack.push", 1); ("Stack.pop", 0); ("Stack.clear", 0);
    ("Buffer.add_char", 0); ("Buffer.add_string", 0); ("Buffer.add_bytes", 0);
    ("Buffer.add_buffer", 0); ("Buffer.clear", 0); ("Buffer.reset", 0);
    ("Buffer.truncate", 0);
  ]

let io_exact =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "read_line"; "read_int";
    "read_int_opt"; "flush"; "flush_all"; "exit"; "output_string";
    "output_char"; "output_byte"; "output_bytes"; "output_value";
    "open_in"; "open_in_bin"; "open_out"; "open_out_bin"; "close_in";
    "close_out"; "input_line"; "input_char"; "input_byte";
    "really_input_string"; "Printf.printf"; "Printf.eprintf";
    "Printf.fprintf"; "Format.printf"; "Format.eprintf"; "Format.fprintf";
    "Sys.command"; "Sys.remove"; "Sys.rename"; "Sys.getenv"; "Sys.time";
    "Sys.readdir"; "Unix.gettimeofday";
  ]

let io_prefixes = [ "In_channel."; "Out_channel."; "Unix."; "Format.print_"; "Random." ]

let raisers = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Expressions whose result is a fresh mutable value: a let-binding of
   one of these makes the bound name a local allocation, so mutating it
   is invisible to callers and not an effect. *)
let allocators =
  [
    "ref"; "Array.make"; "Array.create_float"; "Array.init"; "Array.copy";
    "Array.of_list"; "Array.append"; "Array.sub"; "Array.map"; "Array.mapi";
    "Array.make_matrix"; "Bytes.create"; "Bytes.make"; "Bytes.copy";
    "Bytes.of_string"; "Hashtbl.create"; "Queue.create"; "Stack.create";
    "Buffer.create";
  ]

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_io name =
  List.mem name io_exact || List.exists (fun p -> starts_with p name) io_prefixes

(* ------------------------------------------------------------------ *)
(* Intraprocedural scan.                                               *)

type scan = {
  own : finding list;
  callees : (Callgraph.fn * Location.t) list;
}

let base_ident (expr : Typedtree.expression) =
  let rec go (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> Some id
    | Texp_field (inner, _, _) -> go inner
    | _ -> None
  in
  go expr

let exception_name (arg : Typedtree.expression) =
  match arg.exp_desc with
  | Texp_construct (_, cstr, _) -> cstr.Types.cstr_name
  | _ -> "?"

let is_allocation locals (expr : Typedtree.expression) =
  match expr.exp_desc with
  | Texp_array _ | Texp_record _ -> true
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
      List.mem (Callgraph.stdlib_name p) allocators
  | Texp_ident (Path.Pident id, _, _) -> Hashtbl.mem locals (Ident.unique_name id)
  | _ -> false

let scan_function ?(exempt_modules = default_exempt_modules) graph
    ~current_module (body : Typedtree.expression) =
  let own = ref [] in
  let callees = ref [] in
  let locals = Hashtbl.create 16 in
  let consumed = Hashtbl.create 16 in
  let effect_ kind loc = own := { kind; loc; via = [] } :: !own in
  let local_target args index =
    match List.nth_opt args index with
    | Some (_, Some arg) -> (
        match base_ident arg with
        | Some id -> Hashtbl.mem locals (Ident.unique_name id)
        | None -> false)
    | _ -> false
  in
  let classify_name name ~loc ~args =
    match List.assoc_opt name mutators with
    | Some index ->
        if not (local_target args index) then
          effect_ (Mutation (name ^ " on non-local state")) loc
    | None ->
        if is_io name then effect_ (Io name) loc
        else if List.mem name raisers then begin
          let exn =
            match name with
            | "failwith" -> "Failure"
            | "invalid_arg" -> "Invalid_argument"
            | _ -> (
                match args with
                | (_, Some arg) :: _ -> exception_name arg
                | _ -> "?")
          in
          effect_ (Raise exn) loc
        end
  in
  (* Known functions become call-graph edges unless their module is
     exempt (the sanctioned stream draws); unknown externals are
     assumed pure, so only the primitive tables above create leaf
     effects. *)
  let note_path ~args path loc =
    match Callgraph.resolve graph ~current_module path with
    | Some fn ->
        if not (List.mem fn.Callgraph.modname exempt_modules) then
          callees := (fn, loc) :: !callees
    | None ->
        let components = Callgraph.path_components path in
        let stripped =
          match components with "Stdlib" :: (_ :: _ as r) -> r | c -> c
        in
        (match stripped with
        | m :: _ :: _ when List.mem m exempt_modules -> ()
        | _ -> classify_name (String.concat "." stripped) ~loc ~args)
  in
  let iterator =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self (expr : Typedtree.expression) ->
          (match expr.exp_desc with
          | Texp_let (_, vbs, _) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (id, _) when is_allocation locals vb.vb_expr ->
                      Hashtbl.replace locals (Ident.unique_name id) ()
                  | _ -> ())
                vbs
          | Texp_setfield (obj, _, label, _) -> (
              match base_ident obj with
              | Some id when Hashtbl.mem locals (Ident.unique_name id) -> ()
              | _ ->
                  effect_
                    (Mutation
                       (Printf.sprintf "field set `%s <-` on non-local state"
                          label.Types.lbl_name))
                    expr.exp_loc)
          | Texp_assert (_, _) -> effect_ (Raise "Assert_failure") expr.exp_loc
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_loc; _ }, args) ->
              (* The head ident is handled here with its argument list;
                 mark it so the generic ident case below skips it. *)
              Hashtbl.replace consumed exp_loc ();
              note_path ~args p exp_loc
          | Texp_ident (p, _, _) ->
              if not (Hashtbl.mem consumed expr.exp_loc) then
                note_path ~args:[] p expr.exp_loc
          | _ -> ());
          Tast_iterator.default_iterator.expr self expr);
    }
  in
  iterator.expr iterator body;
  { own = List.rev !own; callees = List.rev !callees }

(* ------------------------------------------------------------------ *)
(* Fixpoint over the call graph.                                       *)

let summaries ?(exempt_modules = default_exempt_modules) graph =
  let fns = Callgraph.fns graph in
  let scans =
    List.map
      (fun (fn : Callgraph.fn) ->
        ( fn.id,
          scan_function ~exempt_modules graph ~current_module:fn.modname
            fn.body ))
      fns
  in
  let table : (string, finding list) Hashtbl.t =
    Hashtbl.create (List.length scans)
  in
  List.iter (fun (id, scan) -> Hashtbl.replace table id scan.own) scans;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (id, scan) ->
        let current = Hashtbl.find table id in
        let keys = List.map (fun f -> kind_id f.kind) current in
        (* One representative finding per effect kind, via-chain from
           the first call site that surfaced it. *)
        let _, additions =
          List.fold_left
            (fun (keys, acc) ((callee : Callgraph.fn), call_loc) ->
              match Hashtbl.find_opt table callee.id with
              | None -> (keys, acc)
              | Some findings ->
                  List.fold_left
                    (fun (keys, acc) f ->
                      let key = kind_id f.kind in
                      if List.mem key keys then (keys, acc)
                      else
                        ( key :: keys,
                          { f with loc = call_loc; via = callee.id :: f.via }
                          :: acc ))
                    (keys, acc) findings)
            (keys, []) scan.callees
        in
        match additions with
        | [] -> ()
        | _ ->
            Hashtbl.replace table id (current @ List.rev additions);
            changed := true)
      scans
  done;
  table

let of_summary table id = Option.value ~default:[] (Hashtbl.find_opt table id)
