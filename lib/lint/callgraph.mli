(** Interprocedural call graph over the loaded typed trees.

    Nodes are the named value bindings of every module (including
    bindings inside nested [struct]s); an edge is any reference to
    another known binding — references are treated as calls, which is
    conservative in exactly the right direction for effect analysis
    (passing an effectful function to [List.iter] still taints the
    caller). *)

type fn = {
  id : string;  (** ["Ben_or.advance"], ["Rbc.Inner.evaluate"] *)
  modname : string;
  src_path : string;  (** root-relative source path *)
  loc : Location.t;
  body : Typedtree.expression;
}

type t

val build : Cmt_loader.unit_info list -> t

val find : t -> string -> fn option

val fns : t -> fn list
(** All known functions, sorted by id (deterministic iteration). *)

val resolve : t -> current_module:string -> Path.t -> fn option
(** Map a referenced path to a known function: bare idents resolve
    inside [current_module]; dotted paths are tried verbatim, by their
    last two components, and as a nested module of the current unit. *)

val path_components : Path.t -> string list
(** Flattened path with dune's [Lib__Module] mangling normalized away
    (["Dsim__Protocol.t"] -> [["Protocol"; "t"]]). *)

val path_name : Path.t -> string
(** [path_components] joined with dots. *)

val stdlib_name : Path.t -> string
(** Like {!path_name} with a leading ["Stdlib."] stripped, so
    primitive tables match both spellings. *)
