type report = {
  diagnostics : Static_lint.diagnostic list;
  errors : string list;
  files_scanned : int;
}

let default_dirs = [ "lib"; "bin"; "bench"; "examples" ]
let default_hash_allowlist = [ "lib/lint/" ]
let default_domain_allowlist = [ "lib/core/par_sweep"; "lib/lint/" ]

let is_ml_file name =
  String.length name > 3 && String.sub name (String.length name - 3) 3 = ".ml"

let skip_dir name =
  name = "_build" || (String.length name > 0 && name.[0] = '.')

(* Collect relative paths of .ml files under [rel] (depth-first, sorted
   so the scan order is stable across filesystems). *)
let rec walk root rel acc =
  let abs = Filename.concat root rel in
  if not (Sys.file_exists abs) then acc
  else if Sys.is_directory abs then
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc else walk root (Filename.concat rel entry) acc)
      acc entries
  else if is_ml_file rel then rel :: acc
  else acc

let scan ?(hash_allowlist = default_hash_allowlist)
    ?(domain_allowlist = default_domain_allowlist) ?(dirs = default_dirs) ~root
    () =
  if not (Sys.file_exists root && Sys.is_directory root) then
    (* A typo'd root must not read as a clean scan. *)
    {
      diagnostics = [];
      errors = [ Printf.sprintf "root %S is not a directory" root ];
      files_scanned = 0;
    }
  else
  let files =
    List.fold_left (fun acc dir -> walk root dir acc) [] dirs |> List.rev
  in
  let diagnostics, errors =
    List.fold_left
      (fun (diags, errs) rel ->
        match
          Static_lint.lint_file ~hash_allowlist ~domain_allowlist
            (Filename.concat root rel)
        with
        | Ok ds ->
            (* Report root-relative paths regardless of where we ran. *)
            let ds = List.map (fun d -> { d with Static_lint.path = rel }) ds in
            (List.rev_append ds diags, errs)
        | Error message -> (diags, message :: errs))
      ([], []) files
  in
  {
    diagnostics = List.sort Static_lint.compare_diagnostic diagnostics;
    errors = List.rev errors;
    files_scanned = List.length files;
  }

(* ------------------------------------------------------------------ *)
(* Typed layer (R7-R10) over the cmt trees of the built project.       *)

let scan_typed ?config ?(dirs = [ "lib" ]) ~root () =
  let cmts = Cmt_loader.find_cmt_files ~dirs ~root () in
  if cmts = [] then
    {
      diagnostics = [];
      errors =
        [ Printf.sprintf
            "no .cmt files found under %S for %s; run `dune build` first \
             (the typed linter reads _build/default/**/*.cmt)"
            root
            (String.concat ", " dirs) ];
      files_scanned = 0;
    }
  else
    let load = Cmt_loader.load ~dirs ~root () in
    {
      diagnostics = Typed_lint.analyze ?config load;
      errors = load.load_errors;
      files_scanned = List.length load.units;
    }

(* Cost layer (R11-R14) over the same cmt trees. *)

let scan_cost ?config ?(dirs = [ "lib" ]) ~root () =
  let cmts = Cmt_loader.find_cmt_files ~dirs ~root () in
  if cmts = [] then
    {
      diagnostics = [];
      errors =
        [ Printf.sprintf
            "no .cmt files found under %S for %s; run `dune build` first \
             (the cost linter reads _build/default/**/*.cmt)"
            root
            (String.concat ", " dirs) ];
      files_scanned = 0;
    }
  else
    let load = Cmt_loader.load ~dirs ~root () in
    {
      diagnostics = Cost_lint.analyze ?config load;
      errors = load.load_errors;
      files_scanned = List.length load.units;
    }

(* Quorum layer (R15-R18) over the same cmt trees. *)

let scan_quorum ?config ?(dirs = [ "lib" ]) ~root () =
  let cmts = Cmt_loader.find_cmt_files ~dirs ~root () in
  if cmts = [] then
    {
      diagnostics = [];
      errors =
        [ Printf.sprintf
            "no .cmt files found under %S for %s; run `dune build` first \
             (the quorum linter reads _build/default/**/*.cmt)"
            root
            (String.concat ", " dirs) ];
      files_scanned = 0;
    }
  else
    let load = Cmt_loader.load ~dirs ~root () in
    {
      diagnostics = Quorum_lint.analyze ?config load;
      errors = load.load_errors;
      files_scanned = List.length load.units;
    }

let ok report = report.diagnostics = [] && report.errors = []

(* ------------------------------------------------------------------ *)
(* Baselines: known findings accepted with a written justification.    *)

let baseline_key (d : Static_lint.diagnostic) =
  (Rules.id d.rule, d.path, d.message)

let read_baseline path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
      let entries = ref [] in
      let bad = ref None in
      String.split_on_char '\n' contents
      |> List.iteri (fun i line ->
             let line = String.trim line in
             if line = "" || line.[0] = '#' then ()
             else
               match String.split_on_char '\t' line with
               | [ rule; file; message ] ->
                   entries := (rule, file, message) :: !entries
               | _ ->
                   if !bad = None then
                     bad :=
                       Some
                         (Printf.sprintf
                            "%s:%d: malformed baseline line (expected \
                             RULE<TAB>PATH<TAB>MESSAGE)"
                            path (i + 1)));
      (match !bad with
      | Some e -> Error e
      | None -> Ok (List.rev !entries))

let apply_baseline entries report =
  let keep, waived =
    List.partition
      (fun d -> not (List.mem (baseline_key d) entries))
      report.diagnostics
  in
  ({ report with diagnostics = keep }, List.length waived)

let render_baseline ppf report =
  Format.fprintf ppf
    "# lint baseline: RULE<TAB>PATH<TAB>MESSAGE, one accepted finding per \
     line.@.# Keep a justification comment above every entry.@.";
  (* Baseline identity drops line numbers, so several diagnostics can
     collapse onto one entry (e.g. the same re-scan reported at two
     sites of a function).  Sort on the entry key and deduplicate so
     the file is stable under re-generation and trivially diffable. *)
  report.diagnostics
  |> List.map baseline_key
  |> List.sort_uniq compare
  |> List.iter (fun (rule, path, message) ->
         Format.fprintf ppf "%s\t%s\t%s@." rule path message)

let render_human ppf report =
  List.iter
    (fun d ->
      Format.fprintf ppf "%s:%d:%d: [%s] %s@."
        d.Static_lint.path d.Static_lint.line d.Static_lint.col
        (Rules.id d.Static_lint.rule) d.Static_lint.message)
    report.diagnostics;
  List.iter (fun e -> Format.fprintf ppf "error: %s@." e) report.errors;
  Format.fprintf ppf "%d file%s scanned, %d violation%s, %d error%s@."
    report.files_scanned
    (if report.files_scanned = 1 then "" else "s")
    (List.length report.diagnostics)
    (if List.length report.diagnostics = 1 then "" else "s")
    (List.length report.errors)
    (if List.length report.errors = 1 then "" else "s")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ppf report =
  let violation d =
    Printf.sprintf
      {|{"path":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
      (json_escape d.Static_lint.path)
      d.Static_lint.line d.Static_lint.col
      (Rules.id d.Static_lint.rule)
      (json_escape d.Static_lint.message)
  in
  Format.fprintf ppf
    {|{"files_scanned":%d,"violations":[%s],"errors":[%s]}|}
    report.files_scanned
    (String.concat "," (List.map violation report.diagnostics))
    (String.concat ","
       (List.map (fun e -> "\"" ^ json_escape e ^ "\"") report.errors));
  Format.pp_print_newline ppf ()

(* SARIF 2.1.0 (the GitHub code-scanning dialect): one run, rule
   metadata from the shared {!Rules} tables, results with physical
   locations, read/parse errors as tool execution notifications. *)
let render_sarif ppf report =
  let rule_entry rule =
    Printf.sprintf
      {|{"id":"%s","name":"%s","shortDescription":{"text":"%s"},"fullDescription":{"text":"%s"},"defaultConfiguration":{"level":"error"}}|}
      (Rules.id rule)
      (json_escape (Rules.title rule))
      (json_escape (Rules.title rule))
      (json_escape (Rules.describe rule))
  in
  let rule_index rule =
    let rec go i = function
      | [] -> 0
      | r :: rest -> if r = rule then i else go (i + 1) rest
    in
    go 0 Rules.all
  in
  let result (d : Static_lint.diagnostic) =
    Printf.sprintf
      {|{"ruleId":"%s","ruleIndex":%d,"level":"error","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s","uriBaseId":"SRCROOT"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
      (Rules.id d.rule) (rule_index d.rule)
      (json_escape d.message)
      (json_escape d.path)
      d.line (d.col + 1)
  in
  let notification e =
    Printf.sprintf
      {|{"level":"error","message":{"text":"%s"}}|} (json_escape e)
  in
  Format.fprintf ppf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"dsim-lint","informationUri":"https://example.invalid/dsim-lint","rules":[%s]}},"results":[%s],"invocations":[{"executionSuccessful":%b,"toolExecutionNotifications":[%s]}],"columnKind":"utf16CodeUnits"}]}|}
    (String.concat "," (List.map rule_entry Rules.all))
    (String.concat "," (List.map result report.diagnostics))
    (report.errors = [])
    (String.concat "," (List.map notification report.errors));
  Format.pp_print_newline ppf ()
