type report = {
  diagnostics : Static_lint.diagnostic list;
  errors : string list;
  files_scanned : int;
}

let default_dirs = [ "lib"; "bin"; "bench"; "examples" ]
let default_hash_allowlist = [ "lib/lint/" ]
let default_domain_allowlist = [ "lib/core/par_sweep"; "lib/lint/" ]

let is_ml_file name =
  String.length name > 3 && String.sub name (String.length name - 3) 3 = ".ml"

let skip_dir name =
  name = "_build" || (String.length name > 0 && name.[0] = '.')

(* Collect relative paths of .ml files under [rel] (depth-first, sorted
   so the scan order is stable across filesystems). *)
let rec walk root rel acc =
  let abs = Filename.concat root rel in
  if not (Sys.file_exists abs) then acc
  else if Sys.is_directory abs then
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc else walk root (Filename.concat rel entry) acc)
      acc entries
  else if is_ml_file rel then rel :: acc
  else acc

let scan ?(hash_allowlist = default_hash_allowlist)
    ?(domain_allowlist = default_domain_allowlist) ?(dirs = default_dirs) ~root
    () =
  if not (Sys.file_exists root && Sys.is_directory root) then
    (* A typo'd root must not read as a clean scan. *)
    {
      diagnostics = [];
      errors = [ Printf.sprintf "root %S is not a directory" root ];
      files_scanned = 0;
    }
  else
  let files =
    List.fold_left (fun acc dir -> walk root dir acc) [] dirs |> List.rev
  in
  let diagnostics, errors =
    List.fold_left
      (fun (diags, errs) rel ->
        match
          Static_lint.lint_file ~hash_allowlist ~domain_allowlist
            (Filename.concat root rel)
        with
        | Ok ds ->
            (* Report root-relative paths regardless of where we ran. *)
            let ds = List.map (fun d -> { d with Static_lint.path = rel }) ds in
            (List.rev_append ds diags, errs)
        | Error message -> (diags, message :: errs))
      ([], []) files
  in
  {
    diagnostics = List.sort Static_lint.compare_diagnostic diagnostics;
    errors = List.rev errors;
    files_scanned = List.length files;
  }

let ok report = report.diagnostics = [] && report.errors = []

let render_human ppf report =
  List.iter
    (fun d ->
      Format.fprintf ppf "%s:%d:%d: [%s] %s@."
        d.Static_lint.path d.Static_lint.line d.Static_lint.col
        (Rules.id d.Static_lint.rule) d.Static_lint.message)
    report.diagnostics;
  List.iter (fun e -> Format.fprintf ppf "error: %s@." e) report.errors;
  Format.fprintf ppf "%d file%s scanned, %d violation%s, %d error%s@."
    report.files_scanned
    (if report.files_scanned = 1 then "" else "s")
    (List.length report.diagnostics)
    (if List.length report.diagnostics = 1 then "" else "s")
    (List.length report.errors)
    (if List.length report.errors = 1 then "" else "s")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ppf report =
  let violation d =
    Printf.sprintf
      {|{"path":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
      (json_escape d.Static_lint.path)
      d.Static_lint.line d.Static_lint.col
      (Rules.id d.Static_lint.rule)
      (json_escape d.Static_lint.message)
  in
  Format.fprintf ppf
    {|{"files_scanned":%d,"violations":[%s],"errors":[%s]}|}
    report.files_scanned
    (String.concat "," (List.map violation report.diagnostics))
    (String.concat ","
       (List.map (fun e -> "\"" ^ json_escape e ^ "\"") report.errors));
  Format.pp_print_newline ppf ()
