(** The determinism lint rules.

    The reproduction's value rests on every execution being a pure
    function of its seed; these rules ban the OCaml constructs that
    silently break that property (ambient randomness, version-dependent
    hashing, polymorphic structural comparison on protocol data, exact
    float equality, stray printing that bypasses the trace, and raw
    multicore primitives outside the sanctioned sweep engine). *)

type t = R1 | R2 | R3 | R4 | R5 | R6

val all : t list

val id : t -> string
(** "R1" .. "R6". *)

val of_id : string -> t option
(** Case-insensitive parse of "R1" .. "R6". *)

val title : t -> string
(** One-line rule name, e.g. "ambient nondeterminism source". *)

val describe : t -> string
(** One-paragraph rationale (used by [--explain] and the docs). *)

(** Where a scanned file lives; decides which rules apply. *)
type scope = {
  top : [ `Lib | `Bin | `Bench | `Examples | `Other ];
  sub : string option;  (** e.g. ["dsim"] for a file under [lib/dsim/]. *)
}

val scope_of_path : string -> scope
(** Classify a path such as "lib/dsim/engine.ml"; leading "./" and
    absolute prefixes up to a known top-level directory are ignored. *)

val applies : t -> scope -> bool
(** Whether the rule is checked at all for files in this scope:
    R1 and R5 in [lib/] only; R2 and R6 everywhere; R3 in [lib/dsim],
    [lib/protocols], [lib/adversary]; R4 in [lib/stats] and
    [lib/lowerbound]. *)
