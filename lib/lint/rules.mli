(** The determinism lint rules.

    The reproduction's value rests on every execution being a pure
    function of its seed; these rules ban the OCaml constructs that
    silently break that property.  R1-R6 are purely syntactic (parsed
    AST, {!Static_lint}); R7-R10 are type-aware and interprocedural
    (compiler [*.cmt] typed trees, {!Typed_lint}), catching what syntax
    alone cannot: polymorphic comparison hidden behind variables,
    effectful protocol transitions, stream role aliasing, and silently
    dropped message constructors.  R11-R14 are the cost layer
    ({!Cost_lint}): asymptotic per-function summaries over the
    {!Costs} lattice, reported against the per-event hot set.
    R15-R18 are the quorum layer ({!Quorum_lint}): symbolic
    threshold arithmetic proved for all n and t over each protocol's
    declared resilience region, plus the cost layer's recursion
    blind spot. *)

type t =
  | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10 | R11 | R12 | R13 | R14
  | R15 | R16 | R17 | R18

val all : t list

val id : t -> string
(** "R1" .. "R18". *)

val of_id : string -> t option
(** Case-insensitive parse of "R1" .. "R18". *)

val layer : t -> [ `Static | `Typed | `Cost | `Quorum ]
(** Which analysis layer emits the rule: R1-R6 from the syntactic
    linter, R7-R10 from the cmt-based typed linter, R11-R14 from the
    cmt-based cost analyzer, R15-R18 from the symbolic quorum-safety
    analyzer. *)

val title : t -> string
(** One-line rule name, e.g. "ambient nondeterminism source". *)

val describe : t -> string
(** One-paragraph rationale (used by [--explain] and the docs). *)

(** Where a scanned file lives; decides which rules apply. *)
type scope = {
  top : [ `Lib | `Bin | `Bench | `Examples | `Other ];
  sub : string option;  (** e.g. ["dsim"] for a file under [lib/dsim/]. *)
}

val scope_of_path : string -> scope
(** Classify a path such as "lib/dsim/engine.ml"; leading "./" and
    absolute prefixes up to a known top-level directory are ignored. *)

val applies : t -> scope -> bool
(** Whether the rule is checked at all for files in this scope:
    R1 and R5 in [lib/] only; R2 and R6 everywhere; R3, R7 and R10 in
    [lib/dsim], [lib/protocols], [lib/adversary]; R4 in [lib/stats] and
    [lib/lowerbound]; R8 in [lib/]; R9 in [lib/] except [lib/prng] and
    [lib/lint] (the stream implementation and the linter itself);
    R11-R15 in [lib/] except [lib/lint] — within that gate, membership
    in the configured hot set decides whether the cost rules fire;
    R16-R18 in [lib/] except [lib/lint], [lib/prng] and [lib/stats]
    (threshold definitions and protocol construction sites). *)
