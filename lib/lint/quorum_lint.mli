(** Layer 5: the symbolic quorum-safety analyzer (rules R15-R18).

    Walks the typed trees, reduces every quorum-threshold definition —
    protocol defaults and [?decide_quorum]-style construction-site
    hooks alike — to an affine form over [n] and [t] ({!Symexpr}), and
    discharges per-protocol-family obligations with the exact integer
    decision procedure, over the family's declared resilience region:

    - {b R15}: recursion whose per-call summary exceeds the hot-path
      cost threshold while every individual site in its body is cheap —
      the cost layer's (R11) documented blind spot.  Computed by
      {!Cost_lint.recursion_findings} and reported here.
    - {b R16}: a threshold obligation (quorum intersection above the
      fault bound, quorum reachable by the honest set, Theorem 4's
      validity conditions) that fails at some (n, t) inside the
      declared region.  The finding carries the witness point.
    - {b R17}: a decide threshold the fault set can satisfy alone
      (threshold <= t feasible with t >= 1), or a decide function that
      constructs [Some _] without a dominating >= comparison against
      its quorum gate.
    - {b R18}: the registry's resilience claim (the [~byz] bound the
      mcheck helpers advertise) admits a point where an obligation
      fails — the claim and the arithmetic disagree.

    Extraction is a small symbolic evaluator, not a naming convention:
    optional-argument defaults are read through the compiler's
    elaborated matches, [Thresholds.default]'s validation is resolved
    by the all-but-one-branch-raises rule, and local helper closures
    are beta-reduced.  Thresholds that do not reduce to affine form
    are reported (R16), never silently trusted. *)

type config = { cost : Cost_lint.config }
(** [cost] parameterizes the R15 hot set (same knobs as the cost
    layer). *)

val default_config : config

val analyze : ?config:config -> Cmt_loader.load -> Static_lint.diagnostic list
(** Run R15-R18 over every loaded unit.  Diagnostics carry
    root-relative paths, honour inline [(* lint: allow Rn *)]
    suppressions, and are sorted by (path, line, col, rule). *)

val analyze_units :
  ?config:config -> Cmt_loader.unit_info list -> Static_lint.diagnostic list
(** Same on an explicit unit list (used by fixture tests). *)

val check_source :
  ?config:config ->
  path:string ->
  string ->
  (Static_lint.diagnostic list, string) result
(** Typecheck a standalone source in memory and run the quorum rules on
    it.  [path] decides rule scope and which family the fixture's
    [protocol] calls resolve to (e.g. ["lib/protocols/ben_or.ml"]
    makes bare [protocol] applications Ben-Or construction sites). *)

(** {2 Test-facing extraction view} *)

type extraction = {
  e_family : string;  (** registry key, e.g. ["ben-or"] *)
  e_region : Symexpr.t list;
      (** declared resilience region, constraints [>= 0] *)
  e_defaults : (string * (Symexpr.t, string) result) list;
      (** threshold key -> extracted default, or why not *)
}

val extractions : Cmt_loader.unit_info list -> extraction list
(** What the symbolic evaluator reads off each loaded protocol family:
    its resilience region and every default threshold in affine form.
    Families whose required modules are absent are omitted. *)
