(** Layer 1: the AST-driven determinism linter.

    Parses OCaml sources with [compiler-libs] and walks the parsetree
    with {!Ast_iterator}, reporting violations of the {!Rules} with
    file:line positions.  Inline suppression is supported: a comment

    {[ (* lint: allow R3 *) ]}

    anywhere on a line disables the named rules (comma/space separated,
    or [all]) on that line and the next one. *)

type diagnostic = {
  path : string;
  line : int;
  col : int;
  rule : Rules.t;
  message : string;
}

val compare_diagnostic : diagnostic -> diagnostic -> int
(** Order by (path, line, col, rule). *)

val lint_source :
  ?hash_allowlist:string list ->
  ?domain_allowlist:string list ->
  path:string ->
  string ->
  (diagnostic list, string) result
(** Lint one compilation unit given as a string.  [path] determines the
    rule scope (see {!Rules.scope_of_path}) and is echoed in
    diagnostics.  [hash_allowlist] entries are path substrings for
    which rule R2 is waived; [domain_allowlist] likewise waives R6 (the
    sanctioned sweep engine).  [Error message] on a parse failure. *)

val lint_file :
  ?hash_allowlist:string list ->
  ?domain_allowlist:string list ->
  string ->
  (diagnostic list, string) result
(** Read and lint a file from disk. *)
