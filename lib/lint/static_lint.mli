(** Layer 1: the AST-driven determinism linter.

    Parses OCaml sources with [compiler-libs] and walks the parsetree
    with {!Ast_iterator}, reporting violations of the {!Rules} with
    file:line positions.  Inline suppression is supported: a comment

    {[ (* lint: allow R3 *) ]}

    anywhere on a line disables the named rules (comma/space separated,
    or [all]) on that line and the next one. *)

type diagnostic = {
  path : string;
  line : int;
  col : int;
  rule : Rules.t;
  message : string;
}

val compare_diagnostic : diagnostic -> diagnostic -> int
(** Order by (path, line, col, rule). *)

val find_substring : string -> string -> int -> int option
(** [find_substring haystack needle from]: index of the first occurrence
    of [needle] at or after [from], in a single KMP pass (no rescans, no
    allocation per position).  Exposed for tests. *)

(** {2 Suppression comments}

    Shared by both lint layers: the typed linter ({!Typed_lint}) honours
    the same [(* lint: allow R8 *)] syntax via these functions. *)

type suppression = All | Only of Rules.t list

val parse_suppression_line : string -> suppression option
(** Parse one source line; [Some] when it contains
    [lint: allow <spec>] where <spec> is [all] or a comma/space
    separated list of rule ids (anything from the closing ["*)"] on is
    ignored).  Lines mentioning only unknown rule ids parse to [None]. *)

val suppressions_of_source : string -> (int, suppression) Hashtbl.t
(** Line number (1-based) -> suppression, for every line of the source
    that carries one. *)

val suppressed : (int, suppression) Hashtbl.t -> line:int -> Rules.t -> bool
(** Whether a diagnostic on [line] is silenced: a suppression covers its
    own line and the following one. *)

val lint_source :
  ?hash_allowlist:string list ->
  ?domain_allowlist:string list ->
  path:string ->
  string ->
  (diagnostic list, string) result
(** Lint one compilation unit given as a string.  [path] determines the
    rule scope (see {!Rules.scope_of_path}) and is echoed in
    diagnostics.  [hash_allowlist] entries are path substrings for
    which rule R2 is waived; [domain_allowlist] likewise waives R6 (the
    sanctioned sweep engine).  [Error message] on a parse failure. *)

val lint_file :
  ?hash_allowlist:string list ->
  ?domain_allowlist:string list ->
  string ->
  (diagnostic list, string) result
(** Read and lint a file from disk. *)
