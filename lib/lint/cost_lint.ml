(* Layer 3: the cmt-based hot-path cost & allocation analyzer (R11-R14).

   Every function in the library gets an asymptotic per-call summary
   over the {!Costs} lattice, computed by mapping known stdlib and
   in-repo primitives through the interprocedural call graph
   ({!Callgraph}), with data-dependent loops and higher-order iterators
   multiplying their body's cost ({!Costs.nest}) and recursion treated
   as one data-dependent iteration (Tarjan SCCs, in-SCC calls counted
   as O(1) and the component then nested under O(n)).

   Findings are only reported inside the configured *hot set*: every
   function reachable from the kernel roots ([Engine.apply_window],
   the [Mailbox] core operations, the [Window] constructors) or from a
   [Dsim.Protocol.t] transition field.  Reporting happens at the
   introducing site — the loop, primitive or allocation itself, in the
   function whose body contains it — so an inline
   [(* lint: allow Rn *)] is always local; the message carries the hot
   path from the root so the reader can see why the function is hot.

   Summary overrides declare the true (amortized) cost of in-repo
   primitives whose implementation the lattice cannot see — e.g.
   [Mailbox.add] is amortized O(1) despite its growth loops.  An
   override is the central justification for the whole function: its
   own body is not reported and the hot-set walk does not descend into
   it, so the declared cost is what callers pay. *)

type config = {
  hot_roots : string list;
      (* call-graph function ids (Module.name) seeding the hot set *)
  transition_fields : string list;
      (* Protocol.t fields whose values also seed the hot set *)
  overrides : (string * Costs.t) list;
      (* fn id -> declared amortized cost; body exempt, BFS barrier *)
  exempt_modules : string list;
      (* modules whose calls are free (the sanctioned stream draws) *)
}

let default_config =
  {
    hot_roots =
      [
        "Engine.apply_window"; "Engine.apply_windows";
        "Engine.deliver_all_pending";
        "Mailbox.add"; "Mailbox.add_unicast"; "Mailbox.add_broadcast";
        "Mailbox.take"; "Mailbox.find"; "Mailbox.mem";
        "Mailbox.replace_payload"; "Mailbox.iter_for";
        "Mailbox.iter_ids_in_range"; "Mailbox.drain_for";
        "Window.make"; "Window.uniform"; "Window.hybrid"; "Window.allows";
        "Window.receive_set_size"; "Window.uniform_mask";
      ];
    transition_fields = [ "outgoing"; "on_deliver"; "on_reset"; "output" ];
    overrides =
      [
        (* Mailbox: arena (struct-of-arrays) unicast storage + a
           broadcast table of shared envelopes.  The arena growth and
           compaction loops amortize to O(1) per engine op, and the
           point lookups pay one binary search over the (sorted,
           disjoint) broadcast ranges (see lib/dsim/mailbox.ml's
           invariants and test_mailbox.ml). *)
        ("Mailbox.add", Costs.Const);
        ("Mailbox.add_unicast", Costs.Const);
        (* add_broadcast writes one table entry plus an n-bit pending
           bitmap (n/63 words); that linear-in-words setup is charged
           to the n deliveries/drops the broadcast funds, so per
           resulting envelope it is O(1) amortized. *)
        ("Mailbox.add_broadcast", Costs.Const);
        ("Mailbox.take", Costs.Log);
        ("Mailbox.find", Costs.Log);
        ("Mailbox.mem", Costs.Log);
        ("Mailbox.replace_payload", Costs.Log);
        ("Mailbox.iter_for", Costs.Const);  (* per delivered envelope *)
        (* iter_ids_in_range skip-scans whole empty bitmap words, so
           its work is proportional to envelopes actually visited
           (each one an engine event), not to the id range. *)
        ("Mailbox.iter_ids_in_range", Costs.Const);
        (* drain_for is iter_for fused with removal: one merge walk,
           each visited envelope an engine event, removal O(1) per
           envelope (unlink + pending-bit clear). *)
        ("Mailbox.drain_for", Costs.Const);
        ("Mailbox.enqueue", Costs.Const);
        ("Mailbox.ensure_slot", Costs.Const);
        ("Mailbox.ensure_dst", Costs.Const);
        ("Mailbox.unlink", Costs.Const);
        (* Window.allows is a mask probe; the list fallback only runs
           for pids >= the mask clamp (2^16). *)
        ("Window.allows", Costs.Const);
        (* Bitset: mem/remove are two loads and a shift; construction
           is linear by design (window building and broadcast pending
           maps, not per delivery); next_from skips empty words, so a
           scan over a set is linear in hits plus words, O(1) amortized
           per hit; popcount is bounded by the 63-bit word size. *)
        ("Bitset.mem", Costs.Const);
        ("Bitset.remove", Costs.Const);
        ("Bitset.next_from", Costs.Const);
        ("Bitset.create", Costs.Linear);
        ("Bitset.of_list", Costs.Linear);
        ("Bitset.full", Costs.Linear);
        ("Bitset.copy", Costs.Linear);
        ("Bitset.equal", Costs.Linear);
        ("Bitset.cardinal", Costs.Linear);
        ("Bitset.cardinal_below", Costs.Linear);
        ("Bitset.popcount_word", Costs.Const);
        (* Trace: the broadcast recorder bumps the sent counter once;
           the per-destination Sent events only materialize when event
           recording is on (diagnostic runs, never the hot bench
           path). *)
        ("Trace.record_broadcast", Costs.Const);
        (* note_event only runs when event recording is on (audited
           runs, never plain sweeps); per recorded event it renders one
           bounded line, hashes its bytes, and amortizes the chunked
           sink flush across chunk_bytes of output. *)
        ("Trace.note_event", Costs.Const);
        (* Bulk window accounting for the batched applier: one counter
           add per fused run. *)
        ("Trace.record_windows_closed", Costs.Const);
      ];
    exempt_modules = Effects.default_exempt_modules;
  }

(* ------------------------------------------------------------------ *)
(* Primitive cost table.                                               *)

type prim = {
  cost : Costs.t;  (* excluding whatever the iterated closure costs *)
  iterates : int list;  (* positional args applied once per element *)
  collection : int option;  (* scanned-structure arg, R13 candidate *)
  size_arg : int option;  (* literal constant here => constant-size *)
  materializes : bool;  (* output allocation scales with input (R12) *)
  amortized : bool;  (* sanctioned growth op: R12-exempt *)
}

let prim ?(iterates = []) ?collection ?size_arg ?(materializes = false)
    ?(amortized = false) cost =
  { cost; iterates; collection; size_arg; materializes; amortized }

let const = prim Costs.Const
let lin = prim Costs.Linear

let stdlib_prims =
  [
    (* Lists. *)
    ("List.length", prim Costs.Linear ~collection:0);
    ("List.mem", prim Costs.Linear ~collection:1);
    ("List.memq", prim Costs.Linear ~collection:1);
    ("List.assoc", prim Costs.Linear ~collection:1);
    ("List.assoc_opt", prim Costs.Linear ~collection:1);
    ("List.mem_assoc", prim Costs.Linear ~collection:1);
    ("List.nth", prim Costs.Linear ~collection:0);
    ("List.nth_opt", prim Costs.Linear ~collection:0);
    ("List.exists", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("List.for_all", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("List.find", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("List.find_opt", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("List.find_map", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("List.iter", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("List.iteri", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("List.fold_left", prim Costs.Linear ~iterates:[ 0 ] ~collection:2);
    ("List.fold_right", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("List.map", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.mapi", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.rev_map", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.filter", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.filter_map", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.concat_map", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.partition", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.init", prim Costs.Linear ~iterates:[ 1 ] ~size_arg:0 ~materializes:true);
    (* Append/rev-style restructurers walk their input but are not
       receive-set scans in the R13 sense; they surface as R12. *)
    ("List.rev", prim Costs.Linear ~materializes:true);
    ("List.append", prim Costs.Linear ~materializes:true);
    ("@", prim Costs.Linear ~materializes:true);
    ("List.rev_append", prim Costs.Linear ~materializes:true);
    ("List.concat", prim Costs.Linear ~materializes:true);
    ("List.flatten", prim Costs.Linear ~materializes:true);
    ("List.split", prim Costs.Linear ~collection:0 ~materializes:true);
    ("List.combine", prim Costs.Linear ~collection:0 ~materializes:true);
    ("List.sort", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.stable_sort", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.fast_sort", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.sort_uniq", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("List.of_seq", prim Costs.Linear ~collection:0 ~materializes:true);
    ("List.to_seq", prim Costs.Linear ~collection:0 ~materializes:true);
    ("List.hd", const); ("List.tl", const); ("List.cons", const);
    ("List.is_empty", const);
    (* Arrays. *)
    ("Array.length", const); ("Array.get", const); ("Array.set", const);
    ("Array.unsafe_get", const); ("Array.unsafe_set", const);
    ("Array.make", prim Costs.Linear ~size_arg:0 ~materializes:true);
    ("Array.create_float", prim Costs.Linear ~size_arg:0 ~materializes:true);
    ("Array.init", prim Costs.Linear ~iterates:[ 1 ] ~size_arg:0 ~materializes:true);
    ("Array.make_matrix", prim Costs.Quadratic ~materializes:true);
    ("Array.copy", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Array.append", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Array.sub", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Array.concat", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Array.of_list", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Array.to_list", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Array.of_seq", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Array.to_seq", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Array.map", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("Array.mapi", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("Array.iter", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Array.iteri", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Array.fold_left", prim Costs.Linear ~iterates:[ 0 ] ~collection:2);
    ("Array.fold_right", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Array.exists", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Array.for_all", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Array.mem", prim Costs.Linear ~collection:1);
    ("Array.memq", prim Costs.Linear ~collection:1);
    ("Array.blit", lin); ("Array.fill", lin);
    ("Array.sort", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Array.fast_sort", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Array.stable_sort", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    (* Hashtbl: amortized-O(1) core ops, linear iteration. *)
    ("Hashtbl.add", prim Costs.Const ~amortized:true);
    ("Hashtbl.replace", prim Costs.Const ~amortized:true);
    ("Hashtbl.remove", prim Costs.Const ~amortized:true);
    ("Hashtbl.find", const); ("Hashtbl.find_opt", const);
    ("Hashtbl.mem", const); ("Hashtbl.length", const);
    ("Hashtbl.iter", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Hashtbl.fold", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Hashtbl.filter_map_inplace", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Hashtbl.copy", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Hashtbl.to_seq", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Hashtbl.clear", lin); ("Hashtbl.reset", lin);
    (* Queues, stacks, buffers: amortized-O(1) growth ops. *)
    ("Queue.add", prim Costs.Const ~amortized:true);
    ("Queue.push", prim Costs.Const ~amortized:true);
    ("Queue.pop", const); ("Queue.take", const); ("Queue.peek", const);
    ("Queue.is_empty", const); ("Queue.length", const);
    ("Queue.iter", prim Costs.Linear ~iterates:[ 0 ] ~collection:1);
    ("Queue.fold", prim Costs.Linear ~iterates:[ 0 ] ~collection:2);
    ("Queue.copy", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Stack.push", prim Costs.Const ~amortized:true);
    ("Stack.pop", const); ("Stack.top", const); ("Stack.is_empty", const);
    ("Buffer.add_char", prim Costs.Const ~amortized:true);
    ("Buffer.add_string", prim Costs.Const ~amortized:true);
    ("Buffer.add_bytes", prim Costs.Const ~amortized:true);
    ("Buffer.add_buffer", prim Costs.Const ~amortized:true);
    ("Buffer.length", const); ("Buffer.clear", const); ("Buffer.reset", const);
    ("Buffer.contents", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Buffer.to_bytes", prim Costs.Linear ~collection:0 ~materializes:true);
    (* Strings and bytes (hot code shouldn't build them, R5 aside). *)
    ("String.length", const); ("String.get", const);
    ("String.make", prim Costs.Linear ~size_arg:0 ~materializes:true);
    ("String.init", prim Costs.Linear ~iterates:[ 1 ] ~size_arg:0 ~materializes:true);
    ("String.sub", prim Costs.Linear ~materializes:true);
    ("String.concat", prim Costs.Linear ~collection:1 ~materializes:true);
    ("String.cat", prim Costs.Linear ~materializes:true);
    ("^", prim Costs.Linear ~materializes:true);
    ("String.map", prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true);
    ("String.split_on_char", prim Costs.Linear ~collection:1 ~materializes:true);
    ("String.compare", lin); ("String.equal", lin);
    ("Bytes.create", prim Costs.Linear ~size_arg:0 ~materializes:true);
    ("Bytes.make", prim Costs.Linear ~size_arg:0 ~materializes:true);
    ("Bytes.copy", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Bytes.of_string", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Bytes.to_string", prim Costs.Linear ~collection:0 ~materializes:true);
    ("Bytes.sub", prim Costs.Linear ~materializes:true);
    ("Bytes.blit", lin); ("Bytes.fill", lin);
  ]

(* Functor-made maps and sets ([Map.Make]/[Set.Make] instances) never
   appear in the call graph — the functor body has no cmt here — so
   they are classified by module-name shape + operation name, at the
   balanced-tree costs. *)
let map_like modname =
  let m = String.lowercase_ascii modname in
  m = "map" || m = "set"
  || String.ends_with ~suffix:"_map" m
  || String.ends_with ~suffix:"_set" m

let map_prim op =
  match op with
  | "find" | "find_opt" | "add" | "remove" | "mem" | "update" | "singleton"
  | "min_binding" | "min_binding_opt" | "max_binding" | "max_binding_opt"
  | "min_elt" | "min_elt_opt" | "max_elt" | "max_elt_opt" | "find_first"
  | "find_last" | "split" ->
      (* Path-copying tree update: O(log n) time and allocation; the
         sanctioned persistent-state shape, so R12-exempt. *)
      Some (prim Costs.Log ~amortized:true)
  | "is_empty" | "empty" | "choose" | "choose_opt" -> Some const
  | "fold" | "iter" -> Some (prim Costs.Linear ~iterates:[ 0 ] ~collection:1)
  | "for_all" | "exists" -> Some (prim Costs.Linear ~iterates:[ 0 ] ~collection:1)
  | "cardinal" -> Some (prim Costs.Linear ~collection:0)
  | "bindings" | "elements" | "to_list" ->
      Some (prim Costs.Linear ~collection:0 ~materializes:true)
  | "filter" | "partition" | "map" | "mapi" | "filter_map" ->
      Some (prim Costs.Linear ~iterates:[ 0 ] ~collection:1 ~materializes:true)
  | "of_list" | "of_seq" | "to_seq" | "union" | "inter" | "diff" | "merge" ->
      Some (prim Costs.Linear ~materializes:true)
  | _ -> None

let prim_of_name name =
  match List.assoc_opt name stdlib_prims with
  | Some _ as p -> p
  | None -> (
      match String.split_on_char '.' name with
      | [ modname; op ] when map_like modname -> map_prim op
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Intraprocedural site scan.                                          *)

type site_kind =
  | Prim of string * prim * bool
      (* name, table entry, collection-arg-is-fresh-local *)
  | Call of Callgraph.fn
  | For_loop
  | While_loop
  | Alloc of string  (* list cons / tuple / record / array / closure *)
  | Fanout of string  (* List.init building per-destination envelopes *)

type site = { loc : Location.t; kind : site_kind; depth : int }

type scan = { sites : site list }

let is_constant (e : Typedtree.expression) =
  match e.exp_desc with Texp_constant _ -> true | _ -> false

(* Freshness of a collection argument: a let-bound name whose RHS was a
   materializing primitive or a literal structure.  Scanning those is
   still linear work (flagged by cost), but it is not a *state re-scan*
   in the R13 sense. *)
let arg_is_fresh_local locals (arg : Typedtree.expression option) =
  match arg with
  | None -> false
  | Some arg -> (
      match Effects.base_ident arg with
      | Some id -> Hashtbl.mem locals (Ident.unique_name id)
      | None -> false)

let is_fresh_rhs locals (expr : Typedtree.expression) =
  match expr.exp_desc with
  | Texp_array _ | Texp_record _ | Texp_tuple _ -> true
  | Texp_construct (_, cstr, _) ->
      cstr.Types.cstr_name = "::" || cstr.Types.cstr_name = "[]"
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match prim_of_name (Callgraph.stdlib_name p) with
      | Some info -> info.materializes
      | None -> false)
  | Texp_ident (Path.Pident id, _, _) -> Hashtbl.mem locals (Ident.unique_name id)
  | _ -> false

(* A List.init body that builds one (destination, payload) tuple per
   index is the eager-fan-out shape (R14). *)
let builds_tuple (arg : Typedtree.expression option) =
  match arg with
  | Some { exp_desc = Texp_function { cases; _ }; _ } ->
      List.exists
        (fun (c : Typedtree.value Typedtree.case) ->
          match c.c_rhs.exp_desc with Texp_tuple _ -> true | _ -> false)
        cases
  | _ -> false

let scan_function ?(exempt_modules = Effects.default_exempt_modules) graph
    ~current_module (body : Typedtree.expression) =
  let sites = ref [] in
  let locals = Hashtbl.create 16 in
  let consumed = Hashtbl.create 16 in
  let depth = ref 0 in
  (* Subtrees iterated once per element of a data-dependent structure:
     higher-order iterator closure bodies and loop bodies.  Matched by
     physical identity, so duplicated locations (ppx-free trees don't
     have them, but cheap insurance) cannot cross-boost. *)
  let boosted : Typedtree.expression list ref = ref [] in
  (* The closure (and any curried parameter layer inside it) is
     allocated once; only the innermost body runs per element. *)
  let rec boost (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun (c : Typedtree.value Typedtree.case) -> boost c.c_rhs)
          cases
    | _ -> boosted := e :: !boosted
  in
  let add kind loc = sites := { loc; kind; depth = !depth } :: !sites in
  let note_apply path loc (args : (Asttypes.arg_label * Typedtree.expression option) list) =
    let name = Callgraph.stdlib_name path in
    let positional = List.map snd args in
    let nth i = List.nth_opt positional i |> Option.join in
    match Callgraph.resolve graph ~current_module path with
    | Some fn ->
        if not (List.mem fn.Callgraph.modname exempt_modules) then
          add (Call fn) loc
    | None -> (
        match prim_of_name name with
        | None -> ()  (* unknown external: assumed O(1), like effects *)
        | Some info ->
            let const_size =
              match info.size_arg with
              | Some i -> ( match nth i with Some a -> is_constant a | None -> false)
              | None -> false
            in
            if not const_size then begin
              let fresh =
                match info.collection with
                | Some i -> arg_is_fresh_local locals (nth i)
                | None -> false
              in
              if
                name = "List.init"
                && (match nth 0 with Some a -> not (is_constant a) | None -> false)
                && builds_tuple (nth 1)
              then add (Fanout name) loc
              else add (Prim (name, info, fresh)) loc
            end;
            (* Iterated function arguments: named functions become
               per-element call edges; inline closures are boosted so
               their bodies scan one level deeper.  A constant
               iteration count bounds the per-element work, so it does
               not boost. *)
            if not const_size then
              List.iter
                (fun i ->
                  match nth i with
                  | Some ({ exp_desc = Texp_function _; _ } as f) -> boost f
                  | Some { exp_desc = Texp_ident (p, _, _); exp_loc; _ } -> (
                      match Callgraph.resolve graph ~current_module p with
                      | Some fn
                        when not (List.mem fn.Callgraph.modname exempt_modules)
                        ->
                          (* One call per element: record at depth+1. *)
                          sites :=
                            { loc = exp_loc; kind = Call fn; depth = !depth + 1 }
                            :: !sites
                      | _ -> ())
                  | _ -> ())
                info.iterates)
  in
  let iterator =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self (expr : Typedtree.expression) ->
          let bumped = List.memq expr !boosted in
          if bumped then incr depth;
          (match expr.exp_desc with
          | Texp_let (_, vbs, _) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (id, _) when is_fresh_rhs locals vb.vb_expr ->
                      Hashtbl.replace locals (Ident.unique_name id) ()
                  | _ -> ())
                vbs
          | Texp_for (_, _, e_from, e_to, _, for_body) ->
              if not (is_constant e_from && is_constant e_to) then begin
                add For_loop expr.exp_loc;
                boosted := for_body :: !boosted
              end
          | Texp_while (_, while_body) ->
              add While_loop expr.exp_loc;
              boosted := while_body :: !boosted
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_loc; _ }, args) ->
              Hashtbl.replace consumed exp_loc ();
              note_apply p expr.exp_loc args
          | Texp_ident (p, _, _) ->
              (* A bare reference to a sibling (e.g. a closure stored in
                 a record field) still wires a call edge for the hot-set
                 walk; primitives mentioned without application cost
                 nothing by themselves. *)
              if not (Hashtbl.mem consumed expr.exp_loc) then (
                match Callgraph.resolve graph ~current_module p with
                | Some fn ->
                    if not (List.mem fn.Callgraph.modname exempt_modules) then
                      add (Call fn) expr.exp_loc
                | None -> ())
          | Texp_construct (_, cstr, args)
            when cstr.Types.cstr_name = "::" && args <> [] && !depth > 0 ->
              add (Alloc "list cons") expr.exp_loc
          | Texp_tuple _ when !depth > 0 -> add (Alloc "tuple") expr.exp_loc
          | Texp_record _ when !depth > 0 ->
              add (Alloc "record construction") expr.exp_loc
          | Texp_array _ when !depth > 0 -> add (Alloc "array literal") expr.exp_loc
          | Texp_function _ when !depth > 0 ->
              add (Alloc "closure capture") expr.exp_loc
          | _ -> ());
          Tast_iterator.default_iterator.expr self expr;
          if bumped then decr depth);
    }
  in
  iterator.expr iterator body;
  { sites = List.rev !sites }

(* ------------------------------------------------------------------ *)
(* Interprocedural summaries: Tarjan SCCs bottom-up over the resolved
   call edges; a recursive component is one data-dependent iteration
   (in-SCC calls count O(1), then the component nests under O(n)), so
   structural recursion lands on O(n) instead of diverging to top.     *)

let site_cost summaries in_scc (s : site) =
  match s.kind with
  | Prim (_, info, _) -> Costs.nest_depth s.depth info.cost
  | For_loop | While_loop -> Costs.nest_depth s.depth Costs.Linear
  | Call fn ->
      let callee =
        if List.mem fn.Callgraph.id in_scc then Costs.Const
        else
          Option.value ~default:Costs.Const
            (Hashtbl.find_opt summaries fn.Callgraph.id)
      in
      Costs.nest_depth s.depth callee
  | Fanout _ -> Costs.nest_depth s.depth Costs.Linear
  | Alloc _ -> Costs.Const  (* the enclosing loop carries the cost *)

let sccs scans =
  (* Tarjan, iterative enough for these graph sizes via recursion. *)
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let edges id =
    match Hashtbl.find_opt scans id with
    | None -> []
    | Some scan ->
        List.filter_map
          (fun s ->
            match s.kind with
            | Call fn when Hashtbl.mem scans fn.Callgraph.id ->
                Some fn.Callgraph.id
            | _ -> None)
          scan.sites
  in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (edges v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) scans [] in
  List.iter
    (fun id -> if not (Hashtbl.mem index id) then strongconnect id)
    (List.sort String.compare ids);
  (* Tarjan emits components in reverse topological order: a component
     is finished only after everything it reaches; prepending yields
     callees-first. *)
  List.rev !components

let compute_summaries ~overrides scans =
  let summaries = Hashtbl.create 64 in
  List.iter (fun (id, cost) -> Hashtbl.replace summaries id cost) overrides;
  List.iter
    (fun component ->
      let members = List.filter (fun id -> not (List.mem id (List.map fst overrides))) component in
      let recursive =
        match component with
        | [ single ] ->
            List.exists
              (fun s ->
                match s.kind with
                | Call fn -> fn.Callgraph.id = single
                | _ -> false)
              (match Hashtbl.find_opt scans single with
              | Some scan -> scan.sites
              | None -> [])
        | _ -> true
      in
      let body_cost id =
        match Hashtbl.find_opt scans id with
        | None -> Costs.Const
        | Some scan ->
            List.fold_left
              (fun acc s -> Costs.join acc (site_cost summaries component s))
              Costs.Const scan.sites
      in
      List.iter
        (fun id ->
          if not (Hashtbl.mem summaries id) then
            let c = body_cost id in
            let c = if recursive then Costs.nest Costs.Linear c else c in
            Hashtbl.replace summaries id c)
        members)
    (sccs scans);
  summaries

(* ------------------------------------------------------------------ *)
(* The hot set: BFS from the configured kernel roots and from every
   Protocol.t transition field, recording the discovery chain.  An
   override is a barrier: the declared cost is what callers pay and
   the implementation is centrally justified, so the walk does not
   descend into it.                                                    *)

type hot = { chain : string list; transitional : bool }

let hot_walk ~overrides scans seeds =
  let table : (string, hot) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun (id, prefix, transitional) ->
      if Hashtbl.mem scans id then Queue.add (id, prefix, transitional) queue)
    seeds;
  while not (Queue.is_empty queue) do
    let id, chain, transitional = Queue.take queue in
    let visit =
      match Hashtbl.find_opt table id with
      | None -> true
      | Some h -> transitional && not h.transitional
    in
    if visit then begin
      let chain = chain @ [ id ] in
      Hashtbl.replace table id { chain; transitional };
      if not (List.mem_assoc id overrides) then
        match Hashtbl.find_opt scans id with
        | None -> ()
        | Some scan ->
            List.iter
              (fun s ->
                match s.kind with
                | Call fn when Hashtbl.mem scans fn.Callgraph.id ->
                    Queue.add (fn.Callgraph.id, chain, transitional) queue
                | _ -> ())
              scan.sites
    end
  done;
  table

(* Transition seeds: for every Protocol.t record in the tree, resolve
   the designated fields to call-graph functions; inline closures seed
   through their resolved callees. *)
let transition_seeds config graph units =
  let seeds = ref [] in
  let add_fn label (fn : Callgraph.fn) =
    seeds := (fn.id, [ label ], true) :: !seeds
  in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let current_module = u.modname in
      let expr self (expr : Typedtree.expression) =
        (match expr.exp_desc with
        | Texp_record { fields; _ } when Typed_lint.record_is_protocol expr.exp_type
          ->
            Array.iter
              (fun ((label : Types.label_description), def) ->
                match def with
                | Typedtree.Overridden (_, e)
                  when List.mem label.Types.lbl_name config.transition_fields -> (
                    let root_label =
                      Printf.sprintf "%s.Protocol.%s" current_module
                        label.Types.lbl_name
                    in
                    match e.Typedtree.exp_desc with
                    | Texp_ident (p, _, _) -> (
                        match Callgraph.resolve graph ~current_module p with
                        | Some fn -> add_fn root_label fn
                        | None -> ())
                    | Texp_function _ ->
                        let scan =
                          scan_function ~exempt_modules:config.exempt_modules
                            graph ~current_module e
                        in
                        List.iter
                          (fun s ->
                            match s.kind with
                            | Call fn -> add_fn root_label fn
                            | _ -> ())
                          scan.sites
                    | _ -> ())
                | _ -> ())
              fields
        | _ -> ());
        Tast_iterator.default_iterator.expr self expr
      in
      let iterator = { Tast_iterator.default_iterator with expr } in
      iterator.structure iterator u.structure)
    units;
  List.rev !seeds

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)

let pp_chain chain = String.concat " -> " chain

(* R11 fires above this threshold: O(log n) is the tolerated persistent
   map access cost; anything linear or worse is a scaling hazard. *)
let r11_threshold = Costs.Log

let report_fn ~overrides ~(hot : hot) ~report (_fn : Callgraph.fn) (scan : scan) =
  let chain = pp_chain hot.chain in
  let seen = Hashtbl.create 8 in
  let once loc f =
    let key = (loc.Location.loc_start.Lexing.pos_lnum,
               loc.Location.loc_start.Lexing.pos_cnum) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      f ()
    end
  in
  List.iter
    (fun s ->
      match s.kind with
      | Fanout name ->
          once s.loc (fun () ->
              report ~loc:s.loc Rules.R14
                (Printf.sprintf
                   "`%s` eagerly materializes one (destination, message) \
                    envelope per processor on the hot path %s; prefer a \
                    lazy/batched send, or justify the interface constraint \
                    here"
                   name chain))
      | Prim (name, info, fresh)
        when hot.transitional && info.collection <> None && not fresh
             && Costs.leq Costs.Linear info.cost ->
          once s.loc (fun () ->
              report ~loc:s.loc Rules.R13
                (Printf.sprintf
                   "`%s` re-scans a receive-set/quorum structure on every \
                    transition along %s; maintain an incremental counter in \
                    the protocol state instead (counts updated on receive, \
                    read O(1) at decision time - see Protocols.Tally)"
                   name chain))
      | Prim (name, info, _) when info.materializes && not info.amortized ->
          once s.loc (fun () ->
              report ~loc:s.loc Rules.R12
                (Printf.sprintf
                   "`%s` materializes a size-dependent structure on the hot \
                    path %s (allocation scales with the event, not a \
                    constant)"
                   name chain))
      | Prim (name, info, _) when Costs.compare info.cost r11_threshold > 0 ->
          once s.loc (fun () ->
              report ~loc:s.loc Rules.R11
                (Printf.sprintf
                   "`%s` costs %s per call on the hot path %s%s"
                   name
                   (Costs.to_string info.cost)
                   chain
                   (if s.depth > 0 then
                      Printf.sprintf " (under %d data-dependent iteration%s: %s)"
                        s.depth
                        (if s.depth = 1 then "" else "s")
                        (Costs.to_string (Costs.nest_depth s.depth info.cost))
                    else "")))
      | For_loop ->
          once s.loc (fun () ->
              report ~loc:s.loc Rules.R11
                (Printf.sprintf
                   "data-dependent `for` loop on the hot path %s costs %s per \
                    event"
                   chain
                   (Costs.to_string (Costs.nest_depth s.depth (Costs.nest Costs.Linear Costs.Const)))))
      | While_loop ->
          once s.loc (fun () ->
              report ~loc:s.loc Rules.R11
                (Printf.sprintf
                   "`while` loop with no constant bound on the hot path %s; \
                    assumed %s per event"
                   chain
                   (Costs.to_string (Costs.nest_depth s.depth (Costs.nest Costs.Linear Costs.Const)))))
      | Alloc what when s.depth > 0 ->
          once s.loc (fun () ->
              report ~loc:s.loc Rules.R12
                (Printf.sprintf
                   "%s inside a data-dependent iteration on the hot path %s \
                    allocates per element, not per event"
                   what chain))
      | Call callee -> (
          (* Super-constant callees report themselves (they are hot
             too); only an overridden callee has no body of its own to
             carry the finding, so charge the call site with the
             declared cost. *)
          match List.assoc_opt callee.Callgraph.id overrides with
          | Some declared when Costs.compare declared r11_threshold > 0 ->
              once s.loc (fun () ->
                  report ~loc:s.loc Rules.R11
                    (Printf.sprintf
                       "call to `%s` (declared %s) on the hot path %s costs %s \
                        per event"
                       callee.Callgraph.id
                       (Costs.to_string declared)
                       chain
                       (Costs.to_string (Costs.nest_depth s.depth declared))))
          | _ -> ())
      | Prim _ | Alloc _ -> ())
    scan.sites

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

let analyze_units ?(config = default_config) units =
  let graph = Callgraph.build units in
  let fns = Callgraph.fns graph in
  let scans = Hashtbl.create (List.length fns) in
  List.iter
    (fun (fn : Callgraph.fn) ->
      Hashtbl.replace scans fn.id
        (scan_function ~exempt_modules:config.exempt_modules graph
           ~current_module:fn.modname fn.body))
    fns;
  let seeds =
    List.map (fun id -> (id, [], false)) config.hot_roots
    @ transition_seeds config graph units
  in
  let hot_table = hot_walk ~overrides:config.overrides scans seeds in
  (* Per-unit suppression tables, looked up by source path. *)
  let suppressions = Hashtbl.create (List.length units) in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      match u.source with
      | Some source ->
          Hashtbl.replace suppressions u.path
            (Static_lint.suppressions_of_source source)
      | None -> ())
    units;
  let diagnostics = ref [] in
  List.iter
    (fun (fn : Callgraph.fn) ->
      match Hashtbl.find_opt hot_table fn.id with
      | None -> ()
      | Some hot ->
          if
            (not (List.mem_assoc fn.id config.overrides))
            && Rules.applies Rules.R11 (Rules.scope_of_path fn.src_path)
          then
            let report ~loc rule message =
              let start = loc.Location.loc_start in
              let line = start.Lexing.pos_lnum in
              let silenced =
                match Hashtbl.find_opt suppressions fn.src_path with
                | Some table -> Static_lint.suppressed table ~line rule
                | None -> false
              in
              if not silenced then
                diagnostics :=
                  {
                    Static_lint.path = fn.src_path;
                    line;
                    col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
                    rule;
                    message;
                  }
                  :: !diagnostics
            in
            report_fn ~overrides:config.overrides ~hot ~report fn
              (Hashtbl.find scans fn.id))
    fns;
  List.sort_uniq Static_lint.compare_diagnostic !diagnostics

let analyze ?config (load : Cmt_loader.load) = analyze_units ?config load.units

(* Per-function summaries for tests and tooling: (id, cost), sorted. *)
let summarize ?(config = default_config) units =
  let graph = Callgraph.build units in
  let fns = Callgraph.fns graph in
  let scans = Hashtbl.create (List.length fns) in
  List.iter
    (fun (fn : Callgraph.fn) ->
      Hashtbl.replace scans fn.id
        (scan_function ~exempt_modules:config.exempt_modules graph
           ~current_module:fn.modname fn.body))
    fns;
  let summaries = compute_summaries ~overrides:config.overrides scans in
  Hashtbl.fold (fun id cost acc -> (id, cost) :: acc) summaries []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* R15: recursion that escapes R11.  R11 judges each site; a recursive
   function whose every site is cheap (in-SCC calls count O(1)) still
   carries a super-logarithmic per-call summary once the component
   nests under the data-dependent iteration.  Reported by the quorum
   layer, which owns the rule, but computed here where the scans and
   summaries live. *)

let recursion_findings ?(config = default_config) units =
  let graph = Callgraph.build units in
  let fns = Callgraph.fns graph in
  let scans = Hashtbl.create (List.length fns) in
  List.iter
    (fun (fn : Callgraph.fn) ->
      Hashtbl.replace scans fn.id
        (scan_function ~exempt_modules:config.exempt_modules graph
           ~current_module:fn.modname fn.body))
    fns;
  let summaries = compute_summaries ~overrides:config.overrides scans in
  let seeds =
    List.map (fun id -> (id, [], false)) config.hot_roots
    @ transition_seeds config graph units
  in
  let hot_table = hot_walk ~overrides:config.overrides scans seeds in
  let comp_of = Hashtbl.create 64 in
  List.iter
    (fun component ->
      let recursive =
        match component with
        | [ single ] ->
            List.exists
              (fun s ->
                match s.kind with
                | Call fn -> fn.Callgraph.id = single
                | _ -> false)
              (match Hashtbl.find_opt scans single with
              | Some scan -> scan.sites
              | None -> [])
        | _ -> true
      in
      List.iter
        (fun id -> Hashtbl.replace comp_of id (component, recursive))
        component)
    (sccs scans);
  let suppressions = Hashtbl.create (List.length units) in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      match u.source with
      | Some source ->
          Hashtbl.replace suppressions u.path
            (Static_lint.suppressions_of_source source)
      | None -> ())
    units;
  let diagnostics = ref [] in
  List.iter
    (fun (fn : Callgraph.fn) ->
      match (Hashtbl.find_opt hot_table fn.id, Hashtbl.find_opt comp_of fn.id) with
      | Some hot, Some (component, true)
        when (not (List.mem_assoc fn.id config.overrides))
             && Rules.applies Rules.R15 (Rules.scope_of_path fn.src_path) ->
          let summary =
            Option.value ~default:Costs.Const
              (Hashtbl.find_opt summaries fn.id)
          in
          let body_max =
            match Hashtbl.find_opt scans fn.id with
            | None -> Costs.Const
            | Some scan ->
                List.fold_left
                  (fun acc s -> Costs.join acc (site_cost summaries component s))
                  Costs.Const scan.sites
          in
          if
            Costs.compare summary r11_threshold > 0
            && Costs.compare body_max r11_threshold <= 0
          then begin
            let start = fn.loc.Location.loc_start in
            let line = start.Lexing.pos_lnum in
            let silenced =
              match Hashtbl.find_opt suppressions fn.src_path with
              | Some table -> Static_lint.suppressed table ~line Rules.R15
              | None -> false
            in
            if not silenced then
              diagnostics :=
                {
                  Static_lint.path = fn.src_path;
                  line;
                  col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
                  rule = Rules.R15;
                  message =
                    Printf.sprintf
                      "`%s` recurses on the hot path %s: every site in its \
                       body costs at most %s, so R11 stays silent, but the \
                       recursion makes it %s per call; bound the recursion \
                       or declare an override with its justified amortized \
                       cost"
                      fn.id (pp_chain hot.chain)
                      (Costs.to_string body_max)
                      (Costs.to_string summary);
                }
                :: !diagnostics
          end
      | _ -> ())
    fns;
  List.sort_uniq Static_lint.compare_diagnostic !diagnostics

let modname_of_path path =
  Filename.basename path |> Filename.remove_extension |> String.capitalize_ascii

let check_source ?config ~path source =
  match Typed_lint.typecheck_source ~path source with
  | Error _ as e -> e
  | Ok structure ->
      let unit_info =
        {
          Cmt_loader.modname = modname_of_path path;
          path;
          structure;
          source = Some source;
        }
      in
      Ok (analyze_units ?config [ unit_info ])
