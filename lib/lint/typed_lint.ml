type config = {
  r7_subs : string list;
  pure_fields : string list;
  raise_allowlist : string list;
  message_type_names : string list;
  exempt_modules : string list;
}

let default_config =
  {
    r7_subs = [ "dsim"; "protocols"; "adversary" ];
    pure_fields =
      [ "init"; "outgoing"; "on_deliver"; "on_reset"; "output"; "observe";
        "state_core"; "message_bit"; "message_round"; "message_origin";
        "rewrite_bit" ];
    raise_allowlist = [ "Invalid_argument"; "Assert_failure" ];
    message_type_names = [ "msg"; "message"; "payload"; "vote" ];
    exempt_modules = Effects.default_exempt_modules;
  }

(* ------------------------------------------------------------------ *)
(* Type helpers.                                                       *)

let rec first_arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> first_arrow_arg t
  | _ -> None

let is_immediate ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      Path.same p Predef.path_int || Path.same p Predef.path_bool
      || Path.same p Predef.path_char || Path.same p Predef.path_unit
  | _ -> false

let type_to_string ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "?"

(* ------------------------------------------------------------------ *)
(* R7: polymorphic compare / hash at a non-immediate type.             *)

(* The unqualified pervasives always reach the typed tree as
   [Stdlib.compare] etc., so a locally-defined [compare] (path
   [Pident]) never matches. *)
let polyeq_name path =
  match Callgraph.path_components path with
  | [ "Stdlib"; (("compare" | "=" | "<>") as op) ] -> Some op
  | [ "Stdlib"; "Hashtbl"; (("hash" | "seeded_hash") as h) ]
  | [ "Hashtbl"; (("hash" | "seeded_hash") as h) ] ->
      Some ("Hashtbl." ^ h)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* R9: stream role analysis.                                           *)

let stream_op path =
  match List.rev (Callgraph.path_components path) with
  | op :: "Stream" :: _ -> (
      match op with
      | "derive" | "derive_name" | "split" -> Some (`Derive, op)
      | "bool" | "int_below" | "float" | "bits" | "bernoulli" | "shuffle"
      | "choose" | "sample_without_replacement" ->
          Some (`Draw, op)
      | _ -> None)
  | _ -> None

let first_positional_ident args =
  match args with
  | (Asttypes.Nolabel, Some (arg : Typedtree.expression)) :: _ -> (
      match arg.exp_desc with
      | Typedtree.Texp_ident (Path.Pident id, _, _) -> Some id
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* R10: catch-all over message types.                                  *)

let rec pat_catch_all : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Typedtree.Tpat_any -> true
  | Typedtree.Tpat_var _ -> true
  | Typedtree.Tpat_alias (inner, _, _) -> pat_catch_all inner
  | Typedtree.Tpat_value v ->
      pat_catch_all (v :> Typedtree.value Typedtree.general_pattern)
  | Typedtree.Tpat_or (a, b, _) -> pat_catch_all a || pat_catch_all b
  | _ -> false

let rec pat_has_construct : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Typedtree.Tpat_construct _ -> true
  | Typedtree.Tpat_alias (inner, _, _) -> pat_has_construct inner
  | Typedtree.Tpat_value v ->
      pat_has_construct (v :> Typedtree.value Typedtree.general_pattern)
  | Typedtree.Tpat_or (a, b, _) -> pat_has_construct a || pat_has_construct b
  | _ -> false

let ends_with suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix)
     = suffix

(* A "message type" for R10: a variant named like a message, declared in
   one of the scanned modules (never a stdlib/predef type, so matching
   [option] or [list] with a wildcard stays legal). *)
let message_type config ~modnames ~current_module ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      let components = Callgraph.path_components p in
      match List.rev components with
      | [] -> None
      | tyname :: rev_prefix ->
          let named =
            List.mem tyname config.message_type_names
            || ends_with "_msg" tyname || ends_with "_message" tyname
            || ends_with "_payload" tyname
          in
          let defining =
            match rev_prefix with m :: _ -> m | [] -> current_module
          in
          if named && List.mem defining (current_module :: modnames) then
            Some (String.concat "." components)
          else None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Analysis of one unit against R7/R8/R10 (R9 runs per function).      *)

type context = {
  config : config;
  graph : Callgraph.t;
  summaries : (string, Effects.finding list) Hashtbl.t;
  modnames : string list;
  report : loc:Location.t -> Rules.t -> string -> unit;
}

let strip_exp (e : Typedtree.expression) = e

let record_is_protocol (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match List.rev (Callgraph.path_components p) with
      | "t" :: "Protocol" :: _ -> true
      | _ -> false)
  | _ -> false

let protocol_name_of_fields fields =
  Array.fold_left
    (fun acc (label, def) ->
      match (label.Types.lbl_name, def) with
      | "name", Typedtree.Overridden (_, e) -> (
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) -> Some s
          | _ -> acc)
      | _ -> acc)
    None fields

let field_effects ctx ~current_module (e : Typedtree.expression) =
  let summary_of_scan (scan : Effects.scan) =
    let inherited =
      List.concat_map
        (fun ((callee : Callgraph.fn), loc) ->
          List.map
            (fun (f : Effects.finding) ->
              { f with Effects.loc; via = callee.id :: f.via })
            (Effects.of_summary ctx.summaries callee.id))
        scan.Effects.callees
    in
    scan.Effects.own @ inherited
  in
  match (strip_exp e).exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
      match Callgraph.resolve ctx.graph ~current_module p with
      | Some fn ->
          List.map
            (fun (f : Effects.finding) -> { f with Effects.via = fn.id :: f.via })
            (Effects.of_summary ctx.summaries fn.id)
      | None -> [])
  | Typedtree.Texp_function _ ->
      summary_of_scan
        (Effects.scan_function ~exempt_modules:ctx.config.exempt_modules
           ctx.graph ~current_module e)
  | _ -> []

let check_protocol_record ctx ~current_module ~fields =
  let protocol = protocol_name_of_fields fields in
  Array.iter
    (fun (label, def) ->
      match def with
      | Typedtree.Overridden (lid, e)
        when List.mem label.Types.lbl_name ctx.config.pure_fields ->
          let findings = field_effects ctx ~current_module e in
          (* One diagnostic per effect kind, allowlisted raises waived. *)
          let seen = ref [] in
          List.iter
            (fun (f : Effects.finding) ->
              let key = Effects.kind_id f.kind in
              let allowlisted =
                match f.kind with
                | Effects.Raise exn -> List.mem exn ctx.config.raise_allowlist
                | _ -> false
              in
              if (not allowlisted) && not (List.mem key !seen) then begin
                seen := key :: !seen;
                let chain =
                  match f.via with
                  | [] -> ""
                  | via -> " via " ^ String.concat " -> " via
                in
                ctx.report ~loc:lid.Location.loc Rules.R8
                  (Printf.sprintf
                     "protocol%s transition `%s` reaches %s%s; transitions must \
                      be pure up to their Prng.Stream argument"
                     (match protocol with
                     | Some n -> Printf.sprintf " %S" n
                     | None -> "")
                     label.Types.lbl_name (Effects.kind_id f.kind) chain)
              end)
            findings
      | _ -> ())
    fields

let check_cases :
    type k.
    context ->
    current_module:string ->
    scrutinee_type:Types.type_expr ->
    loc:Location.t ->
    k Typedtree.case list ->
    unit =
 fun ctx ~current_module ~scrutinee_type ~loc cases ->
  match
    message_type ctx.config ~modnames:ctx.modnames ~current_module
      scrutinee_type
  with
  | None -> ()
  | Some tyname ->
      let has_construct =
        List.exists (fun c -> pat_has_construct c.Typedtree.c_lhs) cases
      in
      let catch_all =
        List.exists
          (fun c ->
            Option.is_none c.Typedtree.c_guard && pat_catch_all c.Typedtree.c_lhs)
          cases
      in
      if has_construct && catch_all then
        ctx.report ~loc Rules.R10
          (Printf.sprintf
             "catch-all `_` branch while matching message type `%s`; spell \
              the constructors out so new messages cannot be dropped silently"
             tyname)

let unit_iterator ctx ~scope ~current_module =
  let r7_applies =
    scope.Rules.top = `Lib
    &&
    match scope.Rules.sub with
    | Some sub -> List.mem sub ctx.config.r7_subs
    | None -> false
  in
  let r10_applies = Rules.applies Rules.R10 scope in
  let r8_applies = Rules.applies Rules.R8 scope in
  let expr self (expr : Typedtree.expression) =
    (match expr.exp_desc with
    | Typedtree.Texp_ident (p, _, _) when r7_applies -> (
        match polyeq_name p with
        | Some op ->
            let flagged, shown =
              if op = "Hashtbl.hash" || op = "Hashtbl.seeded_hash" then
                (true, "")
              else
                match first_arrow_arg expr.exp_type with
                | Some arg when not (is_immediate arg) ->
                    (true, type_to_string arg)
                | Some _ -> (false, "")
                | None -> (true, "?")
            in
            if flagged then
              ctx.report ~loc:expr.exp_loc Rules.R7
                (if shown = "" then
                   Printf.sprintf
                     "`%s` is version-dependent; use a stable hash (e.g. \
                      FNV-1a in Prng.Stream.derive_name)"
                     op
                 else
                   Printf.sprintf
                     "polymorphic `%s` instantiated at non-immediate type \
                      `%s`; use a named comparator (Int.compare, \
                      String.equal, Option.is_none, ...)"
                     op shown)
        | None -> ())
    | Typedtree.Texp_match (scrut, cases, _) when r10_applies ->
        check_cases ctx ~current_module ~scrutinee_type:scrut.exp_type
          ~loc:expr.exp_loc cases
    | Typedtree.Texp_function { cases; _ } when r10_applies -> (
        match cases with
        | { Typedtree.c_lhs; _ } :: _ :: _ ->
            (* `function C1 .. | C2 ..` sugar: at least two cases, so it
               is a dispatch, not a mere parameter binding. *)
            check_cases ctx ~current_module
              ~scrutinee_type:c_lhs.Typedtree.pat_type ~loc:expr.exp_loc cases
        | _ -> ())
    | Typedtree.Texp_record { fields; _ }
      when r8_applies && record_is_protocol expr.exp_type ->
        check_protocol_record ctx ~current_module ~fields
    | _ -> ());
    Tast_iterator.default_iterator.expr self expr
  in
  { Tast_iterator.default_iterator with expr }

(* R9 runs over each named function body so the "both roles on one
   stream" judgment has a natural scope (closures included). *)
let check_stream_roles ctx (fn : Callgraph.fn) =
  let aliases = Hashtbl.create 8 in
  let rec canon key =
    match Hashtbl.find_opt aliases key with
    | Some next when next <> key -> canon next
    | _ -> key
  in
  let derives = Hashtbl.create 8 in
  let draws = Hashtbl.create 8 in
  let note table id op loc =
    let key = canon (Ident.unique_name id) in
    let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
    Hashtbl.replace table key ((Ident.name id, op, loc) :: existing)
  in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | ( Typedtree.Tpat_var (id, _),
                Typedtree.Texp_ident (Path.Pident src, _, _) ) ->
                Hashtbl.replace aliases (Ident.unique_name id)
                  (canon (Ident.unique_name src))
            | _ -> ())
          vbs
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
      -> (
        match stream_op p with
        | Some (role, op) -> (
            match first_positional_ident args with
            | Some id -> (
                match role with
                | `Derive -> note derives id op e.exp_loc
                | `Draw -> note draws id op e.exp_loc)
            | None -> ())
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let iterator = { Tast_iterator.default_iterator with expr } in
  iterator.expr iterator fn.body;
  Hashtbl.iter
    (fun key derive_uses ->
      match Hashtbl.find_opt draws key with
      | None -> ()
      | Some draw_uses ->
          let name, _, loc =
            List.nth derive_uses (List.length derive_uses - 1)
          in
          let _, draw_op, _ =
            List.nth draw_uses (List.length draw_uses - 1)
          in
          ctx.report ~loc Rules.R9
            (Printf.sprintf
               "stream `%s` is used both as a derivation parent and as a draw \
                source (`%s`) in `%s`; derived children would depend on the \
                draw schedule - fork an explicit draw stream with Stream.copy"
               name draw_op fn.id))
    derives

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

let analyze_units ?(config = default_config) units =
  let graph = Callgraph.build units in
  let summaries = Effects.summaries ~exempt_modules:config.exempt_modules graph in
  let modnames = List.map (fun (u : Cmt_loader.unit_info) -> u.modname) units in
  let diagnostics = ref [] in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let scope = Rules.scope_of_path u.path in
      let suppressions =
        match u.source with
        | Some source -> Static_lint.suppressions_of_source source
        | None -> Hashtbl.create 1
      in
      (* Applicability is the emitting rule's own business (R7 may be
         widened beyond Rules.applies via [config.r7_subs]); here we
         only honour inline suppressions. *)
      let report ~loc rule message =
        let start = loc.Location.loc_start in
        let line = start.Lexing.pos_lnum in
        if not (Static_lint.suppressed suppressions ~line rule) then
          diagnostics :=
            {
              Static_lint.path = u.path;
              line;
              col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
              rule;
              message;
            }
            :: !diagnostics
      in
      let ctx = { config; graph; summaries; modnames; report } in
      let iterator = unit_iterator ctx ~scope ~current_module:u.modname in
      iterator.structure iterator u.structure;
      if Rules.applies Rules.R9 scope then
        List.iter
          (fun (fn : Callgraph.fn) ->
            if fn.src_path = u.path then check_stream_roles ctx fn)
          (Callgraph.fns graph))
    units;
  List.sort_uniq Static_lint.compare_diagnostic !diagnostics

let analyze ?config (load : Cmt_loader.load) = analyze_units ?config load.units

(* ------------------------------------------------------------------ *)
(* In-memory typechecking: fixture tests and `lint --check FILE` need
   typed trees for sources that are not part of the dune build.        *)

let env_ready = ref false

let typecheck_source ~path source =
  if not !env_ready then begin
    Compmisc.init_path ();
    env_ready := true
  end;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          Error
            (Printf.sprintf "%s: parse error: %s" path
               (String.trim (Format.asprintf "%a" Location.print_report report)))
      | _ -> Error (Printf.sprintf "%s: parse error: %s" path (Printexc.to_string exn)))
  | ast -> (
      match Typemod.type_structure env ast with
      | structure, _, _, _, _ -> Ok structure
      | exception exn -> (
          match Location.error_of_exn exn with
          | Some (`Ok report) ->
              Error
                (Printf.sprintf "%s: type error: %s" path
                   (String.trim
                      (Format.asprintf "%a" Location.print_report report)))
          | _ ->
              Error
                (Printf.sprintf "%s: type error: %s" path
                   (Printexc.to_string exn))))

let modname_of_path path =
  Filename.basename path |> Filename.remove_extension |> String.capitalize_ascii

let check_source ?config ~path source =
  match typecheck_source ~path source with
  | Error _ as e -> e
  | Ok structure ->
      let unit_info =
        {
          Cmt_loader.modname = modname_of_path path;
          path;
          structure;
          source = Some source;
        }
      in
      Ok (analyze_units ?config [ unit_info ])
