type invariant = Fifo | Depth | Provenance | Window | Quorum

let invariant_id = function
  | Fifo -> "fifo"
  | Depth -> "depth"
  | Provenance -> "provenance"
  | Window -> "window"
  | Quorum -> "quorum"

type violation = { invariant : invariant; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s" (invariant_id v.invariant) v.detail

type config = {
  n : int;
  t : int;
  windowed : bool;
  fifo : bool;
  decision_quorum : int option;
}

type msg_info = {
  src : int;
  dst : int;
  depth : int;
  sent_window : int;
  mutable consumed : string option;  (* "delivered" / "dropped" *)
}

let check config events =
  let violations = ref [] in
  let flag invariant fmt =
    Format.kasprintf
      (fun detail -> violations := { invariant; detail } :: !violations)
      fmt
  in
  let in_range pid = pid >= 0 && pid < config.n in
  (* Message ledger: id -> endpoints, depth, window of the Sent. *)
  let ledger : (int, msg_info) Hashtbl.t = Hashtbl.create 1024 in
  (* Per-channel last delivered id, for FIFO. *)
  let last_delivered : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  (* Per-processor max delivered depth, for the depth invariant. *)
  let recv_depth = Array.make (max config.n 1) 0 in
  (* Per-processor distinct senders heard from, for the quorum check. *)
  let heard = Array.init (max config.n 1) (fun _ -> Hashtbl.create 16) in
  let decided : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let window = ref 0 in
  let resets_this_window = ref 0 in
  let consume msg_id how k =
    match Hashtbl.find_opt ledger msg_id with
    | None -> flag Provenance "%s message #%d was never sent" how msg_id
    | Some info -> (
        match info.consumed with
        | Some earlier ->
            flag Provenance "message #%d %s after already being %s" msg_id how earlier
        | None ->
            info.consumed <- Some how;
            k info)
  in
  List.iter
    (fun event ->
      match (event : Dsim.Trace.event) with
      | Sent { src; dst; msg_id; depth } ->
          if not (in_range src && in_range dst) then
            flag Provenance "message #%d has endpoints %d->%d outside 0..%d" msg_id
              src dst (config.n - 1);
          if Hashtbl.mem ledger msg_id then
            flag Provenance "message id #%d sent twice" msg_id
          else
            Hashtbl.replace ledger msg_id
              { src; dst; depth; sent_window = !window; consumed = None };
          if in_range src then
            let expected = recv_depth.(src) + 1 in
            if depth <> expected then
              flag Depth
                "message #%d from %d has depth %d, expected %d (1 + max delivered \
                 depth %d)"
                msg_id src depth expected recv_depth.(src)
      | Delivered { src; dst; msg_id; depth } ->
          consume msg_id "delivered" (fun info ->
              if info.src <> src || info.dst <> dst || info.depth <> depth then
                flag Provenance
                  "message #%d delivered as %d->%d depth %d but sent as %d->%d \
                   depth %d"
                  msg_id src dst depth info.src info.dst info.depth;
              if config.windowed && info.sent_window <> !window then
                flag Window
                  "message #%d sent in window %d but delivered in window %d"
                  msg_id info.sent_window !window);
          if config.fifo then (
            (match Hashtbl.find_opt last_delivered (src, dst) with
            | Some prev when msg_id <= prev ->
                flag Fifo
                  "channel %d->%d delivered message #%d after #%d (ids must be \
                   strictly increasing)"
                  src dst msg_id prev
            | _ -> ());
            Hashtbl.replace last_delivered (src, dst) msg_id);
          if in_range dst then begin
            if depth > recv_depth.(dst) then recv_depth.(dst) <- depth;
            Hashtbl.replace heard.(dst) src ()
          end
      | Dropped { msg_id } -> consume msg_id "dropped" (fun _ -> ())
      | Reset_done { pid } ->
          if config.windowed then begin
            incr resets_this_window;
            if !resets_this_window = config.t + 1 then
              flag Window
                "window %d performed more than t = %d resets (processor %d was \
                 reset %d-th)"
                !window config.t pid !resets_this_window
          end
      | Crashed _ -> ()
      | Decided { pid; value; _ } ->
          (match Hashtbl.find_opt decided pid with
          | Some _ -> flag Quorum "processor %d decided twice" pid
          | None -> Hashtbl.replace decided pid value);
          (match config.decision_quorum with
          | Some quorum when in_range pid ->
              let senders = Hashtbl.length heard.(pid) in
              if senders < quorum then
                flag Quorum
                  "processor %d decided %b having heard from only %d distinct \
                   senders (quorum %d)"
                  pid value senders quorum
          | _ -> ());
          Hashtbl.iter
            (fun other v ->
              if other <> pid && Bool.equal v (not value) then
                flag Quorum "processors %d and %d decided opposite values" other
                  pid)
            decided
      | Window_closed { index } ->
          if config.windowed then begin
            (* The engine increments its window counter before recording,
               so the k-th closing event carries index k (1-based). *)
            if index <> !window + 1 then
              flag Window "window closed with index %d, expected %d" index
                (!window + 1);
            window := !window + 1;
            resets_this_window := 0
          end)
    events;
  List.rev !violations

let audit ?decision_quorum ?(fifo = true) engine =
  let trace = Dsim.Engine.trace engine in
  let events = Dsim.Trace.events trace in
  match events with
  | [] ->
      if Dsim.Engine.decision_conflict engine then
        [ { invariant = Quorum;
            detail = "processors decided opposite values (agreement violated)" } ]
      else []
  | events ->
      let windowed =
        List.exists
          (function Dsim.Trace.Window_closed _ -> true | _ -> false)
          events
      in
      let config =
        { n = Dsim.Engine.n engine;
          t = Dsim.Engine.fault_bound engine;
          windowed;
          fifo;
          decision_quorum }
      in
      check config events
