(** Layer 2: the cmt-based typed & interprocedural determinism linter.

    Works on compiler [*.cmt] typed trees ({!Cmt_loader}), a call graph
    over the library ({!Callgraph}) and fixpoint effect summaries
    ({!Effects}), and enforces rules R7-R10:

    - {b R7}: [Stdlib.compare] / [=] / [<>] / [Hashtbl.hash] reached at
      a non-immediate type (anything but [int]/[bool]/[char]/[unit]) in
      the protocol-facing subtrees.  Subsumes the syntactic R3/R4
      checks: the typed view also catches the operator hidden behind a
      variable, a functor argument, or partial application.
    - {b R8}: protocol transitions (the designated fields of a
      [Protocol.t] record) must be pure up to their [Prng.Stream]
      argument — no transitive mutation of non-locally-allocated state,
      no channel IO, no raise outside the per-protocol allowlist.
    - {b R9}: stream role linearity.  [Stream.derive] snapshots its
      parent by value, so deriving {i and} drawing from the same stream
      in one function makes every derived child depend on the draw
      schedule; such streams must fork an explicit draw stream with
      [Stream.copy] first.
    - {b R10}: no catch-all [_] branch in a match over a protocol
      message/payload type — new constructors must be impossible to
      drop silently.

    Both layers share the [(* lint: allow Rn *)] suppression syntax and
    the {!Rules.applies} scoping. *)

type config = {
  r7_subs : string list;
      (** [lib/] subdirectories R7 scans (default [dsim], [protocols],
          [adversary]); widen to e.g. [stats] to cover the R4 scope. *)
  pure_fields : string list;
      (** [Protocol.t] fields whose values must be effect-free.
          Pretty-printers ([pp_message], [pp_state]) and metadata are
          deliberately absent. *)
  raise_allowlist : string list;
      (** Exception constructors a transition may raise (defaults:
          [Invalid_argument], [Assert_failure] — guard rails, not
          control flow). *)
  message_type_names : string list;
      (** Type names R10 treats as message types, besides the
          [_msg]/[_message]/[_payload] suffixes. *)
  exempt_modules : string list;
      (** Modules whose calls are never effects (default
          {!Effects.default_exempt_modules}). *)
}

val default_config : config

val analyze :
  ?config:config -> Cmt_loader.load -> Static_lint.diagnostic list
(** Run R7-R10 over every loaded unit.  Diagnostics carry root-relative
    paths, honour inline suppressions from the unit's source (when it
    could be read) and {!Rules.applies} scoping, and are sorted by
    (path, line, col, rule). *)

val analyze_units :
  ?config:config -> Cmt_loader.unit_info list -> Static_lint.diagnostic list
(** Same on an explicit unit list (used by fixture tests). *)

val record_is_protocol : Types.type_expr -> bool
(** Whether a record type is a [*.Protocol.t] — the anchor both R8 and
    the cost layer's transition hot-set seeding key on. *)

val typecheck_source :
  path:string -> string -> (Typedtree.structure, string) result
(** Parse and typecheck a standalone source in memory against a
    stdlib-only environment ([Error] carries the compiler report).
    Shared by {!check_source} and the cost layer's fixture checks. *)

val check_source :
  ?config:config ->
  path:string ->
  string ->
  (Static_lint.diagnostic list, string) result
(** Typecheck a standalone source in memory (no cmt needed; stdlib-only
    environment) and run the typed rules on it.  [path] decides rule
    scoping exactly as for on-disk files.  [Error] on parse or type
    errors — fixtures must be self-contained (declare their own
    [Stream]/[Protocol] modules). *)
