(* Symbolic threshold arithmetic over the two protocol parameters n
   (system size) and t (fault bound).

   Threshold expressions extracted from the protocol sources are small
   integer terms built from +, -, constant scaling, exact floor
   division and max/min.  The quorum obligations all have the shape

     forall n t.  (every region constraint >= 0)  =>  goal >= 0

   over the integers, and we decide that shape *exactly* — floor
   semantics included — rather than approximating over the rationals.
   Exactness matters at the region boundary: e.g. Bracha's echo quorum
   ((n + t) / 2) + 1 fits inside n - t at n = 3t + 1 only because the
   division floors.

   Decision procedure (negate: search an integer point satisfying
   region @ [goal <= -1]):
     1. eliminate Max/Min by case-splitting the system (each split adds
        the branch hypothesis and replaces the node);
     2. eliminate floor division by a residue split: substitute
        n = L*u + i, t = L*v + j for every (i, j) in [0, L)^2 with L
        the lcm of all divisors; every division then divides its
        numerator's coefficients exactly, so each constraint becomes
        affine in (u, v) with integer coefficients;
     3. decide each two-variable integer system by pairwise bound
        elimination: a v exists iff every ceil lower bound is <= every
        floor upper bound, and those pair conditions are linearized by
        a second residue split on u.

   Everything is exact; the only escape hatch is [Undecidable], raised
   for nested divisions whose composed divisor falls outside the
   residue lattice (none occur in the tree today). *)

type var = N | T

type t =
  | Const of int
  | Var of var
  | Add of t * t
  | Sub of t * t
  | Scale of int * t
  | Div of t * int  (* floor division, divisor > 0 *)
  | Max of t * t
  | Min of t * t

exception Undecidable of string

(* ------------------------------------------------------------------ *)
(* Construction helpers and evaluation.                                *)

let n_ = Var N
let t_ = Var T
let int_ k = Const k
let add a b = Add (a, b)
let sub a b = Sub (a, b)
let scale k a = Scale (k, a)

let div a d =
  if d <= 0 then invalid_arg "Symexpr.div: divisor must be positive";
  Div (a, d)

let max_ a b = Max (a, b)
let min_ a b = Min (a, b)

(* a >= b, a > b, ... as "expr >= 0" constraints. *)
let ge a b = Sub (a, b)
let gt a b = Sub (Sub (a, b), Const 1)
let le a b = ge b a
let lt a b = gt b a

(* Floor division and its ceiling twin, total over negative numerators
   (OCaml's (/) truncates toward zero). *)
let fdiv a b =
  if b <= 0 then invalid_arg "Symexpr.fdiv: divisor must be positive";
  if a >= 0 then a / b else -((-a + b - 1) / b)

let cdiv a b = -fdiv (-a) b

let rec eval ~n ~t = function
  | Const c -> c
  | Var N -> n
  | Var T -> t
  | Add (a, b) -> eval ~n ~t a + eval ~n ~t b
  | Sub (a, b) -> eval ~n ~t a - eval ~n ~t b
  | Scale (k, a) -> k * eval ~n ~t a
  | Div (a, d) -> fdiv (eval ~n ~t a) d
  | Max (a, b) -> Stdlib.max (eval ~n ~t a) (eval ~n ~t b)
  | Min (a, b) -> Stdlib.min (eval ~n ~t a) (eval ~n ~t b)

(* ------------------------------------------------------------------ *)
(* Pretty-printing: affine terms render as "2*n - 3*t + 1"; anything
   with division or max/min falls back to structural syntax.           *)

let rec as_affine = function
  | Const c -> Some (0, 0, c)
  | Var N -> Some (1, 0, 0)
  | Var T -> Some (0, 1, 0)
  | Add (x, y) -> (
      match (as_affine x, as_affine y) with
      | Some (a, b, c), Some (a', b', c') -> Some (a + a', b + b', c + c')
      | _ -> None)
  | Sub (x, y) -> (
      match (as_affine x, as_affine y) with
      | Some (a, b, c), Some (a', b', c') -> Some (a - a', b - b', c - c')
      | _ -> None)
  | Scale (k, x) -> (
      match as_affine x with
      | Some (a, b, c) -> Some (k * a, k * b, k * c)
      | None -> None)
  | Div _ | Max _ | Min _ -> None

let rec to_string e =
  match as_affine e with
  | Some (a, b, c) ->
      let term coef name acc =
        if coef = 0 then acc
        else
          let mag = abs coef in
          let core = if mag = 1 then name else Printf.sprintf "%d*%s" mag name in
          if acc = "" then (if coef < 0 then "-" ^ core else core) ^ acc
          else acc ^ (if coef < 0 then " - " else " + ") ^ core
      in
      let s = term a "n" "" in
      let s = term b "t" s in
      if c = 0 && s <> "" then s
      else if s = "" then string_of_int c
      else if c < 0 then Printf.sprintf "%s - %d" s (-c)
      else Printf.sprintf "%s + %d" s c
  | None -> (
      match e with
      | Div (a, d) -> Printf.sprintf "(%s)/%d" (to_string a) d
      | Max (a, b) -> Printf.sprintf "max(%s, %s)" (to_string a) (to_string b)
      | Min (a, b) -> Printf.sprintf "min(%s, %s)" (to_string a) (to_string b)
      | Add (a, b) -> Printf.sprintf "%s + %s" (to_string a) (to_string b)
      | Sub (a, b) -> Printf.sprintf "%s - (%s)" (to_string a) (to_string b)
      | Scale (k, a) -> Printf.sprintf "%d*(%s)" k (to_string a)
      | Const _ | Var _ -> assert false (* affine *))

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* ------------------------------------------------------------------ *)
(* Step 1: Max/Min elimination by case splitting.                      *)

let rec find_minmax e =
  match e with
  | Const _ | Var _ -> None
  | Add (a, b) | Sub (a, b) -> (
      match find_minmax a with Some m -> Some m | None -> find_minmax b)
  | Scale (_, a) | Div (a, _) -> find_minmax a
  | Max _ | Min _ -> Some e

(* Replace every occurrence physically equal to [node]. *)
let rec replace ~node ~by e =
  if e == node then by
  else
    match e with
    | Const _ | Var _ -> e
    | Add (a, b) -> Add (replace ~node ~by a, replace ~node ~by b)
    | Sub (a, b) -> Sub (replace ~node ~by a, replace ~node ~by b)
    | Scale (k, a) -> Scale (k, replace ~node ~by a)
    | Div (a, d) -> Div (replace ~node ~by a, d)
    | Max (a, b) -> Max (replace ~node ~by a, replace ~node ~by b)
    | Min (a, b) -> Min (replace ~node ~by a, replace ~node ~by b)

let expand_minmax sys =
  let budget = ref 64 in
  let rec go sys =
    let rec find = function
      | [] -> None
      | c :: rest -> (
          match find_minmax c with Some m -> Some m | None -> find rest)
    in
    match find sys with
    | None -> [ sys ]
    | Some node ->
        decr budget;
        if !budget <= 0 then
          raise (Undecidable "too many max/min case splits");
        let a, b, hyp_left, hyp_right =
          match node with
          (* max = a under a >= b; = b under b >= a + 1 *)
          | Max (a, b) -> (a, b, ge a b, gt b a)
          (* min = a under b >= a; = b under a >= b + 1 *)
          | Min (a, b) -> (a, b, ge b a, gt a b)
          | _ -> assert false
        in
        let subst by hyp =
          hyp :: List.map (fun c -> replace ~node ~by c) sys
        in
        go (subst a hyp_left) @ go (subst b hyp_right)
  in
  go sys

(* ------------------------------------------------------------------ *)
(* Step 2: residue split on the divisors' lcm; constraints -> affine.  *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

let rec collect_divisors e acc =
  match e with
  | Const _ | Var _ -> acc
  | Add (a, b) | Sub (a, b) | Max (a, b) | Min (a, b) ->
      collect_divisors a (collect_divisors b acc)
  | Scale (_, a) -> collect_divisors a acc
  | Div (a, d) -> collect_divisors a (d :: acc)

(* e as cu*u + cv*v + k under n = l*u + i, t = l*v + j. *)
let rec affine_in_class ~l ~i ~j = function
  | Const c -> (0, 0, c)
  | Var N -> (l, 0, i)
  | Var T -> (0, l, j)
  | Add (a, b) ->
      let au, av, ak = affine_in_class ~l ~i ~j a in
      let bu, bv, bk = affine_in_class ~l ~i ~j b in
      (au + bu, av + bv, ak + bk)
  | Sub (a, b) ->
      let au, av, ak = affine_in_class ~l ~i ~j a in
      let bu, bv, bk = affine_in_class ~l ~i ~j b in
      (au - bu, av - bv, ak - bk)
  | Scale (k, a) ->
      let au, av, ak = affine_in_class ~l ~i ~j a in
      (k * au, k * av, k * ak)
  | Div (a, d) ->
      let au, av, ak = affine_in_class ~l ~i ~j a in
      if au mod d = 0 && av mod d = 0 then (au / d, av / d, fdiv ak d)
      else
        raise
          (Undecidable
             "nested floor division outside the residue lattice")
  | Max _ | Min _ -> assert false (* eliminated in step 1 *)

(* ------------------------------------------------------------------ *)
(* Step 3: integer feasibility of {a*u + b*v + c >= 0}.                *)

(* One-variable system {p*w + q >= 0}: return a satisfying w. *)
let one_var_feasible constraints =
  let lo = ref None and hi = ref None in
  let ok = ref true in
  List.iter
    (fun (p, q) ->
      if p > 0 then
        let b = cdiv (-q) p in
        lo := Some (match !lo with None -> b | Some l -> Stdlib.max l b)
      else if p < 0 then
        let b = fdiv q (-p) in
        hi := Some (match !hi with None -> b | Some h -> Stdlib.min h b)
      else if q < 0 then ok := false)
    constraints;
  if not !ok then None
  else
    match (!lo, !hi) with
    | Some l, Some h -> if l <= h then Some l else None
    | Some l, None -> Some l
    | None, Some h -> Some h
    | None, None -> Some 0

let two_var_feasible constraints =
  let lowers = List.filter (fun (_, b, _) -> b > 0) constraints in
  let uppers =
    List.filter_map
      (fun (a, b, c) -> if b < 0 then Some (a, -b, c) else None)
      constraints
  in
  let pures =
    List.filter_map
      (fun (a, b, c) -> if b = 0 then Some (a, c) else None)
      constraints
  in
  (* Residue modulus for u: lcm of all v-bound denominators. *)
  let m =
    List.fold_left
      (fun acc (_, b, _) -> if b = 0 then acc else lcm acc (abs b))
      1 constraints
  in
  if m <= 0 || m > 100_000 then
    raise (Undecidable "residue modulus for variable elimination too large");
  (* For u = m*w + r, each pair (lower p, upper q) linearizes exactly:
     ceil((-(ap*u + cp))/bp) <= floor((aq*u + cq)/bq). *)
  let rec try_residue r =
    if r >= m then None
    else
      let lin = ref [] in
      List.iter
        (fun (a, c) -> lin := (a * m, (a * r) + c) :: !lin)
        pures;
      List.iter
        (fun (ap, bp, cp) ->
          List.iter
            (fun (aq, bq, cq) ->
              (* lhs = lc*w + lk, rhs = rc*w + rk; need rhs - lhs >= 0. *)
              let lc = -ap * m / bp
              and lk = cdiv ((-ap * r) - cp) bp in
              let rc = aq * m / bq
              and rk = fdiv ((aq * r) + cq) bq in
              lin := (rc - lc, rk - lk) :: !lin)
            uppers)
        lowers;
      match one_var_feasible !lin with
      | None -> try_residue (r + 1)
      | Some w ->
          let u = (m * w) + r in
          (* Reconstruct v inside [max lowers, min uppers]. *)
          let vlo =
            List.fold_left
              (fun acc (a, b, c) ->
                let bound = cdiv (-((a * u) + c)) b in
                Some (match acc with None -> bound | Some l -> Stdlib.max l bound))
              None lowers
          in
          let vhi =
            List.fold_left
              (fun acc (a, b, c) ->
                let bound = fdiv ((a * u) + c) b in
                Some (match acc with None -> bound | Some h -> Stdlib.min h bound))
              None uppers
          in
          let v =
            match (vlo, vhi) with
            | Some l, _ -> l
            | None, Some h -> h
            | None, None -> 0
          in
          Some (u, v)
  in
  try_residue 0

(* ------------------------------------------------------------------ *)
(* Witness search: a small grid first (small witnesses make readable
   messages and settle the common mutant cases instantly), then the
   exact symbolic procedure.                                           *)

let grid_witness sys =
  let sat n t = List.for_all (fun c -> eval ~n ~t c >= 0) sys in
  let found = ref None in
  (try
     for n = -4 to 60 do
       for t = -4 to 60 do
         if sat n t then begin
           found := Some (n, t);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let solve sys =
  match grid_witness sys with
  | Some w -> Some w
  | None ->
      let systems = expand_minmax sys in
      let solve_system sys =
        let l = List.fold_left (fun acc c -> collect_divisors c acc) [] sys
                |> List.fold_left lcm 1
        in
        if l > 360 then
          raise (Undecidable "divisor lcm too large for the residue split");
        let rec classes i j =
          if i >= l then None
          else if j >= l then classes (i + 1) 0
          else
            let constraints =
              List.map (affine_in_class ~l ~i ~j) sys
            in
            match two_var_feasible constraints with
            | Some (u, v) -> Some ((l * u) + i, (l * v) + j)
            | None -> classes i (j + 1)
        in
        classes 0 0
      in
      List.fold_left
        (fun acc sys -> match acc with Some _ -> acc | None -> solve_system sys)
        None systems

let feasible sys = solve sys <> None

(* ------------------------------------------------------------------ *)
(* The obligation shape.                                               *)

type verdict = Holds | Fails of { n : int; t : int } | Unknown of string

let implies ~region goal =
  (* forall points in the region, goal >= 0  <=>  no point satisfies
     region and goal <= -1  (i.e. -goal - 1 >= 0). *)
  match solve (Sub (Const (-1), goal) :: region) with
  | None -> Holds
  | Some (n, t) -> Fails { n; t }
  | exception Undecidable why -> Unknown why
