type fn = {
  id : string;
  modname : string;
  src_path : string;
  loc : Location.t;
  body : Typedtree.expression;
}

type t = { fns : (string, fn) Hashtbl.t }

(* ------------------------------------------------------------------ *)
(* Path normalization.                                                 *)

let normalize_component = Cmt_loader.normalize_modname

let rec raw_components path =
  match path with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> raw_components p @ [ s ]
  | Path.Papply (a, b) -> raw_components a @ raw_components b
  | Path.Pextra_ty (p, _) -> raw_components p

let path_components path = List.map normalize_component (raw_components path)

let path_name path = String.concat "." (path_components path)

(* "Stdlib.Hashtbl.replace" and "Hashtbl.replace" must hit the same
   primitive tables. *)
let strip_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | c -> c

let stdlib_name path = String.concat "." (strip_stdlib (path_components path))

(* ------------------------------------------------------------------ *)
(* Function collection.                                                *)

let register table ~modname ~src_path ~prefix name loc body =
  let id = String.concat "." (modname :: List.rev (name :: prefix)) in
  Hashtbl.replace table id { id; modname; src_path; loc; body }

let rec collect_structure table ~modname ~src_path ~prefix
    (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (_, { txt; _ }) ->
                  register table ~modname ~src_path ~prefix txt
                    vb.vb_expr.exp_loc vb.vb_expr
              | _ -> ())
            vbs
      | Tstr_module mb -> (
          match (mb.mb_id, mb.mb_expr.mod_desc) with
          | Some id, Tmod_structure sub ->
              collect_structure table ~modname ~src_path
                ~prefix:(Ident.name id :: prefix) sub
          | Some id, Tmod_constraint ({ mod_desc = Tmod_structure sub; _ }, _, _, _)
            ->
              collect_structure table ~modname ~src_path
                ~prefix:(Ident.name id :: prefix) sub
          | _ -> ())
      | _ -> ())
    str.str_items

let build (units : Cmt_loader.unit_info list) =
  let fns = Hashtbl.create 256 in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      collect_structure fns ~modname:u.modname ~src_path:u.path ~prefix:[]
        u.structure)
    units;
  { fns }

let find t id = Hashtbl.find_opt t.fns id

let fns t =
  Hashtbl.fold (fun _ fn acc -> fn :: acc) t.fns []
  |> List.sort (fun a b -> String.compare a.id b.id)

(* Resolve a referenced path against the table: a bare ident is a
   sibling in the same module; a dotted path is matched first verbatim,
   then by its last two components ("Tally.add" however the library
   wrapper spelled it), then as a nested module of the current unit. *)
let resolve t ~current_module path =
  let components = path_components path in
  let candidates =
    match components with
    | [] -> []
    | [ name ] -> [ current_module ^ "." ^ name ]
    | _ ->
        let joined = String.concat "." components in
        let last_two =
          match List.rev components with
          | f :: m :: _ -> [ m ^ "." ^ f ]
          | _ -> []
        in
        (joined :: last_two) @ [ current_module ^ "." ^ joined ]
  in
  List.find_map (fun id -> Hashtbl.find_opt t.fns id) candidates
