type diagnostic = {
  path : string;
  line : int;
  col : int;
  rule : Rules.t;
  message : string;
}

let compare_diagnostic a b =
  match String.compare a.path b.path with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare (Rules.id a.rule) (Rules.id b.rule)
          | c -> c)
      | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Suppression comments: (* lint: allow R3 *) covers its own line and
   the following one.                                                  *)

type suppression = All | Only of Rules.t list

(* Knuth-Morris-Pratt: one pass over the haystack, no per-position
   rescans and no substring allocation. *)
let find_substring haystack needle from =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then if from <= hl then Some (Int.max from 0) else None
  else if from > hl - nl then None
  else begin
    let fail = Array.make nl 0 in
    let k = ref 0 in
    for i = 1 to nl - 1 do
      while !k > 0 && needle.[!k] <> needle.[i] do
        k := fail.(!k - 1)
      done;
      if needle.[!k] = needle.[i] then incr k;
      fail.(i) <- !k
    done;
    let matched = ref 0 and result = ref None in
    let i = ref (Int.max from 0) in
    while !result = None && !i < hl do
      while !matched > 0 && needle.[!matched] <> haystack.[!i] do
        matched := fail.(!matched - 1)
      done;
      if needle.[!matched] = haystack.[!i] then incr matched;
      if !matched = nl then result := Some (!i - nl + 1);
      incr i
    done;
    !result
  end

let parse_suppression_line line =
  match find_substring line "lint:" 0 with
  | None -> None
  | Some at -> (
      let rest = String.sub line (at + 5) (String.length line - at - 5) in
      let rest = String.trim rest in
      if not (String.length rest >= 5 && String.sub rest 0 5 = "allow") then None
      else
        let spec = String.sub rest 5 (String.length rest - 5) in
        (* Cut at the comment terminator if present. *)
        let spec =
          match find_substring spec "*)" 0 with
          | Some stop -> String.sub spec 0 stop
          | None -> spec
        in
        let tokens =
          String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) spec)
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        if List.exists (fun t -> String.lowercase_ascii t = "all") tokens then Some All
        else
          match List.filter_map Rules.of_id tokens with
          | [] -> None
          | rules -> Some (Only rules))

let suppressions_of_source source =
  let table = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      match parse_suppression_line line with
      | None -> ()
      | Some s -> Hashtbl.replace table (i + 1) s)
    lines;
  table

let suppressed table ~line rule =
  let covers l =
    match Hashtbl.find_opt table l with
    | Some All -> true
    | Some (Only rules) -> List.mem rule rules
    | None -> false
  in
  covers line || covers (line - 1)

(* ------------------------------------------------------------------ *)
(* AST walk.                                                           *)

let ident_name expr =
  match expr.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | _ -> None

let rec strip expr =
  match expr.Parsetree.pexp_desc with
  | Parsetree.Pexp_constraint (e, _) -> strip e
  | Parsetree.Pexp_coerce (e, _, _) -> strip e
  | _ -> expr

let is_record e =
  match (strip e).Parsetree.pexp_desc with Parsetree.Pexp_record _ -> true | _ -> false

let is_construct_with_payload e =
  match (strip e).Parsetree.pexp_desc with
  | Parsetree.Pexp_construct (_, Some _) -> true
  | _ -> false

let is_field_access e =
  match (strip e).Parsetree.pexp_desc with Parsetree.Pexp_field _ -> true | _ -> false

let is_float_literal e =
  match (strip e).Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_float _) -> true
  | _ -> false

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let r1_banned name =
  starts_with "Random." name
  || starts_with "Stdlib.Random." name
  || List.mem name [ "Sys.time"; "Stdlib.Sys.time"; "Unix.gettimeofday" ]

let r2_banned name =
  List.mem name
    [ "Hashtbl.hash"; "Stdlib.Hashtbl.hash"; "Hashtbl.seeded_hash";
      "Stdlib.Hashtbl.seeded_hash" ]

let r6_banned name =
  List.exists
    (fun m -> starts_with (m ^ ".") name)
    [ "Domain"; "Stdlib.Domain"; "Atomic"; "Stdlib.Atomic"; "Thread";
      "Mutex"; "Condition"; "Semaphore" ]

let r5_banned name =
  List.mem name
    [ "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
      "print_string"; "print_endline"; "print_newline"; "print_int";
      "print_char"; "print_float"; "print_bytes"; "prerr_string";
      "prerr_endline"; "prerr_newline"; "Stdlib.print_string";
      "Stdlib.print_endline" ]
  (* The Format std_formatter helpers print just as surely as
     print_string does. *)
  || starts_with "Format.print_" name
  || starts_with "Stdlib.Format.print_" name

(* fprintf is fine against a caller-supplied formatter and banned
   against a literal ambient channel. *)
let r5_fprintf name =
  List.mem name
    [ "Printf.fprintf"; "Stdlib.Printf.fprintf"; "Format.fprintf";
      "Stdlib.Format.fprintf" ]

let r5_ambient_channel name =
  List.mem name
    [ "stdout"; "stderr"; "Stdlib.stdout"; "Stdlib.stderr";
      "Format.std_formatter"; "Format.err_formatter";
      "Stdlib.Format.std_formatter"; "Stdlib.Format.err_formatter" ]

let lint_source ?(hash_allowlist = []) ?(domain_allowlist = []) ~path source =
  let scope = Rules.scope_of_path path in
  let suppressions = suppressions_of_source source in
  let path_allowed allowlist =
    List.exists (fun fragment -> find_substring path fragment 0 <> None) allowlist
  in
  let hash_allowed = path_allowed hash_allowlist in
  let domain_allowed = path_allowed domain_allowlist in
  let diagnostics = ref [] in
  let report loc rule message =
    let start = loc.Location.loc_start in
    let line = start.Lexing.pos_lnum in
    if
      Rules.applies rule scope
      && not (suppressed suppressions ~line rule)
      && not (rule = Rules.R2 && hash_allowed)
      && not (rule = Rules.R6 && domain_allowed)
    then
      diagnostics :=
        { path; line; col = start.Lexing.pos_cnum - start.Lexing.pos_bol; rule; message }
        :: !diagnostics
  in
  let check_ident expr =
    match ident_name expr with
    | None -> ()
    | Some name ->
        let loc = expr.Parsetree.pexp_loc in
        if r1_banned name then
          report loc Rules.R1
            (Printf.sprintf "`%s` is an ambient nondeterminism source; derive from Prng.Stream instead" name);
        if r2_banned name then
          report loc Rules.R2
            (Printf.sprintf "`%s` is version-dependent; use a stable hash (e.g. FNV-1a)" name);
        if r5_banned name then
          report loc Rules.R5
            (Printf.sprintf "`%s` prints from library code; route output through Dsim.Obs / Dsim.Trace_export" name);
        if r6_banned name then
          report loc Rules.R6
            (Printf.sprintf
               "`%s` is a raw multicore primitive; route parallelism through Par_sweep.map_reduce"
               name)
  in
  let check_apply expr =
    match expr.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (f, args) -> (
        match ident_name f with
        | Some ("compare" as op) ->
            let args = List.map snd args in
            if
              List.exists
                (fun a -> is_record a || is_construct_with_payload a || is_field_access a)
                args
            then
              report expr.Parsetree.pexp_loc Rules.R3
                (Printf.sprintf
                   "bare polymorphic `%s` on record/constructor/field data; use a named comparator (Int.compare, Bool.equal, ...)"
                   op)
        | Some (("=" | "<>") as op) ->
            let args = List.map snd args in
            if List.exists (fun a -> is_record a || is_construct_with_payload a) args then
              report expr.Parsetree.pexp_loc Rules.R3
                (Printf.sprintf
                   "bare polymorphic `%s` against a record/constructor value; use a named comparator (Option.equal, Obs.estimate_is, ...)"
                   op);
            if List.exists is_float_literal args then
              report expr.Parsetree.pexp_loc Rules.R4
                (Printf.sprintf
                   "`%s` against a float literal; use Float.equal or an explicit tolerance" op)
        | Some f when r5_fprintf f -> (
            match args with
            | (_, first) :: _ -> (
                match ident_name (strip first) with
                | Some channel when r5_ambient_channel channel ->
                    report expr.Parsetree.pexp_loc Rules.R5
                      (Printf.sprintf
                         "`%s %s` prints to an ambient channel; take the formatter as an argument instead"
                         f channel)
                | _ -> ())
            | [] -> ())
        | _ -> ())
    | _ -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self expr ->
          check_ident expr;
          check_apply expr;
          Ast_iterator.default_iterator.expr self expr);
    }
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast ->
      iterator.structure iterator ast;
      Ok (List.sort compare_diagnostic !diagnostics)
  | exception exn ->
      let detail =
        match Location.error_of_exn exn with
        | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
        | _ -> Printexc.to_string exn
      in
      Error (Printf.sprintf "%s: parse error: %s" path (String.trim detail))

let lint_file ?hash_allowlist ?domain_allowlist path =
  match In_channel.with_open_bin path In_channel.input_all with
  | source -> lint_source ?hash_allowlist ?domain_allowlist ~path source
  | exception Sys_error message -> Error message
