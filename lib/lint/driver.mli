(** Filesystem walker and report rendering for the static linter. *)

type report = {
  diagnostics : Static_lint.diagnostic list;  (** sorted by (path, line, col) *)
  errors : string list;  (** unparsable / unreadable files *)
  files_scanned : int;
}

val default_dirs : string list
(** ["lib"; "bin"; "bench"; "examples"] — the trees the issue puts in
    scope. *)

val default_hash_allowlist : string list
(** Path fragments for which R2 is waived (the linter's own rule tables
    and this module's test fixtures name [Hashtbl.hash] on purpose). *)

val default_domain_allowlist : string list
(** Path fragments for which R6 is waived: [lib/core/par_sweep] — the
    one sanctioned home of [Domain]/[Atomic] — plus the linter's own
    rule tables, which spell the banned names out. *)

val scan :
  ?hash_allowlist:string list ->
  ?domain_allowlist:string list ->
  ?dirs:string list ->
  root:string ->
  unit ->
  report
(** Walk [dirs] under [root] (skipping [_build] and dot-directories),
    lint every [.ml] file, and merge the results.  Paths in the report
    are relative to [root]. *)

val render_human : Format.formatter -> report -> unit
(** "path:line:col: [Rn] message" lines plus a summary line. *)

val render_json : Format.formatter -> report -> unit
(** Machine-readable report:
    [{"files_scanned":N,"violations":[{"path":..,"line":..,"col":..,
    "rule":..,"message":..}],"errors":[..]}]. *)

val ok : report -> bool
(** True when there are neither diagnostics nor errors. *)
