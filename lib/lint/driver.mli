(** Filesystem walker, typed-layer entry point, baselines and report
    rendering (human / json / SARIF) for both lint layers. *)

type report = {
  diagnostics : Static_lint.diagnostic list;  (** sorted by (path, line, col) *)
  errors : string list;  (** unparsable / unreadable files *)
  files_scanned : int;
}

val default_dirs : string list
(** ["lib"; "bin"; "bench"; "examples"] — the trees the issue puts in
    scope. *)

val default_hash_allowlist : string list
(** Path fragments for which R2 is waived (the linter's own rule tables
    and this module's test fixtures name [Hashtbl.hash] on purpose). *)

val default_domain_allowlist : string list
(** Path fragments for which R6 is waived: [lib/core/par_sweep] — the
    one sanctioned home of [Domain]/[Atomic] — plus the linter's own
    rule tables, which spell the banned names out. *)

val scan :
  ?hash_allowlist:string list ->
  ?domain_allowlist:string list ->
  ?dirs:string list ->
  root:string ->
  unit ->
  report
(** Walk [dirs] under [root] (skipping [_build] and dot-directories),
    lint every [.ml] file, and merge the results.  Paths in the report
    are relative to [root]. *)

val scan_typed :
  ?config:Typed_lint.config -> ?dirs:string list -> root:string -> unit -> report
(** Run the typed layer (R7-R10): load every [*.cmt] under
    [root/_build/default/<dirs>] (or [root/<dirs>] when the build tree
    itself is the root, as under a dune rule) and analyze.  When no cmt
    is found the report carries a single error telling the caller to
    [dune build] first — the typed linter never silently passes on an
    unbuilt tree.  [files_scanned] counts loaded compilation units. *)

val scan_cost :
  ?config:Cost_lint.config -> ?dirs:string list -> root:string -> unit -> report
(** Run the cost layer (R11-R14) over the same [*.cmt] trees as
    {!scan_typed}; identical cmt discovery and error behaviour. *)

val scan_quorum :
  ?config:Quorum_lint.config ->
  ?dirs:string list ->
  root:string ->
  unit ->
  report
(** Run the quorum layer (R15-R18) over the same [*.cmt] trees as
    {!scan_typed}; identical cmt discovery and error behaviour. *)

(** {2 Baselines}

    A baseline file accepts known findings: [RULE<TAB>PATH<TAB>MESSAGE]
    lines, ['#'] comments.  Messages deliberately contain no line
    numbers, so baselines survive unrelated edits. *)

val baseline_key : Static_lint.diagnostic -> string * string * string
(** (rule id, path, message) — the identity a baseline entry matches. *)

val read_baseline :
  string -> ((string * string * string) list, string) result

val apply_baseline :
  (string * string * string) list -> report -> report * int
(** Drop baselined diagnostics; returns the filtered report and how
    many findings the baseline waived. *)

val render_baseline : Format.formatter -> report -> unit
(** Emit the report's diagnostics in baseline syntax (the documented
    way to seed a baseline file).  Entries are sorted by
    (rule, path, message) and deduplicated — diagnostics differing only
    in position collapse to one entry — so regenerating a baseline is
    deterministic and diff-friendly. *)

val render_human : Format.formatter -> report -> unit
(** "path:line:col: [Rn] message" lines plus a summary line. *)

val render_json : Format.formatter -> report -> unit
(** Machine-readable report:
    [{"files_scanned":N,"violations":[{"path":..,"line":..,"col":..,
    "rule":..,"message":..}],"errors":[..]}]. *)

val render_sarif : Format.formatter -> report -> unit
(** SARIF 2.1.0: one run, rule metadata for R1-R10 from {!Rules},
    results with physical locations (1-based columns), errors as tool
    execution notifications. *)

val ok : report -> bool
(** True when there are neither diagnostics nor errors. *)
