type t =
  | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10 | R11 | R12 | R13 | R14
  | R15 | R16 | R17 | R18

let all =
  [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; R12; R13; R14;
    R15; R16; R17; R18 ]

let id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"
  | R12 -> "R12"
  | R13 -> "R13"
  | R14 -> "R14"
  | R15 -> "R15"
  | R16 -> "R16"
  | R17 -> "R17"
  | R18 -> "R18"

let of_id s =
  match String.uppercase_ascii (String.trim s) with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | "R10" -> Some R10
  | "R11" -> Some R11
  | "R12" -> Some R12
  | "R13" -> Some R13
  | "R14" -> Some R14
  | "R15" -> Some R15
  | "R16" -> Some R16
  | "R17" -> Some R17
  | "R18" -> Some R18
  | _ -> None

let layer = function
  | R1 | R2 | R3 | R4 | R5 | R6 -> `Static
  | R7 | R8 | R9 | R10 -> `Typed
  | R11 | R12 | R13 | R14 -> `Cost
  | R15 | R16 | R17 | R18 -> `Quorum

let title = function
  | R1 -> "ambient nondeterminism source"
  | R2 -> "version-dependent Hashtbl.hash"
  | R3 -> "polymorphic compare on protocol data"
  | R4 -> "exact float-literal equality"
  | R5 -> "printing from library code"
  | R6 -> "multicore primitive outside the parallel sweep engine"
  | R7 -> "typed polymorphic compare on non-immediate data"
  | R8 -> "effectful protocol transition"
  | R9 -> "stream used both as derivation parent and draw source"
  | R10 -> "catch-all branch over a protocol message type"
  | R11 -> "super-constant cost on the per-event hot path"
  | R12 -> "unbounded allocation in hot code"
  | R13 -> "quorum/receive-set re-scan in a protocol transition"
  | R14 -> "eager uniform fan-out materialization"
  | R15 -> "hot recursion exceeding the cost threshold"
  | R16 -> "quorum thresholds fail the intersection arithmetic"
  | R17 -> "decision not dominated by a quorum-threshold comparison"
  | R18 -> "declared resilience bound exceeds what the thresholds support"

let describe = function
  | R1 ->
      "Random.*, Sys.time and Unix.gettimeofday draw on ambient state, so any \
       library code touching them stops being a pure function of the \
       experiment seed.  All randomness must come from Prng.Stream, all \
       timing from the caller."
  | R2 ->
      "Hashtbl.hash is explicitly unspecified across OCaml versions and \
       word sizes; feeding it into PRNG stream derivation (or anything \
       seed-adjacent) makes runs irreproducible across toolchains.  Use a \
       self-contained stable hash (e.g. FNV-1a) instead."
  | R3 ->
      "Bare polymorphic compare/(=) on records or constructor applications \
       compares whatever the in-memory representation happens to be \
       (including mutable internals and floats inside), and breaks silently \
       when a field is added.  Protocol, observation and adversary data \
       must use named, field-explicit comparators (Int.compare, \
       Bool.equal, Obs.estimate_is, ...)."
  | R4 ->
      "Exact (=) against a float literal is almost never the intended \
       predicate in the statistics and lower-bound numerics: it is \
       representation-sensitive and NaN-hostile.  Use Float.equal for \
       genuine bit-equality on sentinels, or an explicit tolerance."
  | R5 ->
      "Library code must not print: all observable output goes through \
       Dsim.Obs / Dsim.Trace_export so executions stay silent, replayable \
       and comparable.  Printing belongs to bin/, bench/ and examples/."
  | R6 ->
      "Domain, Atomic, Thread and friends introduce scheduling \
       nondeterminism the moment shared state is involved, which is \
       exactly what the bit-identical determinism contract forbids.  All \
       parallelism must route through Par_sweep's map_reduce, whose merge \
       discipline keeps results independent of scheduling; only \
       lib/core/par_sweep.ml (the linter's domain allowlist) may touch \
       the primitives directly."
  | R7 ->
      "The typed successor of R3/R4: any use of Stdlib.compare, (=), (<>) \
       or Hashtbl.hash whose instantiated argument type is not immediate \
       (int, bool, char or unit) is flagged, wherever the argument \
       syntactically comes from.  The syntactic rules only catch literal \
       record/constructor/field arguments; the typed rule sees through \
       variables, aliases and partial applications (e.g. `let compare = \
       compare' inside a Map.Make argument), which is where polymorphic \
       comparison actually hides."
  | R8 ->
      "Protocol transition functions (init, outgoing, on_deliver, \
       on_reset, output, ... wherever a Dsim.Protocol.t record is built) \
       must be pure up to their Prng.Stream argument: no transitive \
       mutation of state that was not allocated inside the transition \
       itself, no channel IO, and no raising outside the allowlist \
       (Invalid_argument / Assert_failure guards).  The effect analysis \
       follows the call graph across modules, so a Hashtbl.replace buried \
       two helpers deep is still a violation."
  | R9 ->
      "Prng.Stream values have two legitimate roles: a derivation parent \
       (Stream.derive/derive_name snapshot the parent by value, so \
       fanning out children by distinct indices is order-independent) or \
       a sequential draw source (bool/int_below/... advance the state). \
       Mixing roles on one stream makes every derived child's identity \
       depend on how many draws happened first - i.e. on scheduling - so \
       a stream that has been drawn from must not be derived from, and \
       vice versa.  Use Stream.copy to fork an explicit draw stream."
  | R10 ->
      "Matching a protocol message/payload type with a catch-all `_` (or \
       variable) branch silently drops every constructor added later: the \
       protocol keeps typechecking while discarding messages on the \
       floor.  Message dispatch must stay exhaustive by constructor so \
       that adding a message constructor is a compile-surface event."
  | R11 ->
      "Code reachable from the per-event hot set (Engine.apply_window, \
       the Mailbox core operations, window construction, and the \
       Dsim.Protocol.t transition fields) must cost O(1) per event, or \
       scaling runs to n in the thousands pay O(n) or worse per message. \
       The analyzer assigns every function an asymptotic summary over the \
       cost lattice (O(1)/O(log n)/O(n)/O(n^2)/unknown) by mapping known \
       stdlib and in-repo primitives through the interprocedural call \
       graph, with loops and higher-order iterators multiplying their \
       body's cost and recursion treated as iteration.  Any hot function \
       whose own body introduces super-constant cost is flagged at the \
       introducing site, with the hot path from the root.  Declared true \
       costs (e.g. Mailbox.add is amortized O(1) despite its growth \
       loops) live in the config's summary overrides."
  | R12 ->
      "Allocation on the hot path that scales with the event, not with a \
       constant: list cons / closures / tuples / records / arrays built \
       inside a data-dependent loop or iterator, and materializing \
       primitives (Array.to_list, Map.bindings, List.init/map/filter/ \
       append, ...) anywhere in hot code.  One constant-size record \
       update per event is fine; building an n-element list per event is \
       the GC pressure that blocks n=1000.  Amortized-growth operations \
       (Buffer.add_*, Hashtbl.add/replace, Mailbox.add) are exempt."
  | R13 ->
      "The signature quorum-counting hazard: a fold/filter/length/ \
       bindings over a message-set structure (a Map/Set/Hashtbl or list \
       that is not a fresh local allocation) inside code reachable from a \
       protocol transition.  Every delivered message that triggers such a \
       re-scan pays O(receive set) — O(n) per event, O(n^2) per quorum — \
       exactly the pattern incremental quorum counters in the protocol \
       state must replace (see Protocols.Tally and the Bracha/RBC \
       counters for the sanctioned shape: counts maintained on receive, \
       read in O(1) at decision time)."
  | R14 ->
      "Eager uniform fan-out: List.init over the system size building one \
       (destination, message) envelope per processor materializes n \
       tuples per broadcast — n^2 per all-send round — even when every \
       destination gets the same payload.  Where a lazy or batched send \
       is available, use it; where the protocol interface forces a list, \
       the justification must say so at the site."
  | R15 ->
      "The cost layer's documented blind spot, closed: a recursive \
       function whose cost comes from the recursion itself has no \
       super-constant primitive site for R11-R14 to report, so a hot \
       O(depth) scan written as a bare `let rec` sailed through.  R15 \
       flags any hot-set function in a recursive call-graph component \
       whose computed summary exceeds the hot-path threshold while every \
       non-self site in its body is within it - i.e. the recursion alone \
       pushes it over.  The finding is reported at the function header \
       (there is no introducing site); suppress there with a bound on \
       the recursion depth, or restructure to an incremental counter."
  | R16 ->
      "Quorum-intersection arithmetic, proved for every n and t rather \
       than model-checked for n <= 5: each protocol's thresholds are \
       extracted from the typed tree as symbolic expressions in n and t \
       (constant-folding through Thresholds.default/relaxed, let-aliases \
       and exact floor division) and the per-family obligations are \
       discharged over the declared resilience region - two decision \
       quorums intersect in at least t+1 correct pids, quorums of honest \
       senders are reachable (threshold <= n - t), and phase hand-off \
       inequalities (e.g. Theorem 4's n - 2t >= T1 >= T2 >= T3 + t, \
       2*T3 > n) hold.  A failure names a concrete witness (n, t) \
       inside the region where the obligation breaks."
  | R17 ->
      "No ungated decide: every transition that writes a decision (or \
       adopts a value for the next phase) must be dominated by a tally \
       comparison against one of the extracted thresholds, and that \
       threshold must not be satisfiable by the t faulty processors \
       alone (there must be no region point with t >= 1 faults where \
       threshold <= t, else the adversary can manufacture the quorum \
       single-handedly).  The structural half catches a decide moved \
       out from under its guard; the arithmetic half catches a guard \
       lowered until it is no guard at all."
  | R18 ->
      "The resilience bound a protocol registers (the model registry's \
       resilience notes, e.g. byzantine t <= (n-1)/3 for Bracha) must \
       match what its instantiated thresholds actually support: the R16 \
       obligations are re-discharged for the construction site's \
       thresholds (custom quorum hooks included) over the registered \
       region.  A registry entry that advertises more tolerance than \
       the arithmetic delivers is exactly the mismatch the !quorum \
       mutants exhibit, and it is caught here statically - the bounded \
       model checker's dynamic counterexamples are the cross-check."

type scope = {
  top : [ `Lib | `Bin | `Bench | `Examples | `Other ];
  sub : string option;
}

let scope_of_path path =
  let parts =
    String.split_on_char '/' path
    |> List.filter (fun s -> s <> "" && s <> ".")
  in
  (* Drop any absolute prefix: keep from the first recognized top dir. *)
  let rec from_top = function
    | [] -> []
    | ("lib" | "bin" | "bench" | "examples" | "test") :: _ as rest -> rest
    | _ :: rest -> from_top rest
  in
  match from_top parts with
  | "lib" :: sub :: _ :: _ -> { top = `Lib; sub = Some sub }
  | "lib" :: _ -> { top = `Lib; sub = None }
  | "bin" :: _ -> { top = `Bin; sub = None }
  | "bench" :: _ -> { top = `Bench; sub = None }
  | "examples" :: _ -> { top = `Examples; sub = None }
  | _ -> { top = `Other; sub = None }

let applies rule scope =
  match rule with
  | R1 | R5 -> scope.top = `Lib
  | R2 | R6 -> true
  | R3 | R7 | R10 -> (
      scope.top = `Lib
      &&
      match scope.sub with
      | Some ("dsim" | "protocols" | "adversary") -> true
      | _ -> false)
  | R4 -> (
      scope.top = `Lib
      &&
      match scope.sub with
      | Some ("stats" | "lowerbound") -> true
      | _ -> false)
  | R8 ->
      (* Roots are protocol-record constructions, which only exist under
         lib/; the reachable effect may live anywhere. *)
      scope.top = `Lib
  | R9 -> (
      scope.top = `Lib
      &&
      match scope.sub with
      | Some ("prng" | "lint") -> false  (* the implementation itself *)
      | _ -> true)
  | R11 | R12 | R13 | R14 | R15 ->
      (* Membership in the hot set, not the path, decides whether the
         cost rules fire; the path gate only keeps the linter itself and
         non-library trees out of scope.  R15 shares the gate: it is the
         cost layer's recursion blind spot, emitted by the quorum pass. *)
      scope.top = `Lib
      && (match scope.sub with Some "lint" -> false | _ -> true)
  | R16 | R17 | R18 -> (
      (* Threshold definitions live in lib/protocols; construction sites
         with custom quorum hooks and registered resilience bounds live
         in the model registry (lib/mcheck) and wherever else protocols
         are instantiated under lib/. *)
      scope.top = `Lib
      &&
      match scope.sub with
      | Some ("lint" | "prng" | "stats") -> false
      | _ -> true)
