(** Per-function effect summaries, computed by fixpoint over the
    {!Callgraph}.

    Rule R8 needs to know whether a protocol transition can
    {i transitively} mutate non-local state, touch a channel, or raise.
    Each function gets an intraprocedural scan (primitive mutators and
    IO by name, [Texp_setfield], [assert], [raise]/[failwith]/
    [invalid_arg]), with two deliberate refinements:

    - mutation of {b locally-allocated} state ([let t = Hashtbl.create
      8 in ... Hashtbl.replace t ...]) is not an effect — the
      allocation cannot escape into the caller's world before the
      function returns its pure result;
    - calls into the exempt modules (default [Prng.Stream]/[Splitmix])
      are not effects: the stream argument is the sanctioned source of
      randomness and its state is itself a pure function of the seed.

    Summaries then propagate along call edges until fixpoint, keeping
    one representative finding per effect kind with the call chain that
    first surfaced it ([via]).  Unknown external functions are assumed
    pure (optimistic): the analysis is a linter, not a verifier, and
    the primitive tables cover what this codebase can actually do. *)

type kind =
  | Mutation of string  (** e.g. ["Hashtbl.replace on non-local state"] *)
  | Io of string  (** e.g. ["Printf.printf"] *)
  | Raise of string  (** exception constructor name, or ["?"] *)

type finding = {
  kind : kind;
  loc : Location.t;  (** in the summarized function (a call site for inherited effects) *)
  via : string list;  (** call chain, outermost callee first *)
}

val kind_id : kind -> string
(** Stable human-readable key, also used for deduplication. *)

val pp_kind : Format.formatter -> kind -> unit

val default_exempt_modules : string list
(** [["Stream"; "Splitmix"]]. *)

val base_ident : Typedtree.expression -> Ident.t option
(** The root identifier of an expression, looking through field
    projections ([t.mailbox] -> [t]); [None] for anything else.  Shared
    with the cost layer's locality judgments. *)

type scan = {
  own : finding list;  (** intraprocedural effects, source order *)
  callees : (Callgraph.fn * Location.t) list;  (** resolved references *)
}

val scan_function :
  ?exempt_modules:string list ->
  Callgraph.t ->
  current_module:string ->
  Typedtree.expression ->
  scan
(** Scan one function body (no propagation). *)

val summaries :
  ?exempt_modules:string list ->
  Callgraph.t ->
  (string, finding list) Hashtbl.t
(** Fixpoint effect summaries for every function in the graph, keyed by
    {!Callgraph.fn.id}. *)

val of_summary : (string, finding list) Hashtbl.t -> string -> finding list
(** Lookup with [[]] for unknown ids. *)
