(** Layer 3: the cmt-based hot-path cost & allocation analyzer
    (rules R11-R14).

    Assigns every library function an asymptotic per-call summary over
    the {!Costs} lattice — known stdlib and in-repo primitives at their
    tabulated costs, data-dependent loops and higher-order iterators
    multiplying their body's cost ({!Costs.nest}), recursion treated as
    one data-dependent iteration (per Tarjan SCC) — and reports, inside
    the configured {i hot set} only:

    - {b R11}: a site whose own cost exceeds O(log n) (the tolerated
      persistent-map access cost) — a linear primitive, a
      data-dependent loop, or a call to an override declared linear.
    - {b R12}: allocation that scales with the event — materializing
      primitives ([List.map], [Map.bindings], [Array.to_list], [@],
      ...) anywhere in hot code, and list cons / tuples / records /
      arrays / closures built {i inside} a data-dependent iteration.
      Amortized-growth operations ([Buffer.add_*], [Hashtbl.replace],
      [Map.add]'s O(log n) path copy) are exempt.
    - {b R13}: a quorum/receive-set re-scan — a fold / filter / length
      / bindings over a non-fresh collection, in code reachable from a
      [Protocol.t] transition field.  The pattern incremental quorum
      counters must replace.
    - {b R14}: eager uniform fan-out — [List.init] over a
      non-constant count whose body builds per-destination envelope
      tuples.

    The hot set is every function reachable from [config.hot_roots]
    (kernel ids) or from a [Dsim.Protocol.t] transition field
    ([config.transition_fields]).  Findings land at the introducing
    site with the root-to-function hot path in the message, so inline
    [(* lint: allow Rn *)] comments are local and baseline entries
    (which carry no line numbers) survive unrelated edits.

    [config.overrides] declare the true amortized cost of in-repo
    primitives the lattice cannot see (e.g. [Mailbox.add] = O(1)); an
    override exempts the function's own body and stops the hot-set
    walk at its boundary. *)

type config = {
  hot_roots : string list;
      (** Call-graph ids ([Module.name]) seeding the hot set. *)
  transition_fields : string list;
      (** [Protocol.t] fields whose values also seed it (default
          [outgoing], [on_deliver], [on_reset], [output]). *)
  overrides : (string * Costs.t) list;
      (** fn id -> declared amortized cost; body exempt, walk barrier. *)
  exempt_modules : string list;
      (** Modules whose calls are free (default
          {!Effects.default_exempt_modules}). *)
}

val default_config : config

val analyze : ?config:config -> Cmt_loader.load -> Static_lint.diagnostic list
(** Run R11-R14 over every loaded unit.  Diagnostics carry
    root-relative paths, honour inline suppressions, and are sorted by
    (path, line, col, rule). *)

val analyze_units :
  ?config:config -> Cmt_loader.unit_info list -> Static_lint.diagnostic list
(** Same on an explicit unit list (used by fixture tests). *)

val summarize :
  ?config:config -> Cmt_loader.unit_info list -> (string * Costs.t) list
(** Per-function cost summaries, (call-graph id, cost) sorted by id —
    the fixpoint the rules are judged against, exposed for tests and
    tooling. *)

val check_source :
  ?config:config ->
  path:string ->
  string ->
  (Static_lint.diagnostic list, string) result
(** Typecheck a standalone source in memory and run the cost rules on
    it.  Fixtures declare their own hot roots via [config] (or build a
    [Protocol.t]-shaped record to exercise transition seeding). *)

val recursion_findings :
  ?config:config -> Cmt_loader.unit_info list -> Static_lint.diagnostic list
(** Rule R15 — R11's blind spot: hot recursive functions whose every
    site is at most O(log n) (in-SCC calls counted O(1)) but whose
    per-call summary exceeds the threshold once the component nests
    under the data-dependent iteration.  Owned and reported by the
    quorum layer ({!Quorum_lint}); computed here where the scans and
    summaries live.  Honours inline suppressions. *)
