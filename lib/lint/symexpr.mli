(** Exact integer decision procedure for quorum-threshold arithmetic.

    Terms are integer expressions over the two protocol parameters [n]
    (system size) and [t] (fault bound), closed under addition,
    subtraction, constant scaling, exact floor division and max/min —
    everything a threshold definition in [lib/protocols] uses.  The
    quorum obligations all take the shape

    {v forall n t. (every region constraint >= 0) => goal >= 0 v}

    over the integers, and {!implies} decides it exactly: Max/Min are
    eliminated by case splits, floor divisions by a residue split on
    the divisors' lcm (after which every division divides its
    numerator's coefficients exactly), and the resulting two-variable
    integer linear systems by pairwise bound elimination with a second
    residue split.  Floor-exactness is load-bearing: Bracha's echo
    quorum [((n + t) / 2) + 1] only fits inside [n - t] at the
    boundary [n = 3t + 1] because the division floors.

    The one escape hatch is {!Undecidable} (surfaced as {!Unknown}):
    nested divisions whose composed divisor falls outside the residue
    lattice, and degenerate blow-ups of the case-split or residue
    budgets.  None occur for the expressions in the tree. *)

type var = N | T

type t =
  | Const of int
  | Var of var
  | Add of t * t
  | Sub of t * t
  | Scale of int * t
  | Div of t * int  (** floor division; the divisor must be positive *)
  | Max of t * t
  | Min of t * t

exception Undecidable of string

(** {1 Construction} *)

val n_ : t
val t_ : t
val int_ : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t

val div : t -> int -> t
(** Floor division; raises [Invalid_argument] on a non-positive
    divisor. *)

val max_ : t -> t -> t
val min_ : t -> t -> t

(** Comparisons as ["expr >= 0"] constraints. *)

val ge : t -> t -> t
(** [ge a b] >= 0 iff a >= b. *)

val gt : t -> t -> t
val le : t -> t -> t
val lt : t -> t -> t

(** {1 Evaluation and printing} *)

val fdiv : int -> int -> int
(** Floor division on integers, total over negative numerators. *)

val cdiv : int -> int -> int
(** Ceiling division on integers. *)

val eval : n:int -> t:int -> t -> int

val as_affine : t -> (int * int * int) option
(** [Some (a, b, c)] if the term is affine [a*n + b*t + c] (no
    division or max/min). *)

val to_string : t -> string
(** Affine terms render as ["2*n - 3*t + 1"]; anything else falls back
    to structural syntax. *)

val pp : Format.formatter -> t -> unit

(** {1 Decision} *)

val solve : t list -> (int * int) option
(** An integer point [(n, t)] satisfying every constraint [>= 0], or
    [None] if the system is infeasible over the integers (a proof, not
    a search bound).  May raise {!Undecidable}. *)

val feasible : t list -> bool
(** [solve sys <> None].  May raise {!Undecidable}. *)

type verdict = Holds | Fails of { n : int; t : int } | Unknown of string

val implies : region:t list -> t -> verdict
(** [implies ~region goal]: does [goal >= 0] hold at every integer
    point where all of [region] is [>= 0]?  [Fails] carries a concrete
    witness point inside the region where the goal is violated;
    {!Undecidable} is caught and surfaced as [Unknown]. *)
