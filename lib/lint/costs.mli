(** The asymptotic cost lattice of the hot-path analyzer (R11-R14).

    Five points, ordered [Const < Log < Linear < Quadratic < Unknown]:
    the per-event cost of an operation as a function of the system size
    [n].  [Unknown] is the top element and doubles as "no static
    bound" — super-quadratic products land there, so the analysis only
    ever over-approximates. *)

type t = Const | Log | Linear | Quadratic | Unknown

val all : t list
(** In lattice order. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val leq : t -> t -> bool

val bottom : t
(** [Const]. *)

val top : t
(** [Unknown]. *)

val join : t -> t -> t
(** Least upper bound — the cost of sequential composition.
    Commutative, associative, idempotent, with [bottom] as identity
    (qcheck laws in test/test_cost_lint.ml). *)

val nest : t -> t -> t
(** [nest outer inner] bounds running [inner] once per iteration of a
    structure of [outer] size.  Commutative, monotone in both
    arguments, [Const] as identity; products that leave the lattice
    round up to [Unknown]. *)

val nest_depth : int -> t -> t
(** [nest_depth d c]: [c] paid under [d] nested data-dependent
    iterations ([nest Linear] applied [d] times). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
