(** Layer 2: the runtime trace invariant auditor.

    Replays a {!Dsim.Trace} event list and checks the structural
    invariants every legal execution of the engine must satisfy:

    - {b FIFO}: per (src, dst) channel, delivered message ids are
      strictly increasing (optional — deferral adversaries such as the
      echo chamber legitimately reorder channels);
    - {b Depth}: every [Sent] carries causal depth exactly one more
      than the maximum depth delivered to its sender so far (depths
      survive resets and crashes by construction);
    - {b Provenance}: every [Delivered]/[Dropped] id was previously
      [Sent] with the same endpoints and depth, and is consumed at most
      once;
    - {b Window}: in windowed executions (Definition 1), at most [t]
      resets occur per window and deliveries only carry messages sent
      in the same window;
    - {b Quorum}: a processor decides only after messages from at least
      [decision_quorum] distinct senders reached it, and no two
      processors decide opposite values. *)

type invariant = Fifo | Depth | Provenance | Window | Quorum

val invariant_id : invariant -> string
(** "fifo" | "depth" | "provenance" | "window" | "quorum". *)

type violation = { invariant : invariant; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type config = {
  n : int;  (** number of processors *)
  t : int;  (** fault bound (caps resets per window) *)
  windowed : bool;  (** enforce the per-window invariants *)
  fifo : bool;  (** enforce per-channel FIFO delivery *)
  decision_quorum : int option;
      (** messages from at least this many distinct senders must have
          been delivered to a processor before it decides *)
}

val check : config -> Dsim.Trace.event list -> violation list
(** Audit an event list against the configured invariants.  Violations
    come back in detection order; an empty list means the trace is
    consistent. *)

val audit :
  ?decision_quorum:int -> ?fifo:bool -> ('s, 'm) Dsim.Engine.t -> violation list
(** Audit a finished (or in-flight) engine's own trace.  [n] and [t]
    are read off the engine; the window invariants are enforced exactly
    when the trace contains [Window_closed] events.  [fifo] defaults to
    [true].  Returns [] when the engine was initialised without
    [~record_events:true] and there is nothing to audit beyond
    decision conflicts. *)
