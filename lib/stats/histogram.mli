(** Fixed-width histograms over non-negative integer observations.

    Used for survival curves: [P(windows to decision > k)] as a function
    of [k] (experiment E2's series output). *)

type t

val create : ?bucket_width:int -> unit -> t
(** Mutable histogram; [bucket_width] defaults to 1. *)

val add : t -> int -> unit
(** Record one observation; negative values are rejected. *)

val empty : unit -> t
(** A fresh empty histogram.  As the left or right operand of {!merge}
    it is an identity whatever the other side's bucket width. *)

val merge : t -> t -> t
(** A fresh histogram combining both operands' buckets; neither input
    is mutated.  Commutative and associative with {!empty} as identity
    (bucket counts are integers, so this is exact — the algebra the
    parallel sweep engine reduces with).  Raises [Invalid_argument]
    when two non-empty histograms disagree on [bucket_width]; an empty
    operand adopts the other side's width. *)

val copy : t -> t

val equal : t -> t -> bool
(** Observational equality: same count, same non-empty buckets, same
    width (widths are ignored when both are empty). *)

val count : t -> int
val bucket_count : t -> int
val bucket_width : t -> int

val buckets : t -> (int * int) list
(** [(bucket_start, occupancy)] pairs for non-empty buckets, ascending. *)

val density : t -> (int * float) list
(** [(bucket_start, fraction)] pairs for non-empty buckets, ascending. *)

val survival : t -> (int * float) list
(** [(k, P[X > k])] for every bucket boundary [k], descending
    probability.  The final entry has probability 0. *)

val quantile : t -> float -> int
(** [quantile t q] is the smallest observed value [v] such that at least
    a [q] fraction of observations are [<= v].  Requires a non-empty
    histogram and [0 <= q <= 1]. *)

val pp : Format.formatter -> t -> unit
