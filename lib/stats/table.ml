type cell = S of string | I of int | F of float | Pct of float | B of bool

type t = { title : string; columns : string list; mutable rows : cell list list }

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rows = [] }

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f ->
      if Float.is_nan f then "-"
      else if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.1f" f
      else if Float.abs f >= 1e5 || (Float.abs f < 1e-3 && not (Float.equal f 0.0)) then
        Printf.sprintf "%.3e" f
      else Printf.sprintf "%.4g" f
  | Pct p -> if Float.is_nan p then "-" else Printf.sprintf "%.1f%%" (100.0 *. p)
  | B b -> if b then "yes" else "no"

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- t.rows @ [ cells ]

let row_count t = List.length t.rows

let to_string t =
  let rows_as_strings = List.map (List.map cell_to_string) t.rows in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col) rows_as_strings)
      t.columns
  in
  let buffer = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_line cells =
    Buffer.add_string buffer "| ";
    List.iteri
      (fun i cell ->
        Buffer.add_string buffer (pad cell (List.nth widths i));
        Buffer.add_string buffer " | ")
      cells;
    (* Drop the trailing space for tidy output. *)
    let len = Buffer.length buffer in
    Buffer.truncate buffer (len - 1);
    Buffer.add_char buffer '\n'
  in
  Buffer.add_string buffer ("## " ^ t.title ^ "\n");
  render_line t.columns;
  Buffer.add_string buffer "|";
  List.iter
    (fun w -> Buffer.add_string buffer (String.make (w + 2) '-' ^ "|"))
    widths;
  Buffer.add_char buffer '\n';
  List.iter render_line rows_as_strings;
  Buffer.contents buffer

let cell_to_csv = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> if Float.is_nan f then "" else Printf.sprintf "%.10g" f
  | Pct p -> if Float.is_nan p then "" else Printf.sprintf "%.10g" p
  | B b -> string_of_bool b

let csv_escape s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer

let to_csv t =
  let line cells = String.concat "," (List.map csv_escape cells) ^ "\n" in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (line t.columns);
  List.iter
    (fun row -> Buffer.add_string buffer (line (List.map cell_to_csv row)))
    t.rows;
  Buffer.contents buffer

let pp ppf t = Format.pp_print_string ppf (to_string t)
