type fit = { slope : float; intercept : float; r_squared : float; n_points : int }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. ((x -. mx) *. (x -. mx))) 0.0 points in
  let sxy =
    List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0.0 points
  in
  let syy = List.fold_left (fun acc (_, y) -> acc +. ((y -. my) *. (y -. my))) 0.0 points in
  if Float.equal sxx 0.0 then invalid_arg "Regression.linear: all x values identical";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r_squared = if Float.equal syy 0.0 then 1.0 else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r_squared; n_points = n }

let log2 x = log x /. log 2.0

let log2_linear points =
  let usable = List.filter_map (fun (x, y) -> if y > 0.0 then Some (x, log2 y) else None) points in
  linear usable

let loglog points =
  let usable =
    List.filter_map
      (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log2 x, log2 y) else None)
      points
  in
  linear usable

let pp_fit ppf f =
  Format.fprintf ppf "slope=%.4f intercept=%.4f r2=%.4f (n=%d)" f.slope f.intercept
    f.r_squared f.n_points
