type t = {
  bucket_width : int;
  mutable buckets : (int, int) Hashtbl.t;
  mutable count : int;
}

let create ?(bucket_width = 1) () =
  if bucket_width <= 0 then invalid_arg "Histogram.create: bucket_width must be positive";
  { bucket_width; buckets = Hashtbl.create 64; count = 0 }

let add t x =
  if x < 0 then invalid_arg "Histogram.add: negative observation";
  let bucket = x / t.bucket_width * t.bucket_width in
  let current = Option.value ~default:0 (Hashtbl.find_opt t.buckets bucket) in
  Hashtbl.replace t.buckets bucket (current + 1);
  t.count <- t.count + 1

let count t = t.count
let bucket_count t = Hashtbl.length t.buckets
let bucket_width t = t.bucket_width

let sorted_buckets t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let buckets = sorted_buckets

let empty () = create ()

let copy t =
  { bucket_width = t.bucket_width; buckets = Hashtbl.copy t.buckets; count = t.count }

(* An empty side is an identity regardless of its bucket width, so
   [empty ()] merges cleanly with histograms of any width; two
   non-empty histograms must agree on the width. *)
let merge a b =
  if a.count = 0 then copy b
  else if b.count = 0 then copy a
  else if a.bucket_width <> b.bucket_width then
    invalid_arg "Histogram.merge: bucket_width mismatch"
  else begin
    let m = copy a in
    Hashtbl.iter
      (fun k v ->
        let current = Option.value ~default:0 (Hashtbl.find_opt m.buckets k) in
        Hashtbl.replace m.buckets k (current + v))
      b.buckets;
    m.count <- a.count + b.count;
    m
  end

(* Observational equality: bucket contents, not hash-table layout.
   Empty histograms are equal whatever their configured width. *)
let equal a b =
  Int.equal a.count b.count
  && (a.count = 0 || Int.equal a.bucket_width b.bucket_width)
  && List.equal
       (fun (k1, v1) (k2, v2) -> Int.equal k1 k2 && Int.equal v1 v2)
       (sorted_buckets a) (sorted_buckets b)

let density t =
  let n = float_of_int t.count in
  List.map (fun (k, v) -> (k, float_of_int v /. n)) (sorted_buckets t)

let survival t =
  let n = float_of_int t.count in
  let buckets = sorted_buckets t in
  (* Walking the buckets in ascending order, the survival value after
     bucket [k] is the mass strictly above [k]. *)
  let rec walk remaining = function
    | [] -> []
    | (k, v) :: rest ->
        let remaining = remaining - v in
        (k, float_of_int remaining /. n) :: walk remaining rest
  in
  walk t.count buckets

let quantile t q =
  if t.count = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of range";
  let target = int_of_float (ceil (q *. float_of_int t.count)) in
  let target = max target 1 in
  let rec walk seen = function
    | [] -> assert false
    | (k, v) :: rest -> if seen + v >= target then k else walk (seen + v) rest
  in
  walk 0 (sorted_buckets t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, frac) -> Format.fprintf ppf "%6d | %5.3f@," k frac)
    (density t);
  Format.fprintf ppf "@]"
