(** Streaming univariate summary statistics (Welford's algorithm).

    Used by the experiment harness to aggregate per-seed measurements
    (windows to decision, chain length, error indicators) without
    retaining the raw samples. *)

type t
(** Accumulated summary; immutable, add returns a new value. *)

val empty : t

val add : t -> float -> t
(** Fold in one observation. *)

val add_int : t -> int -> t

val of_list : float list -> t
val of_int_list : int list -> t

val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] when fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val total : t -> float

val std_error : t -> float
(** Standard error of the mean. *)

val ci95_half_width : t -> float
(** Half width of a normal-approximation 95% confidence interval for the
    mean ([1.96 * std_error]). *)

val merge : t -> t -> t
(** Combine two summaries as if all observations were folded into one.
    Floating-point: exact on counts/min/max/total, approximate (Chan et
    al.) on mean and variance, so it is commutative and associative
    only up to rounding.  Reductions that must be bit-identical for
    every chunking use {!Exact}. *)

val equal : t -> t -> bool
(** Bitwise equality of the accumulated state (counts and the exact
    float representations; NaNs compare equal to themselves). *)

val pp : Format.formatter -> t -> unit

(** Exactly mergeable summaries over integer observations.

    Accumulates raw integer moments (count, total, sum of squares,
    min, max), so {!Exact.merge} is genuinely commutative and
    associative and {!Exact.empty} a genuine identity: merging the
    per-chunk summaries of {i any} chunking of an observation sequence
    yields bit-identical state.  This is the algebra the parallel
    sweep engine ([Par_sweep]) reduces with.  Integer moments stay
    exact as long as [sum x_i^2] fits in 63 bits — comfortably true
    for every windows/steps/resets sweep in this harness. *)
module Exact : sig
  type summary := t

  type t = {
    count : int;
    total : int;
    sum_sq : int;
    min_v : int;  (** [max_int] when empty. *)
    max_v : int;  (** [min_int] when empty. *)
  }

  val empty : t
  val add : t -> int -> t
  val of_int_list : int list -> t

  val merge : t -> t -> t
  (** Commutative, associative, with {!empty} as identity — exactly. *)

  val count : t -> int
  val total : t -> int
  val equal : t -> t -> bool

  val to_summary : t -> summary
  (** Deterministic conversion: mean is [total/count], the second
      moment comes from the textbook [sum_sq - total^2/count] formula
      (clamped at 0).  Accurate here because the inputs are exact
      integers. *)

  val pp : Format.formatter -> t -> unit
end
