type t = {
  count : int;
  mean : float;
  m2 : float; (* sum of squared deviations from the running mean *)
  min_v : float;
  max_v : float;
  total : float;
}

let empty =
  { count = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; total = 0.0 }

let add t x =
  let count = t.count + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int count) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  {
    count;
    mean;
    m2;
    min_v = Float.min t.min_v x;
    max_v = Float.max t.max_v x;
    total = t.total +. x;
  }

let add_int t n = add t (float_of_int n)

let of_list xs = List.fold_left add empty xs
let of_int_list xs = List.fold_left add_int empty xs

let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.count = 0 then nan else t.min_v
let max_value t = if t.count = 0 then nan else t.max_v
let total t = t.total

let std_error t =
  if t.count < 2 then nan else stddev t /. sqrt (float_of_int t.count)

let ci95_half_width t = 1.96 *. std_error t

(* Chan et al. parallel-merge formulas. *)
let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    let count = a.count + b.count in
    let fa = float_of_int a.count and fb = float_of_int b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int count) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int count) in
    {
      count;
      mean;
      m2;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      total = a.total +. b.total;
    }

let equal a b =
  Int.equal a.count b.count
  && Float.equal a.mean b.mean
  && Float.equal a.m2 b.m2
  && Float.equal a.min_v b.min_v
  && Float.equal a.max_v b.max_v
  && Float.equal a.total b.total

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.count (mean t)
      (stddev t) t.min_v t.max_v

(* The Welford/Chan float path above is numerically gentle but its
   merge is only approximately associative: parallel reductions that
   must be bit-identical for every chunking go through [Exact]
   instead, which accumulates integer moments (closed under 63-bit
   arithmetic for every sweep this harness runs) and converts to a
   summary once, at the end. *)
module Exact = struct
  type summary = t

  type t = {
    count : int;
    total : int;
    sum_sq : int;
    min_v : int;
    max_v : int;
  }

  let empty = { count = 0; total = 0; sum_sq = 0; min_v = max_int; max_v = min_int }

  let add t x =
    {
      count = t.count + 1;
      total = t.total + x;
      sum_sq = t.sum_sq + (x * x);
      min_v = Int.min t.min_v x;
      max_v = Int.max t.max_v x;
    }

  let of_int_list xs = List.fold_left add empty xs

  let merge a b =
    if a.count = 0 then b
    else if b.count = 0 then a
    else
      {
        count = a.count + b.count;
        total = a.total + b.total;
        sum_sq = a.sum_sq + b.sum_sq;
        min_v = Int.min a.min_v b.min_v;
        max_v = Int.max a.max_v b.max_v;
      }

  let count t = t.count
  let total t = t.total

  let equal a b =
    Int.equal a.count b.count
    && Int.equal a.total b.total
    && Int.equal a.sum_sq b.sum_sq
    && Int.equal a.min_v b.min_v
    && Int.equal a.max_v b.max_v

  let to_summary t : summary =
    if t.count = 0 then
      {
        count = 0;
        mean = 0.0;
        m2 = 0.0;
        min_v = infinity;
        max_v = neg_infinity;
        total = 0.0;
      }
    else
      let c = float_of_int t.count in
      let total = float_of_int t.total in
      let mean = total /. c in
      (* sum of squared deviations from exact integer moments; clamped
         because the subtraction can land a few ulps below zero when
         the spread is tiny relative to the mean. *)
      let m2 = Float.max 0.0 (float_of_int t.sum_sq -. (total *. total /. c)) in
      {
        count = t.count;
        mean;
        m2;
        min_v = float_of_int t.min_v;
        max_v = float_of_int t.max_v;
        total;
      }

  let pp ppf t =
    if t.count = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf "n=%d total=%d sumsq=%d min=%d max=%d" t.count t.total
        t.sum_sq t.min_v t.max_v
end
