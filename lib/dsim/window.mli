(** Acceptable windows (Definition 1).

    An acceptable window is: all [n] processors take sending steps; then
    each processor [i] receives the messages just sent to it by the
    senders in a set [S_i] with [|S_i| >= n - t]; finally at most [t]
    resetting steps occur.  The strongly adaptive adversary is exactly
    the class of adversaries whose infinite executions decompose into
    adjacent disjoint acceptable windows.

    The record is [private]: construct windows through {!make} /
    {!uniform} / {!hybrid}, which normalize the pid lists and derive the
    packed views.  The [int list] fields remain the ground truth (they
    are what {!pp} prints and what out-of-range diagnostics inspect);
    [masks] and [sizes] are cached projections the engine's delivery
    loop and the validator read instead of walking lists. *)

type t = private {
  receive_sets : int list array;
      (** [receive_sets.(i)] is [S_i]: the senders whose fresh messages
          processor [i] receives this window.  Sorted, duplicate-free. *)
  resets : int list;  (** The set [R] of processors reset at window end. *)
  masks : Bitset.t array;
      (** Derived: [masks.(i)] holds the members of [receive_sets.(i)],
          for O(1) membership ({!allows}). *)
  sizes : int array;  (** Derived: [sizes.(i) = List.length receive_sets.(i)]. *)
  reset_count : int;  (** Derived: [List.length resets]. *)
}

val make : receive_sets:int list array -> resets:int list -> t
(** Normalizes (sorts, dedups) but does not validate. *)

val uniform : n:int -> ?silenced:int list -> ?resets:int list -> unit -> t
(** The window the paper's proofs use: every processor receives from the
    same set [S = [n] \ silenced], then [resets] are applied.  With no
    arguments it is the fault-free fair window. *)

val hybrid : n:int -> j:int -> s0:int list -> s1:int list -> r0:int list -> r1:int list -> t
(** Lemma 14's interpolation: processors [0..j-1] use receive set [s0]
    and [j..n-1] use [s1]; the reset set is
    [r0 ∩ {0..j-1} ∪ r1 ∩ {j..t'-1}]-style mixing, here realized as
    [r0 ∩ [0,j) ∪ r1 ∩ [j,n)]. *)

val validate : n:int -> t:int -> t -> (unit, string) result
(** Checks Definition 1: every [S_i] within range with
    [|S_i| >= n - t], and [|R| <= t].  Error messages name the
    offending processor index and pid (e.g.
    ["S_2 contains out-of-range pid 7 (n = 3)"]) so model-checker
    counterexamples and user-facing diagnostics are actionable. *)

val receive_set : t -> int -> int list

val allows : t -> dst:int -> src:int -> bool
(** [allows w ~dst ~src] iff [src >= 0] and [src ∈ S_dst] — O(1),
    total in [src].  A negative pid answers [false] even when an
    unvalidated window stores one in [S_dst]: it can never name a
    sender, which is exactly how the delivery loop always treated it.
    Raises [Invalid_argument] when [dst] is outside the window's arity,
    matching {!receive_set}. *)

val is_fault_free : t -> n:int -> bool
val pp : Format.formatter -> t -> unit
