(** Acceptable windows (Definition 1).

    An acceptable window is: all [n] processors take sending steps; then
    each processor [i] receives the messages just sent to it by the
    senders in a set [S_i] with [|S_i| >= n - t]; finally at most [t]
    resetting steps occur.  The strongly adaptive adversary is exactly
    the class of adversaries whose infinite executions decompose into
    adjacent disjoint acceptable windows.

    {b Representation vs semantics.}  {!Bitset.t} masks are the ground
    truth: a uniform window stores one shared mask (O(n / word-size)
    words, not n copies), a per-processor window one mask per slot, and
    pids outside the packable range [0, {!mask_clamp}) ride in sorted
    side lists so behaviour stays exact at any pid.  The classic
    [int list array] view is a lazily-projected, memoized accessor
    ({!to_lists}) consumed only by {!pp}, {!validate} error paths and
    tests — {!allows}, {!receive_set_size} and the engine's delivery
    loop never materialize a list.  Construct windows through {!make} /
    {!uniform} / {!hybrid} / {!of_masks}, which normalize the pid lists
    and derive the packed form. *)

type t

val mask_clamp : int
(** Pids at or above this bound (or below 0) are never packed into a
    mask; they are tracked exactly in side lists.  Exposed so tests can
    probe the boundary. *)

val make : receive_sets:int list array -> resets:int list -> t
(** Normalizes (sorts, dedups) but does not validate.  The normalized
    lists are memoized, so {!to_lists} on a made window is free. *)

val uniform : n:int -> ?silenced:int list -> ?resets:int list -> unit -> t
(** The window the paper's proofs use: every processor receives from the
    same set [S = [n] \ silenced], then [resets] are applied.  With no
    arguments it is the fault-free fair window.  O(n / word-size)
    words — one shared mask, no per-processor arrays. *)

val hybrid : n:int -> j:int -> s0:int list -> s1:int list -> r0:int list -> r1:int list -> t
(** Lemma 14's interpolation: processors [0..j-1] use receive set [s0]
    and [j..n-1] use [s1]; the reset set is
    [r0 ∩ {0..j-1} ∪ r1 ∩ {j..t'-1}]-style mixing, here realized as
    [r0 ∩ [0,j) ∪ r1 ∩ [j,n)].  The two halves share their masks and
    projected lists physically. *)

val of_masks : resets:int list -> Bitset.t array -> t
(** Per-processor window straight from masks: slot [i] receives from
    exactly the members of [masks.(i)] — no intermediate pid lists (the
    model checker's menu builds through this).  The window takes
    ownership of the masks; callers must not mutate them afterwards. *)

val validate : n:int -> t:int -> t -> (unit, string) result
(** Checks Definition 1: every [S_i] within range with
    [|S_i| >= n - t], and [|R| <= t].  The in-range check is a mask
    popcount against the declared size; only the error path walks the
    projected list to name the offending pid (e.g.
    ["S_2 contains out-of-range pid 7 (n = 3)"]) so model-checker
    counterexamples and user-facing diagnostics stay actionable. *)

val arity : t -> int
(** Number of receive-set slots (the [n] the window was built for). *)

val resets : t -> int list
(** The set [R] of processors reset at window end.  Sorted, duplicate-free. *)

val reset_count : t -> int

val receive_set : t -> int -> int list
(** [S_i], sorted and duplicate-free — projects (and memoizes) the list
    view on first use. *)

val to_lists : t -> int list array
(** The full projected receive-set view, memoized; slots that share a
    mask share the projected list.  Callers must not mutate the array
    or its lists. *)

val receive_set_size : t -> int -> int
(** [|S_i|] — O(1), off the cached size, no projection. *)

val uniform_mask : t -> Bitset.t option
(** The single shared receive mask when this window is
    uniform-represented with every member packed (no out-of-clamp
    pids); [None] otherwise.  [Engine.apply_windows] keys its batching
    on this: two windows with equal uniform masks and no resets apply
    identically. *)

val allows : t -> dst:int -> src:int -> bool
(** [allows w ~dst ~src] iff [src >= 0] and [src ∈ S_dst] — O(1),
    total in [src].  A negative pid answers [false] even when an
    unvalidated window stores one in [S_dst]: it can never name a
    sender, which is exactly how the delivery loop always treated it.
    Raises [Invalid_argument] when [dst] is outside the window's arity,
    matching {!receive_set}. *)

val is_fault_free : t -> n:int -> bool
val pp : Format.formatter -> t -> unit
