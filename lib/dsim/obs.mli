(** Protocol-agnostic observation of a processor's state.

    The full-information adversary of the paper reads the complete
    internal state of every processor.  Protocol implementations expose
    the decision-relevant part of their state through this record so
    that adversary strategies can be written once and reused across
    protocols (e.g. the balancing adversary only needs each processor's
    current estimate and round). *)

type t = {
  id : int;  (** Processor identity in [0, n). *)
  round : int;  (** Internal round number; [-1] when unknown (just reset). *)
  estimate : bool option;  (** Current preference bit [x_p], if defined. *)
  output : bool option;  (** The write-once output bit; [None] is the paper's ⊥. *)
  input : bool;  (** The immutable input bit. *)
  resets : int;  (** How many times this processor has been reset. *)
  phase : int;  (** Protocol-internal sub-round phase (0 when unused). *)
}

val make :
  id:int ->
  round:int ->
  estimate:bool option ->
  output:bool option ->
  input:bool ->
  resets:int ->
  phase:int ->
  t

val decided : t -> bool

val estimate_is : t -> bool -> bool
(** [estimate_is o v] is true when the estimate is defined and equals
    [v].  Named comparator so adversary code avoids polymorphic
    equality on observation data (lint rule R3). *)

val pp : Format.formatter -> t -> unit
