(** The fine-grained steps of Section 2's execution model.

    An execution is a sequence of these, chosen by the adversary.  The
    three step kinds of the strongly adaptive model (sending, receiving,
    resetting) are joined by the crash and corruption steps needed for
    the classical models of Section 5 and the Byzantine baseline. *)

type 'm send =
  | Unicast of int * 'm  (** One envelope to one destination. *)
  | Broadcast of 'm
      (** One envelope to every processor [0 .. n-1].  The engine
          reserves [n] consecutive message ids (id = first + dst) and
          stores a single payload; per-destination envelopes are
          materialized lazily at delivery time, so a uniform send is
          O(1) at emission regardless of [n]. *)

type 'm t =
  | Send of int
      (** Processor places its complete outgoing response in the buffer.
          A second consecutive [Send] with no intervening delivery or
          reset is a no-op, as the model requires. *)
  | Deliver of int  (** Deliver the buffered message with this id. *)
  | Drop of int
      (** Remove a buffered message without delivering it.  Legal for
          the resetting adversary (messages of reset processors) and for
          the crash adversary (messages to crashed processors). *)
  | Reset of int  (** Erase a processor's memory (resetting failure). *)
  | Crash of int  (** Permanently stop a processor (crash failure). *)
  | Corrupt of int * 'm
      (** Byzantine corruption: rewrite buffered message [id] in place. *)

val send_count : n:int -> 'm send list -> int
(** Number of envelopes the engine will place in the buffer for these
    sends: unicasts count 1, broadcasts count [n]. *)

val expand : n:int -> 'm send list -> (int * 'm) list
(** Materialize the per-destination [(dst, payload)] pairs, in the
    exact order the engine assigns message ids (broadcasts expand to
    dst [0 .. n-1] ascending).  O(total envelopes) — for analysis and
    tests, not the engine's hot path. *)

val pp_send :
  (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm send -> unit

val pp : (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
