(* Fixed-capacity sets of small non-negative ints, packed into an int
   array (Sys.int_size bits per word).  The kernel uses these for
   receive-set membership in the window-application hot loop: [mem] is
   two loads and a shift, [cardinal] is a SWAR popcount per word. *)

type t = { capacity : int; words : int array }

let bits = Sys.int_size

let create ~capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make ((capacity + bits - 1) / bits) 0 }

let capacity t = t.capacity
let copy t = { capacity = t.capacity; words = Array.copy t.words }

let full ~capacity =
  if capacity < 0 then invalid_arg "Bitset.full: negative capacity";
  let t = { capacity; words = Array.make ((capacity + bits - 1) / bits) 0 } in
  for i = 0 to Array.length t.words - 1 do
    let hi = min bits (capacity - (i * bits)) in
    t.words.(i) <- (if hi >= bits then -1 else (1 lsl hi) - 1)
  done;
  t

let mem t i =
  i >= 0 && i < t.capacity
  && (t.words.(i / bits) lsr (i mod bits)) land 1 = 1

let add t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset.add: out of range";
  t.words.(i / bits) <- t.words.(i / bits) lor (1 lsl (i mod bits))

let remove t i =
  if i >= 0 && i < t.capacity then
    t.words.(i / bits) <- t.words.(i / bits) land lnot (1 lsl (i mod bits))

(* Smallest member >= [i], or -1.  One masked load for the first word,
   then whole-word skips: O(capacity / word-size) worst case, O(1) on
   the dense sets the mailbox's broadcast table iterates. *)
let next_from t i =
  let i = max i 0 in
  if i >= t.capacity then -1
  else begin
    let nwords = Array.length t.words in
    let w = ref (i / bits) in
    let word = ref (t.words.(!w) land lnot ((1 lsl (i mod bits)) - 1)) in
    while !word = 0 && !w < nwords - 1 do
      incr w;
      word := t.words.(!w)
    done;
    if !word = 0 then -1
    else begin
      let b = ref (!w * bits) and m = ref !word in
      while !m land 1 = 0 do
        m := !m lsr 1;
        incr b
      done;
      !b
    end
  end

let of_list ~capacity l =
  let t = create ~capacity in
  List.iter (fun i -> if i >= 0 && i < capacity then add t i) l;
  t

let of_int_mask ~capacity m =
  if capacity < 0 || capacity > bits then
    invalid_arg "Bitset.of_int_mask: capacity out of range";
  if m < 0 then invalid_arg "Bitset.of_int_mask: negative mask";
  let t = create ~capacity in
  if capacity > 0 then
    t.words.(0) <- m land (if capacity >= bits then -1 else (1 lsl capacity) - 1);
  t

(* Same members, capacities free to differ: word-wise compare over the
   shared prefix, then the longer tail must be all-zero. *)
let equal a b =
  a == b
  ||
  let wa = a.words and wb = b.words in
  let la = Array.length wa and lb = Array.length wb in
  let shared = min la lb in
  let ok = ref true in
  for i = 0 to shared - 1 do
    if wa.(i) <> wb.(i) then ok := false
  done;
  let longer = if la > lb then wa else wb in
  for i = shared to Array.length longer - 1 do
    if longer.(i) <> 0 then ok := false
  done;
  !ok

(* Popcount of one word: Kernighan's clear-lowest-set-bit loop, one
   iteration per set bit.  (The byte-parallel SWAR trick is unsound on
   OCaml's 63-bit ints, and counts are off the per-delivery hot path.) *)
let popcount_word w =
  let w = ref w and acc = ref 0 in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr acc
  done;
  !acc

let cardinal t =
  let acc = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    acc := !acc + popcount_word t.words.(i)
  done;
  !acc

(* |t ∩ [0, limit)| — O(limit / word-size); the window validator uses
   this to detect out-of-range pids without walking the stored list. *)
let cardinal_below t limit =
  let limit = min (max limit 0) t.capacity in
  let full_words = limit / bits in
  let acc = ref 0 in
  for i = 0 to full_words - 1 do
    acc := !acc + popcount_word t.words.(i)
  done;
  let rem = limit mod bits in
  if rem > 0 then
    acc := !acc + popcount_word (t.words.(full_words) land ((1 lsl rem) - 1));
  !acc

let to_list t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
