(** First-class protocol descriptions.

    An algorithm in the paper's sense (Section 2) is a family of
    distributions on (new state, outgoing messages) indexed by (state,
    received message).  We realize it as a record of pure functions over
    an immutable state type ['s] and message type ['m]:

    - receiving steps ({!field-on_deliver}) are the only randomized
      transitions, matching the model;
    - sending steps ({!field-outgoing}) drain a deterministic outbox
      accumulated by previous transitions, so that a sending step is a
      "complete response to prior events" and a repeated send is a
      no-op;
    - resets ({!field-on_reset}) erase everything except the input bit,
      the output bit, the identity and the reset counter. *)

type props = {
  forgetful : bool;
      (** Declared: messages depend only on the input bit plus messages
          and randomness since the previous sending event (Def. 15). *)
  fully_communicative : bool;
      (** Declared: receiving the latest messages from [n - t]
          processors triggers a send to all [n] (Def. 16). *)
  crash_resilience : int -> int;
      (** Largest [t] tolerated against crash failures at a given [n]
          ([0] when the protocol targets another model). *)
  byzantine_resilience : int -> int;
  reset_resilience : int -> int;
      (** Largest per-window reset budget tolerated (strongly adaptive
          model); [0] when resets are not supported. *)
}

type ('s, 'm) t = {
  name : string;
  init : n:int -> t:int -> id:int -> input:bool -> 's;
      (** Initial state; must leave round-1 messages in the outbox. *)
  outgoing : 's -> 's * 'm Step.send list;
      (** Drain the outbox: returns the flushed state and the sends to
          place in the buffer — [Step.Unicast (dst, m)] for a single
          recipient, [Step.Broadcast m] for all [n] (stored once and
          expanded lazily by the engine, so a uniform send is O(1) to
          emit).  Must be idempotent: flushing a flushed state returns
          no messages. *)
  on_deliver : 's -> src:int -> 'm -> Prng.Stream.t -> 's;
      (** Receiving step; the single randomized transition. *)
  on_reset : 's -> 's;
      (** Resetting failure.  Keeps input, output, identity, and must
          increment the reset counter reported by {!field-observe}. *)
  output : 's -> bool option;  (** The write-once output bit. *)
  observe : 's -> Obs.t;  (** Full-information view for adversaries. *)
  message_bit : 'm -> bool option;
      (** The vote a message carries, when it carries one; lets generic
          balancing adversaries count 0s and 1s in flight. *)
  message_round : 'm -> int option;
  message_origin : 'm -> int option;
      (** The processor whose vote this message carries, when it is not
          the sender: an echo or ready in reliable broadcast relays the
          *origin*'s vote.  [None] means "the sender is the origin"
          (the common case; consumers fall back to the envelope's
          source).  Lets view-splitting adversaries defer a vote
          wherever it travels. *)
  rewrite_bit : 'm -> bool -> 'm option;
      (** Byzantine hook: the same message with its vote replaced;
          [None] when the message carries no rewritable vote. *)
  state_core : 's -> string;
      (** Canonical serialization of the full local state (identity,
          memory, counters).  Configurations are compared coordinate-
          wise on these for the Hamming-distance machinery. *)
  props : props;
  pp_message : Format.formatter -> 'm -> unit;
  pp_state : Format.formatter -> 's -> unit;
}

val default_props : props
(** Conservative defaults: not forgetful, not fully communicative, zero
    resilience everywhere. *)

val observe_default :
  id:int -> ?round:int -> ?estimate:bool option -> ?output:bool option ->
  ?input:bool -> ?resets:int -> ?phase:int -> unit -> Obs.t
(** Convenience constructor used by protocol implementations. *)
