(** The message buffer of the asynchronous system.

    Sent messages sit here until the adversary schedules their delivery
    (or drops them, when it is entitled to).  Iteration order is always
    ascending message id, so executions are fully deterministic.

    Internally a growable slot array indexed by message id (the engine
    issues ids densely, so probes are O(1)) threaded with
    per-destination intrusive queues; the list-returning accessors are
    derived views built in a single pass. *)

type 'm t

val create : unit -> 'm t
val copy : 'm t -> 'm t

val add : 'm t -> 'm Envelope.t -> unit
(** Ids must be unique; violating this raises [Invalid_argument]. *)

val take : 'm t -> int -> 'm Envelope.t option
(** Remove and return the envelope with the given id. *)

val find : 'm t -> int -> 'm Envelope.t option

val mem : 'm t -> int -> bool
(** [mem t id] iff a message with this id is pending — O(1). *)

val replace_payload : 'm t -> int -> 'm -> bool
(** Byzantine corruption hook: rewrite a pending message in place.
    Returns [false] when no such message is pending. *)

val size : 'm t -> int
val is_empty : 'm t -> bool

val pending : 'm t -> 'm Envelope.t list
(** All pending envelopes, ascending id. *)

val pending_for : 'm t -> dst:int -> 'm Envelope.t list
val pending_from : 'm t -> src:int -> 'm Envelope.t list
val pending_ids : 'm t -> int list

val filter_ids : 'm t -> ('m Envelope.t -> bool) -> int list
(** Ids of pending envelopes satisfying the predicate, ascending. *)

val iter_for : 'm t -> dst:int -> ('m Envelope.t -> unit) -> unit
(** Visit the pending envelopes addressed to [dst] in ascending-id
    order, allocation-free.  The callback may {!take} (or {!mem},
    {!find}, {!replace_payload}) the envelope it is visiting — the
    engine's delivery loop does — but must not {!add} to this mailbox
    while the iteration runs. *)
