(** The message buffer of the asynchronous system.

    Sent messages sit here until the adversary schedules their delivery
    (or drops them, when it is entitled to).  Iteration order is always
    ascending message id, so executions are fully deterministic.

    Internally an arena: struct-of-arrays storage indexed by message id
    (the engine issues ids densely, so probes are O(1)) threaded with
    per-destination intrusive queues, plus a broadcast table that keeps
    each uniform send as a single shared entry (payload + one pending
    bit per destination) and materializes per-destination envelopes
    lazily; the list-returning accessors are derived views built in a
    single ascending-id merge of the two stores. *)

type 'm t

val create : unit -> 'm t
val copy : 'm t -> 'm t

val add : 'm t -> 'm Envelope.t -> unit
(** Ids must be unique; violating this raises [Invalid_argument]. *)

val add_unicast :
  'm t ->
  id:int ->
  src:int ->
  dst:int ->
  payload:'m ->
  depth:int ->
  sent_at_step:int ->
  sent_in_window:int ->
  unit
(** [add] without materializing an intermediate {!Envelope.t} record:
    the engine's send path writes the fields straight into the arena's
    parallel arrays.  Same id-uniqueness contract as [add]. *)

val add_broadcast :
  'm t ->
  first:int ->
  count:int ->
  src:int ->
  payload:'m ->
  depth:int ->
  sent_at_step:int ->
  sent_in_window:int ->
  unit
(** Store a uniform send to destinations [0 .. count-1] as one shared
    entry occupying ids [first .. first + count - 1], destination [dst]
    owning id [first + dst] — the id order an eager per-destination
    expansion would have produced.  O(count / word-size): the only
    per-destination state is one pending bit.  The id range must be
    fresh (beyond every id ever stored); [Invalid_argument] otherwise.
    Destinations become visible to [take]/[find]/[mem]/[iter_for]
    exactly as if [count] envelopes had been added individually. *)

val take : 'm t -> int -> 'm Envelope.t option
(** Remove and return the envelope with the given id. *)

val find : 'm t -> int -> 'm Envelope.t option

val mem : 'm t -> int -> bool
(** [mem t id] iff a message with this id is pending — O(1). *)

val replace_payload : 'm t -> int -> 'm -> bool
(** Byzantine corruption hook: rewrite a pending message in place.
    Returns [false] when no such message is pending.  Corrupting one
    destination of a broadcast splits that destination out of the
    shared entry (same id, new payload); the others keep the original
    payload. *)

val size : 'm t -> int
val is_empty : 'm t -> bool

val pending : 'm t -> 'm Envelope.t list
(** All pending envelopes, ascending id. *)

val pending_for : 'm t -> dst:int -> 'm Envelope.t list
val pending_from : 'm t -> src:int -> 'm Envelope.t list
val pending_ids : 'm t -> int list

val filter_ids : 'm t -> ('m Envelope.t -> bool) -> int list
(** Ids of pending envelopes satisfying the predicate, ascending. *)

val iter_for : 'm t -> dst:int -> ('m Envelope.t -> unit) -> unit
(** Visit the pending envelopes addressed to [dst] in ascending-id
    order (arena queue merged with the broadcast table's contributions
    for [dst]).  The callback may {!take} (or {!mem}, {!find},
    {!replace_payload}) the envelope it is visiting — the engine's
    delivery loop does — but must not {!add} to this mailbox while the
    iteration runs. *)

val drain_for :
  'm t ->
  dst:int ->
  from:int ->
  til:int ->
  allow:(int -> bool) ->
  ('m Envelope.t -> unit) ->
  unit
(** {!iter_for} fused with removal: visit the pending envelopes
    addressed to [dst] in ascending-id order, and for each with id in
    [\[from, til)] whose source passes [allow], remove it from the
    store and then invoke the callback.  Envelopes outside the range or
    not allowed stay pending and are skipped.  One merge walk instead
    of an iteration plus per-envelope {!take} re-probes — the engine's
    batched uniform-window sweep delivers through this.  The callback
    must not {!add}.  Raises [Invalid_argument] on a negative [dst]. *)

val iter_ids_in_range : 'm t -> from:int -> til:int -> (int -> unit) -> unit
(** Visit the pending ids in [\[from, til)] ascending.  The callback
    may {!take} the visited id (the engine's drop sweep does) but must
    not {!add}.  Cost: the occupied arena span intersected with the
    range plus the live broadcast entries overlapping it — after a
    full-delivery window both are empty and the walk is O(1). *)
