type 'm send = Unicast of int * 'm | Broadcast of 'm

type 'm t =
  | Send of int
  | Deliver of int
  | Drop of int
  | Reset of int
  | Crash of int
  | Corrupt of int * 'm

let send_count ~n sends =
  List.fold_left
    (fun acc s -> acc + match s with Unicast _ -> 1 | Broadcast _ -> n)
    0 sends

let expand ~n sends =
  List.concat_map
    (function
      | Unicast (dst, m) -> [ (dst, m) ]
      | Broadcast m -> List.init n (fun dst -> (dst, m)))
    sends

let pp_send pp_payload ppf = function
  | Unicast (dst, m) -> Format.fprintf ppf "p%d<={%a}" dst pp_payload m
  | Broadcast m -> Format.fprintf ppf "*<={%a}" pp_payload m

let pp pp_payload ppf = function
  | Send p -> Format.fprintf ppf "send(p%d)" p
  | Deliver id -> Format.fprintf ppf "deliver(#%d)" id
  | Drop id -> Format.fprintf ppf "drop(#%d)" id
  | Reset p -> Format.fprintf ppf "reset(p%d)" p
  | Crash p -> Format.fprintf ppf "crash(p%d)" p
  | Corrupt (id, m) -> Format.fprintf ppf "corrupt(#%d, %a)" id pp_payload m
