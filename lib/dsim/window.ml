type t = { receive_sets : int list array; resets : int list }

let normalize xs = List.sort_uniq Int.compare xs

let make ~receive_sets ~resets =
  { receive_sets = Array.map normalize receive_sets; resets = normalize resets }

let all_pids n = List.init n (fun i -> i)

let uniform ~n ?(silenced = []) ?(resets = []) () =
  let silenced = normalize silenced in
  let s = List.filter (fun p -> not (List.mem p silenced)) (all_pids n) in
  { receive_sets = Array.make n s; resets = normalize resets }

let hybrid ~n ~j ~s0 ~s1 ~r0 ~r1 =
  let s0 = normalize s0 and s1 = normalize s1 in
  let receive_sets = Array.init n (fun i -> if i < j then s0 else s1) in
  let resets =
    normalize (List.filter (fun p -> p < j) r0 @ List.filter (fun p -> p >= j) r1)
  in
  { receive_sets; resets }

let validate ~n ~t w =
  let in_range p = p >= 0 && p < n in
  let check_set i s =
    if List.exists (fun p -> not (in_range p)) s then
      Error (Printf.sprintf "S_%d contains an out-of-range pid" i)
    else if List.length s < n - t then
      Error (Printf.sprintf "S_%d has %d senders; need >= n - t = %d" i (List.length s) (n - t))
    else Ok ()
  in
  if Array.length w.receive_sets <> n then
    Error (Printf.sprintf "window has %d receive sets; need %d" (Array.length w.receive_sets) n)
  else if List.length w.resets > t then
    Error (Printf.sprintf "window resets %d processors; at most t = %d allowed" (List.length w.resets) t)
  else if List.exists (fun p -> not (in_range p)) w.resets then
    Error "reset set contains an out-of-range pid"
  else
    let rec check i =
      if i >= n then Ok ()
      else
        match check_set i w.receive_sets.(i) with
        | Error _ as e -> e
        | Ok () -> check (i + 1)
    in
    check 0

let receive_set w i = w.receive_sets.(i)

let is_fault_free w ~n =
  List.length w.resets = 0
  && Array.for_all (fun s -> List.length s = n) w.receive_sets

let pp ppf w =
  let pp_list ppf l =
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Format.pp_print_int) l
  in
  Format.fprintf ppf "@[<v>window: resets=%a@," pp_list w.resets;
  Array.iteri (fun i s -> Format.fprintf ppf "  S_%d=%a@," i pp_list s) w.receive_sets;
  Format.fprintf ppf "@]"
