(* Pids at or above this bound are never packed into a mask (it caps
   mask allocation when a window mentions an absurd pid); out-of-mask
   pids live in the sorted [extra] lists, so behaviour stays exact at
   any pid while masks stay small. *)
let mask_clamp = 0x10000

(* Masks are the ground truth.  A uniform window stores ONE shared mask
   (plus the out-of-mask tail), not n copies — construction is
   O(n / word-size + |extra|) words.  Per-processor windows keep one
   mask/extra/size triple per slot; [hybrid] shares the two halves'
   masks and extras physically.  The [int list array] view of the
   receive sets is a lazily-projected, memoized accessor ([to_lists]):
   only pretty-printers, validation error paths and tests read it. *)
type body =
  | Uniform of { mask : Bitset.t; size : int; extra : int list }
      (* every slot shares [mask] ∪ [extra]; [extra] holds the members
         at or above [mask_clamp] (a uniform window cannot name a
         negative pid), ascending *)
  | Per of { masks : Bitset.t array; extras : int list array; sizes : int array }
      (* [extras.(i)] holds the members of S_i outside the mask range
         (negative or >= [mask_clamp]), ascending *)

type t = {
  arity : int;
  body : body;
  resets : int list;
  reset_count : int;
  mutable lists : int list array option;
      (* memoized projection; writing it is benign (idempotent, derived
         purely from [body]) *)
}

let normalize xs = List.sort_uniq Int.compare xs

let mask_of_set s =
  let capacity =
    List.fold_left
      (fun acc p -> if p >= 0 && p < mask_clamp then max acc (p + 1) else acc)
      0 s
  in
  Bitset.of_list ~capacity s

let extra_of_set s = List.filter (fun p -> p < 0 || p >= mask_clamp) s

(* Shared constructor: [sets]/[resets] must already be normalized.  The
   normalized lists are in hand, so memoize the projection eagerly —
   [make] keeps its old cost and [to_lists] is free on made windows. *)
let build ~sets ~resets =
  {
    arity = Array.length sets;
    body =
      Per
        {
          masks = Array.map mask_of_set sets;
          extras = Array.map extra_of_set sets;
          sizes = Array.map List.length sets;
        };
    resets;
    reset_count = List.length resets;
    lists = Some sets;
  }

let make ~receive_sets ~resets =
  build ~sets:(Array.map normalize receive_sets) ~resets:(normalize resets)

let uniform ~n ?(silenced = []) ?(resets = []) () =
  let silenced = normalize silenced in
  let mask = Bitset.full ~capacity:(min n mask_clamp) in
  (* Count members by counting the removals that actually landed, so
     sizing is O(|silenced|) instead of a mask popcount. *)
  let removed =
    List.fold_left
      (fun acc p ->
        if Bitset.mem mask p then begin
          Bitset.remove mask p;
          acc + 1
        end
        else acc)
      0 silenced
  in
  (* Members past the mask range ([mask_clamp, n)) keep exact list
     semantics through the shared extra tail. *)
  let extra =
    if n <= mask_clamp then []
    else
      List.filter
        (fun p -> not (List.mem p silenced))
        (List.init (n - mask_clamp) (fun i -> mask_clamp + i))
  in
  let resets = normalize resets in
  {
    arity = n;
    body =
      Uniform
        { mask; size = min n mask_clamp - removed + List.length extra; extra };
    resets;
    reset_count = List.length resets;
    lists = None;
  }

let hybrid ~n ~j ~s0 ~s1 ~r0 ~r1 =
  let s0 = normalize s0 and s1 = normalize s1 in
  let m0 = mask_of_set s0 and m1 = mask_of_set s1 in
  let e0 = extra_of_set s0 and e1 = extra_of_set s1 in
  let z0 = List.length s0 and z1 = List.length s1 in
  let resets =
    normalize (List.filter (fun p -> p < j) r0 @ List.filter (fun p -> p >= j) r1)
  in
  {
    arity = n;
    body =
      Per
        {
          masks = Array.init n (fun i -> if i < j then m0 else m1);
          extras = Array.init n (fun i -> if i < j then e0 else e1);
          sizes = Array.init n (fun i -> if i < j then z0 else z1);
        };
    resets;
    reset_count = List.length resets;
    lists = None;
  }

let of_masks ~resets masks =
  let n = Array.length masks in
  let resets = normalize resets in
  {
    arity = n;
    body =
      Per
        {
          masks;
          extras = Array.make n [];
          sizes = Array.map Bitset.cardinal masks;
        };
    resets;
    reset_count = List.length resets;
    lists = None;
  }

(* Project the receive sets back to sorted lists and memoize.  Slots
   sharing a mask physically (uniform, hybrid) share the projected list
   too, so projection is O(total distinct members), not O(n * members). *)
let to_lists w =
  match w.lists with
  | Some ls -> ls
  | None ->
      let with_extra base extra =
        match extra with
        | [] -> base
        | extra ->
            let neg, hi = List.partition (fun p -> p < 0) extra in
            neg @ base @ hi
      in
      let ls =
        match w.body with
        | Uniform { mask; extra; _ } ->
            Array.make w.arity (with_extra (Bitset.to_list mask) extra)
        | Per { masks; extras; _ } ->
            let cached = ref None in
            Array.init w.arity (fun i ->
                let base =
                  match !cached with
                  | Some (m, l) when m == masks.(i) -> l
                  | _ ->
                      let l = Bitset.to_list masks.(i) in
                      cached := Some (masks.(i), l);
                      l
                in
                with_extra base extras.(i))
      in
      w.lists <- Some ls;
      ls

let arity w = w.arity
let resets w = w.resets
let reset_count w = w.reset_count
let receive_set w i = (to_lists w).(i)

let check_slot w i =
  if i < 0 || i >= w.arity then invalid_arg "index out of bounds"

let receive_set_size w i =
  match w.body with
  | Uniform { size; _ } ->
      check_slot w i;
      size
  | Per { sizes; _ } -> sizes.(i)

let uniform_mask w =
  match w.body with
  | Uniform { mask; extra = []; _ } -> Some mask
  | Uniform _ | Per _ -> None

(* True iff S_i mentions a pid outside [0, n).  With the cached size and
   mask this is a popcount, not a list walk: the mask holds exactly the
   non-negative in-clamp members, so the set is clean iff all [size]
   members land in the mask below [n].  Past the clamp only the extra
   tail can offend. *)
let slot_out_of_range ~n ~mask ~extra ~size =
  if n <= mask_clamp then size <> Bitset.cardinal_below mask n
  else List.exists (fun p -> p < 0 || p >= n) extra

let validate ~n ~t w =
  let in_range p = p >= 0 && p < n in
  (* Error paths only: recover the actual offending pid by a list walk
     over the projection so diagnostics name it (the hot-path check
     stays a popcount). *)
  let first_out_of_range ps = List.find_opt (fun p -> not (in_range p)) ps in
  let slot_error i ~mask ~extra ~size =
    if slot_out_of_range ~n ~mask ~extra ~size then
      let p = Option.get (first_out_of_range (to_lists w).(i)) in
      Some
        (Printf.sprintf "S_%d contains out-of-range pid %d (n = %d)" i p n)
    else if size < n - t then
      Some
        (Printf.sprintf "S_%d has %d senders; need >= n - t = %d" i size (n - t))
    else None
  in
  if w.arity <> n then
    Error (Printf.sprintf "window has %d receive sets; need %d" w.arity n)
  else if w.reset_count > t then
    Error (Printf.sprintf "window resets %d processors; at most t = %d allowed" w.reset_count t)
  else
    match first_out_of_range w.resets with
    | Some p ->
        Error
          (Printf.sprintf "reset set contains out-of-range pid %d (n = %d)" p n)
    | None -> (
        match w.body with
        | Uniform { mask; extra; size } ->
            (* All slots share one set: checking slot 0 checks them all,
               and slot 0 is the first offender when any is. *)
            if n = 0 then Ok ()
            else (
              match slot_error 0 ~mask ~extra ~size with
              | Some e -> Error e
              | None -> Ok ())
        | Per { masks; extras; sizes } ->
            let rec check i =
              if i >= n then Ok ()
              else
                match
                  slot_error i ~mask:masks.(i) ~extra:extras.(i) ~size:sizes.(i)
                with
                | Some e -> Error e
                | None -> check (i + 1)
            in
            check 0)

let allows w ~dst ~src =
  match w.body with
  | Uniform { mask; extra; _ } ->
      check_slot w dst;
      if src < mask_clamp then Bitset.mem mask src else List.mem src extra
  | Per { masks; extras; _ } ->
      (* Negative src falls into the mask branch and [Bitset.mem]
         answers false there — deliberately: a stored negative pid can
         never be a sender (the old delivery loop's flag array gave the
         same answer). *)
      if src < mask_clamp then Bitset.mem masks.(dst) src
      else List.mem src extras.(dst)

let is_fault_free w ~n =
  w.reset_count = 0
  &&
  match w.body with
  | Uniform { size; _ } -> w.arity = 0 || size = n
  | Per { sizes; _ } -> Array.for_all (fun size -> size = n) sizes

let pp ppf w =
  let pp_list ppf l =
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Format.pp_print_int) l
  in
  Format.fprintf ppf "@[<v>window: resets=%a@," pp_list w.resets;
  Array.iteri (fun i s -> Format.fprintf ppf "  S_%d=%a@," i pp_list s) (to_lists w);
  Format.fprintf ppf "@]"
