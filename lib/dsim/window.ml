(* Pids at or above this bound are never packed into a mask (it caps
   mask allocation when a window mentions an absurd pid); [allows] and
   [validate] fall back to the stored lists past it, so behaviour stays
   exact at any pid. *)
let mask_clamp = 0x10000

type t = {
  receive_sets : int list array;
  resets : int list;
  masks : Bitset.t array;
  sizes : int array;
  reset_count : int;
}

let normalize xs = List.sort_uniq Int.compare xs

let mask_of_set s =
  let capacity =
    List.fold_left
      (fun acc p -> if p >= 0 && p < mask_clamp then max acc (p + 1) else acc)
      0 s
  in
  Bitset.of_list ~capacity s

(* Shared constructor: [receive_sets]/[resets] must already be
   normalized; masks and cached sizes are derived here so every
   published window carries them. *)
let build ~receive_sets ~resets =
  {
    receive_sets;
    resets;
    masks = Array.map mask_of_set receive_sets;
    sizes = Array.map List.length receive_sets;
    reset_count = List.length resets;
  }

let make ~receive_sets ~resets =
  build ~receive_sets:(Array.map normalize receive_sets)
    ~resets:(normalize resets)

let all_pids n = List.init n (fun i -> i)

let uniform ~n ?(silenced = []) ?(resets = []) () =
  let silenced = normalize silenced in
  let s = List.filter (fun p -> not (List.mem p silenced)) (all_pids n) in
  (* Every processor shares one receive set, so share one mask too. *)
  let mask = mask_of_set s in
  {
    receive_sets = Array.make n s;
    resets = normalize resets;
    masks = Array.make n mask;
    sizes = Array.make n (List.length s);
    reset_count = List.length resets;
  }

let hybrid ~n ~j ~s0 ~s1 ~r0 ~r1 =
  let s0 = normalize s0 and s1 = normalize s1 in
  let receive_sets = Array.init n (fun i -> if i < j then s0 else s1) in
  let resets =
    normalize (List.filter (fun p -> p < j) r0 @ List.filter (fun p -> p >= j) r1)
  in
  build ~receive_sets ~resets

(* True iff [receive_sets.(i)] mentions a pid outside [0, n).  With the
   cached size and mask this is a popcount, not a list walk: the mask
   holds exactly the non-negative in-clamp members, so the set is clean
   iff all [sizes.(i)] members land in the mask below [n]. *)
let has_out_of_range w i ~n =
  if n <= mask_clamp then w.sizes.(i) <> Bitset.cardinal_below w.masks.(i) n
  else List.exists (fun p -> p < 0 || p >= n) w.receive_sets.(i)

let validate ~n ~t w =
  let in_range p = p >= 0 && p < n in
  (* Error paths only: recover the actual offending pid by a list walk
     so diagnostics name it (the hot-path check stays a popcount). *)
  let first_out_of_range ps =
    List.find_opt (fun p -> not (in_range p)) ps
  in
  let check_set i =
    if has_out_of_range w i ~n then
      let p = Option.get (first_out_of_range w.receive_sets.(i)) in
      Error
        (Printf.sprintf "S_%d contains out-of-range pid %d (n = %d)" i p n)
    else if w.sizes.(i) < n - t then
      Error
        (Printf.sprintf "S_%d has %d senders; need >= n - t = %d" i w.sizes.(i)
           (n - t))
    else Ok ()
  in
  if Array.length w.receive_sets <> n then
    Error (Printf.sprintf "window has %d receive sets; need %d" (Array.length w.receive_sets) n)
  else if w.reset_count > t then
    Error (Printf.sprintf "window resets %d processors; at most t = %d allowed" w.reset_count t)
  else
    match first_out_of_range w.resets with
    | Some p ->
        Error
          (Printf.sprintf "reset set contains out-of-range pid %d (n = %d)" p n)
    | None ->
    let rec check i =
      if i >= n then Ok ()
      else
        match check_set i with
        | Error _ as e -> e
        | Ok () -> check (i + 1)
    in
    check 0

let receive_set w i = w.receive_sets.(i)

let allows w ~dst ~src =
  if src < mask_clamp then Bitset.mem w.masks.(dst) src
  else List.mem src w.receive_sets.(dst)

let is_fault_free w ~n =
  w.reset_count = 0 && Array.for_all (fun size -> size = n) w.sizes

let pp ppf w =
  let pp_list ppf l =
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Format.pp_print_int) l
  in
  Format.fprintf ppf "@[<v>window: resets=%a@," pp_list w.resets;
  Array.iteri (fun i s -> Format.fprintf ppf "  S_%d=%a@," i pp_list s) w.receive_sets;
  Format.fprintf ppf "@]"
