type event =
  | Sent of { src : int; dst : int; msg_id : int; depth : int }
  | Delivered of { src : int; dst : int; msg_id : int; depth : int }
  | Dropped of { msg_id : int }
  | Reset_done of { pid : int }
  | Crashed of { pid : int }
  | Decided of { pid : int; value : bool; step : int; window : int; chain_depth : int }
  | Window_closed of { index : int }

type sink =
  | Memory
  | Ring of int
  | Chunks of { emit : string -> unit; chunk_bytes : int }

let default_chunk_bytes = 65536

let chunks ?(chunk_bytes = default_chunk_bytes) emit =
  if chunk_bytes <= 0 then invalid_arg "Trace.chunks: chunk_bytes must be positive";
  Chunks { emit; chunk_bytes }

let to_buffer ?chunk_bytes buffer = chunks ?chunk_bytes (Buffer.add_string buffer)
let to_channel ?chunk_bytes oc = chunks ?chunk_bytes (output_string oc)

(* Retained event storage behind the sink.  [Mem] is the historical
   unbounded list; [Ringbuf] keeps the last k events in a circular
   buffer; [Stream] renders each event into a scratch buffer flushed to
   the consumer in chunks, so multi-million-event runs keep O(chunk)
   live heap. *)
type store =
  | Mem of { mutable events_rev : event list }
  | Ringbuf of { slots : event array; mutable next : int; mutable stored : int }
  | Stream of { scratch : Buffer.t; chunk_bytes : int; emit : string -> unit }

type t = {
  record_events : bool;
  store : store;
  render_buf : Buffer.t;
      (* per-event render scratch for the non-stream stores: events are
         rendered once to feed the incremental fingerprint *)
  mutable hash : int64;  (* FNV-1a over the rendered event text *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable resets : int;
  mutable crashes : int;
  mutable windows_closed : int;
  mutable decisions_rev : (int * bool * int * int * int) list;
}

(* FNV-1a, same constants as Prng.Stream.derive_name: stable across
   OCaml versions and word sizes, and incremental — hashing a run
   event-by-event gives the same digest whether the events were
   retained in memory or streamed out, which is what lets the streamed
   sink prove bit-identity without holding the run in the heap. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let store_of_sink = function
  | Memory -> Mem { events_rev = [] }
  | Ring capacity ->
      if capacity < 0 then invalid_arg "Trace.create: negative ring capacity";
      Ringbuf
        {
          slots = Array.make capacity (Window_closed { index = 0 });
          next = 0;
          stored = 0;
        }
  | Chunks { emit; chunk_bytes } ->
      Stream { scratch = Buffer.create (min chunk_bytes 4096); chunk_bytes; emit }

let create ?(sink = Memory) ~record_events () =
  {
    record_events;
    store = store_of_sink sink;
    render_buf = Buffer.create 64;
    hash = fnv_offset;
    sent = 0;
    delivered = 0;
    dropped = 0;
    resets = 0;
    crashes = 0;
    windows_closed = 0;
    decisions_rev = [];
  }

let copy t =
  {
    record_events = t.record_events;
    store =
      (match t.store with
      | Mem m -> Mem { events_rev = m.events_rev }
      | Ringbuf r -> Ringbuf { r with slots = Array.copy r.slots }
      | Stream s ->
          (* The copy keeps its own scratch but shares the downstream
             consumer: interleaving is on the caller.  Lookahead forks
             record no events, so this path only runs when a streamed
             trace is copied explicitly. *)
          let scratch = Buffer.create (Buffer.length s.scratch + 64) in
          Buffer.add_buffer scratch s.scratch;
          Stream { s with scratch })
    ;
    render_buf = Buffer.create 64;
    hash = t.hash;
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    resets = t.resets;
    crashes = t.crashes;
    windows_closed = t.windows_closed;
    decisions_rev = t.decisions_rev;
  }

let recording_events t = t.record_events

(* One line per event, identical text to [pp_event] plus a newline:
   the rendered stream is what the chunked sink emits and what the
   incremental fingerprint hashes, for every store. *)
let render b = function
  | Sent { src; dst; msg_id; depth } ->
      Printf.bprintf b "sent #%d %d->%d depth=%d\n" msg_id src dst depth
  | Delivered { src; dst; msg_id; depth } ->
      Printf.bprintf b "delivered #%d %d->%d depth=%d\n" msg_id src dst depth
  | Dropped { msg_id } -> Printf.bprintf b "dropped #%d\n" msg_id
  | Reset_done { pid } -> Printf.bprintf b "reset p%d\n" pid
  | Crashed { pid } -> Printf.bprintf b "crashed p%d\n" pid
  | Decided { pid; value; step; window; chain_depth } ->
      Printf.bprintf b "decided p%d=%d at step %d window %d chain %d\n" pid
        (if value then 1 else 0)
        step window chain_depth
  | Window_closed { index } -> Printf.bprintf b "window %d closed\n" index

let hash_range t b ~from ~til =
  let h = ref t.hash in
  for i = from to til - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Buffer.nth b i)))) fnv_prime
  done;
  t.hash <- !h

let flush t =
  match t.store with
  | Mem _ | Ringbuf _ -> ()
  | Stream s ->
      if Buffer.length s.scratch > 0 then begin
        s.emit (Buffer.contents s.scratch);
        Buffer.clear s.scratch
      end

(* Only reached when [record_events] is on, so the per-delivery hot
   path of plain sweeps never renders or hashes anything. *)
let note_event t event =
  match t.store with
  | Mem m ->
      m.events_rev <- event :: m.events_rev;
      Buffer.clear t.render_buf;
      render t.render_buf event;
      hash_range t t.render_buf ~from:0 ~til:(Buffer.length t.render_buf)
  | Ringbuf r ->
      let capacity = Array.length r.slots in
      if capacity > 0 then begin
        r.slots.(r.next) <- event;
        r.next <- (r.next + 1) mod capacity;
        r.stored <- min (r.stored + 1) capacity
      end;
      Buffer.clear t.render_buf;
      render t.render_buf event;
      hash_range t t.render_buf ~from:0 ~til:(Buffer.length t.render_buf)
  | Stream s ->
      let before = Buffer.length s.scratch in
      render s.scratch event;
      hash_range t s.scratch ~from:before ~til:(Buffer.length s.scratch);
      if Buffer.length s.scratch >= s.chunk_bytes then flush t

let record t event =
  (match event with
  | Sent _ -> t.sent <- t.sent + 1
  | Delivered _ -> t.delivered <- t.delivered + 1
  | Dropped _ -> t.dropped <- t.dropped + 1
  | Reset_done _ -> t.resets <- t.resets + 1
  | Crashed _ -> t.crashes <- t.crashes + 1
  | Window_closed _ -> t.windows_closed <- t.windows_closed + 1
  | Decided { pid; value; step; window; chain_depth } ->
      t.decisions_rev <- (pid, value, step, window, chain_depth) :: t.decisions_rev);
  if t.record_events then note_event t event

(* Bulk accounting for a lazily-expanded broadcast: the engine reserves
   ids [first .. first + count - 1] (id = first + dst) in one step, so
   the counter bumps once by [count]; the per-destination [Sent] events
   are only materialized when the trace keeps event lists at all. *)
let record_broadcast t ~src ~first ~count ~depth =
  t.sent <- t.sent + count;
  if t.record_events then
    for dst = 0 to count - 1 do
      note_event t (Sent { src; dst; msg_id = first + dst; depth })
    done

(* Bulk accounting for a fused run of windows: counter-only, so it is
   incompatible with event recording (the engine's batched path falls
   back to window-at-a-time application whenever events are kept). *)
let record_windows_closed t ~count =
  if count < 0 then invalid_arg "Trace.record_windows_closed: negative count";
  if t.record_events then
    invalid_arg "Trace.record_windows_closed: event recording is on";
  t.windows_closed <- t.windows_closed + count

let events t =
  match t.store with
  | Mem m -> List.rev m.events_rev
  | Ringbuf r ->
      let capacity = Array.length r.slots in
      let start = (r.next - r.stored + (2 * capacity)) mod (max capacity 1) in
      List.init r.stored (fun i -> r.slots.((start + i) mod capacity))
  | Stream _ -> []

let events_fingerprint t = Printf.sprintf "%016Lx" t.hash

let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let resets t = t.resets
let crashes t = t.crashes
let windows_closed t = t.windows_closed
let decisions t = List.rev t.decisions_rev

let first_decision t =
  match List.rev t.decisions_rev with [] -> None | d :: _ -> Some d

let pp_event ppf = function
  | Sent { src; dst; msg_id; depth } ->
      Format.fprintf ppf "sent #%d %d->%d depth=%d" msg_id src dst depth
  | Delivered { src; dst; msg_id; depth } ->
      Format.fprintf ppf "delivered #%d %d->%d depth=%d" msg_id src dst depth
  | Dropped { msg_id } -> Format.fprintf ppf "dropped #%d" msg_id
  | Reset_done { pid } -> Format.fprintf ppf "reset p%d" pid
  | Crashed { pid } -> Format.fprintf ppf "crashed p%d" pid
  | Decided { pid; value; step; window; chain_depth } ->
      Format.fprintf ppf "decided p%d=%d at step %d window %d chain %d" pid
        (if value then 1 else 0)
        step window chain_depth
  | Window_closed { index } -> Format.fprintf ppf "window %d closed" index

let pp ppf t =
  Format.fprintf ppf
    "sent=%d delivered=%d dropped=%d resets=%d crashes=%d windows=%d decisions=%d"
    t.sent t.delivered t.dropped t.resets t.crashes t.windows_closed
    (List.length t.decisions_rev)
