type event =
  | Sent of { src : int; dst : int; msg_id : int; depth : int }
  | Delivered of { src : int; dst : int; msg_id : int; depth : int }
  | Dropped of { msg_id : int }
  | Reset_done of { pid : int }
  | Crashed of { pid : int }
  | Decided of { pid : int; value : bool; step : int; window : int; chain_depth : int }
  | Window_closed of { index : int }

type t = {
  record_events : bool;
  mutable events_rev : event list;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable resets : int;
  mutable crashes : int;
  mutable windows_closed : int;
  mutable decisions_rev : (int * bool * int * int * int) list;
}

let create ~record_events =
  {
    record_events;
    events_rev = [];
    sent = 0;
    delivered = 0;
    dropped = 0;
    resets = 0;
    crashes = 0;
    windows_closed = 0;
    decisions_rev = [];
  }

let copy t =
  {
    record_events = t.record_events;
    events_rev = t.events_rev;
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    resets = t.resets;
    crashes = t.crashes;
    windows_closed = t.windows_closed;
    decisions_rev = t.decisions_rev;
  }

let record t event =
  (match event with
  | Sent _ -> t.sent <- t.sent + 1
  | Delivered _ -> t.delivered <- t.delivered + 1
  | Dropped _ -> t.dropped <- t.dropped + 1
  | Reset_done _ -> t.resets <- t.resets + 1
  | Crashed _ -> t.crashes <- t.crashes + 1
  | Window_closed _ -> t.windows_closed <- t.windows_closed + 1
  | Decided { pid; value; step; window; chain_depth } ->
      t.decisions_rev <- (pid, value, step, window, chain_depth) :: t.decisions_rev);
  if t.record_events then t.events_rev <- event :: t.events_rev

(* Bulk accounting for a lazily-expanded broadcast: the engine reserves
   ids [first .. first + count - 1] (id = first + dst) in one step, so
   the counter bumps once by [count]; the per-destination [Sent] events
   are only materialized when the trace keeps event lists at all. *)
let record_broadcast t ~src ~first ~count ~depth =
  t.sent <- t.sent + count;
  if t.record_events then
    for dst = 0 to count - 1 do
      t.events_rev <- Sent { src; dst; msg_id = first + dst; depth } :: t.events_rev
    done

let events t = List.rev t.events_rev
let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let resets t = t.resets
let crashes t = t.crashes
let windows_closed t = t.windows_closed
let decisions t = List.rev t.decisions_rev

let first_decision t =
  match List.rev t.decisions_rev with [] -> None | d :: _ -> Some d

let pp_event ppf = function
  | Sent { src; dst; msg_id; depth } ->
      Format.fprintf ppf "sent #%d %d->%d depth=%d" msg_id src dst depth
  | Delivered { src; dst; msg_id; depth } ->
      Format.fprintf ppf "delivered #%d %d->%d depth=%d" msg_id src dst depth
  | Dropped { msg_id } -> Format.fprintf ppf "dropped #%d" msg_id
  | Reset_done { pid } -> Format.fprintf ppf "reset p%d" pid
  | Crashed { pid } -> Format.fprintf ppf "crashed p%d" pid
  | Decided { pid; value; step; window; chain_depth } ->
      Format.fprintf ppf "decided p%d=%d at step %d window %d chain %d" pid
        (if value then 1 else 0)
        step window chain_depth
  | Window_closed { index } -> Format.fprintf ppf "window %d closed" index

let pp ppf t =
  Format.fprintf ppf
    "sent=%d delivered=%d dropped=%d resets=%d crashes=%d windows=%d decisions=%d"
    t.sent t.delivered t.dropped t.resets t.crashes t.windows_closed
    (List.length t.decisions_rev)
