(* The buffer is a growable slot array indexed by message id (ids are
   issued densely by the engine, so [slots.(id - base)] is a direct
   probe), threaded with per-destination intrusive doubly-linked queues
   in ascending-id order.  That keeps [add]/[take]/[find]/
   [replace_payload] O(1) on the engine's workload and lets the
   delivery loop walk exactly the envelopes of one destination
   ([iter_for]) with no intermediate lists.

   Invariants:
   - an id is pending iff [lo <= id - base < hi] and the slot is
     [Some node] with [node.env.id = id];
   - [lo]/[hi] bracket the occupied region ([lo = hi = 0] when empty);
   - for every dst >= 0, [heads.(dst)]/[tails.(dst)] delimit a list
     linked through [node.prev]/[node.next] (ids, -1 for none) that
     holds exactly the pending envelopes for [dst], ascending id;
   - envelopes with a negative dst (never produced by the engine, which
     range-checks sends) are stored outside any queue. *)

type 'm node = {
  mutable env : 'm Envelope.t;
  mutable prev : int;
  mutable next : int;
}

type 'm t = {
  mutable slots : 'm node option array;
  mutable base : int;  (* id mapped to slots.(0) *)
  mutable lo : int;  (* relative index: occupied region is [lo, hi) *)
  mutable hi : int;
  mutable size : int;
  mutable heads : int array;
  mutable tails : int array;
}

let create () =
  {
    slots = [||];
    base = 0;
    lo = 0;
    hi = 0;
    size = 0;
    heads = [||];
    tails = [||];
  }

let copy t =
  let span = t.hi - t.lo in
  let slots = Array.make span None in
  for r = 0 to span - 1 do
    match t.slots.(t.lo + r) with
    | None -> ()
    | Some n ->
        slots.(r) <- Some { env = n.env; prev = n.prev; next = n.next }
  done;
  {
    slots;
    base = t.base + t.lo;
    lo = 0;
    hi = span;
    size = t.size;
    heads = Array.copy t.heads;
    tails = Array.copy t.tails;
  }

let node_at t id =
  let rel = id - t.base in
  if rel < t.lo || rel >= t.hi then None else t.slots.(rel)

(* Internal: only called on ids known pending. *)
let get_node t id =
  match node_at t id with Some n -> n | None -> assert false

(* Make [slots.(id - base)] addressable, compacting the live span (and
   advancing [base]) or growing as needed. *)
let ensure_slot t id =
  let cap = Array.length t.slots in
  if t.size = 0 then begin
    if cap = 0 then t.slots <- Array.make 64 None;
    t.base <- id;
    t.lo <- 0;
    t.hi <- 0
  end
  else begin
    let rel = id - t.base in
    if rel < 0 || rel >= cap then begin
      let new_base = min (t.base + t.lo) id in
      let span = max (t.base + t.hi) (id + 1) - new_base in
      let new_cap =
        let c = ref (max cap 64) in
        while !c < span do
          c := !c * 2
        done;
        !c
      in
      let slots = Array.make new_cap None in
      Array.blit t.slots t.lo slots (t.base + t.lo - new_base) (t.hi - t.lo);
      t.slots <- slots;
      t.lo <- t.base + t.lo - new_base;
      t.hi <- t.base + t.hi - new_base;
      t.base <- new_base
    end
  end

let ensure_dst t dst =
  let len = Array.length t.heads in
  if dst >= len then begin
    let new_len = max (dst + 1) (max 8 (len * 2)) in
    let heads = Array.make new_len (-1) and tails = Array.make new_len (-1) in
    Array.blit t.heads 0 heads 0 len;
    Array.blit t.tails 0 tails 0 len;
    t.heads <- heads;
    t.tails <- tails
  end

(* Splice [node] into dst's queue keeping ascending-id order.  The
   engine issues ids monotonically, so the common case is an O(1)
   append after [tail]; out-of-order ids (hand-built tests) walk
   backwards to their slot. *)
let enqueue t dst id node =
  ensure_dst t dst;
  let tail = t.tails.(dst) in
  if tail < 0 then begin
    t.heads.(dst) <- id;
    t.tails.(dst) <- id
  end
  else if tail < id then begin
    (get_node t tail).next <- id;
    node.prev <- tail;
    t.tails.(dst) <- id
  end
  else begin
    let cur = ref tail in
    while !cur >= 0 && !cur > id do
      cur := (get_node t !cur).prev
    done;
    if !cur < 0 then begin
      let head = t.heads.(dst) in
      node.next <- head;
      (get_node t head).prev <- id;
      t.heads.(dst) <- id
    end
    else begin
      let pred = get_node t !cur in
      node.prev <- !cur;
      node.next <- pred.next;
      (get_node t pred.next).prev <- id;
      pred.next <- id
    end
  end

let add t envelope =
  let id = envelope.Envelope.id in
  (match node_at t id with
  | Some _ -> invalid_arg "Mailbox.add: duplicate message id"
  | None -> ());
  ensure_slot t id;
  let node = { env = envelope; prev = -1; next = -1 } in
  let rel = id - t.base in
  t.slots.(rel) <- Some node;
  if t.size = 0 then begin
    t.lo <- rel;
    t.hi <- rel + 1
  end
  else begin
    if rel < t.lo then t.lo <- rel;
    if rel + 1 > t.hi then t.hi <- rel + 1
  end;
  t.size <- t.size + 1;
  let dst = envelope.Envelope.dst in
  if dst >= 0 then enqueue t dst id node

let unlink t node =
  let dst = node.env.Envelope.dst in
  if dst >= 0 then begin
    if node.prev >= 0 then (get_node t node.prev).next <- node.next
    else t.heads.(dst) <- node.next;
    if node.next >= 0 then (get_node t node.next).prev <- node.prev
    else t.tails.(dst) <- node.prev
  end

let take t id =
  match node_at t id with
  | None -> None
  | Some node ->
      unlink t node;
      t.slots.(id - t.base) <- None;
      t.size <- t.size - 1;
      if t.size = 0 then begin
        t.lo <- 0;
        t.hi <- 0
      end
      else begin
        while
          t.lo < t.hi
          && (match t.slots.(t.lo) with None -> true | Some _ -> false)
        do
          t.lo <- t.lo + 1
        done;
        while
          t.hi > t.lo
          && (match t.slots.(t.hi - 1) with None -> true | Some _ -> false)
        do
          t.hi <- t.hi - 1
        done
      end;
      Some node.env

let find t id =
  match node_at t id with None -> None | Some node -> Some node.env

let mem t id =
  match node_at t id with None -> false | Some _ -> true

let replace_payload t id payload =
  match node_at t id with
  | None -> false
  | Some node ->
      node.env <- { node.env with Envelope.payload };
      true

let size t = t.size
let is_empty t = t.size = 0

let pending t =
  let acc = ref [] in
  for r = t.hi - 1 downto t.lo do
    match t.slots.(r) with Some n -> acc := n.env :: !acc | None -> ()
  done;
  !acc

let pending_ids t =
  let acc = ref [] in
  for r = t.hi - 1 downto t.lo do
    match t.slots.(r) with
    | Some n -> acc := n.env.Envelope.id :: !acc
    | None -> ()
  done;
  !acc

let pending_for t ~dst =
  if dst < 0 then
    List.filter (fun e -> e.Envelope.dst = dst) (pending t)
  else if dst >= Array.length t.heads then []
  else begin
    let rec walk id acc =
      if id < 0 then List.rev acc
      else
        let n = get_node t id in
        walk n.next (n.env :: acc)
    in
    walk t.heads.(dst) []
  end

let pending_from t ~src =
  let acc = ref [] in
  for r = t.hi - 1 downto t.lo do
    match t.slots.(r) with
    | Some n when n.env.Envelope.src = src -> acc := n.env :: !acc
    | Some _ | None -> ()
  done;
  !acc

let filter_ids t f =
  let acc = ref [] in
  for r = t.hi - 1 downto t.lo do
    match t.slots.(r) with
    | Some n when f n.env -> acc := n.env.Envelope.id :: !acc
    | Some _ | None -> ()
  done;
  !acc

let iter_for t ~dst f =
  if dst < 0 then List.iter f (pending_for t ~dst)
  else if dst < Array.length t.heads then begin
    let cur = ref t.heads.(dst) in
    while !cur >= 0 do
      let node = get_node t !cur in
      cur := node.next;
      f node.env
    done
  end
