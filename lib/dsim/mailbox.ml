(* The buffer is an arena: struct-of-arrays storage indexed by message
   id (ids are issued densely by the engine, so [rel = id - base] is a
   direct probe into parallel arrays), threaded with per-destination
   intrusive doubly-linked queues in ascending-id order, plus a
   broadcast table that stores each uniform send once — payload and
   metadata shared, one pending *bit* per destination — and
   materializes per-destination envelopes lazily on access.

   Id layout for a broadcast: the engine reserves [count] consecutive
   ids starting at [bc_first], destination [dst] owning id
   [bc_first + dst].  That is exactly the id order the old eager
   [List.init count] expansion produced, which is what keeps lazy
   executions bit-identical to eager ones.

   Invariants:
   - an id is pending iff it is an occupied arena slot
     ([lo <= id - base < hi] with [payloads.(rel) = Some _]) or a live
     broadcast destination ([bc_first <= id < bc_first + bc_count] with
     the [id - bc_first] pending bit set); never both;
   - [lo]/[hi] bracket the occupied arena region ([lo = hi = 0] when
     the arena is empty); [ucount] counts occupied arena slots;
   - for every dst >= 0, [heads.(dst)]/[tails.(dst)] delimit a list
     linked through [prevs]/[nexts] (ids, -1 for none) that holds
     exactly the pending *arena* envelopes for [dst], ascending id
     (broadcast destinations are merged in at iteration time);
   - arena envelopes with a negative dst (never produced by the engine,
     which range-checks sends) are stored outside any queue;
   - [bcs.(0 .. bc_len-1)] is sorted by strictly increasing
     [bc_first] with pairwise disjoint id ranges; [bc_firsts] mirrors
     the firsts (kept for dead [None] entries so binary search stays
     valid); [bc_live]/[bc_pending_total] count live entries and their
     pending destinations; [bc_hi] is the end of the highest range ever
     added (freshness check for new broadcasts). *)

type 'm bc = {
  bc_first : int;
  bc_count : int;
  bc_src : int;
  bc_payload : 'm;
  bc_depth : int;
  bc_step : int;
  bc_window : int;
  bc_pending : Bitset.t;  (* dst in [0, bc_count) still pending *)
  mutable bc_remaining : int;  (* = cardinal of bc_pending *)
}

type 'm t = {
  (* arena: parallel arrays indexed by [id - base] *)
  mutable payloads : 'm option array;  (* [None] = empty slot *)
  mutable srcs : int array;
  mutable dsts : int array;
  mutable depths : int array;
  mutable steps : int array;
  mutable wins : int array;
  mutable prevs : int array;  (* per-dst queue links, as ids; -1 none *)
  mutable nexts : int array;
  mutable base : int;  (* id mapped to index 0 *)
  mutable lo : int;  (* relative index: occupied region is [lo, hi) *)
  mutable hi : int;
  mutable ucount : int;
  mutable heads : int array;  (* per-dst queue heads/tails, as ids *)
  mutable tails : int array;
  (* broadcast table *)
  mutable bcs : 'm bc option array;
  mutable bc_firsts : int array;
  mutable bc_len : int;
  mutable bc_live : int;
  mutable bc_pending_total : int;
  mutable bc_hi : int;
}

let create () =
  {
    payloads = [||];
    srcs = [||];
    dsts = [||];
    depths = [||];
    steps = [||];
    wins = [||];
    prevs = [||];
    nexts = [||];
    base = 0;
    lo = 0;
    hi = 0;
    ucount = 0;
    heads = [||];
    tails = [||];
    bcs = [||];
    bc_firsts = [||];
    bc_len = 0;
    bc_live = 0;
    bc_pending_total = 0;
    bc_hi = 0;
  }

let copy t =
  let span = t.hi - t.lo in
  let sub_int a =
    let b = Array.make span 0 in
    if span > 0 then Array.blit a t.lo b 0 span;
    b
  in
  let payloads = Array.make span None in
  if span > 0 then Array.blit t.payloads t.lo payloads 0 span;
  let bcs = Array.make (max t.bc_live 1) None in
  let bc_firsts = Array.make (max t.bc_live 1) 0 in
  let w = ref 0 in
  for k = 0 to t.bc_len - 1 do
    match t.bcs.(k) with
    | None -> ()
    | Some bc ->
        bcs.(!w) <- Some { bc with bc_pending = Bitset.copy bc.bc_pending };
        bc_firsts.(!w) <- bc.bc_first;
        incr w
  done;
  {
    payloads;
    srcs = sub_int t.srcs;
    dsts = sub_int t.dsts;
    depths = sub_int t.depths;
    steps = sub_int t.steps;
    wins = sub_int t.wins;
    prevs = sub_int t.prevs;
    nexts = sub_int t.nexts;
    base = t.base + t.lo;
    lo = 0;
    hi = span;
    ucount = t.ucount;
    heads = Array.copy t.heads;
    tails = Array.copy t.tails;
    bcs;
    bc_firsts;
    bc_len = !w;
    bc_live = !w;
    bc_pending_total = t.bc_pending_total;
    bc_hi = t.bc_hi;
  }

(* {2 Arena internals} *)

let slot_occupied t rel =
  t.ucount > 0 && rel >= t.lo && rel < t.hi && Option.is_some t.payloads.(rel)

(* Internal: only called on occupied slots. *)
let env_of_slot t rel =
  {
    Envelope.id = t.base + rel;
    src = t.srcs.(rel);
    dst = t.dsts.(rel);
    payload = (match t.payloads.(rel) with Some p -> p | None -> assert false);
    depth = t.depths.(rel);
    sent_at_step = t.steps.(rel);
    sent_in_window = t.wins.(rel);
  }

(* Make [rel = id - base] addressable, compacting the live span (and
   advancing [base]) or growing as needed. *)
let ensure_slot t id =
  let cap = Array.length t.payloads in
  if t.ucount = 0 then begin
    if cap = 0 then begin
      t.payloads <- Array.make 64 None;
      t.srcs <- Array.make 64 0;
      t.dsts <- Array.make 64 0;
      t.depths <- Array.make 64 0;
      t.steps <- Array.make 64 0;
      t.wins <- Array.make 64 0;
      t.prevs <- Array.make 64 (-1);
      t.nexts <- Array.make 64 (-1)
    end;
    t.base <- id;
    t.lo <- 0;
    t.hi <- 0
  end
  else begin
    let rel = id - t.base in
    if rel < 0 || rel >= cap then begin
      let new_base = min (t.base + t.lo) id in
      let span = max (t.base + t.hi) (id + 1) - new_base in
      let new_cap =
        let c = ref (max cap 64) in
        while !c < span do
          c := !c * 2
        done;
        !c
      in
      let off = t.base + t.lo - new_base in
      let len = t.hi - t.lo in
      let move_int a fill =
        let b = Array.make new_cap fill in
        Array.blit a t.lo b off len;
        b
      in
      let payloads = Array.make new_cap None in
      Array.blit t.payloads t.lo payloads off len;
      t.payloads <- payloads;
      t.srcs <- move_int t.srcs 0;
      t.dsts <- move_int t.dsts 0;
      t.depths <- move_int t.depths 0;
      t.steps <- move_int t.steps 0;
      t.wins <- move_int t.wins 0;
      t.prevs <- move_int t.prevs (-1);
      t.nexts <- move_int t.nexts (-1);
      t.lo <- off;
      t.hi <- off + len;
      t.base <- new_base
    end
  end

let ensure_dst t dst =
  let len = Array.length t.heads in
  if dst >= len then begin
    let new_len = max (dst + 1) (max 8 (len * 2)) in
    let heads = Array.make new_len (-1) and tails = Array.make new_len (-1) in
    Array.blit t.heads 0 heads 0 len;
    Array.blit t.tails 0 tails 0 len;
    t.heads <- heads;
    t.tails <- tails
  end

(* Splice id into dst's queue keeping ascending-id order.  The engine
   issues ids monotonically, so the common case is an O(1) append after
   [tail]; out-of-order ids (hand-built tests, corrupt splits of a
   broadcast destination) walk backwards to their slot. *)
let enqueue t dst id =
  ensure_dst t dst;
  let rel = id - t.base in
  let tail = t.tails.(dst) in
  if tail < 0 then begin
    t.heads.(dst) <- id;
    t.tails.(dst) <- id
  end
  else if tail < id then begin
    t.nexts.(tail - t.base) <- id;
    t.prevs.(rel) <- tail;
    t.tails.(dst) <- id
  end
  else begin
    let cur = ref tail in
    while !cur >= 0 && !cur > id do
      cur := t.prevs.(!cur - t.base)
    done;
    if !cur < 0 then begin
      let head = t.heads.(dst) in
      t.nexts.(rel) <- head;
      t.prevs.(head - t.base) <- id;
      t.heads.(dst) <- id
    end
    else begin
      let pred = !cur in
      let succ = t.nexts.(pred - t.base) in
      t.prevs.(rel) <- pred;
      t.nexts.(rel) <- succ;
      t.prevs.(succ - t.base) <- id;
      t.nexts.(pred - t.base) <- id
    end
  end

let unlink t rel =
  let dst = t.dsts.(rel) in
  if dst >= 0 then begin
    let prev = t.prevs.(rel) and next = t.nexts.(rel) in
    if prev >= 0 then t.nexts.(prev - t.base) <- next else t.heads.(dst) <- next;
    if next >= 0 then t.prevs.(next - t.base) <- prev else t.tails.(dst) <- prev
  end

let arena_insert t ~id ~src ~dst ~payload ~depth ~step ~window =
  ensure_slot t id;
  let rel = id - t.base in
  t.payloads.(rel) <- Some payload;
  t.srcs.(rel) <- src;
  t.dsts.(rel) <- dst;
  t.depths.(rel) <- depth;
  t.steps.(rel) <- step;
  t.wins.(rel) <- window;
  t.prevs.(rel) <- -1;
  t.nexts.(rel) <- -1;
  if t.ucount = 0 then begin
    t.lo <- rel;
    t.hi <- rel + 1
  end
  else begin
    if rel < t.lo then t.lo <- rel;
    if rel + 1 > t.hi then t.hi <- rel + 1
  end;
  t.ucount <- t.ucount + 1;
  if dst >= 0 then enqueue t dst id

let arena_remove t rel =
  unlink t rel;
  t.payloads.(rel) <- None;
  t.ucount <- t.ucount - 1;
  if t.ucount = 0 then begin
    t.lo <- 0;
    t.hi <- 0
  end
  else begin
    while
      t.lo < t.hi && Option.is_none t.payloads.(t.lo)
    do
      t.lo <- t.lo + 1
    done;
    while
      t.hi > t.lo && Option.is_none t.payloads.(t.hi - 1)
    do
      t.hi <- t.hi - 1
    done
  end

(* {2 Broadcast-table internals} *)

(* Largest k < bc_len with bc_firsts.(k) <= id, or -1: disjoint sorted
   ranges mean only this entry can contain [id]. *)
let bc_index_for t id =
  let lo = ref 0 and hi = ref t.bc_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.bc_firsts.(mid) <= id then lo := mid + 1 else hi := mid
  done;
  !lo - 1

let bc_mem t id =
  let k = bc_index_for t id in
  k >= 0
  && (match t.bcs.(k) with
     | Some bc ->
         id - bc.bc_first < bc.bc_count
         && Bitset.mem bc.bc_pending (id - bc.bc_first)
     | None -> false)

let env_of_bc bc id =
  {
    Envelope.id;
    src = bc.bc_src;
    dst = id - bc.bc_first;
    payload = bc.bc_payload;
    depth = bc.bc_depth;
    sent_at_step = bc.bc_step;
    sent_in_window = bc.bc_window;
  }

(* Internal: only called when [bc_mem] holds for (k, bc, id). *)
let bc_remove t k bc id =
  Bitset.remove bc.bc_pending (id - bc.bc_first);
  bc.bc_remaining <- bc.bc_remaining - 1;
  t.bc_pending_total <- t.bc_pending_total - 1;
  if bc.bc_remaining = 0 then begin
    t.bcs.(k) <- None;
    t.bc_live <- t.bc_live - 1
  end

(* Lazy compaction, amortized O(1): only [add_broadcast] calls this, so
   iterators holding table indices are never invalidated mid-walk. *)
let bc_compact t =
  if t.bc_len > 8 && t.bc_live * 2 < t.bc_len then begin
    let w = ref 0 in
    for k = 0 to t.bc_len - 1 do
      match t.bcs.(k) with
      | None -> ()
      | Some bc ->
          t.bcs.(!w) <- t.bcs.(k);
          t.bc_firsts.(!w) <- bc.bc_first;
          incr w
    done;
    for k = !w to t.bc_len - 1 do
      t.bcs.(k) <- None
    done;
    t.bc_len <- !w
  end

(* {2 Public surface} *)

let mem t id = slot_occupied t (id - t.base) || bc_mem t id

let add t envelope =
  let id = envelope.Envelope.id in
  if mem t id then invalid_arg "Mailbox.add: duplicate message id";
  arena_insert t ~id ~src:envelope.Envelope.src ~dst:envelope.Envelope.dst
    ~payload:envelope.Envelope.payload ~depth:envelope.Envelope.depth
    ~step:envelope.Envelope.sent_at_step ~window:envelope.Envelope.sent_in_window

let add_unicast t ~id ~src ~dst ~payload ~depth ~sent_at_step ~sent_in_window =
  if mem t id then invalid_arg "Mailbox.add: duplicate message id";
  arena_insert t ~id ~src ~dst ~payload ~depth ~step:sent_at_step
    ~window:sent_in_window

let add_broadcast t ~first ~count ~src ~payload ~depth ~sent_at_step
    ~sent_in_window =
  if count <= 0 then invalid_arg "Mailbox.add_broadcast: count must be positive";
  if first < t.bc_hi || (t.ucount > 0 && first < t.base + t.hi) then
    invalid_arg "Mailbox.add_broadcast: ids not fresh";
  bc_compact t;
  if t.bc_len = Array.length t.bcs then begin
    let new_cap = max 8 (t.bc_len * 2) in
    let bcs = Array.make new_cap None and firsts = Array.make new_cap 0 in
    Array.blit t.bcs 0 bcs 0 t.bc_len;
    Array.blit t.bc_firsts 0 firsts 0 t.bc_len;
    t.bcs <- bcs;
    t.bc_firsts <- firsts
  end;
  t.bcs.(t.bc_len) <-
    Some
      {
        bc_first = first;
        bc_count = count;
        bc_src = src;
        bc_payload = payload;
        bc_depth = depth;
        bc_step = sent_at_step;
        bc_window = sent_in_window;
        bc_pending = Bitset.full ~capacity:count;
        bc_remaining = count;
      };
  t.bc_firsts.(t.bc_len) <- first;
  t.bc_len <- t.bc_len + 1;
  t.bc_live <- t.bc_live + 1;
  t.bc_pending_total <- t.bc_pending_total + count;
  t.bc_hi <- first + count

let take t id =
  let rel = id - t.base in
  if slot_occupied t rel then begin
    let env = env_of_slot t rel in
    arena_remove t rel;
    Some env
  end
  else
    let k = bc_index_for t id in
    if k < 0 then None
    else
      match t.bcs.(k) with
      | Some bc
        when id - bc.bc_first < bc.bc_count
             && Bitset.mem bc.bc_pending (id - bc.bc_first) ->
          let env = env_of_bc bc id in
          bc_remove t k bc id;
          Some env
      | Some _ | None -> None

let find t id =
  let rel = id - t.base in
  if slot_occupied t rel then Some (env_of_slot t rel)
  else
    let k = bc_index_for t id in
    if k < 0 then None
    else
      match t.bcs.(k) with
      | Some bc
        when id - bc.bc_first < bc.bc_count
             && Bitset.mem bc.bc_pending (id - bc.bc_first) ->
          Some (env_of_bc bc id)
      | Some _ | None -> None

(* Corrupting a broadcast destination splits it out: the destination
   leaves the shared broadcast entry and becomes an ordinary arena
   envelope (same id, new payload), so the other destinations keep the
   original payload.  Arena envelopes are rewritten in place. *)
let replace_payload t id payload =
  let rel = id - t.base in
  if slot_occupied t rel then begin
    t.payloads.(rel) <- Some payload;
    true
  end
  else
    let k = bc_index_for t id in
    if k < 0 then false
    else
      match t.bcs.(k) with
      | Some bc
        when id - bc.bc_first < bc.bc_count
             && Bitset.mem bc.bc_pending (id - bc.bc_first) ->
          bc_remove t k bc id;
          arena_insert t ~id ~src:bc.bc_src ~dst:(id - bc.bc_first) ~payload
            ~depth:bc.bc_depth ~step:bc.bc_step ~window:bc.bc_window;
          true
      | Some _ | None -> false

let size t = t.ucount + t.bc_pending_total
let is_empty t = size t = 0

(* Ascending-id walk over both stores: arena occupancy scan merged with
   the broadcast table's pending bits (both naturally ascending). *)
let iter_all t f =
  let r = ref t.lo in
  let arena_next () =
    while !r < t.hi && Option.is_none t.payloads.(!r) do
      incr r
    done;
    if !r >= t.hi then max_int else t.base + !r
  in
  let k = ref 0 and d = ref 0 in
  let bc_next () =
    let res = ref max_int and scanning = ref true in
    while !scanning do
      if !k >= t.bc_len then scanning := false
      else
        match t.bcs.(!k) with
        | None ->
            incr k;
            d := 0
        | Some bc -> (
            match Bitset.next_from bc.bc_pending !d with
            | -1 ->
                incr k;
                d := 0
            | nd ->
                res := bc.bc_first + nd;
                scanning := false)
    done;
    !res
  in
  let running = ref true in
  while !running do
    let a = arena_next () and b = bc_next () in
    if a = max_int && b = max_int then running := false
    else if a < b then begin
      let rel = !r in
      incr r;
      f (env_of_slot t rel)
    end
    else
      match t.bcs.(!k) with
      | Some bc ->
          d := b - bc.bc_first + 1;
          f (env_of_bc bc b)
      | None -> assert false
  done

let pending t =
  let acc = ref [] in
  iter_all t (fun e -> acc := e :: !acc);
  List.rev !acc

let pending_ids t =
  let acc = ref [] in
  iter_all t (fun e -> acc := e.Envelope.id :: !acc);
  List.rev !acc

let pending_from t ~src =
  let acc = ref [] in
  iter_all t (fun e -> if e.Envelope.src = src then acc := e :: !acc);
  List.rev !acc

let filter_ids t f =
  let acc = ref [] in
  iter_all t (fun e -> if f e then acc := e.Envelope.id :: !acc);
  List.rev !acc

(* Two-pointer merge of dst's arena queue (ascending by construction)
   with the live broadcast entries (ascending [bc_first], at most one
   contribution — id [bc_first + dst] — each).  Cursors advance before
   the callback runs, so taking (or corrupt-splitting) the visited
   envelope is safe. *)
let iter_for t ~dst f =
  if dst < 0 then
    iter_all t (fun e -> if e.Envelope.dst = dst then f e)
  else begin
    let ucur = ref (if dst < Array.length t.heads then t.heads.(dst) else -1) in
    let k = ref 0 in
    let bc_candidate () =
      let res = ref (-1) and scanning = ref true in
      while !scanning do
        if !k >= t.bc_len then scanning := false
        else
          match t.bcs.(!k) with
          | Some bc when dst < bc.bc_count && Bitset.mem bc.bc_pending dst ->
              res := !k;
              scanning := false
          | Some _ | None -> incr k
      done;
      !res
    in
    let running = ref true in
    while !running do
      let kb = bc_candidate () in
      let uid = !ucur in
      if uid < 0 && kb < 0 then running := false
      else begin
        let bc =
          if kb < 0 then None
          else match t.bcs.(kb) with Some _ as s -> s | None -> assert false
        in
        let bid = match bc with None -> max_int | Some b -> b.bc_first + dst in
        if uid >= 0 && uid < bid then begin
          let rel = uid - t.base in
          ucur := t.nexts.(rel);
          f (env_of_slot t rel)
        end
        else
          match bc with
          | Some b ->
              incr k;
              f (env_of_bc b bid)
          | None -> assert false
      end
    done
  end

let pending_for t ~dst =
  let acc = ref [] in
  iter_for t ~dst (fun e -> acc := e :: !acc);
  List.rev !acc

(* [iter_for] fused with removal: visit dst's pending envelopes
   ascending, and for each one with id in [from, til) whose source
   passes [allow], remove it from the store {e before} the callback
   runs.  One merge walk instead of a walk plus a per-envelope [take]
   re-probe — the engine's batched uniform-window sweep runs on this. *)
let drain_for t ~dst ~from ~til ~allow f =
  if dst < 0 then invalid_arg "Mailbox.drain_for: negative dst";
  let ucur = ref (if dst < Array.length t.heads then t.heads.(dst) else -1) in
  let k = ref 0 in
  let bc_candidate () =
    let res = ref (-1) and scanning = ref true in
    while !scanning do
      if !k >= t.bc_len then scanning := false
      else
        match t.bcs.(!k) with
        | Some bc when dst < bc.bc_count && Bitset.mem bc.bc_pending dst ->
            res := !k;
            scanning := false
        | Some _ | None -> incr k
    done;
    !res
  in
  let running = ref true in
  while !running do
    let kb = bc_candidate () in
    let uid = !ucur in
    if uid < 0 && kb < 0 then running := false
    else begin
      let bc =
        if kb < 0 then None
        else match t.bcs.(kb) with Some _ as s -> s | None -> assert false
      in
      let bid = match bc with None -> max_int | Some b -> b.bc_first + dst in
      if uid >= 0 && uid < bid then begin
        let rel = uid - t.base in
        ucur := t.nexts.(rel);
        if uid >= from && uid < til && allow t.srcs.(rel) then begin
          let env = env_of_slot t rel in
          arena_remove t rel;
          f env
        end
      end
      else
        match bc with
        | Some b ->
            incr k;
            if bid >= from && bid < til && allow b.bc_src then begin
              let env = env_of_bc b bid in
              bc_remove t kb b bid;
              f env
            end
        | None -> assert false
    end
  done

(* Ascending walk over the pending ids in [from, til), merging the
   arena occupancy scan with the broadcast pending bits.  The callback
   may [take] (the engine's drop sweep does) but must not [add]; after
   full-delivery windows the arena region is empty and the walk is a
   near-free bounds check instead of the old per-id [mem] probes. *)
let iter_ids_in_range t ~from ~til f =
  let r = ref (max t.lo (from - t.base)) in
  let arena_next () =
    while !r < t.hi && Option.is_none t.payloads.(!r) do
      incr r
    done;
    if !r >= t.hi then max_int else t.base + !r
  in
  let k = ref (max (bc_index_for t from) 0) in
  let bc_next i =
    let res = ref max_int and scanning = ref true in
    while !scanning do
      if !k >= t.bc_len then scanning := false
      else
        match t.bcs.(!k) with
        | None -> incr k
        | Some bc ->
            if bc.bc_first + bc.bc_count <= i then incr k
            else (
              match Bitset.next_from bc.bc_pending (max 0 (i - bc.bc_first)) with
              | -1 -> incr k
              | nd ->
                  res := bc.bc_first + nd;
                  scanning := false)
    done;
    !res
  in
  let i = ref from and running = ref true in
  while !running && !i < til do
    if t.ucount > 0 then r := max !r (!i - t.base);
    let a = arena_next () in
    let b = bc_next !i in
    let id = min a b in
    if id >= til then running := false
    else begin
      if id = a then incr r;
      f id;
      i := id + 1
    end
  done
