type ('s, 'm) t = {
  protocol : ('s, 'm) Protocol.t;
  n : int;
  fault_bound : int;
  inputs : bool array;
  states : 's array;
  mailbox : 'm Mailbox.t;
  crashed : bool array;
  reset_counts : int array;
  receive_depths : int array;
  rngs : Prng.Stream.t array;
  track_deliveries : bool;
      (* when off (the default), the per-delivery conditioning log below
         is not recorded and sweeps skip its allocations entirely *)
  recent_deliveries : (int * 'm) list array;
      (* per processor, reverse-chronological (src, payload) pairs for
         messages delivered since its last message-emitting send — the
         conditioning data of Definition 15 (forgetfulness).  Rendered
         to "src:payload" strings lazily, in [recent_deliveries]. *)
  mutable next_msg_id : int;
  mutable step_index : int;
  mutable window_index : int;
  trace : Trace.t;
}

let init ~protocol ~n ~fault_bound ~inputs ~seed ?(record_events = false)
    ?sink ?(track_deliveries = false) () =
  if Array.length inputs <> n then invalid_arg "Engine.init: |inputs| <> n";
  if n <= 0 then invalid_arg "Engine.init: n must be positive";
  if fault_bound < 0 || fault_bound >= n then
    invalid_arg "Engine.init: fault bound out of range";
  let root = Prng.Stream.root seed in
  let rngs = Array.init n (fun i -> Prng.Stream.derive root i) in
  let states =
    Array.init n (fun i -> protocol.Protocol.init ~n ~t:fault_bound ~id:i ~input:inputs.(i))
  in
  {
    protocol;
    n;
    fault_bound;
    inputs = Array.copy inputs;
    states;
    mailbox = Mailbox.create ();
    crashed = Array.make n false;
    reset_counts = Array.make n 0;
    receive_depths = Array.make n 0;
    rngs;
    track_deliveries;
    recent_deliveries = Array.make n [];
    next_msg_id = 0;
    step_index = 0;
    window_index = 0;
    trace = Trace.create ?sink ~record_events ();
  }

let copy t =
  {
    t with
    inputs = Array.copy t.inputs;
    states = Array.copy t.states;
    mailbox = Mailbox.copy t.mailbox;
    crashed = Array.copy t.crashed;
    reset_counts = Array.copy t.reset_counts;
    receive_depths = Array.copy t.receive_depths;
    rngs = Array.map Prng.Stream.copy t.rngs;
    recent_deliveries = Array.copy t.recent_deliveries;
    trace = Trace.copy t.trace;
  }

let reseed t stream =
  Array.iteri (fun i _ -> t.rngs.(i) <- Prng.Stream.derive stream i) t.rngs

let reseed_shared t stream =
  Array.iteri (fun i _ -> t.rngs.(i) <- Prng.Stream.copy stream) t.rngs

let n t = t.n
let fault_bound t = t.fault_bound
let protocol t = t.protocol
let state t p = t.states.(p)
let observe t p = t.protocol.Protocol.observe t.states.(p)
let observations t = Array.init t.n (observe t)
let output t p = t.protocol.Protocol.output t.states.(p)
let crashed t p = t.crashed.(p)

let crashed_count t =
  Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.crashed

let reset_count t p = t.reset_counts.(p)
let inputs t = t.inputs
let mailbox t = t.mailbox
let step_index t = t.step_index
let window_index t = t.window_index
let trace t = t.trace
let receive_depth t p = t.receive_depths.(p)
let deliveries_tracked t = t.track_deliveries

let recent_deliveries t p =
  List.map
    (fun (src, payload) ->
      Format.asprintf "%d:%a" src t.protocol.Protocol.pp_message payload)
    t.recent_deliveries.(p)
let max_chain_depth t = Array.fold_left max 0 t.receive_depths

let decided_values t =
  let rec collect p acc =
    if p < 0 then acc
    else
      match output t p with
      | Some v -> collect (p - 1) ((p, v) :: acc)
      | None -> collect (p - 1) acc
  in
  collect (t.n - 1) []

let all_decided t =
  let alive_undecided p = (not t.crashed.(p)) && Option.is_none (output t p) in
  not (Array.exists alive_undecided (Array.init t.n (fun i -> i)))

let some_decided t = not (List.is_empty (decided_values t))

let decision_conflict t =
  let values = List.map snd (decided_values t) in
  List.mem true values && List.mem false values

let state_cores t = Array.map t.protocol.Protocol.state_core t.states

let fingerprint t =
  let b = Buffer.create (32 * t.n) in
  for p = 0 to t.n - 1 do
    if p > 0 then Buffer.add_char b '|';
    Buffer.add_string b (t.protocol.Protocol.state_core t.states.(p))
  done;
  Buffer.contents b

let config_fingerprint ?(include_counters = false) t =
  let b = Buffer.create (64 * t.n) in
  let pp_msg m = Format.asprintf "%a" t.protocol.Protocol.pp_message m in
  for p = 0 to t.n - 1 do
    Buffer.add_string b (t.protocol.Protocol.state_core t.states.(p));
    Buffer.add_char b (if t.crashed.(p) then 'C' else '.');
    Buffer.add_string b (string_of_int t.reset_counts.(p));
    Buffer.add_char b '~';
    Buffer.add_string b (Prng.Stream.fingerprint t.rngs.(p));
    (* Pending outbox: [outgoing] is pure (lint R8), so peeking at the
       sends the current state would emit observes outbox content
       without mutating the configuration. *)
    let _, sends = t.protocol.Protocol.outgoing t.states.(p) in
    List.iter
      (fun send ->
        match send with
        | Step.Unicast (dst, payload) ->
            Buffer.add_string b (Printf.sprintf ">u%d:%s" dst (pp_msg payload))
        | Step.Broadcast payload ->
            Buffer.add_string b (Printf.sprintf ">b:%s" (pp_msg payload)))
      sends;
    Buffer.add_char b '|'
  done;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "m%d>%d:%s;" e.Envelope.src e.Envelope.dst
           (pp_msg e.Envelope.payload)))
    (Mailbox.pending t.mailbox);
  if include_counters then
    Buffer.add_string b
      (Printf.sprintf "#s%d.w%d.i%d" t.step_index t.window_index t.next_msg_id);
  Buffer.contents b

(* Record a decision event when a state transition wrote the output bit. *)
let note_decision t p before_output =
  match (before_output, output t p) with
  | None, Some value ->
      Trace.record t.trace
        (Trace.Decided
           {
             pid = p;
             value;
             step = t.step_index;
             window = t.window_index;
             chain_depth = t.receive_depths.(p);
           })
  | _, _ -> ()

(* Enqueue one send value: O(1) regardless of fan-out.  A [Unicast]
   claims the next id; a [Broadcast] reserves n consecutive ids
   (id = first + dst, the order an eager expansion would assign) but
   stores the payload once in the mailbox's broadcast table. *)
let enqueue_send t p depth send =
  match send with
  | Step.Unicast (dst, payload) ->
      if dst < 0 || dst >= t.n then
        invalid_arg "Engine: protocol sent out of range";
      let id = t.next_msg_id in
      t.next_msg_id <- id + 1;
      Mailbox.add_unicast t.mailbox ~id ~src:p ~dst ~payload ~depth
        ~sent_at_step:t.step_index ~sent_in_window:t.window_index;
      Trace.record t.trace (Trace.Sent { src = p; dst; msg_id = id; depth })
  | Step.Broadcast payload ->
      let first = t.next_msg_id in
      t.next_msg_id <- first + t.n;
      Mailbox.add_broadcast t.mailbox ~first ~count:t.n ~src:p ~payload ~depth
        ~sent_at_step:t.step_index ~sent_in_window:t.window_index;
      Trace.record_broadcast t.trace ~src:p ~first ~count:t.n ~depth

let do_send t p =
  if not t.crashed.(p) then begin
    let state, sends = t.protocol.Protocol.outgoing t.states.(p) in
    t.states.(p) <- state;
    (* A sending step that actually emits messages is a "sending event"
       in the sense of Definition 15: it completes the response to the
       deliveries accumulated so far. *)
    if t.track_deliveries && not (List.is_empty sends) then
      t.recent_deliveries.(p) <- [];
    let depth = t.receive_depths.(p) + 1 in
    List.iter (fun send -> enqueue_send t p depth send) sends
  end

(* Deliver an envelope already removed from the mailbox: the tail of
   [do_deliver], shared with the batched sweep whose [Mailbox.drain_for]
   removes envelopes as it visits them. *)
let deliver_taken t (envelope : _ Envelope.t) =
  let id = envelope.Envelope.id in
  let dst = envelope.Envelope.dst in
  if t.crashed.(dst) then
    Trace.record t.trace (Trace.Dropped { msg_id = id })
  else begin
    let before = output t dst in
    t.states.(dst) <-
      t.protocol.Protocol.on_deliver t.states.(dst) ~src:envelope.Envelope.src
        envelope.Envelope.payload t.rngs.(dst);
    t.receive_depths.(dst) <- max t.receive_depths.(dst) envelope.Envelope.depth;
    if t.track_deliveries then
      t.recent_deliveries.(dst) <-
        (envelope.Envelope.src, envelope.Envelope.payload)
        :: t.recent_deliveries.(dst);
    Trace.record t.trace
      (Trace.Delivered
         {
           src = envelope.Envelope.src;
           dst;
           msg_id = id;
           depth = envelope.Envelope.depth;
         });
    note_decision t dst before
  end

let do_deliver t id =
  match Mailbox.take t.mailbox id with
  | None -> invalid_arg (Printf.sprintf "Engine: deliver of unknown message #%d" id)
  | Some envelope -> deliver_taken t envelope

let do_reset t p =
  if not t.crashed.(p) then begin
    t.states.(p) <- t.protocol.Protocol.on_reset t.states.(p);
    t.reset_counts.(p) <- t.reset_counts.(p) + 1;
    if t.track_deliveries then t.recent_deliveries.(p) <- [];
    Trace.record t.trace (Trace.Reset_done { pid = p })
  end

let do_crash t p =
  if not t.crashed.(p) then begin
    t.crashed.(p) <- true;
    Trace.record t.trace (Trace.Crashed { pid = p })
  end

let apply t step =
  t.step_index <- t.step_index + 1;
  match step with
  | Step.Send p -> do_send t p
  | Step.Deliver id -> do_deliver t id
  | Step.Drop id -> (
      match Mailbox.take t.mailbox id with
      | None -> invalid_arg (Printf.sprintf "Engine: drop of unknown message #%d" id)
      | Some _ -> Trace.record t.trace (Trace.Dropped { msg_id = id }))
  | Step.Reset p -> do_reset t p
  | Step.Crash p -> do_crash t p
  | Step.Corrupt (id, payload) ->
      if not (Mailbox.replace_payload t.mailbox id payload) then
        invalid_arg (Printf.sprintf "Engine: corrupt of unknown message #%d" id)

let apply_window t ?(drop_undelivered = true) ?tamper window =
  let fresh_from = t.next_msg_id in
  (* Phase 1: all processors take sending steps. *)
  for p = 0 to t.n - 1 do
    apply t (Step.Send p)
  done;
  let fresh_to = t.next_msg_id in
  (* In-transit corruption: the adversary may rewrite this window's
     fresh messages after they are sent and before any is delivered. *)
  (match tamper with None -> () | Some f -> f ~from_id:fresh_from ~til_id:fresh_to);
  (* Phase 2: each processor i receives the just-sent messages from S_i,
     in ascending (sender, id) order — "some fixed order".  The mailbox's
     per-destination queues and the window's receive-set masks make this
     a single allocation-free walk per processor. *)
  for dst = 0 to t.n - 1 do
    Mailbox.iter_for t.mailbox ~dst (fun e ->
        let id = e.Envelope.id in
        if
          id >= fresh_from && id < fresh_to
          && Window.allows window ~dst ~src:e.Envelope.src
        then apply t (Step.Deliver id))
  done;
  (* Undelivered fresh messages can never legally be delivered by a
     later window, so clear them out: one ascending merge walk over the
     window's own id range (near-free after full-delivery windows,
     where nothing fresh is left pending). *)
  if drop_undelivered then
    Mailbox.iter_ids_in_range t.mailbox ~from:fresh_from ~til:fresh_to
      (fun id -> apply t (Step.Drop id));
  (* Phase 3: at most t resetting steps. *)
  List.iter (fun p -> apply t (Step.Reset p)) (Window.resets window);
  t.window_index <- t.window_index + 1;
  Trace.record t.trace (Trace.Window_closed { index = t.window_index })

(* Fused sweep over a run of [count] consecutive uniform windows that
   share [mask] and reset nobody: one batch-condition check for the
   whole run, delivery through [Mailbox.drain_for] (visit + remove in a
   single merge walk, direct mask membership instead of the
   [Window.allows] indirection), and bulk window accounting at the end.
   Step-for-step identical to [count] [apply_window] calls — same
   sends, same ascending delivery order, same freshness checks, same
   drop sweep, same counter arithmetic — which the kernel-diff suite's
   batched-vs-sequential differential pins down. *)
let apply_uniform_run t ~drop_undelivered ~mask count =
  let allow src = Bitset.mem mask src in
  for _ = 1 to count do
    let fresh_from = t.next_msg_id in
    for p = 0 to t.n - 1 do
      apply t (Step.Send p)
    done;
    let fresh_to = t.next_msg_id in
    for dst = 0 to t.n - 1 do
      Mailbox.drain_for t.mailbox ~dst ~from:fresh_from ~til:fresh_to ~allow
        (fun e ->
          t.step_index <- t.step_index + 1;
          deliver_taken t e)
    done;
    if drop_undelivered then
      Mailbox.iter_ids_in_range t.mailbox ~from:fresh_from ~til:fresh_to
        (fun id -> apply t (Step.Drop id));
    t.window_index <- t.window_index + 1
  done;
  Trace.record_windows_closed t.trace ~count

(* A window joins a fused run iff it is uniform-represented (one shared
   fully-packed mask), resets nobody and matches the engine's arity;
   runs additionally require event recording to be off, because the
   bulk accounting elides the interleaved [Window_closed] events. *)
let fusable_mask t w =
  if Window.arity w = t.n && Window.reset_count w = 0 then Window.uniform_mask w
  else None

let apply_windows t ?(drop_undelivered = true) windows =
  let fuse_ok = not (Trace.recording_events t.trace) in
  let rec go = function
    | [] -> ()
    | w :: rest -> (
        match if fuse_ok then fusable_mask t w else None with
        | None ->
            apply_window t ~drop_undelivered w;
            go rest
        | Some mask ->
            let rec extend count = function
              | w2 :: tl ->
                  (match fusable_mask t w2 with
                  | Some m2 when m2 == mask || Bitset.equal m2 mask ->
                      extend (count + 1) tl
                  | Some _ | None -> (count, w2 :: tl))
              | [] -> (count, [])
            in
            let count, rest = extend 1 rest in
            apply_uniform_run t ~drop_undelivered ~mask count;
            go rest)
  in
  go windows

let deliver_all_pending t ~dst =
  Mailbox.iter_for t.mailbox ~dst (fun e ->
      apply t (Step.Deliver e.Envelope.id))
