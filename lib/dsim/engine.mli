(** The execution engine: configurations and step application.

    A configuration (Section 2) is the n-tuple of processor states plus
    the message buffer; the engine additionally tracks crash flags,
    reset counters, causal depths and the trace.  All mutation goes
    through {!apply} or {!apply_window}, so every execution is a
    deterministic function of (protocol, inputs, seed, adversary
    choices).

    Configurations are copyable ({!copy}); lookahead adversaries fork
    speculative executions and may re-randomize the fork ({!reseed}) to
    model their ignorance of coins not yet flipped. *)

type ('s, 'm) t

val init :
  protocol:('s, 'm) Protocol.t ->
  n:int ->
  fault_bound:int ->
  inputs:bool array ->
  seed:int ->
  ?record_events:bool ->
  ?sink:Trace.sink ->
  ?track_deliveries:bool ->
  unit ->
  ('s, 'm) t
(** Fresh configuration; every processor's outbox holds its initial
    messages (not yet sent: the first [Send] steps flush them).
    [track_deliveries] (default [false]) turns on the per-delivery
    conditioning log behind {!recent_deliveries}; leave it off for
    plain sweeps so the hot loop records nothing.  [sink] (default
    in-memory) selects where recorded events go — pass a streamed
    {!Trace.chunks} sink to keep multi-million-event audited runs at
    O(chunk) live heap; remember to {!Trace.flush} the trace at end of
    run. *)

val copy : ('s, 'm) t -> ('s, 'm) t
(** Deep copy: future steps on the copy do not affect the original.
    The copy replays the same coins unless {!reseed} is called. *)

val reseed : ('s, 'm) t -> Prng.Stream.t -> unit
(** Re-derive every processor's randomness stream from the given
    stream, so a forked configuration flips fresh coins. *)

val reseed_shared : ('s, 'm) t -> Prng.Stream.t -> unit
(** Give every processor an identical copy of [stream], so all coins
    are perfectly correlated.  The model checker uses this: safety must
    hold for {e every} coin assignment, including correlated ones, and
    identical per-processor streams make configurations equivariant
    under pid permutation — the precondition of its symmetry
    reduction. *)

(* {2 Accessors (the adversary's full-information view)} *)

val n : ('s, 'm) t -> int
val fault_bound : ('s, 'm) t -> int
val protocol : ('s, 'm) t -> ('s, 'm) Protocol.t
val state : ('s, 'm) t -> int -> 's
val observe : ('s, 'm) t -> int -> Obs.t
val observations : ('s, 'm) t -> Obs.t array
val output : ('s, 'm) t -> int -> bool option
val crashed : ('s, 'm) t -> int -> bool
val crashed_count : ('s, 'm) t -> int
val reset_count : ('s, 'm) t -> int -> int
val inputs : ('s, 'm) t -> bool array
val mailbox : ('s, 'm) t -> 'm Mailbox.t
val step_index : ('s, 'm) t -> int
val window_index : ('s, 'm) t -> int
val trace : ('s, 'm) t -> Trace.t
val receive_depth : ('s, 'm) t -> int -> int
(** Maximum causal depth among messages this processor has received. *)

val deliveries_tracked : ('s, 'm) t -> bool
(** Whether this configuration records the {!recent_deliveries} log. *)

val recent_deliveries : ('s, 'm) t -> int -> string list
(** Canonical "src:payload" strings of the messages delivered to this
    processor since its last message-emitting sending step (cleared by
    resets), most recent first.  This is exactly the data a forgetful
    algorithm (Definition 15) may condition its next messages on; the
    classifier keys on it.  The strings are rendered on demand from the
    recorded (src, payload) pairs; always [[]] unless the configuration
    was created with [~track_deliveries:true]. *)

val max_chain_depth : ('s, 'm) t -> int

val decided_values : ('s, 'm) t -> (int * bool) list
(** All processors with a written output bit. *)

val all_decided : ('s, 'm) t -> bool
(** Every non-crashed processor has decided. *)

val some_decided : ('s, 'm) t -> bool

val decision_conflict : ('s, 'm) t -> bool
(** Both a 0-output and a 1-output exist — a correctness violation. *)

val fingerprint : ('s, 'm) t -> string
(** Canonical digest of the per-processor states (via
    [Protocol.state_core]); two configurations with equal fingerprints
    agree on all decision-relevant processor memory.  Used by the
    Hamming-distance machinery of the lower bound. *)

val state_cores : ('s, 'm) t -> string array
(** Per-processor canonical cores (coordinate projection of
    {!fingerprint}); Hamming distance between configurations is
    computed coordinate-wise on these. *)

val config_fingerprint : ?include_counters:bool -> ('s, 'm) t -> string
(** Canonical rendering of the {e full} decision-relevant
    configuration: per-processor state cores, crash flags, reset
    counters, PRNG states, and pending outbox sends (peeked via the
    pure [outgoing]), plus the mailbox's in-transit envelopes.  Two
    configurations with equal fingerprints have identical futures
    under identical adversary choices, which is what memoized
    deduplication in the bounded model checker needs.  Causal receive
    depths and trace counters are excluded — they never feed a
    protocol transition; pass [~include_counters:true] to append
    step/window/message counters when distinguishing executions (not
    configurations) matters. *)

(* {2 Step application} *)

val apply : ('s, 'm) t -> 'm Step.t -> unit
(** Apply one step.  Steps addressing crashed processors are silent
    no-ops for [Send]/[Reset]; a [Deliver] to a crashed processor drops
    the message.  [Deliver]/[Drop]/[Corrupt] of an unknown message id
    raise [Invalid_argument] (the adversary is a deterministic function
    of the visible configuration, so this is a strategy bug). *)

val apply_window :
  ('s, 'm) t ->
  ?drop_undelivered:bool ->
  ?tamper:(from_id:int -> til_id:int -> unit) ->
  Window.t ->
  unit
(** Apply one acceptable window (Definition 1): sending steps for all
    non-crashed processors, then for each [i] deliver the just-sent
    messages from senders in [S_i] (ascending sender order), then the
    resetting steps.  When [drop_undelivered] (default [true]), fresh
    messages outside every receive set are dropped at window end —
    windows only ever deliver "just sent" messages, so stale messages
    can never be delivered later anyway.  [tamper], if given, runs
    after the sending phase and before any delivery, with the fresh id
    range [\[from_id, til_id)]; it is the hook for in-transit Byzantine
    corruption ([Step.Corrupt] on fresh ids) and is what the model
    checker's corruption menu drives. *)

val apply_windows : ('s, 'm) t -> ?drop_undelivered:bool -> Window.t list -> unit
(** Apply the windows in order, exactly as repeated {!apply_window}
    calls would — but runs of consecutive windows that share one
    fully-packed uniform receive mask ({!Window.uniform_mask}) and
    reset nobody are applied as one fused sweep: a single batch check,
    delivery through the mailbox's fused visit-and-remove walk with
    direct mask membership, and bulk trace accounting.  This is the
    shape every n-sweep bench and fault-free agreement run emits.
    Fusion silently falls back to per-window application when event
    recording is on (the bulk accounting would elide the interleaved
    [Window_closed] events) or when a window fails the batch
    conditions; results are step-for-step identical either way.
    Windows are not validated — callers run {!Window.validate} first,
    as {!Runner.run_windows} does. *)

val deliver_all_pending : ('s, 'm) t -> dst:int -> unit
(** Deliver every pending message addressed to [dst], ascending id. *)
