(** Execution traces and running-time accounting.

    A trace records the events of an execution at the granularity the
    paper measures: sends, deliveries, resets, crashes, decisions and
    window boundaries.  Recording full event lists is optional (long
    adversarial executions are exponentially long); the counters are
    always maintained.

    When events are recorded they flow into a {!sink}: the default
    in-memory store (today's unbounded list), a bounded ring keeping
    only the last k events, or a chunk-flushed streaming consumer that
    keeps O(chunk) live heap on multi-million-event runs.  Every sink
    maintains the same incremental {!events_fingerprint}, so a streamed
    run can prove itself bit-identical to an in-memory one without
    either holding the whole event list. *)

type event =
  | Sent of { src : int; dst : int; msg_id : int; depth : int }
  | Delivered of { src : int; dst : int; msg_id : int; depth : int }
  | Dropped of { msg_id : int }
  | Reset_done of { pid : int }
  | Crashed of { pid : int }
  | Decided of { pid : int; value : bool; step : int; window : int; chain_depth : int }
  | Window_closed of { index : int }

type sink =
  | Memory  (** Unbounded in-memory event list — the historical default. *)
  | Ring of int
      (** Keep only the last k events; {!events} returns the retained
          suffix in chronological order. *)
  | Chunks of { emit : string -> unit; chunk_bytes : int }
      (** Render events to text ({!pp_event} lines) and hand the
          consumer chunks of at least [chunk_bytes]; {!events} returns
          [[]].  Build with {!chunks} / {!to_buffer} / {!to_channel}. *)

val chunks : ?chunk_bytes:int -> (string -> unit) -> sink
(** Streaming sink with chunked flush (default 64 KiB).  Call {!flush}
    at end of run to push the final partial chunk. *)

val to_buffer : ?chunk_bytes:int -> Buffer.t -> sink
val to_channel : ?chunk_bytes:int -> out_channel -> sink

type t

val create : ?sink:sink -> record_events:bool -> unit -> t
(** [sink] defaults to [Memory].  The sink only matters when
    [record_events] is set; counters are maintained regardless. *)

val copy : t -> t
(** Independent counters and retained events.  A copied [Chunks] trace
    keeps its own scratch buffer but shares the downstream consumer. *)

val recording_events : t -> bool
(** Whether this trace keeps per-event records (the engine's batched
    window path only fuses when it does not, so event streams stay
    ordered). *)

val record : t -> event -> unit

val record_broadcast : t -> src:int -> first:int -> count:int -> depth:int -> unit
(** Account for a lazily-expanded broadcast occupying ids
    [first .. first + count - 1] (destination [dst] gets id
    [first + dst]): bumps the sent counter by [count] in O(1) and, when
    event recording is on, appends the same per-destination [Sent]
    events the eager expansion produced. *)

val record_windows_closed : t -> count:int -> unit
(** Bulk accounting for a fused run of [count] windows: bumps the
    windows-closed counter in O(1).  Counter-only, so it raises
    [Invalid_argument] when event recording is on — batched appliers
    must fall back to per-window application to keep the event stream
    ordered. *)

val flush : t -> unit
(** Push the streaming sink's pending partial chunk to its consumer;
    a no-op on the other sinks. *)

val events : t -> event list
(** Chronological; empty unless [record_events] was set.  Under a
    [Ring] sink, only the retained suffix; under [Chunks], always
    empty (the text already left through the consumer). *)

val events_fingerprint : t -> string
(** Incremental FNV-1a digest (16 hex chars) over the rendered text of
    every event recorded so far — identical across sinks for identical
    event sequences, and the basis of the streamed-vs-memory
    differential tests.  Constant (the empty-sequence digest) when
    [record_events] is off. *)

val sent : t -> int
val delivered : t -> int
val dropped : t -> int
val resets : t -> int
val crashes : t -> int
val windows_closed : t -> int

val decisions : t -> (int * bool * int * int * int) list
(** [(pid, value, step, window, chain_depth)] in decision order; always
    recorded, even when events are not. *)

val first_decision : t -> (int * bool * int * int * int) option

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
