(** Execution traces and running-time accounting.

    A trace records the events of an execution at the granularity the
    paper measures: sends, deliveries, resets, crashes, decisions and
    window boundaries.  Recording full event lists is optional (long
    adversarial executions are exponentially long); the counters are
    always maintained. *)

type event =
  | Sent of { src : int; dst : int; msg_id : int; depth : int }
  | Delivered of { src : int; dst : int; msg_id : int; depth : int }
  | Dropped of { msg_id : int }
  | Reset_done of { pid : int }
  | Crashed of { pid : int }
  | Decided of { pid : int; value : bool; step : int; window : int; chain_depth : int }
  | Window_closed of { index : int }

type t

val create : record_events:bool -> t
val copy : t -> t

val record : t -> event -> unit

val record_broadcast : t -> src:int -> first:int -> count:int -> depth:int -> unit
(** Account for a lazily-expanded broadcast occupying ids
    [first .. first + count - 1] (destination [dst] gets id
    [first + dst]): bumps the sent counter by [count] in O(1) and, when
    event recording is on, appends the same per-destination [Sent]
    events the eager expansion produced. *)

val events : t -> event list
(** Chronological; empty unless [record_events] was set. *)

val sent : t -> int
val delivered : t -> int
val dropped : t -> int
val resets : t -> int
val crashes : t -> int
val windows_closed : t -> int

val decisions : t -> (int * bool * int * int * int) list
(** [(pid, value, step, window, chain_depth)] in decision order; always
    recorded, even when events are not. *)

val first_decision : t -> (int * bool * int * int * int) option

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
