type t = {
  id : int;
  round : int;
  estimate : bool option;
  output : bool option;
  input : bool;
  resets : int;
  phase : int;
}

let make ~id ~round ~estimate ~output ~input ~resets ~phase =
  { id; round; estimate; output; input; resets; phase }

let decided t = Option.is_some t.output
let estimate_is t value =
  match t.estimate with Some b -> Bool.equal b value | None -> false

let pp_bit ppf = function
  | None -> Format.pp_print_string ppf "_"
  | Some true -> Format.pp_print_string ppf "1"
  | Some false -> Format.pp_print_string ppf "0"

let pp ppf t =
  Format.fprintf ppf "p%d[r=%d ph=%d x=%a out=%a in=%d resets=%d]" t.id t.round t.phase
    pp_bit t.estimate pp_bit t.output
    (if t.input then 1 else 0)
    t.resets
