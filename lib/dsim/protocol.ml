type props = {
  forgetful : bool;
  fully_communicative : bool;
  crash_resilience : int -> int;
  byzantine_resilience : int -> int;
  reset_resilience : int -> int;
}

type ('s, 'm) t = {
  name : string;
  init : n:int -> t:int -> id:int -> input:bool -> 's;
  outgoing : 's -> 's * 'm Step.send list;
  on_deliver : 's -> src:int -> 'm -> Prng.Stream.t -> 's;
  on_reset : 's -> 's;
  output : 's -> bool option;
  observe : 's -> Obs.t;
  message_bit : 'm -> bool option;
  message_round : 'm -> int option;
  message_origin : 'm -> int option;
  rewrite_bit : 'm -> bool -> 'm option;
  state_core : 's -> string;
  props : props;
  pp_message : Format.formatter -> 'm -> unit;
  pp_state : Format.formatter -> 's -> unit;
}

let default_props =
  {
    forgetful = false;
    fully_communicative = false;
    crash_resilience = (fun _ -> 0);
    byzantine_resilience = (fun _ -> 0);
    reset_resilience = (fun _ -> 0);
  }

let observe_default ~id ?(round = 1) ?(estimate = None) ?(output = None)
    ?(input = false) ?(resets = 0) ?(phase = 0) () =
  Obs.make ~id ~round ~estimate ~output ~input ~resets ~phase
