(** Fixed-capacity bitsets over pids [0 .. capacity-1].

    Backing store for {!Window}'s receive-set masks: membership is O(1)
    and population counts are O(capacity / word-size), which is what
    makes the engine's delivery loop and fault-free checks cheap.
    Out-of-range queries are total: [mem] answers [false] rather than
    raising, because windows may legally mention pids outside [0, n)
    (validation reports them; application just never matches them). *)

type t

val create : capacity:int -> t
(** Empty set over [0 .. capacity-1].  Raises [Invalid_argument] on a
    negative capacity. *)

val capacity : t -> int

val copy : t -> t

val full : capacity:int -> t
(** All of [0 .. capacity-1].  Backing store for the mailbox's
    broadcast pending sets, which start full and empty one delivery at
    a time.  Raises [Invalid_argument] on a negative capacity. *)

val mem : t -> int -> bool
(** O(1); [false] for any [i] outside [0, capacity). *)

val add : t -> int -> unit
(** Raises [Invalid_argument] outside [0, capacity). *)

val remove : t -> int -> unit
(** O(1); a no-op outside [0, capacity). *)

val next_from : t -> int -> int
(** [next_from t i] is the smallest member [>= i], or [-1] when there
    is none.  O(capacity / word-size) worst case. *)

val of_list : capacity:int -> int list -> t
(** Builds a set from a pid list, silently skipping out-of-range
    elements (callers keep the original list when they need to detect
    them, cf. {!Window.validate}). *)

val of_int_mask : capacity:int -> int -> t
(** Builds a set from a word-sized bit mask: member [i] iff bit [i] of
    the mask is set and [i < capacity].  This is the bridge from the
    model checker's [int] receive masks (n <= 62) to window masks
    without materializing an intermediate pid list.  Raises
    [Invalid_argument] on a negative mask or a capacity outside
    [0, Sys.int_size]. *)

val equal : t -> t -> bool
(** Same members; capacities may differ (trailing absent members are
    ignored).  O(capacity / word-size) — the batched window-application
    path uses this to detect runs of identical uniform windows. *)

val cardinal : t -> int
val cardinal_below : t -> int -> int
(** [cardinal_below t limit] is [|t ∩ \[0, limit)|]. *)

val to_list : t -> int list
(** Ascending. *)
