(** SplitMix64: a fast, splittable pseudo-random number generator.

    This is the generator of Steele, Lea and Flood ("Fast splittable
    pseudorandom number generators", OOPSLA 2014), chosen because the
    simulation needs one independent stream per processor plus streams
    for every adversary, all derived reproducibly from a single root
    seed.  Splitting derives a statistically independent child stream;
    the parent stream is advanced by the split so parent and child never
    collide. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed.  Distinct seeds
    give (with overwhelming probability) non-overlapping streams. *)

val copy : t -> t
(** [copy t] is an independent duplicate of the current state: both the
    copy and the original will produce the same future outputs.  Used to
    snapshot randomness when forking speculative executions. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val split : t -> t
(** [split t] derives a child generator and advances [t]. *)

val bool : t -> bool
(** Unbiased random bit. *)

val bits : t -> int
(** 30 uniform random bits, as a non-negative [int]. *)

val int_below : t -> int -> int
(** [int_below t bound] is uniform on [0, bound); requires [bound > 0].
    Uses rejection sampling, so it is exactly uniform. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int64_seed_of_int : int -> int64
(** Convenience: expand an [int] seed into a well-mixed 64-bit seed. *)

val raw_state : t -> int64
(** The current internal state word, unmodified.  Two generators with
    equal raw states produce identical future outputs; model-checking
    configuration fingerprints include it so memoized deduplication
    never merges configurations that could still diverge by coin
    flips. *)
