type t = Splitmix.t

let root seed = Splitmix.create (Splitmix.int64_seed_of_int seed)

let of_seed64 = Splitmix.create

(* Derivation is by value, not by consuming the parent: we mix the
   parent's current state with the index so that deriving index [i] is a
   pure function of (parent state, i). *)
let derive t i =
  let snapshot = Splitmix.copy t in
  let base = Splitmix.next_int64 snapshot in
  Splitmix.create
    (Int64.add
       (Int64.mul base 0x2545F4914F6CDD1DL)
       (Splitmix.int64_seed_of_int i))

(* FNV-1a over the name bytes: stable across OCaml versions and word
   sizes, unlike Hashtbl.hash, so name-derived streams reproduce
   identically on every toolchain. *)
let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let derive_name t name =
  let snapshot = Splitmix.copy t in
  let base = Splitmix.next_int64 snapshot in
  Splitmix.create
    (Int64.add (Int64.mul base 0x2545F4914F6CDD1DL) (fnv1a64 name))

let bool = Splitmix.bool
let int_below = Splitmix.int_below
let float = Splitmix.float
let bits = Splitmix.bits
let copy = Splitmix.copy

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else Splitmix.float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix.int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Stream.choose: empty array";
  a.(Splitmix.int_below t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Stream.sample_without_replacement";
  (* Partial Fisher–Yates over the index array. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Splitmix.int_below t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  List.sort compare (Array.to_list (Array.sub idx 0 k))

let fingerprint t = Printf.sprintf "%Lx" (Splitmix.raw_state t)
