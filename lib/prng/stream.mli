(** Named, hierarchically derived randomness streams.

    The simulator derives all randomness from one root seed:
    [root -> processor i -> window w] and so on.  Deriving by name
    (rather than by splitting in program order) makes the randomness a
    processor consumes independent of scheduling decisions taken by the
    adversary, which mirrors the model: the adversary controls delivery,
    not the coins. *)

type t
(** A stream; a thin stateful wrapper over {!Splitmix}. *)

val root : int -> t
(** [root seed] is the root stream of an experiment. *)

val of_seed64 : int64 -> t

val derive : t -> int -> t
(** [derive t i] is the [i]-th child stream; deriving the same index
    twice from streams in the same state yields identical children. *)

val derive_name : t -> string -> t
(** Derive a child keyed by a string label, hashed with FNV-1a so the
    derivation is identical across OCaml versions and word sizes. *)

val bool : t -> bool
val int_below : t -> int -> int
val float : t -> float
val bits : t -> int
val copy : t -> t

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] is a sorted list of [k] distinct
    values drawn uniformly from [0, n).  Requires [0 <= k <= n]. *)

val fingerprint : t -> string
(** Canonical rendering of the stream's current state: equal
    fingerprints imply identical future draws.  Used by the bounded
    model checker's configuration digests. *)
