type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The 64-bit finalizer of MurmurHash3 as used by SplitMix64. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

(* Variant finalizer used when deriving the gamma of a child stream. *)
let mix64_variant z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let child_seed = next_int64 t in
  create (mix64_variant child_seed)

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int_below t bound =
  if bound <= 0 then invalid_arg "Splitmix.int_below: bound must be positive";
  if bound = 1 then 0
  else begin
    (* Rejection sampling keeps the distribution exactly uniform: a draw
       [r] in [0, range) is rejected when it falls in the final partial
       block, i.e. when [r - (r mod bound) + bound > range]. *)
    let rec draw range gen =
      let r = gen () in
      let v = r mod bound in
      if r - v + bound > range then draw range gen else v
    in
    if bound <= 0x40000000 then draw 0x40000000 (fun () -> bits t)
    else
      draw (0x40000000 * 0x40000000) (fun () ->
          let hi = bits t in
          (hi lsl 30) lor bits t)
  end

let float t =
  (* 53 uniform bits into the mantissa. *)
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

let int64_seed_of_int n = mix64 (Int64.of_int n)

let raw_state t = t.state
