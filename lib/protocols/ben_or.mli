(** Ben-Or's randomized agreement protocol (PODC 1983), in the
    formulation whose correctness for [t < n/2] crash failures is proved
    by Aguilera and Toueg (the paper's reference [1]).

    Each round has two phases.  Report: broadcast [(R, r, x)] and wait
    for [n - t] round-[r] reports; if more than [n/2] carry the same [v]
    propose [v], otherwise propose [?].  Propose: wait for [n - t]
    round-[r] proposals; with at least [t + 1] proposals for [v] decide
    [v]; with at least one, adopt [x := v]; with none, flip a coin.

    The protocol is forgetful and fully communicative (Defs. 15/16) —
    it is the motivating member of the class Theorem 17's crash-failure
    lower bound applies to. *)

type message =
  | Report of { round : int; value : bool }
  | Propose of { round : int; value : bool option }
      (** [None] is the '?' proposal. *)

type state

val protocol :
  ?name:string ->
  ?decide_quorum:(n:int -> t:int -> int) ->
  unit ->
  (state, message) Dsim.Protocol.t
(** Resets are handled by restarting from the input bit (the protocol
    is not designed for the resetting model; its [reset_resilience] is
    0, and E1 measures what actually happens).

    [decide_quorum] overrides the [t + 1] matching-proposal decision
    threshold — a mutation-testing hook for the model checker's
    negative suite; give the mutant a distinct [name]. *)

(* White-box accessors for tests. *)
val round_of_state : state -> int
val phase_of_state : state -> [ `Report | `Propose ]
val estimate_of_state : state -> bool
