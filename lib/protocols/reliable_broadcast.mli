(** Bracha's reliable broadcast primitive (PODC 1984), the substrate of
    his [t < n/3]-resilient agreement protocol.

    For each broadcast instance — identified by (origin, tag) — every
    processor runs the echo/ready state machine:

    - on the origin's [Initial] message: send [Echo] to all;
    - on more than [(n + t) / 2] matching [Echo]s: send [Ready] to all;
    - on [t + 1] matching [Ready]s (if not yet sent): send [Ready];
    - on [2t + 1] matching [Ready]s: accept the payload.

    With [t < n/3] Byzantine processors this guarantees that correct
    processors accept at most one payload per instance and that if any
    correct processor accepts, all eventually do — equivocation is
    neutralized, which is exactly the power the strongly adaptive
    adversary is noted to lack.

    The module is a value-level component meant to be embedded in a
    protocol state; all operations are pure. *)

type 'p t
(** One processor's bookkeeping across all instances it has seen. *)

type 'p msg =
  | Initial of { tag : int; payload : 'p }
  | Echo of { origin : int; tag : int; payload : 'p }
  | Ready of { origin : int; tag : int; payload : 'p }

val create :
  ?echo_quorum:int ->
  ?ready_resend:int ->
  ?accept_quorum:int ->
  n:int ->
  t:int ->
  self:int ->
  equal:('p -> 'p -> bool) ->
  unit ->
  'p t
(** [equal] decides when two payloads match for quorum counting; it
    must be a structural, deterministic equality (polymorphic [=] is
    banned in this subtree by lint rule R7).

    The optional thresholds override the sound defaults — matching
    echoes needed to send [Ready] ([(n + t) / 2 + 1]), matching
    [Ready]s that trigger a relayed [Ready] ([t + 1]), and matching
    [Ready]s needed to accept ([2t + 1]).  They exist for
    mutation-style negative tests: the model checker deliberately
    weakens them and must then find a violating schedule. *)

val reset_like : 'p t -> 'p t
(** A fresh state with the same parameters (n, t, self, equality, and
    any overridden thresholds): what a resetting processor restarts
    with. *)

val broadcast : 'p t -> tag:int -> 'p -> 'p t * 'p msg Dsim.Step.send list
(** Start an instance as origin: the [Initial] send (a single
    [Step.Broadcast], expanded lazily by the engine).  Re-broadcasting
    a tag already used is ignored (empty sends). *)

val receive :
  'p t -> src:int -> 'p msg -> 'p t * 'p msg Dsim.Step.send list * (int * 'p) list
(** Process an incoming RBC message.  Returns the new state, sends to
    queue, and the list of [(origin, payload)] newly accepted by this
    call (at most one). *)

val accepted : 'p t -> tag:int -> (int * 'p) list
(** All [(origin, payload)] pairs accepted so far for a tag,
    ascending origin. *)

val accepted_count : 'p t -> tag:int -> int

val fingerprint : ('p -> string) -> 'p t -> string
(** Canonical serialization for state digests. *)
