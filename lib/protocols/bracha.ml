module Int_map = Map.Make (Int)

type vote = Val of bool | Dec of bool
type message = vote Reliable_broadcast.msg

let tag_of ~round ~phase = (round * 4) + phase
let round_of_tag tag = tag / 4
let phase_of_tag tag = tag mod 4

(* Incremental per-tag quorum counters: one bump when a vote is
   admitted, O(1) reads at every justification/threshold check.  These
   mirror [admitted] exactly; the per-delivery re-scans of the admitted
   maps they replaced were the cost linter's R13 findings. *)
type tally = { val_t : int; val_f : int; dec_t : int; dec_f : int }

let tally_empty = { val_t = 0; val_f = 0; dec_t = 0; dec_f = 0 }

let tally_add tally = function
  | Val true -> { tally with val_t = tally.val_t + 1 }
  | Val false -> { tally with val_f = tally.val_f + 1 }
  | Dec true -> { tally with dec_t = tally.dec_t + 1 }
  | Dec false -> { tally with dec_f = tally.dec_f + 1 }

let tally_with_bit tally bit =
  if bit then tally.val_t + tally.dec_t else tally.val_f + tally.dec_f

let tally_total tally = tally.val_t + tally.val_f + tally.dec_t + tally.dec_f

type state = {
  id : int;
  n : int;
  fault_bound : int;
  decide_at : int;  (* matching [Dec v] needed to decide; 2t+1 unless mutated *)
  input : bool;
  output : bool option;
  resets : int;
  round : int;
  phase : int;  (* 1..3: the acceptance quorum currently awaited *)
  x : bool;
  rbc : vote Reliable_broadcast.t;
  validated : bool;
  admitted : vote Int_map.t Int_map.t;  (* tag -> origin -> vote *)
  tallies : tally Int_map.t;  (* tag -> admitted-vote counts *)
  quarantine : (int * int * vote) list;  (* (tag, origin, vote), unjustified *)
  outbox_rev : message Dsim.Step.send list;  (* pending sends, newest first *)
}

let bit_of_vote = function Val b | Dec b -> b

let vote_equal a b =
  match (a, b) with
  | Val x, Val y | Dec x, Dec y -> Bool.equal x y
  | Val _, Dec _ | Dec _, Val _ -> false

let quorum state = state.n - state.fault_bound

let admitted_for state tag =
  Option.value ~default:Int_map.empty (Int_map.find_opt tag state.admitted)

let tally_for state tag =
  Option.value ~default:tally_empty (Int_map.find_opt tag state.tallies)

let admitted_count_with_bit state tag bit = tally_with_bit (tally_for state tag) bit

(* Bracha's validation filter, monotone form: can this vote have been
   produced by a correct processor, given the prior-phase votes this
   validator has itself admitted so far? *)
let justified state ~tag ~vote =
  let round = round_of_tag tag and phase = phase_of_tag tag in
  match phase with
  | 1 -> true (* round-r preferences can always come from a coin *)
  | 2 ->
      (* The sender saw an (n - t)-subset of phase-1 votes with
         majority v: needs at least floor((n-t)/2)+1 such votes. *)
      let v = bit_of_vote vote in
      let needed = ((state.n - state.fault_bound) / 2) + 1 in
      admitted_count_with_bit state (tag_of ~round ~phase:1) v >= needed
  | 3 -> (
      match vote with
      | Dec v ->
          (* The sender saw more than n/2 phase-2 votes for v. *)
          let needed = (state.n / 2) + 1 in
          admitted_count_with_bit state (tag_of ~round ~phase:2) v >= needed
      | Val _ -> true)
  | _ -> false

let admit state ~tag ~origin ~vote =
  let per_tag = admitted_for state tag in
  (* RBC accepts at most one payload per (origin, tag), so re-admission
     cannot happen; the guard keeps the tallies exact regardless. *)
  if Int_map.mem origin per_tag then state
  else
    {
      state with
      admitted = Int_map.add tag (Int_map.add origin vote per_tag) state.admitted;
      tallies = Int_map.add tag (tally_add (tally_for state tag) vote) state.tallies;
    }

(* Route a fresh RBC acceptance through the filter, then re-examine the
   quarantine until no more votes become justified (justification is
   monotone in the admitted sets, so this terminates). *)
(* The recursion drains the quarantine list; justification is
   monotone, so each quarantined vote is re-examined at most once per
   admission, amortized O(1) per delivered message. *)
(* lint: allow R15 *)
let rec ingest state ~tag ~origin ~vote =
  if (not state.validated) || justified state ~tag ~vote then
    let state = admit state ~tag ~origin ~vote in
    drain_quarantine state
  else { state with quarantine = (tag, origin, vote) :: state.quarantine }

and drain_quarantine state =
  (* The quarantine holds only accepted-but-unjustified votes, i.e.
     fabrications a Byzantine origin pushed through RBC — at most t per
     tag — and justification conditions move as admitted sets grow, so
     the monotone drain re-examines the (short) list rather than
     keeping counters. *)
  let ready, still =
    (* lint: allow R13 — short unjustified-vote list, not a quorum map *)
    List.partition (fun (tag, _, vote) -> justified state ~tag ~vote) state.quarantine
  in
  match ready with
  | [] -> state
  | _ ->
      let state = { state with quarantine = still } in
      (* lint: allow R13 — drains each quarantined vote exactly once *)
      List.fold_left
        (fun s (tag, origin, vote) -> ingest s ~tag ~origin ~vote)
        state ready

let rbc_broadcast state payload =
  let tag = tag_of ~round:state.round ~phase:state.phase in
  let rbc, sends = Reliable_broadcast.broadcast state.rbc ~tag payload in
  (* Our own broadcast is trivially justified for us.  [sends] is at
     most one [Step.Broadcast] value, so queueing it is O(1).
     (* lint: allow R12 *) *)
  { state with rbc; outbox_rev = List.rev_append sends state.outbox_rev }

(* Process a completed phase quorum.  [tally] is the admitted-vote
   count for the current (round, phase) tag — the incremental mirror of
   what used to be recomputed here by filtering the admitted list. *)
let finish_phase state tally rng =
  match state.phase with
  | 1 ->
      let ones = tally_with_bit tally true in
      let zeros = tally_with_bit tally false in
      let x = if ones > zeros then true else false in
      let state = { state with x; phase = 2 } in
      rbc_broadcast state (Val x)
  | 2 ->
      let half = state.n / 2 in
      let ones = tally_with_bit tally true in
      let zeros = tally_with_bit tally false in
      let payload =
        if ones > half then Dec true
        else if zeros > half then Dec false
        else Val state.x
      in
      let state = { state with phase = 3 } in
      rbc_broadcast state payload
  | 3 ->
      let dec_true = tally.dec_t in
      let dec_false = tally.dec_f in
      let decide_at = state.decide_at in
      let adopt_at = state.fault_bound + 1 in
      let output =
        match state.output with
        | Some _ as existing -> existing
        | None ->
            if dec_true >= decide_at then Some true
            else if dec_false >= decide_at then Some false
            else None
      in
      let x =
        if dec_true >= adopt_at && dec_true >= dec_false then true
        else if dec_false >= adopt_at then false
        else Prng.Stream.bool rng
      in
      let state = { state with output; x; round = state.round + 1; phase = 1 } in
      rbc_broadcast state (Val x)
  | _ -> assert false

let rec advance state rng =
  let tag = tag_of ~round:state.round ~phase:state.phase in
  let tally = tally_for state tag in
  if tally_total tally >= quorum state then advance (finish_phase state tally rng) rng
  else state

let init_with ?decide_at ~validated ~rbc ~n ~t ~id ~input () =
  let state =
    {
      id;
      n;
      fault_bound = t;
      decide_at = (match decide_at with None -> (2 * t) + 1 | Some d -> d);
      input;
      output = None;
      resets = 0;
      round = 1;
      phase = 1;
      x = input;
      rbc;
      validated;
      admitted = Int_map.empty;
      tallies = Int_map.empty;
      quarantine = [];
      outbox_rev = [];
    }
  in
  rbc_broadcast state (Val input)

(* One reversal per drain of the (short) send list: broadcasts are
   single [Step.Broadcast] values, not n envelopes.
   (* lint: allow R12 *) *)
let outgoing state = ({ state with outbox_rev = [] }, List.rev state.outbox_rev)

let on_deliver state ~src message rng =
  let rbc, sends, accepted = Reliable_broadcast.receive state.rbc ~src message in
  (* [sends] is at most one [Step.Broadcast] value: O(1) to queue.
     (* lint: allow R12 *) *)
  let state = { state with rbc; outbox_rev = List.rev_append sends state.outbox_rev } in
  let tag =
    match message with
    | Reliable_broadcast.Initial { tag; _ }
    | Reliable_broadcast.Echo { tag; _ }
    | Reliable_broadcast.Ready { tag; _ } ->
        tag
  in
  let state =
    (* lint: allow R13 — [accepted] has at most one element per receive *)
    List.fold_left
      (fun s (origin, vote) -> ingest s ~tag ~origin ~vote)
      state accepted
  in
  advance state rng

(* Like Ben-Or, Bracha has no re-join procedure: restart from input.
   [reset_like] keeps the RBC parameters (including any deliberately
   mutated thresholds) while clearing its instances. *)
let on_reset state =
  let restarted =
    init_with ~decide_at:state.decide_at ~validated:state.validated
      ~rbc:(Reliable_broadcast.reset_like state.rbc) ~n:state.n
      ~t:state.fault_bound ~id:state.id ~input:state.input ()
  in
  { restarted with output = state.output; resets = state.resets + 1 }

let output state = state.output

let observe state =
  Dsim.Obs.make ~id:state.id ~round:state.round ~estimate:(Some state.x)
    ~output:state.output ~input:state.input ~resets:state.resets ~phase:state.phase

let vote_fingerprint = function
  | Val true -> "V1"
  | Val false -> "V0"
  | Dec true -> "D1"
  | Dec false -> "D0"

let state_core state =
  let bit b = if b then '1' else '0' in
  let admitted =
    Int_map.bindings state.admitted
    |> List.map (fun (tag, votes) ->
           Printf.sprintf "%d{%s}" tag
             (Int_map.bindings votes
             |> List.map (fun (o, v) -> Printf.sprintf "%d%s" o (vote_fingerprint v))
             |> String.concat ","))
    |> String.concat ";"
  in
  Printf.sprintf "br:%d:%d:%d:%c:%s:%c:%d:%s:A{%s}:Q%d:%d" state.id state.round
    state.phase (bit state.x)
    (match state.output with None -> "_" | Some v -> String.make 1 (bit v))
    (bit state.input) state.resets
    (Reliable_broadcast.fingerprint vote_fingerprint state.rbc)
    admitted
    (List.length state.quarantine)
    (Dsim.Step.send_count ~n:state.n state.outbox_rev)

let pp_vote ppf v = Format.pp_print_string ppf (vote_fingerprint v)

let pp_message ppf = function
  | Reliable_broadcast.Initial { tag; payload } ->
      Format.fprintf ppf "init[%d]%a" tag pp_vote payload
  | Reliable_broadcast.Echo { origin; tag; payload } ->
      Format.fprintf ppf "echo[%d@%d]%a" tag origin pp_vote payload
  | Reliable_broadcast.Ready { origin; tag; payload } ->
      Format.fprintf ppf "ready[%d@%d]%a" tag origin pp_vote payload

let pp_state ppf state = Dsim.Obs.pp ppf (observe state)

let rewrite_vote vote bit =
  match vote with Val _ -> Val bit | Dec _ -> Dec bit

let protocol ?(validated = false) ?name ?decide_quorum ?rbc_echo_quorum
    ?rbc_ready_resend ?rbc_accept_quorum () =
  let name =
    match name with
    | Some n -> n
    | None -> if validated then "bracha-validated" else "bracha"
  in
  let apply_quorum f ~n ~t = Option.map (fun g -> g ~n ~t) f in
  {
    Dsim.Protocol.name = name;
    init =
      (fun ~n ~t ~id ~input ->
        let rbc =
          Reliable_broadcast.create
            ?echo_quorum:(apply_quorum rbc_echo_quorum ~n ~t)
            ?ready_resend:(apply_quorum rbc_ready_resend ~n ~t)
            ?accept_quorum:(apply_quorum rbc_accept_quorum ~n ~t)
            ~n ~t ~self:id ~equal:vote_equal ()
        in
        init_with ?decide_at:(apply_quorum decide_quorum ~n ~t) ~validated ~rbc
          ~n ~t ~id ~input ());
    outgoing;
    on_deliver;
    on_reset;
    output;
    observe;
    message_bit =
      (function
      | Reliable_broadcast.Initial { payload; _ }
      | Reliable_broadcast.Echo { payload; _ }
      | Reliable_broadcast.Ready { payload; _ } ->
          Some (bit_of_vote payload));
    message_round =
      (function
      | Reliable_broadcast.Initial { tag; _ }
      | Reliable_broadcast.Echo { tag; _ }
      | Reliable_broadcast.Ready { tag; _ } ->
          Some (round_of_tag tag));
    message_origin =
      (function
      | Reliable_broadcast.Initial _ -> None
      | Reliable_broadcast.Echo { origin; _ } | Reliable_broadcast.Ready { origin; _ } ->
          Some origin);
    rewrite_bit =
      (fun message bit ->
        match message with
        | Reliable_broadcast.Initial i ->
            Some (Reliable_broadcast.Initial { i with payload = rewrite_vote i.payload bit })
        | Reliable_broadcast.Echo e ->
            Some (Reliable_broadcast.Echo { e with payload = rewrite_vote e.payload bit })
        | Reliable_broadcast.Ready r ->
            Some (Reliable_broadcast.Ready { r with payload = rewrite_vote r.payload bit }));
    state_core;
    props =
      {
        Dsim.Protocol.forgetful = false;
        fully_communicative = false;
        crash_resilience = (fun n -> (n - 1) / 3);
        byzantine_resilience = (fun n -> (n - 1) / 3);
        reset_resilience = (fun _ -> 0);
      };
    pp_message;
    pp_state;
  }

let round_of_state state = state.round
let phase_of_state state = state.phase
let estimate_of_state state = state.x
let quarantined_count state = List.length state.quarantine
