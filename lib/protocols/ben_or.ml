module Round_map = Map.Make (Int)
module Int_map = Map.Make (Int)

type message =
  | Report of { round : int; value : bool }
  | Propose of { round : int; value : bool option }

type phase = Report_wait | Propose_wait

(* Proposal tally: at most one proposal per sender; counts per bit plus
   a total, so quorum checks never re-scan the map (lint R13). *)
type ptally = {
  proposals : bool option Int_map.t;
  p_true : int;
  p_false : int;
  p_count : int;  (* |proposals|, including '?' entries *)
}

let ptally_empty =
  { proposals = Int_map.empty; p_true = 0; p_false = 0; p_count = 0 }

let ptally_add t ~src value =
  if Int_map.mem src t.proposals then t
  else
    {
      proposals = Int_map.add src value t.proposals;
      p_true = (t.p_true + match value with Some true -> 1 | _ -> 0);
      p_false = (t.p_false + match value with Some false -> 1 | _ -> 0);
      p_count = t.p_count + 1;
    }

let ptally_count t = t.p_count

let ptally_fingerprint t =
  Int_map.bindings t.proposals
  |> List.map (fun (src, v) ->
         Printf.sprintf "%d:%s" src
           (match v with None -> "?" | Some true -> "1" | Some false -> "0"))
  |> String.concat ","

type state = {
  id : int;
  n : int;
  fault_bound : int;
  decide_at : int;  (* matching proposals needed to decide; t+1 unless mutated *)
  input : bool;
  output : bool option;
  resets : int;
  round : int;
  phase : phase;
  x : bool;
  reports : Tally.t Round_map.t;
  proposals : ptally Round_map.t;
  outbox_rev : message Dsim.Step.send list;  (* pending sends, newest first *)
}

let reports_for state round =
  Option.value ~default:Tally.empty (Round_map.find_opt round state.reports)

let proposals_for state round =
  Option.value ~default:ptally_empty (Round_map.find_opt round state.proposals)

let wait_quorum state = state.n - state.fault_bound

(* Phase transition once the report quorum for the current round is in:
   propose the strict majority value if one exists, else '?'. *)
let finish_report_phase state =
  let tally = reports_for state state.round in
  let half = state.n / 2 in
  let proposal =
    if Tally.count_value tally true > half then Some true
    else if Tally.count_value tally false > half then Some false
    else None
  in
  let state = { state with phase = Propose_wait } in
  {
    state with
    outbox_rev =
      Dsim.Step.Broadcast (Propose { round = state.round; value = proposal })
      :: state.outbox_rev;
  }

(* Round transition once the proposal quorum is in: decide on t+1
   agreeing proposals, adopt on one, flip a coin on none. *)
let finish_propose_phase state rng =
  let tally = proposals_for state state.round in
  let decide_at = state.decide_at in
  let output =
    match state.output with
    | Some _ as existing -> existing
    | None ->
        if tally.p_true >= decide_at then Some true
        else if tally.p_false >= decide_at then Some false
        else None
  in
  let x =
    (* At most one value can be proposed by correct processors (two
       strict majorities of reports would intersect), but Byzantine
       corruption can make both appear; prefer the better-supported. *)
    if tally.p_true = 0 && tally.p_false = 0 then Prng.Stream.bool rng
    else if tally.p_true > tally.p_false then true
    else if tally.p_false > tally.p_true then false
    else state.x
  in
  let next_round = state.round + 1 in
  (* Garbage-collect rounds left behind, once per round transition; the
     maps hold only the few rounds with in-flight messages, not n
     entries.  (* lint: allow R13 *) *)
  let reports = Round_map.filter (fun r _ -> r >= next_round) state.reports in
  (* lint: allow R13 — same once-per-round sweep as [reports] above *)
  let proposals = Round_map.filter (fun r _ -> r >= next_round) state.proposals in
  let state =
    { state with output; x; round = next_round; phase = Report_wait; reports; proposals }
  in
  {
    state with
    outbox_rev =
      Dsim.Step.Broadcast (Report { round = next_round; value = x })
      :: state.outbox_rev;
  }

let rec advance state rng =
  let quorum = wait_quorum state in
  match state.phase with
  | Report_wait ->
      if Tally.count (reports_for state state.round) >= quorum then
        advance (finish_report_phase state) rng
      else state
  | Propose_wait ->
      if ptally_count (proposals_for state state.round) >= quorum then
        advance (finish_propose_phase state rng) rng
      else state

let fresh ?decide_at ~n ~t ~id ~input ~resets () =
  let state =
    {
      id;
      n;
      fault_bound = t;
      decide_at = (match decide_at with None -> t + 1 | Some d -> d);
      input;
      output = None;
      resets;
      round = 1;
      phase = Report_wait;
      x = input;
      reports = Round_map.empty;
      proposals = Round_map.empty;
      outbox_rev = [];
    }
  in
  {
    state with
    outbox_rev = [ Dsim.Step.Broadcast (Report { round = 1; value = input }) ];
  }

(* One reversal per drain of the (short) send list: broadcasts are
   single [Step.Broadcast] values, not n envelopes.
   (* lint: allow R12 *) *)
let outgoing state = ({ state with outbox_rev = [] }, List.rev state.outbox_rev)

let on_deliver state ~src message rng =
  match message with
  | Report { round; value } ->
      if round < state.round then state
      else
        let tally = Tally.add (reports_for state round) ~src value in
        advance { state with reports = Round_map.add round tally state.reports } rng
  | Propose { round; value } ->
      if round < state.round then state
      else
        let tally = ptally_add (proposals_for state round) ~src value in
        advance { state with proposals = Round_map.add round tally state.proposals } rng

(* Ben-Or has no re-join procedure: a reset processor restarts from its
   input.  Its output bit survives, per the model. *)
let on_reset state =
  let restarted =
    fresh ~decide_at:state.decide_at ~n:state.n ~t:state.fault_bound
      ~id:state.id ~input:state.input ~resets:(state.resets + 1) ()
  in
  { restarted with output = state.output }

let output state = state.output

let observe state =
  Dsim.Obs.make ~id:state.id ~round:state.round ~estimate:(Some state.x)
    ~output:state.output ~input:state.input ~resets:state.resets
    ~phase:(match state.phase with Report_wait -> 0 | Propose_wait -> 1)

let state_core state =
  let bit b = if b then '1' else '0' in
  let reports =
    Round_map.bindings state.reports
    |> List.map (fun (r, t) -> Printf.sprintf "%d[%s]" r (Tally.fingerprint t))
    |> String.concat ";"
  in
  let proposals =
    Round_map.bindings state.proposals
    |> List.map (fun (r, t) -> Printf.sprintf "%d[%s]" r (ptally_fingerprint t))
    |> String.concat ";"
  in
  Printf.sprintf "bo:%d:%d:%d:%c:%s:%c:%d:R{%s}:P{%s}:%d" state.id state.round
    (match state.phase with Report_wait -> 0 | Propose_wait -> 1)
    (bit state.x)
    (match state.output with None -> "_" | Some v -> String.make 1 (bit v))
    (bit state.input) state.resets reports proposals
    (Dsim.Step.send_count ~n:state.n state.outbox_rev)

let pp_message ppf = function
  | Report { round; value } ->
      Format.fprintf ppf "R(%d,%d)" round (if value then 1 else 0)
  | Propose { round; value } ->
      Format.fprintf ppf "P(%d,%s)" round
        (match value with None -> "?" | Some true -> "1" | Some false -> "0")

let pp_state ppf state = Dsim.Obs.pp ppf (observe state)

let protocol ?(name = "ben-or") ?decide_quorum () =
  {
    Dsim.Protocol.name = name;
    init =
      (fun ~n ~t ~id ~input ->
        let decide_at = Option.map (fun f -> f ~n ~t) decide_quorum in
        fresh ?decide_at ~n ~t ~id ~input ~resets:0 ());
    outgoing;
    on_deliver;
    on_reset;
    output;
    observe;
    message_bit =
      (function
      | Report { value; _ } -> Some value
      | Propose { value; _ } -> value);
    message_round =
      (function Report { round; _ } | Propose { round; _ } -> Some round);
    message_origin = (fun _ -> None);
    rewrite_bit =
      (fun message bit ->
        match message with
        | Report r -> Some (Report { r with value = bit })
        | Propose p -> Some (Propose { p with value = Some bit }));
    state_core;
    props =
      {
        Dsim.Protocol.forgetful = true;
        fully_communicative = true;
        crash_resilience = (fun n -> (n - 1) / 2);
        byzantine_resilience = (fun n -> (n - 1) / 5);
        reset_resilience = (fun _ -> 0);
      };
    pp_message;
    pp_state;
  }

let round_of_state state = state.round

let phase_of_state state =
  match state.phase with Report_wait -> `Report | Propose_wait -> `Propose

let estimate_of_state state = state.x
