(** Typed taxonomy of protocol-construction errors.

    Every way a protocol constructor can reject its arguments is one of
    these variants; [raise_error] renders it and raises
    [Invalid_argument], so existing [try ... with Invalid_argument _]
    callers keep working while programmatic callers can build and
    pattern-match the variants directly.

    The rendered messages are pinned by the test suite — treat them as
    API. *)

type t =
  | Infeasible_thresholds of { who : string; n : int; t : int; reason : string }
      (** The (T1, T2, T3) triple implied by (n, t) — or supplied
          explicitly — fails {!Thresholds.validate}. [who] is the
          rejecting constructor (e.g. ["Thresholds.default"]),
          [reason] the first violated inequality. *)
  | Origin_out_of_range of { who : string; origin : int; n : int }
      (** A designated-sender index outside [0, n). *)
  | Input_arity_mismatch of { who : string; expected : int; got : int }
      (** An input vector whose length disagrees with [n]. *)

val to_string : t -> string
(** Render the pinned diagnostic message (no trailing newline). *)

val raise_error : t -> 'a
(** [raise_error e] raises [Invalid_argument (to_string e)]. *)
