type params = {
  committee_size : int;
  election_rounds : int;
  adaptive_attack : bool;
  seed : int;
}

let default_params ~n ~seed =
  let log2n = int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0)) in
  { committee_size = max 4 (2 * log2n); election_rounds = 3; adaptive_attack = false; seed }

type report = {
  levels : int;
  rounds : int;
  final_committee : int list;
  final_bad_fraction : float;
  decision : bool option;
  valid : bool;
  hijacked : bool;
}

let partition ~size members =
  (* Contiguous groups of [size]; a short tail merges into the previous
     group so no group is smaller than [size] (except a single group). *)
  let members = Array.of_list members in
  let total = Array.length members in
  let group_count = max 1 (total / size) in
  List.init group_count (fun g ->
      let start = g * size in
      let stop = if g = group_count - 1 then total else start + size in
      Array.to_list (Array.sub members start (stop - start)))

let bad_fraction ~corrupt group =
  let bad = List.length (List.filter (fun p -> List.mem p corrupt) group) in
  float_of_int bad /. float_of_int (max 1 (List.length group))

(* One committee's election: the [elect] members who advance.  An
   honest committee elects uniformly; a committee with >= 1/3 corrupt
   members is adversary-controlled and advances corrupt members first. *)
let elect ~corrupt ~elect_count rng group =
  let size = List.length group in
  let elect_count = min elect_count size in
  if bad_fraction ~corrupt group < 1.0 /. 3.0 then begin
    let arr = Array.of_list group in
    Prng.Stream.shuffle rng arr;
    Array.to_list (Array.sub arr 0 elect_count)
  end
  else begin
    let bad, good = List.partition (fun p -> List.mem p corrupt) group in
    let chosen = bad @ good in
    List.filteri (fun i _ -> i < elect_count) chosen
  end

(* The final committee really runs Bracha on the engine; corrupt
   members vote the opposite of the honest majority to maximize their
   influence. *)
let run_final_committee params ~corrupt ~inputs committee =
  let size = List.length committee in
  let arr = Array.of_list committee in
  let honest_inputs = List.filter (fun p -> not (List.mem p corrupt)) committee in
  let honest_ones =
    List.length (List.filter (fun p -> inputs.(p)) honest_inputs)
  in
  let honest_majority = 2 * honest_ones >= List.length honest_inputs in
  let member_inputs =
    Array.map
      (fun p -> if List.mem p corrupt then not honest_majority else inputs.(p))
      arr
  in
  let t = max 0 ((size - 1) / 3) in
  let protocol = Bracha.protocol () in
  let config =
    Dsim.Engine.init ~protocol ~n:size ~fault_bound:t ~inputs:member_inputs
      ~seed:params.seed ()
  in
  (* Drive the run with a local lockstep agenda (inlined rather than
     using the adversary library, which depends on this one). *)
  let queue = Queue.create () in
  let strategy cfg =
    if Queue.is_empty queue then begin
      let sends = List.init size (fun p -> Dsim.Step.Send p) in
      let delivers =
        List.map
          (fun id -> Dsim.Step.Deliver id)
          (Dsim.Mailbox.pending_ids (Dsim.Engine.mailbox cfg))
      in
      List.iter (fun s -> Queue.add s queue) (sends @ delivers)
    end;
    if Queue.is_empty queue then None else Some (Queue.pop queue)
  in
  let outcome =
    Dsim.Runner.run_steps config ~strategy ~max_steps:2_000_000 ~stop:`First_decision
  in
  let rounds =
    (* Bracha rounds completed, read off the first decider's round. *)
    match outcome.Dsim.Runner.first_decision with
    | Some (pid, _, _, _, _) ->
        (Dsim.Engine.observe config pid).Dsim.Obs.round
    | None -> 0
  in
  let decision =
    match outcome.Dsim.Runner.decided with [] -> None | (_, v) :: _ -> Some v
  in
  (decision, rounds)

let run params ~n ~corrupt ~inputs =
  if Array.length inputs <> n then
    Protocol_error.raise_error
      (Input_arity_mismatch
         { who = "Committee.run"; expected = n; got = Array.length inputs });
  let rng = Prng.Stream.root params.seed in
  let rec build level members rounds =
    if List.length members <= params.committee_size then (level, members, rounds)
    else
      let groups = partition ~size:params.committee_size members in
      let elect_count = max 1 (params.committee_size / 2) in
      let survivors =
        List.concat_map (fun g -> elect ~corrupt ~elect_count rng g) groups
      in
      (* Guard against a stuck level (can only happen with degenerate
         sizes): force progress by truncation. *)
      let survivors =
        if List.length survivors >= List.length members then
          List.filteri (fun i _ -> i < List.length members / 2) survivors
        else survivors
      in
      build (level + 1) survivors (rounds + params.election_rounds)
  in
  let levels, final_committee, election_cost = build 0 (List.init n (fun i -> i)) 0 in
  let corrupt =
    if params.adaptive_attack then
      (* The adaptive adversary waits for the final committee to be
         determined, then corrupts exactly its members. *)
      final_committee
    else corrupt
  in
  let final_bad = bad_fraction ~corrupt final_committee in
  let hijacked = final_bad >= 1.0 /. 3.0 in
  let decision, final_rounds =
    if hijacked then
      (* The adversary dictates: output the value fewer honest
         processors started with (worst case: possibly invalid). *)
      let ones = Array.fold_left (fun a b -> if b then a + 1 else a) 0 inputs in
      let minority = not (2 * ones >= n) in
      (Some minority, 1)
    else run_final_committee params ~corrupt ~inputs final_committee
  in
  let valid =
    match decision with
    | None -> true
    | Some v -> Array.exists (fun input -> input = v) inputs
  in
  {
    levels;
    rounds = election_cost + final_rounds;
    final_committee;
    final_bad_fraction = final_bad;
    decision;
    valid;
    hijacked;
  }
