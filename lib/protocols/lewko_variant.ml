module Round_map = Map.Make (Int)

type message = { round : int; value : bool }

type mode = Normal | Recovering

type state = {
  id : int;
  n : int;
  fault_bound : int;
  thresholds : Thresholds.t;
  input : bool;
  output : bool option;
  resets : int;
  mode : mode;
  round : int;  (* meaningful in Normal mode *)
  x : bool;  (* meaningful in Normal mode *)
  tallies : Tally.t Round_map.t;  (* votes for current and future rounds *)
  outbox : message Dsim.Step.send list;
}

let tally_for state round =
  Option.value ~default:Tally.empty (Round_map.find_opt round state.tallies)

(* Step 3 of the algorithm, applied to the T1 (or more) votes collected
   for [round]: decide on T2 agreement, adopt on T3 agreement, otherwise
   flip a coin.  Returns the state advanced to [round + 1] with the next
   vote queued (step 4 + step 1). *)
let process_round ~coin state round rng =
  let tally = tally_for state round in
  let votes_for v = Tally.count_value tally v in
  let { Thresholds.t2; t3; _ } = state.thresholds in
  let output =
    match state.output with
    | Some _ as existing -> existing
    | None ->
        if votes_for true >= t2 then Some true
        else if votes_for false >= t2 then Some false
        else None
  in
  let x =
    if votes_for true >= t3 then true
    else if votes_for false >= t3 then false
    else coin rng
  in
  let next_round = round + 1 in
  (* Prune tallies for rounds now in the past. *)
  let tallies = Round_map.filter (fun r _ -> r >= next_round) state.tallies in
  let state = { state with output; x; round = next_round; tallies; mode = Normal } in
  {
    state with
    outbox = state.outbox @ [ Dsim.Step.Broadcast { round = next_round; value = x } ];
  }

(* Fire every round whose tally has reached T1, in order.  In windowed
   executions at most one round fires per delivery, but free-running
   schedules can make several rounds ready at once. *)
let rec advance ~coin state rng =
  let t1 = state.thresholds.Thresholds.t1 in
  match state.mode with
  | Normal ->
      if Tally.count (tally_for state state.round) >= t1 then
        advance ~coin (process_round ~coin state state.round rng) rng
      else state
  | Recovering -> (
      (* Adopt the smallest round that has gathered T1 votes. *)
      let ready =
        Round_map.fold
          (fun round tally acc ->
            match acc with
            | Some _ -> acc
            | None -> if Tally.count tally >= t1 then Some round else None)
          state.tallies None
      in
      match ready with
      | None -> state
      | Some round -> advance ~coin (process_round ~coin state round rng) rng)

let init thresholds ~n ~t ~id ~input =
  (match Thresholds.validate ~n ~t thresholds with
  | Ok () -> ()
  | Error message ->
      Protocol_error.raise_error
        (Infeasible_thresholds
           { who = "Lewko_variant.init"; n; t; reason = message }));
  let state =
    {
      id;
      n;
      fault_bound = t;
      thresholds;
      input;
      output = None;
      resets = 0;
      mode = Normal;
      round = 1;
      x = input;
      tallies = Round_map.empty;
      outbox = [];
    }
  in
  { state with outbox = [ Dsim.Step.Broadcast { round = 1; value = input } ] }

let outgoing state = ({ state with outbox = [] }, state.outbox)

let on_deliver ~coin state ~src (message : message) rng =
  let relevant =
    match state.mode with
    | Normal -> message.round >= state.round
    | Recovering -> true
  in
  if not relevant then state
  else
    let tally = Tally.add (tally_for state message.round) ~src message.value in
    let state = { state with tallies = Round_map.add message.round tally state.tallies } in
    advance ~coin state rng

(* A reset erases everything but input, output, identity and the reset
   counter; the processor re-joins via the Recovering mode. *)
let on_reset state =
  {
    state with
    resets = state.resets + 1;
    mode = Recovering;
    round = -1;
    tallies = Round_map.empty;
    outbox = [];
  }

let output state = state.output

let observe state =
  Dsim.Obs.make ~id:state.id
    ~round:(match state.mode with Normal -> state.round | Recovering -> -1)
    ~estimate:(match state.mode with Normal -> Some state.x | Recovering -> None)
    ~output:state.output ~input:state.input ~resets:state.resets
    ~phase:(match state.mode with Normal -> 0 | Recovering -> 1)

let state_core state =
  let tallies =
    Round_map.bindings state.tallies
    |> List.map (fun (r, tally) -> Printf.sprintf "%d[%s]" r (Tally.fingerprint tally))
    |> String.concat ";"
  in
  let bit b = if b then '1' else '0' in
  Printf.sprintf "lv:%d:%c:%s:%d:%c:%c:%d:%s:%d" state.id
    (match state.mode with Normal -> 'N' | Recovering -> 'R')
    (match state.output with None -> "_" | Some v -> String.make 1 (bit v))
    state.round (bit state.x) (bit state.input) state.resets tallies
    (Dsim.Step.send_count ~n:state.n state.outbox)

let pp_message ppf (m : message) =
  Format.fprintf ppf "(%d,%d)" m.round (if m.value then 1 else 0)

let pp_state ppf state =
  Format.fprintf ppf "%a" Dsim.Obs.pp (observe state)

let protocol ?thresholds ?(coin = Prng.Stream.bool) () =
  {
    Dsim.Protocol.name = "lewko-variant";
    init =
      (fun ~n ~t ~id ~input ->
        let th =
          match thresholds with Some th -> th | None -> Thresholds.default ~n ~t
        in
        init th ~n ~t ~id ~input);
    outgoing;
    on_deliver = on_deliver ~coin;
    on_reset;
    output;
    observe;
    message_bit = (fun m -> Some m.value);
    message_round = (fun m -> Some m.round);
    message_origin = (fun _ -> None);
    rewrite_bit = (fun m value -> Some { m with value });
    state_core;
    props =
      {
        Dsim.Protocol.forgetful = true;
        fully_communicative = true;
        crash_resilience = (fun n -> Thresholds.max_fault_bound ~n);
        byzantine_resilience = (fun _ -> 0);
        reset_resilience = (fun n -> Thresholds.max_fault_bound ~n);
      };
    pp_message;
    pp_state;
  }

let round_of_state state =
  match state.mode with Normal -> state.round | Recovering -> -1

let estimate_of_state state =
  match state.mode with Normal -> Some state.x | Recovering -> None

let pending_votes state ~round = Tally.count (tally_for state round)
