type t = { t1 : int; t2 : int; t3 : int }

let validate ~n ~t th =
  if n <= 0 then Error "n must be positive"
  else if t < 0 then Error "t must be non-negative"
  else if not (n - (2 * t) >= th.t1) then Error "need n - 2t >= T1"
  else if not (th.t1 >= th.t2) then Error "need T1 >= T2"
  else if not (th.t2 >= th.t3 + t) then Error "need T2 >= T3 + t"
  else if not (2 * th.t3 > n) then Error "need 2*T3 > n"
  else if not (2 * th.t3 > th.t1) then Error "need 2*T3 > T1"
  else if th.t3 <= 0 then Error "T3 must be positive"
  else Ok ()

let default ~n ~t =
  let candidate = { t1 = n - (2 * t); t2 = n - (2 * t); t3 = n - (3 * t) } in
  match validate ~n ~t candidate with
  | Ok () -> candidate
  | Error message ->
      Protocol_error.raise_error
        (Infeasible_thresholds
           { who = "Thresholds.default"; n; t; reason = message })

let feasible ~n ~t =
  match validate ~n ~t { t1 = n - (2 * t); t2 = n - (2 * t); t3 = n - (3 * t) } with
  | Ok () -> true
  | Error _ -> false

let max_fault_bound ~n =
  (* Largest t with 6t < n; Theorem 4's t < n/6 regime. *)
  let candidate = (n - 1) / 6 in
  if candidate < 0 then 0 else candidate

let relaxed ~n ~t =
  (* Smallest valid T3 (a bare majority), then the smallest valid T2. *)
  let t3 = (n / 2) + 1 in
  let candidate = { t1 = n - (2 * t); t2 = t3 + t; t3 } in
  match validate ~n ~t candidate with
  | Ok () -> candidate
  | Error message ->
      Protocol_error.raise_error
        (Infeasible_thresholds
           { who = "Thresholds.relaxed"; n; t; reason = message })

let pp ppf th = Format.fprintf ppf "T1=%d T2=%d T3=%d" th.t1 th.t2 th.t3
