type message = bool Reliable_broadcast.msg

type state = {
  id : int;
  n : int;
  origin : int;
  input : bool;
  output : bool option;
  resets : int;
  rbc : bool Reliable_broadcast.t;
  outbox_rev : message Dsim.Step.send list;  (* pending sends, newest first *)
}

let tag = 0

let start state =
  if state.id = state.origin then
    let rbc, sends = Reliable_broadcast.broadcast state.rbc ~tag state.input in
    (* At most one [Step.Broadcast] value: O(1) to queue.
       (* lint: allow R12 *) *)
    { state with rbc; outbox_rev = List.rev_append sends state.outbox_rev }
  else state

let init_with ?echo_quorum ?ready_resend ?accept_quorum ~origin ~n ~t ~id
    ~input () =
  start
    {
      id;
      n;
      origin;
      input;
      output = None;
      resets = 0;
      rbc =
        Reliable_broadcast.create ?echo_quorum ?ready_resend ?accept_quorum ~n
          ~t ~self:id ~equal:Bool.equal ();
      outbox_rev = [];
    }

(* One reversal per drain of the (short) send list.
   (* lint: allow R12 *) *)
let outgoing state = ({ state with outbox_rev = [] }, List.rev state.outbox_rev)

let on_deliver state ~src message _rng =
  let rbc, sends, accepted = Reliable_broadcast.receive state.rbc ~src message in
  (* [sends] is at most one [Step.Broadcast] value: O(1) to queue.
     (* lint: allow R12 *) *)
  let state = { state with rbc; outbox_rev = List.rev_append sends state.outbox_rev } in
  (* Decide on the origin's instance, write-once.  [accepted] carries
     at most one acceptance per receive, so this scan is O(1). *)
  match
    if Option.is_some state.output then None
    else
      (* lint: allow R13 *)
      List.find_map
        (fun (origin, payload) ->
          if origin = state.origin then Some payload else None)
        accepted
  with
  | None -> state
  | Some payload -> { state with output = Some payload }

(* A reset processor restarts its RBC bookkeeping (keeping any mutated
   thresholds); the origin re-broadcasts.  The output bit survives, per
   the model. *)
let on_reset state =
  start
    {
      state with
      rbc = Reliable_broadcast.reset_like state.rbc;
      outbox_rev = [];
      resets = state.resets + 1;
    }

let output state = state.output

let observe state =
  Dsim.Obs.make ~id:state.id ~round:0
    ~estimate:state.output ~output:state.output ~input:state.input
    ~resets:state.resets ~phase:0

let state_core state =
  let bit b = if b then '1' else '0' in
  Printf.sprintf "rb:%d:%d:%s:%c:%d:%s:%d" state.id state.origin
    (match state.output with None -> "_" | Some v -> String.make 1 (bit v))
    (bit state.input) state.resets
    (Reliable_broadcast.fingerprint (fun b -> if b then "1" else "0") state.rbc)
    (Dsim.Step.send_count ~n:state.n state.outbox_rev)

let pp_payload ppf b = Format.pp_print_int ppf (if b then 1 else 0)

let pp_message ppf = function
  | Reliable_broadcast.Initial { tag; payload } ->
      Format.fprintf ppf "init[%d]%a" tag pp_payload payload
  | Reliable_broadcast.Echo { origin; tag; payload } ->
      Format.fprintf ppf "echo[%d@%d]%a" tag origin pp_payload payload
  | Reliable_broadcast.Ready { origin; tag; payload } ->
      Format.fprintf ppf "ready[%d@%d]%a" tag origin pp_payload payload

let pp_state ppf state = Dsim.Obs.pp ppf (observe state)

let protocol ?(name = "rbc-once") ?(origin = 0) ?rbc_echo_quorum
    ?rbc_ready_resend ?rbc_accept_quorum () =
  let apply_quorum f ~n ~t = Option.map (fun g -> g ~n ~t) f in
  {
    Dsim.Protocol.name;
    init =
      (fun ~n ~t ~id ~input ->
        if origin < 0 || origin >= n then
          Protocol_error.raise_error
            (Origin_out_of_range { who = "Rbc_once.protocol"; origin; n });
        init_with
          ?echo_quorum:(apply_quorum rbc_echo_quorum ~n ~t)
          ?ready_resend:(apply_quorum rbc_ready_resend ~n ~t)
          ?accept_quorum:(apply_quorum rbc_accept_quorum ~n ~t)
          ~origin ~n ~t ~id ~input ());
    outgoing;
    on_deliver;
    on_reset;
    output;
    observe;
    message_bit =
      (function
      | Reliable_broadcast.Initial { payload; _ }
      | Reliable_broadcast.Echo { payload; _ }
      | Reliable_broadcast.Ready { payload; _ } ->
          Some payload);
    message_round = (fun _ -> Some 0);
    message_origin =
      (function
      | Reliable_broadcast.Initial _ -> None
      | Reliable_broadcast.Echo { origin; _ }
      | Reliable_broadcast.Ready { origin; _ } ->
          Some origin);
    rewrite_bit =
      (fun message bit ->
        match message with
        | Reliable_broadcast.Initial i ->
            Some (Reliable_broadcast.Initial { i with payload = bit })
        | Reliable_broadcast.Echo e ->
            Some (Reliable_broadcast.Echo { e with payload = bit })
        | Reliable_broadcast.Ready r ->
            Some (Reliable_broadcast.Ready { r with payload = bit }));
    state_core;
    props =
      {
        Dsim.Protocol.forgetful = false;
        fully_communicative = false;
        crash_resilience = (fun n -> (n - 1) / 3);
        byzantine_resilience = (fun n -> (n - 1) / 3);
        reset_resilience = (fun _ -> 0);
      };
    pp_message;
    pp_state;
  }

let origin_of_state state = state.origin
