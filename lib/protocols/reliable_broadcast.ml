module Int_map = Map.Make (Int)

module Key = struct
  type t = int * int (* origin, tag *)

  let compare (a_origin, a_tag) (b_origin, b_tag) =
    match Int.compare a_origin b_origin with
    | 0 -> Int.compare a_tag b_tag
    | c -> c
end

module Key_map = Map.Make (Key)

type 'p msg =
  | Initial of { tag : int; payload : 'p }
  | Echo of { origin : int; tag : int; payload : 'p }
  | Ready of { origin : int; tag : int; payload : 'p }

type 'p inst = {
  echoes : 'p Int_map.t;  (* per echoing sender *)
  readies : 'p Int_map.t;
  echo_sent : bool;
  ready_sent : bool;
  accepted : 'p option;
}

let inst_empty =
  { echoes = Int_map.empty; readies = Int_map.empty; echo_sent = false;
    ready_sent = false; accepted = None }

type 'p t = {
  n : int;
  fault_bound : int;
  self : int;
  equal : 'p -> 'p -> bool;  (* payload equality; never polymorphic [=] *)
  instances : 'p inst Key_map.t;
  started : int list;  (* tags this processor already originated *)
}

let create ~n ~t ~self ~equal =
  { n; fault_bound = t; self; equal; instances = Key_map.empty; started = [] }

let to_all t message = List.init t.n (fun dst -> (dst, message))

let instance t key = Option.value ~default:inst_empty (Key_map.find_opt key t.instances)

let set_instance t key inst = { t with instances = Key_map.add key inst t.instances }

let broadcast t ~tag payload =
  if List.mem tag t.started then (t, [])
  else
    let t = { t with started = tag :: t.started } in
    (t, to_all t (Initial { tag; payload }))

(* Count entries in a sender map that carry exactly this payload. *)
let matching equal payload map =
  Int_map.fold (fun _ p acc -> if equal p payload then acc + 1 else acc) map 0

let echo_quorum t = ((t.n + t.fault_bound) / 2) + 1
let ready_resend t = t.fault_bound + 1
let accept_quorum t = (2 * t.fault_bound) + 1

(* Evaluate an instance's thresholds after new evidence arrived; returns
   the updated instance, messages to send, and the acceptance if new. *)
let evaluate t key inst payload =
  let origin, tag = key in
  let sends = ref [] in
  let inst =
    if (not inst.ready_sent)
       && (matching t.equal payload inst.echoes >= echo_quorum t
          || matching t.equal payload inst.readies >= ready_resend t)
    then begin
      sends := to_all t (Ready { origin; tag; payload });
      { inst with ready_sent = true }
    end
    else inst
  in
  let accepted_now =
    if Option.is_none inst.accepted
       && matching t.equal payload inst.readies >= accept_quorum t
    then Some payload
    else None
  in
  let inst =
    match accepted_now with None -> inst | Some p -> { inst with accepted = Some p }
  in
  (inst, !sends, accepted_now)

let receive t ~src message =
  match message with
  | Initial { tag; payload } ->
      (* Only the claimed origin's own channel is trusted for Initial:
         the sender *is* the origin (dedicated channels). *)
      let key = (src, tag) in
      let inst = instance t key in
      if inst.echo_sent then (set_instance t key inst, [], [])
      else
        let inst = { inst with echo_sent = true } in
        (set_instance t key inst, to_all t (Echo { origin = src; tag; payload }), [])
  | Echo { origin; tag; payload } ->
      let key = (origin, tag) in
      let inst = instance t key in
      if Int_map.mem src inst.echoes then (t, [], [])
      else
        let inst = { inst with echoes = Int_map.add src payload inst.echoes } in
        let inst, sends, accepted_now = evaluate t key inst payload in
        let t = set_instance t key inst in
        ( t,
          sends,
          match accepted_now with None -> [] | Some p -> [ (origin, p) ] )
  | Ready { origin; tag; payload } ->
      let key = (origin, tag) in
      let inst = instance t key in
      if Int_map.mem src inst.readies then (t, [], [])
      else
        let inst = { inst with readies = Int_map.add src payload inst.readies } in
        let inst, sends, accepted_now = evaluate t key inst payload in
        let t = set_instance t key inst in
        ( t,
          sends,
          match accepted_now with None -> [] | Some p -> [ (origin, p) ] )

let accepted t ~tag =
  Key_map.fold
    (fun (origin, key_tag) inst acc ->
      match inst.accepted with
      | Some payload when key_tag = tag -> (origin, payload) :: acc
      | _ -> acc)
    t.instances []
  (* Keys are unique per origin at a fixed tag, so ordering by origin
     alone is a total order here. *)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let accepted_count t ~tag = List.length (accepted t ~tag)

let fingerprint pp t =
  Key_map.bindings t.instances
  |> List.map (fun ((origin, tag), inst) ->
         Printf.sprintf "(%d,%d)e%dr%d%s%s%s" origin tag
           (Int_map.cardinal inst.echoes)
           (Int_map.cardinal inst.readies)
           (if inst.echo_sent then "E" else "")
           (if inst.ready_sent then "R" else "")
           (match inst.accepted with None -> "" | Some p -> "A" ^ pp p))
  |> String.concat ";"
