module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

module Key = struct
  type t = int * int (* origin, tag *)

  let compare (a_origin, a_tag) (b_origin, b_tag) =
    match Int.compare a_origin b_origin with
    | 0 -> Int.compare a_tag b_tag
    | c -> c
end

module Key_map = Map.Make (Key)

type 'p msg =
  | Initial of { tag : int; payload : 'p }
  | Echo of { origin : int; tag : int; payload : 'p }
  | Ready of { origin : int; tag : int; payload : 'p }

type 'p inst = {
  echoes : 'p Int_map.t;  (* per echoing sender *)
  readies : 'p Int_map.t;
  echo_tally : ('p * int) list;  (* per distinct payload; sums to |echoes| *)
  ready_tally : ('p * int) list;
  echo_sent : bool;
  ready_sent : bool;
  accepted : 'p option;
}

let inst_empty =
  { echoes = Int_map.empty; readies = Int_map.empty; echo_tally = [];
    ready_tally = []; echo_sent = false; ready_sent = false; accepted = None }

type 'p t = {
  n : int;
  fault_bound : int;
  self : int;
  equal : 'p -> 'p -> bool;  (* payload equality; never polymorphic [=] *)
  echo_quorum : int;
  ready_resend : int;
  accept_quorum : int;
  instances : 'p inst Key_map.t;
  started : Int_set.t;  (* tags this processor already originated *)
}

let create ?echo_quorum ?ready_resend ?accept_quorum ~n ~t ~self ~equal () =
  let dflt v = function None -> v | Some v' -> v' in
  { n; fault_bound = t; self; equal;
    echo_quorum = dflt (((n + t) / 2) + 1) echo_quorum;
    ready_resend = dflt (t + 1) ready_resend;
    accept_quorum = dflt ((2 * t) + 1) accept_quorum;
    instances = Key_map.empty; started = Int_set.empty }

(* Mutation-testing hook: a fresh state sharing this one's parameters
   (including any deliberately broken thresholds). *)
let reset_like t = { t with instances = Key_map.empty; started = Int_set.empty }

(* A uniform send is a single [Step.Broadcast] value: the engine
   stores it once and expands per-destination envelopes lazily, so
   emission is O(1) regardless of [n]. *)
let to_all _t message = [ Dsim.Step.Broadcast message ]

let instance t key = Option.value ~default:inst_empty (Key_map.find_opt key t.instances)

let set_instance t key inst = { t with instances = Key_map.add key inst t.instances }

let broadcast t ~tag payload =
  if Int_set.mem tag t.started then (t, [])
  else
    let t = { t with started = Int_set.add tag t.started } in
    (t, to_all t (Initial { tag; payload }))

(* Incremental per-payload tallies mirroring the sender maps: bumped on
   every deduplicated insert, read at decision time.  Reads cost the
   number of distinct payloads seen, which is 1 for a correct origin
   and bounded by the equivocation the adversary actually performs —
   the per-delivery re-scan of the whole sender map (lint R13) is
   gone. *)
(* The list length is the number of distinct payloads, 1 for a correct
   origin; the recursion summary's O(n) is the equivocation bound, not
   a per-delivery cost (see above). *)
(* lint: allow R15 *)
let rec bump equal payload = function
  | [] -> [ (payload, 1) ]
  | (p, k) :: rest ->
      if equal p payload then (p, k + 1) :: rest
      else (p, k) :: bump equal payload rest

(* lint: allow R15 — same distinct-payload bound as [bump]. *)
let rec tally_count equal payload = function
  | [] -> 0
  | (p, k) :: rest -> if equal p payload then k else tally_count equal payload rest

let echo_quorum t = t.echo_quorum
let ready_resend t = t.ready_resend
let accept_quorum t = t.accept_quorum

(* Evaluate an instance's thresholds after new evidence arrived; returns
   the updated instance, messages to send, and the acceptance if new. *)
let evaluate t key inst payload =
  let origin, tag = key in
  let sends = ref [] in
  let inst =
    if (not inst.ready_sent)
       && (tally_count t.equal payload inst.echo_tally >= echo_quorum t
          || tally_count t.equal payload inst.ready_tally >= ready_resend t)
    then begin
      sends := to_all t (Ready { origin; tag; payload });
      { inst with ready_sent = true }
    end
    else inst
  in
  let accepted_now =
    if Option.is_none inst.accepted
       && tally_count t.equal payload inst.ready_tally >= accept_quorum t
    then Some payload
    else None
  in
  let inst =
    match accepted_now with None -> inst | Some p -> { inst with accepted = Some p }
  in
  (inst, !sends, accepted_now)

let receive t ~src message =
  match message with
  | Initial { tag; payload } ->
      (* Only the claimed origin's own channel is trusted for Initial:
         the sender *is* the origin (dedicated channels). *)
      let key = (src, tag) in
      let inst = instance t key in
      if inst.echo_sent then (set_instance t key inst, [], [])
      else
        let inst = { inst with echo_sent = true } in
        (set_instance t key inst, to_all t (Echo { origin = src; tag; payload }), [])
  | Echo { origin; tag; payload } ->
      let key = (origin, tag) in
      let inst = instance t key in
      if Int_map.mem src inst.echoes then (t, [], [])
      else
        let inst =
          { inst with
            echoes = Int_map.add src payload inst.echoes;
            echo_tally = bump t.equal payload inst.echo_tally }
        in
        let inst, sends, accepted_now = evaluate t key inst payload in
        let t = set_instance t key inst in
        ( t,
          sends,
          match accepted_now with None -> [] | Some p -> [ (origin, p) ] )
  | Ready { origin; tag; payload } ->
      let key = (origin, tag) in
      let inst = instance t key in
      if Int_map.mem src inst.readies then (t, [], [])
      else
        let inst =
          { inst with
            readies = Int_map.add src payload inst.readies;
            ready_tally = bump t.equal payload inst.ready_tally }
        in
        let inst, sends, accepted_now = evaluate t key inst payload in
        let t = set_instance t key inst in
        ( t,
          sends,
          match accepted_now with None -> [] | Some p -> [ (origin, p) ] )

let accepted t ~tag =
  Key_map.fold
    (fun (origin, key_tag) inst acc ->
      match inst.accepted with
      | Some payload when key_tag = tag -> (origin, payload) :: acc
      | _ -> acc)
    t.instances []
  (* Keys are unique per origin at a fixed tag, so ordering by origin
     alone is a total order here. *)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let accepted_count t ~tag = List.length (accepted t ~tag)

let fingerprint pp t =
  Key_map.bindings t.instances
  |> List.map (fun ((origin, tag), inst) ->
         Printf.sprintf "(%d,%d)e%dr%d%s%s%s" origin tag
           (Int_map.cardinal inst.echoes)
           (Int_map.cardinal inst.readies)
           (if inst.echo_sent then "E" else "")
           (if inst.ready_sent then "R" else "")
           (match inst.accepted with None -> "" | Some p -> "A" ^ pp p))
  |> String.concat ";"
