(** Bracha's [(n-1)/3]-resilient asynchronous agreement protocol
    (PODC 1984), built on {!Reliable_broadcast}.

    Each round has three phases, all communicated through reliable
    broadcast so that Byzantine processors cannot equivocate:

    + broadcast [x]; on [n - t] accepted phase-1 votes, adopt the
      majority;
    + broadcast [x]; if more than [n/2] of the [n - t] accepted phase-2
      votes agree on [v], mark [v] as a decision candidate [D v];
    + broadcast the (possibly marked) vote; on [n - t] accepted phase-3
      votes: with [2t + 1] matching [D v] decide [v]; with [t + 1]
      adopt [v]; otherwise flip a coin.

    With [~validated:true] the protocol additionally applies Bracha's
    message-validation filter in its monotone form: an accepted vote is
    *quarantined* until it is justified by the validator's own view of
    the previous phase —

    - a phase-2 vote for [v] needs a possible [n - t] phase-1 subset
      with majority [v], i.e. at least [floor((n-t)/2) + 1] accepted
      phase-1 votes for [v];
    - a phase-3 decision candidate [D v] needs a possible phase-2
      subset with more than [n/2] votes for [v], i.e. at least
      [floor(n/2) + 1] accepted phase-2 votes for [v];
    - phase-1 votes of later rounds and plain phase-3 votes pass (their
      justification can always include a coin flip).

    Justification is monotone in the validator's accepted sets, so
    quarantined votes are re-examined as prior-phase acceptances
    arrive.  The filter blunts Byzantine senders that fabricate
    unjustified decision candidates (see the tests); the remaining gap
    to Bracha's full history-tracking validation is recorded in
    DESIGN.md. *)

type vote = Val of bool | Dec of bool
type message = vote Reliable_broadcast.msg
type state

val protocol :
  ?validated:bool ->
  ?name:string ->
  ?decide_quorum:(n:int -> t:int -> int) ->
  ?rbc_echo_quorum:(n:int -> t:int -> int) ->
  ?rbc_ready_resend:(n:int -> t:int -> int) ->
  ?rbc_accept_quorum:(n:int -> t:int -> int) ->
  unit ->
  (state, message) Dsim.Protocol.t
(** [validated] defaults to [false] (thresholds + RBC only).

    The optional quorum overrides exist for mutation-style negative
    tests: [decide_quorum] replaces the [2t + 1] matching-[Dec]
    decision threshold, and the [rbc_*] overrides are passed to
    {!Reliable_broadcast.create}.  A mutated protocol must also be
    given a distinct [name] so traces, repro tables and model-checker
    reports cannot be mistaken for the sound protocol. *)

val quarantined_count : state -> int
(** Accepted-but-unjustified votes currently held back (always 0 when
    the protocol was built without validation). *)

(* White-box accessors for tests. *)
val round_of_state : state -> int
val phase_of_state : state -> int
val estimate_of_state : state -> bool
val tag_of : round:int -> phase:int -> int
