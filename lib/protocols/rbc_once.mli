(** A single reliable-broadcast instance as a checkable protocol.

    Processor [origin] (default 0) reliably broadcasts its input bit;
    every processor decides the first payload it accepts for the
    origin's instance.  This exposes {!Reliable_broadcast}'s own
    guarantees — no two correct processors accept different payloads,
    and a correct origin's payload is the only acceptable one — to
    every harness built over [Dsim.Protocol.t], in particular the
    bounded model checker: with [n >= 3t + 1] the explorer must find no
    agreement violation even under an equivocating corruption menu,
    while the [rbc_*] threshold mutations must yield a minimal
    counterexample.

    Note the decision here is "accept", not consensus: validity means
    the decided value equals the {e origin's} input whenever the origin
    is correct; other processors' inputs are irrelevant. *)

type message = bool Reliable_broadcast.msg
type state

val protocol :
  ?name:string ->
  ?origin:int ->
  ?rbc_echo_quorum:(n:int -> t:int -> int) ->
  ?rbc_ready_resend:(n:int -> t:int -> int) ->
  ?rbc_accept_quorum:(n:int -> t:int -> int) ->
  unit ->
  (state, message) Dsim.Protocol.t
(** The quorum overrides are mutation-testing hooks forwarded to
    {!Reliable_broadcast.create}; give mutants a distinct [name]. *)

val origin_of_state : state -> int
