type t =
  | Infeasible_thresholds of { who : string; n : int; t : int; reason : string }
  | Origin_out_of_range of { who : string; origin : int; n : int }
  | Input_arity_mismatch of { who : string; expected : int; got : int }

(* The rendered strings are part of the public contract: tests pin them
   with [Alcotest.check_raises], so changing a format here is an API
   break, not a cosmetic edit.  The diagnostic payload (origin, got,
   ...) is for programmatic callers; the messages stay terse on purpose
   so they survive unrelated refactors of the carried fields. *)
let to_string = function
  | Infeasible_thresholds { who; n; t; reason } ->
      Printf.sprintf "%s: infeasible for n=%d t=%d (%s)" who n t reason
  | Origin_out_of_range { who; origin = _; n = _ } ->
      Printf.sprintf "%s: origin out of range" who
  | Input_arity_mismatch { who; expected = _; got = _ } ->
      Printf.sprintf "%s: |inputs| <> n" who

let raise_error error = invalid_arg (to_string error)
