type verdict = No_counterexample of int | Counterexample of string

type report = {
  protocol_name : string;
  declared_forgetful : bool;
  declared_fully_communicative : bool;
  forgetful : verdict;
  fully_communicative : verdict;
}

(* The conditioning data of Definition 15: the input bit, the messages
   delivered since the last message-emitting send (tracked by the
   engine), and the estimate as a stand-in for the coins flipped since
   then (every protocol here folds its per-round randomness into the
   estimate before sending). *)
let forgetful_core config p =
  let obs = Dsim.Engine.observe config p in
  Printf.sprintf "in=%d x=%s recent=[%s]"
    (if obs.Dsim.Obs.input then 1 else 0)
    (match obs.Dsim.Obs.estimate with
    | None -> "_"
    | Some true -> "1"
    | Some false -> "0")
    (String.concat "|" (Dsim.Engine.recent_deliveries config p))

(* Canonical rendering of what a processor would send next: flush its
   outbox on a copy of the configuration and print the messages,
   expanded to explicit (destination, payload) pairs so that lazy
   broadcasts and eager unicasts render identically. *)
let next_sends config p =
  let protocol = Dsim.Engine.protocol config in
  let _, sends = protocol.Dsim.Protocol.outgoing (Dsim.Engine.state config p) in
  Dsim.Step.expand ~n:(Dsim.Engine.n config) sends
  |> List.map (fun (dst, m) ->
         Format.asprintf "%d<=%a" dst protocol.Dsim.Protocol.pp_message m)
  |> String.concat " "

let check protocol ~n ~t ~seeds ~windows_per_run =
  let core_table : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let forgetful_witness = ref None in
  let fully_comm_witness = ref None in
  let trials = ref 0 in
  let inspect config =
    for p = 0 to n - 1 do
      incr trials;
      let core = forgetful_core config p in
      let sends = next_sends config p in
      (* Forgetful check: same core must imply same next sends. *)
      (match Hashtbl.find_opt core_table core with
      | None -> Hashtbl.add core_table core sends
      | Some previous ->
          if (not (String.equal previous sends))
             && Option.is_none !forgetful_witness
          then
            forgetful_witness :=
              Some
                (Printf.sprintf
                   "core {%s} emitted both {%s} and {%s}" core previous sends));
      (* Fully-communicative check: a processor whose outbox is
         non-empty must address all n processors. *)
      if (not (String.equal sends "")) && Option.is_none !fully_comm_witness
      then begin
        let recipients =
          let _, outbox =
            (Dsim.Engine.protocol config).Dsim.Protocol.outgoing
              (Dsim.Engine.state config p)
          in
          let messages = Dsim.Step.expand ~n outbox in
          List.sort_uniq compare (List.map fst messages)
        in
        if List.length recipients <> n then
          fully_comm_witness :=
            Some
              (Printf.sprintf "p%d is sending to %d of %d processors" p
                 (List.length recipients) n)
      end
    done
  in
  (* Window construction is O(n) and the silenced set depends only on
     [w mod n], so build the full-delivery window and the n silencing
     variants once, outside the per-seed per-window loop, instead of
     rebuilding the pid list with [List.init] every window. *)
  let full_window = Dsim.Window.uniform ~n () in
  let silencing_window =
    Array.init n (fun r ->
        Dsim.Window.uniform ~n ~silenced:(List.init t (fun i -> (r + i) mod n)) ())
  in
  List.iter
    (fun seed ->
      (* Alternate full-delivery windows with silencing windows to vary
         the histories feeding the core table. *)
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let config =
        Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed
          ~track_deliveries:true ()
      in
      inspect config;
      for w = 1 to windows_per_run do
        let window =
          if w mod 2 = 0 then silencing_window.(w mod n) else full_window
        in
        Dsim.Engine.apply_window config window;
        inspect config
      done)
    seeds;
  let verdict witness =
    match !witness with
    | None -> No_counterexample !trials
    | Some w -> Counterexample w
  in
  {
    protocol_name = protocol.Dsim.Protocol.name;
    declared_forgetful = protocol.Dsim.Protocol.props.Dsim.Protocol.forgetful;
    declared_fully_communicative =
      protocol.Dsim.Protocol.props.Dsim.Protocol.fully_communicative;
    forgetful = verdict forgetful_witness;
    fully_communicative = verdict fully_comm_witness;
  }

let consistent report =
  let ok declared = function
    | No_counterexample _ -> true
    | Counterexample _ -> not declared
  in
  ok report.declared_forgetful report.forgetful
  && ok report.declared_fully_communicative report.fully_communicative

let pp_verdict ppf = function
  | No_counterexample trials -> Format.fprintf ppf "no counterexample (%d checks)" trials
  | Counterexample w -> Format.fprintf ppf "counterexample: %s" w

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s:@,  forgetful: declared=%b, %a@,  fully communicative: declared=%b, %a@]"
    r.protocol_name r.declared_forgetful pp_verdict r.forgetful
    r.declared_fully_communicative pp_verdict r.fully_communicative
