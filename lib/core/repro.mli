(** The per-claim reproduction harness: one generator per experiment in
    DESIGN.md's matrix (E1-E9).  Each generator returns a printable
    table; [all] runs the whole battery.

    [scale] trades fidelity for time: [`Full] is what EXPERIMENTS.md
    records; [`Quick] shrinks seed counts and sweeps for tests and for
    the bench harness warm-up.

    [jobs] (default 1) spreads each seed sweep over that many domains
    via {!Par_sweep}; tables are bit-identical for every value (the
    generators that are purely numeric ignore it). *)

type scale = [ `Quick | `Full ]

val e0_trace_lint : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Runtime trace lint: run the protocol/adversary portfolio with full
    event recording and audit every execution against the engine's
    structural invariants (FIFO channels, causal depths, provenance,
    window discipline, decision quorums).  Every row must be clean. *)

val e1_theorem4_matrix : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Theorem 4: correctness / termination of the variant algorithm
    against the strongly adaptive adversary portfolio. *)

val e2_exponential_variant :
  ?jobs:int -> scale:scale -> unit -> Stats.Table.t * Stats.Regression.fit
(** Section 3 remark: windows-to-decision vs [n] under the balancing
    adversary, with the fitted exponent of [log2 E\[windows\]] vs [n]
    and the analytic per-window escape probability for comparison. *)

val e2_survival : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Survival series [P(windows > k)] for one configuration of E2. *)

val e3_baselines : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Ben-Or (crash) and Bracha (Byzantine thresholds) under balancing
    schedules: steps and message-chain length vs [n]. *)

val e4_talagrand : scale:scale -> Stats.Table.t
(** Lemma 9 numerics across product spaces, set shapes and distances. *)

val e5_interpolation : scale:scale -> Stats.Table.t
(** Lemma 14's hybrid sweep: the crossing index and both masses. *)

val e5b_zk_sets : scale:scale -> Stats.Table.t
(** Z^k set probes on real configurations: Z^0 separation (Lemma 11)
    and Z^1 membership of unanimous vs split initial configurations. *)

val e6_theory_constants : scale:scale -> Stats.Table.t
(** Theorem 5 constants: [E(n)] and the success-probability bound. *)

val e7_reset_resilience : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Total resets absorbed vs the per-window budget [t] (Theorem 4's
    failure model). *)

val e8_forgetful_class : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Definitions 15/16 classification of all protocols plus the
    chain-length growth of Ben-Or under crash balancing (Theorem 17's
    setting). *)

val e9_committee : scale:scale -> Stats.Table.t
(** Kapron-et-al. contrast: rounds vs [n] (polylog), error probability
    vs corruption, and the adaptive final-committee attack. *)

val e10_ablations : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Design-choice ablations DESIGN.md calls out: the Theorem 4
    threshold instantiation (default vs relaxed) and adversary strength
    (the exponential slowdown requires a genuinely adversarial
    schedule). *)

val e11_synchronous : scale:scale -> Stats.Table.t
(** Related-work reproduction [6] (Bar-Joseph & Ben-Or): the
    synchronous coin-killing game — rounds survived by an adaptive
    full-information crash adversary track [t / sqrt(n log n)]. *)

val e12_shared_memory : scale:scale -> Stats.Table.t
(** Related-work reproduction [3,5] (Aspnes; Attiya & Censor): the
    counter-race shared coin's total step complexity scales as [n^2]
    and its agreement survives adversarial scheduling. *)

val e13_termination_tail : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Related-work reproduction [4] (Attiya & Censor): the probability
    that Ben-Or has not terminated after [k (n - t)] steps under the
    balancing schedule decays geometrically in [k] — their lower bound
    says it cannot decay faster than [1/c^k]. *)

val e14_reset_fragility : ?jobs:int -> scale:scale -> unit -> Stats.Table.t
(** Why the variant's reset-recovery procedure exists: under reset
    storms, Ben-Or and Bracha (which can only restart from their
    inputs) degrade or stall, while the variant terminates correctly. *)

val e15_sm_consensus : scale:scale -> Stats.Table.t
(** Related-work reproduction [3, 5] continued: wait-free randomized
    consensus (Aspnes-Herlihy rounds over the counter-race coin) —
    constant expected rounds and [Theta(n^2)]-dominated total work,
    with agreement and validity intact under adversarial scheduling. *)

val all : ?jobs:int -> scale:scale -> unit -> (string * Stats.Table.t) list
(** Every experiment, in order, with its DESIGN.md identifier. *)

val selected :
  ?jobs:int -> scale:scale -> ids:string list -> unit -> (string * Stats.Table.t) list
(** Only the requested experiment ids (all of them when [ids] is
    empty); unrequested experiments are not computed. *)

val experiment_ids : string list

val render_markdown : (string * Stats.Table.t) list -> string
