(** Deterministic Domain-based parallel map-reduce.

    The one place in the codebase allowed to touch [Domain]/[Atomic]
    (enforced by static-lint rule R6).  The contract that makes
    parallel sweeps safe to offer at all:

    - [f] must be a pure function of its item (every simulation run
      already is: all randomness flows from per-seed PRNG streams);
    - [merge] must be commutative and associative with [init] as
      identity ({!Stats.Summary.Exact.merge}, {!Stats.Histogram.merge},
      [Ensemble.Partial.merge] are — exactly, on integers).

    Under that contract the result is {b bit-identical} for every
    [jobs] value: workers pull item indices from a shared counter
    (dynamic load balancing, since run durations are heavily skewed),
    but each per-item result lands in its index's slot and the final
    reduction folds the slots in index order on the calling domain.
    Scheduling decides only {i when} a slot is filled, never what it
    contains or in which order it is reduced. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: what [-j] defaults to in the
    experiment binaries. *)

val chunk : size:int -> 'a list -> 'a list list
(** Split into consecutive chunks of [size] (the last may be shorter).
    [size] must be positive.  Chunk boundaries depend only on [size]
    and the list, never on [jobs]. *)

val map_reduce :
  ?jobs:int -> merge:('b -> 'b -> 'b) -> init:'b -> f:('a -> 'b) -> 'a array -> 'b
(** [map_reduce ~jobs ~merge ~init ~f items] computes
    [merge (... (merge init (f items.(0))) ...) (f items.(n-1))] —
    i.e. the in-order left fold — evaluating the [f items.(i)] on up to
    [jobs] domains (default 1; capped by the item count).  With
    [jobs <= 1] no domain is spawned and the fold runs inline; the same
    sequential fast path is taken whenever
    [Domain.recommended_domain_count () = 1] — on a single-core host
    extra domains are pure spawn/join overhead, and the result is
    byte-identical by the determinism contract anyway.

    If some [f items.(i)] raises, the first exception in index order is
    re-raised on the calling domain after all workers have joined. *)

val spawned_domains : unit -> int
(** Cumulative count of domains this module has spawned since program
    start (test hook for the fast-path guarantees above). *)
