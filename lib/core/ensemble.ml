type spec = {
  n : int;
  t : int;
  inputs : int -> bool array;
  max_windows : int;
  max_steps : int;
  stop : Dsim.Runner.stop_condition;
}

let split_inputs ~n seed = Array.init n (fun i -> (i + seed) mod 2 = 0)
let constant_inputs ~n value _seed = Array.make n value

(* ------------------------------------------------------------------ *)
(* Per-chunk partial results.  Everything in here is integer-exact
   (counts, integer moments, histogram buckets), so [merge] is
   genuinely commutative and associative with [empty ()] as identity:
   any chunking of a seed list, merged in any order, produces the same
   partial bit for bit.  That algebra is what lets Par_sweep run
   chunks on several domains and still return results identical to the
   sequential path.  Floats appear only once, in [finalize]. *)

module Partial = struct
  type t = {
    runs : int;
    agreement_failures : int;
    validity_failures : int;
    terminated : int;
    windows : Stats.Summary.Exact.t;
    steps : Stats.Summary.Exact.t;
    chain_depth : Stats.Summary.Exact.t;
    total_resets : Stats.Summary.Exact.t;
    decisions_zero : int;
    decisions_one : int;
    window_histogram : Stats.Histogram.t;
    lint_violations : int;
  }

  (* A function, not a constant: the histogram is mutable and must be
     fresh per accumulator. *)
  let empty () =
    {
      runs = 0;
      agreement_failures = 0;
      validity_failures = 0;
      terminated = 0;
      windows = Stats.Summary.Exact.empty;
      steps = Stats.Summary.Exact.empty;
      chain_depth = Stats.Summary.Exact.empty;
      total_resets = Stats.Summary.Exact.empty;
      decisions_zero = 0;
      decisions_one = 0;
      window_histogram = Stats.Histogram.empty ();
      lint_violations = 0;
    }

  let merge a b =
    {
      runs = a.runs + b.runs;
      agreement_failures = a.agreement_failures + b.agreement_failures;
      validity_failures = a.validity_failures + b.validity_failures;
      terminated = a.terminated + b.terminated;
      windows = Stats.Summary.Exact.merge a.windows b.windows;
      steps = Stats.Summary.Exact.merge a.steps b.steps;
      chain_depth = Stats.Summary.Exact.merge a.chain_depth b.chain_depth;
      total_resets = Stats.Summary.Exact.merge a.total_resets b.total_resets;
      decisions_zero = a.decisions_zero + b.decisions_zero;
      decisions_one = a.decisions_one + b.decisions_one;
      window_histogram =
        Stats.Histogram.merge a.window_histogram b.window_histogram;
      lint_violations = a.lint_violations + b.lint_violations;
    }

  let equal a b =
    Int.equal a.runs b.runs
    && Int.equal a.agreement_failures b.agreement_failures
    && Int.equal a.validity_failures b.validity_failures
    && Int.equal a.terminated b.terminated
    && Stats.Summary.Exact.equal a.windows b.windows
    && Stats.Summary.Exact.equal a.steps b.steps
    && Stats.Summary.Exact.equal a.chain_depth b.chain_depth
    && Stats.Summary.Exact.equal a.total_resets b.total_resets
    && Int.equal a.decisions_zero b.decisions_zero
    && Int.equal a.decisions_one b.decisions_one
    && Stats.Histogram.equal a.window_histogram b.window_histogram
    && Int.equal a.lint_violations b.lint_violations

  let runs t = t.runs
end

type result = {
  runs : int;
  agreement_failures : int;
  validity_failures : int;
  terminated : int;
  windows : Stats.Summary.t;
  steps : Stats.Summary.t;
  chain_depth : Stats.Summary.t;
  total_resets : Stats.Summary.t;
  decisions_zero : int;
  decisions_one : int;
  window_histogram : Stats.Histogram.t;
  lint_violations : int;
}

let finalize (p : Partial.t) =
  {
    runs = p.Partial.runs;
    agreement_failures = p.Partial.agreement_failures;
    validity_failures = p.Partial.validity_failures;
    terminated = p.Partial.terminated;
    windows = Stats.Summary.Exact.to_summary p.Partial.windows;
    steps = Stats.Summary.Exact.to_summary p.Partial.steps;
    chain_depth = Stats.Summary.Exact.to_summary p.Partial.chain_depth;
    total_resets = Stats.Summary.Exact.to_summary p.Partial.total_resets;
    decisions_zero = p.Partial.decisions_zero;
    decisions_one = p.Partial.decisions_one;
    window_histogram = p.Partial.window_histogram;
    lint_violations = p.Partial.lint_violations;
  }

let equal_result a b =
  Int.equal a.runs b.runs
  && Int.equal a.agreement_failures b.agreement_failures
  && Int.equal a.validity_failures b.validity_failures
  && Int.equal a.terminated b.terminated
  && Stats.Summary.equal a.windows b.windows
  && Stats.Summary.equal a.steps b.steps
  && Stats.Summary.equal a.chain_depth b.chain_depth
  && Stats.Summary.equal a.total_resets b.total_resets
  && Int.equal a.decisions_zero b.decisions_zero
  && Int.equal a.decisions_one b.decisions_one
  && Stats.Histogram.equal a.window_histogram b.window_histogram
  && Int.equal a.lint_violations b.lint_violations

let fold_outcome (acc : Partial.t) ~inputs (outcome : Dsim.Runner.outcome) =
  let verdict = Correctness.of_outcome ~inputs outcome in
  let terminated = outcome.Dsim.Runner.reason = Dsim.Runner.Stopped in
  if terminated then
    Stats.Histogram.add acc.Partial.window_histogram outcome.Dsim.Runner.windows;
  {
    acc with
    Partial.runs = acc.Partial.runs + 1;
    agreement_failures =
      (acc.Partial.agreement_failures
      + if verdict.Correctness.agreement then 0 else 1);
    validity_failures =
      (acc.Partial.validity_failures
      + if verdict.Correctness.validity then 0 else 1);
    terminated = (acc.Partial.terminated + if terminated then 1 else 0);
    windows =
      (if terminated then
         Stats.Summary.Exact.add acc.Partial.windows outcome.Dsim.Runner.windows
       else acc.Partial.windows);
    steps =
      (if terminated then
         Stats.Summary.Exact.add acc.Partial.steps outcome.Dsim.Runner.steps
       else acc.Partial.steps);
    chain_depth =
      (if terminated then
         Stats.Summary.Exact.add acc.Partial.chain_depth
           outcome.Dsim.Runner.max_chain_depth
       else acc.Partial.chain_depth);
    total_resets =
      Stats.Summary.Exact.add acc.Partial.total_resets
        outcome.Dsim.Runner.total_resets;
    decisions_zero =
      (acc.Partial.decisions_zero
      + if terminated && verdict.Correctness.value = Some false then 1 else 0);
    decisions_one =
      (acc.Partial.decisions_one
      + if terminated && verdict.Correctness.value = Some true then 1 else 0);
  }

(* With [lint] the engine records its full event trace and the runtime
   trace linter audits every run; violations are counted per run, not
   per event. *)
let audit ~lint ~lint_fifo ~lint_quorum config =
  if not lint then 0
  else
    List.length
      (Lintkit.Trace_lint.audit ?decision_quorum:lint_quorum ~fifo:lint_fifo
         config)

(* One seed -> one partial.  Pure in the seed given the (immutable)
   protocol/spec and a strategy factory that builds fresh per-run
   state, so it is safe to evaluate on any domain. *)
let partial_of_seed ~lint ~track_deliveries ~lint_fifo ~lint_quorum ~protocol
    ~spec ~run seed =
  let inputs = spec.inputs seed in
  let config =
    Dsim.Engine.init ~protocol ~n:spec.n ~fault_bound:spec.t ~inputs ~seed
      ~record_events:lint ~track_deliveries ()
  in
  let outcome = run config seed in
  let acc = fold_outcome (Partial.empty ()) ~inputs outcome in
  {
    acc with
    Partial.lint_violations = audit ~lint ~lint_fifo ~lint_quorum config;
  }

let sweep ~jobs ~lint ~track_deliveries ~lint_fifo ~lint_quorum ~protocol ~spec
    ~run seeds =
  Par_sweep.map_reduce ~jobs ~merge:Partial.merge ~init:(Partial.empty ())
    ~f:
      (partial_of_seed ~lint ~track_deliveries ~lint_fifo ~lint_quorum ~protocol
         ~spec ~run)
    (Array.of_list seeds)

let partial_windowed ?(jobs = 1) ?(lint = false) ?(track_deliveries = false)
    ?(lint_fifo = true) ?lint_quorum ~protocol ~strategy ~spec ~seeds () =
  sweep ~jobs ~lint ~track_deliveries ~lint_fifo ~lint_quorum ~protocol ~spec
    ~run:(fun config seed ->
      Dsim.Runner.run_windows config ~strategy:(strategy seed)
        ~max_windows:spec.max_windows ~stop:spec.stop)
    seeds

let partial_stepwise ?(jobs = 1) ?(lint = false) ?(track_deliveries = false)
    ?(lint_fifo = true) ?lint_quorum ~protocol ~strategy ~spec ~seeds () =
  sweep ~jobs ~lint ~track_deliveries ~lint_fifo ~lint_quorum ~protocol ~spec
    ~run:(fun config seed ->
      Dsim.Runner.run_steps config ~strategy:(strategy seed)
        ~max_steps:spec.max_steps ~stop:spec.stop)
    seeds

let run_windowed ?jobs ?lint ?track_deliveries ?lint_fifo ?lint_quorum ~protocol
    ~strategy ~spec ~seeds () =
  finalize
    (partial_windowed ?jobs ?lint ?track_deliveries ?lint_fifo ?lint_quorum
       ~protocol ~strategy ~spec ~seeds ())

let run_stepwise ?jobs ?lint ?track_deliveries ?lint_fifo ?lint_quorum ~protocol
    ~strategy ~spec ~seeds () =
  finalize
    (partial_stepwise ?jobs ?lint ?track_deliveries ?lint_fifo ?lint_quorum
       ~protocol ~strategy ~spec ~seeds ())

let rate part total = if total = 0 then nan else float_of_int part /. float_of_int total

let termination_rate r = rate r.terminated r.runs
let agreement_rate r = rate (r.runs - r.agreement_failures) r.runs
let validity_rate r = rate (r.runs - r.validity_failures) r.runs

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>runs: %d@,terminated: %d@,agreement rate: %.3f@,validity rate: \
     %.3f@,decisions: %d zero / %d one@,windows: %a@,steps: %a@,chain depth: \
     %a@,total resets: %a@,lint violations: %d@]"
    r.runs r.terminated (agreement_rate r) (validity_rate r) r.decisions_zero
    r.decisions_one Stats.Summary.pp r.windows Stats.Summary.pp r.steps
    Stats.Summary.pp r.chain_depth Stats.Summary.pp r.total_resets
    r.lint_violations
