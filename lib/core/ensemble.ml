type spec = {
  n : int;
  t : int;
  inputs : int -> bool array;
  max_windows : int;
  max_steps : int;
  stop : Dsim.Runner.stop_condition;
}

let split_inputs ~n seed = Array.init n (fun i -> (i + seed) mod 2 = 0)
let constant_inputs ~n value _seed = Array.make n value

type result = {
  runs : int;
  agreement_failures : int;
  validity_failures : int;
  terminated : int;
  windows : Stats.Summary.t;
  steps : Stats.Summary.t;
  chain_depth : Stats.Summary.t;
  total_resets : Stats.Summary.t;
  decisions_zero : int;
  decisions_one : int;
  window_histogram : Stats.Histogram.t;
  lint_violations : int;
}

(* A function, not a constant: the histogram is mutable and must be
   fresh per sweep. *)
let empty_result () =
  {
    runs = 0;
    agreement_failures = 0;
    validity_failures = 0;
    terminated = 0;
    windows = Stats.Summary.empty;
    steps = Stats.Summary.empty;
    chain_depth = Stats.Summary.empty;
    total_resets = Stats.Summary.empty;
    decisions_zero = 0;
    decisions_one = 0;
    window_histogram = Stats.Histogram.create ();
    lint_violations = 0;
  }

let fold_outcome acc ~inputs (outcome : Dsim.Runner.outcome) =
  let verdict = Correctness.of_outcome ~inputs outcome in
  let terminated = outcome.Dsim.Runner.reason = Dsim.Runner.Stopped in
  if terminated then Stats.Histogram.add acc.window_histogram outcome.Dsim.Runner.windows;
  {
    acc with
    runs = acc.runs + 1;
    agreement_failures =
      (acc.agreement_failures + if verdict.Correctness.agreement then 0 else 1);
    validity_failures =
      (acc.validity_failures + if verdict.Correctness.validity then 0 else 1);
    terminated = (acc.terminated + if terminated then 1 else 0);
    windows =
      (if terminated then Stats.Summary.add_int acc.windows outcome.Dsim.Runner.windows
       else acc.windows);
    steps =
      (if terminated then Stats.Summary.add_int acc.steps outcome.Dsim.Runner.steps
       else acc.steps);
    chain_depth =
      (if terminated then
         Stats.Summary.add_int acc.chain_depth outcome.Dsim.Runner.max_chain_depth
       else acc.chain_depth);
    total_resets = Stats.Summary.add_int acc.total_resets outcome.Dsim.Runner.total_resets;
    decisions_zero =
      (acc.decisions_zero
      + if terminated && verdict.Correctness.value = Some false then 1 else 0);
    decisions_one =
      (acc.decisions_one
      + if terminated && verdict.Correctness.value = Some true then 1 else 0);
  }

(* With [lint] the engine records its full event trace and the runtime
   trace linter audits every run; violations are counted per run, not
   per event. *)
let audit ~lint ~lint_fifo ~lint_quorum config =
  if not lint then 0
  else
    List.length
      (Lintkit.Trace_lint.audit ?decision_quorum:lint_quorum ~fifo:lint_fifo
         config)

let run_windowed ?(lint = false) ?(lint_fifo = true) ?lint_quorum ~protocol
    ~strategy ~spec ~seeds () =
  List.fold_left
    (fun acc seed ->
      let inputs = spec.inputs seed in
      let config =
        Dsim.Engine.init ~protocol ~n:spec.n ~fault_bound:spec.t ~inputs ~seed
          ~record_events:lint ()
      in
      let outcome =
        Dsim.Runner.run_windows config ~strategy:(strategy seed)
          ~max_windows:spec.max_windows ~stop:spec.stop
      in
      let acc = fold_outcome acc ~inputs outcome in
      { acc with
        lint_violations =
          acc.lint_violations + audit ~lint ~lint_fifo ~lint_quorum config })
    (empty_result ()) seeds

let run_stepwise ?(lint = false) ?(lint_fifo = true) ?lint_quorum ~protocol
    ~strategy ~spec ~seeds () =
  List.fold_left
    (fun acc seed ->
      let inputs = spec.inputs seed in
      let config =
        Dsim.Engine.init ~protocol ~n:spec.n ~fault_bound:spec.t ~inputs ~seed
          ~record_events:lint ()
      in
      let outcome =
        Dsim.Runner.run_steps config ~strategy:(strategy seed) ~max_steps:spec.max_steps
          ~stop:spec.stop
      in
      let acc = fold_outcome acc ~inputs outcome in
      { acc with
        lint_violations =
          acc.lint_violations + audit ~lint ~lint_fifo ~lint_quorum config })
    (empty_result ()) seeds

let rate part total = if total = 0 then nan else float_of_int part /. float_of_int total

let termination_rate r = rate r.terminated r.runs
let agreement_rate r = rate (r.runs - r.agreement_failures) r.runs
let validity_rate r = rate (r.runs - r.validity_failures) r.runs
