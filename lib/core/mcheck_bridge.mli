(** The one wire between the model checker and the Domain-based sweep
    machinery: {!Mcheck.Explore} takes frontier expansion as an
    injected sharder (keeping that library Domain-free per lint R6),
    and this is the injection. *)

val sharder : Mcheck.Explore.sharder
(** Backed by {!Par_sweep.map_reduce}: per-item results reduce in index
    order on the calling domain, so explorer output is bit-identical
    for every [jobs] value. *)
